// Command optsolve demonstrates the offline Optimal machinery
// (§6.2.4 / Appendix D): it builds a small random DTN instance, routes
// it with the earliest-arrival oracle, solves the exact Appendix-D ILP
// with the built-in simplex/branch-and-bound solver, and reports both
// objectives side by side — the certification that backs the Fig. 13
// Optimal curve.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"rapid/internal/packet"
	"rapid/internal/report"
	"rapid/internal/routing/optimal"
	"rapid/internal/trace"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 4, "node count")
		meetings = flag.Int("meetings", 8, "meeting count")
		packets  = flag.Int("packets", 3, "packet count")
		seed     = flag.Int64("seed", 1, "instance seed")
		maxNodes = flag.Int("bnb-nodes", 200000, "branch-and-bound node limit")
	)
	flag.Parse()

	r := rand.New(rand.NewSource(*seed))
	sched := &trace.Schedule{Duration: 100}
	tm := 0.0
	for i := 0; i < *meetings; i++ {
		tm += 1 + r.Float64()*8
		a := packet.NodeID(r.Intn(*nodes))
		b := packet.NodeID(r.Intn(*nodes))
		for b == a {
			b = packet.NodeID(r.Intn(*nodes))
		}
		sched.Meetings = append(sched.Meetings, trace.Meeting{
			A: a, B: b, Time: tm, Bytes: int64(100 * (1 + r.Intn(2))),
		})
	}
	var w packet.Workload
	for i := 0; i < *packets; i++ {
		src := packet.NodeID(r.Intn(*nodes))
		dst := packet.NodeID(r.Intn(*nodes))
		for dst == src {
			dst = packet.NodeID(r.Intn(*nodes))
		}
		w = append(w, &packet.Packet{
			ID: packet.ID(i + 1), Src: src, Dst: dst, Size: 100,
			Created: r.Float64() * 20,
		})
	}

	fmt.Printf("instance: %d nodes, %d meetings, %d packets (seed %d)\n\n",
		*nodes, *meetings, *packets, *seed)
	for _, m := range sched.Meetings {
		fmt.Printf("  t=%5.1f  %d <-> %d  (%d B)\n", m.Time, m.A, m.B, m.Bytes)
	}
	fmt.Println()
	for _, p := range w {
		fmt.Printf("  packet %d: %d -> %d, created t=%.1f\n", p.ID, p.Src, p.Dst, p.Created)
	}
	fmt.Println()

	oracle := optimal.Solve(sched, w, optimal.Options{ImprovePasses: 3})
	ilp, err := optimal.SolveILP(sched, w, *maxNodes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ILP: %v\n", err)
		os.Exit(1)
	}

	tbl := &report.Table{Header: []string{"solver", "delivered", "total delay", "avg delay incl. undelivered"}}
	tbl.AddRow("earliest-arrival oracle", report.Pct(oracle.DeliveryRate()),
		report.F(oracle.TotalDelay()), report.F(oracle.AvgDelayAll()))
	tbl.AddRow("exact ILP (Appendix D)", report.Pct(ilp.DeliveryRate()),
		report.F(ilp.TotalDelay()), report.F(ilp.AvgDelayAll()))
	fmt.Print(tbl.Render())

	gap := oracle.TotalDelay() - ilp.TotalDelay()
	switch {
	case gap <= 1e-9:
		fmt.Println("\noracle is exactly optimal on this instance")
	default:
		fmt.Printf("\noracle optimality gap: %.3f time units (%.1f%%)\n",
			gap, 100*gap/ilp.TotalDelay())
	}
}

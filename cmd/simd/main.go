// Command simd serves the simulation service: a long-lived HTTP/JSON
// API over the scenario registry and experiment engine, with streaming
// per-packet telemetry and Prometheus metrics. See DESIGN.md §14 and
// the EXPERIMENTS.md walkthrough.
//
//	simd -addr :8080 &
//	curl -s localhost:8080/v1/families
//	curl -s -X POST localhost:8080/v1/jobs \
//	    -d '{"family":"synth-exponential","scale":"tiny","telemetry":true}'
//	curl -s -N localhost:8080/v1/jobs/job-000001/events
//	curl -s localhost:8080/v1/jobs/job-000001/table
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM drains: intake stops (healthz flips to 503), queued
// jobs cancel, running jobs finish, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rapid/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	engineWorkers := flag.Int("engine-workers", 0, "scenario pool size (0 = GOMAXPROCS)")
	runWorkers := flag.Int("run-workers", 0, "intra-run event-engine workers for scenarios without their own pin (0 = serial)")
	maxJobs := flag.Int("max-jobs", 2, "jobs executing concurrently")
	queueDepth := flag.Int("queue", 64, "queued-job bound; submissions beyond it get 429")
	cacheLimit := flag.Int("cache", 0, "summary cache entry bound (0 = default)")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "max wait for running jobs on shutdown")
	flag.Parse()

	srv := service.New(service.Config{
		EngineWorkers:     *engineWorkers,
		CacheLimit:        *cacheLimit,
		RunWorkers:        *runWorkers,
		MaxConcurrentJobs: *maxJobs,
		QueueDepth:        *queueDepth,
	})

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "simd: listening on %s\n", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "simd: draining")
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		drainErr := srv.Drain(drainCtx)
		// Streams of finished jobs close on their own; shut the listener
		// down after the jobs are settled.
		shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second) //rapidlint:allow nondeterminism — shutdown deadline; never feeds simulation state
		defer cancel2()
		_ = httpSrv.Shutdown(shutCtx)
		if drainErr != nil {
			fmt.Fprintf(os.Stderr, "simd: %v\n", drainErr)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "simd: drained cleanly")
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "simd: %v\n", err)
			os.Exit(1)
		}
	}
}

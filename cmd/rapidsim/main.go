// Command rapidsim runs one DTN simulation and prints its summary.
//
// Examples:
//
//	rapidsim -protocol rapid -metric avg-delay -mobility exponential -load 20
//	rapidsim -protocol maxprop -mobility dieselnet -day 3 -load 4
//	rapidsim -protocol rapid -metric deadline -mobility powerlaw -deadline 20
package main

import (
	"flag"
	"fmt"
	"os"

	"rapid"
	"rapid/internal/report"
)

func main() {
	var (
		protoName = flag.String("protocol", "rapid", "rapid | maxprop | spraywait | prophet | random | random-acks | epidemic")
		metric    = flag.String("metric", "avg-delay", "avg-delay | deadline | max-delay (rapid only)")
		mobilityM = flag.String("mobility", "exponential", "exponential | powerlaw | dieselnet")
		nodes     = flag.Int("nodes", 20, "node count (synthetic mobility)")
		duration  = flag.Float64("duration", 900, "run length in seconds (synthetic)")
		meeting   = flag.Float64("mean-meeting", 60, "mean pairwise inter-meeting time (s)")
		transfer  = flag.Int64("transfer", 100<<10, "transfer opportunity bytes (synthetic)")
		day       = flag.Int("day", 0, "DieselNet day index")
		load      = flag.Float64("load", 4, "packets per window per destination pair")
		window    = flag.Float64("window", 50, "load window (s); use 3600 for trace-style loads")
		pktBytes  = flag.Int64("packet", 1<<10, "packet size in bytes")
		deadline  = flag.Float64("deadline", 0, "per-packet deadline (s); 0 = none")
		buffer    = flag.Int64("buffer", 0, "per-node buffer bytes; 0 = unlimited")
		seed      = flag.Int64("seed", 1, "simulation seed")
		global    = flag.Bool("global-channel", false, "use the instant global control channel")
		withOpt   = flag.Bool("optimal", false, "also run the offline optimal oracle")
	)
	flag.Parse()

	var m rapid.Metric
	switch *metric {
	case "avg-delay":
		m = rapid.MinimizeAvgDelay
	case "deadline":
		m = rapid.MinimizeMissedDeadlines
	case "max-delay":
		m = rapid.MinimizeMaxDelay
	default:
		fail("unknown metric %q", *metric)
	}

	var proto rapid.Protocol
	switch *protoName {
	case "rapid":
		proto = rapid.RAPID(m)
	case "maxprop":
		proto = rapid.MaxProp()
	case "spraywait":
		proto = rapid.SprayAndWait(0)
	case "prophet":
		proto = rapid.PRoPHET()
	case "random":
		proto = rapid.Random()
	case "random-acks":
		proto = rapid.RandomWithAcks()
	case "epidemic":
		proto = rapid.Epidemic()
	default:
		fail("unknown protocol %q", *protoName)
	}

	var sched *rapid.Schedule
	mc := rapid.MobilityConfig{
		Nodes: *nodes, Duration: *duration,
		MeanMeeting: *meeting, TransferBytes: *transfer, PowerLawAlpha: 1,
	}
	switch *mobilityM {
	case "exponential":
		sched = rapid.ExponentialMobility(mc, *seed)
	case "powerlaw":
		sched = rapid.PowerLawMobility(mc, *seed)
	case "dieselnet":
		sched = rapid.DieselNetDay(rapid.DefaultDieselNet(), *day)
	default:
		fail("unknown mobility %q", *mobilityM)
	}

	w := rapid.PoissonWorkload(rapid.WorkloadConfig{
		Nodes:                   sched.Nodes(),
		PacketsPerWindowPerDest: *load,
		Window:                  *window,
		Duration:                sched.Duration,
		PacketBytes:             *pktBytes,
		Deadline:                *deadline,
	}, *seed+1)

	cfg := rapid.Config{BufferBytes: *buffer, Seed: *seed}
	if *global {
		cfg.Control = rapid.InstantGlobal
	}
	res := rapid.Run(sched, w, proto, cfg)
	s := res.Summary

	tbl := &report.Table{Header: []string{"metric", "value"}}
	tbl.AddRow("protocol", proto.Name())
	tbl.AddRow("mobility", *mobilityM)
	tbl.AddRow("nodes", fmt.Sprint(len(sched.Nodes())))
	tbl.AddRow("meetings", fmt.Sprint(s.Meetings))
	tbl.AddRow("packets generated", fmt.Sprint(s.Generated))
	tbl.AddRow("packets delivered", fmt.Sprint(s.Delivered))
	tbl.AddRow("delivery rate", report.Pct(s.DeliveryRate))
	tbl.AddRow("avg delay (s)", report.F(s.AvgDelay))
	tbl.AddRow("max delay (s)", report.F(s.MaxDelay))
	tbl.AddRow("avg delay incl. undelivered (s)", report.F(s.AvgDelayAll))
	if *deadline > 0 {
		tbl.AddRow("delivered within deadline", report.Pct(s.WithinDeadline))
	}
	tbl.AddRow("channel utilization", report.Pct(s.Utilization))
	tbl.AddRow("metadata / data", report.Pct(s.MetaOverData))
	tbl.AddRow("metadata / bandwidth", report.Pct(s.MetaOverBandwidth))
	fmt.Print(tbl.Render())

	if *withOpt {
		opt := rapid.Optimal(sched, w)
		fmt.Printf("\noffline optimal: delivery %s, avg delay incl. undelivered %ss (online: %ss)\n",
			report.Pct(opt.DeliveryRate()), report.F(opt.AvgDelayAll()), report.F(s.AvgDelayAll))
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

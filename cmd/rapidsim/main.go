// Command rapidsim runs one DTN simulation and prints its summary. The
// flags assemble a declarative scenario value (internal/scenario) — the
// same representation the experiment engine sweeps — so a CLI run is
// exactly reproducible from its parameters.
//
// Examples:
//
//	rapidsim -protocol rapid -metric avg-delay -mobility exponential -load 20
//	rapidsim -protocol maxprop -mobility dieselnet -day 3 -load 4 -window 3600
//	rapidsim -protocol rapid -metric deadline -mobility powerlaw -deadline 20
//	rapidsim -mobility powerlaw -hetero-small 10240 -hetero-large 102400
//	rapidsim -mobility exponential -burst-on 30 -burst-off 120 -load 40
package main

import (
	"flag"
	"fmt"
	"os"

	"rapid/internal/core"
	"rapid/internal/report"
	"rapid/internal/routing"
	"rapid/internal/routing/optimal"
	"rapid/internal/scenario"
	"rapid/internal/trace"
)

func main() {
	var (
		protoName = flag.String("protocol", "rapid", "rapid | maxprop | spraywait | prophet | random | random-acks | epidemic")
		metric    = flag.String("metric", "avg-delay", "avg-delay | deadline | max-delay (rapid only)")
		mobilityM = flag.String("mobility", "exponential", "exponential | powerlaw | dieselnet")
		nodes     = flag.Int("nodes", 20, "node count (synthetic mobility)")
		duration  = flag.Float64("duration", 900, "run length in seconds (synthetic)")
		meeting   = flag.Float64("mean-meeting", 60, "mean pairwise inter-meeting time (s)")
		transfer  = flag.Int64("transfer", 100<<10, "transfer opportunity bytes (synthetic)")
		day       = flag.Int("day", 0, "DieselNet day index")
		load      = flag.Float64("load", 4, "packets per window per destination pair")
		window    = flag.Float64("window", 50, "load window (s); use 3600 for trace-style loads")
		pktBytes  = flag.Int64("packet", 1<<10, "packet size in bytes")
		deadline  = flag.Float64("deadline", 0, "per-packet deadline (s); 0 = none")
		buffer    = flag.Int64("buffer", 0, "per-node buffer bytes; 0 = unlimited")
		run       = flag.Int("run", 0, "averaging-run index; all seeds derive from it")
		global    = flag.Bool("global-channel", false, "use the instant global control channel")
		withOpt   = flag.Bool("optimal", false, "also run the offline optimal oracle")

		heteroSmall = flag.Int64("hetero-small", 0, "small-class buffer bytes (heterogeneous buffers; 0 = uniform)")
		heteroLarge = flag.Int64("hetero-large", 0, "large-class buffer bytes (with -hetero-small)")
		heteroEvery = flag.Int("hetero-every", 2, "every k-th node gets the small buffer")
		burstOn     = flag.Float64("burst-on", 0, "mean ON-burst duration (s); 0 = plain Poisson workload")
		burstOff    = flag.Float64("burst-off", 0, "mean OFF-silence duration (s)")
	)
	flag.Parse()

	var m scenario.Metric
	switch *metric {
	case "avg-delay":
		m = core.AvgDelay
	case "deadline":
		m = core.Deadline
	case "max-delay":
		m = core.MaxDelay
	default:
		fail("unknown metric %q", *metric)
	}

	var proto scenario.Proto
	switch *protoName {
	case "rapid":
		proto = scenario.ProtoRapid
	case "maxprop":
		proto = scenario.ProtoMaxProp
	case "spraywait":
		proto = scenario.ProtoSprayWait
	case "prophet":
		proto = scenario.ProtoProphet
	case "random":
		proto = scenario.ProtoRandom
	case "random-acks":
		proto = scenario.ProtoRandomAcks
	case "epidemic":
		proto = scenario.ProtoEpidemic
	default:
		fail("unknown protocol %q", *protoName)
	}

	var sched scenario.ScheduleSpec
	switch *mobilityM {
	case "exponential", "powerlaw":
		src := scenario.SourceExponential
		if *mobilityM == "powerlaw" {
			src = scenario.SourcePowerLaw
		}
		sched = scenario.ScheduleSpec{
			Source: src, Nodes: *nodes, Duration: *duration,
			MeanMeeting: *meeting, TransferBytes: *transfer,
			Alpha: 1, RankSeed: 42,
		}
	case "dieselnet":
		sched = scenario.ScheduleSpec{
			Source: scenario.SourceDieselNet,
			Diesel: trace.DefaultDieselNet(), Day: *day,
		}
	default:
		fail("unknown mobility %q", *mobilityM)
	}

	work := scenario.WorkloadSpec{
		Shape: scenario.ShapePoisson, Load: *load, Window: *window,
		PacketBytes: *pktBytes, Deadline: *deadline,
	}
	if *mobilityM != "dieselnet" {
		work.NodeCount = *nodes
	}
	if *burstOn > 0 {
		if *burstOff <= 0 {
			fail("-burst-on requires -burst-off > 0 (bursts need silences between them)")
		}
		work.Shape = scenario.ShapeOnOff
		work.OnMean, work.OffMean = *burstOn, *burstOff
	}

	var ov scenario.Overrides
	// -global-channel upgrades every protocol that runs a control plane;
	// control-free protocols (spraywait, prophet, random) ignore it, as
	// they always have.
	if *global {
		switch proto {
		case scenario.ProtoRapid:
			proto = scenario.ProtoRapidGlobal
		case scenario.ProtoMaxProp, scenario.ProtoEpidemic, scenario.ProtoRandomAcks:
			ov.Mode, ov.ModeSet = routing.ControlGlobal, true
		}
	}
	if *buffer > 0 {
		ov.BufferBytes, ov.BufferBytesSet = *buffer, true
	}
	if *heteroSmall > 0 {
		ov.Hetero = scenario.HeteroBuffers{
			Enabled: true, SmallBytes: *heteroSmall,
			LargeBytes: *heteroLarge, SmallEvery: *heteroEvery,
		}
	}

	sc := scenario.Scenario{
		Family: "cli", Tag: "rapidsim",
		Schedule: sched, Workload: work,
		Protocol: proto, Metric: m, Config: ov, Run: *run,
	}

	rs := sc.Materialize()
	col := routing.Run(rs)
	s := col.Summarize(rs.Schedule.Duration)

	tbl := &report.Table{Header: []string{"metric", "value"}}
	tbl.AddRow("protocol", string(proto))
	tbl.AddRow("mobility", *mobilityM)
	tbl.AddRow("workload", work.Shape.String())
	tbl.AddRow("nodes", fmt.Sprint(len(rs.Schedule.Nodes())))
	tbl.AddRow("meetings", fmt.Sprint(s.Meetings))
	tbl.AddRow("packets generated", fmt.Sprint(s.Generated))
	tbl.AddRow("packets delivered", fmt.Sprint(s.Delivered))
	tbl.AddRow("delivery rate", report.Pct(s.DeliveryRate))
	tbl.AddRow("avg delay (s)", report.F(s.AvgDelay))
	tbl.AddRow("max delay (s)", report.F(s.MaxDelay))
	tbl.AddRow("avg delay incl. undelivered (s)", report.F(s.AvgDelayAll))
	if *deadline > 0 {
		tbl.AddRow("delivered within deadline", report.Pct(s.WithinDeadline))
	}
	tbl.AddRow("channel utilization", report.Pct(s.Utilization))
	tbl.AddRow("metadata / data", report.Pct(s.MetaOverData))
	tbl.AddRow("metadata / bandwidth", report.Pct(s.MetaOverBandwidth))
	fmt.Print(tbl.Render())

	if *withOpt {
		opt := optimal.Solve(rs.Schedule, rs.Workload, optimal.Options{})
		fmt.Printf("\noffline optimal: delivery %s, avg delay incl. undelivered %ss (online: %ss)\n",
			report.Pct(opt.DeliveryRate()), report.F(opt.AvgDelayAll()), report.F(s.AvgDelayAll))
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -fig fig4 [-scale tiny|default|full] [-out results]
//	experiments -fig all -scale default -out results
//
// For each experiment it writes <out>/<id>.dat (gnuplot-style series)
// and <out>/<id>.txt (an ASCII rendering plus notes), and prints the
// ASCII form to stdout. EXPERIMENTS.md records the paper-vs-measured
// comparison produced from these outputs.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"rapid/internal/exp"
	"rapid/internal/report"
)

func main() {
	var (
		figID  = flag.String("fig", "", "experiment id (fig3..fig24, table3) or 'all'")
		scale  = flag.String("scale", "default", "tiny | default | full")
		outDir = flag.String("out", "results", "output directory")
		list   = flag.Bool("list", false, "list experiments and exit")
		plotW  = flag.Int("plot-width", 72, "ASCII plot width")
		plotH  = flag.Int("plot-height", 20, "ASCII plot height")
		quiet  = flag.Bool("q", false, "suppress ASCII plots on stdout")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *figID == "" {
		fmt.Fprintln(os.Stderr, "missing -fig; use -list to see experiments")
		os.Exit(2)
	}

	var sc exp.Scale
	switch *scale {
	case "tiny":
		sc = exp.TinyScale()
	case "default":
		sc = exp.DefaultScale()
	case "full":
		sc = exp.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	var targets []exp.Experiment
	if *figID == "all" {
		targets = exp.All()
	} else {
		e, ok := exp.ByID(*figID)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *figID)
			os.Exit(2)
		}
		targets = []exp.Experiment{e}
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	for _, e := range targets {
		start := time.Now()
		out := e.Run(sc)
		elapsed := time.Since(start).Round(time.Millisecond)

		var text strings.Builder
		fmt.Fprintf(&text, "%s — %s (scale %s, %v)\n\n", e.ID, e.Title, sc.Name, elapsed)
		if out.Figure != nil {
			fig := toReportFigure(out.Figure)
			datPath := filepath.Join(*outDir, e.ID+".dat")
			f, err := os.Create(datPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := fig.WriteDat(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f.Close()
			text.WriteString(fig.RenderASCII(*plotW, *plotH))
		}
		if out.Table != nil {
			tbl := &report.Table{Header: out.Table.Header, Rows: out.Table.Rows}
			text.WriteString(tbl.Render())
		}
		for _, n := range out.Notes {
			fmt.Fprintf(&text, "\nnote: %s\n", n)
		}
		txtPath := filepath.Join(*outDir, e.ID+".txt")
		if err := os.WriteFile(txtPath, []byte(text.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Println(text.String())
		} else {
			fmt.Printf("%s done in %v -> %s\n", e.ID, elapsed, txtPath)
		}
	}
}

// toReportFigure converts the harness figure into the report type.
func toReportFigure(f *exp.Figure) *report.Figure {
	out := &report.Figure{ID: f.ID, Title: f.Title, XLabel: f.XLabel, YLabel: f.YLabel}
	for _, s := range f.Series {
		out.Series = append(out.Series, report.Series{Label: s.Label, X: s.X, Y: s.Y})
	}
	return out
}

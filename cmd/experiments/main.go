// Command experiments regenerates the paper's tables and figures and
// runs registered scenario-family sweeps on the parallel experiment
// engine.
//
// Usage:
//
//	experiments -list
//	experiments -fig fig4 [-scale tiny|default|full] [-out results] [-workers 8]
//	experiments -fig all -scale default -out results
//	experiments -families
//	experiments -family hetero-buffers -scale tiny
//
// For each experiment it writes <out>/<id>.dat (gnuplot-style series)
// and <out>/<id>.txt (an ASCII rendering plus notes), and prints the
// ASCII form to stdout. EXPERIMENTS.md records the paper-vs-measured
// comparison produced from these outputs.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"rapid/internal/exp"
	"rapid/internal/report"
	"rapid/internal/scenario"
)

func main() {
	var (
		figID    = flag.String("fig", "", "experiment id (fig3..fig24, table3) or 'all'")
		scale    = flag.String("scale", "default", "tiny | default | full")
		outDir   = flag.String("out", "results", "output directory")
		list     = flag.Bool("list", false, "list experiments and exit")
		families = flag.Bool("families", false, "list registered scenario families and exit")
		family   = flag.String("family", "", "run a registered scenario family sweep")
		workers  = flag.Int("workers", 0, "engine worker-pool size (0 = GOMAXPROCS)")
		plotW    = flag.Int("plot-width", 72, "ASCII plot width")
		plotH    = flag.Int("plot-height", 20, "ASCII plot height")
		quiet    = flag.Bool("q", false, "suppress ASCII plots on stdout")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *families {
		for _, f := range scenario.Families() {
			fmt.Printf("%-18s %s\n", f.Name, f.Doc)
		}
		return
	}

	exp.SetWorkers(*workers)

	var sc exp.Scale
	switch *scale {
	case "tiny":
		sc = exp.TinyScale()
	case "default":
		sc = exp.DefaultScale()
	case "full":
		sc = exp.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	if *family != "" {
		runFamily(*family, sc)
		return
	}

	if *figID == "" {
		fmt.Fprintln(os.Stderr, "missing -fig; use -list to see experiments, -families for scenario sweeps")
		os.Exit(2)
	}

	var targets []exp.Experiment
	if *figID == "all" {
		targets = exp.All()
	} else {
		e, ok := exp.ByID(*figID)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *figID)
			os.Exit(2)
		}
		targets = []exp.Experiment{e}
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	for _, e := range targets {
		start := time.Now()
		out := e.Run(sc)
		elapsed := time.Since(start).Round(time.Millisecond)

		var text strings.Builder
		fmt.Fprintf(&text, "%s — %s (scale %s, %v)\n\n", e.ID, e.Title, sc.Name, elapsed)
		if out.Figure != nil {
			fig := toReportFigure(out.Figure)
			datPath := filepath.Join(*outDir, e.ID+".dat")
			f, err := os.Create(datPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := fig.WriteDat(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f.Close()
			text.WriteString(fig.RenderASCII(*plotW, *plotH))
		}
		if out.Table != nil {
			tbl := &report.Table{Header: out.Table.Header, Rows: out.Table.Rows}
			text.WriteString(tbl.Render())
		}
		for _, n := range out.Notes {
			fmt.Fprintf(&text, "\nnote: %s\n", n)
		}
		txtPath := filepath.Join(*outDir, e.ID+".txt")
		if err := os.WriteFile(txtPath, []byte(text.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Println(text.String())
		} else {
			fmt.Printf("%s done in %v -> %s\n", e.ID, elapsed, txtPath)
		}
	}
}

// runFamily expands a registered scenario family at the chosen scale
// and prints one summary row per scenario.
func runFamily(name string, sc exp.Scale) {
	// Table 4's 15-minute horizon unless the scale overrides it — the
	// same rule the synthetic figures use (exp.SynthParams.Duration).
	duration := 900.0
	if sc.SynthDuration > 0 {
		duration = sc.SynthDuration
	}
	params := scenario.Params{
		Tag: sc.Name, Days: sc.Days, Runs: sc.Runs, DayHours: sc.DayHours,
		Loads: sc.SynthLoads, Nodes: 20, Duration: duration,
		Planes: sc.ConstelPlanes, SatsPerPlane: sc.ConstelSats,
		Ground: sc.ConstelGround, OrbitPeriod: sc.ConstelPeriod,
	}
	switch {
	case strings.HasPrefix(name, "trace"), name == "deployment":
		params.Loads = sc.TraceLoads
	case strings.HasPrefix(name, "constellation"), strings.HasPrefix(name, "cgr"), name == "asym-uplink":
		params.Loads = sc.ConstelLoads
		if params.OrbitPeriod > duration {
			// A horizon shorter than one orbit would leave most of the
			// plan unexpanded; run at least one full period.
			params.Duration = params.OrbitPeriod
		}
	}
	scs, err := scenario.Expand(name, params)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	engine := exp.DefaultEngine()
	start := time.Now()
	sums := engine.Summaries(scs)
	elapsed := time.Since(start).Round(time.Millisecond)

	tbl := &report.Table{Header: []string{
		"protocol", "load", "run", "generated", "delivered", "rate", "avg delay (s)", "within deadline",
	}}
	for i, s := range sums {
		tbl.AddRow(
			string(scs[i].Protocol),
			report.F(scs[i].Workload.Load),
			fmt.Sprint(scs[i].Run),
			fmt.Sprint(s.Generated),
			fmt.Sprint(s.Delivered),
			report.Pct(s.DeliveryRate),
			report.F(s.AvgDelay),
			report.Pct(s.WithinDeadline),
		)
	}
	fmt.Printf("family %s: %d scenarios on %d workers in %v\n\n", name, len(scs), engine.Workers(), elapsed)
	fmt.Print(tbl.Render())
}

// toReportFigure converts the harness figure into the report type.
func toReportFigure(f *exp.Figure) *report.Figure {
	out := &report.Figure{ID: f.ID, Title: f.Title, XLabel: f.XLabel, YLabel: f.YLabel}
	for _, s := range f.Series {
		out.Series = append(out.Series, report.Series{Label: s.Label, X: s.X, Y: s.Y})
	}
	return out
}

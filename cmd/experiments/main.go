// Command experiments regenerates the paper's tables and figures and
// runs registered scenario-family sweeps on the parallel experiment
// engine.
//
// Usage:
//
//	experiments -list
//	experiments -fig fig4 [-scale tiny|default|full] [-out results] [-workers 8]
//	experiments -fig all -scale default -out results
//	experiments -families
//	experiments -family hetero-buffers -scale tiny
//
// For each experiment it writes <out>/<id>.dat (gnuplot-style series)
// and <out>/<id>.txt (an ASCII rendering plus notes), and prints the
// ASCII form to stdout. EXPERIMENTS.md records the paper-vs-measured
// comparison produced from these outputs.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"rapid/internal/exp"
	"rapid/internal/report"
	"rapid/internal/scenario"
)

func main() {
	var (
		figID    = flag.String("fig", "", "experiment id (fig3..fig24, table3) or 'all'")
		scale    = flag.String("scale", "default", "tiny | default | full")
		outDir   = flag.String("out", "results", "output directory")
		list     = flag.Bool("list", false, "list experiments and exit")
		families = flag.Bool("families", false, "list registered scenario families and exit")
		family   = flag.String("family", "", "run a registered scenario family sweep")
		reps     = flag.Int("reps", 0, "replications per family grid point (overrides the scale's run count; R>=2 adds mean ± 95% CI figures)")
		workers  = flag.Int("workers", 0, "engine worker-pool size (0 = GOMAXPROCS)")
		runWork  = flag.Int("run-workers", 0, "intra-run event-engine workers (0/1 = serial, -1 = GOMAXPROCS); output is byte-identical at any setting")
		plotW    = flag.Int("plot-width", 72, "ASCII plot width")
		plotH    = flag.Int("plot-height", 20, "ASCII plot height")
		quiet    = flag.Bool("q", false, "suppress ASCII plots on stdout")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *families {
		for _, f := range scenario.Families() {
			fmt.Printf("%-18s %s\n", f.Name, f.Doc)
		}
		return
	}

	exp.SetWorkers(*workers)
	exp.SetRunWorkers(*runWork)

	var sc exp.Scale
	switch *scale {
	case "tiny":
		sc = exp.TinyScale()
	case "default":
		sc = exp.DefaultScale()
	case "full":
		sc = exp.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	if *family != "" {
		runFamily(*family, sc, *reps, *outDir, *plotW, *plotH, *quiet)
		return
	}

	if *figID == "" {
		fmt.Fprintln(os.Stderr, "missing -fig; use -list to see experiments, -families for scenario sweeps")
		os.Exit(2)
	}

	var targets []exp.Experiment
	if *figID == "all" {
		targets = exp.All()
	} else {
		e, ok := exp.ByID(*figID)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *figID)
			os.Exit(2)
		}
		targets = []exp.Experiment{e}
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	for _, e := range targets {
		start := time.Now() //rapidlint:allow nondeterminism — wall-clock progress timing for the operator; never feeds simulation state
		out := e.Run(sc)
		elapsed := time.Since(start).Round(time.Millisecond) //rapidlint:allow nondeterminism — wall-clock progress timing for the operator
		if err := writeOutput(out, e.ID, e.Title, *outDir, sc, elapsed, *plotW, *plotH, *quiet); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// writeOutput renders one experiment artifact: <outDir>/<id>.dat for
// the series, <outDir>/<id>.txt for the ASCII rendering plus notes, and
// the ASCII form on stdout unless quiet.
func writeOutput(out exp.Output, id, title, outDir string, sc exp.Scale, elapsed time.Duration, plotW, plotH int, quiet bool) error {
	var text strings.Builder
	fmt.Fprintf(&text, "%s — %s (scale %s, %v)\n\n", id, title, sc.Name, elapsed)
	if out.Figure != nil {
		fig := toReportFigure(out.Figure)
		datPath := filepath.Join(outDir, id+".dat")
		f, err := os.Create(datPath)
		if err != nil {
			return err
		}
		if err := fig.WriteDat(f); err != nil {
			f.Close()
			return err
		}
		f.Close()
		text.WriteString(fig.RenderASCII(plotW, plotH))
	}
	if out.Table != nil {
		tbl := &report.Table{Header: out.Table.Header, Rows: out.Table.Rows}
		text.WriteString(tbl.Render())
	}
	for _, n := range out.Notes {
		fmt.Fprintf(&text, "\nnote: %s\n", n)
	}
	txtPath := filepath.Join(outDir, id+".txt")
	if err := os.WriteFile(txtPath, []byte(text.String()), 0o644); err != nil {
		return err
	}
	if !quiet {
		fmt.Println(text.String())
	} else {
		fmt.Printf("%s done in %v -> %s\n", id, elapsed, txtPath)
	}
	return nil
}

// runFamily expands a registered scenario family at the chosen scale
// and prints one summary row per scenario. With two or more
// replications per grid point it additionally reduces the family to
// mean ± 95% CI error-bar figures and writes them to outDir.
func runFamily(name string, sc exp.Scale, reps int, outDir string, plotW, plotH int, quiet bool) {
	params := exp.FamilyParams(name, sc)
	if reps > 0 {
		params.Runs = reps
	}
	scs, err := scenario.Expand(name, params)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	engine := exp.DefaultEngine()
	start := time.Now() //rapidlint:allow nondeterminism — wall-clock progress timing for the operator; never feeds simulation state
	sums := engine.Summaries(scs)
	elapsed := time.Since(start).Round(time.Millisecond) //rapidlint:allow nondeterminism — wall-clock progress timing for the operator

	fmt.Printf("family %s: %d scenarios on %d workers in %v\n\n", name, len(scs), engine.Workers(), elapsed)
	if !quiet {
		fmt.Print(exp.RenderFamilySummaryTable(scs, sums))
	}

	if params.Runs < 2 {
		return
	}
	// Replication statistics: every summary above is already cached, so
	// the CI reduction re-runs nothing.
	outs, err := engine.FamilyCI(name, sc, params.Runs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	elapsed = time.Since(start).Round(time.Millisecond) //rapidlint:allow nondeterminism — wall-clock progress timing for the operator
	for _, out := range outs {
		if err := writeOutput(out, out.Figure.ID, out.Figure.Title, outDir, sc, elapsed, plotW, plotH, quiet); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// toReportFigure converts the harness figure into the report type.
func toReportFigure(f *exp.Figure) *report.Figure {
	out := &report.Figure{ID: f.ID, Title: f.Title, XLabel: f.XLabel, YLabel: f.YLabel}
	for _, s := range f.Series {
		out.Series = append(out.Series, report.Series{Label: s.Label, X: s.X, Y: s.Y, YErr: s.YErr})
	}
	return out
}

package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVetToolEndToEnd drives the full unit-checker protocol: it builds
// the rapidlint binary, points `go vet -vettool` at it from a
// throwaway module, and asserts that a reintroduced global rand.Intn
// call fails the run (the CI regression the lint job exists to catch)
// while the seeded-stream fix passes it.
func TestVetToolEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not on PATH: %v", err)
	}

	tmp := t.TempDir()
	tool := filepath.Join(tmp, "rapidlint.bin")
	build := exec.Command(goTool, "build", "-o", tool, ".")
	if out, berr := build.CombinedOutput(); berr != nil {
		t.Fatalf("go build ./cmd/rapidlint: %v\n%s", berr, out)
	}

	mod := filepath.Join(tmp, "scratch")
	if err := os.MkdirAll(mod, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(mod, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.24\n")

	vet := func() (string, error) {
		cmd := exec.Command(goTool, "vet", "-vettool="+tool, "./...")
		cmd.Dir = mod
		cmd.Env = append(os.Environ(), "GOWORK=off")
		out, verr := cmd.CombinedOutput()
		return string(out), verr
	}

	write("main.go", `package main

import "math/rand"

func main() {
	_ = rand.Intn(10)
}
`)
	out, verr := vet()
	if verr == nil {
		t.Fatalf("go vet passed a global rand.Intn call:\n%s", out)
	}
	if !strings.Contains(out, "rand.Intn draws from the global") || !strings.Contains(out, "[nondeterminism]") {
		t.Fatalf("failure output missing the nondeterminism diagnostic:\n%s", out)
	}

	write("main.go", `package main

import "math/rand"

func main() {
	r := rand.New(rand.NewSource(1))
	_ = r.Intn(10)
}
`)
	if out, verr := vet(); verr != nil {
		t.Fatalf("go vet rejected the seeded-stream fix: %v\n%s", verr, out)
	}
}

// Command rapidlint is the project's multichecker: it bundles the
// rapidlint analyzer suite (internal/lint) behind the `go vet
// -vettool` protocol, so CI and developers run it as
//
//	go build -o rapidlint.bin ./cmd/rapidlint
//	go vet -vettool=$PWD/rapidlint.bin ./...
//
// The binary speaks the same unit-checker protocol as
// golang.org/x/tools/go/analysis/unitchecker, reimplemented on the
// standard library alone (this build environment has no module
// proxy): the go command invokes it once per package with a JSON
// config file describing the sources and the export data of every
// dependency, plus -V=full for build caching and -flags for flag
// discovery. Type-checking uses go/importer's gc importer with a
// lookup into the config's PackageFile map — the identical mechanism
// upstream unitchecker uses.
//
// Diagnostics print as file:line:col: message [analyzer], and the
// process exits 2 when any diagnostic fired, which go vet surfaces as
// a failure.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"rapid/internal/lint"
	"rapid/internal/lint/analysis"
)

// config is the subset of the go command's vet config JSON this
// driver consumes. Field names must match cmd/go's encoding exactly.
type config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("rapidlint: ")

	printFlags := flag.Bool("flags", false, "print analyzer flags in JSON (go vet protocol)")
	flag.Var(versionFlag{}, "V", "print version and exit (go vet protocol)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: rapidlint [-flags] [-V=full] <package>.cfg")
		fmt.Fprintln(os.Stderr, "\nrapidlint is a go vet -vettool; it is driven by the go command:")
		fmt.Fprintln(os.Stderr, "  go vet -vettool=$(realpath rapidlint.bin) ./...")
		fmt.Fprintln(os.Stderr, "\nanalyzers:")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
	}
	flag.Parse()

	if *printFlags {
		// go vet queries the tool's flags as a JSON array; rapidlint
		// exposes none beyond the protocol ones, so the answer is
		// empty and go vet passes only the config file.
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		flag.Usage()
		os.Exit(1)
	}
	diags, err := run(args[0])
	if err != nil {
		log.Fatal(err)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(2)
	}
}

// versionFlag implements -V=full exactly like x/tools' analysisflags:
// the go command runs `rapidlint -V=full` and uses the printed line,
// which must include a content hash of the executable, as the tool's
// build-cache identity.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) Get() any         { return nil }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s", s)
	}
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.Sum256(data)
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", filepath.Base(os.Args[0]), string(h[:16]))
	os.Exit(0)
	return nil
}

// run executes the full unit-check for one package config and returns
// the rendered diagnostics.
func run(cfgFile string) ([]string, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	var cfg config
	if uerr := json.Unmarshal(data, &cfg); uerr != nil {
		return nil, fmt.Errorf("cannot decode JSON config file %s: %v", cfgFile, uerr)
	}

	// The go command always expects the facts file to appear, even
	// though rapidlint's analyzers export none.
	writeVetx := func() error {
		if cfg.VetxOutput == "" {
			return nil
		}
		return os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
	}
	if cfg.VetxOnly {
		// Dependency visited only for facts: nothing to do.
		return nil, writeVetx()
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, perr := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if perr != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, writeVetx()
			}
			return nil, perr
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a resolved package path, not an import path.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})

	tc := &types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(cfg.Compiler, runtime.GOARCH),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, writeVetx()
		}
		return nil, err
	}

	diags := runAnalyzers(lint.All(), fset, files, pkg, info)
	return diags, writeVetx()
}

// runAnalyzers applies every analyzer to the package and returns the
// rendered, position-sorted diagnostics.
func runAnalyzers(analyzers []*analysis.Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []string {
	type diag struct {
		pos token.Position
		msg string
	}
	var all []diag
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				all = append(all, diag{fset.Position(d.Pos), fmt.Sprintf("%s [%s]", d.Message, a.Name)})
			},
		}
		if _, err := a.Run(pass); err != nil {
			log.Fatalf("analyzer %s: %v", a.Name, err)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].pos, all[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	out := make([]string, len(all))
	for i, d := range all {
		out[i] = fmt.Sprintf("%s: %s", d.pos, d.msg)
	}
	return out
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Command tracegen generates synthetic DieselNet contact traces in the
// repository's text trace format, one file per day, and can validate
// existing trace files.
//
//	tracegen -days 58 -out traces/
//	tracegen -validate traces/day03.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"rapid/internal/trace"
)

func main() {
	var (
		days     = flag.Int("days", 58, "number of day traces to generate")
		outDir   = flag.String("out", "traces", "output directory")
		seed     = flag.Int64("seed", 1, "generator seed")
		fleet    = flag.Int("fleet", 40, "fleet size")
		active   = flag.Int("active", 19, "average buses on the road per day")
		hours    = flag.Float64("hours", 19, "service hours per day")
		perturb  = flag.Bool("perturb", false, "apply deployment perturbations (the Fig. 3 'Real' arm)")
		validate = flag.String("validate", "", "validate a trace file and exit")
	)
	flag.Parse()

	if *validate != "" {
		f, err := os.Open(*validate)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		s, err := trace.Read(f)
		if err != nil {
			fail(err)
		}
		if err := s.Validate(); err != nil {
			fail(err)
		}
		mean, _ := s.MeanOpportunity()
		fmt.Printf("%s: OK — %d meetings over %.1f h, %d nodes, %.1f MB capacity (mean opportunity %.2f MB)\n",
			*validate, len(s.Meetings), s.Duration/3600, len(s.Nodes()),
			float64(s.TotalBytes())/1e6, mean/1e6)
		return
	}

	cfg := trace.DefaultDieselNet()
	cfg.Seed = *seed
	cfg.Fleet = *fleet
	cfg.ActivePerDay = *active
	cfg.DayHours = *hours
	gen := trace.NewDieselNet(cfg)

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fail(err)
	}
	for day := 0; day < *days; day++ {
		s := gen.Day(day)
		if *perturb {
			p := trace.DefaultPerturb()
			p.Seed = *seed + int64(day)
			s = trace.Perturb(s, p)
		}
		name := filepath.Join(*outDir, fmt.Sprintf("day%02d.trace", day))
		f, err := os.Create(name)
		if err != nil {
			fail(err)
		}
		if err := trace.Write(f, s); err != nil {
			fail(err)
		}
		f.Close()
		fmt.Printf("%s: %d meetings, %.1f MB\n", name, len(s.Meetings), float64(s.TotalBytes())/1e6)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// Command tracegen generates contact traces in the repository's text
// trace format, one file per day, and can validate existing trace
// files. Generation goes through the declarative schedule specs of
// internal/scenario, so any schedule source the experiment engine can
// sweep — DieselNet days, exponential or power-law mobility — can also
// be exported as a trace file.
//
//	tracegen -days 58 -out traces/
//	tracegen -model powerlaw -nodes 30 -duration 900 -days 5 -out traces/
//	tracegen -validate traces/day03.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"rapid/internal/scenario"
	"rapid/internal/trace"
)

func main() {
	var (
		model    = flag.String("model", "dieselnet", "dieselnet | exponential | powerlaw")
		days     = flag.Int("days", 58, "number of day traces to generate")
		outDir   = flag.String("out", "traces", "output directory")
		seed     = flag.Int64("seed", 1, "generator seed")
		fleet    = flag.Int("fleet", 40, "fleet size (dieselnet)")
		active   = flag.Int("active", 19, "average buses on the road per day (dieselnet)")
		hours    = flag.Float64("hours", 19, "service hours per day (dieselnet)")
		nodes    = flag.Int("nodes", 20, "node count (synthetic models)")
		duration = flag.Float64("duration", 900, "day length in seconds (synthetic models)")
		meeting  = flag.Float64("mean-meeting", 60, "mean pairwise inter-meeting time (s, synthetic)")
		transfer = flag.Int64("transfer", 100<<10, "transfer opportunity bytes (synthetic)")
		perturb  = flag.Bool("perturb", false, "apply deployment perturbations (the Fig. 3 'Real' arm)")
		validate = flag.String("validate", "", "validate a trace file and exit")
	)
	flag.Parse()

	if *validate != "" {
		f, err := os.Open(*validate)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		s, err := trace.Read(f)
		if err != nil {
			fail(err)
		}
		if err := s.Validate(); err != nil {
			fail(err)
		}
		mean, _ := s.MeanOpportunity()
		fmt.Printf("%s: OK — %d meetings over %.1f h, %d nodes, %.1f MB capacity (mean opportunity %.2f MB)\n",
			*validate, len(s.Meetings), s.Duration/3600, len(s.Nodes()),
			float64(s.TotalBytes())/1e6, mean/1e6)
		return
	}

	var spec scenario.ScheduleSpec
	switch *model {
	case "dieselnet":
		cfg := trace.DefaultDieselNet()
		cfg.Seed = *seed
		cfg.Fleet = *fleet
		cfg.ActivePerDay = *active
		cfg.DayHours = *hours
		spec = scenario.ScheduleSpec{Source: scenario.SourceDieselNet, Diesel: cfg}
	case "exponential", "powerlaw":
		src := scenario.SourceExponential
		if *model == "powerlaw" {
			src = scenario.SourcePowerLaw
		}
		spec = scenario.ScheduleSpec{
			Source: src, Nodes: *nodes, Duration: *duration,
			MeanMeeting: *meeting, TransferBytes: *transfer,
			Alpha: 1, RankSeed: 42,
		}
	default:
		fail(fmt.Errorf("unknown model %q", *model))
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fail(err)
	}
	for day := 0; day < *days; day++ {
		spec.Day = day
		if *perturb {
			p := trace.DefaultPerturb()
			p.Seed = *seed + int64(day)
			spec.Perturb, spec.PerturbCfg = true, p
		}
		// Synthetic models draw day d from seed+d; DieselNet days are
		// deterministic in (config, day).
		s := spec.Build(*seed + int64(day))
		name := filepath.Join(*outDir, fmt.Sprintf("day%02d.trace", day))
		f, err := os.Create(name)
		if err != nil {
			fail(err)
		}
		if err := trace.Write(f, s); err != nil {
			fail(err)
		}
		f.Close()
		fmt.Printf("%s: %d meetings, %.1f MB\n", name, len(s.Meetings), float64(s.TotalBytes())/1e6)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

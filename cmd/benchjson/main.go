// Command benchjson converts `go test -bench` output into the
// machine-readable BENCH_<date>.json format the CI bench job archives,
// so the repository accumulates a perf trajectory instead of throwing
// benchmark numbers away in scrolled-past logs.
//
// Usage:
//
//	go test -bench . -benchtime 3x -run xxx ./... | go run ./cmd/benchjson -out BENCH_$(date +%F).json
//
// Unrecognized lines (test chatter, PASS/ok footers) are skipped, so
// the full `go test` stream can be piped in unfiltered.
//
// With -compare, the fresh results are additionally diffed against a
// committed baseline report and a markdown delta table is printed —
// the CI regression gate:
//
//	... | go run ./cmd/benchjson -out new.json -compare BENCH_old.json -tolerance 0.15 -gate BenchmarkConstellation
//
// The process exits 1 when any gate benchmark regressed by more than
// the tolerance fraction in s/op. Names are matched with their
// -GOMAXPROCS suffix stripped, so reports from machines with different
// core counts compare.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Metrics carries every remaining `value unit` pair of the line
	// (B/op, allocs/op, and custom b.ReportMetric units).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the BENCH_<date>.json document.
type Report struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPU        string      `json:"cpu,omitempty"`
	Note       string      `json:"note,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	note := flag.String("note", "", "free-text annotation stored in the report")
	date := flag.String("date", "", "date stamp for the report, YYYY-MM-DD (default: today in UTC); pass an explicit date for bit-reproducible artifacts")
	compare := flag.String("compare", "", "baseline BENCH_*.json to diff the fresh results against")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional s/op regression for gate benchmarks before exiting 1")
	gate := flag.String("gate", "BenchmarkConstellation", "comma-separated benchmark names (suffix-stripped) the tolerance gate applies to")
	flag.Parse()

	stamp, err := resolveDate(*date)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	rep := Report{
		Date:      stamp,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Note:      *note,
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			rep.CPU = strings.TrimSpace(cpu)
			continue
		}
		if b, ok := parseBenchLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if serr := sc.Err(); serr != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", serr)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	switch {
	case *out == "" && *compare == "":
		os.Stdout.Write(enc)
	case *out != "":
		if werr := os.WriteFile(*out, enc, 0o644); werr != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", werr)
			os.Exit(1)
		}
	}
	if *compare == "" {
		return
	}
	base, err := readReport(*compare)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if !compareReports(os.Stdout, base, rep, *compare, gateSet(*gate), *tolerance) {
		os.Exit(1)
	}
}

// resolveDate validates an explicit -date stamp, or defaults to today
// in UTC. An explicit date makes the report byte-reproducible — CI
// passes the commit date, so regenerating the artifact for the same
// commit yields the same bytes.
func resolveDate(date string) (string, error) {
	if date == "" {
		//rapidlint:allow nondeterminism — operator convenience default; CI passes an explicit -date for reproducible artifacts
		return time.Now().UTC().Format("2006-01-02"), nil
	}
	if _, err := time.Parse("2006-01-02", date); err != nil {
		return "", fmt.Errorf("invalid -date %q: want YYYY-MM-DD", date)
	}
	return date, nil
}

// readReport loads a committed BENCH_*.json baseline.
func readReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	err = json.Unmarshal(data, &rep)
	return rep, err
}

// gateSet parses the -gate list into a set of suffix-stripped names.
func gateSet(list string) map[string]bool {
	set := map[string]bool{}
	for _, name := range strings.Split(list, ",") {
		if name = strings.TrimSpace(name); name != "" {
			set[trimProcSuffix(name)] = true
		}
	}
	return set
}

// trimProcSuffix strips the -GOMAXPROCS suffix Go appends to benchmark
// names on multi-core machines, so BenchmarkConstellation-8 and
// BenchmarkConstellation name the same benchmark.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// compareReports prints a markdown delta table of fresh vs baseline and
// reports whether every gate benchmark stayed within the tolerance.
// Benchmarks present on only one side are listed but never gate.
func compareReports(w io.Writer, base, fresh Report, basePath string, gates map[string]bool, tolerance float64) bool {
	baseBy := map[string]Benchmark{}
	for _, b := range base.Benchmarks {
		baseBy[trimProcSuffix(b.Name)] = b
	}
	fmt.Fprintf(w, "### Benchmark delta vs `%s` (%s)\n\n", basePath, base.Date)
	fmt.Fprintf(w, "| benchmark | baseline s/op | current s/op | delta | gate (±%.0f%%) |\n", tolerance*100)
	fmt.Fprintf(w, "|---|---|---|---|---|\n")
	pass := true
	seen := map[string]bool{}
	for _, b := range fresh.Benchmarks {
		name := trimProcSuffix(b.Name)
		seen[name] = true
		old, ok := baseBy[name]
		if !ok || old.NsPerOp == 0 || b.NsPerOp == 0 {
			fmt.Fprintf(w, "| %s | — | %.3f | new | — |\n", name, b.NsPerOp/1e9)
			continue
		}
		delta := b.NsPerOp/old.NsPerOp - 1
		verdict := "—"
		if gates[name] {
			if delta > tolerance {
				verdict = "FAIL"
				pass = false
			} else {
				verdict = "ok"
			}
		}
		fmt.Fprintf(w, "| %s | %.3f | %.3f | %+.1f%% | %s |\n",
			name, old.NsPerOp/1e9, b.NsPerOp/1e9, delta*100, verdict)
	}
	// Baseline benchmarks absent from the fresh run are dropped
	// silently (partial runs are normal) — unless gated: deleting a
	// gated benchmark must not evade the gate.
	for _, b := range base.Benchmarks {
		if name := trimProcSuffix(b.Name); !seen[name] && gates[name] {
			fmt.Fprintf(w, "| %s | %.3f | — | missing | FAIL |\n", name, b.NsPerOp/1e9)
			pass = false
		}
	}
	fmt.Fprintln(w)
	if pass {
		fmt.Fprintln(w, "benchmark gate: PASS")
	} else {
		fmt.Fprintf(w, "benchmark gate: FAIL — a gated benchmark regressed more than %.0f%% in s/op\n", tolerance*100)
	}
	return pass
}

// parseBenchLine parses one `BenchmarkName-N  iters  v unit  v unit ...`
// result line. It reports ok=false for anything else.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	// The remainder alternates value/unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Metrics == nil {
			b.Metrics = map[string]float64{}
		}
		b.Metrics[unit] = v
	}
	if b.NsPerOp == 0 && b.Metrics == nil {
		return Benchmark{}, false
	}
	return b, true
}

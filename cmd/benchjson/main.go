// Command benchjson converts `go test -bench` output into the
// machine-readable BENCH_<date>.json format the CI bench job archives,
// so the repository accumulates a perf trajectory instead of throwing
// benchmark numbers away in scrolled-past logs.
//
// Usage:
//
//	go test -bench . -benchtime 3x -run xxx ./... | go run ./cmd/benchjson -out BENCH_$(date +%F).json
//
// Unrecognized lines (test chatter, PASS/ok footers) are skipped, so
// the full `go test` stream can be piped in unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Metrics carries every remaining `value unit` pair of the line
	// (B/op, allocs/op, and custom b.ReportMetric units).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the BENCH_<date>.json document.
type Report struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPU        string      `json:"cpu,omitempty"`
	Note       string      `json:"note,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	note := flag.String("note", "", "free-text annotation stored in the report")
	flag.Parse()

	rep := Report{
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Note:      *note,
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			rep.CPU = strings.TrimSpace(cpu)
			continue
		}
		if b, ok := parseBenchLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one `BenchmarkName-N  iters  v unit  v unit ...`
// result line. It reports ok=false for anything else.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	// The remainder alternates value/unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Metrics == nil {
			b.Metrics = map[string]float64{}
		}
		b.Metrics[unit] = v
	}
	if b.NsPerOp == 0 && b.Metrics == nil {
		return Benchmark{}, false
	}
	return b, true
}

package main

import (
	"strings"
	"testing"
)

func TestTrimProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkConstellation-8":    "BenchmarkConstellation",
		"BenchmarkConstellation":      "BenchmarkConstellation",
		"BenchmarkSweep/workers-1-16": "BenchmarkSweep/workers-1",
		"BenchmarkFoo-bar":            "BenchmarkFoo-bar", // non-numeric tail kept
	}
	for in, want := range cases {
		if got := trimProcSuffix(in); got != want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func report(nsPerOp map[string]float64) Report {
	r := Report{Date: "2026-01-01"}
	for name, ns := range nsPerOp {
		r.Benchmarks = append(r.Benchmarks, Benchmark{Name: name, Iterations: 1, NsPerOp: ns})
	}
	return r
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	base := report(map[string]float64{"BenchmarkConstellation": 1.0e9})
	fresh := report(map[string]float64{"BenchmarkConstellation-8": 1.10e9}) // +10%
	var sb strings.Builder
	if !compareReports(&sb, base, fresh, "base.json", gateSet("BenchmarkConstellation"), 0.15) {
		t.Fatalf("10%% regression under a 15%% gate failed:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "| ok |") {
		t.Errorf("gate verdict missing from table:\n%s", sb.String())
	}
}

func TestCompareRegressionFails(t *testing.T) {
	base := report(map[string]float64{
		"BenchmarkConstellation":     1.0e9,
		"BenchmarkMegaConstellation": 500e9,
	})
	fresh := report(map[string]float64{
		"BenchmarkConstellation":     1.20e9, // +20% > 15%
		"BenchmarkMegaConstellation": 900e9,  // worse, but not gated
	})
	var sb strings.Builder
	if compareReports(&sb, base, fresh, "base.json", gateSet("BenchmarkConstellation"), 0.15) {
		t.Fatalf("20%% regression passed a 15%% gate:\n%s", sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "FAIL") {
		t.Errorf("failure verdict missing:\n%s", out)
	}
	// The ungated mega benchmark must be reported but not gate.
	if !strings.Contains(out, "BenchmarkMegaConstellation | 500.000 | 900.000") {
		t.Errorf("ungated benchmark row missing:\n%s", out)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	base := report(map[string]float64{"BenchmarkConstellation": 1.0e9})
	fresh := report(map[string]float64{"BenchmarkConstellation": 0.5e9})
	var sb strings.Builder
	if !compareReports(&sb, base, fresh, "base.json", gateSet("BenchmarkConstellation"), 0.15) {
		t.Fatalf("an improvement failed the gate:\n%s", sb.String())
	}
}

func TestCompareNewAndMissingRows(t *testing.T) {
	base := report(map[string]float64{"BenchmarkOld": 1.0e9})
	fresh := report(map[string]float64{"BenchmarkNew": 2.0e9})
	var sb strings.Builder
	if !compareReports(&sb, base, fresh, "base.json", gateSet("BenchmarkConstellation"), 0.15) {
		t.Fatal("disjoint ungated benchmark sets must not fail the gate")
	}
	out := sb.String()
	if !strings.Contains(out, "new") {
		t.Errorf("new-benchmark row missing:\n%s", out)
	}
	if strings.Contains(out, "BenchmarkOld") {
		t.Errorf("ungated baseline-only benchmark should be dropped:\n%s", out)
	}
}

// A gated benchmark deleted from the fresh run must fail the gate —
// otherwise removing the benchmark evades it.
func TestCompareMissingGateFails(t *testing.T) {
	base := report(map[string]float64{"BenchmarkConstellation": 1.0e9})
	fresh := report(map[string]float64{"BenchmarkNew": 2.0e9})
	var sb strings.Builder
	if compareReports(&sb, base, fresh, "base.json", gateSet("BenchmarkConstellation"), 0.15) {
		t.Fatalf("missing gated benchmark passed:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "missing | FAIL") {
		t.Errorf("missing-gate row absent:\n%s", sb.String())
	}
}

func TestParseBenchLine(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkConstellation-8   \t3\t1310000000 ns/op\t  123456 B/op\t 789 allocs/op")
	if !ok {
		t.Fatal("valid bench line rejected")
	}
	if b.Name != "BenchmarkConstellation-8" || b.Iterations != 3 || b.NsPerOp != 1.31e9 {
		t.Errorf("parsed %+v", b)
	}
	if b.Metrics["B/op"] != 123456 || b.Metrics["allocs/op"] != 789 {
		t.Errorf("metrics %+v", b.Metrics)
	}
	if _, ok := parseBenchLine("ok  \trapid\t12.3s"); ok {
		t.Error("footer line parsed as benchmark")
	}
}

// Newsfeed: the paper's motivating application (§1) — "a simple news
// and information application is better served by maximizing the
// number of news stories delivered before they are outdated, rather
// than maximizing the number of stories eventually delivered."
//
// A publisher node pushes stories with a freshness deadline into a
// power-law mobility DTN (§6.3's skewed human-contact model). RAPID is
// run with the missed-deadlines metric (Eq. 2) and compared against
// protocols that only incidentally care about deadlines.
//
//	go run ./examples/newsfeed
package main

import (
	"fmt"
	"math/rand"

	"rapid"
)

const (
	readers   = 19
	publisher = rapid.NodeID(0)
	freshness = 25.0 // a story is stale after 25 s
)

func main() {
	sched := rapid.PowerLawMobility(rapid.MobilityConfig{
		Nodes:         readers + 1,
		Duration:      900,
		MeanMeeting:   60,
		TransferBytes: 60 << 10,
		PowerLawAlpha: 1,
	}, 11)

	// Stories: every 2 s the publisher addresses a random reader; each
	// story carries the freshness deadline.
	r := rand.New(rand.NewSource(3))
	var stories rapid.Workload
	id := int64(1)
	for t := 5.0; t < 800; t += 2 {
		dst := rapid.NodeID(1 + r.Intn(readers))
		stories = append(stories, &rapid.Packet{
			ID: rapid.PacketID(id), Src: publisher, Dst: dst,
			Size: 1 << 10, Created: t, Deadline: t + freshness,
		})
		id++
	}
	stories.Sort()

	fmt.Printf("newsfeed: %d stories, %.0f s freshness window, %d readers\n\n",
		len(stories), freshness, readers)
	fmt.Printf("%-24s %12s %14s %10s\n", "protocol", "fresh", "eventually", "avg delay")

	for _, proto := range []rapid.Protocol{
		rapid.RAPID(rapid.MinimizeMissedDeadlines),
		rapid.RAPID(rapid.MinimizeAvgDelay),
		rapid.MaxProp(),
		rapid.SprayAndWait(0),
		rapid.Random(),
	} {
		res := rapid.Run(sched, stories, proto, rapid.Config{
			BufferBytes: 100 << 10,
			Seed:        21,
		})
		s := res.Summary
		fmt.Printf("%-24s %11.1f%% %13.1f%% %8.1f s\n",
			proto.Name(), 100*s.WithinDeadline, 100*s.DeliveryRate, s.AvgDelay)
	}
	fmt.Println("\n'fresh' = delivered before going stale; the deadline-metric")
	fmt.Println("RAPID arm spends bandwidth only where freshness can still be saved.")
}

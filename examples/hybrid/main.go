// Hybrid: the hybrid-DTN study of §6.2.3 — what does RAPID gain if its
// control traffic moves over an instant long-range channel (the paper's
// XTEND radio idea) instead of riding the data contacts?
//
// The example sweeps load over a DieselNet day and prints the in-band
// versus instant-global comparison behind Figs. 10-12.
//
//	go run ./examples/hybrid
package main

import (
	"fmt"

	"rapid"
)

func main() {
	cfg := rapid.DefaultDieselNet()
	cfg.DayHours = 6 // keep the example quick
	sched := rapid.DieselNetDay(cfg, 2)

	fmt.Println("hybrid DTN: in-band vs instant global control channel")
	fmt.Printf("%6s | %22s | %22s\n", "", "in-band", "instant global")
	fmt.Printf("%6s | %9s %12s | %9s %12s\n",
		"load", "delivered", "avg delay", "delivered", "avg delay")

	for _, load := range []float64{4, 12, 24} {
		w := rapid.PoissonWorkload(rapid.WorkloadConfig{
			Nodes:                   sched.Nodes(),
			PacketsPerWindowPerDest: load,
			Window:                  3600,
			Duration:                sched.Duration,
			PacketBytes:             1 << 10,
			Deadline:                2.7 * 3600,
		}, int64(load))

		inband := rapid.Run(sched, w, rapid.RAPID(rapid.MinimizeAvgDelay),
			rapid.Config{Seed: 5})
		global := rapid.Run(sched, w, rapid.RAPID(rapid.MinimizeAvgDelay),
			rapid.Config{Seed: 5, Control: rapid.InstantGlobal})

		fmt.Printf("%6.0f | %8.1f%% %9.1f min | %8.1f%% %9.1f min\n",
			load,
			100*inband.Summary.DeliveryRate, inband.Summary.AvgDelay/60,
			100*global.Summary.DeliveryRate, global.Summary.AvgDelay/60)
	}
	fmt.Println("\nthe global channel removes metadata cost and staleness; the gap")
	fmt.Println("bounds what better control information could buy (Figs. 10-12).")
}

// Quickstart: simulate RAPID against Random replication on a small
// exponential-mobility DTN and print both summaries.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"rapid"
)

func main() {
	// 20 nodes meeting pairwise every ~60 s on average for 15 minutes,
	// 100 KB per transfer opportunity (Table 4's synthetic setup).
	sched := rapid.ExponentialMobility(rapid.MobilityConfig{
		Nodes:         20,
		Duration:      900,
		MeanMeeting:   60,
		TransferBytes: 100 << 10,
	}, 1)

	// Each (src, dst) pair generates 2 packets per 50 s window.
	workload := rapid.PoissonWorkload(rapid.WorkloadConfig{
		Nodes:                   sched.Nodes(),
		PacketsPerWindowPerDest: 2,
		Window:                  50,
		Duration:                600,
		PacketBytes:             1 << 10,
	}, 2)

	fmt.Printf("scenario: %d nodes, %d meetings, %d packets\n\n",
		len(sched.Nodes()), len(sched.Meetings), len(workload))

	for _, proto := range []rapid.Protocol{
		rapid.RAPID(rapid.MinimizeAvgDelay),
		rapid.Random(),
	} {
		res := rapid.Run(sched, workload, proto, rapid.Config{
			BufferBytes: 100 << 10,
			Seed:        7,
		})
		s := res.Summary
		fmt.Printf("%-18s delivered %5.1f%%   avg delay %5.1f s   max delay %5.1f s\n",
			proto.Name(), 100*s.DeliveryRate, s.AvgDelay, s.MaxDelay)
	}
}

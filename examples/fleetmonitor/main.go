// Fleetmonitor: a DieselNet-style daily operations report (§5's
// deployment viewpoint). It generates a synthetic bus day, routes a
// default-load workload with RAPID, and prints the Table-3 statistics
// an operator would watch, plus the offline-optimal bound for the day.
//
//	go run ./examples/fleetmonitor -day 7
package main

import (
	"flag"
	"fmt"

	"rapid"
)

func main() {
	day := flag.Int("day", 0, "day index to simulate")
	load := flag.Float64("load", 4, "packets per hour per destination pair")
	flag.Parse()

	cfg := rapid.DefaultDieselNet()
	sched := rapid.DieselNetDay(cfg, *day)
	buses := sched.Nodes()

	w := rapid.PoissonWorkload(rapid.WorkloadConfig{
		Nodes:                   buses,
		PacketsPerWindowPerDest: *load,
		Window:                  3600,
		Duration:                sched.Duration,
		PacketBytes:             1 << 10,
		Deadline:                2.7 * 3600,
	}, int64(*day)+1)

	res := rapid.Run(sched, w, rapid.RAPID(rapid.MinimizeAvgDelay), rapid.Config{
		Seed: int64(*day),
	})
	s := res.Summary

	fmt.Printf("DieselNet day %d — operations report\n", *day)
	fmt.Printf("------------------------------------\n")
	fmt.Printf("buses on the road          %d\n", len(buses))
	fmt.Printf("bus meetings               %d\n", s.Meetings)
	fmt.Printf("contact capacity           %.1f MB\n", float64(s.OpportunityBytes)/1e6)
	fmt.Printf("packets generated          %d (load %.0f/h/destination)\n", s.Generated, *load)
	fmt.Printf("packets delivered          %d (%.1f%%)\n", s.Delivered, 100*s.DeliveryRate)
	fmt.Printf("average delivery delay     %.1f min\n", s.AvgDelay/60)
	fmt.Printf("worst delivery delay       %.1f min\n", s.MaxDelay/60)
	fmt.Printf("delivered within 2.7 h     %.1f%%\n", 100*s.WithinDeadline)
	fmt.Printf("channel utilization        %.1f%%\n", 100*s.Utilization)
	fmt.Printf("metadata / data            %.2f%%\n", 100*s.MetaOverData)
	fmt.Printf("metadata / bandwidth       %.3f%%\n", 100*s.MetaOverBandwidth)

	opt := rapid.Optimal(sched, w)
	fmt.Printf("\nofflne optimal bound       %.1f%% delivery, %.1f min avg delay incl. undelivered\n",
		100*opt.DeliveryRate(), opt.AvgDelayAll()/60)
	fmt.Printf("RAPID vs optimal           %.1f min vs %.1f min (incl. undelivered)\n",
		s.AvgDelayAll/60, opt.AvgDelayAll()/60)
}

package rapid_test

import (
	"testing"

	"rapid"
)

func smallScenario(t *testing.T) (*rapid.Schedule, rapid.Workload) {
	t.Helper()
	sched := rapid.ExponentialMobility(rapid.MobilityConfig{
		Nodes: 10, Duration: 600, MeanMeeting: 40, TransferBytes: 50 << 10,
	}, 1)
	w := rapid.PoissonWorkload(rapid.WorkloadConfig{
		Nodes: sched.Nodes(), PacketsPerWindowPerDest: 2,
		Window: 50, Duration: 400, PacketBytes: 1 << 10, Deadline: 60,
	}, 2)
	return sched, w
}

func TestPublicAPIQuickstart(t *testing.T) {
	sched, w := smallScenario(t)
	res := rapid.Run(sched, w, rapid.RAPID(rapid.MinimizeAvgDelay), rapid.Config{Seed: 3})
	if res.Summary.Generated != len(w) {
		t.Fatalf("generated %d want %d", res.Summary.Generated, len(w))
	}
	if res.Summary.DeliveryRate <= 0.3 {
		t.Errorf("delivery rate %v suspiciously low", res.Summary.DeliveryRate)
	}
	if res.Collector == nil || len(res.Collector.Records()) != len(w) {
		t.Error("collector records missing")
	}
}

func TestAllProtocolsRun(t *testing.T) {
	sched, w := smallScenario(t)
	protos := []rapid.Protocol{
		rapid.RAPID(rapid.MinimizeAvgDelay),
		rapid.RAPID(rapid.MinimizeMissedDeadlines),
		rapid.RAPID(rapid.MinimizeMaxDelay),
		rapid.MaxProp(),
		rapid.SprayAndWait(0),
		rapid.PRoPHET(),
		rapid.Random(),
		rapid.RandomWithAcks(),
		rapid.Epidemic(),
		rapid.CGR(),
	}
	for _, p := range protos {
		res := rapid.Run(sched, w, p, rapid.Config{Seed: 5, BufferBytes: 64 << 10})
		if res.Summary.Delivered == 0 {
			t.Errorf("%s delivered nothing", p.Name())
		}
		s := res.Summary
		if s.DataBytes+s.MetaBytes > s.OpportunityBytes {
			t.Errorf("%s violated feasibility", p.Name())
		}
		if p.Name() == "" {
			t.Error("unnamed protocol")
		}
	}
}

func TestControlChannelModes(t *testing.T) {
	sched, w := smallScenario(t)
	inband := rapid.Run(sched, w, rapid.RAPID(rapid.MinimizeAvgDelay), rapid.Config{Seed: 7})
	global := rapid.Run(sched, w, rapid.RAPID(rapid.MinimizeAvgDelay),
		rapid.Config{Seed: 7, Control: rapid.InstantGlobal})
	none := rapid.Run(sched, w, rapid.RAPID(rapid.MinimizeAvgDelay),
		rapid.Config{Seed: 7, MetaFraction: -1})
	if inband.Summary.MetaBytes == 0 {
		t.Error("in-band channel sent no metadata")
	}
	if global.Summary.MetaBytes != 0 {
		t.Error("global channel must cost nothing")
	}
	if none.Summary.MetaBytes != 0 {
		t.Error("disabled channel sent metadata")
	}
}

func TestDeterministicRuns(t *testing.T) {
	sched, w := smallScenario(t)
	a := rapid.Run(sched, w, rapid.RAPID(rapid.MinimizeAvgDelay), rapid.Config{Seed: 11})
	b := rapid.Run(sched, w, rapid.RAPID(rapid.MinimizeAvgDelay), rapid.Config{Seed: 11})
	if a.Summary != b.Summary {
		t.Errorf("same seed, different summaries:\n%+v\n%+v", a.Summary, b.Summary)
	}
	// A Protocol value is reusable across runs even for plan-ahead
	// protocols with per-run planner state.
	p := rapid.CGR()
	c1 := rapid.Run(sched, w, p, rapid.Config{Seed: 11})
	c2 := rapid.Run(sched, w, p, rapid.Config{Seed: 11})
	if c1.Summary != c2.Summary {
		t.Errorf("reused CGR protocol diverged:\n%+v\n%+v", c1.Summary, c2.Summary)
	}
}

func TestOptimalBeatsOnline(t *testing.T) {
	sched, w := smallScenario(t)
	opt := rapid.Optimal(sched, w)
	online := rapid.Run(sched, w, rapid.RAPID(rapid.MinimizeAvgDelay), rapid.Config{Seed: 1})
	if opt.AvgDelayAll() > online.Summary.AvgDelayAll+1e-9 {
		t.Errorf("oracle (%.1f) lost to an online protocol (%.1f)",
			opt.AvgDelayAll(), online.Summary.AvgDelayAll)
	}
}

func TestDieselNetDayPublicAPI(t *testing.T) {
	cfg := rapid.DefaultDieselNet()
	sched := rapid.DieselNetDay(cfg, 0)
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sched.Meetings) < 50 {
		t.Errorf("suspiciously few meetings: %d", len(sched.Meetings))
	}
}

func TestPowerLawMobilityPublicAPI(t *testing.T) {
	sched := rapid.PowerLawMobility(rapid.MobilityConfig{
		Nodes: 12, Duration: 300, MeanMeeting: 30, TransferBytes: 10 << 10,
		PowerLawAlpha: 1,
	}, 4)
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sched.Meetings) == 0 {
		t.Fatal("no meetings")
	}
}

#!/usr/bin/env bash
# End-to-end smoke for cmd/simd (DESIGN.md §14), run by the CI
# simd-smoke job and usable locally:
#
#   ./scripts/simd_smoke.sh
#
# Builds both front ends, boots the service, submits a tiny telemetry
# family job over HTTP, streams its event log to completion, asserts
# the service's summary table is byte-identical to the cmd/experiments
# output for the same family, scrapes /metrics, and finishes with a
# SIGTERM clean-drain check (the process must exit 0).
set -euo pipefail

FAMILY=${FAMILY:-synth-exponential}
ADDR=${ADDR:-127.0.0.1:18080}

workdir=$(mktemp -d)
simd_pid=""
cleanup() {
  [ -n "$simd_pid" ] && kill "$simd_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/experiments" ./cmd/experiments
go build -o "$workdir/simd" ./cmd/simd

echo "== CLI oracle table"
# Drop the CLI's two-line timing header; the remainder is the rendered
# summary table the service must reproduce byte for byte.
"$workdir/experiments" -family "$FAMILY" -scale tiny | tail -n +3 > "$workdir/cli_table.txt"

echo "== boot simd on $ADDR"
"$workdir/simd" -addr "$ADDR" &
simd_pid=$!
for _ in $(seq 1 100); do
  curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -fsS "http://$ADDR/healthz" >/dev/null

echo "== submit telemetry job"
job_json=$(curl -fsS -X POST "http://$ADDR/v1/jobs" \
  -H 'Content-Type: application/json' \
  -d "{\"family\":\"$FAMILY\",\"scale\":\"tiny\",\"telemetry\":true}")
job_id=$(printf '%s' "$job_json" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
if [ -z "$job_id" ]; then
  echo "no job id in response: $job_json" >&2
  exit 1
fi
echo "   $job_id"

echo "== stream events to completion"
# The server closes the stream after the terminal job_done event.
curl -fsS -N "http://$ADDR/v1/jobs/$job_id/events" > "$workdir/events.ndjson"
grep -q '"type":"generated"' "$workdir/events.ndjson"
grep -q '"type":"scenario_done"' "$workdir/events.ndjson"
last_event=$(tail -n 1 "$workdir/events.ndjson")
case "$last_event" in
  *'"type":"job_done"'*'"state":"done"'*) ;;
  *) echo "stream did not end with job_done/done: $last_event" >&2; exit 1 ;;
esac
echo "   $(wc -l < "$workdir/events.ndjson") events"

echo "== table byte-identity vs cmd/experiments"
curl -fsS "http://$ADDR/v1/jobs/$job_id/table" > "$workdir/simd_table.txt"
diff -u "$workdir/cli_table.txt" "$workdir/simd_table.txt"

echo "== metrics"
curl -fsS "http://$ADDR/metrics" > "$workdir/metrics.txt"
for series in \
  'simd_jobs_total{state="done"} 1' \
  'simd_jobs_submitted_total 1' \
  'simd_scenarios_run_total' \
  'simd_events_executed_total' \
  'simd_run_duration_seconds_count 1'
do
  if ! grep -q "^$series" "$workdir/metrics.txt"; then
    echo "metrics missing: $series" >&2
    cat "$workdir/metrics.txt" >&2
    exit 1
  fi
done

echo "== SIGTERM drain"
kill -TERM "$simd_pid"
if ! wait "$simd_pid"; then
  echo "simd did not drain cleanly" >&2
  exit 1
fi
simd_pid=""
echo "simd smoke: OK"

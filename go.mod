module rapid

go 1.24

package exp

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"rapid/internal/metrics"
	"rapid/internal/scenario"
)

// Engine executes scenario runs across a bounded worker pool with a
// typed, bounded summary cache. The cache key is the scenario value
// itself — a comparable struct — so two distinct scenarios can never
// collide (the old string-joined memo keys could, via caller-supplied
// free text). Runs are independent and fully seeded by the scenario,
// so results are deterministic regardless of worker count or execution
// order.
type Engine struct {
	workers int

	// runWorkers, when non-zero, is the intra-run event-engine worker
	// count applied at execution time to scenarios that did not pin
	// their own (Overrides.Workers == 0). It is the instance-scoped
	// counterpart of the package-level SetRunWorkers: a long-lived
	// service configures its engine without mutating process globals.
	// It is not part of the cache key — output is byte-identical at any
	// worker setting, so summaries are shared across settings.
	runWorkers atomic.Int64

	// hits and misses count cache lookups, for the service's
	// cache-hit-rate metric. A duplicate scenario within one Summaries
	// call counts one miss (it is computed once).
	hits, misses atomic.Uint64

	mu    sync.Mutex
	cache map[scenario.Scenario]metrics.Summary
	// fifo records insertion order for eviction once limit is reached.
	// Entries are consumed from head rather than by reslicing fifo[1:],
	// which would pin the ever-growing backing array (every evicted key
	// stays reachable from the slice's hidden prefix); the live region
	// is copied down once head crosses half the backing array.
	fifo  []scenario.Scenario
	head  int
	limit int
}

// defaultCacheLimit bounds the summary cache. An entry (Scenario key +
// Summary) is well under 1 KB, so the default caps memory near tens of
// MB while retaining more than a full-scale comparison grid (12 loads ×
// 4 protocols × 58 days × 10 runs ≈ 28k scenarios) — the population
// Figs. 4–7 and 10–12 share arms from. Eviction only bites beyond
// that.
const defaultCacheLimit = 1 << 16

// NewEngine returns an engine with the given pool size and cache bound.
// workers <= 0 selects GOMAXPROCS; cacheLimit <= 0 selects the default.
func NewEngine(workers, cacheLimit int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cacheLimit <= 0 {
		cacheLimit = defaultCacheLimit
	}
	return &Engine{
		workers: workers,
		cache:   make(map[scenario.Scenario]metrics.Summary),
		limit:   cacheLimit,
	}
}

// defaultEngine runs every figure; SetWorkers resizes it (the
// cmd/experiments -workers flag). Not synchronized: resize before
// launching sweeps.
var defaultEngine = NewEngine(0, 0)

// SetWorkers resizes the default engine's worker pool (n <= 0 restores
// GOMAXPROCS) and clears its cache. It swaps the package global
// unsynchronized and exists solely as the cmd/experiments startup path
// — call it once before launching sweeps. Long-lived services must
// instead own an engine from NewEngine.
func SetWorkers(n int) { defaultEngine = NewEngine(n, 0) }

// SetRunWorkers sets the process-wide intra-run engine worker default
// every scenario runs with (scenario.SetDefaultRunWorkers; the
// cmd/experiments -run-workers flag). Orthogonal to SetWorkers: that
// pool runs whole scenarios concurrently, this one parallelizes inside
// a single run — useful when one huge run (mega-constellation)
// dominates the sweep. Like SetWorkers it is an unsynchronized startup
// knob for the batch CLI only; services use Engine.SetRunWorkers or
// per-scenario Overrides.Workers, both instance-scoped.
func SetRunWorkers(n int) { scenario.SetDefaultRunWorkers(n) }

// SetRunWorkers sets this engine's intra-run worker default, applied at
// execution time to scenarios that did not pin Overrides.Workers.
// Unlike the package function it mutates no global state and is safe to
// call concurrently with running sweeps (runs that already started keep
// their setting). Output is byte-identical at any setting.
func (e *Engine) SetRunWorkers(n int) { e.runWorkers.Store(int64(n)) }

// RunWorkers reports the engine's intra-run worker default.
func (e *Engine) RunWorkers() int { return int(e.runWorkers.Load()) }

// applyRunWorkers pins the engine's intra-run worker default onto a
// scenario about to execute, leaving scenarios with their own pin — and
// the caller's cache key — untouched.
func (e *Engine) applyRunWorkers(sc scenario.Scenario) scenario.Scenario {
	if rw := e.RunWorkers(); rw != 0 && sc.Config.Workers == 0 {
		sc.Config.Workers = rw
	}
	return sc
}

// CacheStats reports cumulative cache lookup hits and misses.
func (e *Engine) CacheStats() (hits, misses uint64) {
	return e.hits.Load(), e.misses.Load()
}

// DefaultEngine returns the engine the figures run on.
func DefaultEngine() *Engine { return defaultEngine }

// Workers reports the pool size.
func (e *Engine) Workers() int { return e.workers }

func (e *Engine) lookup(sc scenario.Scenario) (metrics.Summary, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.cache[sc]
	if ok {
		e.hits.Add(1)
	}
	return s, ok
}

func (e *Engine) store(sc scenario.Scenario, s metrics.Summary) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.cache[sc]; ok {
		return
	}
	for len(e.cache) >= e.limit && e.head < len(e.fifo) {
		oldest := e.fifo[e.head]
		e.fifo[e.head] = scenario.Scenario{} // release the evicted key
		e.head++
		delete(e.cache, oldest)
	}
	if e.head > 0 && e.head*2 >= len(e.fifo) {
		n := copy(e.fifo, e.fifo[e.head:])
		clear(e.fifo[n:])
		e.fifo = e.fifo[:n]
		e.head = 0
	}
	e.cache[sc] = s
	e.fifo = append(e.fifo, sc)
}

// CacheLen reports the number of cached summaries (for tests and the
// cmd status line).
func (e *Engine) CacheLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}

// parallel fans f over n indices across the worker pool and waits.
func (e *Engine) parallel(n int, f func(i int)) {
	e.parallelCtx(context.Background(), n, func(i int) bool { f(i); return true })
}

// parallelCtx fans f over n indices, stopping claims once ctx is done
// or f returns false; in-flight calls complete. It returns the number
// of indices claimed (every i < claimed had f(i) called).
func (e *Engine) parallelCtx(ctx context.Context, n int, f func(i int) bool) int {
	if n <= 0 {
		return 0
	}
	workers := min(e.workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil || !f(i) {
				return i
			}
		}
		return n
	}
	var next atomic.Int64
	var stopped atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if stopped.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if !f(i) {
					stopped.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	claimed := int(next.Load())
	if claimed > n {
		claimed = n
	}
	return claimed
}

// Summaries returns one summary per scenario, in input order. Cached
// results are reused; misses run concurrently on the worker pool.
// Duplicate scenarios within one call are computed once.
func (e *Engine) Summaries(scs []scenario.Scenario) []metrics.Summary {
	out, _ := e.SummariesCtx(context.Background(), scs)
	return out
}

// SummariesCtx is Summaries with cooperative cancellation: once ctx is
// done no further cache misses start; in-flight runs complete and their
// results are cached. When the sweep was cut short the error is
// ctx.Err() and output slots whose runs never started hold zero
// summaries — callers must treat the slice as partial. Cancellation
// granularity is one scenario run: a single enormous run is not
// interrupted mid-flight.
func (e *Engine) SummariesCtx(ctx context.Context, scs []scenario.Scenario) ([]metrics.Summary, error) {
	out := make([]metrics.Summary, len(scs))
	need := make(map[scenario.Scenario][]int)
	var misses []scenario.Scenario
	for i, sc := range scs {
		if s, ok := e.lookup(sc); ok {
			out[i] = s
			continue
		}
		if _, seen := need[sc]; !seen {
			misses = append(misses, sc)
			e.misses.Add(1)
		}
		need[sc] = append(need[sc], i)
	}
	results := make([]metrics.Summary, len(misses))
	ran := make([]atomic.Bool, len(misses))
	e.parallelCtx(ctx, len(misses), func(i int) bool {
		results[i] = e.applyRunWorkers(misses[i]).Summary()
		ran[i].Store(true)
		return true
	})
	for i, sc := range misses {
		if !ran[i].Load() {
			continue
		}
		e.store(sc, results[i])
		for _, j := range need[sc] {
			out[j] = results[i]
		}
	}
	return out, ctx.Err()
}

// Average runs the scenarios and averages value over their summaries.
func (e *Engine) Average(scs []scenario.Scenario, value func(metrics.Summary) float64) float64 {
	if len(scs) == 0 {
		return 0
	}
	var sum float64
	for _, s := range e.Summaries(scs) {
		sum += value(s)
	}
	return sum / float64(len(scs))
}

// RunOutput is one uncached full run: the collector (per-packet
// records, cohort fairness) plus the run horizon.
type RunOutput struct {
	Col     *metrics.Collector
	Horizon float64
}

// Runs executes the scenarios concurrently and returns their full
// collectors in input order. Collectors carry per-packet state and are
// not cached.
func (e *Engine) Runs(scs []scenario.Scenario) []RunOutput {
	out := make([]RunOutput, len(scs))
	e.parallel(len(scs), func(i int) {
		col, horizon := e.applyRunWorkers(scs[i]).Execute()
		out[i] = RunOutput{Col: col, Horizon: horizon}
	})
	return out
}

// ---------------------------------------------------------------------
// Figure assembly: a sweep collects (series, x, scenario-batch) points,
// submits every run of the whole figure to the engine as one flat job
// list — so a figure parallelizes across series, axis points, days and
// seeds at once — and averages each batch into its series point.

type sweepPoint struct {
	series string
	x      float64
	value  func(metrics.Summary) float64
	scs    []scenario.Scenario
}

type sweep struct {
	fig    *Figure
	points []sweepPoint
}

// newSweep starts a figure assembly.
func newSweep(id, title, xlabel, ylabel string) *sweep {
	return &sweep{fig: &Figure{ID: id, Title: title, XLabel: xlabel, YLabel: ylabel}}
}

// point adds one series point backed by a batch of scenario runs whose
// value-extracted summaries are averaged.
func (sw *sweep) point(series string, x float64, value func(metrics.Summary) float64, scs []scenario.Scenario) {
	sw.points = append(sw.points, sweepPoint{series: series, x: x, value: value, scs: scs})
}

// run executes every point's batch on the engine and assembles the
// figure; series appear in first-point order.
func (sw *sweep) run(e *Engine) *Figure {
	var all []scenario.Scenario
	for _, p := range sw.points {
		all = append(all, p.scs...)
	}
	sums := e.Summaries(all)
	idx := make(map[string]int)
	off := 0
	for _, p := range sw.points {
		var sum float64
		for _, s := range sums[off : off+len(p.scs)] {
			sum += p.value(s)
		}
		off += len(p.scs)
		y := 0.0
		if len(p.scs) > 0 {
			y = sum / float64(len(p.scs))
		}
		i, ok := idx[p.series]
		if !ok {
			i = len(sw.fig.Series)
			idx[p.series] = i
			sw.fig.Series = append(sw.fig.Series, SeriesData{Label: p.series})
		}
		sw.fig.Series[i].X = append(sw.fig.Series[i].X, p.x)
		sw.fig.Series[i].Y = append(sw.fig.Series[i].Y, y)
	}
	return sw.fig
}

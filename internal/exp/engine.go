package exp

import (
	"runtime"
	"sync"
	"sync/atomic"

	"rapid/internal/metrics"
	"rapid/internal/scenario"
)

// Engine executes scenario runs across a bounded worker pool with a
// typed, bounded summary cache. The cache key is the scenario value
// itself — a comparable struct — so two distinct scenarios can never
// collide (the old string-joined memo keys could, via caller-supplied
// free text). Runs are independent and fully seeded by the scenario,
// so results are deterministic regardless of worker count or execution
// order.
type Engine struct {
	workers int

	mu    sync.Mutex
	cache map[scenario.Scenario]metrics.Summary
	// fifo records insertion order for eviction once limit is reached.
	// Entries are consumed from head rather than by reslicing fifo[1:],
	// which would pin the ever-growing backing array (every evicted key
	// stays reachable from the slice's hidden prefix); the live region
	// is copied down once head crosses half the backing array.
	fifo  []scenario.Scenario
	head  int
	limit int
}

// defaultCacheLimit bounds the summary cache. An entry (Scenario key +
// Summary) is well under 1 KB, so the default caps memory near tens of
// MB while retaining more than a full-scale comparison grid (12 loads ×
// 4 protocols × 58 days × 10 runs ≈ 28k scenarios) — the population
// Figs. 4–7 and 10–12 share arms from. Eviction only bites beyond
// that.
const defaultCacheLimit = 1 << 16

// NewEngine returns an engine with the given pool size and cache bound.
// workers <= 0 selects GOMAXPROCS; cacheLimit <= 0 selects the default.
func NewEngine(workers, cacheLimit int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cacheLimit <= 0 {
		cacheLimit = defaultCacheLimit
	}
	return &Engine{
		workers: workers,
		cache:   make(map[scenario.Scenario]metrics.Summary),
		limit:   cacheLimit,
	}
}

// defaultEngine runs every figure; SetWorkers resizes it (the
// cmd/experiments -workers flag). Not synchronized: resize before
// launching sweeps.
var defaultEngine = NewEngine(0, 0)

// SetWorkers resizes the default engine's worker pool (n <= 0 restores
// GOMAXPROCS) and clears its cache.
func SetWorkers(n int) { defaultEngine = NewEngine(n, 0) }

// SetRunWorkers sets the intra-run engine worker default every scenario
// runs with (scenario.SetDefaultRunWorkers; the cmd/experiments
// -run-workers flag). Orthogonal to SetWorkers: that pool runs whole
// scenarios concurrently, this one parallelizes inside a single run —
// useful when one huge run (mega-constellation) dominates the sweep.
func SetRunWorkers(n int) { scenario.SetDefaultRunWorkers(n) }

// DefaultEngine returns the engine the figures run on.
func DefaultEngine() *Engine { return defaultEngine }

// Workers reports the pool size.
func (e *Engine) Workers() int { return e.workers }

func (e *Engine) lookup(sc scenario.Scenario) (metrics.Summary, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.cache[sc]
	return s, ok
}

func (e *Engine) store(sc scenario.Scenario, s metrics.Summary) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.cache[sc]; ok {
		return
	}
	for len(e.cache) >= e.limit && e.head < len(e.fifo) {
		oldest := e.fifo[e.head]
		e.fifo[e.head] = scenario.Scenario{} // release the evicted key
		e.head++
		delete(e.cache, oldest)
	}
	if e.head > 0 && e.head*2 >= len(e.fifo) {
		n := copy(e.fifo, e.fifo[e.head:])
		clear(e.fifo[n:])
		e.fifo = e.fifo[:n]
		e.head = 0
	}
	e.cache[sc] = s
	e.fifo = append(e.fifo, sc)
}

// CacheLen reports the number of cached summaries (for tests and the
// cmd status line).
func (e *Engine) CacheLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}

// parallel fans f over n indices across the worker pool and waits.
func (e *Engine) parallel(n int, f func(i int)) {
	if n <= 0 {
		return
	}
	workers := min(e.workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// Summaries returns one summary per scenario, in input order. Cached
// results are reused; misses run concurrently on the worker pool.
// Duplicate scenarios within one call are computed once.
func (e *Engine) Summaries(scs []scenario.Scenario) []metrics.Summary {
	out := make([]metrics.Summary, len(scs))
	need := make(map[scenario.Scenario][]int)
	var misses []scenario.Scenario
	for i, sc := range scs {
		if s, ok := e.lookup(sc); ok {
			out[i] = s
			continue
		}
		if _, seen := need[sc]; !seen {
			misses = append(misses, sc)
		}
		need[sc] = append(need[sc], i)
	}
	results := make([]metrics.Summary, len(misses))
	e.parallel(len(misses), func(i int) { results[i] = misses[i].Summary() })
	for i, sc := range misses {
		e.store(sc, results[i])
		for _, j := range need[sc] {
			out[j] = results[i]
		}
	}
	return out
}

// Average runs the scenarios and averages value over their summaries.
func (e *Engine) Average(scs []scenario.Scenario, value func(metrics.Summary) float64) float64 {
	if len(scs) == 0 {
		return 0
	}
	var sum float64
	for _, s := range e.Summaries(scs) {
		sum += value(s)
	}
	return sum / float64(len(scs))
}

// RunOutput is one uncached full run: the collector (per-packet
// records, cohort fairness) plus the run horizon.
type RunOutput struct {
	Col     *metrics.Collector
	Horizon float64
}

// Runs executes the scenarios concurrently and returns their full
// collectors in input order. Collectors carry per-packet state and are
// not cached.
func (e *Engine) Runs(scs []scenario.Scenario) []RunOutput {
	out := make([]RunOutput, len(scs))
	e.parallel(len(scs), func(i int) {
		col, horizon := scs[i].Execute()
		out[i] = RunOutput{Col: col, Horizon: horizon}
	})
	return out
}

// ---------------------------------------------------------------------
// Figure assembly: a sweep collects (series, x, scenario-batch) points,
// submits every run of the whole figure to the engine as one flat job
// list — so a figure parallelizes across series, axis points, days and
// seeds at once — and averages each batch into its series point.

type sweepPoint struct {
	series string
	x      float64
	value  func(metrics.Summary) float64
	scs    []scenario.Scenario
}

type sweep struct {
	fig    *Figure
	points []sweepPoint
}

// newSweep starts a figure assembly.
func newSweep(id, title, xlabel, ylabel string) *sweep {
	return &sweep{fig: &Figure{ID: id, Title: title, XLabel: xlabel, YLabel: ylabel}}
}

// point adds one series point backed by a batch of scenario runs whose
// value-extracted summaries are averaged.
func (sw *sweep) point(series string, x float64, value func(metrics.Summary) float64, scs []scenario.Scenario) {
	sw.points = append(sw.points, sweepPoint{series: series, x: x, value: value, scs: scs})
}

// run executes every point's batch on the engine and assembles the
// figure; series appear in first-point order.
func (sw *sweep) run(e *Engine) *Figure {
	var all []scenario.Scenario
	for _, p := range sw.points {
		all = append(all, p.scs...)
	}
	sums := e.Summaries(all)
	idx := make(map[string]int)
	off := 0
	for _, p := range sw.points {
		var sum float64
		for _, s := range sums[off : off+len(p.scs)] {
			sum += p.value(s)
		}
		off += len(p.scs)
		y := 0.0
		if len(p.scs) > 0 {
			y = sum / float64(len(p.scs))
		}
		i, ok := idx[p.series]
		if !ok {
			i = len(sw.fig.Series)
			idx[p.series] = i
			sw.fig.Series = append(sw.fig.Series, SeriesData{Label: p.series})
		}
		sw.fig.Series[i].X = append(sw.fig.Series[i].X, p.x)
		sw.fig.Series[i].Y = append(sw.fig.Series[i].Y, y)
	}
	return sw.fig
}

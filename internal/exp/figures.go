package exp

import (
	"fmt"
	"sort"

	"rapid/internal/core"
	"rapid/internal/metrics"
	"rapid/internal/routing/optimal"
	"rapid/internal/scenario"
	"rapid/internal/stat"
)

// Output is one experiment's reproduced artifact.
type Output struct {
	Figure *Figure
	Table  *TableData
	Notes  []string
}

// Figure aliases report's type via local definitions to keep exp free
// of a report import cycle risk; it is converted by callers.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []SeriesData
}

// SeriesData is one curve. YErr, when non-empty, is the symmetric 95%
// confidence half-width of each Y over the point's replications.
type SeriesData struct {
	Label string
	X     []float64
	Y     []float64
	YErr  []float64
}

// TableData is a header + rows (Table 3 reproduction).
type TableData struct {
	Header []string
	Rows   [][]string
}

// Experiment couples a paper artifact with its regeneration function.
type Experiment struct {
	ID    string
	Title string
	Run   func(sc Scale) Output
}

// All returns every reproduced table and figure in paper order.
func All() []Experiment {
	return []Experiment{
		{"table3", "Deployment daily statistics", Table3},
		{"fig3", "Validation: deployment vs simulation average delay", Fig3},
		{"fig4", "Trace: average delay vs load", Fig4},
		{"fig5", "Trace: delivery rate vs load", Fig5},
		{"fig6", "Trace: max delay vs load", Fig6},
		{"fig7", "Trace: delivered within deadline vs load", Fig7},
		{"fig8", "Trace: control channel benefit (metadata cap sweep)", Fig8},
		{"fig9", "Trace: channel utilization and metadata vs load", Fig9},
		{"fig10", "Trace: avg delay, in-band vs instant global channel", Fig10},
		{"fig11", "Trace: delivery rate, in-band vs instant global channel", Fig11},
		{"fig12", "Trace: within deadline, in-band vs instant global channel", Fig12},
		{"fig13", "Trace: comparison with Optimal (small loads)", Fig13},
		{"fig14", "Trace: RAPID component ablation", Fig14},
		{"fig15", "Trace: Jain fairness CDF for parallel packets", Fig15},
		{"fig16", "Power law: average delay vs load", Fig16},
		{"fig17", "Power law: max delay vs load", Fig17},
		{"fig18", "Power law: delivered within deadline vs load", Fig18},
		{"fig19", "Power law: average delay vs buffer size", Fig19},
		{"fig20", "Power law: max delay vs buffer size", Fig20},
		{"fig21", "Power law: delivered within deadline vs buffer size", Fig21},
		{"fig22", "Exponential: average delay vs load", Fig22},
		{"fig23", "Exponential: max delay vs load", Fig23},
		{"fig24", "Exponential: delivered within deadline vs load", Fig24},
		{"cgr-policies-delay", "CGR allocation policies: average delay vs loss", CGRPoliciesDelay},
		{"cgr-policies-rate", "CGR allocation policies: delivery rate vs loss", CGRPoliciesRate},
	}
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ---------------------------------------------------------------------
// Trace comparison sweeps (Figs. 4–7)

// traceComparison sweeps the load axis for the comparison set.
func traceComparison(sc Scale, metric core.Metric, value func(metrics.Summary) float64, id, title, ylabel string) Output {
	p := DefaultTraceParams()
	sw := newSweep(id, title, "packets generated per hour per destination", ylabel)
	for _, proto := range ComparisonSet() {
		for _, load := range sc.TraceLoads {
			sw.point(string(proto), load, value,
				traceGrid(p, sc, load, proto, metric, scenario.Overrides{}))
		}
	}
	return Output{Figure: sw.run(defaultEngine)}
}

// Fig4 reproduces Figure 4 (average delay of delivered packets).
func Fig4(sc Scale) Output {
	return traceComparison(sc, core.AvgDelay, avgDelayMin,
		"fig4", "Average delay vs load (trace)", "avg delay (min)")
}

// Fig5 reproduces Figure 5 (delivery rate; RAPID run with the
// average-delay metric, as in the paper's shared sweep).
func Fig5(sc Scale) Output {
	return traceComparison(sc, core.AvgDelay, deliveryRate,
		"fig5", "Delivery rate vs load (trace)", "fraction delivered")
}

// Fig6 reproduces Figure 6 (maximum delay; RAPID optimizes Eq. 3).
func Fig6(sc Scale) Output {
	return traceComparison(sc, core.MaxDelay, maxDelayMin,
		"fig6", "Max delay vs load (trace)", "max delay (min)")
}

// Fig7 reproduces Figure 7 (fraction delivered within the 2.7 h
// deadline; RAPID optimizes Eq. 2).
func Fig7(sc Scale) Output {
	return traceComparison(sc, core.Deadline, withinDeadline,
		"fig7", "Delivered within deadline vs load (trace)", "fraction within deadline")
}

// ---------------------------------------------------------------------
// Control-channel studies (Figs. 8–12)

// Fig8 reproduces Figure 8: RAPID average delay as the metadata budget
// is capped at a fraction of each opportunity, at three loads.
// Unlimited metadata plots at x = 0.4 (just past the paper's 0.35 axis
// end) and is called out in the notes.
func Fig8(sc Scale) Output {
	p := DefaultTraceParams()
	loads := []float64{6, 12, 20}
	if sc.Name == "tiny" {
		loads = []float64{6}
	}
	sw := newSweep("fig8", "Control channel benefit (trace)",
		"metadata cap (fraction of opportunity; 0.4 = unlimited)", "avg delay (min)")
	for _, load := range loads {
		label := fmt.Sprintf("load %g/hour/destination", load)
		for _, frac := range sc.MetaFractions {
			x := frac
			if frac < 0 {
				x = 0.4
			}
			ov := scenario.Overrides{MetaFraction: frac, MetaFractionSet: true}
			sw.point(label, x, avgDelayMin,
				traceGrid(p, sc, load, ProtoRapid, core.AvgDelay, ov))
		}
	}
	fig := sw.run(defaultEngine)
	for i := range fig.Series {
		sortSeries(&fig.Series[i])
	}
	return Output{Figure: fig, Notes: []string{
		"x = 0.4 is the unlimited-metadata arm (paper: best performance with no restriction)",
	}}
}

// Fig9 reproduces Figure 9: channel utilization, metadata/data ratio,
// and delivery rate as load grows past the comparison range.
func Fig9(sc Scale) Output {
	p := DefaultTraceParams()
	loads := append(append([]float64{}, sc.TraceLoads...),
		sc.TraceLoads[len(sc.TraceLoads)-1]*1.4,
		sc.TraceLoads[len(sc.TraceLoads)-1]*1.875)
	sw := newSweep("fig9", "Channel utilization (trace)",
		"packets generated per hour per destination", "fraction")
	for _, load := range loads {
		grid := traceGrid(p, sc, load, ProtoRapid, core.AvgDelay, scenario.Overrides{})
		sw.point("Meta information/RAPID data", load, metaOverData, grid)
		sw.point("% channel utilization", load, channelUtilization, grid)
		sw.point("Delivery rate", load, deliveryRate, grid)
	}
	return Output{Figure: sw.run(defaultEngine)}
}

// globalVsInBand powers Figs. 10–12.
func globalVsInBand(sc Scale, metric core.Metric, value func(metrics.Summary) float64, id, title, ylabel string) Output {
	p := DefaultTraceParams()
	sw := newSweep(id, title, "packets generated per hour per destination", ylabel)
	for _, proto := range []Proto{ProtoRapid, ProtoRapidGlobal} {
		label := "In-band control channel"
		if proto == ProtoRapidGlobal {
			label = "Instant global control channel"
		}
		for _, load := range sc.TraceLoads {
			sw.point(label, load, value,
				traceGrid(p, sc, load, proto, metric, scenario.Overrides{}))
		}
	}
	return Output{Figure: sw.run(defaultEngine)}
}

// Fig10 reproduces Figure 10 (average delay, hybrid DTN).
func Fig10(sc Scale) Output {
	return globalVsInBand(sc, core.AvgDelay, avgDelayMin,
		"fig10", "Avg delay: in-band vs instant global channel", "avg delay (min)")
}

// Fig11 reproduces Figure 11 (delivery rate, hybrid DTN).
func Fig11(sc Scale) Output {
	return globalVsInBand(sc, core.AvgDelay, deliveryRate,
		"fig11", "Delivery rate: in-band vs instant global channel", "fraction delivered")
}

// Fig12 reproduces Figure 12 (within-deadline, hybrid DTN).
func Fig12(sc Scale) Output {
	return globalVsInBand(sc, core.Deadline, withinDeadline,
		"fig12", "Within deadline: in-band vs instant global channel", "fraction within deadline")
}

// ---------------------------------------------------------------------
// Optimality and components (Figs. 13–15)

// Fig13 reproduces Figure 13: average delay including undelivered
// packets for Optimal, RAPID (both channels) and MaxProp at small
// loads. The offline oracle substitutes for the paper's CPLEX ILP
// (cross-checked in internal/routing/optimal's tests; see DESIGN.md).
// The oracle shares the online arms' materialized schedules and
// workloads, so the bound is computed on exactly the traffic RAPID
// routed.
func Fig13(sc Scale) Output {
	p := DefaultTraceParams()
	arms := []struct {
		label string
		proto Proto
	}{
		{"Rapid: Instant global control channel", ProtoRapidGlobal},
		{"Rapid: In-band control channel", ProtoRapid},
		{"Maxprop", ProtoMaxProp},
	}

	// Offline oracle, one solve per (load, day), fanned across the pool.
	type optJob struct {
		load float64
		day  int
	}
	var jobs []optJob
	for _, load := range sc.OptimalLoads {
		for day := 0; day < sc.Days; day++ {
			jobs = append(jobs, optJob{load, day})
		}
	}
	delays := make([]float64, len(jobs))
	defaultEngine.parallel(len(jobs), func(i int) {
		s := traceScenario(p, sc, jobs[i].day, 0, jobs[i].load,
			ProtoRapid, core.AvgDelay, scenario.Overrides{})
		rs := s.Materialize()
		delays[i] = optimal.Solve(rs.Schedule, rs.Workload, optimal.Options{}).AvgDelayAll() / 60
	})
	optSeries := SeriesData{Label: "Optimal"}
	for i, load := range sc.OptimalLoads {
		var sum float64
		for d := 0; d < sc.Days; d++ {
			sum += delays[i*sc.Days+d]
		}
		optSeries.X = append(optSeries.X, load)
		optSeries.Y = append(optSeries.Y, sum/float64(sc.Days))
	}

	sw := newSweep("fig13", "Comparison with Optimal (trace, small loads)",
		"packets generated per hour per destination",
		"avg delay incl. undelivered (min)")
	for _, a := range arms {
		for _, load := range sc.OptimalLoads {
			sw.point(a.label, load, avgDelayAllMin,
				traceGrid(p, sc, load, a.proto, core.AvgDelay, scenario.Overrides{}))
		}
	}
	fig := sw.run(defaultEngine)
	fig.Series = append([]SeriesData{optSeries}, fig.Series...)
	return Output{Figure: fig, Notes: []string{
		"Optimal is the offline earliest-arrival oracle with capacity reservation (single-copy, like the paper's ILP); exact-ILP cross-checks live in internal/routing/optimal tests",
	}}
}

// Fig14 reproduces Figure 14: the component ablation from Random up to
// full RAPID.
func Fig14(sc Scale) Output {
	p := DefaultTraceParams()
	sw := newSweep("fig14", "RAPID component ablation (trace)",
		"packets generated per hour per destination", "avg delay (min)")
	for _, proto := range []Proto{ProtoRapid, ProtoRapidLocal, ProtoRandomAcks, ProtoRandom} {
		for _, load := range sc.TraceLoads {
			sw.point(string(proto), load, avgDelayMin,
				traceGrid(p, sc, load, proto, core.AvgDelay, scenario.Overrides{}))
		}
	}
	return Output{Figure: sw.run(defaultEngine)}
}

// Fig15 reproduces Figure 15: the CDF of Jain's fairness index over
// per-cohort delays of packets created in parallel, under contention.
func Fig15(sc Scale) Output {
	p := DefaultTraceParams()
	fig := &Figure{
		ID: "fig15", Title: "RAPID fairness (trace)",
		XLabel: "fairness index", YLabel: "CDF of cohorts",
	}
	for _, parallel := range []int{20, 30} {
		scs := make([]scenario.Scenario, sc.Days)
		for day := range scs {
			scs[day] = fairnessScenario(p, sc, day, parallel)
		}
		var indices []float64
		for _, r := range defaultEngine.Runs(scs) {
			indices = append(indices, r.Col.CohortFairness(r.Horizon)...)
		}
		sort.Float64s(indices)
		ecdf := stat.NewECDF(indices)
		xs, ys := ecdf.Points(min(64, len(indices)))
		fig.Series = append(fig.Series, SeriesData{
			Label: fmt.Sprintf("Number of parallel packets: %d", parallel),
			X:     xs, Y: ys,
		})
	}
	return Output{Figure: fig}
}

// ---------------------------------------------------------------------
// Synthetic mobility (Figs. 16–24)

// synthComparison sweeps the load axis under a mobility model.
func synthComparison(sc Scale, model string, metric core.Metric, value func(metrics.Summary) float64, id, title, ylabel string) Output {
	p := DefaultSynthParams()
	sw := newSweep(id, title, "packets generated per 50 s per destination", ylabel)
	for _, proto := range ComparisonSet() {
		for _, load := range sc.SynthLoads {
			sw.point(string(proto), load, value,
				synthGrid(p, sc, model, load, proto, metric, scenario.Overrides{}))
		}
	}
	return Output{Figure: sw.run(defaultEngine)}
}

// Fig16 reproduces Figure 16 (power-law average delay).
func Fig16(sc Scale) Output {
	return synthComparison(sc, "powerlaw", core.AvgDelay, avgDelaySec,
		"fig16", "Average delay vs load (power law)", "avg delay (s)")
}

// Fig17 reproduces Figure 17 (power-law max delay).
func Fig17(sc Scale) Output {
	return synthComparison(sc, "powerlaw", core.MaxDelay, maxDelaySec,
		"fig17", "Max delay vs load (power law)", "max delay (s)")
}

// Fig18 reproduces Figure 18 (power-law within-deadline).
func Fig18(sc Scale) Output {
	return synthComparison(sc, "powerlaw", core.Deadline, withinDeadline,
		"fig18", "Delivered within deadline vs load (power law)", "fraction within deadline")
}

// synthBufferSweep powers Figs. 19–21: fixed load, varying per-node
// storage.
func synthBufferSweep(sc Scale, metric core.Metric, value func(metrics.Summary) float64, id, title, ylabel string) Output {
	p := DefaultSynthParams()
	const load = 20 // Table 4 / §6.3.2: 20 packets per destination
	sw := newSweep(id, title, "available storage (KB)", ylabel)
	for _, proto := range ComparisonSet() {
		for _, buf := range sc.Buffers {
			ov := scenario.Overrides{BufferBytes: buf, BufferBytesSet: true}
			sw.point(string(proto), float64(buf>>10), value,
				synthGrid(p, sc, "powerlaw", load, proto, metric, ov))
		}
	}
	return Output{Figure: sw.run(defaultEngine)}
}

// Fig19 reproduces Figure 19 (power-law avg delay vs buffer).
func Fig19(sc Scale) Output {
	return synthBufferSweep(sc, core.AvgDelay, avgDelaySec,
		"fig19", "Average delay vs buffer size (power law)", "avg delay (s)")
}

// Fig20 reproduces Figure 20 (power-law max delay vs buffer).
func Fig20(sc Scale) Output {
	return synthBufferSweep(sc, core.MaxDelay, maxDelaySec,
		"fig20", "Max delay vs buffer size (power law)", "max delay (s)")
}

// Fig21 reproduces Figure 21 (power-law within-deadline vs buffer).
func Fig21(sc Scale) Output {
	return synthBufferSweep(sc, core.Deadline, withinDeadline,
		"fig21", "Delivered within deadline vs buffer size (power law)", "fraction within deadline")
}

// Fig22 reproduces Figure 22 (exponential average delay).
func Fig22(sc Scale) Output {
	return synthComparison(sc, "exponential", core.AvgDelay, avgDelaySec,
		"fig22", "Average delay vs load (exponential)", "avg delay (s)")
}

// Fig23 reproduces Figure 23 (exponential max delay).
func Fig23(sc Scale) Output {
	return synthComparison(sc, "exponential", core.MaxDelay, maxDelaySec,
		"fig23", "Max delay vs load (exponential)", "max delay (s)")
}

// Fig24 reproduces Figure 24 (exponential within-deadline).
func Fig24(sc Scale) Output {
	return synthComparison(sc, "exponential", core.Deadline, withinDeadline,
		"fig24", "Delivered within deadline vs load (exponential)", "fraction within deadline")
}

// sortSeries orders a series by X (Fig. 8 builds out of order).
func sortSeries(s *SeriesData) {
	idx := make([]int, len(s.X))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return s.X[idx[a]] < s.X[idx[b]] })
	nx := make([]float64, len(idx))
	ny := make([]float64, len(idx))
	for i, j := range idx {
		nx[i] = s.X[j]
		ny[i] = s.Y[j]
	}
	s.X, s.Y = nx, ny
}

package exp

import (
	"fmt"
	"math/rand"
	"sort"

	"rapid/internal/core"
	"rapid/internal/metrics"
	"rapid/internal/packet"
	"rapid/internal/routing"
	"rapid/internal/routing/optimal"
	"rapid/internal/stat"
)

// Output is one experiment's reproduced artifact.
type Output struct {
	Figure *Figure
	Table  *TableData
	Notes  []string
}

// Figure aliases report's type via local definitions to keep exp free
// of a report import cycle risk; it is converted by callers.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []SeriesData
}

// SeriesData is one curve.
type SeriesData struct {
	Label string
	X     []float64
	Y     []float64
}

// TableData is a header + rows (Table 3 reproduction).
type TableData struct {
	Header []string
	Rows   [][]string
}

// Experiment couples a paper artifact with its regeneration function.
type Experiment struct {
	ID    string
	Title string
	Run   func(sc Scale) Output
}

// All returns every reproduced table and figure in paper order.
func All() []Experiment {
	return []Experiment{
		{"table3", "Deployment daily statistics", Table3},
		{"fig3", "Validation: deployment vs simulation average delay", Fig3},
		{"fig4", "Trace: average delay vs load", Fig4},
		{"fig5", "Trace: delivery rate vs load", Fig5},
		{"fig6", "Trace: max delay vs load", Fig6},
		{"fig7", "Trace: delivered within deadline vs load", Fig7},
		{"fig8", "Trace: control channel benefit (metadata cap sweep)", Fig8},
		{"fig9", "Trace: channel utilization and metadata vs load", Fig9},
		{"fig10", "Trace: avg delay, in-band vs instant global channel", Fig10},
		{"fig11", "Trace: delivery rate, in-band vs instant global channel", Fig11},
		{"fig12", "Trace: within deadline, in-band vs instant global channel", Fig12},
		{"fig13", "Trace: comparison with Optimal (small loads)", Fig13},
		{"fig14", "Trace: RAPID component ablation", Fig14},
		{"fig15", "Trace: Jain fairness CDF for parallel packets", Fig15},
		{"fig16", "Power law: average delay vs load", Fig16},
		{"fig17", "Power law: max delay vs load", Fig17},
		{"fig18", "Power law: delivered within deadline vs load", Fig18},
		{"fig19", "Power law: average delay vs buffer size", Fig19},
		{"fig20", "Power law: max delay vs buffer size", Fig20},
		{"fig21", "Power law: delivered within deadline vs buffer size", Fig21},
		{"fig22", "Exponential: average delay vs load", Fig22},
		{"fig23", "Exponential: max delay vs load", Fig23},
		{"fig24", "Exponential: delivered within deadline vs load", Fig24},
	}
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ---------------------------------------------------------------------
// Trace comparison sweeps (Figs. 4–7)

// traceComparison sweeps the load axis for the comparison set.
func traceComparison(sc Scale, metric core.Metric, value func(metrics.Summary) float64, id, title, ylabel string) Output {
	p := DefaultTraceParams()
	fig := &Figure{ID: id, Title: title, XLabel: "packets generated per hour per destination", YLabel: ylabel}
	for _, proto := range ComparisonSet() {
		s := SeriesData{Label: string(proto)}
		for _, load := range sc.TraceLoads {
			s.X = append(s.X, load)
			s.Y = append(s.Y, avgTrace(p, sc, load, proto, metric, "", nil, value))
		}
		fig.Series = append(fig.Series, s)
	}
	return Output{Figure: fig}
}

// Fig4 reproduces Figure 4 (average delay of delivered packets).
func Fig4(sc Scale) Output {
	return traceComparison(sc, core.AvgDelay, avgDelayMin,
		"fig4", "Average delay vs load (trace)", "avg delay (min)")
}

// Fig5 reproduces Figure 5 (delivery rate; RAPID run with the
// average-delay metric, as in the paper's shared sweep).
func Fig5(sc Scale) Output {
	return traceComparison(sc, core.AvgDelay, deliveryRate,
		"fig5", "Delivery rate vs load (trace)", "fraction delivered")
}

// Fig6 reproduces Figure 6 (maximum delay; RAPID optimizes Eq. 3).
func Fig6(sc Scale) Output {
	return traceComparison(sc, core.MaxDelay, maxDelayMin,
		"fig6", "Max delay vs load (trace)", "max delay (min)")
}

// Fig7 reproduces Figure 7 (fraction delivered within the 2.7 h
// deadline; RAPID optimizes Eq. 2).
func Fig7(sc Scale) Output {
	return traceComparison(sc, core.Deadline, withinDeadline,
		"fig7", "Delivered within deadline vs load (trace)", "fraction within deadline")
}

// ---------------------------------------------------------------------
// Control-channel studies (Figs. 8–12)

// Fig8 reproduces Figure 8: RAPID average delay as the metadata budget
// is capped at a fraction of each opportunity, at three loads.
// Unlimited metadata plots at x = 0.4 (just past the paper's 0.35 axis
// end) and is called out in the notes.
func Fig8(sc Scale) Output {
	p := DefaultTraceParams()
	fig := &Figure{
		ID: "fig8", Title: "Control channel benefit (trace)",
		XLabel: "metadata cap (fraction of opportunity; 0.4 = unlimited)",
		YLabel: "avg delay (min)",
	}
	loads := []float64{6, 12, 20}
	if sc.Name == "tiny" {
		loads = []float64{6}
	}
	for _, load := range loads {
		s := SeriesData{Label: fmt.Sprintf("load %g/hour/destination", load)}
		for _, frac := range sc.MetaFractions {
			x := frac
			if frac < 0 {
				x = 0.4
			}
			frac := frac
			y := avgTrace(p, sc, load, ProtoRapid, core.AvgDelay,
				fmt.Sprintf("meta=%g", frac),
				func(c *routing.Config) { c.MetaFraction = frac },
				avgDelayMin)
			s.X = append(s.X, x)
			s.Y = append(s.Y, y)
		}
		sortSeries(&s)
		fig.Series = append(fig.Series, s)
	}
	return Output{Figure: fig, Notes: []string{
		"x = 0.4 is the unlimited-metadata arm (paper: best performance with no restriction)",
	}}
}

// Fig9 reproduces Figure 9: channel utilization, metadata/data ratio,
// and delivery rate as load grows past the comparison range.
func Fig9(sc Scale) Output {
	p := DefaultTraceParams()
	loads := append(append([]float64{}, sc.TraceLoads...),
		sc.TraceLoads[len(sc.TraceLoads)-1]*1.4,
		sc.TraceLoads[len(sc.TraceLoads)-1]*1.875)
	fig := &Figure{
		ID: "fig9", Title: "Channel utilization (trace)",
		XLabel: "packets generated per hour per destination",
		YLabel: "fraction",
	}
	util := SeriesData{Label: "% channel utilization"}
	meta := SeriesData{Label: "Meta information/RAPID data"}
	rate := SeriesData{Label: "Delivery rate"}
	for _, load := range loads {
		util.X = append(util.X, load)
		meta.X = append(meta.X, load)
		rate.X = append(rate.X, load)
		util.Y = append(util.Y, avgTrace(p, sc, load, ProtoRapid, core.AvgDelay, "", nil, channelUtilization))
		meta.Y = append(meta.Y, avgTrace(p, sc, load, ProtoRapid, core.AvgDelay, "", nil, metaOverData))
		rate.Y = append(rate.Y, avgTrace(p, sc, load, ProtoRapid, core.AvgDelay, "", nil, deliveryRate))
	}
	fig.Series = []SeriesData{meta, util, rate}
	return Output{Figure: fig}
}

// globalVsInBand powers Figs. 10–12.
func globalVsInBand(sc Scale, metric core.Metric, value func(metrics.Summary) float64, id, title, ylabel string) Output {
	p := DefaultTraceParams()
	fig := &Figure{ID: id, Title: title, XLabel: "packets generated per hour per destination", YLabel: ylabel}
	for _, proto := range []Proto{ProtoRapid, ProtoRapidGlobal} {
		label := "In-band control channel"
		if proto == ProtoRapidGlobal {
			label = "Instant global control channel"
		}
		s := SeriesData{Label: label}
		for _, load := range sc.TraceLoads {
			s.X = append(s.X, load)
			s.Y = append(s.Y, avgTrace(p, sc, load, proto, metric, "", nil, value))
		}
		fig.Series = append(fig.Series, s)
	}
	return Output{Figure: fig}
}

// Fig10 reproduces Figure 10 (average delay, hybrid DTN).
func Fig10(sc Scale) Output {
	return globalVsInBand(sc, core.AvgDelay, avgDelayMin,
		"fig10", "Avg delay: in-band vs instant global channel", "avg delay (min)")
}

// Fig11 reproduces Figure 11 (delivery rate, hybrid DTN).
func Fig11(sc Scale) Output {
	return globalVsInBand(sc, core.AvgDelay, deliveryRate,
		"fig11", "Delivery rate: in-band vs instant global channel", "fraction delivered")
}

// Fig12 reproduces Figure 12 (within-deadline, hybrid DTN).
func Fig12(sc Scale) Output {
	return globalVsInBand(sc, core.Deadline, withinDeadline,
		"fig12", "Within deadline: in-band vs instant global channel", "fraction within deadline")
}

// ---------------------------------------------------------------------
// Optimality and components (Figs. 13–15)

// Fig13 reproduces Figure 13: average delay including undelivered
// packets for Optimal, RAPID (both channels) and MaxProp at small
// loads. The offline oracle substitutes for the paper's CPLEX ILP
// (cross-checked in internal/routing/optimal's tests; see DESIGN.md).
func Fig13(sc Scale) Output {
	p := DefaultTraceParams()
	fig := &Figure{
		ID: "fig13", Title: "Comparison with Optimal (trace, small loads)",
		XLabel: "packets generated per hour per destination",
		YLabel: "avg delay incl. undelivered (min)",
	}
	arms := []struct {
		label string
		proto Proto
	}{
		{"Rapid: Instant global control channel", ProtoRapidGlobal},
		{"Rapid: In-band control channel", ProtoRapid},
		{"Maxprop", ProtoMaxProp},
	}
	optSeries := SeriesData{Label: "Optimal"}
	for _, load := range sc.OptimalLoads {
		var sum float64
		var n int
		for day := 0; day < sc.Days; day++ {
			sched := traceDay(p, sc, day)
			w := traceWorkload(p, sc, sched, load, int64(day)*1000^0x5ca1ab1e, true)
			res := optimal.Solve(sched, w, optimal.Options{})
			sum += res.AvgDelayAll() / 60
			n++
		}
		optSeries.X = append(optSeries.X, load)
		optSeries.Y = append(optSeries.Y, sum/float64(n))
	}
	fig.Series = append(fig.Series, optSeries)
	for _, a := range arms {
		s := SeriesData{Label: a.label}
		for _, load := range sc.OptimalLoads {
			s.X = append(s.X, load)
			s.Y = append(s.Y, avgTrace(p, sc, load, a.proto, core.AvgDelay, "", nil, avgDelayAllMin))
		}
		fig.Series = append(fig.Series, s)
	}
	return Output{Figure: fig, Notes: []string{
		"Optimal is the offline earliest-arrival oracle with capacity reservation (single-copy, like the paper's ILP); exact-ILP cross-checks live in internal/routing/optimal tests",
	}}
}

// Fig14 reproduces Figure 14: the component ablation from Random up to
// full RAPID.
func Fig14(sc Scale) Output {
	p := DefaultTraceParams()
	fig := &Figure{
		ID: "fig14", Title: "RAPID component ablation (trace)",
		XLabel: "packets generated per hour per destination",
		YLabel: "avg delay (min)",
	}
	arms := []Proto{ProtoRapid, ProtoRapidLocal, ProtoRandomAcks, ProtoRandom}
	for _, proto := range arms {
		s := SeriesData{Label: string(proto)}
		for _, load := range sc.TraceLoads {
			s.X = append(s.X, load)
			s.Y = append(s.Y, avgTrace(p, sc, load, proto, core.AvgDelay, "", nil, avgDelayMin))
		}
		fig.Series = append(fig.Series, s)
	}
	return Output{Figure: fig}
}

// Fig15 reproduces Figure 15: the CDF of Jain's fairness index over
// per-cohort delays of packets created in parallel, under contention.
func Fig15(sc Scale) Output {
	p := DefaultTraceParams()
	fig := &Figure{
		ID: "fig15", Title: "RAPID fairness (trace)",
		XLabel: "fairness index", YLabel: "CDF of cohorts",
	}
	for _, parallel := range []int{20, 30} {
		var indices []float64
		for day := 0; day < sc.Days; day++ {
			sched := traceDay(p, sc, day)
			nodes := sched.Nodes()
			r := rand.New(rand.NewSource(int64(day)*17 + int64(parallel)))
			// Background load keeps resources contended (§6.2.5 used
			// 60 packets/hour/node); cohorts ride on top.
			bg := traceWorkload(p, sc, sched, 10, int64(day)+99, false)
			cohorts := packet.GenerateParallel(nodes, 8, parallel,
				sched.Duration/10, p.PacketBytes, r)
			// Re-ID cohorts above the background range.
			for i, cp := range cohorts {
				cp.ID = packet.ID(1_000_000 + i)
			}
			w := append(append(packet.Workload{}, bg...), cohorts...)
			w.Sort()
			factory, cfg := arm(ProtoRapid, core.AvgDelay, baseTraceConfig(p))
			col := routing.Run(routing.Scenario{
				Schedule: sched, Workload: w, Factory: factory, Cfg: cfg,
				Seed: int64(day),
			})
			indices = append(indices, col.CohortFairness(sched.Duration)...)
		}
		sort.Float64s(indices)
		ecdf := stat.NewECDF(indices)
		xs, ys := ecdf.Points(min(64, len(indices)))
		fig.Series = append(fig.Series, SeriesData{
			Label: fmt.Sprintf("Number of parallel packets: %d", parallel),
			X:     xs, Y: ys,
		})
	}
	return Output{Figure: fig}
}

// ---------------------------------------------------------------------
// Synthetic mobility (Figs. 16–24)

// synthComparison sweeps the load axis under a mobility model.
func synthComparison(sc Scale, model string, metric core.Metric, value func(metrics.Summary) float64, id, title, ylabel string) Output {
	p := DefaultSynthParams()
	fig := &Figure{
		ID: id, Title: title,
		XLabel: "packets generated per 50 s per destination",
		YLabel: ylabel,
	}
	for _, proto := range ComparisonSet() {
		s := SeriesData{Label: string(proto)}
		for _, load := range sc.SynthLoads {
			s.X = append(s.X, load)
			s.Y = append(s.Y, avgSynth(p, sc, model, load, proto, metric, "", nil, value))
		}
		fig.Series = append(fig.Series, s)
	}
	return Output{Figure: fig}
}

// Fig16 reproduces Figure 16 (power-law average delay).
func Fig16(sc Scale) Output {
	return synthComparison(sc, "powerlaw", core.AvgDelay, avgDelaySec,
		"fig16", "Average delay vs load (power law)", "avg delay (s)")
}

// Fig17 reproduces Figure 17 (power-law max delay).
func Fig17(sc Scale) Output {
	return synthComparison(sc, "powerlaw", core.MaxDelay, maxDelaySec,
		"fig17", "Max delay vs load (power law)", "max delay (s)")
}

// Fig18 reproduces Figure 18 (power-law within-deadline).
func Fig18(sc Scale) Output {
	return synthComparison(sc, "powerlaw", core.Deadline, withinDeadline,
		"fig18", "Delivered within deadline vs load (power law)", "fraction within deadline")
}

// synthBufferSweep powers Figs. 19–21: fixed load, varying per-node
// storage.
func synthBufferSweep(sc Scale, metric core.Metric, value func(metrics.Summary) float64, id, title, ylabel string) Output {
	p := DefaultSynthParams()
	const load = 20 // Table 4 / §6.3.2: 20 packets per destination
	fig := &Figure{ID: id, Title: title, XLabel: "available storage (KB)", YLabel: ylabel}
	for _, proto := range ComparisonSet() {
		s := SeriesData{Label: string(proto)}
		for _, buf := range sc.Buffers {
			buf := buf
			y := avgSynth(p, sc, "powerlaw", load, proto, metric,
				fmt.Sprintf("buf=%d", buf),
				func(c *routing.Config) { c.BufferBytes = buf },
				value)
			s.X = append(s.X, float64(buf>>10))
			s.Y = append(s.Y, y)
		}
		fig.Series = append(fig.Series, s)
	}
	return Output{Figure: fig}
}

// Fig19 reproduces Figure 19 (power-law avg delay vs buffer).
func Fig19(sc Scale) Output {
	return synthBufferSweep(sc, core.AvgDelay, avgDelaySec,
		"fig19", "Average delay vs buffer size (power law)", "avg delay (s)")
}

// Fig20 reproduces Figure 20 (power-law max delay vs buffer).
func Fig20(sc Scale) Output {
	return synthBufferSweep(sc, core.MaxDelay, maxDelaySec,
		"fig20", "Max delay vs buffer size (power law)", "max delay (s)")
}

// Fig21 reproduces Figure 21 (power-law within-deadline vs buffer).
func Fig21(sc Scale) Output {
	return synthBufferSweep(sc, core.Deadline, withinDeadline,
		"fig21", "Delivered within deadline vs buffer size (power law)", "fraction within deadline")
}

// Fig22 reproduces Figure 22 (exponential average delay).
func Fig22(sc Scale) Output {
	return synthComparison(sc, "exponential", core.AvgDelay, avgDelaySec,
		"fig22", "Average delay vs load (exponential)", "avg delay (s)")
}

// Fig23 reproduces Figure 23 (exponential max delay).
func Fig23(sc Scale) Output {
	return synthComparison(sc, "exponential", core.MaxDelay, maxDelaySec,
		"fig23", "Max delay vs load (exponential)", "max delay (s)")
}

// Fig24 reproduces Figure 24 (exponential within-deadline).
func Fig24(sc Scale) Output {
	return synthComparison(sc, "exponential", core.Deadline, withinDeadline,
		"fig24", "Delivered within deadline vs load (exponential)", "fraction within deadline")
}

// sortSeries orders a series by X (Fig. 8 builds out of order).
func sortSeries(s *SeriesData) {
	idx := make([]int, len(s.X))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return s.X[idx[a]] < s.X[idx[b]] })
	nx := make([]float64, len(idx))
	ny := make([]float64, len(idx))
	for i, j := range idx {
		nx[i] = s.X[j]
		ny[i] = s.Y[j]
	}
	s.X, s.Y = nx, ny
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package exp

import "fmt"

// The cgr-policies experiments expose the CGR allocation-policy family
// (single-copy, k-path, bounded multi-copy, admission, with RAPID as
// the multi-copy reference) as first-class artifacts: the same FamilyCI
// reduction `cmd/experiments -family cgr-policies` produces, pinned
// into the golden-checksum sweep so policy regressions surface in CI.

// cgrPolicies runs the family reduction; the engine's scenario cache
// makes the second experiment's call nearly free.
func cgrPolicies(sc Scale) []Output {
	outs, err := defaultEngine.FamilyCI("cgr-policies", sc, sc.Runs)
	if err != nil {
		// Expansion of a registered family cannot fail unless the
		// registry itself is broken — a programming error.
		panic(fmt.Sprintf("exp: cgr-policies family: %v", err))
	}
	return outs
}

// CGRPoliciesDelay is the family's average-delay-vs-loss figure plus
// the aggregate mean ± CI table.
func CGRPoliciesDelay(sc Scale) Output { return cgrPolicies(sc)[0] }

// CGRPoliciesRate is the family's delivery-rate-vs-loss figure.
func CGRPoliciesRate(sc Scale) Output { return cgrPolicies(sc)[1] }

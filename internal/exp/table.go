package exp

import (
	"fmt"

	"rapid/internal/metrics"
	"rapid/internal/report"
	"rapid/internal/scenario"
)

// FamilySummaryTable renders one summary row per scenario of a family
// sweep — the table cmd/experiments prints for -family and the one the
// simulation service returns for a finished job. Both front ends build
// it here so a job submitted over HTTP is byte-identical to the batch
// CLI run of the same scenarios.
func FamilySummaryTable(scs []scenario.Scenario, sums []metrics.Summary) *TableData {
	td := &TableData{Header: []string{
		"protocol", "load", "run", "generated", "delivered", "rate", "avg delay (s)", "within deadline", "lost",
	}}
	for i, s := range sums {
		td.Rows = append(td.Rows, []string{
			string(scs[i].Protocol),
			report.F(scs[i].Workload.Load),
			fmt.Sprint(scs[i].Run),
			fmt.Sprint(s.Generated),
			fmt.Sprint(s.Delivered),
			report.Pct(s.DeliveryRate),
			report.F(s.AvgDelay),
			report.Pct(s.WithinDeadline),
			fmt.Sprint(s.LostTransfers),
		})
	}
	return td
}

// RenderFamilySummaryTable is FamilySummaryTable taken to final text.
func RenderFamilySummaryTable(scs []scenario.Scenario, sums []metrics.Summary) string {
	td := FamilySummaryTable(scs, sums)
	tbl := &report.Table{Header: td.Header, Rows: td.Rows}
	return tbl.Render()
}

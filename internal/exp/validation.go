package exp

import (
	"fmt"

	"rapid/internal/core"
	"rapid/internal/report"
	"rapid/internal/scenario"
	"rapid/internal/stat"
)

// Table3 reproduces the deployment's average daily statistics (§5.2):
// RAPID at the default load (4 packets/hour/destination) over the
// scale's days, on the deployment-emulated (perturbed) schedules.
func Table3(sc Scale) Output {
	p := DefaultTraceParams()
	scs := make([]scenario.Scenario, sc.Days)
	for day := range scs {
		scs[day] = deployScenario(p, sc, day)
	}
	sums := defaultEngine.Summaries(scs)

	var buses, bytesDay, meetings stat.Welford
	var delivered, delay, metaBW, metaData stat.Welford
	for day, s := range sums {
		// Roster size is a schedule property; rebuild the (cheap,
		// deterministic) schedule for it.
		schedSeed, _, _ := scs[day].Seeds()
		sched := scs[day].Schedule.Build(schedSeed)
		buses.Add(float64(len(sched.Nodes())))
		bytesDay.Add(float64(s.OpportunityBytes))
		meetings.Add(float64(s.Meetings))
		delivered.Add(s.DeliveryRate)
		delay.Add(s.AvgDelay / 60)
		metaBW.Add(s.MetaOverBandwidth)
		metaData.Add(s.MetaOverData)
	}
	t := &TableData{Header: []string{"statistic", "paper", "reproduced"}}
	add := func(name, paper, ours string) { t.Rows = append(t.Rows, []string{name, paper, ours}) }
	add("Avg. buses scheduled per day", "19", report.F(buses.Mean()))
	add("Avg. total bytes transferred per day (MB)", "261.4", report.F(bytesDay.Mean()/1e6))
	add("Avg. number of meetings per day", "147.5", report.F(meetings.Mean()))
	add("Percentage delivered per day", "88%", report.Pct(delivered.Mean()))
	add("Avg. packet delivery delay (min)", "91.7", report.F(delay.Mean()))
	add("Meta-data size/bandwidth", "0.002", fmt.Sprintf("%.4f", metaBW.Mean()))
	add("Meta-data size/data size", "0.017", fmt.Sprintf("%.4f", metaData.Mean()))
	notes := []string{
		"reproduced on synthetic DieselNet days with deployment perturbations (DESIGN.md §3)",
	}
	if sc.DayHours > 0 && sc.DayHours < 19 {
		notes = append(notes, fmt.Sprintf("day shortened to %.0f h at scale %q; bytes/meetings scale accordingly", sc.DayHours, sc.Name))
	}
	return Output{Table: t, Notes: notes}
}

// Fig3 reproduces Figure 3: per-day average delay of the deployment
// ("Real": perturbed schedule) against the clean trace-driven
// simulation averaged over the scale's runs, plus the headline
// validation statistic — the simulator's mean delay within a small
// relative error of the deployment's at 95% confidence.
func Fig3(sc Scale) Output {
	p := DefaultTraceParams()

	// Both arms submitted as one flat batch: days × (1 real + Runs sim).
	realScs := make([]scenario.Scenario, sc.Days)
	var simScs []scenario.Scenario
	for day := 0; day < sc.Days; day++ {
		realScs[day] = deployScenario(p, sc, day)
		for run := 0; run < sc.Runs; run++ {
			simScs = append(simScs, traceScenario(p, sc, day, run,
				p.DefaultLoad, ProtoRapid, core.AvgDelay, scenario.Overrides{}))
		}
	}
	sums := defaultEngine.Summaries(append(append([]scenario.Scenario{}, realScs...), simScs...))
	realSums, simSums := sums[:sc.Days], sums[sc.Days:]

	fig := &Figure{
		ID: "fig3", Title: "Deployment vs simulation, daily average delay",
		XLabel: "day", YLabel: "avg delay (min)",
	}
	real := SeriesData{Label: "Real"}
	simS := SeriesData{Label: "Simulation"}
	var relDiffs []float64
	for day := 0; day < sc.Days; day++ {
		rs := realSums[day]
		real.X = append(real.X, float64(day))
		real.Y = append(real.Y, rs.AvgDelay/60)

		// Clean simulation, averaged over seeds (paper: 30 runs).
		var w stat.Welford
		for run := 0; run < sc.Runs; run++ {
			w.Add(simSums[day*sc.Runs+run].AvgDelay / 60)
		}
		simS.X = append(simS.X, float64(day))
		simS.Y = append(simS.Y, w.Mean())
		if rs.AvgDelay > 0 {
			relDiffs = append(relDiffs, (w.Mean()*60-rs.AvgDelay)/rs.AvgDelay)
		}
	}
	fig.Series = []SeriesData{real, simS}
	notes := []string{}
	if len(relDiffs) >= 2 {
		mean, hw, err := stat.MeanCI(relDiffs, 0.95)
		if err == nil {
			notes = append(notes, fmt.Sprintf(
				"simulation vs deployment mean relative delay difference: %.1f%% ± %.1f%% (95%% CI; paper: within 1%%)",
				100*mean, 100*hw))
		}
	}
	return Output{Figure: fig, Notes: notes}
}

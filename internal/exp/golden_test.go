package exp_test

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"rapid/internal/exp"
	"rapid/internal/report"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden figure checksums")

const goldenPath = "testdata/golden_tiny.json"

// TestGoldenFigures regenerates every experiment at tiny scale and
// compares SHA-256 checksums of the rendered artifacts (.dat series
// and table renderings) against the checked-in goldens — the automated
// replacement for the "figures byte-identical" claims earlier PRs
// asserted by hand. A legitimate figure change regenerates the goldens
// with `go test ./internal/exp -run TestGoldenFigures -update`.
func TestGoldenFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny-scale figure sweep is too heavy for -short")
	}
	sc := exp.TinyScale()
	got := map[string]string{}
	for _, e := range exp.All() {
		out := e.Run(sc)
		var buf strings.Builder
		if out.Figure != nil {
			fig := &report.Figure{
				ID: out.Figure.ID, Title: out.Figure.Title,
				XLabel: out.Figure.XLabel, YLabel: out.Figure.YLabel,
			}
			for _, s := range out.Figure.Series {
				fig.Series = append(fig.Series, report.Series{Label: s.Label, X: s.X, Y: s.Y})
			}
			if err := fig.WriteDat(&buf); err != nil {
				t.Fatalf("%s: WriteDat: %v", e.ID, err)
			}
		}
		if out.Table != nil {
			tbl := &report.Table{Header: out.Table.Header, Rows: out.Table.Rows}
			buf.WriteString(tbl.Render())
		}
		for _, n := range out.Notes {
			fmt.Fprintf(&buf, "note: %s\n", n)
		}
		sum := sha256.Sum256([]byte(buf.String()))
		got[e.ID] = hex.EncodeToString(sum[:])
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d checksums", goldenPath, len(got))
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing goldens (%v) — run with -update to create them", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt goldens: %v", err)
	}
	ids := make([]string, 0, len(got))
	for id := range got {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		w, ok := want[id]
		if !ok {
			t.Errorf("%s: no golden checksum — run with -update after reviewing the new experiment", id)
			continue
		}
		if got[id] != w {
			t.Errorf("%s: output changed (sha256 %s, golden %s) — if intended, regenerate with -update",
				id, got[id][:12], w[:12])
		}
	}
	for id := range want {
		if _, ok := got[id]; !ok {
			t.Errorf("%s: golden exists but experiment is gone — regenerate with -update", id)
		}
	}
}

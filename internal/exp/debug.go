package exp

import (
	"rapid/internal/core"
	"rapid/internal/metrics"
	"rapid/internal/routing"
)

// DebugRunTraceDay exposes a single day-run collector for diagnostics
// and the fleet-monitor example.
func DebugRunTraceDay(sc Scale, day int, load float64, proto Proto, metric core.Metric) *metrics.Collector {
	p := DefaultTraceParams()
	sched := traceDay(p, sc, day)
	w := traceWorkload(p, sc, sched, load, int64(day)*1000^0x5ca1ab1e, true)
	factory, cfg := arm(proto, metric, baseTraceConfig(p))
	return routing.Run(routing.Scenario{Schedule: sched, Workload: w, Factory: factory, Cfg: cfg, Seed: int64(day)})
}

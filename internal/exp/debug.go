package exp

import (
	"rapid/internal/core"
	"rapid/internal/metrics"
	"rapid/internal/scenario"
)

// DebugRunTraceDay exposes a single day-run collector for diagnostics
// and the fleet-monitor example.
func DebugRunTraceDay(sc Scale, day int, load float64, proto Proto, metric core.Metric) *metrics.Collector {
	s := traceScenario(DefaultTraceParams(), sc, day, 0, load, proto, metric, scenario.Overrides{})
	col, _ := s.Execute()
	return col
}

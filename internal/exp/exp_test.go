package exp

import (
	"strings"
	"testing"
)

// TestRegistryComplete checks every paper artifact is registered once.
func TestRegistryComplete(t *testing.T) {
	want := []string{"table3", "fig3"}
	for i := 4; i <= 24; i++ {
		want = append(want, "fig"+itoa(i))
	}
	want = append(want, "cgr-policies-delay", "cgr-policies-rate")
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments want %d", len(all), len(want))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if seen[e.ID] {
			t.Errorf("duplicate experiment %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	for _, id := range want {
		if !seen[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	if _, ok := ByID("fig4"); !ok {
		t.Error("ByID failed for fig4")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID matched a nonexistent id")
	}
}

func itoa(i int) string {
	if i >= 10 {
		return string(rune('0'+i/10)) + string(rune('0'+i%10))
	}
	return string(rune('0' + i))
}

// TestTraceComparisonShape asserts the paper's headline ordering at
// tiny scale: RAPID delivers at least as much as Random and has no
// worse average delay under load.
func TestTraceComparisonShape(t *testing.T) {
	sc := TinyScale()
	out := Fig5(sc) // delivery rate sweep
	rates := map[string][]float64{}
	for _, s := range out.Figure.Series {
		rates[s.Label] = s.Y
	}
	rapidY := rates[string(ProtoRapid)]
	randomY := rates[string(ProtoRandom)]
	if len(rapidY) == 0 || len(randomY) == 0 {
		t.Fatalf("missing series: %v", rates)
	}
	// Compare at the highest load (the discriminating regime).
	last := len(rapidY) - 1
	if rapidY[last] < randomY[last]-0.02 {
		t.Errorf("RAPID delivery %v below Random %v at high load", rapidY[last], randomY[last])
	}
	for label, ys := range rates {
		for i, y := range ys {
			if y < 0 || y > 1 {
				t.Errorf("%s delivery rate out of range at %d: %v", label, i, y)
			}
		}
	}
}

// TestTable3Sanity checks the deployment reproduction produces the
// right shape of statistics.
func TestTable3Sanity(t *testing.T) {
	out := Table3(TinyScale())
	if out.Table == nil || len(out.Table.Rows) != 7 {
		t.Fatalf("table3 %+v", out.Table)
	}
	for _, row := range out.Table.Rows {
		if len(row) != 3 || row[2] == "" {
			t.Errorf("row %v", row)
		}
	}
}

// TestFig3ProducesValidationNote checks the sim-vs-deployment
// comparison emits its agreement statistic.
func TestFig3ProducesValidationNote(t *testing.T) {
	sc := TinyScale()
	sc.Days = 3 // need >=2 days for a CI
	out := Fig3(sc)
	if out.Figure == nil || len(out.Figure.Series) != 2 {
		t.Fatal("fig3 must have Real and Simulation series")
	}
	found := false
	for _, n := range out.Notes {
		if strings.Contains(n, "relative delay difference") {
			found = true
		}
	}
	if !found {
		t.Errorf("missing validation note: %v", out.Notes)
	}
}

// TestFig8MoreMetadataNoWorse: at tiny scale, unlimited metadata should
// not do worse than zero metadata (the Fig. 8 trend).
func TestFig8MoreMetadataNoWorse(t *testing.T) {
	out := Fig8(TinyScale())
	if len(out.Figure.Series) == 0 {
		t.Fatal("no series")
	}
	s := out.Figure.Series[0]
	if len(s.Y) < 2 {
		t.Fatalf("series too short: %v", s)
	}
	zero := s.Y[0]               // x=0: no metadata
	unlimited := s.Y[len(s.Y)-1] // x=0.4: unlimited
	if unlimited > zero*1.15 {
		t.Errorf("unlimited metadata (%.1f min) much worse than none (%.1f min)", unlimited, zero)
	}
}

// TestFig13OptimalIsLowerBound: the offline oracle must not lose to any
// online protocol on the Fig. 13 objective.
func TestFig13OptimalIsLowerBound(t *testing.T) {
	out := Fig13(TinyScale())
	var opt, rapid []float64
	for _, s := range out.Figure.Series {
		switch {
		case s.Label == "Optimal":
			opt = s.Y
		case strings.Contains(s.Label, "In-band"):
			rapid = s.Y
		}
	}
	if len(opt) == 0 || len(rapid) == 0 {
		t.Fatal("missing series")
	}
	for i := range opt {
		if opt[i] > rapid[i]+1e-9 {
			t.Errorf("optimal %v worse than RAPID %v at point %d", opt[i], rapid[i], i)
		}
	}
}

// TestFig15FairnessBounds: Jain indices are in (0, 1].
func TestFig15FairnessBounds(t *testing.T) {
	out := Fig15(TinyScale())
	for _, s := range out.Figure.Series {
		for i, x := range s.X {
			if x <= 0 || x > 1.0001 {
				t.Errorf("%s: fairness index %v out of range", s.Label, x)
			}
			if s.Y[i] < 0 || s.Y[i] > 1.0001 {
				t.Errorf("%s: CDF %v out of range", s.Label, s.Y[i])
			}
		}
	}
}

// TestAllExperimentsSmoke runs every registered experiment at tiny
// scale and checks each yields data. Skipped in -short mode (it costs
// about a minute of CPU).
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test skipped in short mode")
	}
	sc := TinyScale()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out := e.Run(sc)
			if out.Figure == nil && out.Table == nil {
				t.Fatalf("%s produced no artifact", e.ID)
			}
			if out.Figure != nil {
				if len(out.Figure.Series) == 0 {
					t.Fatalf("%s: empty figure", e.ID)
				}
				for _, s := range out.Figure.Series {
					if len(s.X) != len(s.Y) {
						t.Fatalf("%s/%s: x/y length mismatch", e.ID, s.Label)
					}
					if len(s.X) == 0 {
						t.Fatalf("%s/%s: empty series", e.ID, s.Label)
					}
				}
			}
		})
	}
}

// TestProtocolArmsResolve ensures every Proto constructs.
func TestProtocolArmsResolve(t *testing.T) {
	base := baseTraceConfig(DefaultTraceParams())
	for _, p := range []Proto{
		ProtoRapid, ProtoRapidLocal, ProtoRapidGlobal, ProtoMaxProp,
		ProtoSprayWait, ProtoProphet, ProtoRandom, ProtoRandomAcks,
	} {
		f, cfg := arm(p, 0, base)
		if f == nil {
			t.Errorf("%s: nil factory", p)
		}
		r := f(0)
		if r.Name() == "" {
			t.Errorf("%s: unnamed router", p)
		}
		_ = cfg
	}
}

func TestUnknownProtoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown proto must panic")
		}
	}()
	arm(Proto("bogus"), 0, baseTraceConfig(DefaultTraceParams()))
}

// TestScalesWellFormed validates the three presets.
func TestScalesWellFormed(t *testing.T) {
	for _, sc := range []Scale{TinyScale(), DefaultScale(), FullScale()} {
		if sc.Days <= 0 || sc.Runs <= 0 || len(sc.TraceLoads) == 0 ||
			len(sc.SynthLoads) == 0 || len(sc.Buffers) == 0 ||
			len(sc.OptimalLoads) == 0 || sc.Name == "" {
			t.Errorf("scale %q malformed: %+v", sc.Name, sc)
		}
	}
}

// Package exp is the experiment harness: it reconstructs every table
// and figure of the paper's evaluation (§5–§6) from the simulator,
// producing report.Figure data that cmd/experiments writes to disk and
// the benchmark suite samples. DESIGN.md carries the per-experiment
// index mapping each figure to the modules and parameters used here.
package exp

import (
	"rapid/internal/routing"
	"rapid/internal/scenario"
	"rapid/internal/trace"
)

// TraceParams mirrors the trace-driven column of Table 4 plus the
// deployment parameters of §5.1.
type TraceParams struct {
	// Diesel is the synthetic DieselNet generator configuration
	// (Table 3 calibration).
	Diesel trace.DieselNetConfig
	// PacketBytes is the packet size (1 KB).
	PacketBytes int64
	// BufferBytes is per-node storage (40 GB — effectively unlimited;
	// encoded as 0 = unlimited).
	BufferBytes int64
	// DeadlineSeconds is the delivery deadline (2.7 h).
	DeadlineSeconds float64
	// LoadWindow is the unit of the load axis (packets per hour per
	// destination).
	LoadWindow float64
	// DefaultLoad is the deployment's rate: 4 packets/hour/destination.
	DefaultLoad float64
}

// DefaultTraceParams returns Table 4's trace-driven values.
func DefaultTraceParams() TraceParams {
	return TraceParams{
		Diesel:          trace.DefaultDieselNet(),
		PacketBytes:     1 << 10,
		BufferBytes:     0, // 40 GB never filled in deployment
		DeadlineSeconds: 2.7 * 3600,
		LoadWindow:      3600,
		DefaultLoad:     scenario.DefaultTraceLoad,
	}
}

// SynthParams mirrors the exponential/power-law column of Table 4.
type SynthParams struct {
	Nodes         int
	BufferBytes   int64
	TransferBytes int64
	Duration      float64
	PacketBytes   int64
	// LoadWindow is the load axis unit: packets per 50 s per
	// destination.
	LoadWindow float64
	// DeadlineSeconds is the synthetic delivery deadline (20 s).
	DeadlineSeconds float64
	// MeanMeeting is the mean pairwise inter-meeting time in seconds,
	// calibrated so that synthetic delays land in the paper's 2–25 s
	// band (the paper's "0.3" power-law mean is a unit-less scale; see
	// DESIGN.md §3).
	MeanMeeting float64
	// PowerLawAlpha skews rates by popularity rank for the power-law
	// model.
	PowerLawAlpha float64
}

// DefaultSynthParams returns Table 4's synthetic values.
func DefaultSynthParams() SynthParams {
	return SynthParams{
		Nodes:           20,
		BufferBytes:     100 << 10,
		TransferBytes:   100 << 10,
		Duration:        15 * 60,
		PacketBytes:     1 << 10,
		LoadWindow:      50,
		DeadlineSeconds: 20,
		MeanMeeting:     60,
		PowerLawAlpha:   1,
	}
}

// Scale trades fidelity for wall-clock time. The paper's full scale
// (58 days × 10 averaging runs) takes CPU-hours; the default scale
// preserves every qualitative claim at a fraction of the cost, and the
// Tiny scale keeps `go test ./...` and the benchmarks fast.
type Scale struct {
	Name string
	// Days is how many DieselNet days to average over (paper: 58).
	Days int
	// Runs is how many seeds per configuration (paper: 10 trace, then
	// averaged over days; 30 for Fig. 3 validation).
	Runs int
	// DayHours shortens the simulated day (paper: 19 h).
	DayHours float64
	// TraceLoads is the load axis for trace figures (paper: 1..40).
	TraceLoads []float64
	// SynthLoads is the load axis for synthetic figures (paper:
	// 10..80).
	SynthLoads []float64
	// Buffers is the storage axis for Figs. 19–21 in KB (paper:
	// 10..280).
	Buffers []int64
	// MetaFractions is the Fig. 8 metadata cap axis.
	MetaFractions []float64
	// OptimalLoads is the Fig. 13 load axis (paper: 1..6).
	OptimalLoads []float64
	// SynthDuration overrides the synthetic run length in seconds
	// (0 = Table 4's 15 minutes).
	SynthDuration float64
	// ConstelPlanes × ConstelSats satellites plus ConstelGround ground
	// stations size the constellation families; ConstelPeriod is the
	// orbital period and ConstelLoads the families' load axis (the
	// synthetic axis is far too hot for hundreds of destinations).
	ConstelPlanes int
	ConstelSats   int
	ConstelGround int
	ConstelPeriod float64
	ConstelLoads  []float64
	// MegaPlanes × MegaSats satellites plus MegaGround ground stations
	// size the mega-constellation scale arm (run lazily off the contact
	// plan with a streaming workload); MegaPeriod is its orbital period
	// and MegaLoads its load axis.
	MegaPlanes int
	MegaSats   int
	MegaGround int
	MegaPeriod float64
	MegaLoads  []float64
}

// TinyScale keeps unit/bench runs under a second per figure.
func TinyScale() Scale {
	return Scale{
		Name: "tiny", Days: 1, Runs: 1, DayHours: 3,
		TraceLoads:    []float64{4, 20},
		SynthLoads:    []float64{10, 40},
		Buffers:       []int64{10 << 10, 80 << 10},
		MetaFractions: []float64{0, 0.1, -1},
		OptimalLoads:  []float64{1, 2},
		SynthDuration: 300,
		// 200 nodes even at tiny scale: the constellation family exists
		// to prove the runtime handles populations an order of magnitude
		// past the paper's 20 buses (the CI benchmark gate runs this).
		ConstelPlanes: 8, ConstelSats: 24, ConstelGround: 8,
		ConstelPeriod: 300, ConstelLoads: []float64{2},
		// The tiny mega arm is a smoke test of the lazy plan + streaming
		// workload path, not a scale run (CI's figure matrix uses it).
		MegaPlanes: 5, MegaSats: 8, MegaGround: 4,
		MegaPeriod: 300, MegaLoads: []float64{1},
	}
}

// DefaultScale balances fidelity and wall-clock time; the shape claims
// asserted in EXPERIMENTS.md hold at this scale.
func DefaultScale() Scale {
	return Scale{
		Name: "default", Days: 4, Runs: 2, DayHours: 8,
		TraceLoads:    []float64{2, 4, 8, 16, 28, 40},
		SynthLoads:    []float64{10, 20, 40, 60, 80},
		Buffers:       []int64{10 << 10, 40 << 10, 100 << 10, 180 << 10, 280 << 10},
		MetaFractions: []float64{0, 0.02, 0.05, 0.1, 0.2, 0.35, -1},
		OptimalLoads:  []float64{1, 2, 4, 6},
		ConstelPlanes: 12, ConstelSats: 24, ConstelGround: 12,
		ConstelPeriod: 900, ConstelLoads: []float64{1, 4},
		// A Starlink-shell-shaped population: 40 planes × 50 satellites
		// plus 24 ground stations = 2,024 nodes over one LEO period.
		MegaPlanes: 40, MegaSats: 50, MegaGround: 24,
		MegaPeriod: 5400, MegaLoads: []float64{1},
	}
}

// FullScale approximates the paper's scale. Expect CPU-hours.
func FullScale() Scale {
	loads := []float64{1, 2, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40}
	return Scale{
		Name: "full", Days: 58, Runs: 10, DayHours: 19,
		TraceLoads:    loads,
		SynthLoads:    []float64{10, 20, 30, 40, 50, 60, 70, 80},
		Buffers:       []int64{10 << 10, 40 << 10, 80 << 10, 120 << 10, 180 << 10, 240 << 10, 280 << 10},
		MetaFractions: []float64{0, 0.02, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, -1},
		OptimalLoads:  []float64{1, 2, 3, 4, 5, 6},
		// A Starlink-shell-shaped population over a full LEO period.
		ConstelPlanes: 24, ConstelSats: 66, ConstelGround: 24,
		ConstelPeriod: 5400, ConstelLoads: []float64{1, 2, 4, 8},
		MegaPlanes: 40, MegaSats: 50, MegaGround: 50,
		MegaPeriod: 5400, MegaLoads: []float64{1, 2},
	}
}

// baseTraceConfig is the runtime config for trace scenarios.
func baseTraceConfig(p TraceParams) routing.Config {
	return routing.Config{
		BufferBytes:          p.BufferBytes,
		Mode:                 routing.ControlInBand,
		MetaFraction:         -1,
		Hops:                 3,
		DefaultTransferBytes: p.Diesel.MeanTransferBytes,
	}
}

// baseSynthConfig is the runtime config for synthetic scenarios.
func baseSynthConfig(p SynthParams) routing.Config {
	return routing.Config{
		BufferBytes:          p.BufferBytes,
		Mode:                 routing.ControlInBand,
		MetaFraction:         -1,
		Hops:                 3,
		DefaultTransferBytes: float64(p.TransferBytes),
	}
}

package exp

import (
	"fmt"
	"sort"
	"strings"

	"rapid/internal/metrics"
	"rapid/internal/scenario"
	"rapid/internal/stat"
)

// This file is the replication/statistics engine: it expands a
// registered scenario family at R seeded replications per grid point,
// fans every replication through the worker pool, and reduces each
// (protocol, axis) point to mean ± 95% confidence intervals — the
// error bars the paper's noisy-trace averaging carries and a single
// replication per point cannot reproduce (DESIGN.md §10).

// ciConfidence is the reported confidence level.
const ciConfidence = 0.95

// FamilyParams maps a family name and scale onto grid parameters — the
// single rule shared by cmd/experiments' family runner, the replication
// engine, and the CI smoke jobs.
func FamilyParams(name string, sc Scale) scenario.Params {
	// Table 4's 15-minute horizon unless the scale overrides it — the
	// same rule the synthetic figures use (SynthParams.Duration).
	duration := 900.0
	if sc.SynthDuration > 0 {
		duration = sc.SynthDuration
	}
	p := scenario.Params{
		Tag: sc.Name, Days: sc.Days, Runs: sc.Runs, DayHours: sc.DayHours,
		Loads: sc.SynthLoads, Nodes: 20, Duration: duration,
		Planes: sc.ConstelPlanes, SatsPerPlane: sc.ConstelSats,
		Ground: sc.ConstelGround, OrbitPeriod: sc.ConstelPeriod,
	}
	switch {
	case strings.HasPrefix(name, "trace"), name == "deployment":
		p.Loads = sc.TraceLoads
	case name == "mega-constellation":
		// The scale arm has its own (much larger) population, checked
		// before the generic constellation case its name also matches.
		p.Planes, p.SatsPerPlane = sc.MegaPlanes, sc.MegaSats
		p.Ground, p.OrbitPeriod = sc.MegaGround, sc.MegaPeriod
		p.Loads = sc.MegaLoads
		if p.OrbitPeriod > p.Duration {
			p.Duration = p.OrbitPeriod
		}
	case strings.Contains(name, "constellation"), strings.HasPrefix(name, "cgr"), name == "asym-uplink":
		p.Loads = sc.ConstelLoads
		if p.OrbitPeriod > p.Duration {
			// A horizon shorter than one orbit would leave most of the
			// plan unexpanded; run at least one full period.
			p.Duration = p.OrbitPeriod
		}
	}
	return p
}

// repPoint accumulates one (series, x) point's replications.
type repPoint struct {
	series string
	x      float64
	delay  stat.Welford
	rate   stat.Welford
}

// FamilyCI expands the family at reps replications per grid point, runs
// every replication on the engine, and reduces the family to two
// error-bar figures — average delay and delivery rate against the
// family's axis — plus an aggregate mean ± CI table. Families whose
// scenarios sweep a disruption loss probability (lossy-constellation)
// use that as the x axis; all others use the workload load.
func (e *Engine) FamilyCI(name string, sc Scale, reps int) ([]Output, error) {
	p := FamilyParams(name, sc)
	if reps > 0 {
		p.Runs = reps
	}
	scs, err := scenario.Expand(name, p)
	if err != nil {
		return nil, err
	}
	if len(scs) == 0 {
		return nil, fmt.Errorf("exp: family %q expanded to no scenarios", name)
	}
	sums := e.Summaries(scs)

	// The x axis: loss probability when the family sweeps one,
	// workload load otherwise.
	lossAxis := false
	for _, s := range scs {
		if s.Disruption.PLoss != scs[0].Disruption.PLoss {
			lossAxis = true
			break
		}
	}
	xlabel := "packets generated per window per destination"
	xOf := func(s scenario.Scenario) float64 { return s.Workload.Load }
	labelOf := func(s scenario.Scenario) string { return string(s.Protocol) }
	if lossAxis {
		xlabel = "per-packet loss probability"
		xOf = func(s scenario.Scenario) float64 { return s.Disruption.PLoss }
		loads := map[float64]bool{}
		for _, s := range scs {
			loads[s.Workload.Load] = true
		}
		if len(loads) > 1 {
			// A loss axis with several workload loads: one series per
			// (protocol, load) so points never collide.
			labelOf = func(s scenario.Scenario) string {
				return fmt.Sprintf("%s (load %g)", s.Protocol, s.Workload.Load)
			}
		}
	}

	// Group replications: the key is the scenario with Run — and the
	// DieselNet day index, the trace families' second averaging
	// dimension — erased, so each group is exactly one experiment
	// point's Days×R independent draws (the paper averages over days
	// and seeds alike).
	groups := map[scenario.Scenario]*repPoint{}
	var order []scenario.Scenario
	for i, s := range sums {
		k := scs[i]
		k.Run = 0
		k.Schedule.Day = 0
		g := groups[k]
		if g == nil {
			g = &repPoint{series: labelOf(k), x: xOf(k)}
			groups[k] = g
			order = append(order, k)
		}
		// A zero-delivery replication has no delay sample — Summarize
		// leaves AvgDelay at 0, and pooling that 0 would drag the delay
		// mean toward the best possible value exactly when the run
		// performed worst. The delivery-rate accumulator records the
		// failure instead.
		if s.Delivered > 0 {
			g.delay.Add(s.AvgDelay)
		}
		g.rate.Add(s.DeliveryRate)
	}

	mkFigure := func(id, title, ylabel string, value func(*repPoint) stat.CI) *Figure {
		fig := &Figure{ID: id, Title: title, XLabel: xlabel, YLabel: ylabel}
		idx := map[string]int{}
		for _, k := range order {
			g := groups[k]
			ci := value(g)
			si, ok := idx[g.series]
			if !ok {
				si = len(fig.Series)
				idx[g.series] = si
				fig.Series = append(fig.Series, SeriesData{Label: g.series})
			}
			s := &fig.Series[si]
			s.X = append(s.X, g.x)
			s.Y = append(s.Y, ci.Mean)
			s.YErr = append(s.YErr, ci.Half)
		}
		for i := range fig.Series {
			sortSeriesErr(&fig.Series[i])
		}
		return fig
	}

	tbl := &TableData{Header: []string{
		"protocol", "x", "reps", "avg delay (s)", "±95%", "delivery rate", "±95%",
	}}
	for _, k := range order {
		g := groups[k]
		d, r := g.delay.CI(ciConfidence), g.rate.CI(ciConfidence)
		// r.N is the point's full replication pool; the delay CI spans
		// the subset that delivered (d.N, equal unless a replication
		// delivered nothing).
		tbl.Rows = append(tbl.Rows, []string{
			g.series, trim(g.x), fmt.Sprint(r.N),
			trim(d.Mean), trim(d.Half), trim(r.Mean), trim(r.Half),
		})
	}

	note := fmt.Sprintf("mean ± 95%% CI over %d seeded replications per point (Student-t)", p.Runs)
	if days := distinctDays(scs); days > 1 {
		note = fmt.Sprintf("mean ± 95%% CI over %d days × %d seeded replications pooled per point (Student-t)", days, p.Runs)
	}
	note += "; delay pools delivering replications only"
	return []Output{
		{
			Figure: mkFigure(name+"-delay", fmt.Sprintf("%s: average delay (R=%d)", name, p.Runs),
				"avg delay (s)", func(g *repPoint) stat.CI { return g.delay.CI(ciConfidence) }),
			Table: tbl,
			Notes: []string{note},
		},
		{
			Figure: mkFigure(name+"-rate", fmt.Sprintf("%s: delivery rate (R=%d)", name, p.Runs),
				"fraction delivered", func(g *repPoint) stat.CI { return g.rate.CI(ciConfidence) }),
			Notes: []string{note},
		},
	}, nil
}

// Replicated runs mk for each replication index in [0, reps) and
// reduces value over the summaries to one confidence interval — the
// programmatic single-point form of FamilyCI, used by tests and ad-hoc
// sweeps.
func (e *Engine) Replicated(mk func(run int) scenario.Scenario, reps int, value func(metrics.Summary) float64) stat.CI {
	scs := make([]scenario.Scenario, reps)
	for r := range scs {
		scs[r] = mk(r)
	}
	var w stat.Welford
	for _, s := range e.Summaries(scs) {
		w.Add(value(s))
	}
	return w.CI(ciConfidence)
}

// distinctDays counts the day values a grid sweeps (1 for dayless
// families).
func distinctDays(scs []scenario.Scenario) int {
	days := map[int]bool{}
	for _, s := range scs {
		days[s.Schedule.Day] = true
	}
	return len(days)
}

// sortSeriesErr orders a series by X, keeping YErr aligned.
func sortSeriesErr(s *SeriesData) {
	idx := make([]int, len(s.X))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return s.X[idx[a]] < s.X[idx[b]] })
	nx := make([]float64, len(idx))
	ny := make([]float64, len(idx))
	ne := make([]float64, len(idx))
	for i, j := range idx {
		nx[i], ny[i], ne[i] = s.X[j], s.Y[j], s.YErr[j]
	}
	s.X, s.Y, s.YErr = nx, ny, ne
}

// trim formats a float compactly for the aggregate table.
func trim(v float64) string {
	return fmt.Sprintf("%.4g", v)
}

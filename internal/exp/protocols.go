package exp

import (
	"rapid/internal/core"
	"rapid/internal/routing"
	"rapid/internal/scenario"
)

// Proto re-exports the scenario layer's protocol identifier; the
// figures and benchmarks speak in these names.
type Proto = scenario.Proto

// The protocol arms of §6.1's comparison set (see internal/scenario,
// where arms self-register into scenario.AllProtos).
var (
	ProtoRapid       = scenario.ProtoRapid
	ProtoRapidLocal  = scenario.ProtoRapidLocal
	ProtoRapidGlobal = scenario.ProtoRapidGlobal
	ProtoMaxProp     = scenario.ProtoMaxProp
	ProtoSprayWait   = scenario.ProtoSprayWait
	ProtoProphet     = scenario.ProtoProphet
	ProtoRandom      = scenario.ProtoRandom
	ProtoRandomAcks  = scenario.ProtoRandomAcks
	ProtoEpidemic    = scenario.ProtoEpidemic
	ProtoCGR         = scenario.ProtoCGR
)

// ComparisonSet is the four-protocol lineup of the headline figures.
func ComparisonSet() []Proto { return scenario.ComparisonSet() }

// arm builds the router factory and config adjustments for a protocol.
func arm(p Proto, metric core.Metric, base routing.Config) (routing.RouterFactory, routing.Config) {
	return scenario.Arm(p, metric, base)
}

package exp

import (
	"fmt"
	"math/rand"
	"sync"

	"rapid/internal/core"
	"rapid/internal/metrics"
	"rapid/internal/mobility"
	"rapid/internal/packet"
	"rapid/internal/routing"
	"rapid/internal/trace"
)

// memo caches day-run summaries across figures: Figs. 4 and 5 read the
// same sweep, Figs. 10–12 share arms with 4/7, and so on. Keys include
// the scale name, so mixed-scale processes stay correct.
var memo sync.Map

func memoKey(sc Scale, day, run int, load float64, proto Proto, metric core.Metric, modKey string) string {
	return fmt.Sprintf("%s|%d|%d|%g|%s|%d|%s", sc.Name, day, run, load, proto, metric, modKey)
}

// traceDay builds one DieselNet day schedule, shortened to the scale's
// DayHours.
func traceDay(p TraceParams, sc Scale, day int) *trace.Schedule {
	cfg := p.Diesel
	if sc.DayHours > 0 {
		cfg.DayHours = sc.DayHours
	}
	return trace.NewDieselNet(cfg).Day(day)
}

// traceWorkload draws the day's Poisson workload over the day's active
// buses ("The destinations of the packets included only buses that were
// scheduled to be on the road", §5.1).
func traceWorkload(p TraceParams, sc Scale, sched *trace.Schedule, load float64, seed int64, deadline bool) packet.Workload {
	gc := packet.GenConfig{
		Nodes:                 sched.Nodes(),
		PacketsPerHourPerDest: load,
		LoadWindow:            p.LoadWindow,
		Duration:              sched.Duration,
		PacketSize:            p.PacketBytes,
		FirstID:               1,
	}
	if deadline {
		gc.Deadline = p.DeadlineSeconds
	}
	return packet.Generate(gc, rand.New(rand.NewSource(seed)))
}

// runTraceDay executes one protocol over one day at one load and
// returns the summary. The cfgMod hook lets figures tweak the runtime
// config (metadata caps, global channel).
func runTraceDay(p TraceParams, sc Scale, day, run int, load float64, proto Proto, metric core.Metric, cfgMod func(*routing.Config)) metrics.Summary {
	sched := traceDay(p, sc, day)
	seed := int64(day)*1000 + int64(run)
	w := traceWorkload(p, sc, sched, load, seed^0x5ca1ab1e, true)
	factory, cfg := arm(proto, metric, baseTraceConfig(p))
	if cfgMod != nil {
		cfgMod(&cfg)
	}
	col := routing.Run(routing.Scenario{
		Schedule: sched, Workload: w, Factory: factory, Cfg: cfg, Seed: seed,
	})
	return col.Summarize(sched.Duration)
}

// avgTrace averages a summary-derived value over the scale's days and
// runs. Each day is a separate experiment, as in §6.1 ("Each of the 58
// days is a separate experiment ... packets that are not delivered by
// the end of the day are lost"). modKey must uniquely identify cfgMod's
// effect for memoization.
func avgTrace(p TraceParams, sc Scale, load float64, proto Proto, metric core.Metric,
	modKey string, cfgMod func(*routing.Config), value func(metrics.Summary) float64) float64 {
	metric = normalizeMetric(proto, metric)
	var sum float64
	var n int
	for day := 0; day < sc.Days; day++ {
		for run := 0; run < sc.Runs; run++ {
			key := memoKey(sc, day, run, load, proto, metric, modKey)
			var s metrics.Summary
			if v, ok := memo.Load(key); ok {
				s = v.(metrics.Summary)
			} else {
				s = runTraceDay(p, sc, day, run, load, proto, metric, cfgMod)
				memo.Store(key, s)
			}
			sum += value(s)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// synthSchedule draws a synthetic-mobility schedule.
func synthSchedule(p SynthParams, model string, seed int64) *trace.Schedule {
	cfg := mobility.Config{
		Nodes:         p.Nodes,
		Duration:      p.Duration,
		MeanMeeting:   p.MeanMeeting,
		TransferBytes: p.TransferBytes,
		Jitter:        true,
	}
	r := rand.New(rand.NewSource(seed))
	switch model {
	case "powerlaw":
		return mobility.PowerLaw{
			Config: cfg, Alpha: p.PowerLawAlpha,
			Ranks: mobility.RandomRanks(p.Nodes, rand.New(rand.NewSource(42))),
		}.Schedule(r)
	default:
		return mobility.Exponential{Config: cfg}.Schedule(r)
	}
}

// synthWorkload draws the synthetic workload. The load axis is packets
// per LoadWindow per destination aggregated over sources, so the
// per-ordered-pair rate is load/(N-1) (see DESIGN.md §7).
func synthWorkload(p SynthParams, load float64, seed int64) packet.Workload {
	nodes := make([]packet.NodeID, p.Nodes)
	for i := range nodes {
		nodes[i] = packet.NodeID(i)
	}
	return packet.Generate(packet.GenConfig{
		Nodes:                 nodes,
		PacketsPerHourPerDest: load / float64(p.Nodes-1),
		LoadWindow:            p.LoadWindow,
		Duration:              p.Duration,
		PacketSize:            p.PacketBytes,
		Deadline:              p.DeadlineSeconds,
		FirstID:               1,
	}, rand.New(rand.NewSource(seed)))
}

// runSynth executes one synthetic run.
func runSynth(p SynthParams, model string, run int, load float64, proto Proto, metric core.Metric, cfgMod func(*routing.Config)) metrics.Summary {
	seed := int64(run + 1)
	sched := synthSchedule(p, model, seed*31)
	w := synthWorkload(p, load, seed*77)
	factory, cfg := arm(proto, metric, baseSynthConfig(p))
	if cfgMod != nil {
		cfgMod(&cfg)
	}
	col := routing.Run(routing.Scenario{
		Schedule: sched, Workload: w, Factory: factory, Cfg: cfg, Seed: seed,
	})
	return col.Summarize(sched.Duration)
}

// normalizeMetric collapses the metric dimension for metric-agnostic
// baselines so their runs are shared across Figs. 4/6/7 (etc.) via the
// memo.
func normalizeMetric(proto Proto, metric core.Metric) core.Metric {
	switch proto {
	case ProtoRapid, ProtoRapidLocal, ProtoRapidGlobal:
		return metric
	default:
		return core.AvgDelay
	}
}

// avgSynth averages over the scale's runs, memoized like avgTrace.
func avgSynth(p SynthParams, sc Scale, model string, load float64, proto Proto, metric core.Metric,
	modKey string, cfgMod func(*routing.Config), value func(metrics.Summary) float64) float64 {
	metric = normalizeMetric(proto, metric)
	if sc.SynthDuration > 0 {
		p.Duration = sc.SynthDuration
	}
	var sum float64
	for run := 0; run < sc.Runs; run++ {
		key := "synth|" + model + "|" + memoKey(sc, 0, run, load, proto, metric, modKey)
		var s metrics.Summary
		if v, ok := memo.Load(key); ok {
			s = v.(metrics.Summary)
		} else {
			s = runSynth(p, model, run, load, proto, metric, cfgMod)
			memo.Store(key, s)
		}
		sum += value(s)
	}
	return sum / float64(sc.Runs)
}

// Summary value extractors shared by the figures.
func avgDelayMin(s metrics.Summary) float64        { return s.AvgDelay / 60 }
func avgDelaySec(s metrics.Summary) float64        { return s.AvgDelay }
func maxDelayMin(s metrics.Summary) float64        { return s.MaxDelay / 60 }
func maxDelaySec(s metrics.Summary) float64        { return s.MaxDelay }
func deliveryRate(s metrics.Summary) float64       { return s.DeliveryRate }
func withinDeadline(s metrics.Summary) float64     { return s.WithinDeadline }
func avgDelayAllMin(s metrics.Summary) float64     { return s.AvgDelayAll / 60 }
func metaOverData(s metrics.Summary) float64       { return s.MetaOverData }
func channelUtilization(s metrics.Summary) float64 { return s.Utilization }

package exp

import (
	"rapid/internal/core"
	"rapid/internal/metrics"
	"rapid/internal/scenario"
)

// This file turns (params, scale) experiment coordinates into scenario
// values. All execution flows through the Engine (engine.go): the
// figures assemble scenario grids here and submit them as one flat job
// list, replacing the old one-point-at-a-time serial loops and their
// stringly-keyed sync.Map memo.

// traceScenario builds the clean DieselNet scenario for one
// (day, run, load, protocol) coordinate.
func traceScenario(p TraceParams, sc Scale, day, run int, load float64, proto Proto, metric core.Metric, ov scenario.Overrides) scenario.Scenario {
	if p.BufferBytes > 0 && !ov.BufferBytesSet {
		ov.BufferBytes = p.BufferBytes
		ov.BufferBytesSet = true
	}
	return scenario.Scenario{
		Family: "trace", Tag: sc.Name,
		Schedule: scenario.ScheduleSpec{
			Source: scenario.SourceDieselNet, Diesel: p.Diesel,
			Day: day, DayHours: sc.DayHours,
		},
		Workload: scenario.WorkloadSpec{
			Shape: scenario.ShapePoisson, Load: load, Window: p.LoadWindow,
			PacketBytes: p.PacketBytes, Deadline: p.DeadlineSeconds,
		},
		Protocol: proto,
		Metric:   scenario.NormalizeMetric(proto, metric),
		Config:   ov,
		Run:      run,
	}
}

// traceGrid expands the scale's day×run grid for one experiment point.
func traceGrid(p TraceParams, sc Scale, load float64, proto Proto, metric core.Metric, ov scenario.Overrides) []scenario.Scenario {
	out := make([]scenario.Scenario, 0, sc.Days*sc.Runs)
	for day := 0; day < sc.Days; day++ {
		for run := 0; run < sc.Runs; run++ {
			out = append(out, traceScenario(p, sc, day, run, load, proto, metric, ov))
		}
	}
	return out
}

// deployScenario builds the "Real" arm: the perturbed schedule standing
// in for the physical deployment (Table 3, Fig. 3).
func deployScenario(p TraceParams, sc Scale, day int) scenario.Scenario {
	s := scenario.Deployment(sc.Name, day, sc.DayHours, p.DefaultLoad)
	s.Schedule.Diesel = p.Diesel
	s.Workload.Window = p.LoadWindow
	s.Workload.PacketBytes = p.PacketBytes
	s.Workload.Deadline = p.DeadlineSeconds
	return s
}

// synthScenario builds one synthetic-mobility scenario. model is a
// mobility registry name ("exponential" or "powerlaw").
func synthScenario(p SynthParams, sc Scale, model string, run int, load float64, proto Proto, metric core.Metric, ov scenario.Overrides) scenario.Scenario {
	src := scenario.SourceExponential
	if model == "powerlaw" {
		src = scenario.SourcePowerLaw
	}
	duration := p.Duration
	if sc.SynthDuration > 0 {
		duration = sc.SynthDuration
	}
	if p.BufferBytes > 0 && !ov.BufferBytesSet {
		ov.BufferBytes = p.BufferBytes
		ov.BufferBytesSet = true
	}
	return scenario.Scenario{
		Family: "synth-" + model, Tag: sc.Name,
		Schedule: scenario.ScheduleSpec{
			Source: src, Nodes: p.Nodes, Duration: duration,
			MeanMeeting: p.MeanMeeting, TransferBytes: p.TransferBytes,
			Alpha: p.PowerLawAlpha, RankSeed: 42,
		},
		Workload: scenario.WorkloadSpec{
			Shape: scenario.ShapePoisson, Load: load, Window: p.LoadWindow,
			PacketBytes: p.PacketBytes, Deadline: p.DeadlineSeconds,
			NodeCount: p.Nodes, PerPair: true,
		},
		Protocol: proto,
		Metric:   scenario.NormalizeMetric(proto, metric),
		Config:   ov,
		Run:      run,
	}
}

// synthGrid expands the scale's runs for one synthetic point.
func synthGrid(p SynthParams, sc Scale, model string, load float64, proto Proto, metric core.Metric, ov scenario.Overrides) []scenario.Scenario {
	out := make([]scenario.Scenario, 0, sc.Runs)
	for run := 0; run < sc.Runs; run++ {
		out = append(out, synthScenario(p, sc, model, run, load, proto, metric, ov))
	}
	return out
}

// fairnessScenario builds the Fig. 15 cohort workload for one day: a
// Poisson background keeping resources contended plus batches of
// packets created in parallel.
func fairnessScenario(p TraceParams, sc Scale, day, parallel int) scenario.Scenario {
	s := traceScenario(p, sc, day, 0, 0, ProtoRapid, core.AvgDelay, scenario.Overrides{})
	s.Family = "trace-fairness"
	s.Workload = scenario.WorkloadSpec{
		Shape: scenario.ShapeCohorts, Window: p.LoadWindow,
		PacketBytes: p.PacketBytes,
		Cohorts:     8, Parallel: parallel, BgLoad: 10,
	}
	return s
}

// Summary value extractors shared by the figures.
func avgDelayMin(s metrics.Summary) float64        { return s.AvgDelay / 60 }
func avgDelaySec(s metrics.Summary) float64        { return s.AvgDelay }
func maxDelayMin(s metrics.Summary) float64        { return s.MaxDelay / 60 }
func maxDelaySec(s metrics.Summary) float64        { return s.MaxDelay }
func deliveryRate(s metrics.Summary) float64       { return s.DeliveryRate }
func withinDeadline(s metrics.Summary) float64     { return s.WithinDeadline }
func avgDelayAllMin(s metrics.Summary) float64     { return s.AvgDelayAll / 60 }
func metaOverData(s metrics.Summary) float64       { return s.MetaOverData }
func channelUtilization(s metrics.Summary) float64 { return s.Utilization }

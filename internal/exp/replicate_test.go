package exp

import (
	"testing"

	"rapid/internal/scenario"
)

// smallDisruptGrid expands a miniature lossy-constellation grid: R
// replications of two protocol arms at one load and one loss level.
func smallDisruptGrid(t *testing.T, tag string, reps int) []scenario.Scenario {
	t.Helper()
	scs, err := scenario.Expand("lossy-constellation", scenario.Params{
		Tag: tag, Runs: reps, Loads: []float64{4},
		Protocols: []scenario.Proto{scenario.ProtoRapid, scenario.ProtoCGR},
		Planes:    2, SatsPerPlane: 3, Ground: 2,
		OrbitPeriod: 120, Duration: 240,
		LossGrid: []float64{0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	return scs
}

// TestReplicationDeterminismAcrossWorkers: the same master seeds yield
// bit-identical per-replication metrics whether the replications run
// serially or race each other across a worker pool — the disruption
// model is realized per run from pure decision functions, so there is
// no shared RNG to alias across goroutines (CI runs this under -race).
func TestReplicationDeterminismAcrossWorkers(t *testing.T) {
	scs := smallDisruptGrid(t, "det", 4)
	serial := NewEngine(1, 0).Summaries(scs)
	pooled := NewEngine(8, 0).Summaries(scs)
	for i := range scs {
		if serial[i] != pooled[i] {
			t.Errorf("replication %s/run=%d diverged across worker counts:\n  1 worker:  %+v\n  8 workers: %+v",
				scs[i].Protocol, scs[i].Run, serial[i], pooled[i])
		}
	}
	// And a fresh engine reproduces the same summaries bit-for-bit.
	again := NewEngine(8, 0).Summaries(scs)
	for i := range scs {
		if serial[i] != again[i] {
			t.Errorf("replication %s/run=%d not reproducible across engines", scs[i].Protocol, scs[i].Run)
		}
	}
}

// TestReplicationsDiffer: distinct replications of a disrupted point
// are genuinely independent draws — at 25% loss over a small plan the
// realizations must not all collapse onto one outcome.
func TestReplicationsDiffer(t *testing.T) {
	scs := smallDisruptGrid(t, "indep", 6)
	sums := NewEngine(0, 0).Summaries(scs)
	byRun := map[int]int{}
	for i, s := range sums {
		if scs[i].Protocol == scenario.ProtoRapid {
			byRun[scs[i].Run] = s.LostTransfers
		}
	}
	if len(byRun) < 6 {
		t.Fatalf("expected 6 replications, saw %d", len(byRun))
	}
	first, all := byRun[0], true
	anyLost := false
	for _, lost := range byRun {
		if lost != first {
			all = false
		}
		if lost > 0 {
			anyLost = true
		}
	}
	if !anyLost {
		t.Fatal("no replication lost a transfer at 25% loss — the model is not engaged")
	}
	if all {
		t.Errorf("all 6 replications lost exactly %d transfers — disruption streams look aliased", first)
	}
}

// TestFamilyCI: the replication reduction emits paired error bars and a
// loss-probability axis for the lossy family.
func TestFamilyCI(t *testing.T) {
	sc := Scale{
		Name: "ci-test", Days: 1, Runs: 3, DayHours: 1,
		TraceLoads: []float64{4}, SynthLoads: []float64{8},
		ConstelPlanes: 2, ConstelSats: 3, ConstelGround: 2,
		ConstelPeriod: 120, ConstelLoads: []float64{4},
		SynthDuration: 240,
	}
	outs, err := NewEngine(0, 0).FamilyCI("lossy-constellation", sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("FamilyCI produced %d outputs, want 2", len(outs))
	}
	fig := outs[0].Figure
	if fig.XLabel != "per-packet loss probability" {
		t.Errorf("lossy family x-axis = %q, want the loss-probability axis", fig.XLabel)
	}
	if len(fig.Series) == 0 {
		t.Fatal("no series")
	}
	for _, s := range fig.Series {
		if len(s.X) == 0 || len(s.X) != len(s.Y) || len(s.Y) != len(s.YErr) {
			t.Fatalf("series %q has misaligned X/Y/YErr: %d/%d/%d", s.Label, len(s.X), len(s.Y), len(s.YErr))
		}
		for i := 1; i < len(s.X); i++ {
			if s.X[i] < s.X[i-1] {
				t.Errorf("series %q x-axis unsorted", s.Label)
			}
		}
	}
	if outs[0].Table == nil || len(outs[0].Table.Rows) == 0 {
		t.Error("no aggregate mean ± CI table")
	}
}

// TestFamilyCIFoldsDays: multi-day families fold the day dimension
// into the replication pool — one point per (protocol, load) with
// Days×R observations, never per-day duplicates colliding at one x.
func TestFamilyCIFoldsDays(t *testing.T) {
	sc := Scale{
		Name: "ci-days", Days: 2, Runs: 2, DayHours: 1,
		TraceLoads: []float64{4}, SynthLoads: []float64{8},
		ConstelPlanes: 2, ConstelSats: 3, ConstelGround: 2,
		ConstelPeriod: 120, ConstelLoads: []float64{4},
		SynthDuration: 240,
	}
	outs, err := NewEngine(0, 0).FamilyCI("trace-comparison", sc, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range outs[0].Figure.Series {
		seen := map[float64]bool{}
		for _, x := range s.X {
			if seen[x] {
				t.Fatalf("series %q has duplicate x=%v — per-day points leaked into the figure", s.Label, x)
			}
			seen[x] = true
		}
	}
	// Every point pools Days × R observations.
	for _, row := range outs[0].Table.Rows {
		if row[2] != "4" {
			t.Errorf("point %s/%s pools %s replications, want 4 (2 days × 2 runs)", row[0], row[1], row[2])
		}
	}
}

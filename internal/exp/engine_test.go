package exp

import (
	"reflect"
	"testing"

	"rapid/internal/metrics"
	"rapid/internal/scenario"
)

// engineGrid expands a small registry family: 2 loads × 2 protocols ×
// 2 runs = 8 scenarios, each well under 100 ms.
func engineGrid(tag string) []scenario.Scenario {
	p := scenario.Params{
		Tag: tag, Runs: 2, Loads: []float64{10, 40},
		Protocols: []scenario.Proto{ProtoRapid, ProtoRandom},
		Nodes:     8, Duration: 120,
	}
	scs, err := scenario.Expand("synth-exponential", p)
	if err != nil {
		panic(err)
	}
	return scs
}

// TestParallelMatchesSerial: a registry-family sweep on a parallel
// engine produces summaries identical to the serial path — both a
// 1-worker engine and direct scenario execution.
func TestParallelMatchesSerial(t *testing.T) {
	grid := engineGrid("par-vs-serial")
	par := NewEngine(8, 0).Summaries(grid)
	ser := NewEngine(1, 0).Summaries(grid)
	if !reflect.DeepEqual(par, ser) {
		t.Fatal("parallel engine and 1-worker engine disagree")
	}
	for i, sc := range grid {
		if direct := sc.Summary(); !reflect.DeepEqual(par[i], direct) {
			t.Fatalf("scenario %d: engine %+v != direct %+v", i, par[i], direct)
		}
	}
}

// TestSummariesOrderPreserved: results line up with the input order
// regardless of completion order.
func TestSummariesOrderPreserved(t *testing.T) {
	grid := engineGrid("order")
	e := NewEngine(4, 0)
	got := e.Summaries(grid)
	if len(got) != len(grid) {
		t.Fatalf("got %d summaries for %d scenarios", len(got), len(grid))
	}
	for i, sc := range grid {
		if cached, ok := e.lookup(sc); !ok || !reflect.DeepEqual(cached, got[i]) {
			t.Fatalf("position %d does not hold its scenario's summary", i)
		}
	}
}

// TestCacheHitAndDedup: a repeated scenario is computed once per engine
// and served from cache afterwards.
func TestCacheHitAndDedup(t *testing.T) {
	sc := engineGrid("dedup")[0]
	e := NewEngine(4, 0)
	out := e.Summaries([]scenario.Scenario{sc, sc, sc, sc})
	for i := 1; i < len(out); i++ {
		if !reflect.DeepEqual(out[0], out[i]) {
			t.Fatal("duplicate scenarios returned different summaries")
		}
	}
	if n := e.CacheLen(); n != 1 {
		t.Fatalf("cache holds %d entries for one unique scenario", n)
	}
	again := e.Summaries([]scenario.Scenario{sc})
	if !reflect.DeepEqual(again[0], out[0]) {
		t.Fatal("cache served a different summary")
	}
	if n := e.CacheLen(); n != 1 {
		t.Fatalf("cache grew to %d on a pure hit", n)
	}
}

// TestCacheBounded: the cache evicts oldest entries at its limit
// instead of growing without bound (the old global sync.Map never
// evicted).
func TestCacheBounded(t *testing.T) {
	grid := engineGrid("bounded")
	e := NewEngine(2, 3)
	e.Summaries(grid)
	if n := e.CacheLen(); n > 3 {
		t.Fatalf("cache holds %d entries, limit 3", n)
	}
	// The newest entry must still be resident.
	if _, ok := e.lookup(grid[len(grid)-1]); !ok {
		t.Fatal("newest entry evicted")
	}
}

// TestAverage: Average equals the mean of Summaries.
func TestAverage(t *testing.T) {
	grid := engineGrid("avg")[:3]
	e := NewEngine(2, 0)
	var want float64
	for _, s := range e.Summaries(grid) {
		want += s.DeliveryRate
	}
	want /= float64(len(grid))
	if got := e.Average(grid, deliveryRate); got != want {
		t.Fatalf("Average = %v, want %v", got, want)
	}
	if got := e.Average(nil, deliveryRate); got != 0 {
		t.Fatalf("Average of empty set = %v, want 0", got)
	}
}

// TestRunsParallelCollectors: full-collector runs preserve order and
// horizons.
func TestRunsParallelCollectors(t *testing.T) {
	grid := engineGrid("runs")[:2]
	outs := NewEngine(4, 0).Runs(grid)
	if len(outs) != 2 {
		t.Fatalf("got %d outputs", len(outs))
	}
	for i, o := range outs {
		if o.Col == nil {
			t.Fatalf("run %d: nil collector", i)
		}
		if o.Horizon != grid[i].Schedule.Duration {
			t.Fatalf("run %d: horizon %v, want %v", i, o.Horizon, grid[i].Schedule.Duration)
		}
		if !reflect.DeepEqual(o.Col.Summarize(o.Horizon), grid[i].Summary()) {
			t.Fatalf("run %d: collector disagrees with direct execution", i)
		}
	}
}

// TestFigureParallelMatchesSerial: a whole figure regenerated on a
// parallel engine equals the 1-worker regeneration (the registry-level
// guarantee the figures depend on).
func TestFigureParallelMatchesSerial(t *testing.T) {
	sc := TinyScale()
	sc.Name = "tiny-parallel-check"
	saved := defaultEngine
	defer func() { defaultEngine = saved }()

	defaultEngine = NewEngine(1, 0)
	serial := Fig5(sc)
	defaultEngine = NewEngine(8, 0)
	parallel := Fig5(sc)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("Fig5 differs between serial and parallel engines")
	}
}

// TestSweepSeriesOrder: series appear in first-point insertion order
// and carry one point per x.
func TestSweepSeriesOrder(t *testing.T) {
	grid := engineGrid("sweep")
	sw := newSweep("id", "t", "x", "y")
	sw.point("b", 1, deliveryRate, grid[:1])
	sw.point("a", 1, deliveryRate, grid[1:2])
	sw.point("b", 2, deliveryRate, grid[2:3])
	fig := sw.run(NewEngine(2, 0))
	if len(fig.Series) != 2 || fig.Series[0].Label != "b" || fig.Series[1].Label != "a" {
		t.Fatalf("series order wrong: %+v", fig.Series)
	}
	if len(fig.Series[0].X) != 2 || len(fig.Series[1].X) != 1 {
		t.Fatalf("series lengths wrong: %+v", fig.Series)
	}
}

// TestCacheSustainedEviction: under sustained eviction the fifo ring
// keeps the cache at its bound, evicts strictly oldest-first, and
// compacts its backing array instead of pinning every evicted key
// behind a growing hidden prefix (the old fifo[1:] reslice leak).
func TestCacheSustainedEviction(t *testing.T) {
	e := NewEngine(1, 4)
	mk := func(i int) scenario.Scenario {
		sc := engineGrid("evict")[0]
		sc.Run = i // distinct cache identity per i
		return sc
	}
	const waves = 40
	for i := 0; i < waves; i++ {
		e.store(mk(i), metrics.Summary{Generated: i})
		if n := e.CacheLen(); n > 4 {
			t.Fatalf("wave %d: cache holds %d entries, limit 4", i, n)
		}
	}
	// Only the four newest survive.
	for i := 0; i < waves; i++ {
		s, ok := e.lookup(mk(i))
		if want := i >= waves-4; ok != want {
			t.Fatalf("entry %d resident=%v want %v", i, ok, want)
		}
		if ok && s.Generated != i {
			t.Fatalf("entry %d returned summary %d", i, s.Generated)
		}
	}
	// The backing array must stay near the limit, not near `waves`.
	if cap(e.fifo) > 16 {
		t.Errorf("fifo backing array grew to %d for a limit-4 cache", cap(e.fifo))
	}
}

package shard

import (
	"math/rand"
	"sync"
	"testing"
)

// item is a two-key workload element for partition tests.
type item struct{ a, b int64 }

func keysOf(items []item) func(int) (int64, int64) {
	return func(i int) (int64, int64) { return items[i].a, items[i].b }
}

// checkPartition asserts the three wave invariants: every index appears
// exactly once, no two members of one wave share a key, and conflicting
// items keep index order across waves.
func checkPartition(t *testing.T, items []item, waves [][]int) {
	t.Helper()
	seen := make(map[int]bool, len(items))
	rank := make(map[int]int, len(items)) // index -> wave
	for w, wave := range waves {
		keys := map[int64]bool{}
		for _, i := range wave {
			if seen[i] {
				t.Fatalf("index %d appears twice", i)
			}
			seen[i] = true
			rank[i] = w
			if keys[items[i].a] || keys[items[i].b] {
				t.Fatalf("wave %d has conflicting members (index %d, keys %d/%d)",
					w, i, items[i].a, items[i].b)
			}
			keys[items[i].a] = true
			keys[items[i].b] = true
		}
	}
	if len(seen) != len(items) {
		t.Fatalf("partition covers %d of %d items", len(seen), len(items))
	}
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			if conflicts(items[i], items[j]) && rank[i] >= rank[j] {
				t.Fatalf("conflicting items %d and %d ordered %d >= %d",
					i, j, rank[i], rank[j])
			}
		}
	}
}

func conflicts(x, y item) bool {
	return x.a == y.a || x.a == y.b || x.b == y.a || x.b == y.b
}

func TestPlanDisjointSingleWave(t *testing.T) {
	items := []item{{0, 1}, {2, 3}, {4, 5}, {6, 7}}
	var p Planner
	waves := p.Plan(len(items), keysOf(items))
	if len(waves) != 1 || len(waves[0]) != 4 {
		t.Fatalf("disjoint items want one wave of 4, got %v", waves)
	}
	checkPartition(t, items, waves)
}

func TestPlanChainFullySerial(t *testing.T) {
	// The same pair repeated must execute strictly in order.
	items := []item{{1, 2}, {1, 2}, {1, 2}}
	var p Planner
	waves := p.Plan(len(items), keysOf(items))
	if len(waves) != 3 {
		t.Fatalf("repeated pair wants 3 waves, got %d", len(waves))
	}
	checkPartition(t, items, waves)
}

func TestPlanSharedEndpointOrdering(t *testing.T) {
	// (1,2) and (2,3) share node 2; (4,5) is independent.
	items := []item{{1, 2}, {2, 3}, {4, 5}}
	var p Planner
	waves := p.Plan(len(items), keysOf(items))
	checkPartition(t, items, waves)
	if len(waves) != 2 {
		t.Fatalf("want 2 waves, got %d", len(waves))
	}
	if len(waves[0]) != 2 { // {1,2} and {4,5}
		t.Fatalf("wave 0 want 2 members, got %v", waves[0])
	}
}

func TestPlanRandomizedInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var p Planner // reused across rounds: buffer reuse must not leak state
	for round := 0; round < 50; round++ {
		n := 1 + r.Intn(200)
		items := make([]item, n)
		for i := range items {
			items[i] = item{int64(r.Intn(30)), int64(r.Intn(30))}
		}
		checkPartition(t, items, p.Plan(n, keysOf(items)))
	}
}

func TestPlanDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	items := make([]item, 300)
	for i := range items {
		items[i] = item{int64(r.Intn(40)), int64(r.Intn(40))}
	}
	var p1, p2 Planner
	w1 := p1.Plan(len(items), keysOf(items))
	w2 := p2.Plan(len(items), keysOf(items))
	if len(w1) != len(w2) {
		t.Fatalf("wave counts differ: %d vs %d", len(w1), len(w2))
	}
	for w := range w1 {
		if len(w1[w]) != len(w2[w]) {
			t.Fatalf("wave %d sizes differ", w)
		}
		for i := range w1[w] {
			if w1[w][i] != w2[w][i] {
				t.Fatalf("wave %d member %d differs", w, i)
			}
		}
	}
}

// TestRunAllExecutedOnce drives Run with several worker counts and
// verifies each index executes exactly once, with conflicting indices
// strictly ordered (the -race build additionally proves wave members
// never touch shared per-key state concurrently).
func TestRunAllExecutedOnce(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	items := make([]item, 500)
	for i := range items {
		items[i] = item{int64(r.Intn(25)), int64(r.Intn(25))}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		var p Planner
		waves := p.Plan(len(items), keysOf(items))
		counts := make([]int, len(items))
		var mu sync.Mutex
		// perKey is written without synchronization by design: if two
		// concurrent wave members shared a key, -race would flag it.
		perKey := map[int64]int{}
		Run(waves, workers, func(i int) {
			perKey[items[i].a]++
			perKey[items[i].b]++
			mu.Lock()
			counts[i]++
			mu.Unlock()
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, c)
			}
		}
	}
}

// TestRunWaveBarrier asserts no member of wave w+1 starts before every
// member of wave w finished.
func TestRunWaveBarrier(t *testing.T) {
	items := []item{{1, 2}, {3, 4}, {1, 3}} // third conflicts with both
	var p Planner
	waves := p.Plan(len(items), keysOf(items))
	if len(waves) != 2 {
		t.Fatalf("want 2 waves, got %d", len(waves))
	}
	var mu sync.Mutex
	var done []int
	Run(waves, 4, func(i int) {
		mu.Lock()
		done = append(done, i)
		mu.Unlock()
	})
	if len(done) != 3 || done[2] != 2 {
		t.Fatalf("wave-2 member must finish last, got order %v", done)
	}
}

// Package shard partitions batches of two-endpoint events into
// conflict-free waves and executes each wave across a bounded worker
// pool. It is the commit-phase scheduler behind the parallel simulation
// engine (sim.Engine.SetWorkers): two events conflict when their key
// sets intersect — for contact sessions the keys are the endpoint node
// IDs — and non-conflicting events commute, so a wave can run its
// members concurrently while conflicting events keep their original
// order by wave rank. The package has no dependencies and no global
// state; determinism of the partition is a pure function of the input
// order and keys.
package shard

import (
	"sync"
	"sync/atomic"
)

// Planner computes wave partitions. The zero value is ready to use. A
// Planner reuses its internal map and wave slices across Plan calls, so
// one long-lived planner per engine keeps per-batch allocation flat.
// Not safe for concurrent use.
type Planner struct {
	last  map[int64]int
	waves [][]int
}

// Plan partitions items 0..n-1 into waves: item i lands in the first
// wave strictly after every earlier item that shares one of its keys.
// Within a wave no two items share a key, so wave members may execute
// concurrently; across waves, conflicting items preserve their index
// order (the earlier item gets the earlier wave). The returned slices
// are owned by the planner and are valid until the next Plan call.
func (p *Planner) Plan(n int, keys func(i int) (a, b int64)) [][]int {
	if p.last == nil {
		p.last = make(map[int64]int, 2*n)
	} else {
		clear(p.last)
	}
	waves := p.waves
	for i := range waves {
		waves[i] = waves[i][:0]
	}
	used := 0
	for i := 0; i < n; i++ {
		a, b := keys(i)
		w := 0
		if last, ok := p.last[a]; ok {
			w = last + 1
		}
		if last, ok := p.last[b]; ok && last+1 > w {
			w = last + 1
		}
		for w >= len(waves) {
			waves = append(waves, nil)
		}
		waves[w] = append(waves[w], i)
		if w+1 > used {
			used = w + 1
		}
		p.last[a] = w
		p.last[b] = w
	}
	p.waves = waves
	return waves[:used]
}

// Run executes every item of every wave: waves strictly in order with a
// full barrier between consecutive waves, items within one wave spread
// across at most workers goroutines. exec must be safe to call
// concurrently for items of the same wave (by construction they share
// no keys). workers <= 1, and waves of a single item, run serially on
// the calling goroutine.
func Run(waves [][]int, workers int, exec func(i int)) {
	for _, wave := range waves {
		if workers <= 1 || len(wave) < 2 {
			for _, i := range wave {
				exec(i)
			}
			continue
		}
		n := workers
		if len(wave) < n {
			n = len(wave)
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(n)
		for g := 0; g < n; g++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(wave) {
						return
					}
					exec(wave[i])
				}
			}()
		}
		wg.Wait()
	}
}

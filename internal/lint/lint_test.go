package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"rapid/internal/lint/analysis"
	"rapid/internal/lint/linttest"
)

// The fixture packages under testdata/src carry // want comments for
// the positives (including suppression behavior); anything the
// analyzer reports without a matching want — or any want left
// unmatched — fails the test.

func TestNondeterminism(t *testing.T) { linttest.Run(t, Nondeterminism, "nondet") }
func TestMapOrder(t *testing.T)       { linttest.Run(t, MapOrder, "maporder") }
func TestShardCommit(t *testing.T)    { linttest.Run(t, ShardCommit, "shardcommit") }
func TestSessionConfined(t *testing.T) {
	linttest.Run(t, SessionConfined, "sessionconfined")
}
func TestNilness(t *testing.T) { linttest.Run(t, Nilness, "nilness") }
func TestShadow(t *testing.T)  { linttest.Run(t, Shadow, "shadow") }

// TestAllNames locks the analyzerNames literal (which newSuppressor
// consults; a literal to avoid an initialization cycle) to the actual
// suite returned by All().
func TestAllNames(t *testing.T) {
	fromAll := map[string]bool{}
	for _, a := range All() {
		if !analyzerNames[a.Name] {
			t.Errorf("analyzer %q missing from analyzerNames", a.Name)
		}
		fromAll[a.Name] = true
	}
	for name := range analyzerNames {
		if !fromAll[name] {
			t.Errorf("analyzerNames lists %q, which All() does not return", name)
		}
	}
}

// allowSrc is an import-free file exercising the //rapidlint:allow
// grammar: a comment missing its reason, a comment naming an unknown
// analyzer, and a well-formed comment.
const allowSrc = `package fixture

//rapidlint:allow maporder
var missingReason int

//rapidlint:allow clockcheck — plausible but unknown analyzer
var unknownName int

//rapidlint:allow shadow — covers this line and the next
var covered int

var uncovered int
`

// loadSource type-checks one import-free source file into a Pass for
// the given analyzer, appending diagnostic messages to *diags.
func loadSource(t *testing.T, src string, a *analysis.Analyzer, diags *[]string) *analysis.Pass {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := (&types.Config{}).Check("fixture", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     []*ast.File{f},
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { *diags = append(*diags, d.Message) },
	}
}

// TestMalformedAllowComments checks that the suppressor owning
// malformed-comment reporting flags a missing reason and an unknown
// analyzer name — and that non-owning suppressors stay silent, so the
// multichecker emits each malformed comment exactly once.
func TestMalformedAllowComments(t *testing.T) {
	var diags []string
	pass := loadSource(t, allowSrc, Nondeterminism, &diags)

	newSuppressor(pass, true)
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics %q, want 2", len(diags), diags)
	}
	if !strings.Contains(diags[0], "needs a reason") {
		t.Errorf("missing-reason diagnostic = %q", diags[0])
	}
	if !strings.Contains(diags[1], `"clockcheck" is not a rapidlint analyzer`) {
		t.Errorf("unknown-name diagnostic = %q", diags[1])
	}

	diags = diags[:0]
	newSuppressor(pass, false)
	if len(diags) != 0 {
		t.Errorf("non-owning suppressor reported %q", diags)
	}
}

// TestSuppressionCoverage checks the line arithmetic: a well-formed
// allow comment covers its own line and the next, for its named
// analyzer only. Malformed comments suppress nothing.
func TestSuppressionCoverage(t *testing.T) {
	var diags []string
	pass := loadSource(t, allowSrc, Shadow, &diags)
	sup := newSuppressor(pass, false)

	pos := func(name string) token.Pos {
		obj := pass.Pkg.Scope().Lookup(name)
		if obj == nil {
			t.Fatalf("no package-level %q in fixture", name)
		}
		return obj.Pos()
	}

	if !sup.suppressed(pos("covered")) {
		t.Error("shadow not suppressed on the line below its allow comment")
	}
	if sup.suppressed(pos("uncovered")) {
		t.Error("suppression leaked two lines past the allow comment")
	}
	if sup.suppressed(pos("missingReason")) {
		t.Error("reason-less allow comment suppressed a diagnostic")
	}
	if sup.suppressed(pos("unknownName")) {
		t.Error("unknown-analyzer allow comment suppressed a diagnostic")
	}

	var mapDiags []string
	mapPass := loadSource(t, allowSrc, MapOrder, &mapDiags)
	if newSuppressor(mapPass, false).suppressed(mapPass.Pkg.Scope().Lookup("covered").Pos()) {
		t.Error("allow comment naming shadow suppressed maporder")
	}
}

// Package sessionconfined exercises the sessionconfined analyzer. The
// marker is structural: any type with a niladic SessionConfined
// method is held to the no-shared-state promise.
package sessionconfined

import "math/rand"

// shared is package-level mutable state: off-limits to marked types.
var shared = map[int]float64{}

// errClosed is an error sentinel, exempt by convention.
var errClosed error

// scale is a constant: immutable, never flagged.
const scale = 1.5

type BadRouter struct {
	rng *rand.Rand // want `SessionConfined router BadRouter holds a \*rand\.Rand field "rng"`
}

func (r *BadRouter) SessionConfined() {}

func (r *BadRouter) Touch() {
	shared[1] = 2 // want `references package-level variable "shared" \(via Touch\)`
}

func (r *BadRouter) Indirect() { bump() }

func (r *BadRouter) Sentinel() error { return errClosed }

func bump() {
	shared[3] = 4 // want `references package-level variable "shared" \(via Indirect → bump\)`
}

type inner struct {
	stream *rand.Rand // want `SessionConfined router EmbedRouter holds a \*rand\.Rand field "stream"`
}

type EmbedRouter struct {
	inner
	hops int
}

func (r *EmbedRouter) SessionConfined() {}

type OkRouter struct {
	seed  uint64
	local []float64
}

func (r *OkRouter) SessionConfined() {}

func (r *OkRouter) Step(peer *OkRouter) {
	r.local = append(r.local, scale*float64(r.seed))
	_ = peer.seed
}

type AllowRouter struct {
	scratch *rand.Rand //rapidlint:allow sessionconfined — fixture: suppression accepted on a field
}

func (r *AllowRouter) SessionConfined() {}

type Unmarked struct {
	rng *rand.Rand
}

func (u *Unmarked) Use() { shared[5] = 6 }

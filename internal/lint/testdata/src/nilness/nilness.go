// Package nilness exercises the lite nilness analyzer: dereferences
// inside the body of a value's own nil guard are positives;
// reassignment before use and method calls (nil-tolerant receivers)
// are negatives.
package nilness

type box struct{ v int }

func (p *box) describe() string {
	if p == nil {
		return "<nil>"
	}
	return "box"
}

func field(p *box) int {
	if p == nil {
		return p.v // want `field access on "p"`
	}
	return p.v
}

func deref(p *int) int {
	if p == nil {
		return *p // want `"p" is nil on this path`
	}
	return *p
}

func index(s []int) int {
	if s == nil {
		return s[0] // want `indexing "s"`
	}
	return 0
}

func call(f func() int) int {
	if f == nil {
		return f() // want `calling "f"`
	}
	return f()
}

func guarded(p *box) int {
	if p == nil {
		p = &box{}
		return p.v // reassigned first: no diagnostic
	}
	return p.v
}

func method(p *box) string {
	if p == nil {
		return p.describe() // method call: receiver may tolerate nil
	}
	return p.describe()
}

func allowed(p *box) int {
	if p == nil {
		return p.v //rapidlint:allow nilness — fixture: suppression accepted on the flagged line
	}
	return p.v
}

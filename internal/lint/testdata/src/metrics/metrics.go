// Package metrics is a structural stand-in for rapid/internal/metrics:
// the shardcommit analyzer flags any touch of a type named Collector
// in a package named metrics.
package metrics

// Collector mirrors the real collector's mixed shape: exported counter
// fields and per-packet record methods.
type Collector struct {
	Generated     int
	LostTransfers int
}

func (c *Collector) Delivered(id int)        {}
func (c *Collector) IsDelivered(id int) bool { return false }

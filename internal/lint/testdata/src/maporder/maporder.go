// Package maporder exercises the maporder analyzer: map-range bodies
// that accumulate floats, leak append order, or perform I/O are
// positives; per-key writes, integer counting, and slices sorted
// afterwards (directly, through an alias, or through a range value)
// are negatives.
package maporder

import (
	"fmt"
	"sort"
	"strings"
)

func floatSum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `float accumulation into "total"`
	}
	return total
}

func floatSumPlain(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want `float accumulation into "total"`
	}
	return total
}

func intCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // integers commute: no diagnostic
	}
	return n
}

func perKey(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] += v * 2 // per-key write: each key visited once
	}
	return out
}

func escaping(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `"keys" is appended to in map iteration order`
	}
	return keys
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedAlias(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	out := vals
	sort.Ints(out)
	return out
}

func sortedBuckets(m map[int]int) [][]int {
	var buckets [][]int
	for k, v := range m {
		buckets = append(buckets, []int{k, v})
	}
	// One-level derivation: sorting through the range value clears the
	// diagnostic (the dagdelay bucket-mirror idiom).
	for _, b := range buckets {
		sort.Ints(b)
	}
	return buckets
}

func printing(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt\.Println inside a map-range body`
	}
}

func writing(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `WriteString on an io\.Writer inside a map-range body`
	}
	return b.String()
}

func allowed(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v //rapidlint:allow maporder — fixture: tolerance-checked aggregate, order error below epsilon
	}
	return total
}

// Package shadow exercises the lite shadow analyzer: an inner
// redeclaration is a positive only when the shadowed outer variable
// is used again after the inner scope closes.
package shadow

func setup() error { return nil }
func tear() error  { return nil }

func usedAfter(vals []int) int {
	x := 1
	if len(vals) > 0 {
		x := vals[0] // want `declaration of "x" shadows declaration`
		_ = x
	}
	return x
}

func notUsedAfter(vals []int) {
	x := 0
	_ = x
	for _, v := range vals {
		x := v * 2
		_ = x
	}
}

func ifErrIdiom() error {
	err := setup()
	if err != nil {
		return err
	}
	if err := tear(); err != nil { // outer err never read again: no diagnostic
		return err
	}
	return nil
}

func deliberate(vals []int) int {
	best := 0
	for _, v := range vals {
		best := v //rapidlint:allow shadow — fixture: deliberate rebinding kept for the suppression test
		_ = best
	}
	return best
}

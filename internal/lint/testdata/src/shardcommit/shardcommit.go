// Package shardcommit exercises the shardcommit analyzer against
// structural stand-ins for rapid's sim and metrics packages (the
// analyzer matches by package name, so these fixtures walk the same
// paths as the real types).
package shardcommit

import (
	"metrics"
	"sim"
)

type net struct {
	c *metrics.Collector
}

func (n *net) scratch() {}

type badEvent struct {
	n  *net
	at float64
}

func (e *badEvent) ShardKeys() (int64, int64) { return 0, 1 }

func (e *badEvent) ExecuteShard(eng *sim.Engine) {
	e.n.c.Delivered(7)          // want `\(badEvent\) ExecuteShard touches metrics\.Collector \(\.Delivered\)`
	e.n.c.Generated++           // want `touches metrics\.Collector \(\.Generated\)`
	eng.ScheduleFunc(e.at, nil) // want `uses sim\.Engine\.ScheduleFunc inside the wave phase`
	_ = eng.Now()               // want `uses sim\.Engine\.Now inside the wave phase`
	_ = eng.Rand("xfer")        // want `uses sim\.Engine\.Rand inside the wave phase`
	e.helper()
}

func (e *badEvent) helper() {
	if e.n.c.IsDelivered(7) { // want `ExecuteShard → helper touches metrics\.Collector \(\.IsDelivered\)`
		return
	}
}

func (e *badEvent) CommitShard(eng *sim.Engine) {
	e.n.c.Delivered(7) // commit phase: collector effects belong here
	eng.ScheduleFunc(e.at+1, nil)
}

type okEvent struct{ n *net }

func (e *okEvent) ShardKeys() (int64, int64)    { return 2, 2 }
func (e *okEvent) ExecuteShard(eng *sim.Engine) { e.n.scratch() }
func (e *okEvent) CommitShard(eng *sim.Engine)  { e.n.c.Generated++ }

type allowEvent struct{ n *net }

func (e *allowEvent) ShardKeys() (int64, int64) { return 3, 3 }

func (e *allowEvent) ExecuteShard(eng *sim.Engine) {
	//rapidlint:allow shardcommit — fixture: per-packet record read ordered by the shard conflict rule
	_ = e.n.c.IsDelivered(9)
}

func (e *allowEvent) CommitShard(eng *sim.Engine) {}

// Package nondet exercises the nondeterminism analyzer: wall-clock
// reads and global math/rand draws are positives, explicit seeded
// streams and time.Time value methods are negatives.
package nondet

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func globalDraws() {
	_ = rand.Intn(10)                  // want `rand\.Intn draws from the global math/rand source`
	_ = rand.Float64()                 // want `rand\.Float64 draws from the global math/rand source`
	rand.Shuffle(2, func(i, j int) {}) // want `rand\.Shuffle draws from the global math/rand source`
	_ = randv2.IntN(10)                // want `rand\.IntN draws from the global math/rand/v2 source`
}

func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // constructors are the sanctioned path
	r.Shuffle(2, func(i, j int) {})
	return r.Intn(10)
}

func derived(t time.Time) time.Time {
	return t.Add(time.Second).Truncate(time.Minute) // methods on values are fine
}

func allowedTrailing() time.Time {
	return time.Now() //rapidlint:allow nondeterminism — fixture: trailing-comment suppression
}

func allowedAbove() time.Time {
	//rapidlint:allow nondeterminism — fixture: suppression from the line above
	return time.Now()
}

func wrongName() time.Time {
	return time.Now() //rapidlint:allow maporder x // want `time\.Now reads the wall clock`
}

func badAllow() time.Time {
	return time.Now() //rapidlint:allow clockcheck oops // want `not a rapidlint analyzer` `time\.Now reads the wall clock`
}

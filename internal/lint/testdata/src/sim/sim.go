// Package sim is a structural stand-in for rapid/internal/sim: the
// contract analyzers match by package name and type name, so this
// fixture exercises exactly the paths the real engine types do.
package sim

// Engine mirrors the members the shardcommit analyzer treats as
// forbidden inside the wave phase.
type Engine struct {
	now float64
}

func (e *Engine) Now() float64                             { return e.now }
func (e *Engine) Schedule(at float64, ev any)              {}
func (e *Engine) ScheduleFunc(at float64, f func(*Engine)) {}
func (e *Engine) Rand(stream string) uint64                { return 0 }
func (e *Engine) Step() bool                               { return false }

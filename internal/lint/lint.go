// Package lint holds rapidlint, the project's static-analysis suite:
// four analyzers that enforce the social contracts the simulator's
// correctness rests on but the compiler cannot see —
//
//   - nondeterminism: no wall-clock reads or global math/rand draws in
//     simulation paths; randomness flows only through explicit seeded
//     *rand.Rand values (sim.Engine.Rand, counter-based splitmix64
//     streams).
//   - maporder: no float accumulation, escaping unsorted appends, or
//     I/O driven by Go's randomized map iteration order — the bug
//     class the sorted row-mirror merge of DESIGN.md §11 exists to
//     kill.
//   - shardcommit: ExecuteShard bodies (and everything they reach
//     inside the package) stay off metrics.Collector, off the engine's
//     scheduling API, clock, and RNG — those belong to CommitShard /
//     OnCollect, per the two-phase contract of DESIGN.md §12.
//   - sessionconfined: routers carrying the SessionConfined marker hold
//     no *rand.Rand fields and reference no package-level mutable
//     state, so they really are safe inside conflict-free waves.
//
// plus two general-purpose passes (nilness, shadow) bundled into the
// cmd/rapidlint multichecker. The latter are deliberately "lite",
// offline reimplementations of the core checks of the standard
// x/tools passes of the same names (the build environment has no
// module proxy, so the real ones cannot be vendored): nilness flags
// dereferences inside `if x == nil` bodies, shadow flags inner
// redeclarations whose shadowed variable is used again after the
// inner scope closes.
//
// Any diagnostic can be suppressed for one intentional site with a
// comment on the same line or the line above:
//
//	//rapidlint:allow <analyzer> — <reason>
//
// The analyzer name and a non-empty reason are mandatory; malformed
// allow comments are themselves diagnostics (reported by the
// nondeterminism pass so the suite emits them exactly once).
package lint

import "rapid/internal/lint/analysis"

// All returns the full rapidlint suite in the order cmd/rapidlint
// registers it: the four project-contract analyzers first, then the
// bundled general-purpose passes.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Nondeterminism,
		MapOrder,
		ShardCommit,
		SessionConfined,
		Nilness,
		Shadow,
	}
}

// analyzerNames is the set of analyzer names a //rapidlint:allow
// comment may reference. It is a literal rather than derived from
// All() because every analyzer's Run closure references it through
// newSuppressor, which would otherwise be an initialization cycle;
// TestAllNames locks the two in sync.
var analyzerNames = map[string]bool{
	"nondeterminism":  true,
	"maporder":        true,
	"shardcommit":     true,
	"sessionconfined": true,
	"nilness":         true,
	"shadow":          true,
}

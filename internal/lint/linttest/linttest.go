// Package linttest is an offline analogue of
// golang.org/x/tools/go/analysis/analysistest, sized for rapidlint's
// needs: it loads a fixture package from testdata/src/<name>, runs one
// analyzer over it, and checks the produced diagnostics against
// expectations written as comments in the fixture source:
//
//	total += v // want `float accumulation into "total"`
//
// The string after "want" is a regular expression (quoted or
// backquoted; several may follow each other) that must match a
// diagnostic reported on that line; diagnostics with no matching
// expectation, and expectations with no matching diagnostic, fail the
// test.
//
// Fixture imports resolve GOPATH-style: a path with a directory under
// testdata/src is loaded from there (so fixtures can model the sim /
// metrics package shapes without importing the real ones), anything
// else is type-checked from GOROOT source via go/importer's "source"
// importer — which is what lets fixtures exercise the real math/rand
// and time packages with no compiled export data on disk.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"rapid/internal/lint/analysis"
)

// shared across tests: the source importer re-type-checks each stdlib
// package once per instance, so one instance (and one FileSet, for
// coherent positions) serves the whole test binary.
var (
	mu       sync.Mutex
	fset     = token.NewFileSet()
	srcImp   = importer.ForCompiler(fset, "source", nil)
	fixtures = map[string]*loaded{}
)

type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// fixtureImporter resolves fixture-local packages before falling back
// to GOROOT source.
type fixtureImporter struct{ base string }

func (im fixtureImporter) Import(path string) (*types.Package, error) {
	dir := filepath.Join(im.base, path)
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		l, err := load(im.base, path)
		if err != nil {
			return nil, err
		}
		return l.pkg, nil
	}
	return srcImp.Import(path)
}

// load parses and type-checks testdata/src/<path> (cached).
func load(base, path string) (*loaded, error) {
	if l, ok := fixtures[path]; ok {
		return l, nil
	}
	dir := filepath.Join(base, path)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, perr := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if perr != nil {
			return nil, perr
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tc := &types.Config{Importer: fixtureImporter{base: base}}
	pkg, err := tc.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %v", path, err)
	}
	l := &loaded{pkg: pkg, files: files, info: info}
	fixtures[path] = l
	return l, nil
}

// wantRE extracts the expectation regexps of a comment: everything
// after the marker "want", as a sequence of quoted or backquoted
// strings.
var wantRE = regexp.MustCompile("(?:\"(?:[^\"\\\\]|\\\\.)*\")|(?:`[^`]*`)")

// expectations returns file:line → list of unmatched regexps.
func expectations(t *testing.T, files []*ast.File) map[string][]*regexp.Regexp {
	t.Helper()
	exp := make(map[string][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				for _, m := range wantRE.FindAllString(c.Text[idx+len("want"):], -1) {
					var s string
					if m[0] == '`' {
						s = m[1 : len(m)-1]
					} else {
						var err error
						s, err = strconv.Unquote(m)
						if err != nil {
							t.Fatalf("%s: bad want string %s: %v", key, m, err)
						}
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, s, err)
					}
					exp[key] = append(exp[key], re)
				}
			}
		}
	}
	return exp
}

// Run loads each fixture package and checks the analyzer's
// diagnostics against the package's want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	mu.Lock()
	defer mu.Unlock()
	for _, pkg := range pkgs {
		l, err := load(filepath.Join("testdata", "src"), pkg)
		if err != nil {
			t.Fatalf("%s: %v", pkg, err)
		}

		type diag struct {
			key string
			msg string
		}
		var got []diag
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     l.files,
			Pkg:       l.pkg,
			TypesInfo: l.info,
			Report: func(d analysis.Diagnostic) {
				pos := fset.Position(d.Pos)
				got = append(got, diag{
					key: fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line),
					msg: d.Message,
				})
			},
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("%s: analyzer %s: %v", pkg, a.Name, err)
		}

		exp := expectations(t, l.files)
		for _, d := range got {
			res := exp[d.key]
			matched := -1
			for i, re := range res {
				if re.MatchString(d.msg) {
					matched = i
					break
				}
			}
			if matched < 0 {
				t.Errorf("%s: %s: unexpected diagnostic: %s", pkg, d.key, d.msg)
				continue
			}
			exp[d.key] = append(res[:matched], res[matched+1:]...)
		}
		for key, res := range exp {
			for _, re := range res {
				t.Errorf("%s: %s: expected diagnostic matching %q, got none", pkg, key, re)
			}
		}
	}
}

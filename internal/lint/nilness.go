package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"rapid/internal/lint/analysis"
)

// Nilness is a lite, offline stand-in for the standard x/tools
// nilness pass (the build environment has no module proxy). It covers
// the highest-signal subset: inside the body of "if x == nil", any
// use of x that must dereference it — pointer field access, pointer
// or slice indexing, explicit *x, calling a nil function value —
// panics on that path. The check bails out conservatively if the body
// reassigns x anywhere, and never follows control flow out of the if
// body, so it has no false positives from merging branches.
var Nilness = &analysis.Analyzer{
	Name: "nilness",
	Doc: `report dereferences of values known to be nil

Lite offline reimplementation of the core x/tools nilness check:
flags pointer field accesses, indexing, explicit dereferences and
calls of a variable inside the body of its own "if x == nil" guard.`,
	Run: runNilness,
}

func runNilness(pass *analysis.Pass) (any, error) {
	sup := newSuppressor(pass, false)
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			obj := nilComparedVar(pass.TypesInfo, ifs.Cond)
			if obj == nil {
				return true
			}
			if reassigns(pass.TypesInfo, ifs.Body, obj) {
				return true
			}
			reportDerefs(pass, sup, ifs.Body, obj)
			return true
		})
	}
	return nil, nil
}

// nilComparedVar returns the variable v of a "v == nil" (or
// "nil == v") condition, or nil.
func nilComparedVar(info *types.Info, cond ast.Expr) *types.Var {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.EQL {
		return nil
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNilIdent(info, x) {
		x, y = y, x
	}
	if !isNilIdent(info, y) {
		return nil
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// reassigns reports whether body assigns to obj (incl. &obj escapes).
func reassigns(info *types.Info, body *ast.BlockStmt, obj *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && info.Uses[id] == obj {
					found = true
				}
			}
		case *ast.UnaryExpr:
			if s.Op == token.AND {
				if id, ok := ast.Unparen(s.X).(*ast.Ident); ok && info.Uses[id] == obj {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// reportDerefs flags uses of obj in body that dereference it.
func reportDerefs(pass *analysis.Pass, sup *suppressor, body *ast.BlockStmt, obj *types.Var) {
	info := pass.TypesInfo
	isObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && info.Uses[id] == obj
	}
	_, isPtr := obj.Type().Underlying().(*types.Pointer)
	_, isSlice := obj.Type().Underlying().(*types.Slice)
	_, isFunc := obj.Type().Underlying().(*types.Signature)

	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.StarExpr:
			if isObj(e.X) {
				sup.reportf(e.Pos(), "nil dereference: %q is nil on this path", obj.Name())
			}
		case *ast.SelectorExpr:
			if !isPtr || !isObj(e.X) {
				return true
			}
			// Field access through a nil pointer always panics;
			// method calls may have nil-tolerant receivers.
			if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
				sup.reportf(e.Pos(), "nil dereference: field access on %q, which is nil on this path", obj.Name())
			}
		case *ast.IndexExpr:
			if (isPtr || isSlice) && isObj(e.X) {
				sup.reportf(e.Pos(), "nil dereference: indexing %q, which is nil on this path", obj.Name())
			}
		case *ast.CallExpr:
			if isFunc && isObj(e.Fun) {
				sup.reportf(e.Pos(), "nil dereference: calling %q, which is nil on this path", obj.Name())
			}
		}
		return true
	})
}

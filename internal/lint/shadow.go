package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"rapid/internal/lint/analysis"
)

// Shadow is a lite, offline stand-in for the standard x/tools shadow
// pass (the build environment has no module proxy). It applies the
// same core heuristic the upstream pass uses to separate deliberate
// from dangerous shadowing: an inner declaration of a name already
// bound in an enclosing function scope is reported only when the
// *outer* variable is referenced again after the inner scope closes —
// the situation where a reader can plausibly believe the later uses
// saw the inner assignments.
var Shadow = &analysis.Analyzer{
	Name: "shadow",
	Doc: `report shadowed variables whose outer binding is used afterwards

Lite offline reimplementation of the core x/tools shadow check: an
inner := redeclaration is flagged when the shadowed outer variable is
referenced again after the inner scope ends.`,
	Run: runShadow,
}

func runShadow(pass *analysis.Pass) (any, error) {
	sup := newSuppressor(pass, false)
	info := pass.TypesInfo

	// usesOf collects every use position per object once, so the
	// "outer used later" test is O(uses) overall.
	usesOf := make(map[types.Object][]*ast.Ident)
	for id, obj := range info.Uses {
		if v, ok := obj.(*types.Var); ok {
			usesOf[v] = append(usesOf[v], id) //rapidlint:allow maporder — per-object buckets consulted for membership-after-position only; bucket order is never observed
		}
	}

	type finding struct {
		inner *ast.Ident
		outer *types.Var
	}
	var findings []finding

	for id, obj := range info.Defs {
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || v.Name() == "_" {
			continue
		}
		inner := v.Parent()
		if inner == nil || inner == pass.Pkg.Scope() {
			continue
		}
		// Search enclosing scopes up to (but not including) package
		// scope for an earlier binding of the same name.
		var outer *types.Var
		for s := inner.Parent(); s != nil && s != pass.Pkg.Scope() && s != types.Universe; s = s.Parent() {
			if o, ok := s.Lookup(v.Name()).(*types.Var); ok && o != v && o.Pos() < v.Pos() && !o.IsField() {
				outer = o
				break
			}
		}
		if outer == nil {
			continue
		}
		// Risky only if the outer binding is read again after the
		// inner scope has ended.
		usedAfter := false
		for _, use := range usesOf[outer] {
			if use.Pos() > inner.End() {
				usedAfter = true
				break
			}
		}
		if usedAfter {
			findings = append(findings, finding{id, outer})
		}
	}

	sort.Slice(findings, func(i, j int) bool { return findings[i].inner.Pos() < findings[j].inner.Pos() })
	for _, f := range findings {
		if file := fileOf(pass, f.inner.Pos()); file != nil && isTestFile(pass, file) {
			continue
		}
		sup.reportf(f.inner.Pos(), "declaration of %q shadows declaration at %s, and the shadowed variable is used after this scope ends", f.inner.Name, pass.Fset.Position(f.outer.Pos()))
	}
	return nil, nil
}

// fileOf returns the *ast.File of the pass containing pos.
func fileOf(pass *analysis.Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

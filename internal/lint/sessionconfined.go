package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"rapid/internal/lint/analysis"
)

// SessionConfined verifies the promise a router makes by implementing
// the routing.SessionConfined marker: its session-driven work reads
// and writes only its own node's state, the peer it is handed, and
// immutable run-wide state — so the parallel engine may run its
// sessions inside conflict-free waves. Two things falsify that
// promise statically and are reported:
//
//  1. a *rand.Rand field anywhere in the router's struct (random
//     streams come from the engine's shared stream map, and drawing
//     from one inside concurrent waves both races and reorders the
//     stream);
//  2. any reference, from a router method or a same-package function
//     it reaches, to a package-level variable (shared mutable state).
//     Error sentinels (error-typed vars) are exempt by convention;
//     genuinely safe globals — a sync.Pool of value-agnostic scratch,
//     a read-only table — carry a //rapidlint:allow sessionconfined
//     annotation stating why.
//
// Detection of the marker is structural (a niladic method named
// SessionConfined), so fixture packages need no import of
// rapid/internal/routing.
var SessionConfined = &analysis.Analyzer{
	Name: "sessionconfined",
	Doc: `verify SessionConfined routers hold no shared mutable state

For every type carrying the SessionConfined marker method, reports
*rand.Rand struct fields and references to package-level variables
from any method or same-package helper it reaches.`,
	Run: runSessionConfined,
}

func runSessionConfined(pass *analysis.Pass) (any, error) {
	sup := newSuppressor(pass, false)
	idx := indexFuncs(pass)

	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		named := namedType(obj.Type())
		if named == nil || named.Obj() != obj {
			continue
		}
		if !isMarkerMethod(named) {
			continue
		}
		checkRandFields(pass, sup, name, named, map[*types.Named]bool{})
		checkMethodReach(pass, sup, idx, name, named)
	}
	return nil, nil
}

// isMarkerMethod reports whether *T's method set has the niladic
// SessionConfined marker.
func isMarkerMethod(named *types.Named) bool {
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		m := ms.At(i).Obj()
		if m.Name() != "SessionConfined" {
			continue
		}
		sig, ok := m.Type().(*types.Signature)
		return ok && sig.Params().Len() == 0 && sig.Results().Len() == 0
	}
	return false
}

// checkRandFields reports *rand.Rand fields of the router struct,
// following embedded same-package structs.
func checkRandFields(pass *analysis.Pass, sup *suppressor, typeName string, named *types.Named, seen map[*types.Named]bool) {
	if seen[named] {
		return
	}
	seen[named] = true
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if isPkgPathType(f.Type(), "math/rand", "Rand") || isPkgPathType(f.Type(), "math/rand/v2", "Rand") {
			pos := f.Pos()
			sup.reportf(pos, "SessionConfined router %s holds a *rand.Rand field %q: engine random streams are shared mutable state — derive draws from per-call counters or drop the marker", typeName, f.Name())
		}
		if inner := namedType(f.Type()); inner != nil && inner.Obj().Pkg() == named.Obj().Pkg() {
			checkRandFields(pass, sup, typeName, inner, seen)
		}
	}
}

// checkMethodReach walks every declared method of the router and the
// same-package functions it reaches, reporting uses of package-level
// variables. Methods are visited in source order and each use site is
// reported once, so diagnostics are deterministic even when several
// methods reach the same helper.
func checkMethodReach(pass *analysis.Pass, sup *suppressor, idx funcIndex, typeName string, named *types.Named) {
	var methods []*ast.FuncDecl
	for fn, decl := range idx {
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil || namedType(sig.Recv().Type()) != named {
			continue
		}
		methods = append(methods, decl)
	}
	sort.Slice(methods, func(i, j int) bool { return methods[i].Pos() < methods[j].Pos() })

	reported := make(map[token.Pos]bool)
	for _, decl := range methods {
		walkReachable(pass, idx, decl, func(chain string, n ast.Node) {
			id, ok := n.(*ast.Ident)
			if !ok || reported[id.Pos()] {
				return
			}
			v, ok := pass.TypesInfo.Uses[id].(*types.Var)
			if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
				return
			}
			// Error sentinels are write-once by convention.
			if types.Identical(v.Type(), types.Universe.Lookup("error").Type()) {
				return
			}
			reported[id.Pos()] = true
			sup.reportf(id.Pos(), "SessionConfined router %s references package-level variable %q (via %s): shared mutable state is off-limits inside conflict-free waves", typeName, v.Name(), chain)
		})
	}
}

// Package analysis is a minimal, dependency-free subset of
// golang.org/x/tools/go/analysis: just enough surface (Analyzer, Pass,
// Diagnostic) for rapidlint's project-specific passes to be written in
// the standard shape. The container building this repository has no
// module proxy access, so the real x/tools module cannot be vendored;
// the API here is field-for-field compatible with the upstream types
// it mirrors, so if x/tools ever lands in go.mod the analyzers port by
// changing one import line.
//
// Deliberately omitted relative to upstream: facts (no rapidlint pass
// is cross-package), Requires/ResultOf (no pass depends on another),
// SuggestedFixes, and flags. cmd/rapidlint supplies the unitchecker
// half of the protocol so `go vet -vettool` drives these analyzers
// exactly like upstream ones.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static-analysis pass: a name (used in
// diagnostics and //rapidlint:allow suppression comments), user-facing
// documentation, and the Run function.
type Analyzer struct {
	// Name identifies the analyzer. It is the token a
	// `//rapidlint:allow <name>` comment must carry to suppress one of
	// this analyzer's diagnostics.
	Name string

	// Doc is the analyzer's documentation: a one-line summary,
	// a blank line, then detail.
	Doc string

	// Run applies the analyzer to a single type-checked package.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass provides one analyzer run with a single type-checked package
// and the sink for its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report emits one finished diagnostic. The driver wraps this to
	// apply //rapidlint:allow suppression before recording.
	Report func(Diagnostic)
}

// Reportf emits a diagnostic at pos with a Sprintf-formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, anchored to a position in the package.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

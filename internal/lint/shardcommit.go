package lint

import (
	"go/ast"

	"rapid/internal/lint/analysis"
)

// ShardCommit enforces the two-phase ShardEvent contract of the
// parallel event engine (DESIGN.md §12): ExecuteShard runs inside a
// concurrent conflict-free wave, so everything statically reachable
// from it inside the package must stay off globally ordered state —
// metrics.Collector, the engine's scheduling API, the engine clock,
// and the engine-owned random streams. Those belong exclusively to
// CommitShard (serial, exact pop order) and OnCollect (engine
// goroutine, collection time).
//
// Detection is structural: any type whose method set carries
// ExecuteShard, CommitShard and ShardKeys is treated as a ShardEvent
// implementation, so the check needs no import of rapid/internal/sim
// and applies equally to fixture packages. The walk follows direct
// calls to same-package functions and methods; calls through function
// values, interfaces, or into other packages are not expanded (a
// deliberate cross-package escape warrants a //rapidlint:allow with
// its safety argument — as the per-packet delivery-record reads in
// internal/routing/session.go do).
var ShardCommit = &analysis.Analyzer{
	Name: "shardcommit",
	Doc: `enforce the ExecuteShard/CommitShard two-phase contract

Walks the same-package call graph of every ExecuteShard method and
reports reachable touches of metrics.Collector, sim.Engine scheduling
methods (Schedule*, ScheduleSpan), the engine clock (Now), and the
engine-owned RNG (Rand). Only CommitShard and OnCollect may touch
globally ordered state.`,
	Run: runShardCommit,
}

// forbiddenEngine lists sim.Engine members whose use inside a wave
// breaks the contract, with the reason used in the diagnostic.
var forbiddenEngine = map[string]string{
	"Schedule":         "schedules events (commit-phase only)",
	"ScheduleBand":     "schedules events (commit-phase only)",
	"ScheduleFunc":     "schedules events (commit-phase only)",
	"ScheduleBandFunc": "schedules events (commit-phase only)",
	"ScheduleSpan":     "schedules events (commit-phase only)",
	"Now":              "reads the engine clock, which may already have advanced past the event's instant — carry the timestamp in the event",
	"Rand":             "draws from an engine-owned random stream, which is shared mutable state across the wave",
	"Run":              "re-enters the event loop",
	"RunUntil":         "re-enters the event loop",
	"Step":             "re-enters the event loop",
	"SetWorkers":       "mutates engine configuration",
	"Executed":         "touches engine bookkeeping",
	"AfterEvent":       "touches engine bookkeeping",
}

func runShardCommit(pass *analysis.Pass) (any, error) {
	sup := newSuppressor(pass, false)
	idx := indexFuncs(pass)

	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		named := namedType(obj.Type())
		if named == nil || named.Obj() != obj {
			continue
		}
		if !hasMethod(named, "ExecuteShard") || !hasMethod(named, "CommitShard") || !hasMethod(named, "ShardKeys") {
			continue
		}
		exec := methodDecl(idx, named, "ExecuteShard")
		if exec == nil {
			continue // method promoted from an embedded foreign type
		}
		checkExecuteShard(pass, sup, idx, name, exec)
	}
	return nil, nil
}

func checkExecuteShard(pass *analysis.Pass, sup *suppressor, idx funcIndex, typeName string, exec *ast.FuncDecl) {
	walkReachable(pass, idx, exec, func(chain string, n ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return
		}
		base := pass.TypesInfo.TypeOf(sel.X)
		switch {
		case isType(base, "metrics", "Collector"):
			sup.reportf(sel.Pos(), "(%s) %s touches metrics.Collector (.%s): globally ordered collector effects belong in CommitShard or OnCollect", typeName, chain, sel.Sel.Name)
		case isType(base, "sim", "Engine"):
			if why, bad := forbiddenEngine[sel.Sel.Name]; bad {
				sup.reportf(sel.Pos(), "(%s) %s uses sim.Engine.%s inside the wave phase: %s", typeName, chain, sel.Sel.Name, why)
			}
		}
	})
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"rapid/internal/lint/analysis"
)

// MapOrder flags `for range` loops over maps whose bodies are
// sensitive to Go's randomized iteration order.
//
// Three body shapes are order-sensitive and flagged:
//
//  1. accumulating floats declared outside the loop (FP addition is
//     not associative, so the sum depends on visit order — the exact
//     bug class the sorted row-mirror table merge of DESIGN.md §11
//     was built to kill);
//  2. appending to a slice declared outside the loop with no
//     subsequent sort.*/slices.Sort* call on that slice later in the
//     same function (the slice escapes carrying a random order);
//  3. performing I/O (fmt/log printing, io.Writer writes), which
//     emits output in a random order.
//
// Per-key writes (m2[k] = …, totals[k] += v where k is the range key)
// are order-independent and never flagged, and neither is integer
// counting. The canonical fix — collect keys, sort, range over the
// sorted slice — changes the range expression to a slice and clears
// the diagnostic naturally.
var MapOrder = &analysis.Analyzer{
	Name: "maporder",
	Doc: `flag map-range loops whose bodies depend on iteration order

Reports float accumulation across iterations, appends to escaping
slices that are never sorted afterwards, and I/O performed inside
"for range m" bodies. All three make output depend on Go's randomized
map iteration order.`,
	Run: runMapOrder,
}

func runMapOrder(pass *analysis.Pass) (any, error) {
	sup := newSuppressor(pass, false)
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		// Visit every function (decl or literal) so "later in the same
		// function" has a well-defined body to scan for sorts.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkMapRanges(pass, sup, body)
			}
			return true
		})
	}
	return nil, nil
}

// checkMapRanges finds map-range statements directly inside fnBody
// (including nested blocks, but not nested function literals — those
// get their own visit) and applies the three order-sensitivity rules.
func checkMapRanges(pass *analysis.Pass, sup *suppressor, fnBody *ast.BlockStmt) {
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != fnBody.Pos() {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, sup, fnBody, rs)
		return true
	})
}

func checkMapRangeBody(pass *analysis.Pass, sup *suppressor, fnBody *ast.BlockStmt, rs *ast.RangeStmt) {
	info := pass.TypesInfo
	keyObj := rangeVarObj(info, rs.Key)
	valObj := rangeVarObj(info, rs.Value)

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, sup, fnBody, rs, stmt, keyObj, valObj)
		case *ast.CallExpr:
			checkIO(pass, sup, stmt)
		}
		return true
	})
}

// rangeVarObj resolves the object of a range variable expression
// (key or value), handling both := definitions and plain assignment.
func rangeVarObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// declaredOutside reports whether the expression's root identifier
// resolves to a variable declared outside the range statement (so
// writes to it survive the loop).
func declaredOutside(info *types.Info, rs *ast.RangeStmt, e ast.Expr) (types.Object, bool) {
	id := rootIdent(e)
	if id == nil {
		return nil, false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return nil, false
	}
	if v.Pos() >= rs.Pos() && v.Pos() < rs.End() {
		return nil, false // loop-local: resets every iteration
	}
	return v, true
}

// usesObj reports whether expression e references obj anywhere.
func usesObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	if obj == nil || e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// isFloat reports whether t's underlying basic kind carries floating
// point (floats and complex values share non-associativity).
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

func checkAssign(pass *analysis.Pass, sup *suppressor, fnBody *ast.BlockStmt, rs *ast.RangeStmt, as *ast.AssignStmt, keyObj, valObj types.Object) {
	info := pass.TypesInfo
	for i, lhs := range as.Lhs {
		// Per-key writes are order-independent: each map key is
		// visited exactly once, so m2[k] = v / totals[k] += v commute
		// across iterations.
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if usesObj(info, ix.Index, keyObj) || usesObj(info, ix.Index, valObj) {
				continue
			}
		}

		obj, outside := declaredOutside(info, rs, lhs)
		if !outside {
			continue
		}

		// Rule 1: float accumulation (x += v, x -= v, x *= v, x /= v,
		// or x = x ⊕ …).
		if isFloat(info.TypeOf(lhs)) && isAccumulation(info, as, i, lhs) {
			sup.reportf(as.Pos(), "float accumulation into %q depends on map iteration order: iterate keys in sorted order (FP addition is not associative)", obj.Name())
			continue
		}

		// Rule 2: append to an outer slice with no later sort.
		if i < len(as.Rhs) || len(as.Rhs) == 1 {
			rhs := as.Rhs[min(i, len(as.Rhs)-1)]
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltinAppend(info, call) {
				if !sortedAfter(info, fnBody, rs, obj) {
					sup.reportf(as.Pos(), "%q is appended to in map iteration order and never sorted afterwards: sort it (sort.*/slices.Sort*) or iterate keys in sorted order", obj.Name())
				}
			}
		}
	}
}

// isAccumulation reports whether the assignment folds the previous
// value of lhs into its new value: an op-assign, or x = x ⊕ expr.
func isAccumulation(info *types.Info, as *ast.AssignStmt, i int, lhs ast.Expr) bool {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	case token.ASSIGN:
		obj, _ := info.Uses[rootIdentOrNil(lhs)].(*types.Var)
		if obj == nil || i >= len(as.Rhs) {
			return false
		}
		return usesObj(info, as.Rhs[i], obj)
	}
	return false
}

func rootIdentOrNil(e ast.Expr) *ast.Ident {
	if id := rootIdent(e); id != nil {
		return id
	}
	return &ast.Ident{}
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether, after the range statement, the
// enclosing function sorts the data held by obj: a call to any sort.*
// function or a slices.Sort* function whose argument is obj or a
// variable derived from it. Derivation is tracked one pattern deep —
// an alias (reps := m[id]) or a range value (for _, reps := range m)
// — which covers the repository's idiomatic "collect buckets, sort
// each bucket" fix shape.
func sortedAfter(info *types.Info, fnBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	derived := map[types.Object]bool{obj: true}
	inDerived := func(e ast.Expr) bool {
		id := rootIdent(e)
		if id == nil {
			return false
		}
		o := info.Uses[id]
		if o == nil {
			o = info.Defs[id]
		}
		return o != nil && derived[o]
	}
	mark := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		if o := info.Defs[id]; o != nil {
			derived[o] = true
		} else if o := info.Uses[id]; o != nil {
			derived[o] = true
		}
	}

	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		if n == nil || n.Pos() < rs.End() {
			return true
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i := range s.Lhs {
				if inDerived(s.Rhs[i]) {
					mark(s.Lhs[i])
				}
			}
		case *ast.RangeStmt:
			if inDerived(s.X) {
				if s.Key != nil {
					mark(s.Key)
				}
				if s.Value != nil {
					mark(s.Value)
				}
			}
		case *ast.CallExpr:
			fn := callee(info, s)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			isSort := fn.Pkg().Path() == "sort" ||
				(fn.Pkg().Path() == "slices" && strings.HasPrefix(fn.Name(), "Sort"))
			if !isSort {
				return true
			}
			for _, arg := range s.Args {
				if inDerived(arg) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// ioFuncs lists package-level output functions whose call inside a
// map-range body emits in random order. Sprint* variants are pure and
// absent deliberately.
var ioFuncs = map[string]map[string]bool{
	"fmt": {"Print": true, "Printf": true, "Println": true,
		"Fprint": true, "Fprintf": true, "Fprintln": true},
	"log": {"Print": true, "Printf": true, "Println": true,
		"Fatal": true, "Fatalf": true, "Fatalln": true,
		"Panic": true, "Panicf": true, "Panicln": true},
	"io": {"WriteString": true, "Copy": true, "CopyN": true},
	"os": {"WriteFile": true},
}

// writerIface is io.Writer, constructed by hand so the check needs no
// import of io in the analyzed package.
var writerIface = func() *types.Interface {
	errType := types.Universe.Lookup("error").Type()
	sig := types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte]))),
		types.NewTuple(types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
			types.NewVar(token.NoPos, nil, "err", errType)),
		false)
	fn := types.NewFunc(token.NoPos, nil, "Write", sig)
	return types.NewInterfaceType([]*types.Func{fn}, nil).Complete()
}()

func checkIO(pass *analysis.Pass, sup *suppressor, call *ast.CallExpr) {
	fn := callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	if sig.Recv() == nil {
		if ioFuncs[fn.Pkg().Path()][fn.Name()] {
			sup.reportf(call.Pos(), "%s.%s inside a map-range body emits output in random iteration order: iterate keys in sorted order", fn.Pkg().Name(), fn.Name())
		}
		return
	}
	// Write*/Print* methods on anything satisfying io.Writer
	// (*os.File, *bufio.Writer, *strings.Builder, …).
	name := fn.Name()
	if !strings.HasPrefix(name, "Write") && !strings.HasPrefix(name, "Print") {
		return
	}
	if types.Implements(sig.Recv().Type(), writerIface) ||
		types.Implements(types.NewPointer(sig.Recv().Type()), writerIface) {
		sup.reportf(call.Pos(), "%s on an io.Writer inside a map-range body emits output in random iteration order: iterate keys in sorted order", name)
	}
}

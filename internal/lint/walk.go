package lint

import (
	"go/ast"
	"go/types"

	"rapid/internal/lint/analysis"
)

// funcIndex maps every function and method *declared in the package*
// to its AST, so contract analyzers can chase calls through
// same-package helpers. Cross-package callees have no body here —
// export data carries signatures only — which is fine: the contracts
// being enforced name specific foreign types (metrics.Collector,
// sim.Engine) whose *touch points* are visible at the call site, and
// same-package plumbing is where a violation can otherwise hide.
type funcIndex map[*types.Func]*ast.FuncDecl

func indexFuncs(pass *analysis.Pass) funcIndex {
	idx := make(funcIndex)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				idx[fn] = fd
			}
		}
	}
	return idx
}

// callee resolves the static callee of a call expression, or nil for
// calls through function values, interface methods, conversions and
// builtins — sites the walker cannot see through (the suppression
// comment covers deliberate indirection).
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// walkReachable visits every AST node of start's body and of every
// same-package function statically reachable from it, calling visit
// with the call chain ("ExecuteShard → drain → fold") that led there.
// Each function body is visited at most once.
func walkReachable(pass *analysis.Pass, idx funcIndex, start *ast.FuncDecl, visit func(chain string, n ast.Node)) {
	type item struct {
		decl  *ast.FuncDecl
		chain string
	}
	startFn, _ := pass.TypesInfo.Defs[start.Name].(*types.Func)
	visited := map[*types.Func]bool{startFn: true}
	queue := []item{{start, start.Name.Name}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		ast.Inspect(it.decl.Body, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			visit(it.chain, n)
			if call, ok := n.(*ast.CallExpr); ok {
				if fn := callee(pass.TypesInfo, call); fn != nil && !visited[fn] {
					if decl, ok := idx[fn]; ok {
						visited[fn] = true
						queue = append(queue, item{decl, it.chain + " → " + fn.Name()})
					}
				}
			}
			return true
		})
	}
}

// namedType returns the defined (possibly pointer-wrapped) type of t,
// unwrapping pointers and aliases, or nil.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isType reports whether t (through pointers/aliases) is the defined
// type pkgName.typeName. Matching is by package *name*, not import
// path, so the contract analyzers work identically on the real
// rapid/internal/... packages and on the self-contained fixture
// packages under testdata.
func isType(t types.Type, pkgName, typeName string) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Name() == pkgName && n.Obj().Name() == typeName
}

// isPkgPathType matches by full import path instead of package name,
// for stdlib types (math/rand.Rand) that fixtures import for real.
func isPkgPathType(t types.Type, pkgPath, typeName string) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == typeName
}

// hasMethod reports whether the method set of *T includes a method
// with the given name declared in T's own package.
func hasMethod(named *types.Named, name string) bool {
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}

// methodDecl finds the declared method name on type named (value or
// pointer receiver) in the index.
func methodDecl(idx funcIndex, named *types.Named, name string) *ast.FuncDecl {
	for fn, decl := range idx {
		if fn.Name() != name {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		if namedType(sig.Recv().Type()) == namedType(named) {
			return decl
		}
	}
	return nil
}

// rootIdent peels selectors and indexes off an expression and returns
// the identifier at its base, or nil (calls, literals…).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

package lint

import (
	"go/ast"
	"go/types"

	"rapid/internal/lint/analysis"
)

// Nondeterminism forbids wall-clock reads and global math/rand draws.
//
// Every figure in this repository is locked by golden SHA-256
// checksums, and replications must be bit-reproducible from their
// seed. A single time.Now or global rand.Intn in a simulation path
// silently breaks that: the run still "works", the checksums just
// stop meaning anything. Randomness must flow through an explicit
// seeded *rand.Rand (sim.Engine.Rand, rand.New(rand.NewSource(seed)))
// or the counter-based splitmix64 streams; time must come from the
// engine clock. Deliberate wall-clock sites (progress reporting in
// cmd/) carry a //rapidlint:allow nondeterminism annotation.
var Nondeterminism = &analysis.Analyzer{
	Name: "nondeterminism",
	Doc: `forbid wall-clock reads and global math/rand draws in simulation paths

Flags references to time.Now/Since/Until/Sleep/After/Tick/NewTicker/
NewTimer/AfterFunc and to the package-level draw functions of
math/rand and math/rand/v2 (rand.Intn, rand.Float64, rand.Shuffle, …),
which consume hidden global state. Methods on an explicit seeded
*rand.Rand are always allowed. This analyzer also validates
rapidlint:allow comments for the whole suite.`,
	Run: runNondeterminism,
}

// wallClock lists the time package functions that observe or depend on
// the wall clock — the Go analogue of an argless new Date().
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTicker": true, "NewTimer": true,
	"AfterFunc": true,
}

// globalRand lists the package-level draw functions of math/rand and
// math/rand/v2 that consume the hidden global source. Constructors
// (New, NewSource, NewPCG, NewZipf…) are fine: they are how the
// explicit seeded streams the codebase requires get built.
var globalRand = map[string]bool{
	// math/rand
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
	// math/rand/v2 additions
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64N": true, "Uint": true, "UintN": true, "Uint32N": true,
	"Uint64N": true,
}

func runNondeterminism(pass *analysis.Pass) (any, error) {
	sup := newSuppressor(pass, true)
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Only package-level functions: methods on *rand.Rand or
			// time.Time values are the sanctioned alternatives.
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClock[fn.Name()] {
					sup.reportf(sel.Pos(), "time.%s reads the wall clock: simulation paths must take time from the engine clock (sim.Engine.Now) or an explicit parameter", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if globalRand[fn.Name()] {
					sup.reportf(sel.Pos(), "rand.%s draws from the global %s source: use an explicit seeded *rand.Rand (sim.Engine.Rand, rand.New(rand.NewSource(seed))) or a counter-based splitmix64 stream", fn.Name(), fn.Pkg().Path())
				}
			}
			return true
		})
	}
	return nil, nil
}

package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"rapid/internal/lint/analysis"
)

// allowPrefix introduces a suppression comment:
//
//	//rapidlint:allow <analyzer> — <reason>
//
// The comment suppresses diagnostics of that analyzer on its own line
// and on the line directly below it, so it works both as a trailing
// comment and as a standalone line above the flagged statement.
const allowPrefix = "//rapidlint:allow"

// suppressor applies //rapidlint:allow comments for one analyzer over
// one pass, and (for the analyzer that owns malformed-comment
// reporting) validates the comments themselves.
type suppressor struct {
	pass *analysis.Pass
	// allowed maps file name → line → set of analyzer names allowed on
	// that line.
	allowed map[string]map[int]map[string]bool
}

// newSuppressor scans every file comment of the pass for allow
// comments. When reportMalformed is set, allow comments missing a
// known analyzer name or a reason are reported as diagnostics —
// exactly one analyzer in the suite (nondeterminism) sets it, so the
// multichecker emits each malformed comment once.
func newSuppressor(pass *analysis.Pass, reportMalformed bool) *suppressor {
	s := &suppressor{pass: pass, allowed: make(map[string]map[int]map[string]bool)}
	valid := analyzerNames
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				name := ""
				if len(fields) > 0 {
					name = fields[0]
				}
				switch {
				case !valid[name]:
					if reportMalformed {
						pass.Reportf(c.Pos(), "malformed rapidlint:allow comment: %q is not a rapidlint analyzer", name)
					}
					continue
				case len(fields) < 2:
					if reportMalformed {
						pass.Reportf(c.Pos(), "rapidlint:allow %s needs a reason: //rapidlint:allow %s — <why this site is exempt>", name, name)
					}
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				lines := s.allowed[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					s.allowed[pos.Filename] = lines
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					set := lines[line]
					if set == nil {
						set = make(map[string]bool)
						lines[line] = set
					}
					set[name] = true
				}
			}
		}
	}
	return s
}

// suppressed reports whether an allow comment covers pos for this
// suppressor's analyzer.
func (s *suppressor) suppressed(pos token.Pos) bool {
	p := s.pass.Fset.Position(pos)
	return s.allowed[p.Filename][p.Line][s.pass.Analyzer.Name]
}

// reportf emits a diagnostic unless an allow comment covers it.
func (s *suppressor) reportf(pos token.Pos, format string, args ...any) {
	if s.suppressed(pos) {
		return
	}
	s.pass.Reportf(pos, format, args...)
}

// isTestFile reports whether the file is a _test.go file. The
// rapidlint contracts govern simulation and tooling paths; tests are
// free to print in map order or read the clock — their determinism is
// guarded by the metamorphic suites, not the linter.
func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
}

// Package control implements RAPID's control channel (§4.2): the
// in-band, byte-accounted exchange of acknowledgments, buffer
// inventories, per-replica delivery-delay estimates, average
// transfer-opportunity sizes, and meeting-time tables — with delta
// encoding ("The node only sends information about packets whose
// information changed since the last exchange"). It also provides the
// instant global channel used by the hybrid-DTN experiments
// (Figs. 10–13), in which all metadata is shared through a zero-cost
// global snapshot.
package control

import (
	"cmp"
	"math"
	"slices"
	"sort"

	"rapid/internal/meet"
	"rapid/internal/packet"
	"rapid/internal/stat"
)

// Wire-size constants for metadata records, in bytes. These mirror a
// compact binary encoding: 8-byte packet IDs, 2-byte node IDs, 4-byte
// float/size fields.
const (
	AckRecordBytes     = 8  // packet id
	ReplicaRecordBytes = 14 // id + holder + delay estimate
	MeetEntryBytes     = 6  // peer + mean gap
	TableHeaderBytes   = 8  // owner + asOf + count
	ScalarBytes        = 8  // avg transfer size record

	// Buffer inventories are exchanged as compact summaries, not
	// per-packet records: a Bloom filter over packet IDs for duplicate
	// suppression (BloomBitsPerPacket per buffered packet at ~1% false
	// positives) plus a per-destination queue digest (age-bucketed byte
	// counts) that carries what Estimate-Delay needs to position
	// hypothetical replicas in the peer's queues. This keeps the
	// control channel at the paper's scale (metadata ≈ 0.02% of
	// bandwidth, Table 3) while conveying the same estimation inputs.
	BloomBitsPerPacket     = 10
	QueueDigestBytesPerDst = 8
)

// ReplicaEstimate is one replica's location and its holder-reported
// expected direct-delivery delay (E(M_XjZ) · n_j(i) in Eq. 9 terms).
type ReplicaEstimate struct {
	Holder packet.NodeID
	Delay  float64
	// Updated is when the estimate was produced; newer overwrites
	// older during exchanges.
	Updated float64
}

// PacketMeta is everything a node knows about a packet's replication
// state ("for each encountered packet i, rapid maintains a list of
// nodes that carry the replica of i, and for each replica, an estimated
// time for direct delivery").
type PacketMeta struct {
	ID       packet.ID
	Dst      packet.NodeID
	Size     int64
	Created  float64
	Deadline float64
	// Replicas is kept sorted by Holder; the slice layout (rather than
	// a map) keeps the per-packet utility evaluation allocation-free
	// and deterministic.
	Replicas []ReplicaEstimate
	// Updated is the latest local-knowledge change, for delta encoding.
	Updated float64
}

// replica returns the index of holder's entry in m.Replicas and whether
// it exists, by binary search.
func (m *PacketMeta) replica(holder packet.NodeID) (int, bool) {
	lo, hi := 0, len(m.Replicas)
	for lo < hi {
		mid := (lo + hi) / 2
		if m.Replicas[mid].Holder < holder {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(m.Replicas) && m.Replicas[lo].Holder == holder
}

// upsertReplica inserts or refreshes holder's estimate, preserving
// holder order and update-time monotonicity. It reports whether the
// update changed anything worth re-gossiping (a new replica, or a
// material delay movement).
func (m *PacketMeta) upsertReplica(holder packet.NodeID, delay, now float64) bool {
	i, ok := m.replica(holder)
	if ok {
		if now >= m.Replicas[i].Updated {
			changed := materialDelayChange(m.Replicas[i].Delay, delay)
			m.Replicas[i].Delay = delay
			m.Replicas[i].Updated = now
			return changed
		}
		return false
	}
	m.Replicas = append(m.Replicas, ReplicaEstimate{})
	copy(m.Replicas[i+1:], m.Replicas[i:])
	m.Replicas[i] = ReplicaEstimate{Holder: holder, Delay: delay, Updated: now}
	return true
}

// InventoryItem describes one buffered packet in a node's inventory
// announcement, including the holder's own fresh delivery estimate.
type InventoryItem struct {
	ID       packet.ID
	Dst      packet.NodeID
	Size     int64
	Created  float64
	Deadline float64
	// Delay is the announcing node's current estimated time to deliver
	// the packet directly to its destination.
	Delay float64
	Hops  int
}

// Options configures one metadata exchange.
type Options struct {
	// MaxBytes caps metadata bytes for this exchange; < 0 means
	// unlimited (the paper's default: "We allow rapid to use as much
	// bandwidth at the start of a transfer opportunity ... as it
	// requires"). 0 disables metadata entirely.
	MaxBytes int64
	// LocalOnly suppresses third-party replica records — the
	// rapid-local component of the Fig. 14 ablation.
	LocalOnly bool
	// AcksOnly exchanges only delivery acknowledgments (the
	// "Random with acks" component, and MaxProp's notification flood).
	AcksOnly bool
}

// Result summarizes an exchange for accounting (Fig. 9 reports
// metadata as a fraction of data and of bandwidth).
type Result struct {
	Bytes     int64 // total metadata bytes transferred (both directions)
	Acks      int
	Inventory int
	Replicas  int
	Tables    int
	Truncated bool // the MaxBytes cap cut the exchange short
}

// State is one node's control-plane state. Construct with NewState.
type State struct {
	self packet.NodeID
	// Meet is the meeting-time estimator fed by this control plane.
	Meet *meet.Estimator

	global *Global // non-nil in instant-global mode

	avgTransfer stat.MovingAverage
	// peerTransfer holds the last announced average transfer size per
	// peer, indexed by the run's dense node IDs (NaN = never heard).
	// Packet-keyed state below stays map-shaped: packet IDs are sparse.
	peerTransfer []float64

	acked map[packet.ID]float64 // id -> time learned
	meta  map[packet.ID]*PacketMeta
	// tableAsOf is the freshness of merged meet tables, indexed by
	// owner; tableKnown marks owners actually present.
	tableAsOf  []float64
	tableKnown []bool
	// tableOwners mirrors the known owners in sorted order, so the
	// per-contact gossip loop does not re-sort the owner set.
	tableOwners []packet.NodeID

	// ackLog and metaLog are time-ordered changelogs so delta
	// exchanges scan only what changed since the last exchange with a
	// peer, not the whole state (which grows with every packet ever
	// seen).
	ackLog  []logEvent
	metaLog []logEvent
	// ackScratch/metaScratch are reused result buffers for the delta
	// queries above (one exchange runs at a time per node); seen is the
	// epoch-stamped dedup set metaChangedSince reuses across exchanges.
	ackScratch  []packet.ID
	metaScratch []*PacketMeta
	seen        map[packet.ID]uint64
	seenEpoch   uint64

	// metaVer counts ack/replica-metadata mutations; RAPID's estimate
	// cache compares it instead of re-reading the state every contact.
	metaVer uint64

	// lastExchange is the time of the previous exchange per peer (dense
	// by node ID; the zero value is the epoch default the delta encoding
	// expects).
	lastExchange []float64
}

// growFloat extends a dense per-node float slice to cover id, filling
// new slots with fill.
func growFloat(s []float64, id packet.NodeID, fill float64) []float64 {
	for len(s) <= int(id) {
		s = append(s, fill)
	}
	return s
}

// logEvent is one changelog entry.
type logEvent struct {
	t  float64
	id packet.ID
}

// appendLog keeps events time-ordered (simulation time is monotone).
func appendLog(log []logEvent, t float64, id packet.ID) []logEvent {
	return append(log, logEvent{t: t, id: id})
}

// eventsAfter returns log entries with t > since.
func eventsAfter(log []logEvent, since float64) []logEvent {
	lo, hi := 0, len(log)
	for lo < hi {
		mid := (lo + hi) / 2
		if log[mid].t <= since {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return log[lo:]
}

// NewState returns an empty control state for node self with an h-hop
// meeting estimator. If g is non-nil the node participates in the
// instant global channel: all queries read and all updates write the
// shared snapshot.
func NewState(self packet.NodeID, hops int, g *Global) *State {
	s := &State{
		self:   self,
		Meet:   meet.New(self, hops),
		global: g,
		acked:  make(map[packet.ID]float64),
		meta:   make(map[packet.ID]*PacketMeta),
	}
	if g != nil {
		g.states[self] = s
	}
	return s
}

// Self returns the owning node ID.
func (s *State) Self() packet.NodeID { return s.self }

// MetaVersion counts mutations of the ack/replica metadata this state
// reads (the shared snapshot's, in global mode). Consumers caching
// derived values compare versions instead of subscribing to events.
func (s *State) MetaVersion() uint64 {
	if s.global != nil {
		return s.global.metaVer
	}
	return s.metaVer
}

// TransferObservations counts transfer-size observations folded into
// the node's moving average — a monotone stamp for the average's value.
func (s *State) TransferObservations() int { return s.avgTransfer.N() }

// Global reports whether this state runs over the instant global
// channel.
func (s *State) Global() bool { return s.global != nil }

// ObserveTransfer folds a transfer-opportunity size into the node's
// moving average ("the average size of past transfers").
func (s *State) ObserveTransfer(bytes int64) {
	s.avgTransfer.Observe(float64(bytes))
	if s.global != nil {
		s.global.avgTransfer[s.self] = s.avgTransfer.Value()
	}
}

// AvgTransferBytes returns this node's own average opportunity size, or
// def when nothing has been observed yet.
func (s *State) AvgTransferBytes(def float64) float64 {
	if s.avgTransfer.N() == 0 {
		return def
	}
	return s.avgTransfer.Value()
}

// AvgTransferOf returns the best-known average opportunity size of any
// node (B_j in Estimate-Delay), falling back to def.
func (s *State) AvgTransferOf(node packet.NodeID, def float64) float64 {
	if node == s.self {
		return s.AvgTransferBytes(def)
	}
	if s.global != nil {
		if v, ok := s.global.avgTransfer[node]; ok {
			return v
		}
		return def
	}
	if int(node) < len(s.peerTransfer) && node >= 0 {
		if v := s.peerTransfer[node]; !math.IsNaN(v) {
			return v
		}
	}
	return def
}

// setPeerTransfer records a peer's announced average transfer size.
func (s *State) setPeerTransfer(node packet.NodeID, v float64) {
	if node < 0 {
		return
	}
	s.peerTransfer = growFloat(s.peerTransfer, node, math.NaN())
	s.peerTransfer[node] = v
}

// LearnAck records that a packet has been delivered. Metadata for
// delivered packets is deleted (§4.2).
func (s *State) LearnAck(id packet.ID, now float64) {
	if s.global != nil {
		if _, ok := s.global.acked[id]; !ok {
			s.global.acked[id] = now
			s.global.metaVer++
		}
		return
	}
	if _, ok := s.acked[id]; !ok {
		s.acked[id] = now
		s.ackLog = appendLog(s.ackLog, now, id)
		delete(s.meta, id)
		s.metaVer++
	}
}

// IsAcked reports whether the packet is known to be delivered.
func (s *State) IsAcked(id packet.ID) bool {
	if s.global != nil {
		_, ok := s.global.acked[id]
		return ok
	}
	_, ok := s.acked[id]
	return ok
}

// AckCount returns the number of known-delivered packets.
func (s *State) AckCount() int {
	if s.global != nil {
		return len(s.global.acked)
	}
	return len(s.acked)
}

// NoteReplica records (or refreshes) knowledge that `holder` carries a
// replica with the given delivery-delay estimate.
func (s *State) NoteReplica(item InventoryItem, holder packet.NodeID, now float64) {
	if s.IsAcked(item.ID) {
		return
	}
	if s.global != nil {
		s.global.note(item, holder, now)
		return
	}
	m := s.meta[item.ID]
	if m == nil {
		m = &PacketMeta{
			ID: item.ID, Dst: item.Dst, Size: item.Size,
			Created: item.Created, Deadline: item.Deadline,
		}
		s.meta[item.ID] = m
	}
	// Self-held replicas ride inventories, not the third-party gossip
	// log; immaterial delay wiggles are not worth re-flooding either.
	if m.upsertReplica(holder, item.Delay, now) && holder != s.self {
		m.Updated = now
		s.metaLog = appendLog(s.metaLog, now, item.ID)
	}
	s.metaVer++
}

// DropReplica forgets that holder carries the packet (used when a node
// evicts a replica it previously announced).
func (s *State) DropReplica(id packet.ID, holder packet.NodeID, now float64) {
	if s.global != nil {
		if m := s.global.meta[id]; m != nil {
			m.removeReplica(holder)
			m.Updated = now
			s.global.metaVer++
		}
		return
	}
	if m := s.meta[id]; m != nil {
		m.removeReplica(holder)
		m.Updated = now
		s.metaLog = appendLog(s.metaLog, now, id)
		s.metaVer++
	}
}

// removeReplica drops holder's entry if present.
func (m *PacketMeta) removeReplica(holder packet.NodeID) {
	if i, ok := m.replica(holder); ok {
		m.Replicas = append(m.Replicas[:i], m.Replicas[i+1:]...)
	}
}

// Replicas returns the known replica estimates for a packet, sorted by
// holder. The slice is the live internal state — callers must not
// modify it or retain it across state mutations.
func (s *State) Replicas(id packet.ID) []ReplicaEstimate {
	var m *PacketMeta
	if s.global != nil {
		m = s.global.meta[id]
	} else {
		m = s.meta[id]
	}
	if m == nil {
		return nil
	}
	return m.Replicas
}

// ReplicaCount returns the number of known replicas of a packet
// (at least 0; the local copy is included only if announced).
func (s *State) ReplicaCount(id packet.ID) int {
	if s.global != nil {
		if m := s.global.meta[id]; m != nil {
			return len(m.Replicas)
		}
		return 0
	}
	if m := s.meta[id]; m != nil {
		return len(m.Replicas)
	}
	return 0
}

// Meta returns the stored metadata for a packet (nil if unknown).
func (s *State) Meta(id packet.ID) *PacketMeta {
	if s.global != nil {
		return s.global.meta[id]
	}
	return s.meta[id]
}

// Global is the instant global control channel: one shared snapshot of
// acks, replica sets, delay estimates, and transfer averages. "In our
// experiments, we assumed that the global channel is instant" (§6.2.3).
type Global struct {
	acked       map[packet.ID]float64
	meta        map[packet.ID]*PacketMeta
	avgTransfer map[packet.NodeID]float64
	states      map[packet.NodeID]*State
	metaVer     uint64
}

// NewGlobal returns an empty global snapshot.
func NewGlobal() *Global {
	return &Global{
		acked:       make(map[packet.ID]float64),
		meta:        make(map[packet.ID]*PacketMeta),
		avgTransfer: make(map[packet.NodeID]float64),
		states:      make(map[packet.NodeID]*State),
	}
}

func (g *Global) note(item InventoryItem, holder packet.NodeID, now float64) {
	m := g.meta[item.ID]
	if m == nil {
		m = &PacketMeta{
			ID: item.ID, Dst: item.Dst, Size: item.Size,
			Created: item.Created, Deadline: item.Deadline,
		}
		g.meta[item.ID] = m
	}
	m.upsertReplica(holder, item.Delay, now)
	m.Updated = now
	g.metaVer++
}

// SyncMeetingTables mirrors every node's direct meeting table to every
// other node — with an instant channel the matrix is globally current.
func (g *Global) SyncMeetingTables() {
	for _, s := range g.states {
		for _, other := range g.states {
			if other.self != s.self {
				other.Meet.MergeTableFrom(s.Meet, s.self)
			}
		}
	}
}

// Exchange performs the bidirectional metadata exchange between nodes a
// and b at a meeting. invA/invB are the nodes' current buffer
// inventories with fresh delay estimates. It returns the byte cost
// (zero in global mode — the channel is out of band).
//
// Exchange order, mirroring §4.2's list and degrading gracefully under
// a byte cap: acknowledgments first (cheapest, highest value), then
// average transfer sizes, then buffer inventories, then meeting-time
// tables, then changed third-party replica records.
func Exchange(a, b *State, invA, invB []InventoryItem, now float64, opts Options) Result {
	var res Result
	// Both sides always observe the meeting itself — discovering the
	// peer is free (radio-layer neighbor discovery).
	a.Meet.ObserveMeeting(b.self, now)
	b.Meet.ObserveMeeting(a.self, now)

	if a.global != nil && b.global != nil {
		// Instant global channel: everything is already shared; the
		// in-band exchange carries nothing. Inventories still update
		// the snapshot (they carry fresh delay estimates).
		for _, it := range invA {
			a.NoteReplica(it, a.self, now)
		}
		for _, it := range invB {
			b.NoteReplica(it, b.self, now)
		}
		a.global.SyncMeetingTables()
		return res
	}

	budget := opts.MaxBytes
	unlimited := budget < 0
	spend := func(n int64) bool {
		if unlimited {
			res.Bytes += n
			return true
		}
		if budget < n {
			res.Truncated = true
			return false
		}
		budget -= n
		res.Bytes += n
		return true
	}

	// 1. Acknowledgments, delta since the last exchange with this peer.
	// Acks the receiver already knows are suppressed by the summary
	// vector that prefixes a real exchange, so they cost nothing here.
	sinceA := a.lastExchangeWith(b.self)
	sinceB := b.lastExchangeWith(a.self)
	for _, pair := range []struct {
		from, to *State
		since    float64
	}{{a, b, sinceA}, {b, a, sinceB}} {
		ids := pair.from.acksSince(pair.since)
		for _, id := range ids {
			if pair.to.IsAcked(id) {
				continue
			}
			if !spend(AckRecordBytes) {
				return finishExchange(a, b, now, res)
			}
			pair.to.LearnAck(id, now)
			res.Acks++
		}
	}
	if opts.AcksOnly {
		return finishExchange(a, b, now, res)
	}

	// 2. Average transfer sizes (one scalar each way).
	if spend(2 * ScalarBytes) {
		if a.avgTransfer.N() > 0 {
			b.setPeerTransfer(a.self, a.avgTransfer.Value())
		}
		if b.avgTransfer.N() > 0 {
			a.setPeerTransfer(b.self, b.avgTransfer.Value())
		}
	} else {
		return finishExchange(a, b, now, res)
	}

	// 3. Buffer inventories, encoded as a Bloom digest plus
	// per-destination queue digests (see the wire-size constants). The
	// holder's own delay estimates ride the digest ("For each of its
	// own packets, the updated delivery delay estimate based on current
	// buffer state").
	for _, dir := range []struct {
		from, to *State
		inv      []InventoryItem
	}{{a, b, invA}, {b, a, invB}} {
		if len(dir.inv) == 0 {
			continue
		}
		dsts := map[packet.NodeID]bool{}
		for _, it := range dir.inv {
			dsts[it.Dst] = true
		}
		cost := int64(len(dir.inv)*BloomBitsPerPacket+7)/8 +
			int64(len(dsts))*QueueDigestBytesPerDst
		if !spend(cost) {
			return finishExchange(a, b, now, res)
		}
		for _, it := range dir.inv {
			dir.from.NoteReplica(it, dir.from.self, now) // keep own estimate fresh
			if dir.to.IsAcked(it.ID) {
				continue
			}
			dir.to.NoteReplica(it, dir.from.self, now)
			res.Inventory++
		}
	}

	// 4. Meeting-time tables (gossip of all known tables, delta by
	// freshness).
	for _, dir := range []struct{ from, to *State }{{a, b}, {b, a}} {
		own := dir.from.Meet.OwnTable()
		if !spendTable(dir.from, dir.to, dir.from.self, own, now, spend, &res) {
			return finishExchange(a, b, now, res)
		}
		for _, owner := range dir.from.tableOwners {
			if owner == dir.to.self || owner == dir.from.self {
				continue
			}
			asOf := dir.from.tableAsOfFor(owner)
			if asOf <= dir.to.tableAsOfFor(owner) {
				continue
			}
			t := dir.from.Meet.TableOf(owner)
			if t == nil {
				continue
			}
			if !spendTable(dir.from, dir.to, owner, t, asOf, spend, &res) {
				return finishExchange(a, b, now, res)
			}
		}
	}

	// 5. Third-party replica records changed since the last exchange,
	// scoped to packets the receiver is carrying: a node cares about
	// the other replicas of packets in its own buffer (they set A(i) in
	// Eq. 8); gossiping every replica of every packet network-wide
	// would swamp the channel (and the paper's 0.02%-of-bandwidth
	// budget) with records no utility computation reads.
	if !opts.LocalOnly {
		idsA := inventoryIDs(invA)
		idsB := inventoryIDs(invB)
		for _, dir := range []struct {
			from, to *State
			toIDs    map[packet.ID]bool
			since    float64
		}{{a, b, idsB, sinceA}, {b, a, idsA, sinceB}} {
			for _, m := range dir.from.metaChangedSince(dir.since) {
				if !dir.toIDs[m.ID] {
					continue
				}
				for _, rep := range m.Replicas {
					if rep.Holder == dir.from.self || rep.Holder == dir.to.self {
						continue // covered by inventories
					}
					if rep.Updated <= dir.since {
						continue
					}
					if !spend(ReplicaRecordBytes) {
						return finishExchange(a, b, now, res)
					}
					dir.to.NoteReplica(InventoryItem{
						ID: m.ID, Dst: m.Dst, Size: m.Size,
						Created: m.Created, Deadline: m.Deadline,
						Delay: rep.Delay,
					}, rep.Holder, rep.Updated)
					res.Replicas++
				}
			}
		}
	}
	return finishExchange(a, b, now, res)
}

// spendTable transmits one meeting table from `from` to `to`, charging
// its wire size against the exchange budget. The merge itself runs
// estimator-to-estimator (MergeTableFrom), which diffs the sorted row
// mirrors instead of hashing through the map — the map form `t` is
// passed only to price the wire cost.
func spendTable(from, to *State, owner packet.NodeID, t meet.Table, asOf float64, spend func(int64) bool, res *Result) bool {
	cost := TableHeaderBytes + int64(len(t))*MeetEntryBytes
	if !spend(cost) {
		return false
	}
	to.Meet.MergeTableFrom(from.Meet, owner)
	to.raiseTableAsOf(owner, asOf)
	res.Tables++
	return true
}

// tableAsOfFor returns the freshness of owner's merged table (0 =
// unknown, the delta baseline).
func (s *State) tableAsOfFor(owner packet.NodeID) float64 {
	if owner < 0 || int(owner) >= len(s.tableAsOf) {
		return 0
	}
	return s.tableAsOf[owner]
}

// raiseTableAsOf records table freshness, keeping the sorted owner
// mirror in sync (freshness only ever advances).
func (s *State) raiseTableAsOf(owner packet.NodeID, asOf float64) {
	if owner < 0 {
		return
	}
	for len(s.tableAsOf) <= int(owner) {
		s.tableAsOf = append(s.tableAsOf, 0)
		s.tableKnown = append(s.tableKnown, false)
	}
	if s.tableKnown[owner] {
		if asOf > s.tableAsOf[owner] {
			s.tableAsOf[owner] = asOf
		}
		return
	}
	s.tableAsOf[owner] = asOf
	s.tableKnown[owner] = true
	i := sort.Search(len(s.tableOwners), func(j int) bool { return s.tableOwners[j] >= owner })
	s.tableOwners = append(s.tableOwners, 0)
	copy(s.tableOwners[i+1:], s.tableOwners[i:])
	s.tableOwners[i] = owner
}

// lastExchangeWith returns the time of the previous exchange with peer
// (0 = never, the epoch default).
func (s *State) lastExchangeWith(peer packet.NodeID) float64 {
	if peer < 0 || int(peer) >= len(s.lastExchange) {
		return 0
	}
	return s.lastExchange[peer]
}

// finishExchange stamps the per-peer exchange times.
func finishExchange(a, b *State, now float64, res Result) Result {
	a.lastExchange = growFloat(a.lastExchange, b.self, 0)
	b.lastExchange = growFloat(b.lastExchange, a.self, 0)
	a.lastExchange[b.self] = now
	b.lastExchange[a.self] = now
	// Record the freshness of each other's own tables.
	a.raiseTableAsOf(b.self, now)
	b.raiseTableAsOf(a.self, now)
	return res
}

// acksSince returns ack IDs learned after `since`, sorted for
// determinism. The changelog makes this O(changed), not O(all acks);
// the returned slice is a reused scratch valid until the next call.
func (s *State) acksSince(since float64) []packet.ID {
	evs := eventsAfter(s.ackLog, since)
	out := s.ackScratch[:0]
	for _, ev := range evs {
		out = append(out, ev.id)
	}
	slices.Sort(out)
	s.ackScratch = out
	return out
}

// metaChangedSince returns metadata entries updated after `since`,
// sorted by packet ID, deduplicated from the changelog. The returned
// slice is a reused scratch valid until the next call. The dedup set
// is a reused epoch-stamped map — allocating a fresh map per exchange
// dominated mega-scale delta cost, and the changelog is too
// duplicate-heavy for sort-based dedup to win.
func (s *State) metaChangedSince(since float64) []*PacketMeta {
	evs := eventsAfter(s.metaLog, since)
	s.seenEpoch++
	if s.seen == nil {
		s.seen = make(map[packet.ID]uint64)
	}
	out := s.metaScratch[:0]
	for _, ev := range evs {
		if s.seen[ev.id] == s.seenEpoch {
			continue
		}
		s.seen[ev.id] = s.seenEpoch
		if m := s.meta[ev.id]; m != nil && m.Updated > since {
			out = append(out, m)
		}
	}
	slices.SortFunc(out, func(a, b *PacketMeta) int { return cmp.Compare(a.ID, b.ID) })
	s.metaScratch = out
	return out
}

// inventoryIDs collects the packet IDs of an inventory.
func inventoryIDs(inv []InventoryItem) map[packet.ID]bool {
	ids := make(map[packet.ID]bool, len(inv))
	for _, it := range inv {
		ids[it.ID] = true
	}
	return ids
}

// materialDelayChange reports whether a delay estimate moved enough to
// be worth re-announcing (25% relative, or a reachability flip).
func materialDelayChange(old, new float64) bool {
	oldInf, newInf := math.IsInf(old, 1), math.IsInf(new, 1)
	if oldInf != newInf {
		return true
	}
	if oldInf && newInf {
		return false
	}
	base := math.Max(math.Abs(old), 1e-9)
	return math.Abs(new-old)/base > 0.25
}

// CombinedDelay applies Eq. 8/9: the expected remaining delay A(i) given
// independent per-replica expected direct-delivery delays, under the
// exponential approximation — the reciprocal of the summed rates.
// Replicas with non-positive or infinite delay estimates contribute
// nothing (unreachable holders). Returns +Inf when no replica can
// deliver.
func CombinedDelay(delays []float64) float64 {
	rate := 0.0
	for _, d := range delays {
		if d > 0 && !math.IsInf(d, 1) {
			rate += 1 / d
		} else if d == 0 {
			return 0 // a replica is already at the destination
		}
	}
	if rate == 0 {
		return math.Inf(1)
	}
	return 1 / rate
}

// DeliveryProb applies Eq. 7 to the deadline metric: the probability
// that at least one replica delivers within t, with per-replica
// exponential delays.
func DeliveryProb(delays []float64, t float64) float64 {
	if t <= 0 {
		return 0
	}
	rate := 0.0
	for _, d := range delays {
		if d > 0 && !math.IsInf(d, 1) {
			rate += 1 / d
		} else if d == 0 {
			return 1
		}
	}
	if rate == 0 {
		return 0
	}
	return -math.Expm1(-rate * t)
}

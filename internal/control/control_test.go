package control

import (
	"math"
	"testing"

	"rapid/internal/packet"
)

func twoStates() (*State, *State) {
	return NewState(0, 3, nil), NewState(1, 3, nil)
}

func unlimited() Options { return Options{MaxBytes: -1} }

func TestExchangePropagatesAcks(t *testing.T) {
	a, b := twoStates()
	a.LearnAck(42, 10)
	res := Exchange(a, b, nil, nil, 20, unlimited())
	if !b.IsAcked(42) {
		t.Fatal("ack not propagated")
	}
	if res.Acks != 1 {
		t.Errorf("acks=%d want 1", res.Acks)
	}
	if res.Bytes < AckRecordBytes {
		t.Errorf("bytes=%d too small", res.Bytes)
	}
	// Delta: second exchange sends no acks.
	res2 := Exchange(a, b, nil, nil, 30, unlimited())
	if res2.Acks != 0 {
		t.Errorf("delta exchange resent acks: %d", res2.Acks)
	}
}

func TestExchangeInventoryCreatesReplicaKnowledge(t *testing.T) {
	a, b := twoStates()
	inv := []InventoryItem{{ID: 7, Dst: 5, Size: 1024, Created: 1, Delay: 300}}
	res := Exchange(a, b, inv, nil, 10, unlimited())
	if res.Inventory != 1 {
		t.Fatalf("inventory=%d want 1", res.Inventory)
	}
	reps := b.Replicas(7)
	if len(reps) != 1 || reps[0].Holder != 0 || reps[0].Delay != 300 {
		t.Fatalf("replicas=%v", reps)
	}
	// The announcing side records its own self-announcement too.
	if got := a.ReplicaCount(7); got != 1 {
		t.Errorf("sender replica count=%d want 1", got)
	}
	m := b.Meta(7)
	if m == nil || m.Dst != 5 || m.Size != 1024 {
		t.Fatalf("meta=%+v", m)
	}
}

func TestThirdPartyReplicaGossip(t *testing.T) {
	// a learns about node 9's replica via inventory from 9, then passes
	// it to b at a later meeting — because b itself carries packet 7
	// and needs to know about its other replicas (Eq. 8's A(i)).
	a, _ := twoStates()
	nine := NewState(9, 3, nil)
	inv := []InventoryItem{{ID: 7, Dst: 5, Size: 1024, Delay: 120}}
	Exchange(nine, a, inv, nil, 10, unlimited())
	b := NewState(1, 3, nil)
	invB := []InventoryItem{{ID: 7, Dst: 5, Size: 1024, Delay: 400}}
	res := Exchange(a, b, nil, invB, 20, unlimited())
	if res.Replicas == 0 {
		t.Fatal("third-party replica record not gossiped")
	}
	reps := b.Replicas(7)
	// b now knows of holders 9 (gossiped), a? (a never announced
	// holding it), and itself.
	var sawNine bool
	for _, r := range reps {
		if r.Holder == 9 {
			sawNine = true
		}
	}
	if !sawNine {
		t.Fatalf("replicas=%v missing holder 9", reps)
	}
}

func TestThirdPartyGossipScopedToReceiverBuffer(t *testing.T) {
	// Replica records about packets the receiver does NOT hold are
	// suppressed: no utility computation at the receiver reads them.
	a, _ := twoStates()
	nine := NewState(9, 3, nil)
	Exchange(nine, a, []InventoryItem{{ID: 7, Dst: 5, Size: 1, Delay: 9}}, nil, 10, unlimited())
	b := NewState(1, 3, nil)
	res := Exchange(a, b, nil, nil, 20, unlimited())
	if res.Replicas != 0 {
		t.Errorf("gossiped %d records about packets the receiver lacks", res.Replicas)
	}
	if len(b.Replicas(7)) != 0 {
		t.Error("receiver learned about a packet it does not carry")
	}
}

func TestLocalOnlySuppressesThirdParty(t *testing.T) {
	a, _ := twoStates()
	nine := NewState(9, 3, nil)
	Exchange(nine, a, []InventoryItem{{ID: 7, Dst: 5, Size: 1, Delay: 9}}, nil, 10, unlimited())
	b := NewState(1, 3, nil)
	res := Exchange(a, b, nil, nil, 20, Options{MaxBytes: -1, LocalOnly: true})
	if res.Replicas != 0 {
		t.Errorf("local-only exchange sent %d third-party records", res.Replicas)
	}
	if len(b.Replicas(7)) != 0 {
		t.Error("third-party knowledge leaked in local-only mode")
	}
}

func TestAcksOnlyMode(t *testing.T) {
	a, b := twoStates()
	a.LearnAck(1, 5)
	a.ObserveTransfer(1000)
	res := Exchange(a, b, []InventoryItem{{ID: 3, Dst: 2, Size: 1}}, nil, 10, Options{MaxBytes: -1, AcksOnly: true})
	if !b.IsAcked(1) {
		t.Error("acks-only exchange must carry acks")
	}
	if res.Inventory != 0 || res.Tables != 0 {
		t.Errorf("acks-only exchange carried extra data: %+v", res)
	}
	if b.AvgTransferOf(0, -1) != -1 {
		t.Error("acks-only exchange leaked transfer averages")
	}
}

func TestByteCapTruncates(t *testing.T) {
	a, b := twoStates()
	for i := packet.ID(0); i < 100; i++ {
		a.LearnAck(i, 1)
	}
	res := Exchange(a, b, nil, nil, 10, Options{MaxBytes: 80})
	if !res.Truncated {
		t.Error("exchange should be truncated")
	}
	if res.Bytes > 80 {
		t.Errorf("bytes=%d exceeds cap", res.Bytes)
	}
	if res.Acks != 10 {
		t.Errorf("acks=%d want 10 (80/8)", res.Acks)
	}
	// Zero budget: nothing at all.
	c, d := NewState(5, 3, nil), NewState(6, 3, nil)
	c.LearnAck(1, 1)
	res = Exchange(c, d, nil, nil, 10, Options{MaxBytes: 0})
	if res.Bytes != 0 || d.IsAcked(1) {
		t.Error("zero budget must carry nothing")
	}
}

func TestMeetingTablesGossip(t *testing.T) {
	a, b := twoStates()
	// a meets node 2 twice -> direct table entry (gaps 50, 100 -> 75).
	a.Meet.ObserveMeeting(2, 50)
	a.Meet.ObserveMeeting(2, 150)
	Exchange(a, b, nil, nil, 200, unlimited())
	// b can now estimate meeting node 2 through a's table.
	if got := b.Meet.Expected(0, 2); got != 75 {
		t.Errorf("b's view of E(M_a,2)=%v want 75", got)
	}
	if got := b.Meet.Expected(1, 2); math.IsInf(got, 1) {
		t.Error("b should reach 2 transitively via a")
	}
}

func TestExchangeObservesMeetingBothSides(t *testing.T) {
	a, b := twoStates()
	Exchange(a, b, nil, nil, 100, unlimited())
	if got := a.Meet.Expected(0, 1); got != 100 {
		t.Errorf("a's gap %v want 100", got)
	}
	if got := b.Meet.Expected(1, 0); got != 100 {
		t.Errorf("b's gap %v want 100", got)
	}
}

func TestAckClearsMetadataAndBlocksReplicas(t *testing.T) {
	a, _ := twoStates()
	item := InventoryItem{ID: 7, Dst: 5, Size: 1, Delay: 10}
	a.NoteReplica(item, 3, 1)
	if a.ReplicaCount(7) != 1 {
		t.Fatal("replica not noted")
	}
	a.LearnAck(7, 2)
	if a.Meta(7) != nil {
		t.Error("metadata not purged on ack")
	}
	a.NoteReplica(item, 4, 3)
	if a.ReplicaCount(7) != 0 {
		t.Error("acked packet accepted new replica metadata")
	}
}

func TestDropReplica(t *testing.T) {
	a, _ := twoStates()
	a.NoteReplica(InventoryItem{ID: 7, Dst: 5, Size: 1, Delay: 10}, 3, 1)
	a.DropReplica(7, 3, 2)
	if a.ReplicaCount(7) != 0 {
		t.Error("replica not dropped")
	}
	a.DropReplica(99, 3, 2) // unknown packet: no-op
}

func TestAvgTransferPropagation(t *testing.T) {
	a, b := twoStates()
	a.ObserveTransfer(1000)
	a.ObserveTransfer(3000)
	Exchange(a, b, nil, nil, 10, unlimited())
	if got := b.AvgTransferOf(0, -1); got != 2000 {
		t.Errorf("B_a at b=%v want 2000", got)
	}
	if got := b.AvgTransferOf(7, 512); got != 512 {
		t.Errorf("unknown node default=%v want 512", got)
	}
	if got := a.AvgTransferBytes(99); got != 2000 {
		t.Errorf("own avg=%v", got)
	}
	empty := NewState(9, 3, nil)
	if got := empty.AvgTransferBytes(99); got != 99 {
		t.Errorf("default=%v", got)
	}
}

func TestGlobalChannel(t *testing.T) {
	g := NewGlobal()
	a := NewState(0, 3, g)
	b := NewState(1, 3, g)
	c := NewState(2, 3, g)
	// An ack by a is instantly visible everywhere.
	a.LearnAck(5, 1)
	if !b.IsAcked(5) || !c.IsAcked(5) {
		t.Fatal("global ack not instant")
	}
	// Replica notes are shared.
	a.NoteReplica(InventoryItem{ID: 9, Dst: 2, Size: 1, Delay: 77}, 0, 1)
	if got := c.Replicas(9); len(got) != 1 || got[0].Delay != 77 {
		t.Fatalf("global replicas=%v", got)
	}
	// Transfer averages are shared.
	a.ObserveTransfer(4000)
	if got := b.AvgTransferOf(0, -1); got != 4000 {
		t.Errorf("global avg=%v", got)
	}
	// Exchange costs nothing.
	res := Exchange(a, b, []InventoryItem{{ID: 9, Dst: 2, Size: 1, Delay: 60}}, nil, 10, unlimited())
	if res.Bytes != 0 {
		t.Errorf("global exchange cost %d bytes", res.Bytes)
	}
	// Meeting tables synced globally after exchange.
	if got := c.Meet.Expected(0, 1); math.IsInf(got, 1) {
		t.Error("global meeting tables not synced")
	}
	if !a.Global() {
		t.Error("Global() must report true")
	}
}

func TestCombinedDelay(t *testing.T) {
	if got := CombinedDelay(nil); !math.IsInf(got, 1) {
		t.Errorf("no replicas: %v want +Inf", got)
	}
	if got := CombinedDelay([]float64{100}); got != 100 {
		t.Errorf("single replica: %v want 100", got)
	}
	// Two replicas at 100 each halve the delay (Eq. 8 with k=2, n=1).
	if got := CombinedDelay([]float64{100, 100}); got != 50 {
		t.Errorf("two replicas: %v want 50", got)
	}
	// Unreachable replicas contribute nothing.
	if got := CombinedDelay([]float64{100, math.Inf(1), 0.0 - 1}); got != 100 {
		t.Errorf("degenerate replicas: %v want 100", got)
	}
	// Delay 0 means already delivered.
	if got := CombinedDelay([]float64{0, 50}); got != 0 {
		t.Errorf("zero delay: %v", got)
	}
}

func TestDeliveryProb(t *testing.T) {
	if got := DeliveryProb([]float64{100}, 0); got != 0 {
		t.Errorf("t=0: %v", got)
	}
	want := 1 - math.Exp(-1)
	if got := DeliveryProb([]float64{100}, 100); math.Abs(got-want) > 1e-12 {
		t.Errorf("P=%v want %v", got, want)
	}
	if got := DeliveryProb(nil, 50); got != 0 {
		t.Errorf("no replicas: %v", got)
	}
	if got := DeliveryProb([]float64{0}, 50); got != 1 {
		t.Errorf("delivered replica: %v", got)
	}
	// More replicas raise the probability.
	one := DeliveryProb([]float64{100}, 50)
	two := DeliveryProb([]float64{100, 100}, 50)
	if two <= one {
		t.Errorf("monotonicity: %v !> %v", two, one)
	}
}

func TestReplicaEstimateFreshness(t *testing.T) {
	a, _ := twoStates()
	item := InventoryItem{ID: 7, Dst: 5, Size: 1, Delay: 100}
	a.NoteReplica(item, 3, 10)
	stale := item
	stale.Delay = 500
	a.NoteReplica(stale, 3, 5) // older update must not overwrite
	if got := a.Replicas(7)[0].Delay; got != 100 {
		t.Errorf("stale update overwrote: %v", got)
	}
	fresh := item
	fresh.Delay = 50
	a.NoteReplica(fresh, 3, 20)
	if got := a.Replicas(7)[0].Delay; got != 50 {
		t.Errorf("fresh update ignored: %v", got)
	}
}

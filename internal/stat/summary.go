package stat

import (
	"math"
	"sort"
)

// Welford accumulates a running mean and variance using Welford's
// numerically stable online algorithm. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean (0 when empty).
func (w *Welford) StdErr() float64 {
	if w.n == 0 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// Merge folds another accumulator into w (parallel Welford merge).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n1, n2 := float64(w.n), float64(o.n)
	d := o.mean - w.mean
	tot := n1 + n2
	w.mean += d * n2 / tot
	w.m2 += o.m2 + d*d*n1*n2/tot
	w.n += o.n
}

// MovingAverage is a simple cumulative average, as used by DieselNet
// nodes to track the expected transfer-opportunity size and the average
// inter-meeting time with each peer (§4.1.2: "calculated as the average
// of past meetings"). The zero value is ready to use; Value on an empty
// average reports the configured Default.
type MovingAverage struct {
	Default float64 // reported before any observation
	n       int
	mean    float64
}

// Observe adds a sample.
func (m *MovingAverage) Observe(x float64) {
	m.n++
	m.mean += (x - m.mean) / float64(m.n)
}

// Value returns the current average, or Default when no samples exist.
func (m *MovingAverage) Value() float64 {
	if m.n == 0 {
		return m.Default
	}
	return m.mean
}

// N returns the number of samples observed.
func (m *MovingAverage) N() int { return m.n }

// EWMA is an exponentially weighted moving average with smoothing factor
// Alpha in (0, 1]: larger Alpha weights recent samples more. The zero
// value with Alpha unset behaves like a plain assignment of the first
// observation followed by alpha=0.5 updates (a safe default).
type EWMA struct {
	Alpha float64
	set   bool
	v     float64
}

// Observe folds in a sample.
func (e *EWMA) Observe(x float64) {
	a := e.Alpha
	if a <= 0 || a > 1 {
		a = 0.5
	}
	if !e.set {
		e.v = x
		e.set = true
		return
	}
	e.v = a*x + (1-a)*e.v
}

// Value returns the smoothed value (0 before any observation).
func (e *EWMA) Value() float64 { return e.v }

// Set reports whether at least one observation has been folded in.
func (e *EWMA) Set() bool { return e.set }

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns NaN for empty input.
// The input slice is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// ECDF is an empirical cumulative distribution function over a fixed
// sample, supporting evaluation and extraction of plot-ready points.
// It backs the fairness CDF of Fig. 15.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from the samples (copied and sorted).
func NewECDF(xs []float64) *ECDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// N returns the sample count.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns P(X <= x) under the empirical distribution.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(e.sorted, x)
	// SearchFloat64s returns the first index >= x; advance over equal
	// values so ties count as <= x.
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Points returns up to n (x, F(x)) pairs evenly spaced through the
// sample, suitable for plotting.
func (e *ECDF) Points(n int) (xs, ys []float64) {
	if len(e.sorted) == 0 || n <= 0 {
		return nil, nil
	}
	if n > len(e.sorted) {
		n = len(e.sorted)
	}
	xs = make([]float64, n)
	ys = make([]float64, n)
	for i := 0; i < n; i++ {
		idx := i * (len(e.sorted) - 1) / max(1, n-1)
		xs[i] = e.sorted[idx]
		ys[i] = float64(idx+1) / float64(len(e.sorted))
	}
	return xs, ys
}

// JainIndex computes Jain's fairness index over the values:
//
//	J = (sum x)^2 / (n * sum x^2)
//
// J is 1 when all values are equal and approaches 1/n under maximal
// unfairness. The paper applies it to the delays of packets created in
// parallel (Fig. 15). Returns NaN for empty input and 1 for an input of
// all zeros (all packets equally treated).
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package stat

import (
	"math"
	"testing"
)

func TestWelfordCI(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 6, 8, 10} {
		w.Add(x)
	}
	ci := w.CI(0.95)
	if ci.N != 5 || ci.Mean != 6 {
		t.Fatalf("CI = %+v, want mean 6 over 5", ci)
	}
	// t_{0.975,4} ≈ 2.776; stderr = sqrt(10)/sqrt(5) = sqrt(2).
	want := 2.776 * math.Sqrt2
	if math.Abs(ci.Half-want) > 0.01 {
		t.Errorf("half-width %.4f, want ≈%.4f", ci.Half, want)
	}
	if ci.Lo() >= ci.Mean || ci.Hi() <= ci.Mean {
		t.Errorf("interval [%v, %v] does not bracket the mean", ci.Lo(), ci.Hi())
	}
	// Cross-check against MeanCI on the same sample.
	mean, half, err := MeanCI([]float64{2, 4, 6, 8, 10}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-ci.Mean) > 1e-12 || math.Abs(half-ci.Half) > 1e-9 {
		t.Errorf("Welford.CI (%v ± %v) disagrees with MeanCI (%v ± %v)", ci.Mean, ci.Half, mean, half)
	}
}

func TestWelfordCISingleton(t *testing.T) {
	var w Welford
	w.Add(3)
	ci := w.CI(0.95)
	if ci.Mean != 3 || ci.Half != 0 || ci.N != 1 {
		t.Errorf("singleton CI = %+v, want {3 0 1}", ci)
	}
}

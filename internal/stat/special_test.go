package stat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestGammaRegPKnownValues(t *testing.T) {
	// Reference values from standard tables / scipy.special.gammainc.
	cases := []struct{ a, x, want float64 }{
		{1, 1, 1 - math.Exp(-1)}, // Gamma(1) is exponential
		{1, 2, 1 - math.Exp(-2)},
		{2, 2, 1 - 3*math.Exp(-2)}, // P(2,x)=1-(1+x)e^-x
		{3, 3, 1 - (1+3+4.5)*math.Exp(-3)},
		{0.5, 0.5, 0.6826894921370859}, // erf relation
		{5, 5, 0.5595067149347875},
		{10, 10, 0.5420702855281478},
	}
	for _, c := range cases {
		got, err := GammaRegP(c.a, c.x)
		if err != nil {
			t.Fatalf("GammaRegP(%v,%v): %v", c.a, c.x, err)
		}
		if !almostEqual(got, c.want, 1e-9) {
			t.Errorf("GammaRegP(%v,%v)=%v want %v", c.a, c.x, got, c.want)
		}
	}
}

func TestGammaRegPDomain(t *testing.T) {
	if _, err := GammaRegP(-1, 1); err == nil {
		t.Error("expected domain error for a<0")
	}
	if _, err := GammaRegP(1, -1); err == nil {
		t.Error("expected domain error for x<0")
	}
	if p, err := GammaRegP(3, 0); err != nil || p != 0 {
		t.Errorf("GammaRegP(3,0)=%v,%v want 0,nil", p, err)
	}
	if p, err := GammaRegP(3, math.Inf(1)); err != nil || p != 1 {
		t.Errorf("GammaRegP(3,inf)=%v,%v want 1,nil", p, err)
	}
}

func TestGammaRegPMonotoneInX(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := 0.1 + 20*r.Float64()
		x1 := 30 * r.Float64()
		x2 := x1 + 10*r.Float64()
		p1, err1 := GammaRegP(a, x1)
		p2, err2 := GammaRegP(a, x2)
		if err1 != nil || err2 != nil {
			return false
		}
		return p2 >= p1-1e-12 && p1 >= -1e-12 && p2 <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGammaPlusQIsOne(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := 0.1 + 30*r.Float64()
		x := 50 * r.Float64()
		p, err1 := GammaRegP(a, x)
		q, err2 := GammaRegQ(a, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(p+q, 1, 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBetaRegKnownValues(t *testing.T) {
	cases := []struct{ a, b, x, want float64 }{
		{1, 1, 0.3, 0.3},  // Beta(1,1) is uniform
		{2, 2, 0.5, 0.5},  // symmetric
		{2, 1, 0.5, 0.25}, // I_x(2,1) = x^2
		{1, 2, 0.5, 0.75}, // I_x(1,2) = 1-(1-x)^2
		{5, 5, 0.5, 0.5},
		{0.5, 0.5, 0.25, 1.0 / 3.0}, // arcsine distribution: 2/pi asin(sqrt x)
	}
	for _, c := range cases {
		got, err := BetaReg(c.a, c.b, c.x)
		if err != nil {
			t.Fatalf("BetaReg(%v,%v,%v): %v", c.a, c.b, c.x, err)
		}
		if !almostEqual(got, c.want, 1e-8) {
			t.Errorf("BetaReg(%v,%v,%v)=%v want %v", c.a, c.b, c.x, got, c.want)
		}
	}
}

func TestBetaRegSymmetry(t *testing.T) {
	// I_x(a,b) = 1 - I_{1-x}(b,a)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := 0.2 + 10*r.Float64()
		b := 0.2 + 10*r.Float64()
		x := r.Float64()
		l, err1 := BetaReg(a, b, x)
		rr, err2 := BetaReg(b, a, 1-x)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(l, 1-rr, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBetaRegEdges(t *testing.T) {
	if v, err := BetaReg(2, 3, 0); err != nil || v != 0 {
		t.Errorf("BetaReg(2,3,0)=%v,%v", v, err)
	}
	if v, err := BetaReg(2, 3, 1); err != nil || v != 1 {
		t.Errorf("BetaReg(2,3,1)=%v,%v", v, err)
	}
	if _, err := BetaReg(0, 1, 0.5); err == nil {
		t.Error("expected domain error for a=0")
	}
	if _, err := BetaReg(1, 1, 1.5); err == nil {
		t.Error("expected domain error for x>1")
	}
}

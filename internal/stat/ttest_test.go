package stat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStudentTCDFKnown(t *testing.T) {
	// Reference values (scipy.stats.t.cdf).
	cases := []struct{ t, nu, want float64 }{
		{0, 5, 0.5},
		{1, 1, 0.75}, // Cauchy: 1/2 + atan(1)/pi
		{2.0, 10, 0.9633059826662},
		{-2.0, 10, 0.0366940173338},
		{1.96, 1e6, 0.9750021048516},
	}
	for _, c := range cases {
		got, err := StudentTCDF(c.t, c.nu)
		if err != nil {
			t.Fatalf("StudentTCDF(%v,%v): %v", c.t, c.nu, err)
		}
		if !almostEqual(got, c.want, 1e-6) {
			t.Errorf("StudentTCDF(%v,%v)=%v want %v", c.t, c.nu, got, c.want)
		}
	}
}

func TestStudentTQuantileKnown(t *testing.T) {
	// Classic table values of t_{0.975, nu}.
	cases := []struct{ conf, nu, want float64 }{
		{0.95, 1, 12.706},
		{0.95, 5, 2.571},
		{0.95, 10, 2.228},
		{0.95, 29, 2.045},
		{0.99, 10, 3.169},
	}
	for _, c := range cases {
		got, err := StudentTQuantile(c.conf, c.nu)
		if err != nil {
			t.Fatalf("StudentTQuantile(%v,%v): %v", c.conf, c.nu, err)
		}
		if !almostEqual(got, c.want, 2e-3) {
			t.Errorf("StudentTQuantile(%v,%v)=%v want %v", c.conf, c.nu, got, c.want)
		}
	}
}

func TestStudentTQuantileInvertsCDF(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		conf := 0.5 + 0.49*r.Float64()
		nu := 1 + float64(r.Intn(100))
		q, err := StudentTQuantile(conf, nu)
		if err != nil {
			return false
		}
		c, err := StudentTCDF(q, nu)
		if err != nil {
			return false
		}
		return almostEqual(c, 1-(1-conf)/2, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStudentTDomainErrors(t *testing.T) {
	if _, err := StudentTCDF(1, 0); err == nil {
		t.Error("nu=0 must error")
	}
	if _, err := StudentTQuantile(1.5, 5); err == nil {
		t.Error("conf>1 must error")
	}
	if _, err := StudentTQuantile(0.95, -1); err == nil {
		t.Error("nu<0 must error")
	}
}

func TestPairedTTestDetectsDifference(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	n := 100
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		base := r.NormFloat64() * 10
		x[i] = base + 2 + r.NormFloat64()*0.5 // x consistently ~2 above y
		y[i] = base
	}
	res, err := PairedTTest(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-6 {
		t.Errorf("p=%v; expected strong significance", res.P)
	}
	if res.MeanDiff < 1.5 || res.MeanDiff > 2.5 {
		t.Errorf("mean diff %v want ~2", res.MeanDiff)
	}
}

func TestPairedTTestNullHypothesis(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	n := 200
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		base := r.NormFloat64() * 10
		x[i] = base + r.NormFloat64()
		y[i] = base + r.NormFloat64()
	}
	res, err := PairedTTest(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.001 {
		t.Errorf("p=%v; identical populations should rarely be this significant", res.P)
	}
}

func TestPairedTTestErrors(t *testing.T) {
	if _, err := PairedTTest([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := PairedTTest([]float64{1}, []float64{1}); err == nil {
		t.Error("n<2 must error")
	}
}

func TestPairedTTestDegenerate(t *testing.T) {
	// Identical constant differences, nonzero: p=0.
	res, err := PairedTTest([]float64{3, 4, 5}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 0 {
		t.Errorf("constant nonzero diff: p=%v want 0", res.P)
	}
	// Identical samples: p=1.
	res, err = PairedTTest([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 {
		t.Errorf("identical samples: p=%v want 1", res.P)
	}
}

func TestMeanCI(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	xs := make([]float64, 30)
	for i := range xs {
		xs[i] = 50 + r.NormFloat64()*5
	}
	mean, hw, err := MeanCI(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-50) > 3 {
		t.Errorf("mean %v", mean)
	}
	if hw <= 0 || hw > 5 {
		t.Errorf("half width %v", hw)
	}
	if _, _, err := MeanCI(nil, 0.95); err == nil {
		t.Error("empty sample must error")
	}
	if m, hw, err := MeanCI([]float64{7}, 0.95); err != nil || m != 7 || hw != 0 {
		t.Errorf("single sample: %v %v %v", m, hw, err)
	}
}

// Property: the 95% CI contains the true mean roughly 95% of the time.
func TestMeanCICoverage(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	hits, trials := 0, 400
	for i := 0; i < trials; i++ {
		xs := make([]float64, 20)
		for j := range xs {
			xs[j] = 10 + r.NormFloat64()*4
		}
		mean, hw, err := MeanCI(xs, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mean-10) <= hw {
			hits++
		}
	}
	cov := float64(hits) / float64(trials)
	if cov < 0.90 || cov > 0.99 {
		t.Errorf("coverage %v want ~0.95", cov)
	}
}

// Package stat provides the statistical substrate used throughout the
// RAPID reproduction: probability distributions (exponential, gamma),
// streaming estimators (Welford variance, moving averages, EWMA),
// hypothesis tests (paired Student t-test), confidence intervals, CDFs,
// and Jain's fairness index.
//
// Everything here is implemented from scratch on top of the standard
// library so the module has no external dependencies. The special
// functions (regularized incomplete gamma and beta) follow the classical
// series/continued-fraction evaluations and are accurate to roughly 1e-10
// over the parameter ranges exercised by the simulator.
package stat

import (
	"errors"
	"math"
)

// ErrDomain is returned (or caused panics in Must* helpers) when a
// special function is evaluated outside its mathematical domain.
var ErrDomain = errors.New("stat: argument outside function domain")

const (
	// maxIter bounds the series/continued-fraction iterations of the
	// special functions below.
	maxIter = 500
	// convEps is the relative convergence tolerance.
	convEps = 3e-14
	// tinyFloat guards continued fractions against division by zero.
	tinyFloat = 1e-300
)

// GammaRegP computes the regularized lower incomplete gamma function
// P(a, x) = γ(a, x) / Γ(a) for a > 0, x >= 0.
//
// P(a, x) is the CDF of a Gamma(shape=a, rate=1) random variable
// evaluated at x. The implementation uses the power series for
// x < a+1 and the continued fraction for x >= a+1 (Numerical Recipes
// style), which keeps both branches rapidly convergent.
func GammaRegP(a, x float64) (float64, error) {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN(), ErrDomain
	case x < 0:
		return math.NaN(), ErrDomain
	case x == 0:
		return 0, nil
	case math.IsInf(x, 1):
		return 1, nil
	}
	if x < a+1 {
		p, err := gammaSeriesP(a, x)
		return p, err
	}
	q, err := gammaContinuedQ(a, x)
	if err != nil {
		return math.NaN(), err
	}
	return 1 - q, nil
}

// GammaRegQ computes the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func GammaRegQ(a, x float64) (float64, error) {
	p, err := GammaRegP(a, x)
	if err != nil {
		return math.NaN(), err
	}
	return 1 - p, nil
}

// gammaSeriesP evaluates P(a,x) by its power series representation.
func gammaSeriesP(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*convEps {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return math.NaN(), errors.New("stat: incomplete gamma series did not converge")
}

// gammaContinuedQ evaluates Q(a,x) by its continued fraction
// representation using the modified Lentz algorithm.
func gammaContinuedQ(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tinyFloat
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tinyFloat {
			d = tinyFloat
		}
		c = b + an/c
		if math.Abs(c) < tinyFloat {
			c = tinyFloat
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < convEps {
			return math.Exp(-x+a*math.Log(x)-lg) * h, nil
		}
	}
	return math.NaN(), errors.New("stat: incomplete gamma continued fraction did not converge")
}

// BetaReg computes the regularized incomplete beta function
// I_x(a, b) for a, b > 0 and x in [0, 1].
//
// I_x(a, b) is the CDF of a Beta(a, b) random variable; it underlies the
// Student-t CDF used by the paired t-test in this package.
func BetaReg(a, b, x float64) (float64, error) {
	switch {
	case a <= 0 || b <= 0 || math.IsNaN(x):
		return math.NaN(), ErrDomain
	case x < 0 || x > 1:
		return math.NaN(), ErrDomain
	case x == 0:
		return 0, nil
	case x == 1:
		return 1, nil
	}
	lbeta := lgammaSum(a, b)
	front := math.Exp(a*math.Log(x) + b*math.Log(1-x) - lbeta)
	// Use the continued fraction directly when x is below the
	// symmetry point; otherwise use the reflection identity.
	if x < (a+1)/(a+b+2) {
		cf, err := betaContinued(a, b, x)
		if err != nil {
			return math.NaN(), err
		}
		return front * cf / a, nil
	}
	cf, err := betaContinued(b, a, 1-x)
	if err != nil {
		return math.NaN(), err
	}
	return 1 - front*cf/b, nil
}

// lgammaSum returns log(Beta(a,b)) = lgamma(a)+lgamma(b)-lgamma(a+b).
func lgammaSum(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// betaContinued evaluates the continued fraction for the incomplete beta
// function by the modified Lentz algorithm.
func betaContinued(a, b, x float64) (float64, error) {
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tinyFloat {
		d = tinyFloat
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tinyFloat {
			d = tinyFloat
		}
		c = 1 + aa/c
		if math.Abs(c) < tinyFloat {
			c = tinyFloat
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tinyFloat {
			d = tinyFloat
		}
		c = 1 + aa/c
		if math.Abs(c) < tinyFloat {
			c = tinyFloat
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < convEps {
			return h, nil
		}
	}
	return math.NaN(), errors.New("stat: incomplete beta continued fraction did not converge")
}

package stat

import (
	"math"
	"math/rand"
)

// Dist is a one-dimensional continuous probability distribution. The
// simulator draws meeting times and workload interarrivals through this
// interface so mobility models remain pluggable.
type Dist interface {
	// Mean returns the distribution's expectation.
	Mean() float64
	// CDF returns P(X <= x).
	CDF(x float64) float64
	// Sample draws a variate using the supplied random source.
	Sample(r *rand.Rand) float64
}

// Exponential is an exponential distribution with rate Lambda (> 0).
// Inter-meeting times in the paper's synthetic mobility models, and the
// approximation used by RAPID's Estimate-Delay algorithm (Eq. 7), are
// exponential.
type Exponential struct {
	Lambda float64
}

// NewExponentialMean returns an exponential distribution with the given
// mean (mean = 1/rate). It panics if mean <= 0.
func NewExponentialMean(mean float64) Exponential {
	if mean <= 0 {
		panic("stat: exponential mean must be positive")
	}
	return Exponential{Lambda: 1 / mean}
}

// Mean returns 1/Lambda.
func (e Exponential) Mean() float64 { return 1 / e.Lambda }

// CDF returns 1 - exp(-Lambda*x) for x >= 0, 0 otherwise.
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-e.Lambda * x)
}

// Sample draws an exponential variate by inversion.
func (e Exponential) Sample(r *rand.Rand) float64 {
	return r.ExpFloat64() / e.Lambda
}

// Gamma is a gamma distribution with shape K (> 0) and rate Lambda (> 0).
// The time for a node to meet a destination n times, when single-meeting
// waits are exponential, is Gamma(n, lambda) — the distribution named in
// Step 2 of Estimate-Delay (§4.1.1).
type Gamma struct {
	K      float64 // shape
	Lambda float64 // rate
}

// Mean returns K/Lambda.
func (g Gamma) Mean() float64 { return g.K / g.Lambda }

// CDF returns the regularized lower incomplete gamma P(K, Lambda*x).
func (g Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	p, err := GammaRegP(g.K, g.Lambda*x)
	if err != nil {
		return math.NaN()
	}
	return p
}

// Sample draws a gamma variate with the Marsaglia–Tsang method for
// shape >= 1 and the boosting transform for shape < 1.
func (g Gamma) Sample(r *rand.Rand) float64 {
	k := g.K
	if k < 1 {
		// Boost: X ~ Gamma(k+1) * U^(1/k).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return Gamma{K: k + 1, Lambda: g.Lambda}.Sample(r) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v / g.Lambda
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v / g.Lambda
		}
	}
}

// MinExponentialRate returns the rate of the minimum of independent
// exponential variates with the given rates: the minimum of independent
// exponentials is exponential with the sum of the rates. This identity
// is the basis of Eq. (7): with k replicas each needing n_j meetings,
// a(i) ~ Exp(sum_j lambda_j / n_j).
func MinExponentialRate(rates ...float64) float64 {
	sum := 0.0
	for _, r := range rates {
		if r > 0 && !math.IsInf(r, 1) {
			sum += r
		}
	}
	return sum
}

// ExpectedMinExponential returns the mean of the minimum of independent
// exponentials with the given rates, or +Inf when every rate is zero.
func ExpectedMinExponential(rates ...float64) float64 {
	sum := MinExponentialRate(rates...)
	if sum <= 0 {
		return math.Inf(1)
	}
	return 1 / sum
}

// PowerLawWeights returns per-rank popularity weights for n entities
// following a discrete power law (Zipf-like) with exponent alpha > 0:
// weight(rank) = rank^-alpha, rank in [1, n]. The paper's power-law
// mobility model skews exponential meeting rates by node popularity
// (§6.3); these weights supply the skew.
func PowerLawWeights(n int, alpha float64) []float64 {
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		w[i] = math.Pow(float64(i+1), -alpha)
	}
	return w
}

package stat

// CI is a sample mean with the symmetric half-width of its two-sided
// Student-t confidence interval: the interval is [Mean-Half, Mean+Half].
// The replication engine (internal/exp) reduces per-replication metric
// draws to one CI per experiment point.
type CI struct {
	Mean float64
	Half float64
	N    int
}

// Lo returns the interval's lower bound.
func (c CI) Lo() float64 { return c.Mean - c.Half }

// Hi returns the interval's upper bound.
func (c CI) Hi() float64 { return c.Mean + c.Half }

// CI reduces the accumulator to a confidence interval at the given
// level (e.g. 0.95). With fewer than two observations the half-width
// is 0 — a single replication has a mean but no spread estimate.
func (w *Welford) CI(conf float64) CI {
	ci := CI{Mean: w.Mean(), N: w.N()}
	if w.n < 2 {
		return ci
	}
	t, err := StudentTQuantile(conf, float64(w.n-1))
	if err != nil {
		return ci
	}
	ci.Half = t * w.StdErr()
	return ci
}

package stat

import (
	"errors"
	"math"
)

// StudentTCDF returns P(T <= t) for a Student-t random variable with nu
// degrees of freedom, via the regularized incomplete beta function.
func StudentTCDF(t, nu float64) (float64, error) {
	if nu <= 0 {
		return math.NaN(), ErrDomain
	}
	if t == 0 {
		return 0.5, nil
	}
	x := nu / (nu + t*t)
	ib, err := BetaReg(nu/2, 0.5, x)
	if err != nil {
		return math.NaN(), err
	}
	if t > 0 {
		return 1 - ib/2, nil
	}
	return ib / 2, nil
}

// StudentTQuantile returns the t-value such that P(|T| <= t) = conf for
// nu degrees of freedom — the critical value used for two-sided
// confidence intervals (e.g. conf=0.95 gives the familiar t_{0.975,nu}).
// It inverts StudentTCDF by bisection.
func StudentTQuantile(conf, nu float64) (float64, error) {
	if nu <= 0 || conf <= 0 || conf >= 1 {
		return math.NaN(), ErrDomain
	}
	target := 1 - (1-conf)/2 // upper-tail CDF value
	lo, hi := 0.0, 1e3
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		c, err := StudentTCDF(mid, nu)
		if err != nil {
			return math.NaN(), err
		}
		if c < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// TTestResult reports the outcome of a paired two-sided t-test.
type TTestResult struct {
	N        int     // number of pairs
	MeanDiff float64 // mean of (x_i - y_i)
	T        float64 // t statistic
	DF       float64 // degrees of freedom (N-1)
	P        float64 // two-sided p-value
}

// PairedTTest performs a paired two-sided Student t-test on equal-length
// samples x and y (H0: mean difference is zero). The paper uses this to
// compare per source-destination pair delays of RAPID vs MaxProp
// (§6.2.1, p < 0.0005).
func PairedTTest(x, y []float64) (TTestResult, error) {
	if len(x) != len(y) {
		return TTestResult{}, errors.New("stat: paired t-test requires equal-length samples")
	}
	if len(x) < 2 {
		return TTestResult{}, errors.New("stat: paired t-test requires at least 2 pairs")
	}
	var w Welford
	for i := range x {
		w.Add(x[i] - y[i])
	}
	res := TTestResult{N: w.N(), MeanDiff: w.Mean(), DF: float64(w.N() - 1)}
	se := w.StdErr()
	if se == 0 {
		// All differences identical: p is 0 unless the mean is also 0.
		if res.MeanDiff == 0 {
			res.P = 1
		} else {
			res.P = 0
			res.T = math.Inf(sign(res.MeanDiff))
		}
		return res, nil
	}
	res.T = res.MeanDiff / se
	cdf, err := StudentTCDF(math.Abs(res.T), res.DF)
	if err != nil {
		return res, err
	}
	res.P = 2 * (1 - cdf)
	if res.P < 0 {
		res.P = 0
	}
	return res, nil
}

// MeanCI returns the sample mean and the half-width of its two-sided
// confidence interval at the given confidence level (e.g. 0.95), using
// the Student-t critical value. The paper reports 95% confidence
// intervals for simulator validation (Fig. 3).
func MeanCI(xs []float64, conf float64) (mean, halfWidth float64, err error) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN(), errors.New("stat: empty sample")
	}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() < 2 {
		return w.Mean(), 0, nil
	}
	tcrit, err := StudentTQuantile(conf, float64(w.N()-1))
	if err != nil {
		return math.NaN(), math.NaN(), err
	}
	return w.Mean(), tcrit * w.StdErr(), nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

package stat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWelfordAgainstDirect(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	variance := ss / float64(len(xs)-1)
	if !almostEqual(w.Mean(), mean, 1e-12) {
		t.Errorf("mean %v want %v", w.Mean(), mean)
	}
	if !almostEqual(w.Variance(), variance, 1e-12) {
		t.Errorf("variance %v want %v", w.Variance(), variance)
	}
	if w.N() != len(xs) {
		t.Errorf("n=%d", w.N())
	}
}

func TestWelfordMergeEqualsSequential(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n1 := 1 + r.Intn(50)
		n2 := 1 + r.Intn(50)
		var a, b, all Welford
		for i := 0; i < n1; i++ {
			x := r.NormFloat64() * 10
			a.Add(x)
			all.Add(x)
		}
		for i := 0; i < n2; i++ {
			x := r.NormFloat64()*3 + 5
			b.Add(x)
			all.Add(x)
		}
		a.Merge(b)
		return a.N() == all.N() &&
			almostEqual(a.Mean(), all.Mean(), 1e-9) &&
			almostEqual(a.Variance(), all.Variance(), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdErr() != 0 {
		t.Error("empty Welford must report zeros")
	}
	w.Add(42)
	if w.Mean() != 42 || w.Variance() != 0 {
		t.Error("single-sample Welford")
	}
	var empty Welford
	w2 := w
	w2.Merge(empty)
	if w2.Mean() != 42 || w2.N() != 1 {
		t.Error("merge with empty changed state")
	}
	empty.Merge(w)
	if empty.Mean() != 42 || empty.N() != 1 {
		t.Error("merge into empty lost state")
	}
}

func TestMovingAverage(t *testing.T) {
	m := MovingAverage{Default: 99}
	if m.Value() != 99 {
		t.Error("default not reported")
	}
	m.Observe(10)
	m.Observe(20)
	m.Observe(30)
	if !almostEqual(m.Value(), 20, 1e-12) {
		t.Errorf("avg %v want 20", m.Value())
	}
	if m.N() != 3 {
		t.Errorf("n=%d", m.N())
	}
}

func TestEWMA(t *testing.T) {
	e := EWMA{Alpha: 0.5}
	if e.Set() {
		t.Error("zero EWMA claims to be set")
	}
	e.Observe(10)
	if e.Value() != 10 {
		t.Errorf("first observation must assign: %v", e.Value())
	}
	e.Observe(20)
	if !almostEqual(e.Value(), 15, 1e-12) {
		t.Errorf("ewma %v want 15", e.Value())
	}
	// Invalid alpha falls back to 0.5.
	bad := EWMA{Alpha: 7}
	bad.Observe(0)
	bad.Observe(10)
	if !almostEqual(bad.Value(), 5, 1e-12) {
		t.Errorf("fallback alpha: %v", bad.Value())
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0=%v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("q1=%v", got)
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Errorf("median=%v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("q25=%v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile must be NaN")
	}
	// Out-of-range q clamps.
	if got := Quantile(xs, -3); got != 1 {
		t.Errorf("clamped q=-3: %v", got)
	}
	// Input not modified.
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Quantile modified its input")
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	if e.N() != 4 {
		t.Fatalf("n=%d", e.N())
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); !almostEqual(got, c.want, 1e-12) && got != c.want {
			t.Errorf("At(%v)=%v want %v", c.x, got, c.want)
		}
	}
	xs, ys := e.Points(4)
	if len(xs) != 4 || len(ys) != 4 {
		t.Fatalf("points %v %v", xs, ys)
	}
	if ys[len(ys)-1] != 1 {
		t.Errorf("last CDF point %v want 1", ys[len(ys)-1])
	}
}

func TestECDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		e := NewECDF(xs)
		prev := -1.0
		for x := -3.0; x <= 3.0; x += 0.25 {
			v := e.At(x)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{5, 5, 5, 5}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("equal values: %v want 1", got)
	}
	// One user hogs everything: J = 1/n.
	if got := JainIndex([]float64{1, 0, 0, 0}); !almostEqual(got, 0.25, 1e-12) {
		t.Errorf("max unfair: %v want 0.25", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 1 {
		t.Errorf("all-zero: %v want 1", got)
	}
	if !math.IsNaN(JainIndex(nil)) {
		t.Error("empty must be NaN")
	}
}

func TestJainIndexBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		j := JainIndex(xs)
		return j >= 1/float64(n)-1e-12 && j <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

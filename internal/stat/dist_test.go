package stat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExponentialBasics(t *testing.T) {
	e := NewExponentialMean(10)
	if !almostEqual(e.Mean(), 10, 1e-12) {
		t.Fatalf("mean=%v want 10", e.Mean())
	}
	if e.CDF(-1) != 0 || e.CDF(0) != 0 {
		t.Error("CDF must be 0 for x<=0")
	}
	if !almostEqual(e.CDF(10), 1-math.Exp(-1), 1e-12) {
		t.Errorf("CDF(mean)=%v", e.CDF(10))
	}
}

func TestNewExponentialMeanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive mean")
		}
	}()
	NewExponentialMean(0)
}

func TestExponentialSampleMean(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	e := NewExponentialMean(5)
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(e.Sample(r))
	}
	if !almostEqual(w.Mean(), 5, 0.05) {
		t.Errorf("sample mean %v want ~5", w.Mean())
	}
}

func TestGammaCDFMatchesExponentialForShape1(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		lambda := 0.1 + 5*r.Float64()
		x := 10 * r.Float64()
		g := Gamma{K: 1, Lambda: lambda}
		e := Exponential{Lambda: lambda}
		return almostEqual(g.CDF(x), e.CDF(x), 1e-9) || (g.CDF(x) == 0 && e.CDF(x) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGammaSampleMoments(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, g := range []Gamma{{K: 0.5, Lambda: 2}, {K: 3, Lambda: 0.5}, {K: 12, Lambda: 4}} {
		var w Welford
		for i := 0; i < 100000; i++ {
			w.Add(g.Sample(r))
		}
		wantMean := g.K / g.Lambda
		wantVar := g.K / (g.Lambda * g.Lambda)
		if !almostEqual(w.Mean(), wantMean, 0.03) {
			t.Errorf("Gamma%+v sample mean %v want %v", g, w.Mean(), wantMean)
		}
		if !almostEqual(w.Variance(), wantVar, 0.08) {
			t.Errorf("Gamma%+v sample var %v want %v", g, w.Variance(), wantVar)
		}
	}
}

func TestGammaSamplePositive(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g := Gamma{K: 0.3, Lambda: 1}
	for i := 0; i < 10000; i++ {
		if v := g.Sample(r); v < 0 || math.IsNaN(v) {
			t.Fatalf("negative or NaN gamma sample %v", v)
		}
	}
}

func TestMinExponential(t *testing.T) {
	if got := MinExponentialRate(1, 2, 3); got != 6 {
		t.Errorf("MinExponentialRate=%v want 6", got)
	}
	// Zero and infinite rates are ignored (unreachable replicas).
	if got := MinExponentialRate(1, 0, math.Inf(1)); got != 1 {
		t.Errorf("MinExponentialRate with degenerate rates=%v want 1", got)
	}
	if got := ExpectedMinExponential(); !math.IsInf(got, 1) {
		t.Errorf("ExpectedMinExponential()=%v want +Inf", got)
	}
	if got := ExpectedMinExponential(0.5, 0.5); got != 1 {
		t.Errorf("ExpectedMinExponential(0.5,0.5)=%v want 1", got)
	}
}

// Property: min of k iid exponentials with rate lambda behaves like an
// exponential with rate k*lambda (paper §4.1.1). Verified empirically.
func TestMinOfExponentialsIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	lambda := 0.5
	k := 4
	e := Exponential{Lambda: lambda}
	var w Welford
	for i := 0; i < 100000; i++ {
		m := math.Inf(1)
		for j := 0; j < k; j++ {
			if v := e.Sample(r); v < m {
				m = v
			}
		}
		w.Add(m)
	}
	want := 1 / (float64(k) * lambda)
	if !almostEqual(w.Mean(), want, 0.03) {
		t.Errorf("empirical mean of min %v want %v", w.Mean(), want)
	}
}

func TestPowerLawWeights(t *testing.T) {
	w := PowerLawWeights(5, 1)
	if len(w) != 5 {
		t.Fatalf("len=%d", len(w))
	}
	for i := 1; i < len(w); i++ {
		if w[i] >= w[i-1] {
			t.Errorf("weights must strictly decrease: %v", w)
		}
	}
	if w[0] != 1 {
		t.Errorf("first weight %v want 1", w[0])
	}
	if !almostEqual(w[1], 0.5, 1e-12) {
		t.Errorf("w[1]=%v want 0.5 for alpha=1", w[1])
	}
}

func TestDistInterfaceCompliance(t *testing.T) {
	var _ Dist = Exponential{Lambda: 1}
	var _ Dist = Gamma{K: 2, Lambda: 1}
}

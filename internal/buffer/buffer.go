// Package buffer implements per-node packet storage with byte-capacity
// accounting and utility-ordered eviction, per §3.4: "If a node exhausts
// all available storage, packets with the lowest utility are deleted
// first as they contribute least to overall performance. However, a
// source never deletes its own packet unless it receives an
// acknowledgment for the packet."
package buffer

import (
	"math"

	"rapid/internal/packet"
)

// Entry is a buffered replica of a packet plus the per-replica state the
// routing protocols need.
type Entry struct {
	P *packet.Packet
	// ReceivedAt is when this node obtained the replica.
	ReceivedAt float64
	// Hops counts transfers from the source to this replica (0 at the
	// source). MaxProp's head-of-queue rule keys on this.
	Hops int
	// Own marks the source's original copy, which is protected from
	// eviction until acknowledged.
	Own bool
	// Tokens is the replication allowance carried by copy-bounded
	// protocols (Spray and Wait [30] and the replica-bounded schemes
	// [24, 29] of Table 1). Zero for protocols that do not bound
	// copies.
	Tokens int
}

// Utility ranks entries for eviction: lower values are evicted first.
// Implementations must be pure with respect to the store (they are
// called mid-eviction).
type Utility func(*Entry) float64

// Store is a single node's packet buffer. The zero value is unusable;
// construct with New. Store is not safe for concurrent use — the
// simulator is single-threaded by design (deterministic replay).
type Store struct {
	capacity int64 // bytes; <= 0 means unlimited
	used     int64
	entries  map[packet.ID]*Entry
	// order preserves a deterministic iteration sequence (map order is
	// randomized in Go). It is maintained with swap-removal, so the
	// sequence is deterministic for a given operation history but not
	// sorted; routers impose their own orderings.
	order []*Entry
	index map[packet.ID]int
	// byDst tracks buffered bytes per destination, so queue-position
	// estimates for a just-created packet (younger than everything
	// buffered) are O(1). Destination IDs are dense per run, so both
	// per-destination structures are slices indexed by NodeID, grown on
	// demand — map hashing on these paths dominated the routing hot loop
	// at constellation populations.
	byDst []int64
	// queues holds, per destination, the buffered entries in delivery
	// order (oldest (Created, ID) first — §4.1's direct-delivery queue),
	// maintained incrementally so routers never re-scan or re-sort the
	// whole buffer to answer per-destination questions.
	queues [][]*Entry
	// version counts mutations; consumers caching derived structures
	// (RAPID's queue index and delay estimates) compare versions instead
	// of rebuilding per contact.
	version uint64
}

// New returns an empty store with the given byte capacity
// (capacity <= 0 means unlimited, as with the 40 GB deployment buffers
// that never filled).
func New(capacity int64) *Store {
	return &Store{
		capacity: capacity,
		entries:  make(map[packet.ID]*Entry),
		index:    make(map[packet.ID]int),
	}
}

// Capacity returns the configured capacity in bytes (<=0: unlimited).
func (s *Store) Capacity() int64 { return s.capacity }

// Used returns the bytes currently stored.
func (s *Store) Used() int64 { return s.used }

// Free returns remaining capacity, or math.MaxInt64 when unlimited.
func (s *Store) Free() int64 {
	if s.capacity <= 0 {
		return math.MaxInt64
	}
	return s.capacity - s.used
}

// Len returns the number of buffered packets.
func (s *Store) Len() int { return len(s.order) }

// Has reports whether the packet is buffered.
func (s *Store) Has(id packet.ID) bool {
	_, ok := s.entries[id]
	return ok
}

// Get returns the entry for id, or nil.
func (s *Store) Get(id packet.ID) *Entry {
	return s.entries[id]
}

// Entries returns the stored entries in the store's deterministic
// internal order. The returned slice is shared — callers must not
// modify it; copy before sorting.
func (s *Store) Entries() []*Entry { return s.order }

// Insert stores e, evicting lowest-utility unprotected entries as needed
// when a utility function is supplied. It reports whether the packet was
// stored. Inserting an already-present packet is a no-op returning true.
// Inserting with insufficient space and util == nil fails.
func (s *Store) Insert(e *Entry, util Utility) bool {
	if e == nil || e.P == nil {
		return false
	}
	if s.Has(e.P.ID) {
		return true
	}
	need := e.P.Size
	if s.capacity > 0 && need > s.capacity {
		return false
	}
	if s.capacity > 0 && s.used+need > s.capacity {
		if util == nil {
			return false
		}
		if !s.makeRoom(need, util) {
			return false
		}
	}
	s.entries[e.P.ID] = e
	s.index[e.P.ID] = len(s.order)
	s.order = append(s.order, e)
	s.used += need
	s.ensureDst(e.P.Dst)
	s.byDst[e.P.Dst] += need
	q := s.queues[e.P.Dst]
	i := queuePos(q, e.P.Created, e.P.ID)
	q = append(q, nil)
	copy(q[i+1:], q[i:])
	q[i] = e
	s.queues[e.P.Dst] = q
	s.version++
	return true
}

// ensureDst grows the dense per-destination arrays to cover dst.
func (s *Store) ensureDst(dst packet.NodeID) {
	for len(s.byDst) <= int(dst) {
		s.byDst = append(s.byDst, 0)
		s.queues = append(s.queues, nil)
	}
}

// queuePos locates the delivery-order position of (created, id) in a
// destination queue by binary search.
func queuePos(q []*Entry, created float64, id packet.ID) int {
	lo, hi := 0, len(q)
	for lo < hi {
		mid := (lo + hi) / 2
		e := q[mid]
		if e.P.Created < created || (e.P.Created == created && e.P.ID < id) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// makeRoom evicts unprotected entries in increasing utility order until
// `need` bytes fit. It returns false (leaving the store unchanged aside
// from already-performed evictions being rolled forward — eviction is
// destructive, as in the protocol) when protected entries prevent
// reaching the target.
func (s *Store) makeRoom(need int64, util Utility) bool {
	for s.used+need > s.capacity {
		victim := s.lowestUtility(util)
		if victim == nil {
			return false
		}
		s.Remove(victim.P.ID)
	}
	return true
}

// lowestUtility returns the unprotected entry with minimal utility, or
// nil when every entry is protected. Ties break on packet ID for
// determinism.
func (s *Store) lowestUtility(util Utility) *Entry {
	var best *Entry
	bestU := math.Inf(1)
	for _, e := range s.order {
		if e.Own {
			continue
		}
		u := util(e)
		if best == nil || u < bestU || (u == bestU && e.P.ID < best.P.ID) {
			best = e
			bestU = u
		}
	}
	return best
}

// Remove deletes the packet, reporting whether it was present.
func (s *Store) Remove(id packet.ID) bool {
	e, ok := s.entries[id]
	if !ok {
		return false
	}
	delete(s.entries, id)
	i := s.index[id]
	delete(s.index, id)
	last := len(s.order) - 1
	if i != last {
		moved := s.order[last]
		s.order[i] = moved
		s.index[moved.P.ID] = i
	}
	s.order[last] = nil
	s.order = s.order[:last]
	s.used -= e.P.Size
	s.byDst[e.P.Dst] -= e.P.Size
	q := s.queues[e.P.Dst]
	qi := queuePos(q, e.P.Created, e.P.ID)
	copy(q[qi:], q[qi+1:])
	q[len(q)-1] = nil
	s.queues[e.P.Dst] = q[:len(q)-1]
	s.version++
	return true
}

// BytesFor returns the total buffered bytes destined to dst.
func (s *Store) BytesFor(dst packet.NodeID) int64 {
	if dst < 0 || int(dst) >= len(s.byDst) {
		return 0
	}
	return s.byDst[dst]
}

// Version counts mutations of the store's contents.
func (s *Store) Version() uint64 { return s.version }

// Queue returns the buffered entries destined to dst in delivery order
// (oldest first). The returned slice is shared live state — callers
// must not modify or retain it across store mutations.
func (s *Store) Queue(dst packet.NodeID) []*Entry {
	if dst < 0 || int(dst) >= len(s.queues) {
		return nil
	}
	return s.queues[dst]
}

// EachQueue calls f once per destination with buffered packets, passing
// the delivery-ordered queue (same sharing rules as Queue). Iteration
// order over destinations is unspecified (currently ascending by ID).
func (s *Store) EachQueue(f func(dst packet.NodeID, q []*Entry)) {
	for dst, q := range s.queues {
		if len(q) > 0 {
			f(packet.NodeID(dst), q)
		}
	}
}

// Ack marks a packet as delivered network-wide: the local copy (if any)
// is dropped, including a source's own copy ("unless it receives an
// acknowledgment"). Returns whether a copy was dropped.
func (s *Store) Ack(id packet.ID) bool {
	return s.Remove(id)
}

// DropExpired removes packets whose deadline has passed and returns the
// victims. A source's own copy is retained: it can no longer contribute
// to the deadline metric but remains the origin of record until acked
// (matching the protocol's protection rule).
func (s *Store) DropExpired(now float64) []*Entry {
	var out []*Entry
	for _, e := range s.order {
		if !e.Own && e.P.Expired(now) {
			out = append(out, e)
		}
	}
	for _, e := range out {
		s.Remove(e.P.ID)
	}
	return out
}

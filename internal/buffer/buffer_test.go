package buffer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rapid/internal/packet"
)

func mkPkt(id packet.ID, size int64) *packet.Packet {
	return &packet.Packet{ID: id, Src: 0, Dst: 1, Size: size}
}

func TestInsertGetRemove(t *testing.T) {
	s := New(100)
	e := &Entry{P: mkPkt(1, 40), ReceivedAt: 5}
	if !s.Insert(e, nil) {
		t.Fatal("insert failed")
	}
	if !s.Has(1) || s.Get(1) != e || s.Used() != 40 || s.Len() != 1 {
		t.Fatal("state after insert wrong")
	}
	// Duplicate insert is a no-op success.
	if !s.Insert(&Entry{P: mkPkt(1, 40)}, nil) {
		t.Fatal("duplicate insert should succeed")
	}
	if s.Len() != 1 || s.Used() != 40 {
		t.Fatal("duplicate insert changed state")
	}
	if !s.Remove(1) {
		t.Fatal("remove failed")
	}
	if s.Has(1) || s.Used() != 0 || s.Len() != 0 {
		t.Fatal("state after remove wrong")
	}
	if s.Remove(1) {
		t.Fatal("double remove should report false")
	}
}

func TestCapacityEnforcedWithoutUtility(t *testing.T) {
	s := New(100)
	if !s.Insert(&Entry{P: mkPkt(1, 60)}, nil) {
		t.Fatal("first insert")
	}
	if s.Insert(&Entry{P: mkPkt(2, 60)}, nil) {
		t.Fatal("over-capacity insert without utility must fail")
	}
	if s.Used() != 60 {
		t.Fatalf("used=%d", s.Used())
	}
	// A packet bigger than total capacity never fits.
	if s.Insert(&Entry{P: mkPkt(3, 200)}, func(*Entry) float64 { return 0 }) {
		t.Fatal("oversized packet must fail")
	}
}

func TestUnlimitedCapacity(t *testing.T) {
	s := New(0)
	for i := 0; i < 1000; i++ {
		if !s.Insert(&Entry{P: mkPkt(packet.ID(i), 1<<20)}, nil) {
			t.Fatal("unlimited store rejected insert")
		}
	}
	if s.Free() <= 0 {
		t.Error("unlimited store must report huge free space")
	}
}

func TestEvictionOrderByUtility(t *testing.T) {
	s := New(100)
	util := func(e *Entry) float64 { return float64(e.P.ID) } // higher ID = higher utility
	for i := 1; i <= 4; i++ {
		if !s.Insert(&Entry{P: mkPkt(packet.ID(i), 25)}, util) {
			t.Fatalf("insert %d", i)
		}
	}
	// Store full (4×25). Inserting 50 must evict IDs 1 and 2 (lowest
	// utility first).
	if !s.Insert(&Entry{P: mkPkt(10, 50)}, util) {
		t.Fatal("eviction insert failed")
	}
	if s.Has(1) || s.Has(2) {
		t.Error("lowest-utility packets not evicted")
	}
	if !s.Has(3) || !s.Has(4) || !s.Has(10) {
		t.Error("wrong survivors")
	}
	if s.Used() != 100 {
		t.Errorf("used=%d want 100", s.Used())
	}
}

func TestOwnPacketsProtectedFromEviction(t *testing.T) {
	s := New(100)
	util := func(e *Entry) float64 { return float64(e.P.ID) }
	if !s.Insert(&Entry{P: mkPkt(1, 50), Own: true}, util) {
		t.Fatal("insert own")
	}
	if !s.Insert(&Entry{P: mkPkt(2, 50)}, util) {
		t.Fatal("insert relay")
	}
	// ID 1 has lowest utility but is Own: ID 2 must be evicted instead.
	if !s.Insert(&Entry{P: mkPkt(3, 50)}, util) {
		t.Fatal("eviction insert failed")
	}
	if !s.Has(1) {
		t.Error("own packet was evicted")
	}
	if s.Has(2) {
		t.Error("relay packet should have been evicted")
	}
	// All remaining protected: a new insert must fail.
	if !s.Get(3).Own {
		s.Get(3).Own = true
	}
	if s.Insert(&Entry{P: mkPkt(4, 80)}, util) {
		t.Error("insert must fail when only protected entries remain")
	}
}

func TestAckDropsOwnCopy(t *testing.T) {
	s := New(100)
	s.Insert(&Entry{P: mkPkt(1, 50), Own: true}, nil)
	if !s.Ack(1) {
		t.Fatal("ack should drop own copy")
	}
	if s.Has(1) {
		t.Fatal("own copy still present after ack")
	}
	if s.Ack(1) {
		t.Error("double ack reports drop")
	}
}

func TestDropExpired(t *testing.T) {
	s := New(0)
	p1 := &packet.Packet{ID: 1, Size: 10, Created: 0, Deadline: 50}
	p2 := &packet.Packet{ID: 2, Size: 10, Created: 0, Deadline: 200}
	p3 := &packet.Packet{ID: 3, Size: 10, Created: 0} // no deadline
	p4 := &packet.Packet{ID: 4, Size: 10, Created: 0, Deadline: 50}
	s.Insert(&Entry{P: p1}, nil)
	s.Insert(&Entry{P: p2}, nil)
	s.Insert(&Entry{P: p3}, nil)
	s.Insert(&Entry{P: p4, Own: true}, nil)
	dropped := s.DropExpired(100)
	if len(dropped) != 1 || dropped[0].P.ID != 1 {
		t.Fatalf("dropped %v", dropped)
	}
	if s.Has(1) {
		t.Error("expired packet still stored")
	}
	if !s.Has(4) {
		t.Error("own expired packet must be retained")
	}
	if !s.Has(2) || !s.Has(3) {
		t.Error("live packets dropped")
	}
}

// Property: under any operation sequence, used bytes equal the sum of
// stored packet sizes and never exceed capacity.
func TestAccountingInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		capacity := int64(500 + r.Intn(1000))
		s := New(capacity)
		util := func(e *Entry) float64 { return float64(e.P.ID % 7) }
		nextID := packet.ID(1)
		live := map[packet.ID]bool{}
		for op := 0; op < 300; op++ {
			switch r.Intn(3) {
			case 0, 1: // insert
				size := int64(1 + r.Intn(200))
				e := &Entry{P: mkPkt(nextID, size), Own: r.Intn(10) == 0}
				if s.Insert(e, util) {
					live[nextID] = true
				}
				nextID++
			case 2: // remove random known id
				if len(live) > 0 {
					for id := range live {
						s.Remove(id)
						break
					}
				}
			}
			// Recompute invariant.
			var sum int64
			seen := map[packet.ID]bool{}
			for _, e := range s.Entries() {
				if seen[e.P.ID] {
					return false // duplicate entry
				}
				seen[e.P.ID] = true
				sum += e.P.Size
			}
			if sum != s.Used() || (capacity > 0 && s.Used() > capacity) {
				return false
			}
			if len(s.Entries()) != s.Len() {
				return false
			}
			// Index coherence: every entry retrievable.
			for _, e := range s.Entries() {
				if s.Get(e.P.ID) != e {
					return false
				}
			}
			// Refresh live set (evictions).
			for id := range live {
				if !s.Has(id) {
					delete(live, id)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestInsertNil(t *testing.T) {
	s := New(10)
	if s.Insert(nil, nil) || s.Insert(&Entry{}, nil) {
		t.Error("nil inserts must fail")
	}
}

package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// The parallel engine must replay any mix of shard, inline and plain
// events with effects observably identical to the serial loop. The toy
// model here: an array of cells; a shard event adds to two cells during
// its wave phase and appends an audit entry at commit; a plain event
// reads the running total (so it can observe misordering); an inline
// event schedules follow-ups.

type cellEvent struct {
	cells *[]int
	audit *[]string
	a, b  int
	inc   int
	// snapA/snapB capture the event's own post-increment view of its
	// cells during the wave phase. Per the ShardEvent contract the
	// commit phase must not re-read shard state (later batch members
	// may have advanced it); it reports the captured view, which the
	// conflict rule makes deterministic.
	snapA, snapB int
}

func (ev *cellEvent) Execute(e *Engine) {
	ev.ExecuteShard(e)
	ev.CommitShard(e)
}

func (ev *cellEvent) ShardKeys() (int64, int64) { return int64(ev.a), int64(ev.b) }

func (ev *cellEvent) ExecuteShard(e *Engine) {
	(*ev.cells)[ev.a] += ev.inc
	if ev.b != ev.a {
		(*ev.cells)[ev.b] += ev.inc
	}
	ev.snapA = (*ev.cells)[ev.a]
	ev.snapB = (*ev.cells)[ev.b]
}

func (ev *cellEvent) CommitShard(e *Engine) {
	*ev.audit = append(*ev.audit, fmt.Sprintf("commit %d+%d cells %d/%d", ev.a, ev.b, ev.snapA, ev.snapB))
}

// run replays one deterministic random mix of events and returns the
// final cells plus the audit log.
func runMix(workers int, seed int64) ([]int, []string) {
	const nCells = 12
	cells := make([]int, nCells)
	var audit []string
	e := New(1)
	e.SetWorkers(workers)
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < 400; i++ {
		at := float64(r.Intn(50))
		switch r.Intn(10) {
		case 0: // plain event: flush barrier observing global state
			e.ScheduleFunc(at, func(*Engine) {
				total := 0
				for _, c := range cells {
					total += c
				}
				audit = append(audit, fmt.Sprintf("barrier total %d", total))
			})
		case 1: // inline event scheduling a follow-up shard event
			a, b, inc := r.Intn(nCells), r.Intn(nCells), r.Intn(5)
			e.ScheduleBand(at, -1, InlineFunc(func(e *Engine) {
				e.Schedule(e.Now()+1, &cellEvent{cells: &cells, audit: &audit, a: a, b: b, inc: inc})
			}))
		default:
			e.Schedule(at, &cellEvent{
				cells: &cells, audit: &audit,
				a: r.Intn(nCells), b: r.Intn(nCells), inc: r.Intn(5),
			})
		}
	}
	e.Run()
	return cells, audit
}

func TestParallelMatchesSerial(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		wantCells, wantAudit := runMix(1, seed)
		for _, workers := range []int{2, 4, 8} {
			gotCells, gotAudit := runMix(workers, seed)
			for i := range wantCells {
				if gotCells[i] != wantCells[i] {
					t.Fatalf("seed %d workers %d: cell %d = %d, want %d",
						seed, workers, i, gotCells[i], wantCells[i])
				}
			}
			if len(gotAudit) != len(wantAudit) {
				t.Fatalf("seed %d workers %d: audit length %d, want %d",
					seed, workers, len(gotAudit), len(wantAudit))
			}
			for i := range wantAudit {
				if gotAudit[i] != wantAudit[i] {
					t.Fatalf("seed %d workers %d: audit[%d] = %q, want %q",
						seed, workers, i, gotAudit[i], wantAudit[i])
				}
			}
		}
	}
}

func TestParallelRunUntilDeadline(t *testing.T) {
	cells := make([]int, 4)
	var audit []string
	e := New(1)
	e.SetWorkers(4)
	for i := 0; i < 20; i++ {
		e.Schedule(float64(i), &cellEvent{cells: &cells, audit: &audit, a: i % 4, b: (i + 1) % 4, inc: 1})
	}
	e.RunUntil(9.5)
	if got := len(audit); got != 10 {
		t.Fatalf("events committed by deadline: %d, want 10", got)
	}
	if e.Now() != 9.5 {
		t.Fatalf("clock after bounded run: %v, want 9.5", e.Now())
	}
	e.RunUntil(100)
	if got := len(audit); got != 20 {
		t.Fatalf("events committed after resume: %d, want 20", got)
	}
}

func TestParallelCancelledSkipped(t *testing.T) {
	cells := make([]int, 2)
	var audit []string
	e := New(1)
	e.SetWorkers(4)
	h := e.Schedule(1, &cellEvent{cells: &cells, audit: &audit, a: 0, b: 1, inc: 7})
	e.Schedule(2, &cellEvent{cells: &cells, audit: &audit, a: 0, b: 1, inc: 1})
	h.Cancel()
	e.Run()
	if cells[0] != 1 || cells[1] != 1 {
		t.Fatalf("cancelled shard event ran: cells %v", cells)
	}
}

// cancelAtCommit is a cellEvent whose commit phase cancels another
// scheduled event — the contract-legal way a batch-mate can die after
// collection. Execute is spelled out because Go embedding is not
// virtual: cellEvent.Execute would call cellEvent.CommitShard, not
// ours.
type cancelAtCommit struct {
	cellEvent
	target *Handle
}

func (ev *cancelAtCommit) Execute(e *Engine) {
	ev.ExecuteShard(e)
	ev.CommitShard(e)
}

func (ev *cancelAtCommit) CommitShard(e *Engine) {
	ev.cellEvent.CommitShard(e)
	ev.target.Cancel()
}

// runCommitCancelMix schedules, at one instant, a canceller whose
// commit kills a conflicting later event, plus an independent
// bystander. All three land in one batch under the parallel engine, so
// the cancelled event is dead only after collection — the exact window
// the old flushBatch ignored.
func runCommitCancelMix(workers int) ([]int, []string, uint64) {
	cells := make([]int, 4)
	var audit []string
	e := New(1)
	e.SetWorkers(workers)
	canceller := &cancelAtCommit{cellEvent: cellEvent{cells: &cells, audit: &audit, a: 0, b: 1, inc: 3}}
	e.Schedule(1, canceller)
	target := e.Schedule(1, &cellEvent{cells: &cells, audit: &audit, a: 1, b: 2, inc: 5})
	canceller.target = &target
	e.Schedule(1, &cellEvent{cells: &cells, audit: &audit, a: 3, b: 3, inc: 1})
	e.Run()
	return cells, audit, e.Executed
}

// TestParallelCommitCancelMatchesSerial is the regression test for the
// flushBatch dead-item bug: a commit-phase cancel of a conflicting
// batch-mate must suppress both of its phases and its Executed count,
// exactly as the serial loop skips the dead event at pop. Against the
// old flushBatch this fails three ways: the target's wave contaminates
// cells 1 and 2, its commit appends an extra audit line, and Executed
// counts it.
func TestParallelCommitCancelMatchesSerial(t *testing.T) {
	wantCells, wantAudit, wantExec := runCommitCancelMix(1)
	if wantExec != 2 {
		t.Fatalf("serial Executed = %d, want 2 (cancelled event uncounted)", wantExec)
	}
	for _, workers := range []int{2, 4, 8} {
		gotCells, gotAudit, gotExec := runCommitCancelMix(workers)
		if fmt.Sprint(gotCells) != fmt.Sprint(wantCells) {
			t.Fatalf("workers %d: cells %v, want %v", workers, gotCells, wantCells)
		}
		if fmt.Sprint(gotAudit) != fmt.Sprint(wantAudit) {
			t.Fatalf("workers %d: audit %q, want %q", workers, gotAudit, wantAudit)
		}
		if gotExec != wantExec {
			t.Fatalf("workers %d: Executed %d, want %d", workers, gotExec, wantExec)
		}
	}
}

// TestParallelCollectCancelPending pins the pop check: an OnCollect (or
// inline) cancel of a same-instant event that has NOT yet been popped
// is exact in both engines — the target is skipped at pop and never
// collected.
func TestParallelCollectCancelPending(t *testing.T) {
	for _, workers := range []int{1, 4} {
		cells := make([]int, 3)
		var audit []string
		e := New(1)
		e.SetWorkers(workers)
		var target Handle
		e.ScheduleBand(1, -1, InlineFunc(func(*Engine) { target.Cancel() }))
		target = e.Schedule(1, &cellEvent{cells: &cells, audit: &audit, a: 0, b: 1, inc: 7})
		e.Schedule(1, &cellEvent{cells: &cells, audit: &audit, a: 2, b: 2, inc: 1})
		e.Run()
		if cells[0] != 0 || cells[1] != 0 || cells[2] != 1 {
			t.Fatalf("workers %d: cells %v, want [0 0 1]", workers, cells)
		}
		if e.Executed != 2 {
			t.Fatalf("workers %d: Executed %d, want 2", workers, e.Executed)
		}
	}
}

// TestParallelBatchedCancelSuppressed is the minimal two-event form of
// the commit-cancel regression: with no bystander in the batch, the
// cancelled event must still be suppressed in both phases and
// uncounted.
func TestParallelBatchedCancelSuppressed(t *testing.T) {
	cells := make([]int, 3)
	var audit []string
	e := New(1)
	e.SetWorkers(4)
	canceller := &cancelAtCommit{cellEvent: cellEvent{cells: &cells, audit: &audit, a: 0, b: 0, inc: 1}}
	e.Schedule(1, canceller)
	target := e.Schedule(1, &cellEvent{cells: &cells, audit: &audit, a: 0, b: 1, inc: 9})
	canceller.target = &target
	e.Run()
	if cells[0] != 1 || cells[1] != 0 {
		t.Fatalf("cancelled batch-mate ran: cells %v", cells)
	}
	if e.Executed != 1 {
		t.Fatalf("Executed %d, want 1", e.Executed)
	}
}

// TestParallelAfterEventFallsBack pins the gate: an engine with an
// AfterEvent hook must use the serial loop even when workers are set.
func TestParallelAfterEventFallsBack(t *testing.T) {
	e := New(1)
	e.SetWorkers(8)
	count := 0
	e.AfterEvent = func(*Engine) { count++ }
	cells := make([]int, 2)
	var audit []string
	for i := 0; i < 5; i++ {
		e.Schedule(float64(i), &cellEvent{cells: &cells, audit: &audit, a: 0, b: 1, inc: 1})
	}
	e.Run()
	if count != 5 {
		t.Fatalf("AfterEvent fired %d times, want 5", count)
	}
}

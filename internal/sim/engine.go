// Package sim provides the discrete-event simulation engine that drives
// every experiment in the RAPID reproduction.
//
// The engine is deliberately minimal: a binary-heap event queue keyed by
// (time, sequence), a simulation clock, and named deterministic random
// streams. Scheduling an event at a time earlier than the clock is a
// programming error and panics — DTN contact traces are processed in
// strict time order, and silently reordering events would corrupt the
// causality of metadata propagation.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"rapid/internal/shard"
)

// Event is a unit of simulated work executed at a point in time.
type Event interface {
	// Execute runs the event. The engine's clock is already advanced to
	// the event's scheduled time when Execute is called.
	Execute(e *Engine)
}

// EventFunc adapts a plain function to the Event interface.
type EventFunc func(e *Engine)

// Execute implements Event.
func (f EventFunc) Execute(e *Engine) { f(e) }

// ShardEvent is an Event the parallel engine may batch with other shard
// events and execute concurrently. Two shard events conflict when their
// key sets intersect; non-conflicting events must commute. The split
// contract is:
//
//	Execute(e) ≡ ExecuteShard(e); CommitShard(e)
//
// ExecuteShard runs inside a conflict-free wave, possibly concurrently
// with other events and possibly after the clock has advanced past the
// event's own timestamp — it must not read e.Now(), schedule events, or
// touch any state outside the shards named by ShardKeys (plus
// event-private state). CommitShard runs serially, in exact heap pop
// order, and is where globally ordered side effects (collector folds,
// scheduling) belong. Events must carry their own timestamp if either
// phase needs it.
type ShardEvent interface {
	Event
	// ShardKeys returns the (at most two) shard identities the event
	// reads or writes during ExecuteShard. For a contact session these
	// are the endpoint node IDs; single-shard events return the same
	// key twice.
	ShardKeys() (a, b int64)
	ExecuteShard(e *Engine)
	CommitShard(e *Engine)
}

// CollectEvent is an optional ShardEvent refinement: OnCollect runs on
// the engine goroutine at the event's exact pop position, while the
// batch is still being collected and before any of its waves execute.
// It is the slot for bookkeeping that must happen in total pop order
// *before* dependents can observe it — registering a packet's delivery
// record before any same-batch session could deliver the packet. Like
// inline events, its effects must be invisible to the wave phase of
// batch-mates popped earlier (they run after OnCollect).
type CollectEvent interface {
	ShardEvent
	OnCollect(e *Engine)
}

// InlineEvent marks an Event the parallel engine executes immediately
// during batch collection, without flushing pending shard events first.
// Only events whose effects are confined to the engine itself plus
// event-private state (the lazy stream pumps: they advance a private
// cursor and schedule future events) qualify — anything touching node
// or collector state must not be inline.
type InlineEvent interface {
	Event
	InlineShard()
}

// InlineFunc adapts a plain function to InlineEvent.
type InlineFunc func(e *Engine)

// Execute implements Event.
func (f InlineFunc) Execute(e *Engine) { f(e) }

// InlineShard implements InlineEvent.
func (InlineFunc) InlineShard() {}

// item is a scheduled event inside the queue.
type item struct {
	at   float64
	band int32  // priority among same-time events; lower runs first
	seq  uint64 // tiebreaker: FIFO among same-time, same-band events
	ev   Event
	idx  int
	dead bool
}

// eventHeap implements heap.Interface ordered by (at, band, seq).
type eventHeap []*item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].band != h[j].band {
		return h[i].band < h[j].band
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	it := x.(*item)
	it.idx = len(*h)
	*h = append(*h, it)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct{ it *item }

// Cancel marks the event as dead; it will not execute and is not
// counted in Executed. Cancelling an already-executed or
// already-cancelled event is a no-op.
//
// A cancel that fires from a position that serially precedes the
// target — any event popped earlier while the target is still queued —
// is exact in both engines: the serial loop skips the target at pop,
// and the parallel loop's pop check does the same. The parallel loop
// additionally honors cancels that land after the target was collected
// into a pending batch but before its wave executes; the intended such
// channel is an earlier batch-mate's CommitShard cancelling a
// conflicting (shard-key-sharing) later event, which the serial loop
// would likewise skip. Cancelling a batch-mate from a position that
// serially *follows* it (an OnCollect or inline pump popped after the
// target) violates the CollectEvent/InlineEvent contracts — the serial
// engine has already run the target — and is suppressed on a
// best-effort basis only.
func (h Handle) Cancel() {
	if h.it != nil {
		h.it.dead = true
	}
}

// Engine is a deterministic discrete-event simulator. The zero value is
// not usable; construct with New.
type Engine struct {
	now     float64
	queue   eventHeap
	seq     uint64
	seed    int64
	streams map[string]*rand.Rand
	// Executed counts events run, useful for progress accounting and
	// regression tests on determinism.
	Executed uint64
	// AfterEvent, when non-nil, runs after every executed event — the
	// instrumentation point conformance harnesses use to assert
	// invariants (buffer occupancy, budget conservation) at event
	// granularity without perturbing the event stream. Setting it
	// disables the parallel path: the hook's contract is one callback
	// per fully applied event, which batching would violate.
	AfterEvent func(*Engine)

	workers int
	planner shard.Planner
	batch   []*item
	rank    []int // scratch: wave index per batch item, reused across flushes
}

// New returns an engine whose named random streams derive from seed.
func New(seed int64) *Engine {
	return &Engine{seed: seed, streams: make(map[string]*rand.Rand)}
}

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Len returns the number of pending (possibly cancelled) events.
func (e *Engine) Len() int { return len(e.queue) }

// Schedule enqueues ev to run at time at in the default band 0. It
// panics if at precedes the current clock (events cannot be scheduled
// in the past).
func (e *Engine) Schedule(at float64, ev Event) Handle {
	return e.ScheduleBand(at, 0, ev)
}

// ScheduleBand enqueues ev to run at time at with an explicit
// same-time priority band: among events at the same instant, lower
// bands run first, and FIFO sequence breaks ties within a band. Bands
// let lazily generated event streams (streaming workloads, contact-plan
// cursors) reproduce the exact execution order of their fully
// materialized upfront-scheduled equivalents, whose ordering at shared
// instants is otherwise fixed by insertion sequence alone. All direct
// Schedule calls use band 0, so the banded heap is byte-identical to
// the historical (time, seq) ordering unless a caller opts in.
func (e *Engine) ScheduleBand(at float64, band int32, ev Event) Handle {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	it := &item{at: at, band: band, seq: e.seq, ev: ev}
	e.seq++
	heap.Push(&e.queue, it)
	return Handle{it: it}
}

// ScheduleFunc is shorthand for Schedule with an EventFunc.
func (e *Engine) ScheduleFunc(at float64, f func(*Engine)) Handle {
	return e.Schedule(at, EventFunc(f))
}

// ScheduleBandFunc is shorthand for ScheduleBand with an EventFunc.
func (e *Engine) ScheduleBandFunc(at float64, band int32, f func(*Engine)) Handle {
	return e.ScheduleBand(at, band, EventFunc(f))
}

// Span is a pair of scheduled events bracketing an interval — the
// contact-start/contact-end pair of a duration-aware transfer window.
type Span struct {
	Open, Close Handle
}

// Cancel cancels both ends of the span.
func (s Span) Cancel() {
	s.Open.Cancel()
	s.Close.Cancel()
}

// ScheduleSpan schedules onOpen at start and onClose at end, returning
// handles to both. It panics if end precedes start (a window cannot
// close before it opens) or start precedes the clock. Same-time spans
// (start == end) are legal: the open event runs before the close event
// by FIFO ordering.
func (e *Engine) ScheduleSpan(start, end float64, onOpen, onClose func(*Engine)) Span {
	if end < start {
		panic(fmt.Sprintf("sim: span end %v before start %v", end, start))
	}
	return Span{
		Open:  e.ScheduleFunc(start, onOpen),
		Close: e.ScheduleFunc(end, onClose),
	}
}

// Step executes the next pending event, returning false when the queue
// is empty. Cancelled events are skipped silently.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		it := heap.Pop(&e.queue).(*item)
		if it.dead {
			continue
		}
		e.now = it.at
		e.Executed++
		it.ev.Execute(e)
		if e.AfterEvent != nil {
			e.AfterEvent(e)
		}
		return true
	}
	return false
}

// Run executes events until the queue empties.
func (e *Engine) Run() {
	if e.parallel() {
		e.runParallelUntil(0, false)
		return
	}
	for e.Step() {
	}
}

// RunUntil executes events with time <= deadline, advancing the clock to
// exactly deadline afterwards. Remaining events stay queued.
func (e *Engine) RunUntil(deadline float64) {
	if e.parallel() {
		e.runParallelUntil(deadline, true)
		return
	}
	for len(e.queue) > 0 {
		// Peek.
		next := e.queue[0]
		if next.dead {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// SetWorkers sets the number of worker goroutines the engine may spread
// conflict-free ShardEvent waves across. n <= 1 keeps the historical
// fully serial loop. The parallel loop is byte-identical to the serial
// one for any event mix honoring the ShardEvent/InlineEvent contracts.
func (e *Engine) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	e.workers = n
}

// Workers reports the configured worker count (0 and 1 both mean serial).
func (e *Engine) Workers() int { return e.workers }

func (e *Engine) parallel() bool {
	return e.workers > 1 && e.AfterEvent == nil
}

// batchCap bounds how many consecutive ShardEvents are collected before
// a flush: enough to keep the pool busy across waves, small enough that
// per-batch planning state stays cache-resident.
func (e *Engine) batchCap() int {
	c := 32 * e.workers
	if c < 64 {
		c = 64
	}
	if c > 1024 {
		c = 1024
	}
	return c
}

// runParallelUntil is the batching counterpart of the Step loop. It
// pops events in exact heap order, accumulating maximal runs of
// consecutive ShardEvents (inline events execute immediately without
// breaking a run); each run is partitioned into conflict-free waves,
// executed across the pool, then committed serially in pop order. Any
// other event is a flush barrier and runs serially in place, so the
// total order of observable effects matches the serial engine exactly.
func (e *Engine) runParallelUntil(deadline float64, bounded bool) {
	limit := e.batchCap()
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.dead {
			heap.Pop(&e.queue)
			continue
		}
		if bounded && next.at > deadline {
			break
		}
		switch ev := next.ev.(type) {
		case ShardEvent:
			heap.Pop(&e.queue)
			e.now = next.at
			e.Executed++
			if ce, ok := next.ev.(CollectEvent); ok {
				ce.OnCollect(e)
			}
			e.batch = append(e.batch, next)
			if len(e.batch) >= limit {
				e.flushBatch()
			}
		case InlineEvent:
			heap.Pop(&e.queue)
			e.now = next.at
			e.Executed++
			ev.Execute(e)
		default:
			e.flushBatch()
			heap.Pop(&e.queue)
			e.now = next.at
			e.Executed++
			ev.Execute(e)
		}
	}
	e.flushBatch()
	if bounded && e.now < deadline {
		e.now = deadline
	}
}

// flushBatch executes and commits the pending ShardEvent batch.
//
// Cancellation stays live across the flush: an item cancelled after
// collection — the contract-legal channel is an earlier batch-mate's
// CommitShard — is skipped in both phases and uncounted from Executed
// (collection counted it eagerly), exactly as the serial loop skips a
// dead event at pop. To make that skip effective before the target
// runs, waves execute one at a time and, between waves, the maximal
// pop-order prefix of items whose wave has already executed is
// committed. A conflicting cancel target always plans into a strictly
// later wave than its canceller, so the canceller's commit — and the
// cancel — lands before the target's wave phase unless the commit is
// itself stalled behind an even later-wave pop predecessor. Commits
// still run serially in exact pop order; running a commit before the
// waves of later pops is *more* serial-faithful, not less, since the
// serial loop commits event i before executing any j > i. The dead
// check inside the wave closure is race-free: dead flags are written
// on the engine goroutine between waves, and shard.Run's spawn/join
// orders those writes before the next wave's reads.
func (e *Engine) flushBatch() {
	n := len(e.batch)
	if n == 0 {
		return
	}
	if n == 1 {
		if it := e.batch[0]; it.dead {
			e.Executed--
		} else {
			ev := it.ev.(ShardEvent)
			ev.ExecuteShard(e)
			ev.CommitShard(e)
		}
	} else {
		waves := e.planner.Plan(n, func(i int) (int64, int64) {
			return e.batch[i].ev.(ShardEvent).ShardKeys()
		})
		if cap(e.rank) < n {
			e.rank = make([]int, n)
		}
		rank := e.rank[:n]
		for w, wave := range waves {
			for _, i := range wave {
				rank[i] = w
			}
		}
		committed := 0
		commitPrefix := func(executedWaves int) {
			for committed < n && rank[committed] < executedWaves {
				if it := e.batch[committed]; it.dead {
					e.Executed--
				} else {
					it.ev.(ShardEvent).CommitShard(e)
				}
				committed++
			}
		}
		for w := range waves {
			commitPrefix(w)
			shard.Run(waves[w:w+1], e.workers, func(i int) {
				if it := e.batch[i]; !it.dead {
					it.ev.(ShardEvent).ExecuteShard(e)
				}
			})
		}
		commitPrefix(len(waves))
	}
	for i := range e.batch {
		e.batch[i] = nil
	}
	e.batch = e.batch[:0]
}

// Rand returns the named deterministic random stream, creating it on
// first use. Distinct names yield independent streams derived from the
// engine seed, so adding a new consumer of randomness does not perturb
// existing streams — a property the trace-validation experiment
// (Fig. 3) depends on.
func (e *Engine) Rand(name string) *rand.Rand {
	if r, ok := e.streams[name]; ok {
		return r
	}
	r := rand.New(rand.NewSource(e.seed ^ hashString(name)))
	e.streams[name] = r
	return r
}

// hashString is FNV-1a, inlined to avoid importing hash/fnv for a single
// 64-bit hash.
func hashString(s string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return int64(h)
}

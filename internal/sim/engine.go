// Package sim provides the discrete-event simulation engine that drives
// every experiment in the RAPID reproduction.
//
// The engine is deliberately minimal: a binary-heap event queue keyed by
// (time, sequence), a simulation clock, and named deterministic random
// streams. Scheduling an event at a time earlier than the clock is a
// programming error and panics — DTN contact traces are processed in
// strict time order, and silently reordering events would corrupt the
// causality of metadata propagation.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Event is a unit of simulated work executed at a point in time.
type Event interface {
	// Execute runs the event. The engine's clock is already advanced to
	// the event's scheduled time when Execute is called.
	Execute(e *Engine)
}

// EventFunc adapts a plain function to the Event interface.
type EventFunc func(e *Engine)

// Execute implements Event.
func (f EventFunc) Execute(e *Engine) { f(e) }

// item is a scheduled event inside the queue.
type item struct {
	at   float64
	band int32  // priority among same-time events; lower runs first
	seq  uint64 // tiebreaker: FIFO among same-time, same-band events
	ev   Event
	idx  int
	dead bool
}

// eventHeap implements heap.Interface ordered by (at, band, seq).
type eventHeap []*item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].band != h[j].band {
		return h[i].band < h[j].band
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	it := x.(*item)
	it.idx = len(*h)
	*h = append(*h, it)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct{ it *item }

// Cancel marks the event as dead; it will be skipped when popped.
// Cancelling an already-executed or already-cancelled event is a no-op.
func (h Handle) Cancel() {
	if h.it != nil {
		h.it.dead = true
	}
}

// Engine is a deterministic discrete-event simulator. The zero value is
// not usable; construct with New.
type Engine struct {
	now     float64
	queue   eventHeap
	seq     uint64
	seed    int64
	streams map[string]*rand.Rand
	// Executed counts events run, useful for progress accounting and
	// regression tests on determinism.
	Executed uint64
	// AfterEvent, when non-nil, runs after every executed event — the
	// instrumentation point conformance harnesses use to assert
	// invariants (buffer occupancy, budget conservation) at event
	// granularity without perturbing the event stream.
	AfterEvent func(*Engine)
}

// New returns an engine whose named random streams derive from seed.
func New(seed int64) *Engine {
	return &Engine{seed: seed, streams: make(map[string]*rand.Rand)}
}

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Len returns the number of pending (possibly cancelled) events.
func (e *Engine) Len() int { return len(e.queue) }

// Schedule enqueues ev to run at time at in the default band 0. It
// panics if at precedes the current clock (events cannot be scheduled
// in the past).
func (e *Engine) Schedule(at float64, ev Event) Handle {
	return e.ScheduleBand(at, 0, ev)
}

// ScheduleBand enqueues ev to run at time at with an explicit
// same-time priority band: among events at the same instant, lower
// bands run first, and FIFO sequence breaks ties within a band. Bands
// let lazily generated event streams (streaming workloads, contact-plan
// cursors) reproduce the exact execution order of their fully
// materialized upfront-scheduled equivalents, whose ordering at shared
// instants is otherwise fixed by insertion sequence alone. All direct
// Schedule calls use band 0, so the banded heap is byte-identical to
// the historical (time, seq) ordering unless a caller opts in.
func (e *Engine) ScheduleBand(at float64, band int32, ev Event) Handle {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	it := &item{at: at, band: band, seq: e.seq, ev: ev}
	e.seq++
	heap.Push(&e.queue, it)
	return Handle{it: it}
}

// ScheduleFunc is shorthand for Schedule with an EventFunc.
func (e *Engine) ScheduleFunc(at float64, f func(*Engine)) Handle {
	return e.Schedule(at, EventFunc(f))
}

// ScheduleBandFunc is shorthand for ScheduleBand with an EventFunc.
func (e *Engine) ScheduleBandFunc(at float64, band int32, f func(*Engine)) Handle {
	return e.ScheduleBand(at, band, EventFunc(f))
}

// Span is a pair of scheduled events bracketing an interval — the
// contact-start/contact-end pair of a duration-aware transfer window.
type Span struct {
	Open, Close Handle
}

// Cancel cancels both ends of the span.
func (s Span) Cancel() {
	s.Open.Cancel()
	s.Close.Cancel()
}

// ScheduleSpan schedules onOpen at start and onClose at end, returning
// handles to both. It panics if end precedes start (a window cannot
// close before it opens) or start precedes the clock. Same-time spans
// (start == end) are legal: the open event runs before the close event
// by FIFO ordering.
func (e *Engine) ScheduleSpan(start, end float64, onOpen, onClose func(*Engine)) Span {
	if end < start {
		panic(fmt.Sprintf("sim: span end %v before start %v", end, start))
	}
	return Span{
		Open:  e.ScheduleFunc(start, onOpen),
		Close: e.ScheduleFunc(end, onClose),
	}
}

// Step executes the next pending event, returning false when the queue
// is empty. Cancelled events are skipped silently.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		it := heap.Pop(&e.queue).(*item)
		if it.dead {
			continue
		}
		e.now = it.at
		e.Executed++
		it.ev.Execute(e)
		if e.AfterEvent != nil {
			e.AfterEvent(e)
		}
		return true
	}
	return false
}

// Run executes events until the queue empties.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time <= deadline, advancing the clock to
// exactly deadline afterwards. Remaining events stay queued.
func (e *Engine) RunUntil(deadline float64) {
	for len(e.queue) > 0 {
		// Peek.
		next := e.queue[0]
		if next.dead {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Rand returns the named deterministic random stream, creating it on
// first use. Distinct names yield independent streams derived from the
// engine seed, so adding a new consumer of randomness does not perturb
// existing streams — a property the trace-validation experiment
// (Fig. 3) depends on.
func (e *Engine) Rand(name string) *rand.Rand {
	if r, ok := e.streams[name]; ok {
		return r
	}
	r := rand.New(rand.NewSource(e.seed ^ hashString(name)))
	e.streams[name] = r
	return r
}

// hashString is FNV-1a, inlined to avoid importing hash/fnv for a single
// 64-bit hash.
func hashString(s string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return int64(h)
}

package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := New(1)
	var got []float64
	times := []float64{5, 1, 3, 2, 4}
	for _, at := range times {
		at := at
		e.ScheduleFunc(at, func(en *Engine) {
			got = append(got, en.Now())
		})
	}
	e.Run()
	want := append([]float64(nil), times...)
	sort.Float64s(want)
	if len(got) != len(want) {
		t.Fatalf("executed %d events want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v want %v", got, want)
		}
	}
}

func TestEngineFIFOAmongEqualTimes(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.ScheduleFunc(7, func(*Engine) { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New(1)
	e.ScheduleFunc(5, func(*Engine) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past must panic")
		}
	}()
	e.ScheduleFunc(1, func(*Engine) {})
}

func TestEventsCanScheduleMoreEvents(t *testing.T) {
	e := New(1)
	count := 0
	var chain func(en *Engine)
	chain = func(en *Engine) {
		count++
		if count < 5 {
			en.ScheduleFunc(en.Now()+1, chain)
		}
	}
	e.ScheduleFunc(0, chain)
	e.Run()
	if count != 5 {
		t.Errorf("chain executed %d times want 5", count)
	}
	if e.Now() != 4 {
		t.Errorf("final time %v want 4", e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := New(1)
	ran := false
	h := e.ScheduleFunc(1, func(*Engine) { ran = true })
	h.Cancel()
	e.Run()
	if ran {
		t.Error("cancelled event executed")
	}
	if e.Executed != 0 {
		t.Errorf("Executed=%d want 0", e.Executed)
	}
	// Double-cancel and cancel-after-run are no-ops.
	h.Cancel()
	var zero Handle
	zero.Cancel()
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	var got []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		at := at
		e.ScheduleFunc(at, func(en *Engine) { got = append(got, en.Now()) })
	}
	e.RunUntil(3)
	if len(got) != 3 {
		t.Fatalf("executed %d events want 3: %v", len(got), got)
	}
	if e.Now() != 3 {
		t.Errorf("clock %v want 3", e.Now())
	}
	if e.Len() != 2 {
		t.Errorf("pending %d want 2", e.Len())
	}
	// RunUntil advances the clock even with no events in range.
	e.RunUntil(3.5)
	if e.Now() != 3.5 {
		t.Errorf("clock %v want 3.5", e.Now())
	}
	e.Run()
	if len(got) != 5 {
		t.Errorf("total executed %d want 5", len(got))
	}
}

func TestRandStreamsIndependentAndDeterministic(t *testing.T) {
	a1 := New(99).Rand("alpha").Float64()
	a2 := New(99).Rand("alpha").Float64()
	if a1 != a2 {
		t.Error("same seed+name must reproduce")
	}
	b := New(99).Rand("beta").Float64()
	if a1 == b {
		t.Error("different names should give different streams")
	}
	c := New(100).Rand("alpha").Float64()
	if a1 == c {
		t.Error("different seeds should give different streams")
	}
	// Creating a new stream must not perturb an existing one.
	e1 := New(7)
	r := e1.Rand("x")
	_ = r.Float64()
	next1 := e1.Rand("x").Float64()

	e2 := New(7)
	r2 := e2.Rand("x")
	_ = r2.Float64()
	_ = e2.Rand("y") // interleaved creation
	next2 := e2.Rand("x").Float64()
	if next1 != next2 {
		t.Error("creating stream y perturbed stream x")
	}
}

// Property: for any batch of events with random times, execution order is
// sorted by time and the engine executes all of them exactly once.
func TestEngineOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := New(seed)
		n := 1 + r.Intn(200)
		var got []float64
		for i := 0; i < n; i++ {
			at := r.Float64() * 1000
			e.ScheduleFunc(at, func(en *Engine) { got = append(got, en.Now()) })
		}
		e.Run()
		if len(got) != n {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				return false
			}
		}
		return e.Executed == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestStepReturnsFalseOnEmpty(t *testing.T) {
	e := New(1)
	if e.Step() {
		t.Error("Step on empty queue must return false")
	}
}

func TestScheduleSpan(t *testing.T) {
	e := New(1)
	var log []string
	e.ScheduleSpan(10, 20,
		func(*Engine) { log = append(log, "open") },
		func(*Engine) { log = append(log, "close") })
	// A same-time span opens before it closes (FIFO among equal times).
	e.ScheduleSpan(15, 15,
		func(*Engine) { log = append(log, "open2") },
		func(*Engine) { log = append(log, "close2") })
	e.Run()
	want := []string{"open", "open2", "close2", "close"}
	if len(log) != len(want) {
		t.Fatalf("log %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log %v want %v", log, want)
		}
	}
}

func TestScheduleSpanInvertedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("span closing before it opens must panic")
		}
	}()
	New(1).ScheduleSpan(20, 10, func(*Engine) {}, func(*Engine) {})
}

func TestSpanCancel(t *testing.T) {
	e := New(1)
	ran := 0
	sp := e.ScheduleSpan(5, 6, func(*Engine) { ran++ }, func(*Engine) { ran++ })
	sp.Cancel()
	e.Run()
	if ran != 0 {
		t.Fatalf("cancelled span still ran %d events", ran)
	}
}

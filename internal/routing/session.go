package routing

import (
	"math"

	"rapid/internal/buffer"
	"rapid/internal/control"
	"rapid/internal/metrics"
)

// Session executes one transfer opportunity between two nodes,
// implementing the outer loop of Protocol rapid (§3.4) in a
// protocol-agnostic way:
//
//  1. metadata exchange (control plane; byte-accounted, possibly capped)
//  2. purge of packets now known to be delivered
//  3. direct delivery, both directions
//  4. replication, both directions interleaved round-robin in each
//     side's decreasing marginal-utility order
//  5. termination when the byte budget is exhausted or both sides run
//     out of candidates
//
// The byte budget is shared between directions and between control and
// data, matching the merged connection events of the deployment (§5).
type Session struct {
	net      *Network
	x, y     *Node
	budget   int64
	capacity int64
	now      float64
	// stats receives the session's channel accounting. A point session
	// points it at owned and folds into the collector at finish, which
	// is what lets the parallel engine run the session body in a
	// concurrent wave and apply counters in exact serial commit order.
	// A windowed session outlives its opening event and is always
	// driven serially, so it points stats at the collector directly.
	stats *metrics.Delta
	owned metrics.Delta
}

// RunSession processes a meeting between nodes a and b with the given
// transfer-opportunity size. A meeting with a churned-down endpoint
// never happens: the dark radio neither forwards nor receives, so no
// bytes move, nothing is observed, and no opportunity is accounted.
func RunSession(net *Network, a, b *Node, bytes int64) {
	s := beginSession(net, a, b, bytes, net.Now())
	if s == nil {
		return
	}
	s.run()
	s.finish()
}

// beginSession constructs a point session, or nil when a churned-down
// endpoint suppresses the meeting. now is passed explicitly because the
// parallel engine executes sessions after the clock has moved past
// their instant.
func beginSession(net *Network, a, b *Node, bytes int64, now float64) *Session {
	if a.Down || b.Down {
		return nil
	}
	s := &Session{net: net, x: a, y: b, budget: bytes, capacity: bytes, now: now}
	s.stats = &s.owned
	return s
}

// run executes the session body. It touches only the two endpoint nodes
// and the session's stats delta (plus read-only run state: config,
// delivery records), which is the confinement the parallel engine's
// conflict-free waves rely on.
func (s *Session) run() {
	s.stats.Meetings++
	s.stats.OpportunityBytes += s.capacity

	// Both ends observe the opportunity size (the moving average that
	// becomes B in Estimate-Delay).
	s.x.Ctl.ObserveTransfer(s.capacity)
	s.y.Ctl.ObserveTransfer(s.capacity)

	s.exchangeMetadata()
	s.purgeAcked(s.x)
	s.purgeAcked(s.y)
	s.gossip()

	s.directDeliver(s.x, s.y)
	s.directDeliver(s.y, s.x)
	s.replicate()
}

// finish folds the session's accounting into the collector and fires
// the opportunity hook — the globally ordered effects of a point
// session, applied in commit order.
func (s *Session) finish() {
	s.net.Collector.Delta.Add(&s.owned)
	if h := s.net.hooks; h != nil && h.OnOpportunityDone != nil {
		h.OnOpportunityDone(s.x.ID, s.y.ID, s.capacity, s.capacity-s.budget, false, s.now)
	}
}

// Remaining returns the unspent byte budget (visible to routers that
// want budget-aware planning).
func (s *Session) Remaining() int64 { return s.budget }

// exchangeMetadata runs the control-plane exchange and charges its
// bytes against the opportunity.
func (s *Session) exchangeMetadata() {
	cfg := s.net.Cfg
	// MetaFraction == 0 disables the *in-band* metadata channel; the
	// instant global channel costs no bandwidth (§6.2.3), so a zero cap
	// must not suppress its snapshot sync — only ControlNone and a
	// zero-capped in-band channel skip the exchange entirely.
	if cfg.Mode == ControlNone || (cfg.Mode != ControlGlobal && cfg.MetaFraction == 0) {
		// Even without a metadata channel the radios discover each
		// other; meeting history is observable locally.
		s.x.Ctl.Meet.ObserveMeeting(s.y.ID, s.now)
		s.y.Ctl.Meet.ObserveMeeting(s.x.ID, s.now)
		return
	}
	maxBytes := int64(-1)
	switch {
	case cfg.MetaFraction > 0:
		maxBytes = int64(cfg.MetaFraction * float64(s.budget))
	default:
		// Uncapped metadata still cannot exceed the opportunity
		// ("as much bandwidth at the start of a transfer opportunity
		// ... as it requires").
		maxBytes = s.budget
	}
	opts := control.Options{
		MaxBytes:  maxBytes,
		LocalOnly: cfg.LocalOnlyMeta,
		AcksOnly:  cfg.AcksOnly,
	}
	res := control.Exchange(
		s.x.Ctl, s.y.Ctl,
		s.x.Router.Inventory(s.now), s.y.Router.Inventory(s.now),
		s.now, opts,
	)
	s.budget -= res.Bytes
	s.stats.MetaBytes += res.Bytes
}

// purgeAcked drops buffered copies of packets now known delivered
// ("flooding acknowledgments improves delivery rates by removing
// useless packets from the network").
func (s *Session) purgeAcked(n *Node) {
	victims := n.purgeScratch[:0]
	for _, e := range n.Store.Entries() {
		if n.Ctl.IsAcked(e.P.ID) {
			victims = append(victims, e.P.ID)
		}
	}
	for _, id := range victims {
		n.Store.Remove(id)
	}
	n.purgeScratch = victims
}

// gossip lets protocol-specific state flow (free of charge — only
// RAPID's control channel is byte-accounted, per §6.1).
func (s *Session) gossip() {
	if g, ok := s.x.Router.(Gossiper); ok {
		g.GossipWith(s.y.Router, s.now)
	}
	if g, ok := s.y.Router.(Gossiper); ok {
		g.GossipWith(s.x.Router, s.now)
	}
}

// directEligible applies Step 2's per-candidate filters: a packet that
// exceeds the remaining budget is skipped (a smaller packet later in
// the queue may still fit); a packet already known delivered and acked
// is purged without transmission. Shared by the instantaneous and
// windowed paths.
func (s *Session) directEligible(e *buffer.Entry, from *Node) (send, purge bool) {
	if s.budget < e.P.Size {
		return false, false
	}
	//rapidlint:allow shardcommit — per-packet record read: a packet's record is only written by sessions sharing its destination endpoint, so the shard conflict rule already orders this against every writer (DESIGN.md §12)
	if s.net.Collector.IsDelivered(e.P.ID) && from.Ctl.IsAcked(e.P.ID) {
		return false, true
	}
	return true, false
}

// deliverDirect finalizes one direct delivery: collector accounting,
// the in-person acknowledgment at both ends ("both parties instantly
// know the packet is delivered: the destination generated the ack"),
// and removal of the sender's copy. Shared by the instantaneous and
// windowed paths.
func (s *Session) deliverDirect(from, to *Node, e *buffer.Entry, now float64) {
	s.stats.DataBytes += e.P.Size
	s.stats.DirectDeliveries++
	//rapidlint:allow shardcommit — per-packet record write: only sessions sharing this packet's destination endpoint touch its record, so the shard conflict rule orders it; the global counters fold at commit via s.owned (DESIGN.md §12)
	s.net.Collector.Delivered(e.P.ID, now, e.Hops+1)
	from.Ctl.LearnAck(e.P.ID, now)
	to.Ctl.LearnAck(e.P.ID, now)
	from.Store.Remove(e.P.ID)
	if obs, ok := from.Router.(DeliveryObserver); ok {
		obs.OnDelivered(e.P.ID, now)
	}
	if obs, ok := to.Router.(DeliveryObserver); ok {
		obs.OnDelivered(e.P.ID, now)
	}
	if h := s.net.hooks; h != nil && h.OnDelivered != nil {
		h.OnDelivered(e.P.ID, to.ID, now)
	}
}

// directDeliver sends packets destined to `to` (Protocol rapid Step 2).
func (s *Session) directDeliver(from, to *Node) {
	for _, e := range from.Router.DirectQueue(to.ID, s.now) {
		send, purge := s.directEligible(e, from)
		if purge {
			from.Store.Remove(e.P.ID)
			continue
		}
		if !send {
			continue
		}
		// Bytes are spent before the loss draw: a lost transfer still
		// burned the radio time.
		s.budget -= e.P.Size
		if s.net.transferLost(e.P.ID, from.ID, to.ID, s.now) {
			continue
		}
		s.deliverDirect(from, to, e, s.now)
	}
}

// replicate interleaves the two directions' replication plans
// (Protocol rapid Steps 3a–3c) until the budget or both plans are
// exhausted.
func (s *Session) replicate() {
	planX := s.x.Router.PlanReplication(s.y, s.now)
	planY := s.y.Router.PlanReplication(s.x, s.now)
	ix, iy := 0, 0
	turnX := true
	stalledX, stalledY := false, false
	for !stalledX || !stalledY {
		if turnX {
			ix, stalledX = s.replicateNext(s.x, s.y, planX, ix)
		} else {
			iy, stalledY = s.replicateNext(s.y, s.x, planY, iy)
		}
		turnX = !turnX
	}
}

// replicableState applies the Step 3 filters that can change while a
// packet is in flight: the candidate must not be a direct delivery,
// must still be held by the sender, and must be new to and unacked at
// both ends. Shared by the instantaneous path (at transfer time) and
// the windowed path (at selection and again at completion).
func replicableState(e *buffer.Entry, from, to *Node) bool {
	id := e.P.ID
	return e.P.Dst != to.ID && // would be direct delivery (Step 2)
		from.Store.Has(id) && // not evicted/delivered since planning
		!to.Store.Has(id) && // Step 3a: peer does not already hold it
		!from.Ctl.IsAcked(id) && !to.Ctl.IsAcked(id)
}

// replicable is replicableState plus the budget filter applied at
// selection time (an oversized candidate is skipped; a smaller one
// later in the plan may still fit).
func (s *Session) replicable(e *buffer.Entry, from, to *Node) bool {
	return replicableState(e, from, to) && e.P.Size <= s.budget
}

// acceptReplica stores the transmitted copy at the receiver and runs
// the shared post-transfer bookkeeping: replication observers, then —
// only if the receiver keeps the copy — data accounting and the
// replica notes at both ends, primed with the sender's hypothesized
// delivery estimate for the new replica (RAPID's d_Y; it refreshes at
// the receiver's next exchange either way). delayOf pins a windowed
// session's planning-time snapshot; nil selects the live estimator,
// which is exact for the instantaneous path.
func (s *Session) acceptReplica(from, to *Node, e *buffer.Entry, now float64, delayOf ReplicaDelayFunc) bool {
	copyEntry := &buffer.Entry{
		P:          e.P,
		ReceivedAt: now,
		Hops:       e.Hops + 1,
		Tokens:     e.Tokens, // router hooks may adjust
	}
	if obs, ok := from.Router.(ReplicationObserver); ok {
		obs.OnReplicated(e, copyEntry, to.ID)
	}
	if !to.Router.Accept(copyEntry, from.ID, now) {
		return false
	}
	s.stats.DataBytes += e.P.Size
	s.stats.Replications++
	delay := math.Inf(1)
	switch {
	case delayOf != nil:
		delay = delayOf(e)
	default:
		if est, ok := from.Router.(ReplicaDelayEstimator); ok {
			delay = est.EstimateReplicaDelay(e, to, now)
		}
	}
	item := control.InventoryItem{
		ID: e.P.ID, Dst: e.P.Dst, Size: e.P.Size,
		Created: e.P.Created, Deadline: e.P.Deadline,
		Delay: delay, Hops: copyEntry.Hops,
	}
	from.Ctl.NoteReplica(item, to.ID, now)
	to.Ctl.NoteReplica(item, to.ID, now)
	return true
}

// replicateNext transfers the next eligible candidate from plan[i:],
// returning the advanced index and whether this direction is done.
func (s *Session) replicateNext(from, to *Node, plan []*buffer.Entry, i int) (int, bool) {
	for ; i < len(plan); i++ {
		e := plan[i]
		if !s.replicable(e, from, to) {
			continue
		}
		// Transmit. Bytes are spent whether or not the receiver keeps
		// the copy (the radio already sent them) — and a transfer the
		// disruption layer loses spends them for nothing.
		s.budget -= e.P.Size
		if !s.net.transferLost(e.P.ID, from.ID, to.ID, s.now) {
			s.acceptReplica(from, to, e, s.now, nil)
		}
		return i + 1, false
	}
	return i, true
}

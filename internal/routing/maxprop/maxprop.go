// Package maxprop implements the MaxProp routing protocol [Burgess et
// al., Infocom 2006] — the paper's closest competitor ("of recent
// related work, it is closest to rapid's objectives", §6.1): packets
// are ranked by estimated delivery likelihood along a path of meeting
// probabilities; young packets (low hop count) get head-of-line
// priority; delivery notifications are flooded to purge replicas.
//
// Run MaxProp with routing.Config{AcksOnly: true} so the runtime's
// control plane carries its acknowledgment flood; its
// meeting-probability vectors travel through the free protocol gossip
// hook (the paper charges only RAPID for control traffic, §6.1).
package maxprop

import (
	"math"
	"sort"

	"rapid/internal/buffer"
	"rapid/internal/control"
	"rapid/internal/packet"
	"rapid/internal/routing"
)

// HopThreshold is the head-of-line boundary: packets that have traveled
// fewer hops are served by hop count before all others are served by
// path cost. (MaxProp adapts this threshold to observed transfer sizes;
// a fixed small threshold reproduces the "prioritizes new packets"
// behaviour the paper discusses in §6.3.1.)
const HopThreshold = 3

// Router implements MaxProp for one node.
type Router struct {
	node *routing.Node
	// probs holds meeting-probability vectors: own and gossiped.
	probs map[packet.NodeID]map[packet.NodeID]float64
	// ver/costVer/costs memoize the all-destinations path-cost map:
	// PathCost is evaluated per buffered packet per contact, but the
	// underlying vectors change only at gossip time.
	ver     uint64
	costVer uint64
	costs   map[packet.NodeID]float64
}

// New returns a MaxProp router factory.
func New() routing.RouterFactory {
	return func(packet.NodeID) routing.Router {
		return &Router{probs: make(map[packet.NodeID]map[packet.NodeID]float64)}
	}
}

// Name implements routing.Router.
func (r *Router) Name() string { return "maxprop" }

// SessionConfined implements routing.SessionConfined: gossip copies
// every received vector, so all mutable state is per-node.
func (r *Router) SessionConfined() {}

// Attach implements routing.Router.
func (r *Router) Attach(n *routing.Node) {
	r.node = n
	r.probs[n.ID] = make(map[packet.NodeID]float64)
}

// Generate implements routing.Router.
func (r *Router) Generate(p *packet.Packet, now float64) {
	r.node.Store.Insert(&buffer.Entry{P: p, ReceivedAt: now, Own: true}, r.evictUtility())
}

// Inventory implements routing.Router. MaxProp announces nothing beyond
// acks (which the runtime's AcksOnly exchange carries).
func (r *Router) Inventory(now float64) []control.InventoryItem { return nil }

// GossipWith implements routing.Gossiper: update own meeting vector and
// swap vector tables with the peer.
func (r *Router) GossipWith(peer routing.Router, now float64) {
	mp, ok := peer.(*Router)
	if !ok {
		return
	}
	r.observeMeeting(mp.node.ID)
	// Receive every vector the peer knows (copy-on-write: vectors are
	// replaced wholesale on update, so sharing is safe only by copy).
	for owner, vec := range mp.probs {
		if owner == r.node.ID {
			continue
		}
		cp := make(map[packet.NodeID]float64, len(vec))
		for k, v := range vec {
			cp[k] = v
		}
		r.probs[owner] = cp
	}
	r.ver++
}

// observeMeeting applies MaxProp's incremental averaging: bump the met
// node's probability by 1 and re-normalize the vector to sum to 1.
func (r *Router) observeMeeting(peer packet.NodeID) {
	vec := r.probs[r.node.ID]
	vec[peer]++
	// Sum in sorted node order: FP addition is not associative, so a
	// map-order sum would make the normalized vector — and every
	// downstream path cost — differ bit-wise from run to run
	// (rapidlint/maporder).
	ids := make([]packet.NodeID, 0, len(vec))
	for k := range vec {
		ids = append(ids, k)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var sum float64
	for _, k := range ids {
		sum += vec[k]
	}
	for k := range vec {
		vec[k] /= sum
	}
	r.ver++
}

// PathCost estimates the cost of delivering to dst: the minimum over
// paths (up to 4 hops) of the summed per-hop costs (1 - p), using all
// known vectors. Unreachable destinations cost +Inf. Costs for all
// destinations are computed at once and memoized until the next gossip.
func (r *Router) PathCost(dst packet.NodeID) float64 {
	if r.costs == nil || r.costVer != r.ver {
		r.costs = r.allCosts()
		r.costVer = r.ver
	}
	if d, ok := r.costs[dst]; ok {
		return d
	}
	return math.Inf(1)
}

// allCosts runs the hop-bounded relaxation from this node.
func (r *Router) allCosts() map[packet.NodeID]float64 {
	const maxHops = 4
	dist := map[packet.NodeID]float64{r.node.ID: 0}
	for hop := 0; hop < maxHops; hop++ {
		next := make(map[packet.NodeID]float64, len(dist))
		for k, v := range dist {
			next[k] = v
		}
		improved := false
		for u, du := range dist {
			vec, ok := r.probs[u]
			if !ok {
				continue
			}
			for v, p := range vec {
				c := du + (1 - p)
				if dv, ok := next[v]; !ok || c < dv {
					next[v] = c
					improved = true
				}
			}
		}
		dist = next
		if !improved {
			break
		}
	}
	return dist
}

// DirectQueue implements routing.Router: destined packets, lowest hop
// count first (freshest data first, MaxProp's delivery order).
func (r *Router) DirectQueue(peer packet.NodeID, now float64) []*buffer.Entry {
	var out []*buffer.Entry
	for _, e := range r.node.Store.Entries() {
		if e.P.Dst == peer {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hops != out[j].Hops {
			return out[i].Hops < out[j].Hops
		}
		return out[i].P.ID < out[j].P.ID
	})
	return out
}

// PlanReplication implements routing.Router: head-of-line packets
// (hops < HopThreshold) by ascending hop count, then the rest by
// ascending path cost to their destinations.
func (r *Router) PlanReplication(peer *routing.Node, now float64) []*buffer.Entry {
	entries := r.node.Store.Entries()
	type cand struct {
		e    *buffer.Entry
		head bool
		key  float64
	}
	cands := make([]cand, 0, len(entries))
	for _, e := range entries {
		if e.P.Dst == peer.ID {
			continue
		}
		if e.Hops < HopThreshold {
			cands = append(cands, cand{e, true, float64(e.Hops)})
		} else {
			cands = append(cands, cand{e, false, r.PathCost(e.P.Dst)})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].head != cands[j].head {
			return cands[i].head
		}
		if cands[i].key != cands[j].key {
			return cands[i].key < cands[j].key
		}
		return cands[i].e.P.ID < cands[j].e.P.ID
	})
	out := make([]*buffer.Entry, len(cands))
	for i, c := range cands {
		out[i] = c.e
	}
	return out
}

// Accept implements routing.Router: store with MaxProp's eviction
// policy — drop the packet with the worst (highest) path cost first,
// with high-hop-count packets going before head-of-line ones.
func (r *Router) Accept(e *buffer.Entry, from packet.NodeID, now float64) bool {
	return r.node.Store.Insert(e, r.evictUtility())
}

// evictUtility ranks entries for eviction (lowest kept value dropped
// first): head-of-line packets are valuable (high utility); the rest
// rank inversely to path cost.
func (r *Router) evictUtility() buffer.Utility {
	return func(e *buffer.Entry) float64 {
		if e.Hops < HopThreshold {
			return 1e9 - float64(e.Hops)
		}
		c := r.PathCost(e.P.Dst)
		if math.IsInf(c, 1) {
			return -1e9
		}
		return -c
	}
}

package maxprop

import (
	"math"
	"testing"

	"rapid/internal/buffer"
	"rapid/internal/packet"
	"rapid/internal/routing"
	"rapid/internal/sim"
	"rapid/internal/trace"
)

func newPair(t *testing.T) (*routing.Network, *routing.Node, *routing.Node) {
	t.Helper()
	net := routing.NewNetwork(sim.New(1), []packet.NodeID{0, 1, 2, 3},
		New(), routing.Config{Mode: routing.ControlInBand, AcksOnly: true, MetaFraction: -1})
	net.Horizon = 1000
	return net, net.Node(0), net.Node(1)
}

func TestMeetingProbabilitiesNormalize(t *testing.T) {
	_, n0, n1 := newPair(t)
	r0 := n0.Router.(*Router)
	r0.GossipWith(n1.Router, 10)
	r0.GossipWith(n1.Router, 20)
	vec := r0.probs[0]
	var sum float64
	for _, v := range vec {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("vector sum %v want 1", sum)
	}
	if vec[1] != 1 {
		t.Errorf("only ever met node 1: p=%v want 1", vec[1])
	}
}

func TestMeetingProbabilitiesRecencyWeighted(t *testing.T) {
	// MaxProp's incremental averaging weights recent meetings heavily:
	// after meeting 2 once, the estimate for 1 and 2 evens out; another
	// meeting with 1 restores its dominance.
	net, n0, n1 := newPair(t)
	n2 := net.Node(2)
	r0 := n0.Router.(*Router)
	r0.GossipWith(n1.Router, 1)
	r0.GossipWith(n1.Router, 2)
	r0.GossipWith(n1.Router, 3)
	r0.GossipWith(n2.Router, 4)
	vec := r0.probs[0]
	if vec[1] != vec[2] {
		t.Errorf("bump-and-normalize should even out after one meeting: %v", vec)
	}
	r0.GossipWith(n1.Router, 5)
	vec = r0.probs[0]
	if vec[1] <= vec[2] {
		t.Errorf("recent meeting must dominate: %v", vec)
	}
}

func TestPathCostThroughRelay(t *testing.T) {
	net, n0, n1 := newPair(t)
	n3 := net.Node(3)
	r0 := n0.Router.(*Router)
	r1 := n1.Router.(*Router)
	// 1 meets 3 often; 0 meets 1. After gossip, 0 should see a finite
	// path cost to 3 via 1.
	r1.GossipWith(n3.Router, 1)
	r0.GossipWith(n1.Router, 2) // receives r1's vector
	cost := r0.PathCost(3)
	if math.IsInf(cost, 1) {
		t.Fatal("no path to 3 despite gossip")
	}
	if c0 := r0.PathCost(0); c0 != 0 {
		t.Errorf("self cost %v want 0", c0)
	}
	if c := r0.PathCost(99); !math.IsInf(c, 1) {
		t.Errorf("unknown node cost %v want +Inf", c)
	}
}

func TestPlanReplicationHeadOfLineFirst(t *testing.T) {
	net, n0, n1 := newPair(t)
	_ = net
	mk := func(id packet.ID, hops int) *buffer.Entry {
		return &buffer.Entry{P: &packet.Packet{ID: id, Dst: 3, Size: 10}, Hops: hops}
	}
	n0.Store.Insert(mk(1, 5), nil) // past threshold: by cost
	n0.Store.Insert(mk(2, 0), nil) // head-of-line
	n0.Store.Insert(mk(3, 2), nil) // head-of-line, more hops
	plan := n0.Router.PlanReplication(n1, 10)
	if len(plan) != 3 {
		t.Fatalf("plan %v", plan)
	}
	if plan[0].P.ID != 2 || plan[1].P.ID != 3 || plan[2].P.ID != 1 {
		t.Errorf("order %v,%v,%v want 2,3,1", plan[0].P.ID, plan[1].P.ID, plan[2].P.ID)
	}
}

func TestEndToEndMaxProp(t *testing.T) {
	sched := &trace.Schedule{Duration: 200, Meetings: []trace.Meeting{
		{A: 0, B: 1, Time: 10, Bytes: 1 << 16},
		{A: 1, B: 2, Time: 50, Bytes: 1 << 16},
		{A: 0, B: 2, Time: 90, Bytes: 1 << 16},
	}}
	w := packet.Workload{
		{ID: 1, Src: 0, Dst: 2, Size: 1024, Created: 0},
		{ID: 2, Src: 1, Dst: 0, Size: 1024, Created: 5},
	}
	c := routing.Run(routing.Scenario{
		Schedule: sched, Workload: w, Factory: New(),
		Cfg:  routing.Config{Mode: routing.ControlInBand, AcksOnly: true, MetaFraction: -1},
		Seed: 1,
	})
	s := c.Summarize(200)
	if s.Delivered != 2 {
		t.Errorf("delivered %d want 2", s.Delivered)
	}
}

func TestEvictionKeepsHeadOfLine(t *testing.T) {
	net := routing.NewNetwork(sim.New(1), []packet.NodeID{0, 1},
		New(), routing.Config{BufferBytes: 30, Mode: routing.ControlInBand, AcksOnly: true})
	n0 := net.Node(0)
	r := n0.Router.(*Router)
	young := &buffer.Entry{P: &packet.Packet{ID: 1, Dst: 1, Size: 10}, Hops: 0}
	old := &buffer.Entry{P: &packet.Packet{ID: 2, Dst: 1, Size: 10}, Hops: 7}
	old2 := &buffer.Entry{P: &packet.Packet{ID: 3, Dst: 1, Size: 10}, Hops: 9}
	if !r.Accept(young, 1, 0) || !r.Accept(old, 1, 0) || !r.Accept(old2, 1, 0) {
		t.Fatal("inserts failed")
	}
	// Buffer full; a new head-of-line packet must evict a high-hop one.
	fresh := &buffer.Entry{P: &packet.Packet{ID: 4, Dst: 1, Size: 10}, Hops: 1}
	if !r.Accept(fresh, 1, 0) {
		t.Fatal("accept failed under pressure")
	}
	if !n0.Store.Has(1) || !n0.Store.Has(4) {
		t.Error("head-of-line packets evicted before high-hop packets")
	}
}

package routing

import (
	"runtime"

	"rapid/internal/packet"
	"rapid/internal/sim"
)

// This file is the routing layer's side of the parallel engine
// (sim.Engine.SetWorkers): the two hot event kinds of a constellation
// run — point contact sessions and streamed packet creations — are
// expressed as sim.ShardEvents keyed by their endpoint node IDs, so the
// engine can batch consecutive independent events, execute them across
// a worker pool, and commit their globally ordered effects in exact
// serial pop order. Everything else (window opens/closes, churn
// toggles) stays a plain event and acts as a flush barrier, so a
// parallel run is byte-identical to a serial one.
//
// A session's mutable footprint is its two endpoint nodes: buffer
// store, control state (meeting estimator, ack table, replica
// metadata), and the router's per-node caches. That is exactly the
// engine's conflict rule, provided the routers themselves stay inside
// it — which is what the SessionConfined marker asserts. Sessions also
// write delivery-record fields of packets destined to one of their
// endpoints; any two sessions touching the same record share that
// endpoint, so the conflict rule orders those too. Record *creation*
// (Collector.Generated) and counter folds happen at commit.

// SessionConfined marks a Router whose session-driven work — Generate,
// Inventory, DirectQueue, PlanReplication, Accept, gossip, observer
// callbacks — reads and writes only its own node's state, the peer
// node it is handed, and immutable run-wide state (config, schedule
// horizon). Such routers may run inside the parallel engine's
// conflict-free waves. Routers that touch shared mutable state (a
// per-run planner, an engine random stream) must not implement it;
// runs including any unconfined router fall back to the serial engine.
type SessionConfined interface {
	SessionConfined()
}

// resolveWorkers maps the Config.Workers knob to a worker count:
// 0 or 1 select the serial engine, n > 1 exactly n workers, negative
// one worker per available CPU.
func resolveWorkers(n int) int {
	if n < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// parallelEligible decides whether a run may use the parallel engine.
// Every exclusion is a correctness gate, not a heuristic: hooks demand
// per-event callbacks, the global control channel is shared mutable
// state touched inside sessions, Bernoulli loss consumes a shared
// transfer counter inside sessions, and an unconfined router may reach
// shared state from a wave.
func parallelEligible(sc Scenario, net *Network, ids []packet.NodeID) bool {
	if sc.Hooks != nil || sc.Cfg.Mode == ControlGlobal {
		return false
	}
	if net.disrupt != nil && net.disrupt.HasLoss() {
		return false
	}
	for _, id := range ids {
		if _, ok := net.Nodes[id].Router.(SessionConfined); !ok {
			return false
		}
	}
	return true
}

// sessionEvent is a point contact session as a shard event: the session
// body runs in a wave (it touches only the two endpoints), the
// collector fold and opportunity hook run at commit.
type sessionEvent struct {
	net   *Network
	a, b  *Node
	bytes int64
	at    float64
	s     *Session
}

func (ev *sessionEvent) Execute(e *sim.Engine) {
	ev.ExecuteShard(e)
	ev.CommitShard(e)
}

func (ev *sessionEvent) ShardKeys() (int64, int64) {
	return int64(ev.a.ID), int64(ev.b.ID)
}

func (ev *sessionEvent) ExecuteShard(e *sim.Engine) {
	ev.s = beginSession(ev.net, ev.a, ev.b, ev.bytes, ev.at)
	if ev.s != nil {
		ev.s.run()
	}
}

func (ev *sessionEvent) CommitShard(e *sim.Engine) {
	if ev.s != nil {
		ev.s.finish()
		ev.s = nil
	}
}

// generateEvent is a packet creation as a shard event: the delivery
// record is registered at collection time — on the engine goroutine, at
// the event's exact pop position, so a session later in the same batch
// that delivers the packet finds its record — and the router stores the
// packet in a wave (source-node state only). Registering before
// earlier batch-mates' waves run is invisible to them: no node holds
// the packet until this event's own wave, so nothing can deliver or
// query it, and an extra undelivered record reads like no record.
type generateEvent struct {
	net *Network
	p   *packet.Packet
}

func (ev *generateEvent) Execute(e *sim.Engine) {
	ev.OnCollect(e)
	ev.ExecuteShard(e)
	ev.CommitShard(e)
}

func (ev *generateEvent) ShardKeys() (int64, int64) {
	return int64(ev.p.Src), int64(ev.p.Src)
}

func (ev *generateEvent) OnCollect(e *sim.Engine) {
	ev.net.Collector.Generated(ev.p)
}

func (ev *generateEvent) ExecuteShard(e *sim.Engine) {
	ev.net.Node(ev.p.Src).Router.Generate(ev.p, ev.p.Created)
}

func (ev *generateEvent) CommitShard(e *sim.Engine) {}

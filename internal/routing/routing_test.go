package routing_test

import (
	"math/rand"
	"testing"

	"rapid/internal/mobility"
	"rapid/internal/packet"
	"rapid/internal/routing"
	"rapid/internal/routing/epidemic"
	"rapid/internal/trace"
)

// twoNodeScenario: node 0 meets node 1 once; one packet 0→1.
func twoNodeScenario(oppBytes int64, pktSize int64) routing.Scenario {
	return routing.Scenario{
		Schedule: &trace.Schedule{
			Duration: 100,
			Meetings: []trace.Meeting{{A: 0, B: 1, Time: 50, Bytes: oppBytes}},
		},
		Workload: packet.Workload{
			{ID: 1, Src: 0, Dst: 1, Size: pktSize, Created: 10},
		},
		Factory: epidemic.New(),
		Cfg:     routing.Config{Mode: routing.ControlInBand, MetaFraction: -1},
		Seed:    1,
	}
}

func TestDirectDeliveryAtMeeting(t *testing.T) {
	c := routing.Run(twoNodeScenario(1<<20, 1024))
	s := c.Summarize(100)
	if s.Delivered != 1 {
		t.Fatalf("delivered=%d want 1", s.Delivered)
	}
	if s.AvgDelay != 40 { // created at 10, met at 50
		t.Errorf("delay=%v want 40", s.AvgDelay)
	}
	if c.DirectDeliveries != 1 {
		t.Errorf("direct deliveries=%d", c.DirectDeliveries)
	}
}

func TestNoDeliveryWithoutMeeting(t *testing.T) {
	sc := twoNodeScenario(1<<20, 1024)
	sc.Workload[0].Dst = 2 // destination never meets anyone
	sc.Workload = append(sc.Workload, &packet.Packet{ID: 2, Src: 2, Dst: 0, Size: 10, Created: 5})
	c := routing.Run(sc)
	if got := c.Summarize(100).Delivered; got != 0 {
		t.Errorf("delivered=%d want 0", got)
	}
}

func TestBudgetRespected(t *testing.T) {
	// Opportunity smaller than the packet: nothing can move.
	c := routing.Run(twoNodeScenario(512, 1024))
	s := c.Summarize(100)
	if s.Delivered != 0 {
		t.Fatalf("oversized packet delivered through a too-small contact")
	}
	if s.DataBytes != 0 {
		t.Errorf("data bytes=%d want 0", s.DataBytes)
	}
}

func TestFeasibilityInvariant(t *testing.T) {
	// Across a dense multi-node run, control+data bytes never exceed
	// offered contact capacity (§3.1 feasible schedule).
	model := mobility.Exponential{Config: mobility.Config{
		Nodes: 10, Duration: 600, MeanMeeting: 30, TransferBytes: 4 << 10,
	}}
	sched := model.Schedule(rand.New(rand.NewSource(7)))
	w := packet.Generate(packet.GenConfig{
		Nodes:                 sched.Nodes(),
		PacketsPerHourPerDest: 5,
		LoadWindow:            100,
		Duration:              600,
		PacketSize:            1024,
		FirstID:               1,
	}, rand.New(rand.NewSource(8)))
	c := routing.Run(routing.Scenario{
		Schedule: sched,
		Workload: w,
		Factory:  epidemic.New(),
		Cfg:      routing.Config{BufferBytes: 64 << 10, Mode: routing.ControlInBand, MetaFraction: -1},
		Seed:     3,
	})
	s := c.Summarize(600)
	if s.DataBytes+s.MetaBytes > s.OpportunityBytes {
		t.Errorf("feasibility violated: data %d + meta %d > opportunity %d",
			s.DataBytes, s.MetaBytes, s.OpportunityBytes)
	}
	if s.Delivered == 0 {
		t.Error("epidemic run delivered nothing")
	}
	if s.Meetings != len(sched.Meetings) {
		t.Errorf("meetings %d want %d", s.Meetings, len(sched.Meetings))
	}
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		model := mobility.Exponential{Config: mobility.Config{
			Nodes: 8, Duration: 500, MeanMeeting: 40, TransferBytes: 8 << 10,
		}}
		sched := model.Schedule(rand.New(rand.NewSource(11)))
		w := packet.Generate(packet.GenConfig{
			Nodes: sched.Nodes(), PacketsPerHourPerDest: 4, LoadWindow: 100,
			Duration: 500, PacketSize: 1024, FirstID: 1,
		}, rand.New(rand.NewSource(12)))
		c := routing.Run(routing.Scenario{
			Schedule: sched, Workload: w, Factory: epidemic.New(),
			Cfg:  routing.Config{BufferBytes: 32 << 10, Mode: routing.ControlInBand, MetaFraction: -1},
			Seed: 5,
		})
		s := c.Summarize(500)
		return s.AvgDelay + float64(s.Delivered)*1000 + float64(s.DataBytes)
	}
	if run() != run() {
		t.Error("simulation is not deterministic for a fixed seed")
	}
}

func TestEpidemicSpreadsThroughRelay(t *testing.T) {
	// 0 meets 1 at t=10; 1 meets 2 at t=20. Packet 0→2 must arrive via
	// relay node 1.
	sc := routing.Scenario{
		Schedule: &trace.Schedule{
			Duration: 100,
			Meetings: []trace.Meeting{
				{A: 0, B: 1, Time: 10, Bytes: 1 << 20},
				{A: 1, B: 2, Time: 20, Bytes: 1 << 20},
			},
		},
		Workload: packet.Workload{{ID: 1, Src: 0, Dst: 2, Size: 1024, Created: 0}},
		Factory:  epidemic.New(),
		Cfg:      routing.Config{Mode: routing.ControlInBand, MetaFraction: -1},
		Seed:     1,
	}
	c := routing.Run(sc)
	s := c.Summarize(100)
	if s.Delivered != 1 {
		t.Fatalf("relay delivery failed")
	}
	if s.AvgDelay != 20 {
		t.Errorf("delay %v want 20", s.AvgDelay)
	}
	recs := c.Records()
	if recs[0].Hops != 2 {
		t.Errorf("hops=%d want 2", recs[0].Hops)
	}
}

func TestAckPropagationPurgesReplicas(t *testing.T) {
	// 0 replicates to 1; 0 later delivers directly to 2; when 1 meets 0
	// again it learns the ack and purges; when 1 then meets 2 nothing
	// is transferred.
	sc := routing.Scenario{
		Schedule: &trace.Schedule{
			Duration: 100,
			Meetings: []trace.Meeting{
				{A: 0, B: 1, Time: 10, Bytes: 1 << 20}, // replicate 0→1
				{A: 0, B: 2, Time: 20, Bytes: 1 << 20}, // deliver
				{A: 0, B: 1, Time: 30, Bytes: 1 << 20}, // ack reaches 1
				{A: 1, B: 2, Time: 40, Bytes: 1 << 20}, // no re-delivery
			},
		},
		Workload: packet.Workload{{ID: 1, Src: 0, Dst: 2, Size: 1024, Created: 0}},
		Factory:  epidemic.New(),
		Cfg:      routing.Config{Mode: routing.ControlInBand, MetaFraction: -1},
		Seed:     1,
	}
	c := routing.Run(sc)
	s := c.Summarize(100)
	if s.Delivered != 1 || s.AvgDelay != 20 {
		t.Fatalf("summary %+v", s)
	}
	// Data moved: one replication (t=10) + one delivery (t=20) only.
	if s.DataBytes != 2048 {
		t.Errorf("data bytes %d want 2048 (ack purge failed?)", s.DataBytes)
	}
}

func TestGlobalModeZeroMetaBytes(t *testing.T) {
	sc := twoNodeScenario(1<<20, 1024)
	sc.Cfg.Mode = routing.ControlGlobal
	c := routing.Run(sc)
	s := c.Summarize(100)
	if s.MetaBytes != 0 {
		t.Errorf("global mode metadata cost %d bytes", s.MetaBytes)
	}
	if s.Delivered != 1 {
		t.Error("global mode broke delivery")
	}
}

func TestMetaFractionZeroDisablesMetadata(t *testing.T) {
	sc := twoNodeScenario(1<<20, 1024)
	sc.Cfg.MetaFraction = 0
	c := routing.Run(sc)
	s := c.Summarize(100)
	if s.MetaBytes != 0 {
		t.Errorf("metadata sent despite fraction 0: %d", s.MetaBytes)
	}
	if s.Delivered != 1 {
		t.Error("direct delivery must still work without metadata")
	}
}

func TestControlModeString(t *testing.T) {
	if routing.ControlInBand.String() != "in-band" ||
		routing.ControlGlobal.String() != "global" ||
		routing.ControlNone.String() != "none" {
		t.Error("ControlMode strings changed")
	}
	if routing.ControlMode(42).String() == "" {
		t.Error("unknown mode must stringify")
	}
}

// TestPerNodeBufferBytes: BufferBytesFor assigns heterogeneous
// capacities, overriding the uniform BufferBytes.
func TestPerNodeBufferBytes(t *testing.T) {
	cfg := routing.Config{
		BufferBytes: 999, // must be ignored when BufferBytesFor is set
		BufferBytesFor: func(id packet.NodeID) int64 {
			if id%2 == 0 {
				return 100
			}
			return 2000
		},
	}
	net := routing.NewNetwork(nil, []packet.NodeID{0, 1, 2, 3}, epidemic.New(), cfg)
	for _, id := range []packet.NodeID{0, 1, 2, 3} {
		want := int64(2000)
		if id%2 == 0 {
			want = 100
		}
		if got := net.Node(id).Store.Capacity(); got != want {
			t.Errorf("node %d capacity = %d, want %d", id, got, want)
		}
	}
}

package optimal

// Executable version of the Theorem 2 construction (Appendix B): the
// reduction from edge-disjoint paths (EDP) in a DAG to the DTN routing
// problem. Topologically labelling the DAG's edges turns each edge into
// a unit-size transfer opportunity with increasing meeting times; a set
// of k deliverable packets corresponds exactly to k edge-disjoint
// paths. Solving the DTN instance with the exact ILP therefore solves
// the EDP instance — which is what makes optimal DTN routing NP-hard.

import (
	"testing"

	"rapid/internal/packet"
	"rapid/internal/trace"
)

// edpInstance encodes a DAG with a topological edge labelling as a DTN
// schedule (edge (u,v) labelled l becomes a unit meeting at time l).
func edpInstance(edges [][2]packet.NodeID) *trace.Schedule {
	s := &trace.Schedule{Duration: float64(len(edges) + 10)}
	for i, e := range edges {
		s.Meetings = append(s.Meetings, trace.Meeting{
			A: e[0], B: e[1], Time: float64(i + 1), Bytes: 1,
		})
	}
	return s
}

func TestTheorem2EDPReduction(t *testing.T) {
	// DAG (topologically ordered 0..4) with edges labelled in
	// topological order:
	//   0->1, 0->2, 1->3, 2->3, 3->4  (edge 3->4 is a shared bottleneck)
	// Demands: (0,3) and (0,4).
	// Max edge-disjoint paths = 2: e.g. 0->1->3 and ... (0,4) needs
	// 0->2->3->4; both use distinct edges, so k=2 is feasible.
	edges := [][2]packet.NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}}
	sched := edpInstance(edges)
	w := packet.Workload{
		{ID: 1, Src: 0, Dst: 3, Size: 1, Created: 0},
		{ID: 2, Src: 0, Dst: 4, Size: 1, Created: 0},
	}
	res, err := SolveILP(sched, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.DeliveryRate(); got != 1 {
		t.Fatalf("ILP delivered %.2f of packets; 2 edge-disjoint paths exist", got)
	}

	// Now both demands target node 4: every path must cross the single
	// unit edge 3->4 (and no other edge reaches 4), so at most one
	// packet is deliverable — exactly the EDP bound.
	w2 := packet.Workload{
		{ID: 1, Src: 0, Dst: 4, Size: 1, Created: 0},
		{ID: 2, Src: 1, Dst: 4, Size: 1, Created: 0},
	}
	res2, err := SolveILP(sched, w2, 0)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	for _, d := range res2.Deliveries {
		if d.Delivered {
			delivered++
		}
	}
	if delivered != 1 {
		t.Fatalf("bottleneck edge admits %d deliveries, want exactly 1 (EDP bound)", delivered)
	}
}

// TestTheorem2LabellingRespectsTopology checks the reduction invariant
// the appendix relies on: a path in the DAG maps to meetings with
// strictly increasing times, so it is a valid DTN route.
func TestTheorem2LabellingRespectsTopology(t *testing.T) {
	edges := [][2]packet.NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}}
	sched := edpInstance(edges)
	// Follow path 0->2->3->4: edge indices 1, 3, 4 — times must rise.
	times := []float64{sched.Meetings[1].Time, sched.Meetings[3].Time, sched.Meetings[4].Time}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatalf("topological labelling violated: %v", times)
		}
	}
}

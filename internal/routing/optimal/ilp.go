package optimal

import (
	"errors"

	"rapid/internal/lp"
	"rapid/internal/packet"
	"rapid/internal/trace"
)

// SolveILP encodes the Appendix-D integer linear program for the given
// instance and solves it exactly with internal/lp. The formulation
// discretizes time into the meeting sequence:
//
//   - H(p,n,k) ∈ {0,1}: node n holds packet p before meeting k
//     (k ∈ [0, E]; the conservation constraint Σ_n H(p,n,k) = 1
//     makes routing single-copy, exactly as the paper's N variables).
//   - X(p,k,dir) ∈ {0,1}: p is forwarded across meeting k in the given
//     direction, feasible only if the holder is at the sending end and
//     the meeting occurs after the packet's creation
//     (the transfer constraints).
//   - Σ_p size(p)·(X(p,k,→)+X(p,k,←)) ≤ bytes_k (bandwidth constraint).
//   - Destinations never forward a delivered packet away, so
//     H(p,dst,·) is monotone and Σ_k seg_k·H(p,dst,k+1) measures the
//     time spent delivered; the objective — minimize total delay with
//     undelivered packets charged their time in system — is then
//     linear (the paper's two-term objective collapsed into one).
//
// Only small instances are tractable (the paper: "these simulations are
// limited to only 6 packets per hour per destination"); ErrTooLarge
// guards the dense solver.
func SolveILP(sched *trace.Schedule, w packet.Workload, maxNodes int) (*Result, error) {
	E := len(sched.Meetings)
	P := len(w)
	nodes := participantNodes(sched, w)
	N := len(nodes)
	if P*N*(E+1) > 6000 {
		return nil, ErrTooLarge
	}
	nodeIdx := make(map[packet.NodeID]int, N)
	for i, n := range nodes {
		nodeIdx[n] = i
	}
	meetings := append([]trace.Meeting(nil), sched.Meetings...)

	// Variable layout:
	//   H(p,n,k) at hBase + p*N*(E+1) + n*(E+1) + k
	//   X(p,k,d) at xBase + p*E*2 + k*2 + d   (d: 0 = A→B, 1 = B→A)
	hBase := 0
	hCount := P * N * (E + 1)
	xBase := hCount
	xCount := P * E * 2
	nv := hCount + xCount

	hVar := func(p, n, k int) int { return hBase + p*N*(E+1) + n*(E+1) + k }
	xVar := func(p, k, d int) int { return xBase + p*E*2 + k*2 + d }

	prob := &lp.Problem{
		NumVars:   nv,
		Objective: make([]float64, nv),
		Upper:     make([]float64, nv),
		Integer:   make([]bool, nv),
	}
	for j := 0; j < nv; j++ {
		prob.Upper[j] = 1
		prob.Integer[j] = true
	}

	// Objective: minimize total delay = Σ_p [(horizon - c_p)
	//  - Σ_k seg_k · H(p,dst,k+1)] — constants dropped, so we
	// *maximize* the delivered-time mass, i.e. minimize its negation.
	for pi, p := range w {
		dn, ok := nodeIdx[p.Dst]
		if !ok {
			continue
		}
		for k := 0; k < E; k++ {
			segEnd := sched.Duration
			if k+1 < E {
				segEnd = meetings[k+1].Time
			}
			seg := segEnd - meetings[k].Time
			if seg <= 0 {
				continue
			}
			prob.Objective[hVar(pi, dn, k+1)] -= seg
		}
	}

	addEq := func(coeffs map[int]float64, rhs float64) {
		prob.Constraints = append(prob.Constraints, lp.Constraint{Coeffs: coeffs, Sense: lp.EQ, RHS: rhs})
	}
	addLE := func(coeffs map[int]float64, rhs float64) {
		prob.Constraints = append(prob.Constraints, lp.Constraint{Coeffs: coeffs, Sense: lp.LE, RHS: rhs})
	}

	for pi, p := range w {
		srcN, ok := nodeIdx[p.Src]
		if !ok {
			return nil, errors.New("optimal: packet source not in node set")
		}
		// Initialization: the source holds the packet at k=0.
		for n := 0; n < N; n++ {
			want := 0.0
			if n == srcN {
				want = 1
			}
			addEq(map[int]float64{hVar(pi, n, 0): 1}, want)
		}
		for k, m := range meetings {
			ai, bi := nodeIdx[m.A], nodeIdx[m.B]
			// Creation-time and destination-stickiness restrictions.
			if m.Time < p.Created {
				addEq(map[int]float64{xVar(pi, k, 0): 1}, 0)
				addEq(map[int]float64{xVar(pi, k, 1): 1}, 0)
			} else {
				if m.A == p.Dst { // dst never forwards away
					addEq(map[int]float64{xVar(pi, k, 0): 1}, 0)
				}
				if m.B == p.Dst {
					addEq(map[int]float64{xVar(pi, k, 1): 1}, 0)
				}
				// Transfer constraints: can only send what you hold.
				addLE(map[int]float64{xVar(pi, k, 0): 1, hVar(pi, ai, k): -1}, 0)
				addLE(map[int]float64{xVar(pi, k, 1): 1, hVar(pi, bi, k): -1}, 0)
			}
			// Holding evolution.
			for n := 0; n < N; n++ {
				c := map[int]float64{
					hVar(pi, n, k+1): 1,
					hVar(pi, n, k):   -1,
				}
				if n == ai {
					c[xVar(pi, k, 0)] = 1  // sent away
					c[xVar(pi, k, 1)] = -1 // received
				}
				if n == bi {
					c[xVar(pi, k, 0)] = -1
					c[xVar(pi, k, 1)] = 1
				}
				addEq(c, 0)
			}
			// Conservation: exactly one holder at every step.
			cons := map[int]float64{}
			for n := 0; n < N; n++ {
				cons[hVar(pi, n, k+1)] = 1
			}
			addEq(cons, 1)
		}
	}
	// Bandwidth constraints per meeting.
	for k, m := range meetings {
		c := map[int]float64{}
		for pi, p := range w {
			c[xVar(pi, k, 0)] = float64(p.Size)
			c[xVar(pi, k, 1)] = float64(p.Size)
		}
		addLE(c, float64(m.Bytes))
	}

	sol, err := lp.SolveILP(prob, lp.BnBOptions{MaxNodes: maxNodes})
	if err != nil {
		return nil, err
	}
	if sol.Status == lp.Infeasible || sol.Status == lp.Unbounded {
		return nil, errors.New("optimal: ILP " + sol.Status.String())
	}

	res := &Result{Horizon: sched.Duration}
	for pi, p := range w {
		d := Delivery{P: p}
		dn := nodeIdx[p.Dst]
		for k := 1; k <= E; k++ {
			if sol.X[hVar(pi, dn, k)] > 0.5 {
				d.Delivered = true
				d.DeliveredAt = meetings[k-1].Time
				break
			}
		}
		if d.Delivered {
			for k := 0; k < E; k++ {
				if sol.X[xVar(pi, k, 0)] > 0.5 || sol.X[xVar(pi, k, 1)] > 0.5 {
					d.Hops++
				}
			}
		}
		res.Deliveries = append(res.Deliveries, d)
	}
	return res, nil
}

// ErrTooLarge reports an instance beyond the dense ILP's practical
// size; use Solve (the oracle) instead.
var ErrTooLarge = errors.New("optimal: instance too large for the exact ILP — use the oracle")

// participantNodes unions schedule and workload endpoints.
func participantNodes(sched *trace.Schedule, w packet.Workload) []packet.NodeID {
	seen := map[packet.NodeID]bool{}
	var out []packet.NodeID
	add := func(id packet.NodeID) {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for _, id := range sched.Nodes() {
		add(id)
	}
	for _, p := range w {
		add(p.Src)
		add(p.Dst)
	}
	return out
}

// TotalDelay sums the Fig. 13 objective over a result (exposed for the
// oracle-vs-ILP certification tests).
func (r *Result) TotalDelay() float64 {
	var sum float64
	for _, d := range r.Deliveries {
		if d.Delivered {
			sum += d.DeliveredAt - d.P.Created
		} else {
			sum += r.Horizon - d.P.Created
		}
	}
	return sum
}

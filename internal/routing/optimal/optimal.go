// Package optimal computes the offline Optimal baseline of §6.2.4: a
// routing schedule with complete a-priori knowledge of node meetings
// and the packet workload, providing an upper bound on the performance
// of any online protocol (Fig. 13).
//
// Two solvers are provided:
//
//   - Solve: an earliest-arrival oracle that routes each packet along
//     its earliest-delivery time-respecting path, reserving per-meeting
//     capacity, followed by local-search improvement passes. It scales
//     to full experiment instances.
//
//   - SolveILP: the Appendix-D integer linear program (single-copy
//     forwarding over discretized meetings), solved exactly with
//     internal/lp. Like the paper's CPLEX runs it only handles small
//     instances; tests use it to certify the oracle's optimality gap.
//
// Both solvers are single-copy: with complete future knowledge,
// replication cannot improve delivery of a packet beyond its best path,
// it can only consume capacity other packets need — which is why the
// paper's ILP also carries a single-copy conservation constraint.
package optimal

import (
	"math"
	"sort"

	"rapid/internal/packet"
	"rapid/internal/trace"
)

// Delivery describes one packet's offline-routing outcome.
type Delivery struct {
	P           *packet.Packet
	Delivered   bool
	DeliveredAt float64
	Hops        int
}

// Result is the offline schedule's outcome for a workload.
type Result struct {
	Deliveries []Delivery
	// Horizon is the schedule duration used for undelivered penalties.
	Horizon float64
}

// AvgDelayAll returns the Fig. 13 objective: mean delay with
// undelivered packets counted at their time in system.
func (r *Result) AvgDelayAll() float64 {
	if len(r.Deliveries) == 0 {
		return 0
	}
	var sum float64
	for _, d := range r.Deliveries {
		if d.Delivered {
			sum += d.DeliveredAt - d.P.Created
		} else {
			sum += r.Horizon - d.P.Created
		}
	}
	return sum / float64(len(r.Deliveries))
}

// DeliveryRate returns the fraction delivered.
func (r *Result) DeliveryRate() float64 {
	if len(r.Deliveries) == 0 {
		return 0
	}
	n := 0
	for _, d := range r.Deliveries {
		if d.Delivered {
			n++
		}
	}
	return float64(n) / float64(len(r.Deliveries))
}

// Options tunes the oracle.
type Options struct {
	// ImprovePasses is the number of local-search sweeps after the
	// greedy construction (default 2).
	ImprovePasses int
}

// Solve runs the earliest-arrival oracle.
func Solve(sched *trace.Schedule, w packet.Workload, opts Options) *Result {
	if opts.ImprovePasses < 0 {
		opts.ImprovePasses = 0
	} else if opts.ImprovePasses == 0 {
		opts.ImprovePasses = 2
	}
	meetings := append([]trace.Meeting(nil), sched.Meetings...)
	// Duration-aware contacts fold in as point meetings at their start
	// carrying the full-window capacity. This is a relaxation — the
	// oracle may move a window's last byte at its first instant — so the
	// result stays a valid upper bound on any online protocol running
	// the real windowed schedule (every realizable transfer within a
	// window maps to a no-later transfer at the relaxed meeting, with
	// identical per-opportunity capacity).
	for _, c := range sched.Contacts {
		meetings = append(meetings, trace.Meeting{
			A: c.A, B: c.B, Time: c.Start, Bytes: c.Capacity(),
		})
	}
	sort.SliceStable(meetings, func(i, j int) bool { return meetings[i].Time < meetings[j].Time })
	residual := make([]int64, len(meetings))
	for i, m := range meetings {
		residual[i] = m.Bytes
	}

	// paths[i] holds the meeting indices used by packet i.
	ordered := append(packet.Workload{}, w...)
	ordered.Sort()
	paths := make([][]int, len(ordered))
	arrivals := make([]float64, len(ordered))
	for i := range arrivals {
		arrivals[i] = math.Inf(1)
	}

	route := func(i int) {
		p := ordered[i]
		path, at := earliestPath(meetings, residual, p)
		if path != nil {
			for _, mi := range path {
				residual[mi] -= p.Size
			}
			paths[i] = path
			arrivals[i] = at
		} else {
			paths[i] = nil
			arrivals[i] = math.Inf(1)
		}
	}
	release := func(i int) {
		for _, mi := range paths[i] {
			residual[mi] += ordered[i].Size
		}
		paths[i] = nil
		arrivals[i] = math.Inf(1)
	}

	// Greedy construction in creation order.
	for i := range ordered {
		route(i)
	}
	// contribution is a packet's term in the Fig. 13 objective.
	contribution := func(i int) float64 {
		if math.IsInf(arrivals[i], 1) {
			return sched.Duration - ordered[i].Created
		}
		return arrivals[i] - ordered[i].Created
	}
	restore := func(i int, path []int, at float64) {
		paths[i] = path
		arrivals[i] = at
		for _, mi := range path {
			residual[mi] -= ordered[i].Size
		}
	}

	for pass := 0; pass < opts.ImprovePasses; pass++ {
		improvedAny := false
		// Sweep 1: re-route each packet with everyone else's
		// reservations fixed; each step can only lower the packet's
		// own arrival, so the total objective is non-increasing.
		for i := range ordered {
			old := arrivals[i]
			oldPath := paths[i]
			release(i)
			route(i)
			if arrivals[i] > old || (math.IsInf(arrivals[i], 1) && !math.IsInf(old, 1)) {
				release(i)
				restore(i, oldPath, old)
			} else if arrivals[i] < old {
				improvedAny = true
			}
		}
		// Sweep 2: pairwise eviction. A packet routed worse than its
		// capacity-ignoring ideal identifies the reservations blocking
		// that ideal path; evicting one blocker and routing the victim
		// first may lower the combined objective (the case greedy
		// construction cannot fix: an early packet camping on a later
		// packet's only path).
		fullCap := make([]int64, len(meetings))
		for i, m := range meetings {
			fullCap[i] = m.Bytes
		}
		for i2 := range ordered {
			ideal, idealAt := earliestPath(meetings, fullCap, ordered[i2])
			if ideal == nil || idealAt >= arrivals[i2] {
				continue // already optimal for itself
			}
			// Blockers: packets holding capacity on the ideal path's
			// saturated meetings.
			blockers := map[int]bool{}
			for _, mi := range ideal {
				if residual[mi] < ordered[i2].Size {
					for i1 := range ordered {
						if i1 == i2 {
							continue
						}
						for _, pm := range paths[i1] {
							if pm == mi {
								blockers[i1] = true
							}
						}
					}
				}
			}
			for i1 := range blockers {
				before := contribution(i1) + contribution(i2)
				old1, old1At := paths[i1], arrivals[i1]
				old2, old2At := paths[i2], arrivals[i2]
				release(i1)
				release(i2)
				route(i2)
				route(i1)
				after := contribution(i1) + contribution(i2)
				if after < before-1e-12 {
					improvedAny = true
					break // i2 improved; move to the next victim
				}
				release(i1)
				release(i2)
				restore(i1, old1, old1At)
				restore(i2, old2, old2At)
			}
		}
		if !improvedAny {
			break
		}
	}

	res := &Result{Horizon: sched.Duration}
	for i, p := range ordered {
		d := Delivery{P: p}
		if paths[i] != nil {
			d.Delivered = true
			d.DeliveredAt = arrivals[i]
			d.Hops = len(paths[i])
		}
		res.Deliveries = append(res.Deliveries, d)
	}
	return res
}

// earliestPath computes the earliest-arrival time-respecting path for p
// over meetings with sufficient residual capacity, returning the
// meeting indices used and the arrival time (nil if unreachable).
func earliestPath(meetings []trace.Meeting, residual []int64, p *packet.Packet) ([]int, float64) {
	arrive := map[packet.NodeID]float64{p.Src: p.Created}
	via := map[packet.NodeID]int{} // meeting index that first reached the node
	for i, m := range meetings {
		if m.Time < p.Created {
			continue
		}
		if residual[i] < p.Size {
			continue
		}
		// Snapshot both endpoints before relaxing so the packet cannot
		// bounce A→B→A within the same meeting.
		ta, aok := arrive[m.A]
		tb, bok := arrive[m.B]
		if aok && ta <= m.Time {
			if cur, ok := arrive[m.B]; !ok || m.Time < cur {
				arrive[m.B] = m.Time
				via[m.B] = i
			}
		}
		if bok && tb <= m.Time {
			if cur, ok := arrive[m.A]; !ok || m.Time < cur {
				arrive[m.A] = m.Time
				via[m.A] = i
			}
		}
		if at, ok := arrive[p.Dst]; ok && at <= m.Time {
			break // destination reached; later meetings cannot improve
		}
	}
	at, ok := arrive[p.Dst]
	if !ok {
		return nil, math.Inf(1)
	}
	// Reconstruct the meeting chain.
	var path []int
	node := p.Dst
	for node != p.Src {
		mi, ok := via[node]
		if !ok {
			return nil, math.Inf(1)
		}
		path = append(path, mi)
		m := meetings[mi]
		if m.A == node {
			node = m.B
		} else {
			node = m.A
		}
		if len(path) > len(meetings) {
			return nil, math.Inf(1) // defensive: corrupted via chain
		}
	}
	// Reverse into source→destination order.
	for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
		path[l], path[r] = path[r], path[l]
	}
	return path, at
}

package optimal

import (
	"math/rand"
	"testing"

	"rapid/internal/packet"
	"rapid/internal/trace"
)

func chainSchedule() *trace.Schedule {
	// 0-1 at t=10, 1-2 at t=20, 0-2 at t=50.
	return &trace.Schedule{Duration: 100, Meetings: []trace.Meeting{
		{A: 0, B: 1, Time: 10, Bytes: 1000},
		{A: 1, B: 2, Time: 20, Bytes: 1000},
		{A: 0, B: 2, Time: 50, Bytes: 1000},
	}}
}

func TestOracleFindsEarliestPath(t *testing.T) {
	w := packet.Workload{{ID: 1, Src: 0, Dst: 2, Size: 100, Created: 0}}
	res := Solve(chainSchedule(), w, Options{})
	if !res.Deliveries[0].Delivered {
		t.Fatal("not delivered")
	}
	// Relay path 0→1→2 arrives at 20, beating the direct meeting at 50.
	if got := res.Deliveries[0].DeliveredAt; got != 20 {
		t.Errorf("delivered at %v want 20", got)
	}
	if res.Deliveries[0].Hops != 2 {
		t.Errorf("hops %d want 2", res.Deliveries[0].Hops)
	}
}

func TestOracleRespectsCreationTime(t *testing.T) {
	w := packet.Workload{{ID: 1, Src: 0, Dst: 2, Size: 100, Created: 15}}
	res := Solve(chainSchedule(), w, Options{})
	// Created after the 0-1 meeting: only the direct meeting at 50 works.
	if got := res.Deliveries[0].DeliveredAt; got != 50 {
		t.Errorf("delivered at %v want 50", got)
	}
}

func TestOracleRespectsCapacity(t *testing.T) {
	sched := &trace.Schedule{Duration: 100, Meetings: []trace.Meeting{
		{A: 0, B: 1, Time: 10, Bytes: 100}, // fits one packet only
		{A: 0, B: 1, Time: 40, Bytes: 100},
	}}
	w := packet.Workload{
		{ID: 1, Src: 0, Dst: 1, Size: 100, Created: 0},
		{ID: 2, Src: 0, Dst: 1, Size: 100, Created: 0},
	}
	res := Solve(sched, w, Options{})
	times := []float64{res.Deliveries[0].DeliveredAt, res.Deliveries[1].DeliveredAt}
	if !res.Deliveries[0].Delivered || !res.Deliveries[1].Delivered {
		t.Fatal("both packets should be delivered across the two meetings")
	}
	if !((times[0] == 10 && times[1] == 40) || (times[0] == 40 && times[1] == 10)) {
		t.Errorf("delivery times %v want {10,40}", times)
	}
}

func TestOracleUndelivered(t *testing.T) {
	w := packet.Workload{{ID: 1, Src: 0, Dst: 9, Size: 100, Created: 0}}
	res := Solve(chainSchedule(), w, Options{})
	if res.Deliveries[0].Delivered {
		t.Fatal("unreachable destination delivered")
	}
	if res.AvgDelayAll() != 100 { // horizon penalty
		t.Errorf("avg delay all %v want 100", res.AvgDelayAll())
	}
	if res.DeliveryRate() != 0 {
		t.Errorf("rate %v", res.DeliveryRate())
	}
}

func TestILPMatchesOracleOnSimpleChain(t *testing.T) {
	w := packet.Workload{{ID: 1, Src: 0, Dst: 2, Size: 100, Created: 0}}
	sched := chainSchedule()
	oracle := Solve(sched, w, Options{})
	ilp, err := SolveILP(sched, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ilp.TotalDelay() != oracle.TotalDelay() {
		t.Errorf("ILP delay %v oracle %v", ilp.TotalDelay(), oracle.TotalDelay())
	}
	if !ilp.Deliveries[0].Delivered || ilp.Deliveries[0].DeliveredAt != 20 {
		t.Errorf("ILP delivery %+v", ilp.Deliveries[0])
	}
}

func TestILPBeatsGreedyWhenOrderMatters(t *testing.T) {
	// Two packets, one shared bottleneck meeting that only fits one.
	// p1 (created first) can also use a later meeting; greedy-by-
	// creation sends p1 through the bottleneck, forcing p2 to miss its
	// only chance. The optimum routes p2 through the bottleneck. The
	// oracle's improvement pass must recover this, matching the ILP.
	sched := &trace.Schedule{Duration: 200, Meetings: []trace.Meeting{
		{A: 0, B: 2, Time: 10, Bytes: 100}, // bottleneck: p1 or p2
		{A: 0, B: 2, Time: 50, Bytes: 100}, // second chance (for p1 dst 2)
	}}
	w := packet.Workload{
		{ID: 1, Src: 0, Dst: 2, Size: 100, Created: 0},
		{ID: 2, Src: 0, Dst: 2, Size: 100, Created: 1},
	}
	oracle := Solve(sched, w, Options{})
	ilp, err := SolveILP(sched, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if oracle.DeliveryRate() != 1 || ilp.DeliveryRate() != 1 {
		t.Fatalf("both should deliver everything: oracle %v ilp %v",
			oracle.DeliveryRate(), ilp.DeliveryRate())
	}
	if oracle.TotalDelay() > ilp.TotalDelay()+1e-6 {
		t.Errorf("oracle delay %v worse than ILP %v", oracle.TotalDelay(), ilp.TotalDelay())
	}
}

// Property-style cross-check: on random tiny instances the oracle's
// objective never beats the exact ILP optimum (the ILP is a true lower
// bound) and stays within a modest factor of it.
func TestOracleNearILPOnRandomInstances(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		r := rand.New(rand.NewSource(seed))
		nNodes := 3 + r.Intn(2)
		nMeet := 5 + r.Intn(4)
		nPkts := 1 + r.Intn(3)
		sched := &trace.Schedule{Duration: 100}
		tm := 0.0
		for i := 0; i < nMeet; i++ {
			tm += 1 + r.Float64()*8
			a := packet.NodeID(r.Intn(nNodes))
			b := packet.NodeID(r.Intn(nNodes))
			for b == a {
				b = packet.NodeID(r.Intn(nNodes))
			}
			sched.Meetings = append(sched.Meetings, trace.Meeting{
				A: a, B: b, Time: tm, Bytes: int64(100 * (1 + r.Intn(2))),
			})
		}
		var w packet.Workload
		for i := 0; i < nPkts; i++ {
			src := packet.NodeID(r.Intn(nNodes))
			dst := packet.NodeID(r.Intn(nNodes))
			for dst == src {
				dst = packet.NodeID(r.Intn(nNodes))
			}
			w = append(w, &packet.Packet{
				ID: packet.ID(i + 1), Src: src, Dst: dst, Size: 100,
				Created: r.Float64() * 20,
			})
		}
		oracle := Solve(sched, w, Options{ImprovePasses: 3})
		ilp, err := SolveILP(sched, w, 50000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if oracle.TotalDelay() < ilp.TotalDelay()-1e-6 {
			t.Errorf("seed %d: oracle %v beats ILP optimum %v (ILP must be a lower bound)",
				seed, oracle.TotalDelay(), ilp.TotalDelay())
		}
		if ilp.TotalDelay() > 0 && oracle.TotalDelay() > ilp.TotalDelay()*1.5+1e-6 {
			t.Errorf("seed %d: oracle %v too far above ILP %v",
				seed, oracle.TotalDelay(), ilp.TotalDelay())
		}
	}
}

func TestILPTooLarge(t *testing.T) {
	d := trace.NewDieselNet(trace.DefaultDieselNet())
	sched := d.Day(0)
	var w packet.Workload
	for i := 0; i < 50; i++ {
		w = append(w, &packet.Packet{ID: packet.ID(i + 1), Src: 0, Dst: 1, Size: 100})
	}
	if _, err := SolveILP(sched, w, 0); err != ErrTooLarge {
		t.Errorf("expected ErrTooLarge, got %v", err)
	}
}

package randomw

import (
	"testing"

	"rapid/internal/buffer"
	"rapid/internal/packet"
	"rapid/internal/routing"
	"rapid/internal/sim"
	"rapid/internal/trace"
)

func TestPlanIsShuffledButDeterministic(t *testing.T) {
	build := func(seed int64) []packet.ID {
		net := routing.NewNetwork(sim.New(seed), []packet.NodeID{0, 1},
			New(), routing.Config{Mode: routing.ControlNone})
		n0 := net.Node(0)
		for i := packet.ID(1); i <= 20; i++ {
			n0.Store.Insert(&buffer.Entry{P: &packet.Packet{ID: i, Dst: 5, Size: 1}}, nil)
		}
		plan := n0.Router.PlanReplication(net.Node(1), 0)
		out := make([]packet.ID, len(plan))
		for i, e := range plan {
			out[i] = e.P.ID
		}
		return out
	}
	a := build(1)
	b := build(1)
	c := build(2)
	if len(a) != 20 {
		t.Fatalf("plan size %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different shuffles")
		}
	}
	sorted := true
	diff := false
	for i := range a {
		if i > 0 && a[i] < a[i-1] {
			sorted = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if sorted {
		t.Error("plan is not shuffled")
	}
	if !diff {
		t.Error("different seeds produced identical shuffles")
	}
}

func TestEndToEndRandom(t *testing.T) {
	sched := &trace.Schedule{Duration: 100, Meetings: []trace.Meeting{
		{A: 0, B: 1, Time: 10, Bytes: 1 << 16},
		{A: 1, B: 2, Time: 40, Bytes: 1 << 16},
	}}
	w := packet.Workload{{ID: 1, Src: 0, Dst: 2, Size: 1024, Created: 0}}
	c := routing.Run(routing.Scenario{
		Schedule: sched, Workload: w, Factory: New(),
		Cfg:  routing.Config{Mode: routing.ControlNone},
		Seed: 3,
	})
	if got := c.Summarize(100).Delivered; got != 1 {
		t.Errorf("delivered %d want 1", got)
	}
}

func TestRandomWithAcksPurges(t *testing.T) {
	// With AcksOnly control, a delivered packet's replicas get purged
	// at later meetings instead of being re-replicated.
	sched := &trace.Schedule{Duration: 200, Meetings: []trace.Meeting{
		{A: 0, B: 1, Time: 10, Bytes: 1 << 16}, // replicate
		{A: 0, B: 2, Time: 20, Bytes: 1 << 16}, // deliver
		{A: 0, B: 1, Time: 30, Bytes: 1 << 16}, // ack to 1
	}}
	w := packet.Workload{{ID: 1, Src: 0, Dst: 2, Size: 1024, Created: 0}}
	c := routing.Run(routing.Scenario{
		Schedule: sched, Workload: w, Factory: New(),
		Cfg:  routing.Config{Mode: routing.ControlInBand, AcksOnly: true, MetaFraction: -1},
		Seed: 3,
	})
	s := c.Summarize(200)
	if s.Delivered != 1 {
		t.Fatalf("delivered %d", s.Delivered)
	}
	if s.MetaBytes == 0 {
		t.Error("ack flood sent no bytes")
	}
}

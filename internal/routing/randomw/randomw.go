// Package randomw implements the Random baseline of §6.1: "Random
// replicates randomly chosen packets for the duration of the transfer
// opportunity", with random eviction under storage pressure. With
// routing.Config{AcksOnly: true} it becomes the "Random with acks"
// component arm of Fig. 14.
package randomw

import (
	"sort"

	"rapid/internal/buffer"
	"rapid/internal/control"
	"rapid/internal/packet"
	"rapid/internal/routing"
)

// Router replicates uniformly at random, deterministically seeded by
// the engine's "randomw" stream.
type Router struct {
	node *routing.Node
}

// New returns a Random router factory.
func New() routing.RouterFactory {
	return func(packet.NodeID) routing.Router { return &Router{} }
}

// Name implements routing.Router.
func (r *Router) Name() string { return "random" }

// Attach implements routing.Router.
func (r *Router) Attach(n *routing.Node) { r.node = n }

// Generate implements routing.Router.
func (r *Router) Generate(p *packet.Packet, now float64) {
	r.node.Store.Insert(&buffer.Entry{P: p, ReceivedAt: now, Own: true}, r.evict)
}

// Inventory implements routing.Router (Random announces nothing).
func (r *Router) Inventory(now float64) []control.InventoryItem { return nil }

// DirectQueue implements routing.Router: any deterministic order; the
// destination takes everything that fits regardless.
func (r *Router) DirectQueue(peer packet.NodeID, now float64) []*buffer.Entry {
	var out []*buffer.Entry
	for _, e := range r.node.Store.Entries() {
		if e.P.Dst == peer {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].P.ID < out[j].P.ID })
	return out
}

// PlanReplication implements routing.Router: a uniform shuffle of the
// buffer.
func (r *Router) PlanReplication(peer *routing.Node, now float64) []*buffer.Entry {
	var out []*buffer.Entry
	for _, e := range r.node.Store.Entries() {
		if e.P.Dst != peer.ID {
			out = append(out, e)
		}
	}
	// Stable pre-order, then Fisher-Yates with the engine's stream so
	// runs are reproducible per seed.
	sort.Slice(out, func(i, j int) bool { return out[i].P.ID < out[j].P.ID })
	rng := r.node.Net.Engine.Rand("randomw")
	for i := len(out) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Accept implements routing.Router.
func (r *Router) Accept(e *buffer.Entry, from packet.NodeID, now float64) bool {
	return r.node.Store.Insert(e, r.evict)
}

// evict drops a pseudo-random victim, deterministically derived from
// the packet ID.
func (r *Router) evict(e *buffer.Entry) float64 {
	h := uint64(e.P.ID)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9
	h ^= h >> 31
	return float64(h%1000) / 1000
}

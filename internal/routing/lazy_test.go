package routing_test

import (
	"math/rand"
	"testing"

	"rapid/internal/core"
	"rapid/internal/packet"
	"rapid/internal/routing"
	"rapid/internal/routing/epidemic"
	"rapid/internal/trace"
)

func testRapidFactory() routing.RouterFactory    { return core.New(core.AvgDelay) }
func testEpidemicFactory() routing.RouterFactory { return epidemic.New() }

// lazyPlan builds a small mixed contact plan: periodic point meetings,
// windowed passes (one clipped by the horizon), phase collisions across
// pairs — every same-instant ordering case the banded scheduler has to
// get right.
func lazyPlan() *trace.ContactPlan {
	cp := &trace.ContactPlan{Duration: 600}
	cp.Add(0, 1, 10, 60, 64<<10)
	cp.Add(1, 2, 10, 60, 64<<10) // collides with the pair above
	cp.Add(2, 3, 25, 45, 64<<10)
	cp.Add(0, 3, 95, 0, 64<<10) // one-shot
	cp.AddWindow(1, 3, 40, 120, 30, 4<<10)
	cp.AddWindow(0, 2, 550, 120, 100, 4<<10) // clipped at the horizon
	return cp
}

// lazyWorkload offers Poisson traffic among the plan's nodes.
func lazyWorkload(t *testing.T, duration float64) packet.Workload {
	t.Helper()
	w := packet.Generate(packet.GenConfig{
		Nodes:                 []packet.NodeID{0, 1, 2, 3},
		PacketsPerHourPerDest: 4,
		LoadWindow:            50,
		Duration:              duration,
		PacketSize:            1 << 10,
		Deadline:              200,
		FirstID:               1,
	}, rand.New(rand.NewSource(9)))
	if len(w) == 0 {
		t.Fatal("workload generator produced no packets")
	}
	return w
}

// summarize runs the scenario and reduces it to the comparable summary.
func summarize(sc routing.Scenario, horizon float64) any {
	return routing.Run(sc).Summarize(horizon)
}

// TestLazyPlanMatchesMaterialized is the layout-equivalence pin of the
// streaming plan path: the same plan driven through the compressed
// cursor produces the byte-identical summary as its fully materialized
// expansion, for every protocol arm that does not force the fallback.
func TestLazyPlanMatchesMaterialized(t *testing.T) {
	cp := lazyPlan()
	w := lazyWorkload(t, cp.Duration)
	for _, mk := range []struct {
		name    string
		factory routing.RouterFactory
	}{
		{"rapid", testRapidFactory()},
		{"epidemic", testEpidemicFactory()},
	} {
		t.Run(mk.name, func(t *testing.T) {
			cfg := routing.Config{
				Mode: routing.ControlInBand, MetaFraction: -1, Hops: 3,
				BufferBytes: 64 << 10, DefaultTransferBytes: 64 << 10,
			}
			mat := routing.Scenario{
				Schedule: cp.Expand(), Workload: w,
				Factory: mk.factory, Cfg: cfg, Seed: 5,
			}
			lazy := routing.Scenario{
				Plan: cp, Workload: w,
				Factory: mk.factory, Cfg: cfg, Seed: 5,
			}
			got, want := summarize(lazy, cp.Duration), summarize(mat, cp.Duration)
			if got != want {
				t.Errorf("lazy plan diverged from materialized schedule:\n  materialized: %+v\n  lazy:         %+v", want, got)
			}
		})
	}
}

// TestStreamingSourceMatchesWorkload: feeding the identical packet
// sequence through the on-demand source pump instead of upfront
// scheduling leaves the run byte-identical.
func TestStreamingSourceMatchesWorkload(t *testing.T) {
	cp := lazyPlan()
	w := lazyWorkload(t, cp.Duration)
	cfg := routing.Config{
		Mode: routing.ControlInBand, MetaFraction: -1, Hops: 3,
		BufferBytes: 64 << 10, DefaultTransferBytes: 64 << 10,
	}
	sched := cp.Expand()
	mat := routing.Scenario{
		Schedule: sched, Workload: w,
		Factory: testRapidFactory(), Cfg: cfg, Seed: 5,
	}
	streamed := routing.Scenario{
		Schedule: sched, Source: packet.NewSliceSource(w),
		Factory: testRapidFactory(), Cfg: cfg, Seed: 5,
	}
	got, want := summarize(streamed, cp.Duration), summarize(mat, cp.Duration)
	if got != want {
		t.Errorf("streamed workload diverged from materialized workload:\n  materialized: %+v\n  streamed:     %+v", want, got)
	}
}

// TestLazyStreamingEndToEnd combines both streaming layers — plan
// cursor and source pump — against the doubly materialized run.
func TestLazyStreamingEndToEnd(t *testing.T) {
	cp := lazyPlan()
	w := lazyWorkload(t, cp.Duration)
	cfg := routing.Config{
		Mode: routing.ControlInBand, MetaFraction: -1, Hops: 3,
		BufferBytes: 64 << 10, DefaultTransferBytes: 64 << 10,
	}
	mat := routing.Scenario{
		Schedule: cp.Expand(), Workload: w,
		Factory: testRapidFactory(), Cfg: cfg, Seed: 5,
	}
	both := routing.Scenario{
		Plan: cp, Source: packet.NewSliceSource(w),
		Factory: testRapidFactory(), Cfg: cfg, Seed: 5,
	}
	got, want := summarize(both, cp.Duration), summarize(mat, cp.Duration)
	if got != want {
		t.Errorf("fully streamed run diverged from fully materialized run:\n  materialized: %+v\n  streamed:     %+v", want, got)
	}
}

package routing_test

import (
	"math/rand"
	"reflect"
	"testing"

	"rapid/internal/core"
	"rapid/internal/disrupt"
	"rapid/internal/mobility"
	"rapid/internal/packet"
	"rapid/internal/routing"
	"rapid/internal/routing/epidemic"
	"rapid/internal/trace"
)

// windowPair builds a one-window scenario between nodes 0 and 1 with
// the in-band metadata channel disabled, so byte and time accounting
// are exact.
func windowPair(w packet.Workload, contacts ...trace.Contact) routing.Scenario {
	return routing.Scenario{
		Schedule: &trace.Schedule{Duration: 200, Contacts: contacts},
		Workload: w,
		Factory:  epidemic.New(),
		Cfg:      routing.Config{Mode: routing.ControlInBand, MetaFraction: 0},
		Seed:     1,
	}
}

// TestZeroDurationContactsMatchMeetings: a schedule expressed as
// zero-duration contacts produces the byte-identical summary of the
// same schedule expressed as point meetings — the degradation rule that
// keeps every legacy schedule valid.
func TestZeroDurationContactsMatchMeetings(t *testing.T) {
	model := mobility.Exponential{Config: mobility.Config{
		Nodes: 10, Duration: 600, MeanMeeting: 30, TransferBytes: 4 << 10,
	}}
	sched := model.Schedule(rand.New(rand.NewSource(7)))
	asContacts := &trace.Schedule{Duration: sched.Duration}
	for _, m := range sched.Meetings {
		asContacts.Contacts = append(asContacts.Contacts,
			trace.Contact{A: m.A, B: m.B, Start: m.Time, Bytes: m.Bytes})
	}
	w := packet.Generate(packet.GenConfig{
		Nodes: sched.Nodes(), PacketsPerHourPerDest: 5, LoadWindow: 100,
		Duration: 600, PacketSize: 1024, FirstID: 1,
	}, rand.New(rand.NewSource(8)))

	for _, arm := range []struct {
		name    string
		factory routing.RouterFactory
	}{
		{"epidemic", epidemic.New()},
		{"rapid", core.New(core.AvgDelay)},
	} {
		cfg := routing.Config{BufferBytes: 64 << 10, Mode: routing.ControlInBand, MetaFraction: -1}
		run := func(s *trace.Schedule) interface{} {
			return routing.Run(routing.Scenario{
				Schedule: s, Workload: w, Factory: arm.factory, Cfg: cfg, Seed: 3,
			}).Summarize(s.Duration)
		}
		if a, b := run(sched), run(asContacts); !reflect.DeepEqual(a, b) {
			t.Errorf("%s: zero-duration contacts diverge from meetings:\n%+v\n%+v", arm.name, a, b)
		}
	}
}

// TestWindowStreamsAtLinkRate: a packet streamed across a window is
// delivered when its last byte arrives — Start + Size/RateBps — not at
// the window's start instant.
func TestWindowStreamsAtLinkRate(t *testing.T) {
	w := packet.Workload{{ID: 1, Src: 0, Dst: 1, Size: 500, Created: 10}}
	c := routing.Run(windowPair(w,
		trace.Contact{A: 0, B: 1, Start: 50, Duration: 10, RateBps: 100}))
	s := c.Summarize(200)
	if s.Delivered != 1 {
		t.Fatalf("delivered=%d want 1", s.Delivered)
	}
	// 500 B at 100 B/s: completes at t=55; created at 10 → delay 45.
	if s.AvgDelay != 45 {
		t.Errorf("delay=%v want 45 (windowed transfers must take Size/Rate)", s.AvgDelay)
	}
	if s.OpportunityBytes != 1000 {
		t.Errorf("opportunity=%d want Rate×Duration=1000", s.OpportunityBytes)
	}
}

// TestWindowedMatchesPointDeliverySet: a lone window with capacity
// equal to a point meeting's opportunity delivers the same packet set
// and moves the same data bytes — delays differ (streaming takes
// time), feasibility does not.
func TestWindowedMatchesPointDeliverySet(t *testing.T) {
	var w packet.Workload
	for i := 0; i < 4; i++ {
		w = append(w, &packet.Packet{ID: packet.ID(i + 1), Src: 0, Dst: 1, Size: 1024, Created: float64(i)})
	}
	w = append(w, &packet.Packet{ID: 9, Src: 1, Dst: 0, Size: 1024, Created: 2})
	w.Sort()

	point := windowPair(w, trace.Contact{A: 0, B: 1, Start: 50, Bytes: 5000})
	windowed := windowPair(w, trace.Contact{A: 0, B: 1, Start: 50, Duration: 5, RateBps: 1000})
	sp := routing.Run(point).Summarize(200)
	sw := routing.Run(windowed).Summarize(200)
	if sp.Delivered != sw.Delivered || sp.DataBytes != sw.DataBytes {
		t.Errorf("window diverges from equal-capacity point: point %d/%dB, window %d/%dB",
			sp.Delivered, sp.DataBytes, sw.Delivered, sw.DataBytes)
	}
	if sp.Delivered != 4 { // the 5th packet exceeds the shared budget
		t.Errorf("delivered=%d want 4", sp.Delivered)
	}
}

// TestOverlappingWindowsShareRadio: two simultaneous windows at one
// node halve each other's rate, so a packet that fits a dedicated
// window is cut off when the radio is shared — and delivered again once
// the windows are staggered.
func TestOverlappingWindowsShareRadio(t *testing.T) {
	w := packet.Workload{
		{ID: 1, Src: 0, Dst: 1, Size: 900, Created: 0},
		{ID: 2, Src: 0, Dst: 2, Size: 900, Created: 0},
	}
	// Overlapping: node 0 serves both windows at once → 50 B/s each →
	// 900 B needs 18 s against a 10 s window: both cut off.
	overlap := routing.Run(windowPair(w,
		trace.Contact{A: 0, B: 1, Start: 50, Duration: 10, RateBps: 100},
		trace.Contact{A: 0, B: 2, Start: 50, Duration: 10, RateBps: 100},
	)).Summarize(200)
	if overlap.Delivered != 0 {
		t.Errorf("overlapping windows delivered %d, want 0 (shared radio cuts both off)", overlap.Delivered)
	}
	if overlap.DataBytes != 0 {
		t.Errorf("cut-off transfers counted %d data bytes", overlap.DataBytes)
	}

	// Staggered: each window has the radio to itself → 9 s per packet.
	staggered := routing.Run(windowPair(w,
		trace.Contact{A: 0, B: 1, Start: 50, Duration: 10, RateBps: 100},
		trace.Contact{A: 0, B: 2, Start: 70, Duration: 10, RateBps: 100},
	)).Summarize(200)
	if staggered.Delivered != 2 {
		t.Errorf("staggered windows delivered %d, want 2", staggered.Delivered)
	}
}

// TestWindowReleasesRadioMidFlight: when one of two overlapping windows
// closes, the survivor's in-flight transfer speeds back up to the full
// rate and completes within its window.
func TestWindowReleasesRadioMidFlight(t *testing.T) {
	w := packet.Workload{{ID: 1, Src: 0, Dst: 1, Size: 900, Created: 0}}
	// Window (0,1) spans [50,62); a second window (0,2) occupies the
	// radio over [50,54). The transfer runs at 50 B/s for 4 s (200 B),
	// then 100 B/s for the remaining 700 B → completes at 61 < 62.
	c := routing.Run(windowPair(w,
		trace.Contact{A: 0, B: 1, Start: 50, Duration: 12, RateBps: 100},
		trace.Contact{A: 0, B: 2, Start: 50, Duration: 4, RateBps: 100},
	))
	s := c.Summarize(200)
	if s.Delivered != 1 {
		t.Fatalf("delivered=%d want 1 (radio freed mid-flight)", s.Delivered)
	}
	if s.AvgDelay != 61 {
		t.Errorf("delay=%v want 61 (rate must rebound when the other window closes)", s.AvgDelay)
	}
}

// TestSessionInvariantAllControlModes: control+data bytes (both
// directions) never exceed the opportunity, for point meetings and for
// windows, across every ControlMode and metadata cap. Single-contact
// scenarios make the aggregate assertion a per-contact one.
func TestSessionInvariantAllControlModes(t *testing.T) {
	var w packet.Workload
	for i := 0; i < 25; i++ {
		w = append(w, &packet.Packet{ID: packet.ID(i + 1), Src: 0, Dst: 2, Size: 512, Created: float64(i % 10)})
		w = append(w, &packet.Packet{ID: packet.ID(i + 100), Src: 1, Dst: 3, Size: 512, Created: float64(i % 10)})
	}
	w.Sort()
	contacts := map[string]trace.Contact{
		"point":  {A: 0, B: 1, Start: 20, Bytes: 3000},
		"window": {A: 0, B: 1, Start: 20, Duration: 15, RateBps: 200},
	}
	modes := []struct {
		name string
		mode routing.ControlMode
		frac float64
	}{
		{"in-band-uncapped", routing.ControlInBand, -1},
		{"in-band-capped", routing.ControlInBand, 0.1},
		{"in-band-disabled", routing.ControlInBand, 0},
		{"global", routing.ControlGlobal, -1},
		{"global-zero-frac", routing.ControlGlobal, 0},
		{"none", routing.ControlNone, -1},
	}
	for cname, contact := range contacts {
		for _, m := range modes {
			c := routing.Run(routing.Scenario{
				Schedule: &trace.Schedule{Duration: 100, Contacts: []trace.Contact{contact}},
				Workload: w,
				Factory:  core.New(core.AvgDelay),
				Cfg:      routing.Config{Mode: m.mode, MetaFraction: m.frac, DefaultTransferBytes: 1000},
				Seed:     1,
			})
			s := c.Summarize(100)
			if s.DataBytes+s.MetaBytes > s.OpportunityBytes {
				t.Errorf("%s/%s: data %d + meta %d exceed opportunity %d",
					cname, m.name, s.DataBytes, s.MetaBytes, s.OpportunityBytes)
			}
			if m.mode == routing.ControlGlobal && s.MetaBytes != 0 {
				t.Errorf("%s/%s: global channel charged %d meta bytes", cname, m.name, s.MetaBytes)
			}
		}
	}
}

// TestGlobalChannelSyncsWithZeroMetaFraction: MetaFraction == 0
// disables the in-band channel only; the instant global channel costs
// nothing, so its snapshot sync must run regardless of the cap — a
// ControlGlobal run with a zero cap is identical to an uncapped one.
func TestGlobalChannelSyncsWithZeroMetaFraction(t *testing.T) {
	model := mobility.Exponential{Config: mobility.Config{
		Nodes: 8, Duration: 500, MeanMeeting: 40, TransferBytes: 8 << 10,
	}}
	sched := model.Schedule(rand.New(rand.NewSource(11)))
	w := packet.Generate(packet.GenConfig{
		Nodes: sched.Nodes(), PacketsPerHourPerDest: 4, LoadWindow: 100,
		Duration: 500, PacketSize: 1024, FirstID: 1,
	}, rand.New(rand.NewSource(12)))
	run := func(frac float64) interface{} {
		return routing.Run(routing.Scenario{
			Schedule: sched, Workload: w, Factory: core.New(core.AvgDelay),
			Cfg: routing.Config{
				BufferBytes: 32 << 10, Mode: routing.ControlGlobal, MetaFraction: frac,
			},
			Seed: 5,
		}).Summarize(500)
	}
	if capped, uncapped := run(0), run(-1); !reflect.DeepEqual(capped, uncapped) {
		t.Errorf("zero MetaFraction silently disabled the global snapshot sync:\nfrac=0:  %+v\nfrac=-1: %+v",
			capped, uncapped)
	}
}

// TestChurnAtWindowOpen: a windowed contact whose endpoint is down at
// the open instant never establishes — openWindow returns nil before
// touching any radio-sharing state — so the pre-scheduled close event
// must be a no-op: no OnOpportunityDone for the dead window and no
// load underflow distorting the rate of a later window on the same
// pair (regression test for the never-established-window path).
func TestChurnAtWindowOpen(t *testing.T) {
	const horizon = 200.0
	spec := disrupt.Spec{Enabled: true, ChurnDownMean: 30, ChurnUpMean: 30}
	up := func(m *disrupt.Model, node packet.NodeID, from, to float64) bool {
		for _, iv := range m.DownIntervals(node, horizon) {
			if iv.Start < to && from < iv.End {
				return false
			}
		}
		return true
	}
	// Search the deterministic churn streams for a seed that takes node
	// 1 down exactly across the first window's open while both nodes
	// stay up for the whole second window.
	var seed uint64
	for s := uint64(1); s < 100000; s++ {
		m := disrupt.New(spec, s)
		if m.Down(1, 50, horizon) && up(m, 1, 100, 150) && up(m, 0, 50, 150) {
			seed = s
			break
		}
	}
	if seed == 0 {
		t.Fatal("no churn seed takes node 1 down at the first window's open")
	}

	w := packet.Workload{{ID: 1, Src: 0, Dst: 1, Size: 500, Created: 10}}
	sc := windowPair(w,
		trace.Contact{A: 0, B: 1, Start: 50, Duration: 10, RateBps: 100},
		trace.Contact{A: 0, B: 1, Start: 100, Duration: 10, RateBps: 100})
	sc.Disrupt = spec
	sc.DisruptSeed = seed
	var oppDone int
	sc.Hooks = &routing.Hooks{
		OnOpportunityDone: func(a, b packet.NodeID, capacity, spent int64, windowed bool, now float64) {
			oppDone++
			if now < 100 {
				t.Errorf("opportunity-done fired at t=%v for the never-established window", now)
			}
		},
	}
	s := routing.Run(sc).Summarize(horizon)
	if oppDone != 1 {
		t.Errorf("opportunity-done fired %d times, want 1 (second window only)", oppDone)
	}
	if s.Delivered != 1 {
		t.Fatalf("delivered=%d want 1 (via the second window)", s.Delivered)
	}
	// 500 B at 100 B/s from the second window's open: completes at
	// t=105; created at 10 → delay 95. A load underflow from the dead
	// window would inflate the effective rate and shift this.
	if s.AvgDelay != 95 {
		t.Errorf("delay=%v want 95 (second-window serialization at the full rate)", s.AvgDelay)
	}
}

package cgr

import (
	"math"
	"strconv"
	"strings"

	"rapid/internal/packet"
)

// planBest is the policy-aware planning entry: the earliest-arrival
// path under the packet's copy-disjointness bans, widened across up to
// KPaths Yen alternates when the policy asks for it. With KPaths == 1
// (and no live sibling routes) it is a bare plan() call — the classic
// single-path arm never pays for the search.
func (pl *Planner) planBest(p *packet.Packet, from packet.NodeID, now float64, r0 int) *route {
	ban := pl.banFor(p.ID)
	best := pl.plan(p, from, now, r0, ban)
	if best == nil || pl.pol.KPaths <= 1 {
		return best
	}
	cands := pl.kAlternates(p, from, now, r0, ban, best)
	return pl.selectRoute(cands, now)
}

// kAlternates runs a Yen-style deviation search for up to KPaths
// loopless alternate contact paths. For each hop index i of the most
// recently accepted path, the root prefix hops[:i] is fixed and a spur
// is planned from the deviation node with the root's windows and nodes
// banned (loop prevention) plus, for every accepted path sharing the
// same window prefix, its window at position i (forcing a genuinely
// different continuation). Spur searches run under the full feasibility
// rules of plan() — residual capacity, snapshot ordering, buffer
// headroom — so every alternate returned is committable as-is. The
// result is ordered by acceptance (earliest arrival first) and always
// starts with best.
func (pl *Planner) kAlternates(p *packet.Packet, from packet.NodeID, now float64, r0 int, base *banSet, best *route) []*route {
	accepted := []*route{best}
	seen := map[string]bool{routeKey(best): true}
	var pool []*route
	for len(accepted) < pl.pol.KPaths {
		cur := accepted[len(accepted)-1]
		for i := 0; i < len(cur.hops); i++ {
			spurFrom, spurT, spurRank := from, now, r0
			if i > 0 {
				h := cur.hops[i-1]
				spurFrom, spurT = h.to, h.arrive
				// The spur's custody rank at the deviation node mirrors
				// how the prefix would really arrive there: a point
				// meeting stamps its window index, a streamed window
				// completes after every pre-scheduled same-instant event.
				if pl.windows[h.win].rate == 0 {
					spurRank = h.win
				} else {
					spurRank = rankStreamed
				}
			}
			ban := &banSet{parent: base, wins: make(map[int]bool), nodes: make(map[packet.NodeID]bool)}
			ban.nodes[from] = true
			for j := 0; j < i; j++ {
				ban.wins[cur.hops[j].win] = true
				ban.nodes[cur.hops[j].to] = true
			}
			for _, q := range accepted {
				if len(q.hops) > i && samePrefix(q, cur, i) {
					ban.wins[q.hops[i].win] = true
				}
			}
			spur := pl.plan(p, spurFrom, spurT, spurRank, ban)
			if spur == nil {
				continue
			}
			full := &route{hops: append(append([]hop(nil), cur.hops[:i]...), spur.hops...)}
			key := routeKey(full)
			if seen[key] {
				continue
			}
			seen[key] = true
			pool = append(pool, full)
		}
		// Accept the cheapest pooled candidate (arrival, then hop
		// count, then window sequence — all deterministic).
		pick := -1
		for j, c := range pool {
			if pick < 0 || betterCand(c, pool[pick]) {
				pick = j
			}
		}
		if pick < 0 {
			break
		}
		accepted = append(accepted, pool[pick])
		pool = append(pool[:pick], pool[pick+1:]...)
	}
	return accepted
}

// samePrefix reports whether two routes traverse identical windows up
// to (excluding) hop index i.
func samePrefix(a, b *route, i int) bool {
	for j := 0; j < i; j++ {
		if a.hops[j].win != b.hops[j].win {
			return false
		}
	}
	return true
}

// routeKey is a route's identity for deduplication: its window-index
// sequence.
func routeKey(r *route) string {
	var b strings.Builder
	for _, h := range r.hops {
		b.WriteString(strconv.Itoa(h.win))
		b.WriteByte(',')
	}
	return b.String()
}

// betterCand orders Yen candidates: earlier arrival, then fewer hops,
// then lexicographically smaller window sequence.
func betterCand(a, b *route) bool {
	if a.arriveAt() != b.arriveAt() {
		return a.arriveAt() < b.arriveAt()
	}
	if len(a.hops) != len(b.hops) {
		return len(a.hops) < len(b.hops)
	}
	for i := range a.hops {
		if a.hops[i].win != b.hops[i].win {
			return a.hops[i].win < b.hops[i].win
		}
	}
	return false
}

// selectRoute picks the route to commit from the Yen alternates:
// among candidates whose in-flight time is within (1+DelaySlack)× the
// earliest one's, the widest — largest bottleneck residual — wins;
// ties keep the earlier-accepted (earlier-arriving) candidate. Routing
// onto the widest feasible alternate trades a bounded delay increase
// for congestion headroom on the contested windows.
func (pl *Planner) selectRoute(cands []*route, now float64) *route {
	best := cands[0]
	limit := best.arriveAt() + pl.pol.DelaySlack*(best.arriveAt()-now)
	pick, pickWidth := best, pl.width(best)
	for _, c := range cands[1:] {
		if c.arriveAt() > limit+timeEps {
			continue
		}
		if w := pl.width(c); w > pickWidth {
			pick, pickWidth = c, w
		}
	}
	return pick
}

// width is a route's bottleneck residual capacity — the tightest
// window it traverses, before its own commitment.
func (pl *Planner) width(r *route) int64 {
	w := int64(math.MaxInt64)
	for _, h := range r.hops {
		if res := pl.windows[h.win].residual; res < w {
			w = res
		}
	}
	return w
}

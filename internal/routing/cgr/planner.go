package cgr

import (
	"container/heap"
	"math"
	"sort"

	"rapid/internal/packet"
	"rapid/internal/routing"
	"rapid/internal/trace"
)

// timeEps absorbs float noise when matching a planned hop against the
// live clock: schedule times flow unmodified from the expanded plan
// into both the planner and the event queue, so equality normally holds
// exactly, but an epsilon keeps a representational wobble from silently
// desynchronizing the plan.
const timeEps = 1e-9

// window is one concrete transfer opportunity of the contact graph —
// an expanded occurrence, not a periodic rule. Point meetings carry
// rate == 0 and end == start.
//
// A window's index in Planner.windows doubles as its execution rank:
// the runtime schedules the workload first, then every meeting in
// schedule order, then every contact span — so among same-instant
// events, a lower index runs first. The planner exploits this to chain
// same-instant hops exactly when the event order realizes them, instead
// of guessing.
type window struct {
	a, b       packet.NodeID
	start, end float64
	rate       float64 // bytes/s; 0 for a point meeting
	cap0       int64   // nominal capacity (serialization baseline)
	residual   int64   // capacity not yet reserved by planned routes
}

// Custody ranks bracketing the window indices: rankGenerated orders
// packet-creation events before every same-instant window (the runtime
// schedules the workload first); rankStreamed orders a windowed
// transfer's completion after every same-instant pre-scheduled event
// (completions are booked during the run, so their sequence numbers are
// higher than the whole initial batch).
const (
	rankGenerated = -1
	rankStreamed  = math.MaxInt32
)

// hop is one planned traversal of a window.
type hop struct {
	win      int
	from, to packet.NodeID
	// depart is when transmission begins, arrive when the last byte
	// lands (equal for point meetings).
	depart, arrive float64
}

// route is one replica's planned path. next indexes the first
// untraversed hop; hops before it have already moved custody. holder is
// the node currently holding this replica (hops[next-1].to once any hop
// has executed, the planning node before that). size is the packet size
// the route's reservations were taken at.
type route struct {
	hops   []hop
	next   int
	holder packet.NodeID
	size   int64
}

// arriveAt returns the planned delivery instant.
func (r *route) arriveAt() float64 { return r.hops[len(r.hops)-1].arrive }

// reservation records planned buffer occupancy of one packet at one
// node over its custody interval. rt ties it to the route that took it,
// so multi-copy release refunds per route, not per packet.
type reservation struct {
	id       packet.ID
	rt       *route
	from, to float64
	bytes    int64
}

// tryKey scopes the re-plan throttle to one replica's custodian: in
// multi-copy operation two custodians of the same packet may both plan
// at one instant, and one's failure must not silence the other.
type tryKey struct {
	id   packet.ID
	node packet.NodeID
}

// banSet is the exclusion set threaded through plan(): window indices
// and relay nodes a candidate path must avoid. Sets chain through
// parent so composing Yen spur bans on top of the copy-disjointness
// base needs no map copying. The destination is never banned — checks
// skip it explicitly. A nil *banSet bans nothing.
type banSet struct {
	parent *banSet
	wins   map[int]bool
	nodes  map[packet.NodeID]bool
}

func (b *banSet) winBanned(wi int) bool {
	for s := b; s != nil; s = s.parent {
		if s.wins[wi] {
			return true
		}
	}
	return false
}

func (b *banSet) nodeBanned(n packet.NodeID) bool {
	for s := b; s != nil; s = s.parent {
		if s.nodes[n] {
			return true
		}
	}
	return false
}

// Planner is the shared contact-graph state of one run: the expanded
// windows, per-window residual capacity, per-node planned buffer
// reservations, and every packet's live routes and custodians. All of
// a run's CGR routers share one Planner; the simulator is
// single-threaded, so no locking.
type Planner struct {
	pol     Policy
	windows []window
	byNode  map[packet.NodeID][]int // window indices touching the node, start-sorted
	nodes   map[packet.NodeID]*routing.Node
	capFor  func(packet.NodeID) int64 // <= 0: unlimited
	// routes holds each packet's live replica routes, creation-ordered;
	// at most pol.Copies entries per packet.
	routes map[packet.ID][]*route
	resv   map[packet.NodeID][]reservation
	// lastTry throttles re-planning of currently unroutable packets to
	// once per simulation instant per custodian.
	lastTry map[tryKey]float64
	// finished marks delivered packets so a replica still in flight when
	// delivery happened elsewhere is dropped instead of re-planned.
	finished map[packet.ID]bool
	primed   bool

	// Admission ledger (pol.AdmitFraction > 0 only): bytes admitted and
	// not yet delivered or expired, per destination.
	admitted map[packet.NodeID][]admEntry
	admBytes map[packet.NodeID]int64
	admDst   map[packet.ID]packet.NodeID

	// Dijkstra scratch, reused across plans.
	dist map[packet.NodeID]float64
	rank map[packet.NodeID]int
	prev map[packet.NodeID]hop
	done map[packet.NodeID]bool

	execScratch []*route
}

// admEntry is one admitted packet's outstanding claim toward its
// destination. deadline (absolute; 0 = none) lets the ledger expire
// claims of packets that died undelivered.
type admEntry struct {
	id       packet.ID
	bytes    int64
	deadline float64
}

func newPlanner(pol Policy) *Planner {
	pl := &Planner{
		pol:      pol.normalized(),
		byNode:   make(map[packet.NodeID][]int),
		nodes:    make(map[packet.NodeID]*routing.Node),
		routes:   make(map[packet.ID][]*route),
		resv:     make(map[packet.NodeID][]reservation),
		lastTry:  make(map[tryKey]float64),
		finished: make(map[packet.ID]bool),
		dist:     make(map[packet.NodeID]float64),
		rank:     make(map[packet.NodeID]int),
		prev:     make(map[packet.NodeID]hop),
		done:     make(map[packet.NodeID]bool),
	}
	if pl.pol.AdmitFraction > 0 {
		pl.admitted = make(map[packet.NodeID][]admEntry)
		pl.admBytes = make(map[packet.NodeID]int64)
		pl.admDst = make(map[packet.ID]packet.NodeID)
	}
	return pl
}

// prime builds the contact graph from the expanded schedule: one window
// per meeting occurrence and per duration-aware contact. Idempotent —
// every router of the run delegates here, the first call wins.
func (pl *Planner) prime(s *trace.Schedule, net *routing.Network) {
	if pl.primed {
		return
	}
	pl.primed = true
	pl.capFor = net.Cfg.CapacityFor
	for _, m := range s.Meetings {
		pl.windows = append(pl.windows, window{
			a: m.A, b: m.B, start: m.Time, end: m.Time,
			cap0: m.Bytes, residual: m.Bytes,
		})
	}
	for _, c := range s.Contacts {
		w := window{a: c.A, b: c.B, start: c.Start, end: c.Start, cap0: c.Bytes, residual: c.Bytes}
		if c.Windowed() {
			// Capacity must be the runtime's own budget figure
			// (Contact.Capacity — recomputing RateBps·(end−start) can
			// round one byte above it and plan a transfer the session
			// budget then refuses forever), shrunk when the horizon
			// clips the window (Contact.EndWithin, the same rule the
			// runtime closes by): only the in-horizon share can move.
			end := c.EndWithin(s.Duration)
			w.cap0 = c.Capacity()
			if end < c.End() {
				if clipped := int64(c.RateBps * (end - c.Start)); clipped < w.cap0 {
					w.cap0 = clipped
				}
			}
			w.end = end
			w.rate = c.RateBps
			w.residual = w.cap0
		}
		pl.windows = append(pl.windows, w)
	}
	for i, w := range pl.windows {
		pl.byNode[w.a] = append(pl.byNode[w.a], i)
		pl.byNode[w.b] = append(pl.byNode[w.b], i)
	}
	// Start-sorted per-node lists let the live-contact lookup binary
	// search; ties keep execution-rank order.
	for _, list := range pl.byNode {
		sort.Slice(list, func(i, j int) bool {
			wi, wj := &pl.windows[list[i]], &pl.windows[list[j]]
			if wi.start != wj.start {
				return wi.start < wj.start
			}
			return list[i] < list[j]
		})
	}
}

// liveWindow locates the window being executed between two nodes at the
// current instant — the session or window-open event calling into the
// router — by binary search over the node's start-sorted windows.
// Returns -1 when none matches (the contact came from outside the
// primed schedule).
func (pl *Planner) liveWindow(a, b packet.NodeID, now float64) int {
	list := pl.byNode[a]
	// Windowed contacts consult routers only at open, so start == now
	// for every live window; search the equal-start run.
	lo := sort.Search(len(list), func(i int) bool {
		return pl.windows[list[i]].start >= now-timeEps
	})
	for i := lo; i < len(list); i++ {
		w := &pl.windows[list[i]]
		if w.start > now+timeEps {
			break
		}
		if (w.a == a && w.b == b) || (w.a == b && w.b == a) {
			return list[i]
		}
	}
	return -1
}

// register records a node at attach time so custody transfers can drop
// the sender's copy.
func (pl *Planner) register(n *routing.Node) { pl.nodes[n.ID] = n }

// occupied sums planned buffer reservations at node covering instant t,
// excluding packet id's own reservations.
func (pl *Planner) occupied(node packet.NodeID, t float64, id packet.ID) int64 {
	var sum int64
	for _, r := range pl.resv[node] {
		if r.id != id && r.from <= t && t < r.to {
			sum += r.bytes
		}
	}
	return sum
}

// fitsBuffer checks next-hop buffer headroom per the run's
// BufferBytesFor assignment: the node must have room for the packet on
// top of the custody already planned to overlap its arrival. The check
// is an instant sample at the arrival time — an approximation (planned
// occupancy can peak between samples), backstopped at runtime by the
// store's hard capacity check and the resulting re-plan.
func (pl *Planner) fitsBuffer(node packet.NodeID, t float64, p *packet.Packet) bool {
	if node == p.Dst {
		return true // delivered on arrival, never buffered
	}
	capacity := pl.capFor(node)
	if capacity <= 0 {
		return true
	}
	return pl.occupied(node, t, p.ID)+p.Size <= capacity
}

// pqItem / pq implement the Dijkstra frontier ordered by
// (arrival, rank, node) — rank breaks time ties because a lower-rank
// label can use strictly more same-instant windows; the node tiebreak
// keeps settling deterministic.
type pqItem struct {
	node packet.NodeID
	at   float64
	rank int
}

type pq []pqItem

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	if q[i].rank != q[j].rank {
		return q[i].rank < q[j].rank
	}
	return q[i].node < q[j].node
}
func (q pq) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)   { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any     { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// sameInstant compares schedule times for equality within float noise.
func sameInstant(a, b float64) bool { return math.Abs(a-b) <= timeEps }

// plan runs earliest-arrival Dijkstra over the time-expanded contact
// graph for packet p held at `from` since `now`, with custody rank r0
// ordering the origin against same-instant events. ban excludes windows
// and relay nodes (never the destination) — the Yen spur search and the
// multi-copy disjointness rule both thread exclusions through it; nil
// bans nothing. Edge feasibility:
//
//   - residual Rate×Duration capacity ≥ the packet size;
//   - a point meeting must not have executed yet: strictly later than
//     the custody instant, or same-instant with a higher execution
//     rank (the runtime's event order is deterministic, so this is
//     exact, not heuristic);
//   - a windowed contact snapshots its queues at open, so custody must
//     exist before the open event; arrival serializes behind the bytes
//     already planned onto the window and must land before close;
//   - the receiving node must have buffer headroom at the arrival
//     instant (per the run's BufferBytesFor assignment).
//
// Labels are (arrival, rank) lexicographic — for equal arrivals a
// lower rank dominates. Returns nil when the destination is
// unreachable under those constraints.
func (pl *Planner) plan(p *packet.Packet, from packet.NodeID, now float64, r0 int, ban *banSet) *route {
	dist, rank, prev, done := pl.dist, pl.rank, pl.prev, pl.done
	clear(dist)
	clear(rank)
	clear(prev)
	clear(done)
	dist[from] = now
	rank[from] = r0
	frontier := pq{{node: from, at: now, rank: r0}}
	for len(frontier) > 0 {
		it := heap.Pop(&frontier).(pqItem)
		u := it.node
		if done[u] || it.at > dist[u] || (it.at == dist[u] && it.rank > rank[u]) {
			continue
		}
		done[u] = true
		if u == p.Dst {
			break
		}
		t, tr := dist[u], rank[u]
		for _, wi := range pl.byNode[u] {
			if ban.winBanned(wi) {
				continue
			}
			w := &pl.windows[wi]
			v := w.b
			if v == u {
				v = w.a
			}
			if done[v] || w.residual < p.Size {
				continue
			}
			if v != p.Dst && ban.nodeBanned(v) {
				continue
			}
			var at float64
			var ar int
			if w.rate == 0 {
				if w.start < t-timeEps || (sameInstant(w.start, t) && wi <= tr) {
					continue // meeting already executed
				}
				at, ar = w.start, wi
			} else {
				if w.start < t-timeEps || (sameInstant(w.start, t) && wi <= tr) {
					continue // open snapshot misses the packet
				}
				at = w.start + float64(w.cap0-w.residual+p.Size)/w.rate
				if at >= w.end-timeEps {
					// Strictly before close: the close event is
					// pre-scheduled (lower sequence), so a completion
					// landing exactly at the close instant is cut off.
					continue
				}
				ar = rankStreamed
			}
			if !pl.fitsBuffer(v, at, p) {
				continue
			}
			if cur, seen := dist[v]; !seen || at < cur || (at == cur && ar < rank[v]) {
				dist[v] = at
				rank[v] = ar
				prev[v] = hop{win: wi, from: u, to: v, depart: w.start, arrive: at}
				heap.Push(&frontier, pqItem{node: v, at: at, rank: ar})
			}
		}
	}
	if !done[p.Dst] {
		return nil
	}
	var hops []hop
	for node := p.Dst; node != from; {
		h := prev[node]
		hops = append(hops, h)
		node = h.from
	}
	for l, r := 0, len(hops)-1; l < r; l, r = l+1, r-1 {
		hops[l], hops[r] = hops[r], hops[l]
	}
	return &route{hops: hops}
}

// banFor builds the copy-disjointness exclusion set for a new route of
// the packet: every window and every node its other live routes touch.
// Replicas must be capacity-disjoint (no shared window — they would
// compete for the same reserved bytes) and relay-disjoint (the store is
// keyed by packet ID, so a node can never hold two copies); only source
// and destination may be shared. Returns nil — ban nothing — when the
// packet has no live routes, which keeps the single-copy arm on the
// exact classic code path.
func (pl *Planner) banFor(id packet.ID) *banSet {
	rs := pl.routes[id]
	if len(rs) == 0 {
		return nil
	}
	b := &banSet{wins: make(map[int]bool), nodes: make(map[packet.NodeID]bool)}
	for _, r := range rs {
		b.nodes[r.holder] = true
		for _, h := range r.hops {
			b.wins[h.win] = true
			b.nodes[h.from] = true
			b.nodes[h.to] = true
		}
	}
	return b
}

// commit reserves a route's resources for packet p held at holder:
// residual capacity on every window it traverses, and buffer headroom
// at every intermediate node over its planned custody interval.
func (pl *Planner) commit(p *packet.Packet, r *route, holder packet.NodeID) {
	r.size = p.Size
	r.holder = holder
	for i, h := range r.hops {
		pl.windows[h.win].residual -= p.Size
		if i+1 < len(r.hops) {
			pl.resv[h.to] = append(pl.resv[h.to], reservation{
				id: p.ID, rt: r, from: h.arrive, to: r.hops[i+1].arrive, bytes: p.Size,
			})
		}
	}
	pl.routes[p.ID] = append(pl.routes[p.ID], r)
}

// releaseRoute refunds the untraversed remainder of one route —
// residual capacity of hops not yet executed and every buffer
// reservation it took — and forgets it.
func (pl *Planner) releaseRoute(id packet.ID, r *route) {
	for i := r.next; i < len(r.hops); i++ {
		pl.windows[r.hops[i].win].residual += r.size
	}
	// Reservations live only at the route's own hop receivers — scan
	// those nodes, not the whole network (release runs on every
	// re-plan and delivery).
	for _, h := range r.hops {
		list, ok := pl.resv[h.to]
		if !ok {
			continue
		}
		out := list[:0]
		for _, rv := range list {
			if rv.rt != r {
				out = append(out, rv)
			}
		}
		if len(out) == 0 {
			delete(pl.resv, h.to)
		} else {
			pl.resv[h.to] = out
		}
	}
	list := pl.routes[id]
	out := list[:0]
	for _, o := range list {
		if o != r {
			out = append(out, o)
		}
	}
	if len(out) == 0 {
		delete(pl.routes, id)
	} else {
		pl.routes[id] = out
	}
}

// release drops every live route of the packet. Safe with none.
func (pl *Planner) release(id packet.ID) {
	for len(pl.routes[id]) > 0 {
		pl.releaseRoute(id, pl.routes[id][0])
	}
}

// fresh reports whether the route's planned next hop is still
// executable from node at the current clock: the replica is where the
// plan says it is and the hop's window has not closed. A window cut
// short by radio sharing or closed before the transfer completed shows
// up here as a stale route.
func (pl *Planner) fresh(r *route, node packet.NodeID, now float64) bool {
	if r == nil || r.next >= len(r.hops) {
		return false
	}
	h := r.hops[r.next]
	return h.from == node && pl.windows[h.win].end >= now-timeEps
}

// executable returns the currently-executable routes of the packet's
// replica held at node, re-planning stale ones (and giving a routeless
// replica one route, copy budget permitting). r0 is the custody rank of
// the calling event (rankGenerated at creation; liveWindow-1 during a
// contact). Returns a scratch slice valid until the next call; empty
// when no feasible route exists at this instant — retries are throttled
// to once per simulation time per custodian. With Copies == 1 and
// KPaths == 1 this is exactly classic routeFor.
func (pl *Planner) executable(p *packet.Packet, node packet.NodeID, now float64, r0 int) []*route {
	if pl.finished[p.ID] {
		return nil
	}
	out := pl.execScratch[:0]
	stale := 0
	held := 0
	for _, r := range pl.routes[p.ID] {
		if r.holder != node {
			continue
		}
		held++
		if pl.fresh(r, node, now) {
			out = append(out, r)
		} else {
			stale++
		}
	}
	if held > 0 && stale == 0 {
		pl.execScratch = out
		return out
	}
	k := tryKey{id: p.ID, node: node}
	if last, tried := pl.lastTry[k]; tried && last == now && held == 0 {
		return nil
	}
	pl.lastTry[k] = now
	for {
		var victim *route
		for _, r := range pl.routes[p.ID] {
			if r.holder == node && !pl.fresh(r, node, now) {
				victim = r
				break
			}
		}
		if victim == nil {
			break
		}
		pl.releaseRoute(p.ID, victim)
	}
	// Replace what was released; a replica with no route gets one
	// attempt. The copy budget bounds the total either way.
	plans := stale
	if held == 0 {
		plans = 1
	}
	for i := 0; i < plans && len(pl.routes[p.ID]) < pl.pol.Copies; i++ {
		r := pl.planBest(p, node, now, r0)
		if r == nil {
			break
		}
		pl.commit(p, r, node)
		out = append(out, r)
	}
	pl.execScratch = out
	return out
}

// spread plans the packet's initial routes at its source: one for the
// single-copy policies, up to Copies mutually window- and relay-
// disjoint routes for the bounded multi-copy arm (fewer when the graph
// has no further disjoint path — the budget is a cap, not a quota).
func (pl *Planner) spread(p *packet.Packet, node packet.NodeID, now float64) {
	pl.lastTry[tryKey{id: p.ID, node: node}] = now
	for len(pl.routes[p.ID]) < pl.pol.Copies {
		r := pl.planBest(p, node, now, rankGenerated)
		if r == nil {
			return
		}
		pl.commit(p, r, node)
	}
}

// transferred records a completed custody transfer: the matching route
// advances past the executed hop and its holder moves to the receiver.
// The sender drops its copy unless another route still starts there
// (the source of a multi-copy spread keeps custody while replicas
// remain). An off-plan transfer discards every route; the next contact
// re-plans from the new custodian.
func (pl *Planner) transferred(id packet.ID, from, to packet.NodeID) {
	if pl.finished[id] {
		// A replica of an already-delivered packet was in flight when
		// delivery happened elsewhere: drop both ends.
		if n := pl.nodes[from]; n != nil {
			n.Store.Remove(id)
		}
		if n := pl.nodes[to]; n != nil {
			n.Store.Remove(id)
		}
		return
	}
	matched := false
	for _, r := range pl.routes[id] {
		if r.holder == from && r.next < len(r.hops) && r.hops[r.next].from == from && r.hops[r.next].to == to {
			r.next++
			r.holder = to
			matched = true
			break
		}
	}
	if !matched {
		pl.release(id)
	}
	still := false
	for _, r := range pl.routes[id] {
		if r.holder == from {
			still = true
			break
		}
	}
	if !still {
		if n := pl.nodes[from]; n != nil {
			n.Store.Remove(id)
		}
	}
}

// delivered releases everything the packet still holds and sweeps the
// surviving replicas out of their custodians' stores — the packet is
// done, so stray copies must stop consuming buffer and planning effort.
// Replicas in flight at this instant are caught by the finished mark
// when their transfer completes. Idempotent (delivery observers fire on
// both session ends).
func (pl *Planner) delivered(id packet.ID) {
	for _, r := range pl.routes[id] {
		if n := pl.nodes[r.holder]; n != nil {
			n.Store.Remove(id)
		}
	}
	pl.release(id)
	pl.finished[id] = true
	pl.settleAdmitted(id)
}

// admitAllowed implements the GMA-style source admission rule: the
// bytes already admitted toward p.Dst (and not yet delivered or
// expired) plus this packet must fit within AdmitFraction of the
// residual capacity of the destination's remaining access windows. The
// view is conservative — packets with committed routes count against
// both the ledger and the residual they reserved — but it is exactly
// the planner's own capacity signal, needs no extra message exchange,
// and keeps throttling even when re-plans fail and no reservation
// exists. Always true when admission is off.
func (pl *Planner) admitAllowed(p *packet.Packet, now float64) bool {
	if pl.pol.AdmitFraction <= 0 {
		return true
	}
	pl.pruneAdmitted(p.Dst, now)
	var capacity int64
	for _, wi := range pl.byNode[p.Dst] {
		if w := &pl.windows[wi]; w.end >= now-timeEps {
			capacity += w.residual
		}
	}
	budget := int64(pl.pol.AdmitFraction * float64(capacity))
	return pl.admBytes[p.Dst]+p.Size <= budget
}

// admit records an accepted packet in the admission ledger.
func (pl *Planner) admit(p *packet.Packet) {
	if pl.pol.AdmitFraction <= 0 {
		return
	}
	pl.admitted[p.Dst] = append(pl.admitted[p.Dst], admEntry{id: p.ID, bytes: p.Size, deadline: p.Deadline})
	pl.admBytes[p.Dst] += p.Size
	pl.admDst[p.ID] = p.Dst
}

// pruneAdmitted expires ledger claims whose packets' deadlines have
// passed — they will never be delivered, and holding their claim would
// choke the destination's quota forever.
func (pl *Planner) pruneAdmitted(dst packet.NodeID, now float64) {
	list, ok := pl.admitted[dst]
	if !ok {
		return
	}
	out := list[:0]
	for _, e := range list {
		if e.deadline > 0 && now >= e.deadline {
			pl.admBytes[dst] -= e.bytes
			delete(pl.admDst, e.id)
			continue
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		delete(pl.admitted, dst)
	} else {
		pl.admitted[dst] = out
	}
}

// settleAdmitted clears a delivered packet's ledger claim.
func (pl *Planner) settleAdmitted(id packet.ID) {
	if pl.admDst == nil {
		return
	}
	dst, ok := pl.admDst[id]
	if !ok {
		return
	}
	delete(pl.admDst, id)
	list := pl.admitted[dst]
	out := list[:0]
	for _, e := range list {
		if e.id == id {
			pl.admBytes[dst] -= e.bytes
			continue
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		delete(pl.admitted, dst)
	} else {
		pl.admitted[dst] = out
	}
}

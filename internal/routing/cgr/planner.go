package cgr

import (
	"container/heap"
	"math"
	"sort"

	"rapid/internal/packet"
	"rapid/internal/routing"
	"rapid/internal/trace"
)

// timeEps absorbs float noise when matching a planned hop against the
// live clock: schedule times flow unmodified from the expanded plan
// into both the planner and the event queue, so equality normally holds
// exactly, but an epsilon keeps a representational wobble from silently
// desynchronizing the plan.
const timeEps = 1e-9

// window is one concrete transfer opportunity of the contact graph —
// an expanded occurrence, not a periodic rule. Point meetings carry
// rate == 0 and end == start.
//
// A window's index in Planner.windows doubles as its execution rank:
// the runtime schedules the workload first, then every meeting in
// schedule order, then every contact span — so among same-instant
// events, a lower index runs first. The planner exploits this to chain
// same-instant hops exactly when the event order realizes them, instead
// of guessing.
type window struct {
	a, b       packet.NodeID
	start, end float64
	rate       float64 // bytes/s; 0 for a point meeting
	cap0       int64   // nominal capacity (serialization baseline)
	residual   int64   // capacity not yet reserved by planned routes
}

// Custody ranks bracketing the window indices: rankGenerated orders
// packet-creation events before every same-instant window (the runtime
// schedules the workload first); rankStreamed orders a windowed
// transfer's completion after every same-instant pre-scheduled event
// (completions are booked during the run, so their sequence numbers are
// higher than the whole initial batch).
const (
	rankGenerated = -1
	rankStreamed  = math.MaxInt32
)

// hop is one planned traversal of a window.
type hop struct {
	win      int
	from, to packet.NodeID
	// depart is when transmission begins, arrive when the last byte
	// lands (equal for point meetings).
	depart, arrive float64
}

// route is one packet's planned path. next indexes the first
// untraversed hop; hops before it have already moved custody. size is
// the packet size the route's reservations were taken at.
type route struct {
	hops []hop
	next int
	size int64
}

// arriveAt returns the planned delivery instant.
func (r *route) arriveAt() float64 { return r.hops[len(r.hops)-1].arrive }

// reservation records planned buffer occupancy of one packet at one
// node over its custody interval.
type reservation struct {
	id       packet.ID
	from, to float64
	bytes    int64
}

// Planner is the shared contact-graph state of one run: the expanded
// windows, per-window residual capacity, per-node planned buffer
// reservations, and every packet's current route and custodian. All of
// a run's CGR routers share one Planner; the simulator is
// single-threaded, so no locking.
type Planner struct {
	windows []window
	byNode  map[packet.NodeID][]int // window indices touching the node, start-sorted
	nodes   map[packet.NodeID]*routing.Node
	capFor  func(packet.NodeID) int64 // <= 0: unlimited
	routes  map[packet.ID]*route
	resv    map[packet.NodeID][]reservation
	// lastTry throttles re-planning of currently unroutable packets to
	// once per simulation instant.
	lastTry map[packet.ID]float64
	primed  bool

	// Dijkstra scratch, reused across plans.
	dist map[packet.NodeID]float64
	rank map[packet.NodeID]int
	prev map[packet.NodeID]hop
	done map[packet.NodeID]bool
}

func newPlanner() *Planner {
	return &Planner{
		byNode:  make(map[packet.NodeID][]int),
		nodes:   make(map[packet.NodeID]*routing.Node),
		routes:  make(map[packet.ID]*route),
		resv:    make(map[packet.NodeID][]reservation),
		lastTry: make(map[packet.ID]float64),
		dist:    make(map[packet.NodeID]float64),
		rank:    make(map[packet.NodeID]int),
		prev:    make(map[packet.NodeID]hop),
		done:    make(map[packet.NodeID]bool),
	}
}

// prime builds the contact graph from the expanded schedule: one window
// per meeting occurrence and per duration-aware contact. Idempotent —
// every router of the run delegates here, the first call wins.
func (pl *Planner) prime(s *trace.Schedule, net *routing.Network) {
	if pl.primed {
		return
	}
	pl.primed = true
	pl.capFor = net.Cfg.CapacityFor
	for _, m := range s.Meetings {
		pl.windows = append(pl.windows, window{
			a: m.A, b: m.B, start: m.Time, end: m.Time,
			cap0: m.Bytes, residual: m.Bytes,
		})
	}
	for _, c := range s.Contacts {
		w := window{a: c.A, b: c.B, start: c.Start, end: c.Start, cap0: c.Bytes, residual: c.Bytes}
		if c.Windowed() {
			// Capacity must be the runtime's own budget figure
			// (Contact.Capacity — recomputing RateBps·(end−start) can
			// round one byte above it and plan a transfer the session
			// budget then refuses forever), shrunk when the horizon
			// clips the window (Contact.EndWithin, the same rule the
			// runtime closes by): only the in-horizon share can move.
			end := c.EndWithin(s.Duration)
			w.cap0 = c.Capacity()
			if end < c.End() {
				if clipped := int64(c.RateBps * (end - c.Start)); clipped < w.cap0 {
					w.cap0 = clipped
				}
			}
			w.end = end
			w.rate = c.RateBps
			w.residual = w.cap0
		}
		pl.windows = append(pl.windows, w)
	}
	for i, w := range pl.windows {
		pl.byNode[w.a] = append(pl.byNode[w.a], i)
		pl.byNode[w.b] = append(pl.byNode[w.b], i)
	}
	// Start-sorted per-node lists let the live-contact lookup binary
	// search; ties keep execution-rank order.
	for _, list := range pl.byNode {
		sort.Slice(list, func(i, j int) bool {
			wi, wj := &pl.windows[list[i]], &pl.windows[list[j]]
			if wi.start != wj.start {
				return wi.start < wj.start
			}
			return list[i] < list[j]
		})
	}
}

// liveWindow locates the window being executed between two nodes at the
// current instant — the session or window-open event calling into the
// router — by binary search over the node's start-sorted windows.
// Returns -1 when none matches (the contact came from outside the
// primed schedule).
func (pl *Planner) liveWindow(a, b packet.NodeID, now float64) int {
	list := pl.byNode[a]
	// Windowed contacts consult routers only at open, so start == now
	// for every live window; search the equal-start run.
	lo := sort.Search(len(list), func(i int) bool {
		return pl.windows[list[i]].start >= now-timeEps
	})
	for i := lo; i < len(list); i++ {
		w := &pl.windows[list[i]]
		if w.start > now+timeEps {
			break
		}
		if (w.a == a && w.b == b) || (w.a == b && w.b == a) {
			return list[i]
		}
	}
	return -1
}

// register records a node at attach time so custody transfers can drop
// the sender's copy.
func (pl *Planner) register(n *routing.Node) { pl.nodes[n.ID] = n }

// occupied sums planned buffer reservations at node covering instant t,
// excluding packet id's own reservations.
func (pl *Planner) occupied(node packet.NodeID, t float64, id packet.ID) int64 {
	var sum int64
	for _, r := range pl.resv[node] {
		if r.id != id && r.from <= t && t < r.to {
			sum += r.bytes
		}
	}
	return sum
}

// fitsBuffer checks next-hop buffer headroom per the run's
// BufferBytesFor assignment: the node must have room for the packet on
// top of the custody already planned to overlap its arrival. The check
// is an instant sample at the arrival time — an approximation (planned
// occupancy can peak between samples), backstopped at runtime by the
// store's hard capacity check and the resulting re-plan.
func (pl *Planner) fitsBuffer(node packet.NodeID, t float64, p *packet.Packet) bool {
	if node == p.Dst {
		return true // delivered on arrival, never buffered
	}
	capacity := pl.capFor(node)
	if capacity <= 0 {
		return true
	}
	return pl.occupied(node, t, p.ID)+p.Size <= capacity
}

// pqItem / pq implement the Dijkstra frontier ordered by
// (arrival, rank, node) — rank breaks time ties because a lower-rank
// label can use strictly more same-instant windows; the node tiebreak
// keeps settling deterministic.
type pqItem struct {
	node packet.NodeID
	at   float64
	rank int
}

type pq []pqItem

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	if q[i].rank != q[j].rank {
		return q[i].rank < q[j].rank
	}
	return q[i].node < q[j].node
}
func (q pq) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)   { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any     { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// sameInstant compares schedule times for equality within float noise.
func sameInstant(a, b float64) bool { return math.Abs(a-b) <= timeEps }

// plan runs earliest-arrival Dijkstra over the time-expanded contact
// graph for packet p held at `from` since `now`, with custody rank r0
// ordering the origin against same-instant events. Edge feasibility:
//
//   - residual Rate×Duration capacity ≥ the packet size;
//   - a point meeting must not have executed yet: strictly later than
//     the custody instant, or same-instant with a higher execution
//     rank (the runtime's event order is deterministic, so this is
//     exact, not heuristic);
//   - a windowed contact snapshots its queues at open, so custody must
//     exist before the open event; arrival serializes behind the bytes
//     already planned onto the window and must land before close;
//   - the receiving node must have buffer headroom at the arrival
//     instant (per the run's BufferBytesFor assignment).
//
// Labels are (arrival, rank) lexicographic — for equal arrivals a
// lower rank dominates. Returns nil when the destination is
// unreachable under those constraints.
func (pl *Planner) plan(p *packet.Packet, from packet.NodeID, now float64, r0 int) *route {
	dist, rank, prev, done := pl.dist, pl.rank, pl.prev, pl.done
	clear(dist)
	clear(rank)
	clear(prev)
	clear(done)
	dist[from] = now
	rank[from] = r0
	frontier := pq{{node: from, at: now, rank: r0}}
	for len(frontier) > 0 {
		it := heap.Pop(&frontier).(pqItem)
		u := it.node
		if done[u] || it.at > dist[u] || (it.at == dist[u] && it.rank > rank[u]) {
			continue
		}
		done[u] = true
		if u == p.Dst {
			break
		}
		t, tr := dist[u], rank[u]
		for _, wi := range pl.byNode[u] {
			w := &pl.windows[wi]
			v := w.b
			if v == u {
				v = w.a
			}
			if done[v] || w.residual < p.Size {
				continue
			}
			var at float64
			var ar int
			if w.rate == 0 {
				if w.start < t-timeEps || (sameInstant(w.start, t) && wi <= tr) {
					continue // meeting already executed
				}
				at, ar = w.start, wi
			} else {
				if w.start < t-timeEps || (sameInstant(w.start, t) && wi <= tr) {
					continue // open snapshot misses the packet
				}
				at = w.start + float64(w.cap0-w.residual+p.Size)/w.rate
				if at >= w.end-timeEps {
					// Strictly before close: the close event is
					// pre-scheduled (lower sequence), so a completion
					// landing exactly at the close instant is cut off.
					continue
				}
				ar = rankStreamed
			}
			if !pl.fitsBuffer(v, at, p) {
				continue
			}
			if cur, seen := dist[v]; !seen || at < cur || (at == cur && ar < rank[v]) {
				dist[v] = at
				rank[v] = ar
				prev[v] = hop{win: wi, from: u, to: v, depart: w.start, arrive: at}
				heap.Push(&frontier, pqItem{node: v, at: at, rank: ar})
			}
		}
	}
	if !done[p.Dst] {
		return nil
	}
	var hops []hop
	for node := p.Dst; node != from; {
		h := prev[node]
		hops = append(hops, h)
		node = h.from
	}
	for l, r := 0, len(hops)-1; l < r; l, r = l+1, r-1 {
		hops[l], hops[r] = hops[r], hops[l]
	}
	return &route{hops: hops}
}

// commit reserves the route's resources: residual capacity on every
// window it traverses, and buffer headroom at every intermediate node
// over its planned custody interval.
func (pl *Planner) commit(p *packet.Packet, r *route) {
	r.size = p.Size
	for i, h := range r.hops {
		pl.windows[h.win].residual -= p.Size
		if i+1 < len(r.hops) {
			pl.resv[h.to] = append(pl.resv[h.to], reservation{
				id: p.ID, from: h.arrive, to: r.hops[i+1].arrive, bytes: p.Size,
			})
		}
	}
	pl.routes[p.ID] = r
}

// release refunds the untraversed remainder of a packet's route —
// residual capacity of hops not yet executed and every buffer
// reservation — and forgets the route. Safe to call with no route.
func (pl *Planner) release(id packet.ID) {
	r := pl.routes[id]
	if r == nil {
		return
	}
	for i := r.next; i < len(r.hops); i++ {
		pl.windows[r.hops[i].win].residual += r.size
	}
	// Reservations live only at the route's own hop receivers — scan
	// those nodes, not the whole network (release runs on every
	// re-plan and delivery).
	for _, h := range r.hops {
		list, ok := pl.resv[h.to]
		if !ok {
			continue
		}
		out := list[:0]
		for _, rv := range list {
			if rv.id != id {
				out = append(out, rv)
			}
		}
		if len(out) == 0 {
			delete(pl.resv, h.to)
		} else {
			pl.resv[h.to] = out
		}
	}
	delete(pl.routes, id)
}

// fresh reports whether the packet's planned next hop is still
// executable from node at the current clock: the packet is where the
// plan says it is and the hop's window has not closed. A window cut
// short by radio sharing or closed before the transfer completed shows
// up here as a stale route.
func (pl *Planner) fresh(r *route, node packet.NodeID, now float64) bool {
	if r == nil || r.next >= len(r.hops) {
		return false
	}
	h := r.hops[r.next]
	return h.from == node && pl.windows[h.win].end >= now-timeEps
}

// routeFor returns a currently-executable route for the packet held at
// node, re-planning (and re-reserving) when the existing one is stale
// or missing. r0 is the custody rank of the calling event
// (rankGenerated at creation; liveWindow-1 during a contact). Returns
// nil when no feasible route exists at this instant; retries are
// throttled to once per simulation time.
func (pl *Planner) routeFor(p *packet.Packet, node packet.NodeID, now float64, r0 int) *route {
	if r := pl.routes[p.ID]; pl.fresh(r, node, now) {
		return r
	}
	if last, tried := pl.lastTry[p.ID]; tried && last == now && pl.routes[p.ID] == nil {
		return nil
	}
	pl.lastTry[p.ID] = now
	pl.release(p.ID)
	r := pl.plan(p, node, now, r0)
	if r == nil {
		return nil
	}
	pl.commit(p, r)
	return r
}

// transferred records a completed custody transfer: the route advances
// past the executed hop and the sender's copy is dropped (single-copy
// forwarding — the receiver is the custodian now). An off-plan transfer
// discards the route; the next contact re-plans from the new custodian.
func (pl *Planner) transferred(id packet.ID, from, to packet.NodeID) {
	r := pl.routes[id]
	if r != nil && r.next < len(r.hops) && r.hops[r.next].from == from && r.hops[r.next].to == to {
		r.next++
	} else {
		pl.release(id)
	}
	if n := pl.nodes[from]; n != nil {
		n.Store.Remove(id)
	}
}

// delivered releases everything the packet still holds.
func (pl *Planner) delivered(id packet.ID) {
	pl.release(id)
	delete(pl.lastTry, id)
}

package cgr

// Policy selects the planner's allocation strategy. The zero value is
// NOT valid — use DefaultPolicy (classic single-copy, single-path CGR)
// or one of the named arm constructors in scenario wiring; NewPolicy
// normalizes out-of-range fields.
//
// The three extensions compose but are exercised as separate benchmark
// arms so the family isolates each policy's contribution:
//
//   - KPaths > 1 turns route selection into a Yen-style k-alternate
//     search over the contact graph. Alternates are pruned by the same
//     residual-capacity and buffer-headroom feasibility rules as the
//     best path; among alternates arriving within DelaySlack of the
//     earliest, the widest (largest bottleneck residual) wins, trading
//     a bounded delay increase for congestion avoidance (Alhajj &
//     Corlay, arXiv:2410.15546).
//   - Copies > 1 bounds multi-copy spreading: the source commits up to
//     Copies routes whose windows and relay nodes are mutually
//     disjoint, so replicas never compete for the same reserved
//     capacity and no node ever holds two copies (the store is keyed
//     by packet ID). Custody advances per route; delivery sweeps the
//     surviving replicas.
//   - AdmitFraction > 0 enables GMA-style source admission (Pareto-
//     optimal distributed rate allocation, arXiv:2102.10314): a packet
//     is admitted only while the bytes already in flight toward its
//     destination fit within AdmitFraction of the residual capacity of
//     the destination's remaining contact windows. Rejected packets
//     are never stored — injection is rate-limited at the source from
//     the planner's residual-capacity view.
type Policy struct {
	// KPaths is the number of alternate contact paths examined per
	// (re-)plan; 1 reproduces single-path earliest-arrival CGR exactly.
	KPaths int
	// DelaySlack is the relative detour budget for widest-path
	// selection: an alternate qualifies when its arrival is within
	// (1+DelaySlack)× the earliest alternative's in-flight time.
	DelaySlack float64
	// Copies caps the simultaneous replicas per packet (L); 1 keeps
	// single-copy custody transfer.
	Copies int
	// AdmitFraction > 0 enables admission control; it is the fraction
	// of the destination's residual access capacity that may be
	// outstanding toward it at once.
	AdmitFraction float64
}

// Per-arm defaults used by the scenario protocol registrations.
const (
	DefaultKPaths        = 4
	DefaultDelaySlack    = 0.5
	DefaultCopies        = 3
	DefaultAdmitFraction = 1.0
)

// DefaultPolicy is classic CGR: single path, single copy, no
// admission control.
func DefaultPolicy() Policy { return Policy{KPaths: 1, Copies: 1} }

// normalized clamps nonsensical values to the classic-CGR baseline.
func (p Policy) normalized() Policy {
	if p.KPaths < 1 {
		p.KPaths = 1
	}
	if p.Copies < 1 {
		p.Copies = 1
	}
	if p.DelaySlack < 0 {
		p.DelaySlack = 0
	}
	if p.AdmitFraction < 0 {
		p.AdmitFraction = 0
	}
	return p
}

package cgr_test

import (
	"testing"

	"rapid/internal/packet"
	"rapid/internal/routing"
	"rapid/internal/routing/cgr"
	"rapid/internal/trace"
)

func run(t *testing.T, sched *trace.Schedule, w packet.Workload, cfg routing.Config) *routing.Scenario {
	t.Helper()
	if err := sched.Validate(); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	return &routing.Scenario{
		Schedule: sched, Workload: w, Factory: cgr.New(), Cfg: cfg, Seed: 1,
	}
}

func pkt(id int64, src, dst packet.NodeID, size int64, created float64) *packet.Packet {
	return &packet.Packet{ID: packet.ID(id), Src: src, Dst: dst, Size: size, Created: created}
}

// TestRelayChain: A meets B at t=10, B meets C at t=20. CGR must plan
// A→B→C and deliver at 20 with exactly one replication (single copy).
func TestRelayChain(t *testing.T) {
	sched := &trace.Schedule{Duration: 100}
	sched.Meetings = []trace.Meeting{
		{A: 0, B: 1, Time: 10, Bytes: 10 << 10},
		{A: 1, B: 2, Time: 20, Bytes: 10 << 10},
	}
	w := packet.Workload{pkt(1, 0, 2, 1024, 0)}
	col := routing.Run(*run(t, sched, w, routing.Config{}))
	s := col.Summarize(100)
	if s.Delivered != 1 {
		t.Fatalf("delivered %d, want 1", s.Delivered)
	}
	if got := col.Records()[0].DeliveredAt; got != 20 {
		t.Fatalf("delivered at %v, want 20", got)
	}
	if col.Replications != 1 {
		t.Fatalf("replications %d, want 1 (single-copy relay)", col.Replications)
	}
}

// TestWithholdsOffPlanPackets: the planned route goes via relay 1; a
// meeting with relay 3 (a dead end) must not receive a copy.
func TestWithholdsOffPlanPackets(t *testing.T) {
	sched := &trace.Schedule{Duration: 100}
	sched.Meetings = []trace.Meeting{
		{A: 0, B: 3, Time: 5, Bytes: 10 << 10}, // dead-end relay: 3 never meets 2
		{A: 0, B: 1, Time: 10, Bytes: 10 << 10},
		{A: 1, B: 2, Time: 20, Bytes: 10 << 10},
	}
	w := packet.Workload{pkt(1, 0, 2, 1024, 0)}
	col := routing.Run(*run(t, sched, w, routing.Config{}))
	if col.Replications != 1 {
		t.Fatalf("replications %d, want 1 (no copy to the dead-end relay)", col.Replications)
	}
	if !col.IsDelivered(1) {
		t.Fatal("packet not delivered")
	}
}

// TestCapacityReservation: the early relay meeting fits one packet;
// the second packet must route over the later, slower relay chain
// instead of overbooking.
func TestCapacityReservation(t *testing.T) {
	sched := &trace.Schedule{Duration: 100}
	sched.Meetings = []trace.Meeting{
		{A: 0, B: 1, Time: 10, Bytes: 1024}, // room for exactly one packet
		{A: 1, B: 2, Time: 20, Bytes: 1024},
		{A: 0, B: 3, Time: 30, Bytes: 10 << 10}, // fallback chain
		{A: 3, B: 2, Time: 40, Bytes: 10 << 10},
	}
	w := packet.Workload{
		pkt(1, 0, 2, 1024, 0),
		pkt(2, 0, 2, 1024, 0),
	}
	col := routing.Run(*run(t, sched, w, routing.Config{}))
	s := col.Summarize(100)
	if s.Delivered != 2 {
		t.Fatalf("delivered %d, want 2", s.Delivered)
	}
	var at1, at2 float64
	for _, r := range col.Records() {
		switch r.P.ID {
		case 1:
			at1 = r.DeliveredAt
		case 2:
			at2 = r.DeliveredAt
		}
	}
	if at1 != 20 || at2 != 40 {
		t.Fatalf("deliveries at (%v, %v), want (20, 40): capacity reservation must push the second packet to the fallback chain", at1, at2)
	}
}

// TestBufferHeadroom: the fast relay's buffer cannot hold the packet,
// so the plan must route over the roomier, slower relay.
func TestBufferHeadroom(t *testing.T) {
	sched := &trace.Schedule{Duration: 100}
	sched.Meetings = []trace.Meeting{
		{A: 0, B: 1, Time: 10, Bytes: 10 << 10}, // relay 1: tiny buffer
		{A: 1, B: 2, Time: 20, Bytes: 10 << 10},
		{A: 0, B: 3, Time: 30, Bytes: 10 << 10}, // relay 3: room
		{A: 3, B: 2, Time: 40, Bytes: 10 << 10},
	}
	w := packet.Workload{pkt(1, 0, 2, 1024, 0)}
	cfg := routing.Config{
		BufferBytesFor: func(id packet.NodeID) int64 {
			if id == 1 {
				return 512 // too small for the 1 KB packet
			}
			return 100 << 10
		},
	}
	col := routing.Run(*run(t, sched, w, cfg))
	if !col.IsDelivered(1) {
		t.Fatal("packet not delivered")
	}
	if got := col.Records()[0].DeliveredAt; got != 40 {
		t.Fatalf("delivered at %v, want 40 via the roomy relay", got)
	}
}

// TestWindowedCutoffReplans: two overlapping windows at the source
// halve the radio rate, so the planned transfer through the first
// window is cut off at close; CGR must re-plan onto the later window
// and still deliver.
func TestWindowedCutoffReplans(t *testing.T) {
	sched := &trace.Schedule{Duration: 200}
	// Window 0↔2 [10,20) at 200 B/s: 2000 B capacity, and a 1500 B
	// packet needs 7.5 s at full rate. The overlapping 0↔3 window forces
	// rate sharing (100 B/s → 15 s needed, 10 available) — cut off.
	sched.Contacts = []trace.Contact{
		{A: 0, B: 2, Start: 10, Duration: 10, RateBps: 200},
		{A: 0, B: 3, Start: 10, Duration: 10, RateBps: 200},
		// Recovery window, ample time.
		{A: 0, B: 2, Start: 50, Duration: 30, RateBps: 200},
	}
	w := packet.Workload{pkt(1, 0, 2, 1500, 0)}
	col := routing.Run(*run(t, sched, w, routing.Config{}))
	if !col.IsDelivered(1) {
		t.Fatal("packet not delivered after cut-off")
	}
	at := col.Records()[0].DeliveredAt
	if at <= 50 || at >= 80 {
		t.Fatalf("delivered at %v, want inside the recovery window (50,80)", at)
	}
}

// TestDirectDeliveryOpportunism: meeting the destination outside the
// planned route still delivers immediately.
func TestDirectDeliveryOpportunism(t *testing.T) {
	sched := &trace.Schedule{Duration: 100}
	sched.Meetings = []trace.Meeting{
		{A: 0, B: 1, Time: 10, Bytes: 10 << 10},
		{A: 0, B: 2, Time: 30, Bytes: 10 << 10}, // direct meeting beats the relay plan
		{A: 1, B: 2, Time: 50, Bytes: 10 << 10}, // planned path would arrive at 50
	}
	w := packet.Workload{pkt(1, 0, 2, 1024, 0)}
	col := routing.Run(*run(t, sched, w, routing.Config{}))
	if !col.IsDelivered(1) {
		t.Fatal("packet not delivered")
	}
	at := col.Records()[0].DeliveredAt
	if at > 30 {
		t.Fatalf("delivered at %v, want <= 30 (opportunistic direct delivery)", at)
	}
}

// TestWaitsForPlannedWindow: the first meeting with the planned relay
// is too small for the packet; the plan must target the later, larger
// occurrence and the packet must be withheld until it opens.
func TestWaitsForPlannedWindow(t *testing.T) {
	sched := &trace.Schedule{Duration: 100}
	sched.Meetings = []trace.Meeting{
		{A: 0, B: 1, Time: 10, Bytes: 512}, // too small for the packet
		{A: 0, B: 1, Time: 40, Bytes: 4096},
		{A: 1, B: 2, Time: 60, Bytes: 4096},
	}
	w := packet.Workload{pkt(1, 0, 2, 1024, 0)}
	col := routing.Run(*run(t, sched, w, routing.Config{}))
	if !col.IsDelivered(1) {
		t.Fatal("packet not delivered")
	}
	if got := col.Records()[0].DeliveredAt; got != 60 {
		t.Fatalf("delivered at %v, want 60", got)
	}
}

// TestDeterminism: two identical runs produce identical outcomes.
func TestDeterminism(t *testing.T) {
	sched := &trace.Schedule{Duration: 300}
	for i := 0; i < 40; i++ {
		a := packet.NodeID(i % 5)
		b := packet.NodeID((i + 1) % 5)
		sched.Meetings = append(sched.Meetings, trace.Meeting{
			A: a, B: b, Time: float64(i*7 + 3), Bytes: 2048,
		})
	}
	sched.Sort()
	var w packet.Workload
	for i := int64(1); i <= 10; i++ {
		w = append(w, pkt(i, packet.NodeID(i%5), packet.NodeID((i+2)%5), 1024, float64(i)))
	}
	s1 := routing.Run(*run(t, sched, w, routing.Config{BufferBytes: 8 << 10})).Summarize(300)
	s2 := routing.Run(*run(t, sched, w, routing.Config{BufferBytes: 8 << 10})).Summarize(300)
	if s1 != s2 {
		t.Fatalf("non-deterministic: %+v vs %+v", s1, s2)
	}
}

package cgr

// White-box invariants of the policy-aware planner: copy budgets,
// reservation conservation, route/reservation consistency, and the
// behavioral deltas of the three policy arms the black-box suite
// (cgr_test.go) cannot see from the outside.

import (
	"testing"

	"rapid/internal/packet"
	"rapid/internal/routing"
	"rapid/internal/trace"
)

// plannerOf extracts the shared planner from a factory (an extra
// router instance is harmless — routers are thin views).
func plannerOf(f routing.RouterFactory) *Planner {
	return f(0).(*Router).pl
}

// auditPlanner asserts the planner's bookkeeping invariants: residuals
// within [0, cap0]; live untraversed demand covered by each window's
// reserved bytes; per-packet copy count within the policy budget; live
// sibling routes window-disjoint; holder consistent with the executed
// prefix; every buffer reservation tied to a live route at the route's
// committed size.
func auditPlanner(t *testing.T, pl *Planner) {
	t.Helper()
	demand := make([]int64, len(pl.windows))
	live := map[*route]packet.ID{}
	for id, rs := range pl.routes {
		if len(rs) > pl.pol.Copies {
			t.Errorf("packet %d holds %d routes over the %d-copy budget", id, len(rs), pl.pol.Copies)
		}
		winsSeen := map[int]bool{}
		for _, r := range rs {
			live[r] = id
			if r.size <= 0 {
				t.Errorf("packet %d: live route committed at size %d", id, r.size)
			}
			if r.next > 0 {
				if r.holder != r.hops[r.next-1].to {
					t.Errorf("packet %d: holder %d disagrees with executed prefix ending at %d",
						id, r.holder, r.hops[r.next-1].to)
				}
			} else if r.holder != r.hops[0].from {
				t.Errorf("packet %d: unexecuted route held at %d, planned from %d",
					id, r.holder, r.hops[0].from)
			}
			for i := r.next; i < len(r.hops); i++ {
				demand[r.hops[i].win] += r.size
			}
			for _, h := range r.hops {
				if winsSeen[h.win] {
					t.Errorf("packet %d: two live routes share window %d — copies must be capacity-disjoint", id, h.win)
				}
				winsSeen[h.win] = true
			}
		}
	}
	for i := range pl.windows {
		w := &pl.windows[i]
		if w.residual < 0 || w.residual > w.cap0 {
			t.Errorf("window %d residual %d outside [0, %d]", i, w.residual, w.cap0)
		}
		if demand[i] > w.cap0-w.residual {
			t.Errorf("window %d: %d bytes of live untraversed demand exceed the %d bytes reserved",
				i, demand[i], w.cap0-w.residual)
		}
	}
	for node, list := range pl.resv {
		for _, rv := range list {
			id, ok := live[rv.rt]
			if !ok {
				t.Errorf("node %d holds a reservation of packet %d for a dead route", node, rv.id)
				continue
			}
			if id != rv.id {
				t.Errorf("node %d: reservation of packet %d tied to packet %d's route", node, rv.id, id)
			}
			if rv.bytes != rv.rt.size {
				t.Errorf("node %d: reservation bytes %d != route size %d", node, rv.bytes, rv.rt.size)
			}
		}
	}
}

// handPlanner builds a primed planner over explicit point meetings,
// bypassing the runtime (pure planner unit tests).
func handPlanner(pol Policy, meetings []trace.Meeting) *Planner {
	pl := newPlanner(pol)
	pl.primed = true
	pl.capFor = func(packet.NodeID) int64 { return 0 }
	for _, m := range meetings {
		pl.windows = append(pl.windows, window{
			a: m.A, b: m.B, start: m.Time, end: m.Time,
			cap0: m.Bytes, residual: m.Bytes,
		})
	}
	for i, w := range pl.windows {
		pl.byNode[w.a] = append(pl.byNode[w.a], i)
		pl.byNode[w.b] = append(pl.byNode[w.b], i)
	}
	return pl
}

// TestReservationConservation: commit → release restores every residual
// exactly; after one hop executes, release refunds only the untraversed
// remainder.
func TestReservationConservation(t *testing.T) {
	meetings := []trace.Meeting{
		{A: 0, B: 1, Time: 10, Bytes: 4096},
		{A: 1, B: 2, Time: 20, Bytes: 4096},
	}
	pl := handPlanner(DefaultPolicy(), meetings)
	p := &packet.Packet{ID: 1, Src: 0, Dst: 2, Size: 1000}

	r := pl.plan(p, 0, 0, rankGenerated, nil)
	if r == nil || len(r.hops) != 2 {
		t.Fatalf("plan: got %+v, want a 2-hop route", r)
	}
	pl.commit(p, r, 0)
	if pl.windows[0].residual != 3096 || pl.windows[1].residual != 3096 {
		t.Fatalf("residuals after commit: %d, %d, want 3096, 3096",
			pl.windows[0].residual, pl.windows[1].residual)
	}
	if len(pl.resv[1]) != 1 {
		t.Fatalf("relay 1 reservations: %d, want 1", len(pl.resv[1]))
	}
	auditPlanner(t, pl)

	pl.release(p.ID)
	if pl.windows[0].residual != 4096 || pl.windows[1].residual != 4096 {
		t.Fatalf("release must refund both hops exactly: %d, %d",
			pl.windows[0].residual, pl.windows[1].residual)
	}
	if len(pl.resv) != 0 || len(pl.routes) != 0 {
		t.Fatalf("release leaked state: %d resv nodes, %d routed packets", len(pl.resv), len(pl.routes))
	}

	// Re-plan, execute the first hop, then release: only the second
	// hop's reservation comes back — the first window's bytes are spent.
	r = pl.plan(p, 0, 0, rankGenerated, nil)
	pl.commit(p, r, 0)
	pl.transferred(p.ID, 0, 1)
	if got := pl.routes[p.ID][0]; got.next != 1 || got.holder != 1 {
		t.Fatalf("transfer bookkeeping: next=%d holder=%d, want 1, 1", got.next, got.holder)
	}
	auditPlanner(t, pl)
	pl.release(p.ID)
	if pl.windows[0].residual != 3096 {
		t.Fatalf("window 0 residual %d, want 3096 (executed hop is spent for good)", pl.windows[0].residual)
	}
	if pl.windows[1].residual != 4096 {
		t.Fatalf("window 1 residual %d, want 4096 (untraversed hop refunded)", pl.windows[1].residual)
	}
}

// TestMultiCopyDisjointSpread: a three-relay diamond under a 3-copy
// budget commits three window- and relay-disjoint routes, keeps every
// planner invariant through the run, and sweeps all state at delivery.
func TestMultiCopyDisjointSpread(t *testing.T) {
	sched := &trace.Schedule{Duration: 100}
	sched.Meetings = []trace.Meeting{
		{A: 0, B: 1, Time: 10, Bytes: 10 << 10},
		{A: 0, B: 2, Time: 11, Bytes: 10 << 10},
		{A: 0, B: 3, Time: 12, Bytes: 10 << 10},
		{A: 1, B: 4, Time: 20, Bytes: 10 << 10},
		{A: 2, B: 4, Time: 21, Bytes: 10 << 10},
		{A: 3, B: 4, Time: 22, Bytes: 10 << 10},
	}
	f := NewPolicy(Policy{Copies: 3})
	pl := plannerOf(f)
	w := packet.Workload{{ID: 1, Src: 0, Dst: 4, Size: 1024, Created: 0}}
	spreadChecked := false
	sc := routing.Scenario{
		Schedule: sched, Workload: w, Factory: f, Cfg: routing.Config{}, Seed: 1,
		Hooks: &routing.Hooks{AfterEvent: func(*routing.Network) {
			auditPlanner(t, pl)
			if rs := pl.routes[1]; len(rs) == 3 {
				spreadChecked = true
			}
		}},
	}
	col := routing.Run(sc)
	if !col.IsDelivered(1) {
		t.Fatal("packet not delivered")
	}
	if !spreadChecked {
		t.Error("the 3-copy budget never spread to 3 routes on a 3-way disjoint diamond")
	}
	if got := col.Records()[0].DeliveredAt; got != 20 {
		t.Fatalf("delivered at %v, want 20 (earliest replica)", got)
	}
	if col.Replications != 3 {
		t.Fatalf("replications %d, want 3 (one per disjoint relay)", col.Replications)
	}
	// Delivery sweeps the packet everywhere: no live routes, no
	// reservations, no stray replicas left to re-deliver.
	if len(pl.routes) != 0 || len(pl.resv) != 0 {
		t.Fatalf("delivery left %d routed packets, %d reservation nodes", len(pl.routes), len(pl.resv))
	}
	if col.Summarize(100).Delivered != 1 {
		t.Fatal("stray replica re-delivered after the sweep")
	}
}

// TestKPathWidestWithinSlack: the narrow path arrives at 20, the wide
// one at 24. Classic CGR takes earliest arrival; the k-path policy
// (slack 0.5 → limit 30) must trade 4 seconds for the 10× wider
// bottleneck.
func TestKPathWidestWithinSlack(t *testing.T) {
	mk := func() *trace.Schedule {
		s := &trace.Schedule{Duration: 100}
		s.Meetings = []trace.Meeting{
			{A: 0, B: 1, Time: 10, Bytes: 1024}, // narrow fast chain
			{A: 1, B: 3, Time: 20, Bytes: 1024},
			{A: 0, B: 2, Time: 12, Bytes: 10 << 10}, // wide slow chain
			{A: 2, B: 3, Time: 24, Bytes: 10 << 10},
		}
		return s
	}
	w := packet.Workload{{ID: 1, Src: 0, Dst: 3, Size: 1024, Created: 0}}

	classic := routing.Run(routing.Scenario{
		Schedule: mk(), Workload: w, Factory: New(), Cfg: routing.Config{}, Seed: 1,
	})
	if got := classic.Records()[0].DeliveredAt; got != 20 {
		t.Fatalf("classic CGR delivered at %v, want 20 (earliest arrival)", got)
	}

	kpath := routing.Run(routing.Scenario{
		Schedule: mk(), Workload: w,
		Factory: NewPolicy(Policy{KPaths: 4, DelaySlack: 0.5, Copies: 1}),
		Cfg:     routing.Config{}, Seed: 1,
	})
	if got := kpath.Records()[0].DeliveredAt; got != 24 {
		t.Fatalf("k-path CGR delivered at %v, want 24 (widest within slack)", got)
	}
}

// TestAdmissionThrottlesInjection: five 1 KB packets contend for a
// single 2 KB access window to the destination. Classic CGR stores all
// five and delivers until capacity runs out; the admission arm refuses
// at the source once the outstanding bytes reach the destination's
// residual-capacity quota.
func TestAdmissionThrottlesInjection(t *testing.T) {
	mk := func() *trace.Schedule {
		s := &trace.Schedule{Duration: 100}
		s.Meetings = []trace.Meeting{{A: 0, B: 2, Time: 10, Bytes: 2048}}
		return s
	}
	var w packet.Workload
	for i := int64(1); i <= 5; i++ {
		w = append(w, &packet.Packet{ID: packet.ID(i), Src: 0, Dst: 2, Size: 1024, Created: 0})
	}

	classic := routing.Run(routing.Scenario{
		Schedule: mk(), Workload: w, Factory: New(), Cfg: routing.Config{}, Seed: 1,
	}).Summarize(100)
	if classic.Delivered != 2 {
		t.Fatalf("classic CGR delivered %d, want 2 (window capacity)", classic.Delivered)
	}

	f := NewPolicy(Policy{KPaths: 1, Copies: 1, AdmitFraction: 1})
	pl := plannerOf(f)
	admit := routing.Run(routing.Scenario{
		Schedule: mk(), Workload: w, Factory: f, Cfg: routing.Config{}, Seed: 1,
	}).Summarize(100)
	if admit.Delivered < 1 || admit.Delivered > 2 {
		t.Fatalf("admission arm delivered %d, want 1..2", admit.Delivered)
	}
	// The quota must have refused at least the packets that could never
	// fit: no more than 2 were ever admitted to the ledger.
	if n := len(pl.admDst); n > admit.Delivered {
		t.Fatalf("%d packets still in the admission ledger after %d deliveries", n, admit.Delivered)
	}
}

// TestNotSessionConfined guards the parallel-engine contract: every
// CGR router of a run shares one planner, so the arm must never be
// marked SessionConfined (the serial engine is a correctness
// requirement, not a performance accident).
func TestNotSessionConfined(t *testing.T) {
	var r routing.Router = &Router{}
	if _, ok := r.(routing.SessionConfined); ok {
		t.Fatal("cgr.Router must not implement routing.SessionConfined: all routers of a run share one planner")
	}
}

// Package cgr implements Contact Graph Routing over deterministic
// contact plans: the scheduled-connectivity counterpart of the paper's
// statistical DTN setting (Alhajj & Corlay, arXiv:2410.15546; Shi et
// al., arXiv:2211.06598). Where RAPID and the reactive baselines decide
// contact-by-contact, CGR knows the full expanded schedule up front —
// satellite constellations and data-mule routes make every future
// window computable — and routes each packet along its earliest-arrival
// time-respecting path, reserving per-window capacity and relay buffer
// headroom as it plans.
//
// The planner is parameterized by a Policy, turning the package into a
// family of allocation strategies benchmarked head-to-head: classic
// single-copy custody transfer (DefaultPolicy), Yen-style k-alternate
// paths with widest-within-slack selection (KPaths > 1), bounded
// multi-copy spreading over window- and relay-disjoint routes
// (Copies > 1), and GMA-style per-destination source admission
// (AdmitFraction > 0; arXiv:2102.10314). Whatever the policy, when
// reality diverges from the plan — a window closes before the transfer
// completes, radio sharing cuts the effective rate, a relay refuses the
// copy — custody stays put, the stale route is released (refunding its
// unused capacity and buffer reservations), and the replica is
// re-planned from its current custodian at the next opportunity.
// DESIGN.md §9 documents the graph construction and re-planning rules;
// §15 the policy extensions.
package cgr

import (
	"sort"

	"rapid/internal/buffer"
	"rapid/internal/control"
	"rapid/internal/packet"
	"rapid/internal/routing"
	"rapid/internal/trace"
)

// Router is one node's view of the shared contact-graph planner.
type Router struct {
	node *routing.Node
	pl   *Planner

	// planScratch and dqScratch are the reused per-contact slices.
	planScratch []*buffer.Entry
	dqScratch   []*buffer.Entry
	arriveByID  map[packet.ID]float64
}

// New returns a classic (single-copy, single-path) CGR router factory.
// All routers built by one factory share one planner — a factory must
// not be reused across runs.
func New() routing.RouterFactory { return NewPolicy(DefaultPolicy()) }

// NewPolicy returns a CGR router factory running the given allocation
// policy. The same single-use rule as New applies.
func NewPolicy(pol Policy) routing.RouterFactory {
	pl := newPlanner(pol)
	return func(packet.NodeID) routing.Router {
		return &Router{pl: pl, arriveByID: make(map[packet.ID]float64)}
	}
}

// Name implements routing.Router.
func (r *Router) Name() string { return "cgr" }

// Attach implements routing.Router.
func (r *Router) Attach(n *routing.Node) {
	r.node = n
	r.pl.register(n)
}

// PrimeSchedule implements routing.SchedulePrimer: the planner ingests
// the expanded schedule before the first event (idempotent — one node
// wins, the rest no-op).
func (r *Router) PrimeSchedule(s *trace.Schedule, net *routing.Network) {
	r.pl.prime(s, net)
}

// Generate implements routing.Router: admit the packet against the
// destination's residual-capacity quota (a no-op outside the admission
// arm — rejected packets are never stored), store it (the source is its
// first custodian), and plan its initial routes — one, or up to Copies
// disjoint ones under the multi-copy arm.
func (r *Router) Generate(p *packet.Packet, now float64) {
	if !r.pl.admitAllowed(p, now) {
		return
	}
	if !r.node.Store.Insert(&buffer.Entry{P: p, ReceivedAt: now, Own: true}, nil) {
		return
	}
	r.pl.admit(p)
	r.pl.spread(p, r.node.ID, now)
}

// Inventory implements routing.Router. CGR runs no metadata channel:
// the contact plan is shared a priori, and bounded custody makes
// replica inventories moot.
func (r *Router) Inventory(now float64) []control.InventoryItem { return nil }

// DirectQueue implements routing.Router: everything destined to the
// peer, oldest first. Meeting the destination is always at least as
// good as any planned route, so direct delivery is unconditional.
func (r *Router) DirectQueue(peer packet.NodeID, now float64) []*buffer.Entry {
	q := r.node.Store.Queue(peer)
	if len(q) == 0 {
		return nil
	}
	r.dqScratch = append(r.dqScratch[:0], q...)
	return r.dqScratch
}

// PlanReplication implements routing.Router: the buffered packets whose
// planned next hop traverses the live contact to this peer, earliest
// planned delivery first. Packets with stale routes (missed or cut-off
// windows) are re-planned here; packets routed through other contacts
// are withheld — bounded custody never hedges beyond its copy budget.
func (r *Router) PlanReplication(peer *routing.Node, now float64) []*buffer.Entry {
	out := r.planScratch[:0]
	clear(r.arriveByID)
	// The custody rank of this event: the live window itself, so a
	// re-plan may depart through the very contact being executed or any
	// same-instant window still pending.
	r0 := rankStreamed
	if cur := r.pl.liveWindow(r.node.ID, peer.ID, now); cur >= 0 {
		r0 = cur - 1
	}
	for _, e := range r.node.Store.Entries() {
		if e.P.Dst == peer.ID {
			continue // Step 2's direct queue owns these
		}
		matched := false
		var bestAt float64
		for _, rt := range r.pl.executable(e.P, r.node.ID, now, r0) {
			h := rt.hops[rt.next]
			w := &r.pl.windows[h.win]
			if h.to != peer.ID || now < w.start-timeEps || now > w.end+timeEps {
				continue // planned through a different contact
			}
			if !matched || rt.arriveAt() < bestAt {
				matched, bestAt = true, rt.arriveAt()
			}
		}
		if !matched {
			continue
		}
		out = append(out, e)
		r.arriveByID[e.P.ID] = bestAt
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := r.arriveByID[out[i].P.ID], r.arriveByID[out[j].P.ID]
		if ai != aj {
			return ai < aj
		}
		return out[i].P.ID < out[j].P.ID
	})
	r.planScratch = out
	return out
}

// Accept implements routing.Router: take custody. The insert is
// headroom-checked by the store; on success the planner advances the
// matching route and settles the sender's copy. On refusal custody
// stays with the sender, whose now-stale route re-plans at its next
// contact.
func (r *Router) Accept(e *buffer.Entry, from packet.NodeID, now float64) bool {
	if !r.node.Store.Insert(e, nil) {
		return false
	}
	r.pl.transferred(e.P.ID, from, r.node.ID)
	return true
}

// OnDelivered implements routing.DeliveryObserver: release the
// delivered packet's remaining reservations and sweep surviving
// replicas.
func (r *Router) OnDelivered(id packet.ID, now float64) {
	r.pl.delivered(id)
}

// Package routing is the DTN runtime: nodes with buffers and control
// state, the contact session that moves bytes between two nodes during
// a transfer opportunity, the Router interface that protocols implement
// (RAPID in internal/core; baselines under internal/routing/...), and
// the scenario driver that replays a meeting schedule against a
// workload.
//
// Transfer opportunities come in two forms. Point meetings execute an
// instantaneous Session (session.go). Duration-aware contacts open at
// their start event, budget RateBps·Duration bytes, and stream packets
// across the window — cut off at window close, with overlapping windows
// sharing each node's radio fairly (window.go).
//
// The runtime enforces the feasibility constraints of §3.1: the total
// bytes moved during a meeting (control plus data, both directions)
// never exceed the transfer opportunity, and buffered bytes never
// exceed node storage.
package routing

import (
	"fmt"

	"rapid/internal/buffer"
	"rapid/internal/control"
	"rapid/internal/disrupt"
	"rapid/internal/metrics"
	"rapid/internal/packet"
	"rapid/internal/sim"
	"rapid/internal/trace"
)

// ControlMode selects how metadata propagates.
type ControlMode int

const (
	// ControlInBand is the default: metadata rides contacts and costs
	// bandwidth (§4.2).
	ControlInBand ControlMode = iota
	// ControlGlobal is the instant zero-cost global channel
	// (§6.2.3, Figs. 10–13).
	ControlGlobal
	// ControlNone disables the control plane entirely (pure Random).
	ControlNone
)

// String implements fmt.Stringer.
func (m ControlMode) String() string {
	switch m {
	case ControlInBand:
		return "in-band"
	case ControlGlobal:
		return "global"
	case ControlNone:
		return "none"
	default:
		return fmt.Sprintf("ControlMode(%d)", int(m))
	}
}

// Config carries runtime parameters shared by all protocols.
type Config struct {
	// BufferBytes is per-node storage for in-transit data
	// (<= 0: unlimited — the deployment's 40 GB effectively was).
	BufferBytes int64
	// BufferBytesFor, when non-nil, assigns per-node storage and
	// overrides BufferBytes (heterogeneous-buffer scenarios; <= 0 is
	// unlimited for that node).
	BufferBytesFor func(packet.NodeID) int64
	// Mode selects the control plane.
	Mode ControlMode
	// MetaFraction caps metadata at this fraction of each transfer
	// opportunity (Fig. 8's x-axis). Negative means uncapped, the
	// paper's default. Zero disables metadata exchange.
	MetaFraction float64
	// LocalOnlyMeta restricts metadata to packets in the sender's own
	// buffer (the rapid-local ablation arm, Fig. 14).
	LocalOnlyMeta bool
	// AcksOnly restricts the exchange to delivery acknowledgments
	// (Random-with-acks; MaxProp's notification flood).
	AcksOnly bool
	// Hops is the transitive meeting-estimation horizon (default 3).
	Hops int
	// DefaultTransferBytes seeds B (expected opportunity size) before
	// any transfer has been observed.
	DefaultTransferBytes float64
	// Workers selects the event engine's worker count: 0 or 1 run the
	// historical serial loop, n > 1 spread independent same-batch
	// contact sessions across n goroutines, negative uses one worker
	// per available CPU. Output is byte-identical at every setting;
	// runs the parallel engine cannot prove independent for (global
	// control channel, Bernoulli loss, conformance hooks, routers not
	// marked SessionConfined) silently fall back to serial.
	Workers int
}

// CapacityFor resolves one node's storage capacity in bytes
// (<= 0: unlimited) — the single authority the runtime, plan-ahead
// routers and conformance harnesses all share.
func (c Config) CapacityFor(id packet.NodeID) int64 {
	if c.BufferBytesFor != nil {
		return c.BufferBytesFor(id)
	}
	return c.BufferBytes
}

// DefaultTransferBytesFallback is used when Config.DefaultTransferBytes
// is unset.
const DefaultTransferBytesFallback = 100 << 10

// Node is one DTN node at runtime.
type Node struct {
	ID     packet.NodeID
	Store  *buffer.Store
	Ctl    *control.State
	Router Router
	Net    *Network

	// Down is maintained by the disruption layer's churn events: while
	// set, the node neither forwards nor receives — its sessions are
	// skipped and its live windows cut off. Local packet generation
	// continues (the application queues; only the radio is dark).
	Down bool

	// purgeScratch is the session's reused ack-purge victim buffer.
	purgeScratch []packet.ID
}

// Network owns the nodes, the engine, and the collector for one run.
type Network struct {
	Engine    *sim.Engine
	Nodes     map[packet.NodeID]*Node
	Collector *metrics.Collector
	Cfg       Config
	Global    *control.Global // non-nil in ControlGlobal mode
	// Horizon is the experiment end time (schedule duration).
	Horizon float64
	// win tracks live windowed contacts and per-node radio load;
	// allocated lazily by the first windowed contact (window.go).
	win *windowState
	// hooks is the optional conformance instrumentation (nil normally).
	hooks *Hooks
	// disrupt is the run's disruption model (nil for pristine runs —
	// the disabled layer stays entirely off the hot path).
	disrupt *disrupt.Model
	// lossSeq counts data transfers, indexing the loss decision stream.
	lossSeq uint64
}

// transferLost draws the loss decision for one data transfer. The
// bytes are already spent when this is consulted — the radio sent
// them — so a lost transfer burns opportunity without moving data.
func (n *Network) transferLost(id packet.ID, from, to packet.NodeID, now float64) bool {
	// The HasLoss guard is not just a fast path: at zero loss the
	// transfer counter is unobservable, so skipping it keeps loss-free
	// disrupted runs (churn, jitter, contact failure) free of shared
	// session state — which is what lets them use the parallel engine.
	if n.disrupt == nil || !n.disrupt.HasLoss() {
		return false
	}
	n.lossSeq++
	if !n.disrupt.Lost(n.lossSeq, id) {
		return false
	}
	//rapidlint:allow shardcommit — unreachable in a wave: parallelEligible sends every HasLoss run to the serial engine, and the guard above returns first otherwise
	n.Collector.LostTransfers++
	if h := n.hooks; h != nil && h.OnLost != nil {
		h.OnLost(id, from, to, now)
	}
	return true
}

// generated registers a packet's creation with the collector and fires
// the telemetry hook. Serial generation paths route through it; the
// parallel generateEvent calls the collector directly (a hooked run is
// never parallel).
func (n *Network) generated(p *packet.Packet, now float64) {
	n.Collector.Generated(p)
	if h := n.hooks; h != nil && h.OnGenerated != nil {
		h.OnGenerated(p, now)
	}
}

// Now returns the simulation clock.
func (n *Network) Now() float64 { return n.Engine.Now() }

// Node returns the node with the given ID, creating it through the
// factory is the driver's job; lookup of a missing node panics (a
// schedule/workload mismatch is a bug in the scenario).
func (n *Network) Node(id packet.NodeID) *Node {
	nd, ok := n.Nodes[id]
	if !ok {
		panic(fmt.Sprintf("routing: unknown node %d", id))
	}
	return nd
}

// Router is the protocol interface. One Router instance is attached to
// each node. Routers are driven entirely by the session: they decide
// what to announce, what to deliver, what to replicate and in what
// order, and how to store incoming packets — the runtime moves the
// bytes and enforces budgets.
type Router interface {
	// Name identifies the protocol in reports.
	Name() string
	// Attach wires the router to its node; called once before the run.
	Attach(n *Node)
	// Generate handles a locally created packet. The router must store
	// it (marking it Own) if it wants it routed.
	Generate(p *packet.Packet, now float64)
	// Inventory returns the announce list for a metadata exchange, with
	// fresh delivery-delay estimates where the protocol computes them.
	Inventory(now float64) []control.InventoryItem
	// DirectQueue returns buffered packets destined to peer, in
	// delivery order (Protocol rapid Step 2: "decreasing order of
	// their utility").
	DirectQueue(peer packet.NodeID, now float64) []*buffer.Entry
	// PlanReplication returns replication candidates for this contact
	// in decreasing marginal-utility-per-byte order (Step 3). The
	// session filters duplicates, acked and oversized packets.
	PlanReplication(peer *Node, now float64) []*buffer.Entry
	// Accept stores an incoming replica, applying the protocol's
	// buffer-management policy; it reports whether the packet was kept.
	Accept(e *buffer.Entry, from packet.NodeID, now float64) bool
}

// Gossiper is an optional Router extension for protocols that exchange
// protocol-specific state at contacts (MaxProp's meeting-probability
// vectors, PRoPHET's delivery predictabilities). The paper charges only
// RAPID for its control channel ("In all experiments, we include the
// cost of rapid's in-band control channel"), so gossip is free.
type Gossiper interface {
	GossipWith(peer Router, now float64)
}

// ReplicationObserver is an optional Router extension notified when one
// of its entries was replicated to a peer (Spray-and-Wait halves its
// token count here).
type ReplicationObserver interface {
	OnReplicated(src *buffer.Entry, copy *buffer.Entry, to packet.NodeID)
}

// ReplicaDelayEstimator is an optional Router extension that supplies
// the expected direct-delivery delay of a replica just pushed to a peer
// (RAPID's hypothesized d_Y for the new copy, used to prime the control
// plane's metadata before the receiver's next exchange refreshes it).
type ReplicaDelayEstimator interface {
	EstimateReplicaDelay(e *buffer.Entry, holder *Node, now float64) float64
}

// SchedulePrimer is an optional Router extension for protocols that
// plan over the full contact schedule before the run starts (contact-
// graph routing over a deterministic contact plan). Run calls it once
// per node, in deterministic node order, after every router is attached
// and before any event executes. Routers sharing one planner should
// make priming idempotent.
type SchedulePrimer interface {
	PrimeSchedule(sched *trace.Schedule, net *Network)
}

// DeliveryObserver is an optional Router extension notified when a
// direct delivery it participated in completes — sender and receiver
// both observe it. Plan-ahead protocols use this to release downstream
// capacity and buffer reservations the delivered packet no longer
// needs.
type DeliveryObserver interface {
	OnDelivered(id packet.ID, now float64)
}

// ReplicaDelayFunc evaluates the hypothesized delay of replicating an
// entry to a fixed holder, against a fixed planning-time snapshot of
// that holder's state.
type ReplicaDelayFunc func(e *buffer.Entry) float64

// ReplicaDelaySnapshotter is an optional refinement of
// ReplicaDelayEstimator for sessions that outlive their planning
// instant (windowed contacts): the returned closure pins the holder
// snapshot taken *now*, so later per-send evaluations stay consistent
// even when interleaved contacts at the same node re-point the
// router's internal caches at other peers.
type ReplicaDelaySnapshotter interface {
	SnapshotReplicaDelays(holder *Node) ReplicaDelayFunc
}

// RouterFactory builds a fresh Router per node.
type RouterFactory func(id packet.NodeID) Router

// Hooks is optional runtime instrumentation for conformance testing:
// the cross-protocol invariant harness attaches one to observe physical
// deliveries, per-opportunity byte spending, and event-granular network
// state without touching protocol code. All fields may be nil.
type Hooks struct {
	// OnGenerated fires when a workload packet enters the network at its
	// source (right after the collector registers it) — the simulation
	// service streams these as per-packet telemetry. Like every other
	// hook it forces the serial engine, so hooked runs stay
	// byte-identical to unhooked ones.
	OnGenerated func(p *packet.Packet, now float64)
	// OnDelivered fires at every physical direct delivery, including
	// re-deliveries of a packet already delivered through another
	// replica (legitimate before the ack reaches the extra copies).
	OnDelivered func(id packet.ID, dst packet.NodeID, now float64)
	// OnOpportunityDone fires when a transfer opportunity finishes —
	// a point session returns, or a contact window closes — with its
	// total capacity and the bytes actually spent (control plus data,
	// both directions). spent > capacity is a runtime budgeting bug.
	// Opportunities suppressed by the disruption layer (failed
	// contacts, churned-down endpoints) never fire it.
	OnOpportunityDone func(a, b packet.NodeID, capacity, spent int64, windowed bool, now float64)
	// OnLost fires when the disruption layer loses a data transfer in
	// flight: the bytes were spent but the receiver got nothing, so a
	// delivery or replication of this packet must not result from this
	// transfer.
	OnLost func(id packet.ID, from, to packet.NodeID, now float64)
	// AfterEvent runs after every simulation event with the live
	// network (buffer-occupancy invariants are asserted here).
	AfterEvent func(net *Network)
}

// NewNetwork builds nodes for the given IDs with the factory.
func NewNetwork(engine *sim.Engine, ids []packet.NodeID, f RouterFactory, cfg Config) *Network {
	if cfg.Hops <= 0 {
		cfg.Hops = 3
	}
	if cfg.DefaultTransferBytes <= 0 {
		cfg.DefaultTransferBytes = DefaultTransferBytesFallback
	}
	net := &Network{
		Engine:    engine,
		Nodes:     make(map[packet.NodeID]*Node, len(ids)),
		Collector: metrics.New(),
		Cfg:       cfg,
	}
	if cfg.Mode == ControlGlobal {
		net.Global = control.NewGlobal()
	}
	for _, id := range ids {
		n := &Node{
			ID:    id,
			Store: buffer.New(cfg.CapacityFor(id)),
			Ctl:   control.NewState(id, cfg.Hops, net.Global),
			Net:   net,
		}
		n.Router = f(id)
		n.Router.Attach(n)
		net.Nodes[id] = n
	}
	return net
}

// Event bands: the materialized Run schedules everything upfront, so
// same-instant ordering is fixed by insertion sequence — workload
// creations, then meetings, then contacts, then churn toggles, with
// dynamically scheduled events after all of them. Lazily generated
// streams cannot rely on insertion order (their events are inserted
// mid-run), so they carry explicit bands reproducing the same
// same-instant precedence. Band 0 is the default for everything else.
const (
	bandPump     = -4 // cursor/source pump re-arms
	bandWorkload = -3 // streamed packet creations
	bandMeeting  = -2 // streamed point meetings
	bandContact  = -1 // streamed window opens/closes
)

// Scenario couples a schedule, a workload and a protocol for Run.
type Scenario struct {
	// Schedule is the materialized contact schedule. Exactly one of
	// Schedule and Plan must be set.
	Schedule *trace.Schedule
	// Plan, when Schedule is nil, drives the run directly off the
	// compressed periodic contact plan through a streaming cursor:
	// expanded-schedule memory stays O(plan size) instead of
	// O(occurrences). Runs needing the flattened schedule anyway —
	// disruption realization, SchedulePrimer protocols — fall back to a
	// one-time Expand.
	Plan *trace.ContactPlan
	// Workload is the materialized packet workload.
	Workload packet.Workload
	// Source, when non-nil, replaces Workload with a streaming
	// generator whose creation events are scheduled on demand.
	Source  packet.Source
	Factory RouterFactory
	Cfg     Config
	Seed    int64
	// MergePlanWindows coalesces back-to-back windowed occurrences when
	// running off Plan (see trace.PlanCursor); semantics-changing, so
	// opt-in.
	MergePlanWindows bool
	// Disrupt declares the run's stochastic disruption model; the zero
	// value (Enabled false) is the pristine network and keeps the
	// disruption layer entirely off the hot path.
	Disrupt disrupt.Spec
	// DisruptSeed seeds the disruption decision streams (derive with
	// disrupt.DeriveSeed so replications stay independent).
	DisruptSeed uint64
	// Hooks attaches conformance instrumentation to the run (nil for
	// normal runs).
	Hooks *Hooks
}

// Run replays the scenario and returns the collector. Packets whose
// source or destination never appears in the schedule are still
// injected (their node simply has no meetings).
//
// When sc.Disrupt is enabled, the disruption model is realized over
// the nominal schedule before any event runs: failed contacts are
// never scheduled, surviving contacts shift by their jitter draw, and
// node churn is expanded into down/up toggle events. Plan-ahead
// protocols still prime on the *nominal* schedule — the whole point of
// the disruption families is that their plans can break.
func Run(sc Scenario) *metrics.Collector {
	engine := sim.New(sc.Seed)
	sched := sc.Schedule
	horizon := 0.0
	if sched != nil {
		horizon = sched.Duration
	} else if sc.Plan != nil {
		horizon = sc.Plan.Duration
	}
	ids := participantIDs(sc)
	net := NewNetwork(engine, ids, sc.Factory, sc.Cfg)
	net.Horizon = horizon
	net.hooks = sc.Hooks
	if sc.Hooks != nil && sc.Hooks.AfterEvent != nil {
		engine.AfterEvent = func(*sim.Engine) { sc.Hooks.AfterEvent(net) }
	}
	var model *disrupt.Model
	if sc.Disrupt.Enabled {
		if err := sc.Disrupt.Validate(); err != nil {
			panic(err.Error())
		}
		model = disrupt.New(sc.Disrupt, sc.DisruptSeed)
		net.disrupt = model
	}

	// Plan-ahead protocols see the full schedule before any event runs
	// (the contact plan is known a priori in their deployment setting),
	// and the disruption layer realizes failures over the flattened
	// nominal schedule — both force a plan-driven run to materialize.
	var primers []SchedulePrimer
	for _, id := range ids {
		if pr, ok := net.Nodes[id].Router.(SchedulePrimer); ok {
			primers = append(primers, pr)
		}
	}
	if sched == nil && (model != nil || len(primers) > 0) {
		sched = sc.Plan.Expand()
	}
	for _, pr := range primers {
		pr.PrimeSchedule(sched, net)
	}

	// Parallel engine: sessions and creations become shard events the
	// engine may batch and execute across a pool, committing in serial
	// order — byte-identical output, decided once per run.
	par := false
	if workers := resolveWorkers(sc.Cfg.Workers); workers > 1 && parallelEligible(sc, net, ids) {
		par = true
		engine.SetWorkers(workers)
	}

	if sc.Source != nil {
		startSourcePump(engine, net, sc.Source, par)
	} else {
		// A lazy plan-driven run carries creations in bandWorkload so the
		// materialized creations-before-contacts order holds at shared
		// instants; the materialized path keeps band 0, where insertion
		// order already encodes it.
		wband := int32(0)
		if sched == nil {
			wband = bandWorkload
		}
		for _, p := range sc.Workload {
			p := p
			if par {
				engine.ScheduleBand(p.Created, wband, &generateEvent{net: net, p: p})
				continue
			}
			engine.ScheduleBandFunc(p.Created, wband, func(e *sim.Engine) {
				net.generated(p, e.Now())
				src := net.Node(p.Src)
				src.Router.Generate(p, e.Now())
			})
		}
	}
	if sched == nil {
		// Streaming plan-driven run: a pump walks the compressed cursor
		// and schedules each occurrence just in time, in the banded
		// order matching the materialized path.
		startPlanPump(engine, net, sc.Plan.Cursor(sc.MergePlanWindows), horizon, par)
		engine.RunUntil(horizon)
		net.Collector.EventsExecuted = engine.Executed
		return net.Collector
	}
	// contactIdx indexes the disruption decision streams across the
	// whole nominal schedule: meetings first, then contacts, in
	// schedule order — stable identity per contact regardless of which
	// contacts fail.
	contactIdx := 0
	for _, m := range sched.Meetings {
		m := m
		i := contactIdx
		contactIdx++
		if model != nil {
			if model.ContactFails(i) {
				continue
			}
			var ok bool
			if m.Time, ok = jitterTime(m.Time, model.Jitter(i), horizon); !ok {
				continue
			}
		}
		if par {
			engine.Schedule(m.Time, &sessionEvent{
				net: net, a: net.Node(m.A), b: net.Node(m.B),
				bytes: m.Bytes, at: m.Time,
			})
			continue
		}
		engine.ScheduleFunc(m.Time, func(e *sim.Engine) {
			RunSession(net, net.Node(m.A), net.Node(m.B), m.Bytes)
		})
	}
	for _, c := range sched.Contacts {
		c := c
		i := contactIdx
		contactIdx++
		if model != nil {
			if model.ContactFails(i) {
				continue
			}
			var ok bool
			if c.Start, ok = jitterTime(c.Start, model.Jitter(i), horizon); !ok {
				continue
			}
		}
		if !c.Windowed() {
			// Zero-duration contacts degrade to point meetings: the
			// instantaneous session, byte for byte.
			if par {
				engine.Schedule(c.Start, &sessionEvent{
					net: net, a: net.Node(c.A), b: net.Node(c.B),
					bytes: c.Bytes, at: c.Start,
				})
				continue
			}
			engine.ScheduleFunc(c.Start, func(e *sim.Engine) {
				RunSession(net, net.Node(c.A), net.Node(c.B), c.Bytes)
			})
			continue
		}
		// Never leave a window dangling past the horizon.
		end := c.EndWithin(horizon)
		var w *winContact
		engine.ScheduleSpan(c.Start, end,
			func(e *sim.Engine) { w = openWindow(net, c) },
			func(e *sim.Engine) {
				if w != nil {
					closeWindow(net, w)
				}
			})
	}
	// Node churn: expand each node's down intervals into toggle
	// events. Going down cuts the node's live windows; a contact whose
	// endpoint is down is skipped at its own event. Scheduled after
	// the contacts above so a same-instant contact resolves before the
	// radio drops (FIFO among same-time events).
	if model != nil {
		for _, id := range ids {
			node := net.Nodes[id]
			for _, iv := range model.DownIntervals(id, horizon) {
				iv := iv
				engine.ScheduleFunc(iv.Start, func(e *sim.Engine) {
					node.Down = true
					net.churnClose(node.ID)
				})
				if iv.End < horizon {
					engine.ScheduleFunc(iv.End, func(e *sim.Engine) {
						node.Down = false
					})
				}
			}
		}
	}
	engine.RunUntil(horizon)
	net.Collector.EventsExecuted = engine.Executed
	return net.Collector
}

// jitterTime shifts a contact instant by its jitter draw. A contact
// jittered outside the observation window [0, horizon) is missed
// entirely — it happened before the run began or after it ended, so
// executing it at a clamped instant would account opportunity that
// physically never existed.
func jitterTime(t, jitter, horizon float64) (float64, bool) {
	t += jitter
	if t < 0 || (horizon > 0 && t >= horizon) {
		return 0, false
	}
	return t, true
}

// participantIDs unions schedule (or plan) nodes and workload (or
// source) endpoints.
func participantIDs(sc Scenario) []packet.NodeID {
	seen := map[packet.NodeID]bool{}
	var ids []packet.NodeID
	add := func(id packet.NodeID) {
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	switch {
	case sc.Schedule != nil:
		for _, id := range sc.Schedule.Nodes() {
			add(id)
		}
	case sc.Plan != nil:
		for _, id := range sc.Plan.Nodes() {
			add(id)
		}
	}
	if sc.Source != nil {
		for _, id := range sc.Source.Endpoints() {
			add(id)
		}
	}
	for _, p := range sc.Workload {
		add(p.Src)
		add(p.Dst)
	}
	return ids
}

// startSourcePump schedules streamed packet creations on demand: one
// pump event per distinct creation instant injects that instant's
// packets (in source order) and re-arms at the next instant. Creations
// run in bandWorkload, preserving the materialized path's
// creations-before-contacts order at shared instants.
//
// In a parallel run the pump itself is inline (it only advances the
// private source cursor and schedules) and each creation becomes a
// shard event at the same instant and band: the creations pop right
// after the pump, before any meeting, in source order — the exact
// serial sequence — while staying batchable with neighboring sessions.
func startSourcePump(engine *sim.Engine, net *Network, src packet.Source, par bool) {
	pending, ok := src.Next()
	if !ok {
		return
	}
	var pump func(e *sim.Engine)
	arm := func(at float64) {
		if par {
			engine.ScheduleBand(at, bandWorkload, sim.InlineFunc(pump))
			return
		}
		engine.ScheduleBandFunc(at, bandWorkload, pump)
	}
	pump = func(e *sim.Engine) {
		t := pending.Created
		for {
			p := pending
			if par {
				engine.ScheduleBand(p.Created, bandWorkload, &generateEvent{net: net, p: p})
			} else {
				net.generated(p, e.Now())
				net.Node(p.Src).Router.Generate(p, e.Now())
			}
			if pending, ok = src.Next(); !ok {
				return
			}
			if pending.Created != t {
				arm(pending.Created)
				return
			}
		}
	}
	arm(pending.Created)
}

// startPlanPump schedules contact-plan occurrences on demand from the
// compressed cursor: at each distinct occurrence instant the pump
// schedules that instant's point meetings (bandMeeting) and window
// spans (bandContact), then re-arms at the cursor's next instant.
// Expanded-schedule memory never exists; the pending set is the cursor
// heap plus the live windows.
// In a parallel run the pump is inline and point meetings become shard
// events; window spans keep plain events (they are flush barriers — a
// window's open/close must see every earlier session applied).
func startPlanPump(engine *sim.Engine, net *Network, cur *trace.PlanCursor, horizon float64, par bool) {
	pending, ok := cur.Next()
	if !ok {
		return
	}
	var pump func(e *sim.Engine)
	arm := func(at float64) {
		if par {
			engine.ScheduleBand(at, bandPump, sim.InlineFunc(pump))
			return
		}
		engine.ScheduleBandFunc(at, bandPump, pump)
	}
	pump = func(e *sim.Engine) {
		t := pending.Start
		for {
			c := pending
			if c.Windowed() {
				end := c.EndWithin(horizon)
				var w *winContact
				engine.ScheduleBandFunc(c.Start, bandContact, func(e *sim.Engine) {
					w = openWindow(net, c)
				})
				engine.ScheduleBandFunc(end, bandContact, func(e *sim.Engine) {
					if w != nil {
						closeWindow(net, w)
					}
				})
			} else if par {
				engine.ScheduleBand(c.Start, bandMeeting, &sessionEvent{
					net: net, a: net.Node(c.A), b: net.Node(c.B),
					bytes: c.Bytes, at: c.Start,
				})
			} else {
				engine.ScheduleBandFunc(c.Start, bandMeeting, func(e *sim.Engine) {
					RunSession(net, net.Node(c.A), net.Node(c.B), c.Bytes)
				})
			}
			if pending, ok = cur.Next(); !ok {
				return
			}
			if pending.Start != t {
				arm(pending.Start)
				return
			}
		}
	}
	arm(pending.Start)
}

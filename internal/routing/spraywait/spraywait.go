// Package spraywait implements binary Spray and Wait [Spyropoulos et
// al., WDTN 2005]: each packet starts with L replication tokens; at a
// meeting a node holding n > 1 tokens hands the peer ⌊n/2⌋ of them
// with a copy; a node holding a single token only delivers directly
// (the wait phase). The paper uses L = 12, "based on consultation with
// authors and using LEMMA 4.3 in [30] with a = 4" (§6.1).
package spraywait

import (
	"sort"

	"rapid/internal/buffer"
	"rapid/internal/control"
	"rapid/internal/packet"
	"rapid/internal/routing"
)

// DefaultL is the paper's token budget.
const DefaultL = 12

// Router implements binary Spray and Wait for one node.
type Router struct {
	node *routing.Node
	l    int
}

// New returns a Spray-and-Wait factory with the given token budget
// (l <= 0 selects DefaultL).
func New(l int) routing.RouterFactory {
	if l <= 0 {
		l = DefaultL
	}
	return func(packet.NodeID) routing.Router { return &Router{l: l} }
}

// Name implements routing.Router.
func (r *Router) Name() string { return "spray-and-wait" }

// SessionConfined implements routing.SessionConfined: token state lives
// in the entries of the two session endpoints.
func (r *Router) SessionConfined() {}

// Attach implements routing.Router.
func (r *Router) Attach(n *routing.Node) { r.node = n }

// Generate implements routing.Router: the source copy carries all L
// tokens.
func (r *Router) Generate(p *packet.Packet, now float64) {
	r.node.Store.Insert(&buffer.Entry{P: p, ReceivedAt: now, Own: true, Tokens: r.l}, evictUtility)
}

// Inventory implements routing.Router (nothing to announce — Spray and
// Wait uses no control channel).
func (r *Router) Inventory(now float64) []control.InventoryItem { return nil }

// DirectQueue implements routing.Router: oldest first.
func (r *Router) DirectQueue(peer packet.NodeID, now float64) []*buffer.Entry {
	var out []*buffer.Entry
	for _, e := range r.node.Store.Entries() {
		if e.P.Dst == peer {
			out = append(out, e)
		}
	}
	sortOldest(out)
	return out
}

// PlanReplication implements routing.Router: spray-phase packets only
// (tokens > 1), oldest first.
func (r *Router) PlanReplication(peer *routing.Node, now float64) []*buffer.Entry {
	var out []*buffer.Entry
	for _, e := range r.node.Store.Entries() {
		if e.P.Dst != peer.ID && e.Tokens > 1 {
			out = append(out, e)
		}
	}
	sortOldest(out)
	return out
}

// OnReplicated implements routing.ReplicationObserver: binary split of
// the token allowance.
func (r *Router) OnReplicated(src, copy *buffer.Entry, to packet.NodeID) {
	give := src.Tokens / 2
	src.Tokens -= give
	copy.Tokens = give
}

// Accept implements routing.Router.
func (r *Router) Accept(e *buffer.Entry, from packet.NodeID, now float64) bool {
	return r.node.Store.Insert(e, evictUtility)
}

// evictUtility drops packets pseudo-randomly ("Spray and Wait and
// Random delete packets randomly", §6.3.2) but deterministically: a
// hash of the packet ID.
func evictUtility(e *buffer.Entry) float64 {
	h := uint64(e.P.ID) * 0x9E3779B97F4A7C15
	h ^= h >> 29
	return float64(h%1000) / 1000
}

func sortOldest(es []*buffer.Entry) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].P.Created != es[j].P.Created {
			return es[i].P.Created < es[j].P.Created
		}
		return es[i].P.ID < es[j].P.ID
	})
}

package spraywait

import (
	"testing"

	"rapid/internal/buffer"
	"rapid/internal/packet"
	"rapid/internal/routing"
	"rapid/internal/sim"
	"rapid/internal/trace"
)

func newNet(t *testing.T, l int) *routing.Network {
	t.Helper()
	net := routing.NewNetwork(sim.New(1), []packet.NodeID{0, 1, 2},
		New(l), routing.Config{Mode: routing.ControlNone})
	net.Horizon = 1000
	return net
}

func TestGenerateCarriesTokens(t *testing.T) {
	net := newNet(t, 12)
	n0 := net.Node(0)
	p := &packet.Packet{ID: 1, Src: 0, Dst: 2, Size: 10, Created: 0}
	n0.Router.Generate(p, 0)
	if got := n0.Store.Get(1).Tokens; got != 12 {
		t.Errorf("tokens %d want 12", got)
	}
}

func TestDefaultL(t *testing.T) {
	net := newNet(t, 0) // 0 selects DefaultL
	n0 := net.Node(0)
	n0.Router.Generate(&packet.Packet{ID: 1, Src: 0, Dst: 2, Size: 10}, 0)
	if got := n0.Store.Get(1).Tokens; got != DefaultL {
		t.Errorf("tokens %d want %d", got, DefaultL)
	}
}

func TestBinarySplit(t *testing.T) {
	net := newNet(t, 12)
	n0 := net.Node(0)
	r := n0.Router.(*Router)
	src := &buffer.Entry{P: &packet.Packet{ID: 1, Dst: 2, Size: 10}, Tokens: 12}
	cp := &buffer.Entry{P: src.P}
	r.OnReplicated(src, cp, 1)
	if src.Tokens != 6 || cp.Tokens != 6 {
		t.Errorf("split %d/%d want 6/6", src.Tokens, cp.Tokens)
	}
	r.OnReplicated(src, cp, 1)
	if src.Tokens != 3 || cp.Tokens != 3 {
		t.Errorf("second split %d/%d want 3/3", src.Tokens, cp.Tokens)
	}
	// Odd count: the donor keeps the extra token.
	src.Tokens = 3
	r.OnReplicated(src, cp, 1)
	if src.Tokens != 2 || cp.Tokens != 1 {
		t.Errorf("odd split %d/%d want 2/1", src.Tokens, cp.Tokens)
	}
}

func TestWaitPhaseStopsReplication(t *testing.T) {
	net := newNet(t, 12)
	n0, n1 := net.Node(0), net.Node(1)
	e := &buffer.Entry{P: &packet.Packet{ID: 1, Dst: 2, Size: 10}, Tokens: 1}
	n0.Store.Insert(e, nil)
	if plan := n0.Router.PlanReplication(n1, 0); len(plan) != 0 {
		t.Error("wait-phase packet must not be replicated")
	}
	e.Tokens = 2
	if plan := n0.Router.PlanReplication(n1, 0); len(plan) != 1 {
		t.Error("spray-phase packet must be replicable")
	}
}

func TestTotalCopiesBoundedByL(t *testing.T) {
	// On a fully-connected burst of meetings, the number of distinct
	// nodes ever holding the packet must not exceed L.
	const L = 4
	var meetings []trace.Meeting
	tm := 1.0
	// Source 0 meets everyone repeatedly; relays meet each other too.
	for round := 0; round < 4; round++ {
		for a := 0; a < 8; a++ {
			for b := a + 1; b < 8; b++ {
				meetings = append(meetings, trace.Meeting{
					A: packet.NodeID(a), B: packet.NodeID(b), Time: tm, Bytes: 1 << 16,
				})
				tm += 1
			}
		}
	}
	sched := &trace.Schedule{Duration: tm + 10, Meetings: meetings}
	w := packet.Workload{{ID: 1, Src: 0, Dst: 99, Size: 10, Created: 0}} // dst never met
	c := routing.Run(routing.Scenario{
		Schedule: sched, Workload: w, Factory: New(L),
		Cfg:  routing.Config{Mode: routing.ControlNone},
		Seed: 2,
	})
	if got := c.Replications; got > L-1 {
		t.Errorf("replications %d exceed L-1=%d", got, L-1)
	}
}

func TestEndToEndSprayAndWait(t *testing.T) {
	sched := &trace.Schedule{Duration: 200, Meetings: []trace.Meeting{
		{A: 0, B: 1, Time: 10, Bytes: 1 << 16},
		{A: 1, B: 2, Time: 50, Bytes: 1 << 16},
	}}
	w := packet.Workload{{ID: 1, Src: 0, Dst: 2, Size: 1024, Created: 0}}
	c := routing.Run(routing.Scenario{
		Schedule: sched, Workload: w, Factory: New(12),
		Cfg:  routing.Config{Mode: routing.ControlNone},
		Seed: 1,
	})
	if got := c.Summarize(200).Delivered; got != 1 {
		t.Errorf("delivered %d want 1", got)
	}
}

package prophet

import (
	"testing"

	"rapid/internal/buffer"
	"rapid/internal/packet"
	"rapid/internal/routing"
	"rapid/internal/sim"
	"rapid/internal/trace"
)

func newNet(t *testing.T) *routing.Network {
	t.Helper()
	net := routing.NewNetwork(sim.New(1), []packet.NodeID{0, 1, 2},
		New(DefaultParams()), routing.Config{Mode: routing.ControlNone})
	net.Horizon = 1000
	return net
}

func TestDirectBoost(t *testing.T) {
	net := newNet(t)
	r0 := net.Node(0).Router.(*Router)
	r1 := net.Node(1).Router.(*Router)
	r0.GossipWith(r1, 1)
	if got := r0.Predictability(1, 1); got != 0.75 {
		t.Errorf("P(0,1)=%v want 0.75", got)
	}
	r0.GossipWith(r1, 2)
	// P = 0.75 aged slightly + (1-P)*0.75 ≈ 0.937.
	if got := r0.Predictability(1, 2); got < 0.9 || got > 0.95 {
		t.Errorf("second boost P=%v want ~0.94", got)
	}
}

func TestAgingDecays(t *testing.T) {
	net := newNet(t)
	r0 := net.Node(0).Router.(*Router)
	r1 := net.Node(1).Router.(*Router)
	r0.GossipWith(r1, 0)
	early := r0.Predictability(1, 0)
	late := r0.Predictability(1, 3000) // 100 aging units at γ=0.98
	if late >= early {
		t.Errorf("no decay: %v -> %v", early, late)
	}
	if late > early*0.2 {
		t.Errorf("decay too weak: %v -> %v", early, late)
	}
}

func TestTransitivity(t *testing.T) {
	net := newNet(t)
	r0 := net.Node(0).Router.(*Router)
	r1 := net.Node(1).Router.(*Router)
	r2 := net.Node(2).Router.(*Router)
	// 1 meets 2, then 0 meets 1: 0 should gain P(0,2) via transitivity.
	r1.GossipWith(r2, 1)
	r0.GossipWith(r1, 2)
	p02 := r0.Predictability(2, 2)
	if p02 <= 0 {
		t.Fatal("no transitive predictability")
	}
	// Bounded by P(0,1)*P(1,2)*β.
	bound := r0.Predictability(1, 2) * r1.Predictability(2, 2) * 0.25
	if p02 > bound+1e-9 {
		t.Errorf("transitivity exceeded bound: %v > %v", p02, bound)
	}
}

func TestPlanReplicationOnlyWhenPeerIsBetter(t *testing.T) {
	net := newNet(t)
	n0, n1 := net.Node(0), net.Node(1)
	r0 := n0.Router.(*Router)
	r1 := n1.Router.(*Router)
	e := &buffer.Entry{P: &packet.Packet{ID: 1, Dst: 2, Size: 10}}
	n0.Store.Insert(e, nil)
	// Neither knows dst 2: no replication.
	if plan := n0.Router.PlanReplication(n1, 1); len(plan) != 0 {
		t.Error("replicated with zero predictability gain")
	}
	// Peer has met dst 2: replicate.
	r1.GossipWith(net.Node(2).Router.(*Router), 2)
	if plan := n0.Router.PlanReplication(n1, 3); len(plan) != 1 {
		t.Error("did not replicate to better peer")
	}
	// We are even better than the peer: no replication.
	r0.GossipWith(net.Node(2).Router.(*Router), 4)
	r0.GossipWith(net.Node(2).Router.(*Router), 5)
	if plan := n0.Router.PlanReplication(n1, 6); len(plan) != 0 {
		t.Error("replicated to worse peer")
	}
}

func TestBadParamsFallBack(t *testing.T) {
	f := New(Params{PInit: 7})
	r := f(0).(*Router)
	if r.par.PInit != 0.75 {
		t.Errorf("params fallback: %+v", r.par)
	}
}

func TestEndToEndProphet(t *testing.T) {
	// Warm-up meetings let node 1 build predictability for 2, then the
	// packet flows 0→1→2.
	sched := &trace.Schedule{Duration: 400, Meetings: []trace.Meeting{
		{A: 1, B: 2, Time: 10, Bytes: 1 << 16},
		{A: 1, B: 2, Time: 30, Bytes: 1 << 16},
		{A: 0, B: 1, Time: 60, Bytes: 1 << 16},
		{A: 1, B: 2, Time: 90, Bytes: 1 << 16},
	}}
	w := packet.Workload{{ID: 1, Src: 0, Dst: 2, Size: 1024, Created: 40}}
	c := routing.Run(routing.Scenario{
		Schedule: sched, Workload: w, Factory: New(DefaultParams()),
		Cfg:  routing.Config{Mode: routing.ControlNone},
		Seed: 1,
	})
	s := c.Summarize(400)
	if s.Delivered != 1 {
		t.Errorf("delivered %d want 1", s.Delivered)
	}
	if s.AvgDelay != 50 { // created 40, delivered at 90
		t.Errorf("delay %v want 50", s.AvgDelay)
	}
}

// Package prophet implements PRoPHET [Lindgren et al., SAPIR 2004]:
// probabilistic routing using delivery predictabilities with aging and
// transitivity. The paper's parameters are Pinit = 0.75, β = 0.25,
// γ = 0.98 (§6.1).
package prophet

import (
	"math"
	"sort"

	"rapid/internal/buffer"
	"rapid/internal/control"
	"rapid/internal/packet"
	"rapid/internal/routing"
)

// Params are PRoPHET's tuning constants.
type Params struct {
	PInit float64 // predictability boost on meeting
	Beta  float64 // transitivity damping
	Gamma float64 // aging factor per AgingUnit
	// AgingUnit is the time quantum for γ-aging in seconds. The
	// PRoPHET paper leaves the unit abstract; scale it to the scenario
	// (tens of seconds for day-long traces, ~1 s for the 15-minute
	// synthetic runs).
	AgingUnit float64
}

// DefaultParams returns the paper's §6.1 values with a 30-second aging
// unit.
func DefaultParams() Params {
	return Params{PInit: 0.75, Beta: 0.25, Gamma: 0.98, AgingUnit: 30}
}

// Router implements PRoPHET for one node.
type Router struct {
	node *routing.Node
	par  Params
	p    map[packet.NodeID]float64 // delivery predictability
	aged float64                   // last aging time
}

// New returns a PRoPHET factory.
func New(par Params) routing.RouterFactory {
	if par.PInit <= 0 || par.PInit > 1 {
		par = DefaultParams()
	}
	if par.AgingUnit <= 0 {
		par.AgingUnit = 30
	}
	return func(packet.NodeID) routing.Router {
		return &Router{par: par, p: make(map[packet.NodeID]float64)}
	}
}

// Name implements routing.Router.
func (r *Router) Name() string { return "prophet" }

// SessionConfined implements routing.SessionConfined: delivery
// predictabilities are per-node maps, updated only for the session peer.
func (r *Router) SessionConfined() {}

// Attach implements routing.Router.
func (r *Router) Attach(n *routing.Node) { r.node = n }

// Predictability returns P(self, dst) after aging to `now`.
func (r *Router) Predictability(dst packet.NodeID, now float64) float64 {
	r.age(now)
	return r.p[dst]
}

// age applies γ^(Δt/unit) decay to the whole vector.
func (r *Router) age(now float64) {
	dt := now - r.aged
	if dt <= 0 {
		return
	}
	decay := math.Pow(r.par.Gamma, dt/r.par.AgingUnit)
	for k, v := range r.p {
		r.p[k] = v * decay
	}
	r.aged = now
}

// GossipWith implements routing.Gossiper: on meeting, boost the peer's
// predictability and apply the transitivity rule with the peer's
// vector.
func (r *Router) GossipWith(peer routing.Router, now float64) {
	pr, ok := peer.(*Router)
	if !ok {
		return
	}
	r.age(now)
	pr.age(now)
	// Direct boost: P(a,b) = P + (1-P) * Pinit.
	pab := r.p[pr.node.ID]
	r.p[pr.node.ID] = pab + (1-pab)*r.par.PInit
	// Transitivity: P(a,c) = max(P(a,c), P(a,b)·P(b,c)·β).
	pab = r.p[pr.node.ID]
	for c, pbc := range pr.p {
		if c == r.node.ID {
			continue
		}
		if t := pab * pbc * r.par.Beta; t > r.p[c] {
			r.p[c] = t
		}
	}
}

// Generate implements routing.Router.
func (r *Router) Generate(p *packet.Packet, now float64) {
	r.node.Store.Insert(&buffer.Entry{P: p, ReceivedAt: now, Own: true}, evictFIFO)
}

// Inventory implements routing.Router (PRoPHET exchanges only its
// summary vector, which rides the gossip hook).
func (r *Router) Inventory(now float64) []control.InventoryItem { return nil }

// DirectQueue implements routing.Router: oldest first.
func (r *Router) DirectQueue(peer packet.NodeID, now float64) []*buffer.Entry {
	var out []*buffer.Entry
	for _, e := range r.node.Store.Entries() {
		if e.P.Dst == peer {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return older(out[i], out[j]) })
	return out
}

// PlanReplication implements routing.Router: replicate packets whose
// destination the peer predicts better than we do (the GRTR forwarding
// strategy, replication flavor), highest peer-predictability first.
func (r *Router) PlanReplication(peer *routing.Node, now float64) []*buffer.Entry {
	pr, ok := peer.Router.(*Router)
	if !ok {
		return nil
	}
	type cand struct {
		e   *buffer.Entry
		key float64
	}
	var cands []cand
	for _, e := range r.node.Store.Entries() {
		if e.P.Dst == peer.ID {
			continue
		}
		pp := pr.Predictability(e.P.Dst, now)
		if pp > r.Predictability(e.P.Dst, now) {
			cands = append(cands, cand{e, pp})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].key != cands[j].key {
			return cands[i].key > cands[j].key
		}
		return older(cands[i].e, cands[j].e)
	})
	out := make([]*buffer.Entry, len(cands))
	for i, c := range cands {
		out[i] = c.e
	}
	return out
}

// Accept implements routing.Router.
func (r *Router) Accept(e *buffer.Entry, from packet.NodeID, now float64) bool {
	return r.node.Store.Insert(e, evictFIFO)
}

// evictFIFO drops the oldest-received packet first (PRoPHET's FIFO
// queue management).
func evictFIFO(e *buffer.Entry) float64 { return e.ReceivedAt }

func older(a, b *buffer.Entry) bool {
	if a.P.Created != b.P.Created {
		return a.P.Created < b.P.Created
	}
	return a.P.ID < b.P.ID
}

package routing_test

// The cross-protocol invariant harness: every registered protocol arm
// runs over a grid of synthetic and constellation scenarios under
// runtime instrumentation (routing.Hooks), and shared conformance
// invariants are asserted for each — so a new protocol (CGR today,
// whatever comes next) inherits these checks by being added to
// scenario.AllProtos:
//
//   1. no packet is delivered before it was created;
//   2. no packet is counted delivered more than once (physical
//      re-deliveries of stray replicas are legal DTN behavior, but the
//      metrics must register the first delivery only);
//   3. the bytes spent on any transfer opportunity — control plus
//      data, both directions — never exceed its capacity (a point
//      meeting's Bytes, a window's Rate×Duration) — including the
//      bytes burned by transfers the disruption layer loses;
//   4. buffer occupancy never exceeds the node's configured storage
//      (per BufferBytesFor in heterogeneous scenarios);
//   5. under disruption: a transfer the loss model killed never
//      results in a delivery, and no opportunity completes — nor any
//      packet arrives — through a node strictly inside one of its
//      churn down intervals.
//
// The grid sweeps each disruption model (loss + contact failure,
// churn, window jitter, loss over streamed windows) as its own rows,
// so every protocol arm is certified both pristine and disrupted.

import (
	"fmt"
	"math"
	"testing"

	"rapid/internal/disrupt"
	"rapid/internal/packet"
	"rapid/internal/routing"
	"rapid/internal/scenario"
)

// invariantGrid is the scenario matrix: statistical mobility with
// uniform and heterogeneous storage, and the deterministic
// constellation plans in both point and windowed form — small enough
// that the full protocol sweep stays inside the unit-test budget.
func invariantGrid() []scenario.Scenario {
	synth := scenario.ScheduleSpec{
		Source: scenario.SourceExponential, Nodes: 12, Duration: 300,
		MeanMeeting: 60, TransferBytes: 20 << 10, Alpha: 1, RankSeed: 42,
	}
	power := synth
	power.Source = scenario.SourcePowerLaw
	constel := scenario.ScheduleSpec{
		Source: scenario.SourceConstellation,
		Planes: 2, SatsPerPlane: 3, Ground: 2,
		OrbitPeriod: 120, Duration: 240,
		ISLBytes: 16 << 10, GroundBytes: 32 << 10,
	}
	passes := constel
	passes.PassWindow = 12
	passes.GroundRateBps = 2 << 10
	passes.ISLWindow = 6
	passes.ISLRateBps = 1 << 10

	load := func(nodes int) scenario.WorkloadSpec {
		return scenario.WorkloadSpec{
			Shape: scenario.ShapePoisson, Load: 8, Window: 50,
			PacketBytes: 1 << 10, Deadline: 60,
			NodeCount: nodes, PerPair: true,
		}
	}
	// Tight buffers keep eviction pressure on (invariant 4 must hold
	// under stress, not just abundance).
	tight := scenario.Overrides{BufferBytes: 8 << 10, BufferBytesSet: true}
	hetero := scenario.Overrides{Hetero: scenario.HeteroBuffers{
		Enabled: true, SmallBytes: 4 << 10, LargeBytes: 16 << 10, SmallEvery: 2,
	}}

	return []scenario.Scenario{
		{Family: "inv-exponential", Tag: "inv", Schedule: synth, Workload: load(12), Config: tight},
		{Family: "inv-hetero", Tag: "inv", Schedule: power, Workload: load(12), Config: hetero},
		{Family: "inv-constellation", Tag: "inv", Schedule: constel, Workload: load(2), Config: tight},
		{Family: "inv-passes", Tag: "inv", Schedule: passes, Workload: load(2), Config: tight},
		// Each disruption model gets its own rows: the invariants must
		// survive lost transfers, vanished contacts, churned-down nodes
		// and jittered plans, for every arm.
		{Family: "inv-lossy", Tag: "inv", Schedule: synth, Workload: load(12), Config: tight,
			Disruption: disrupt.Spec{Enabled: true, PLoss: 0.3, PContactFail: 0.2}},
		{Family: "inv-churn", Tag: "inv", Schedule: power, Workload: load(12), Config: hetero,
			Disruption: disrupt.Spec{Enabled: true, ChurnDownMean: 40, ChurnUpMean: 60}},
		{Family: "inv-jitter", Tag: "inv", Schedule: constel, Workload: load(2), Config: tight,
			Disruption: disrupt.Spec{Enabled: true, JitterSec: 15}},
		{Family: "inv-lossy-passes", Tag: "inv", Schedule: passes, Workload: load(2), Config: tight,
			Disruption: disrupt.Spec{Enabled: true, PLoss: 0.25}},
		{Family: "inv-churn-passes", Tag: "inv", Schedule: passes, Workload: load(2), Config: tight,
			Disruption: disrupt.Spec{Enabled: true, ChurnDownMean: 30, ChurnUpMean: 60}},
	}
}

// TestProtocolInvariants sweeps every registered protocol arm over the
// grid and asserts the shared invariants via runtime hooks.
func TestProtocolInvariants(t *testing.T) {
	for _, base := range invariantGrid() {
		for _, proto := range scenario.AllProtos() {
			s := base
			s.Protocol = proto
			s.Metric = scenario.NormalizeMetric(proto, s.Metric)
			t.Run(fmt.Sprintf("%s/%s", s.Family, proto), func(t *testing.T) {
				checkInvariants(t, s)
			})
		}
	}
}

// allowZeroDelivery: plan-ahead CGR under contact jitter legitimately
// delivers nothing — every live contact misses its planned instant, so
// the router withholds custody rather than hedge. The policy arms
// (k-path, bounded multi-copy, admission) plan from the same contact
// graph and inherit the exemption. All other (family, protocol) points
// must deliver traffic.
func allowZeroDelivery(s scenario.Scenario) bool {
	if s.Disruption.JitterSec <= 0 {
		return false
	}
	switch s.Protocol {
	case scenario.ProtoCGR, scenario.ProtoCGRK, scenario.ProtoCGRMulti, scenario.ProtoCGRAdmit:
		return true
	}
	return false
}

func checkInvariants(t *testing.T, s scenario.Scenario) {
	t.Helper()
	rs := s.Materialize()
	if len(rs.Workload) == 0 {
		t.Fatal("scenario generated no traffic — the grid point is vacuous")
	}
	created := make(map[packet.ID]float64, len(rs.Workload))
	for _, p := range rs.Workload {
		created[p.ID] = p.Created
	}
	capFor := rs.Cfg.CapacityFor

	// Re-realize the run's disruption model (pure functions of spec and
	// seed) so the harness can cross-check churn independently.
	var model *disrupt.Model
	if rs.Disrupt.Enabled {
		model = disrupt.New(rs.Disrupt, rs.DisruptSeed)
	}
	horizon := rs.Schedule.Duration
	strictDown := func(id packet.NodeID, at float64) bool {
		return model != nil && model.Down(id, at, horizon)
	}

	// A transfer the loss model killed is identified by (packet,
	// receiver, instant): a delivery matching all three would mean the
	// runtime committed a transfer it had already declared lost.
	type lostKey struct {
		id packet.ID
		to packet.NodeID
		at float64
	}
	lost := map[lostKey]bool{}
	lostCount := 0

	firstDelivery := make(map[packet.ID]float64)
	rs.Hooks = &routing.Hooks{
		OnDelivered: func(id packet.ID, dst packet.NodeID, now float64) {
			c, ok := created[id]
			if !ok {
				t.Errorf("delivered unknown packet %d — a router invented traffic", id)
				return
			}
			if now < c {
				t.Errorf("packet %d delivered at %v before creation at %v", id, now, c)
			}
			if lost[lostKey{id, dst, now}] {
				t.Errorf("packet %d delivered to %d at %v by a transfer the loss model killed", id, dst, now)
			}
			if strictDown(dst, now) {
				t.Errorf("packet %d delivered to node %d at %v while that node was churned down", id, dst, now)
			}
			if _, again := firstDelivery[id]; !again {
				firstDelivery[id] = now
			}
		},
		OnLost: func(id packet.ID, from, to packet.NodeID, now float64) {
			if _, ok := created[id]; !ok {
				t.Errorf("lost unknown packet %d", id)
			}
			lost[lostKey{id, to, now}] = true
			lostCount++
		},
		OnOpportunityDone: func(a, b packet.NodeID, capacity, spent int64, windowed bool, now float64) {
			kind := "meeting"
			if windowed {
				kind = "window"
			}
			if spent < 0 {
				t.Errorf("%s %d↔%d spent negative bytes %d", kind, a, b, spent)
			}
			if spent > capacity {
				t.Errorf("%s %d↔%d spent %d bytes over its %d-byte capacity", kind, a, b, spent, capacity)
			}
			// No opportunity completes through a node strictly inside a
			// churn down interval: point sessions are skipped outright,
			// and a live window touching a dropping node is cut off at
			// the interval boundary.
			if strictDown(a, now) || strictDown(b, now) {
				t.Errorf("%s %d↔%d completed at %v through a churned-down endpoint", kind, a, b, now)
			}
		},
		AfterEvent: func(net *routing.Network) {
			for id, n := range net.Nodes {
				if capacity := capFor(id); capacity > 0 && n.Store.Used() > capacity {
					t.Fatalf("node %d buffers %d bytes over its %d-byte storage", id, n.Store.Used(), capacity)
				}
			}
		},
	}

	col := routing.Run(rs)
	sum := col.Summarize(rs.Schedule.Duration)
	if sum.Delivered == 0 && !allowZeroDelivery(s) {
		t.Error("no packet delivered — the grid point exercises nothing")
	}
	if s.Disruption.PLoss > 0 && sum.LostTransfers == 0 {
		t.Error("a lossy grid point lost no transfer — the disruption model is not engaged")
	}
	if sum.LostTransfers != lostCount {
		t.Errorf("summary counts %d lost transfers, runtime observed %d", sum.LostTransfers, lostCount)
	}

	// Invariant 2: the metrics register each packet's first delivery,
	// exactly once, at the hook-observed instant.
	if sum.Delivered != len(firstDelivery) {
		t.Errorf("summary counts %d delivered, runtime observed %d distinct deliveries",
			sum.Delivered, len(firstDelivery))
	}
	for _, r := range col.Records() {
		if !r.Delivered {
			if _, seen := firstDelivery[r.P.ID]; seen {
				t.Errorf("packet %d physically delivered but not recorded", r.P.ID)
			}
			continue
		}
		first, seen := firstDelivery[r.P.ID]
		if !seen {
			t.Errorf("packet %d recorded delivered but never observed by the runtime hook", r.P.ID)
			continue
		}
		if math.Abs(r.DeliveredAt-first) > 1e-9 {
			t.Errorf("packet %d recorded at %v but first delivered at %v — a duplicate delivery overwrote the record",
				r.P.ID, r.DeliveredAt, first)
		}
		if r.DeliveredAt < r.P.Created {
			t.Errorf("packet %d recorded delivered at %v before creation at %v", r.P.ID, r.DeliveredAt, r.P.Created)
		}
	}

	// Aggregate conservation: total moved bytes cannot exceed total
	// offered opportunity.
	if sum.DataBytes+sum.MetaBytes > sum.OpportunityBytes {
		t.Errorf("moved %d data + %d meta bytes over the %d bytes of total opportunity",
			sum.DataBytes, sum.MetaBytes, sum.OpportunityBytes)
	}
}

package epidemic_test

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"rapid/internal/mobility"
	"rapid/internal/packet"
	"rapid/internal/routing"
	"rapid/internal/routing/epidemic"
	"rapid/internal/sim"
	"rapid/internal/trace"
)

// Compile-time check: epidemic keeps all state in the node buffer, so
// it must satisfy the parallel engine's SessionConfined contract.
var _ routing.SessionConfined = (*epidemic.Router)(nil)

// opportunitySpent runs the scenario recording bytes spent per
// opportunity, keyed by completion time, plus the final network state.
func opportunitySpent(sc routing.Scenario) (map[float64]int64, *routing.Network) {
	spent := map[float64]int64{}
	var final *routing.Network
	sc.Hooks = &routing.Hooks{
		OnOpportunityDone: func(a, b packet.NodeID, capacity, sp int64, windowed bool, now float64) {
			spent[now] += sp
		},
		AfterEvent: func(net *routing.Network) { final = net },
	}
	routing.Run(sc)
	return spent, final
}

// TestSetDifferenceFlooding checks the defining epidemic behavior: a
// meeting transfers exactly the set difference of the two buffers
// (minus acked deliveries), so nodes whose buffers already agree
// exchange nothing.
func TestSetDifferenceFlooding(t *testing.T) {
	const size = 100
	sc := routing.Scenario{
		Schedule: &trace.Schedule{
			Duration: 100,
			Meetings: []trace.Meeting{
				{A: 0, B: 1, Time: 10, Bytes: 1 << 20},
				{A: 1, B: 2, Time: 20, Bytes: 1 << 20},
				{A: 0, B: 2, Time: 30, Bytes: 1 << 20},
			},
		},
		Workload: packet.Workload{
			// A, B, C flood toward an unreachable destination; D is a
			// direct delivery 0→1 whose ack must keep it out of later
			// exchanges.
			{ID: 1, Src: 0, Dst: 3, Size: size, Created: 1},
			{ID: 2, Src: 0, Dst: 3, Size: size, Created: 2},
			{ID: 3, Src: 1, Dst: 3, Size: size, Created: 3},
			{ID: 4, Src: 0, Dst: 1, Size: size, Created: 4},
		},
		Factory: epidemic.New(),
		Cfg:     routing.Config{Mode: routing.ControlNone},
		Seed:    1,
	}
	spent, net := opportunitySpent(sc)

	// t=10: D delivered direct (100) plus the full exchange A,B→1 and
	// C→0 (300).
	if spent[10] != 4*size {
		t.Errorf("meeting(0,1)@10 spent %d, want %d", spent[10], 4*size)
	}
	// t=20: node 1 holds {A,B,C}; node 2 holds nothing.
	if spent[20] != 3*size {
		t.Errorf("meeting(1,2)@20 spent %d, want %d", spent[20], 3*size)
	}
	// t=30: both buffers already hold {A,B,C} and D is acked at node 0 —
	// the set difference is empty, so nothing moves.
	if spent[30] != 0 {
		t.Errorf("meeting(0,2)@30 spent %d, want 0 (buffers agree)", spent[30])
	}

	// Every flooding node converged on the union {A,B,C}, without D.
	for _, id := range []packet.NodeID{0, 1, 2} {
		store := net.Nodes[id].Store
		for pid := packet.ID(1); pid <= 3; pid++ {
			if !store.Has(pid) {
				t.Errorf("node %d missing flooded packet %d", id, pid)
			}
		}
		if store.Has(4) {
			t.Errorf("node %d still buffers delivered packet 4", id)
		}
	}
}

// TestFIFODropOldest checks the classic epidemic buffer policy: when a
// full buffer must accept a new replica, the oldest-received copy is
// dropped first.
func TestFIFODropOldest(t *testing.T) {
	const size = 100
	sc := routing.Scenario{
		Schedule: &trace.Schedule{
			Duration: 100,
			// 100-byte opportunities deliver exactly one replica each, so
			// node 1 receives P1, then P2, then P3 in distinct meetings.
			Meetings: []trace.Meeting{
				{A: 0, B: 1, Time: 10, Bytes: size},
				{A: 0, B: 1, Time: 20, Bytes: size},
				{A: 3, B: 1, Time: 30, Bytes: size},
			},
		},
		Workload: packet.Workload{
			{ID: 1, Src: 0, Dst: 2, Size: size, Created: 1},
			{ID: 2, Src: 0, Dst: 2, Size: size, Created: 2},
			{ID: 3, Src: 3, Dst: 2, Size: size, Created: 3},
		},
		Factory: epidemic.New(),
		// Node 1 holds two replicas at most; accepting the third forces a
		// drop.
		Cfg:  routing.Config{Mode: routing.ControlNone, BufferBytes: 2 * size},
		Seed: 1,
	}
	spent, net := opportunitySpent(sc)
	for _, at := range []float64{10, 20, 30} {
		if spent[at] != size {
			t.Fatalf("meeting@%v spent %d, want %d (one replica per contact)", at, spent[at], size)
		}
	}
	store := net.Nodes[1].Store
	if store.Has(1) {
		t.Errorf("oldest-received replica 1 survived the forced drop")
	}
	for pid := packet.ID(2); pid <= 3; pid++ {
		if !store.Has(pid) {
			t.Errorf("replica %d missing after drop-oldest eviction", pid)
		}
	}
}

// TestOldestFirstPlanningAndInventory unit-tests the router surface
// directly: direct queues and replication plans order by creation time
// (ID for ties), and inventory advertises unknown (infinite) delay.
func TestOldestFirstPlanningAndInventory(t *testing.T) {
	net := routing.NewNetwork(sim.New(1), []packet.NodeID{0, 1, 2}, epidemic.New(), routing.Config{Mode: routing.ControlNone})
	r := net.Nodes[0].Router
	// Generate out of creation order, with a creation-time tie between
	// IDs 9 and 4.
	for _, p := range []*packet.Packet{
		{ID: 9, Src: 0, Dst: 1, Size: 10, Created: 5},
		{ID: 3, Src: 0, Dst: 1, Size: 10, Created: 1},
		{ID: 4, Src: 0, Dst: 1, Size: 10, Created: 5},
		{ID: 7, Src: 0, Dst: 2, Size: 10, Created: 0},
	} {
		r.Generate(p, p.Created)
	}

	var gotQueue []packet.ID
	for _, e := range r.DirectQueue(1, 6) {
		gotQueue = append(gotQueue, e.P.ID)
	}
	if want := []packet.ID{3, 4, 9}; !reflect.DeepEqual(gotQueue, want) {
		t.Errorf("DirectQueue order %v, want %v", gotQueue, want)
	}

	var gotPlan []packet.ID
	for _, e := range r.PlanReplication(net.Nodes[1], 6) {
		gotPlan = append(gotPlan, e.P.ID)
	}
	// Everything not destined to the peer, oldest first.
	if want := []packet.ID{7}; !reflect.DeepEqual(gotPlan, want) {
		t.Errorf("PlanReplication %v, want %v", gotPlan, want)
	}

	inv := r.Inventory(6)
	if len(inv) != 4 {
		t.Fatalf("inventory has %d items, want 4", len(inv))
	}
	for _, item := range inv {
		if !math.IsInf(item.Delay, 1) {
			t.Errorf("inventory delay for %d = %v, want +Inf", item.ID, item.Delay)
		}
	}
}

// TestSessionConfinedParallelEquivalence backs the marker method with
// behavior: a dense epidemic run must summarize identically on the
// serial and parallel engines.
func TestSessionConfinedParallelEquivalence(t *testing.T) {
	build := func(workers int) routing.Scenario {
		model := mobility.Exponential{Config: mobility.Config{
			Nodes: 12, Duration: 400, MeanMeeting: 25, TransferBytes: 4 << 10,
		}}
		sched := model.Schedule(rand.New(rand.NewSource(11)))
		w := packet.Generate(packet.GenConfig{
			Nodes:                 sched.Nodes(),
			PacketsPerHourPerDest: 8,
			LoadWindow:            100,
			Duration:              400,
			PacketSize:            512,
			FirstID:               1,
		}, rand.New(rand.NewSource(12)))
		return routing.Scenario{
			Schedule: sched,
			Workload: w,
			Factory:  epidemic.New(),
			Cfg: routing.Config{
				BufferBytes: 32 << 10, Mode: routing.ControlInBand,
				MetaFraction: -1, Workers: workers,
			},
			Seed: 5,
		}
	}
	serial := routing.Run(build(1)).Summarize(400)
	for _, workers := range []int{2, 4} {
		par := routing.Run(build(workers)).Summarize(400)
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("workers=%d summary diverges from serial:\n got %+v\nwant %+v", workers, par, serial)
		}
	}
}

// Package epidemic implements classic epidemic routing [Vahdat &
// Becker, Table 1's P1 row]: replicate every packet at every transfer
// opportunity, oldest first, dropping the oldest-received copies when
// storage fills. It is the simplest Router implementation and the
// reference point for "naive flooding wastes resources" (§2).
package epidemic

import (
	"math"
	"sort"

	"rapid/internal/buffer"
	"rapid/internal/control"
	"rapid/internal/packet"
	"rapid/internal/routing"
)

// Router floods packets epidemically.
type Router struct {
	node *routing.Node
}

// New returns an epidemic router factory.
func New() routing.RouterFactory {
	return func(packet.NodeID) routing.Router { return &Router{} }
}

// Name implements routing.Router.
func (r *Router) Name() string { return "epidemic" }

// SessionConfined implements routing.SessionConfined: the router holds
// no state beyond its node's buffer.
func (r *Router) SessionConfined() {}

// Attach implements routing.Router.
func (r *Router) Attach(n *routing.Node) { r.node = n }

// Generate implements routing.Router.
func (r *Router) Generate(p *packet.Packet, now float64) {
	r.node.Store.Insert(&buffer.Entry{P: p, ReceivedAt: now, Own: true}, r.evictionUtility)
}

// Inventory implements routing.Router. Epidemic has no delay model, so
// estimates are unknown (infinite).
func (r *Router) Inventory(now float64) []control.InventoryItem {
	entries := r.node.Store.Entries()
	out := make([]control.InventoryItem, 0, len(entries))
	for _, e := range entries {
		out = append(out, control.InventoryItem{
			ID: e.P.ID, Dst: e.P.Dst, Size: e.P.Size,
			Created: e.P.Created, Deadline: e.P.Deadline,
			Delay: math.Inf(1), Hops: e.Hops,
		})
	}
	return out
}

// DirectQueue implements routing.Router: oldest packets first.
func (r *Router) DirectQueue(peer packet.NodeID, now float64) []*buffer.Entry {
	var out []*buffer.Entry
	for _, e := range r.node.Store.Entries() {
		if e.P.Dst == peer {
			out = append(out, e)
		}
	}
	sortOldestFirst(out)
	return out
}

// PlanReplication implements routing.Router: everything, oldest first.
func (r *Router) PlanReplication(peer *routing.Node, now float64) []*buffer.Entry {
	entries := r.node.Store.Entries()
	out := make([]*buffer.Entry, 0, len(entries))
	for _, e := range entries {
		if e.P.Dst != peer.ID {
			out = append(out, e)
		}
	}
	sortOldestFirst(out)
	return out
}

// Accept implements routing.Router: store, evicting oldest-received
// first when full.
func (r *Router) Accept(e *buffer.Entry, from packet.NodeID, now float64) bool {
	return r.node.Store.Insert(e, r.evictionUtility)
}

// evictionUtility drops the oldest-received copy first (drop-head
// FIFO, the classic epidemic buffer policy).
func (r *Router) evictionUtility(e *buffer.Entry) float64 { return e.ReceivedAt }

// sortOldestFirst orders by creation time ascending, ID for ties.
func sortOldestFirst(es []*buffer.Entry) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].P.Created != es[j].P.Created {
			return es[i].P.Created < es[j].P.Created
		}
		return es[i].P.ID < es[j].P.ID
	})
}

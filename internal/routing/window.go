package routing

import (
	"rapid/internal/buffer"
	"rapid/internal/packet"
	"rapid/internal/sim"
	"rapid/internal/trace"
)

// This file implements duration-aware contacts: a trace.Contact with
// temporal extent opens at its start event, runs the control phase
// against a byte budget of RateBps·Duration, and then *streams* data
// packets across the window — each transfer is a timed event whose
// completion instant depends on the link rate, and a packet that cannot
// finish before the window closes is cut off. Nodes serving several
// overlapping windows share their radio fairly: each node divides its
// rate equally among its live windows, and a window runs at the rate
// its more-contended endpoint allows. Point meetings (and zero-duration
// contacts, which degrade to them) keep the instantaneous Session path
// untouched.

// windowState tracks the live windowed contacts of one run and each
// node's radio load (how many windows it is currently serving). It is
// allocated lazily so point-meeting runs carry no window machinery.
type windowState struct {
	live []*winContact // insertion order; deterministic iteration
	load map[packet.NodeID]int
}

// windows returns the network's window registry, creating it on first
// windowed contact.
func (n *Network) windows() *windowState {
	if n.win == nil {
		n.win = &windowState{load: make(map[packet.NodeID]int)}
	}
	return n.win
}

// Streaming phases of one window, in Protocol rapid order: direct
// deliveries in both directions (Step 2), then the two replication
// plans interleaved round-robin (Step 3), then drained.
const (
	phaseDirectXY = iota
	phaseDirectYX
	phaseReplicate
	phaseDrained
)

// winContact is one live windowed contact.
type winContact struct {
	s *Session
	c trace.Contact

	// Queue and plan snapshots taken at window start. The point session
	// consumes the routers' scratch slices immediately; a window
	// outlives them, and overlapping windows at one node would clobber
	// each other's scratch, so the snapshots are copied.
	dirX, dirY   []*buffer.Entry
	planX, planY []*buffer.Entry
	// estX/estY pin each direction's planning-time replica-delay
	// snapshot (nil when the router estimates none): a router's
	// single-slot peer cache may be re-pointed at another peer by an
	// interleaved contact mid-window.
	estX, estY ReplicaDelayFunc

	phase              int
	di                 int // cursor in the current direct queue
	ix, iy             int // replication plan cursors
	turnX              bool
	stalledX, stalledY bool

	cur    *transfer // in-flight packet, nil when idle or drained
	closed bool
}

// transfer is one packet streaming across a window.
type transfer struct {
	from, to  *Node
	e         *buffer.Entry
	replicate bool
	remaining float64 // bytes still to stream
	rate      float64 // current effective rate, bytes/s
	since     float64 // time progress was last accrued
	done      sim.Handle
}

// accrue folds elapsed streaming time into the transfer's progress.
func (t *transfer) accrue(now float64) {
	t.remaining -= t.rate * (now - t.since)
	if t.remaining < 0 {
		t.remaining = 0
	}
	t.since = now
}

// openWindow begins a windowed contact at its start event. The control
// phase runs once at window start — metadata is exchanged "at the start
// of a transfer opportunity" (§4.2) — charged against the full-window
// byte budget; queue and plan snapshots are taken then too, so packets
// arriving mid-window wait for the next contact, exactly as they miss
// an instantaneous meeting.
func openWindow(net *Network, c trace.Contact) *winContact {
	x, y := net.Node(c.A), net.Node(c.B)
	if x.Down || y.Down {
		// A window opening against a churned-down radio never
		// establishes: the whole contact is lost (it does not defer to
		// the node's return — the pass geometry has moved on by then).
		return nil
	}
	capacity := c.Capacity()
	s := &Session{net: net, x: x, y: y, budget: capacity, capacity: capacity, now: net.Now()}
	// A window outlives its opening event and is always driven serially,
	// so its accounting goes straight to the collector.
	s.stats = &net.Collector.Delta
	net.Collector.Meetings++
	net.Collector.OpportunityBytes += capacity
	x.Ctl.ObserveTransfer(capacity)
	y.Ctl.ObserveTransfer(capacity)

	s.exchangeMetadata()
	s.purgeAcked(x)
	s.purgeAcked(y)
	s.gossip()

	w := &winContact{s: s, c: c, turnX: true}
	w.dirX = copyEntries(x.Router.DirectQueue(y.ID, s.now))
	w.dirY = copyEntries(y.Router.DirectQueue(x.ID, s.now))
	w.planX = copyEntries(x.Router.PlanReplication(y, s.now))
	w.estX = replicaDelayFn(net, x.Router, y)
	w.planY = copyEntries(y.Router.PlanReplication(x, s.now))
	w.estY = replicaDelayFn(net, y.Router, x)

	ws := net.windows()
	ws.live = append(ws.live, w)
	ws.load[c.A]++
	ws.load[c.B]++
	// The new window dilutes its endpoints' radios: slow down any
	// in-flight transfer sharing a node with this contact.
	ws.retime(net, s.now, c.A, c.B)
	w.startNext(net, s.now)
	return w
}

// closeWindow ends a windowed contact at its end event. An in-flight
// transfer is cut off: the bytes already radiated are spent against the
// budget (the radio sent them) but the receiver never obtains a usable
// packet, so nothing is delivered or replicated.
func closeWindow(net *Network, w *winContact) {
	if w.closed {
		return
	}
	w.closed = true
	now := net.Now()
	ws := net.windows()
	if t := w.cur; t != nil {
		t.accrue(now)
		t.done.Cancel()
		if sent := int64(float64(t.e.P.Size) - t.remaining); sent > 0 {
			if sent > w.s.budget {
				sent = w.s.budget
			}
			w.s.budget -= sent
		}
		w.cur = nil
	}
	for i, lc := range ws.live {
		if lc == w {
			ws.live = append(ws.live[:i], ws.live[i+1:]...)
			break
		}
	}
	ws.load[w.c.A]--
	ws.load[w.c.B]--
	// The endpoints' radios are free again: speed up survivors.
	ws.retime(net, now, w.c.A, w.c.B)
	if h := net.hooks; h != nil && h.OnOpportunityDone != nil {
		capacity := w.c.Capacity()
		h.OnOpportunityDone(w.c.A, w.c.B, capacity, capacity-w.s.budget, true, now)
	}
}

// effRate is the window's current effective rate under fair radio
// sharing: each node divides its radio equally among its live windows,
// and a window runs at the rate its more-contended endpoint allows.
func (w *winContact) effRate(ws *windowState) float64 {
	den := max(ws.load[w.c.A], ws.load[w.c.B], 1)
	return w.c.RateBps / float64(den)
}

// retime re-shares the radios of the given nodes: every in-flight
// transfer on a live window touching one of them accrues progress at
// its old rate, then is rescheduled at the new effective rate.
func (ws *windowState) retime(net *Network, now float64, a, b packet.NodeID) {
	for _, lc := range ws.live {
		if lc.cur == nil || (lc.c.A != a && lc.c.B != a && lc.c.A != b && lc.c.B != b) {
			continue
		}
		lc.cur.accrue(now)
		lc.cur.done.Cancel()
		lc.schedule(net, now)
	}
}

// schedule (re)computes the in-flight transfer's effective rate and
// books its completion event.
func (w *winContact) schedule(net *Network, now float64) {
	t := w.cur
	t.rate = w.effRate(net.win)
	t.since = now
	t.done = net.Engine.ScheduleFunc(now+t.remaining/t.rate, func(*sim.Engine) {
		w.complete(net)
	})
}

// begin starts streaming one packet.
func (w *winContact) begin(net *Network, now float64, from, to *Node, e *buffer.Entry, replicate bool) {
	w.cur = &transfer{from: from, to: to, e: e, replicate: replicate, remaining: float64(e.P.Size)}
	w.schedule(net, now)
}

// complete finalizes the in-flight transfer at its completion event and
// moves on to the next candidate. The byte budget is charged whether or
// not the receiver keeps the copy (the radio already sent the bytes),
// mirroring the point session.
func (w *winContact) complete(net *Network) {
	if w.closed || w.cur == nil {
		return
	}
	t := w.cur
	w.cur = nil
	now := net.Now()
	w.s.budget -= t.e.P.Size
	if net.transferLost(t.e.P.ID, t.from.ID, t.to.ID, now) {
		// Lost in flight: the window radiated the full packet but the
		// receiver got garbage — budget spent, nothing committed.
		w.startNext(net, now)
		return
	}
	if t.replicate {
		w.commitReplica(net, t, now)
	} else {
		w.commitDirect(net, t, now)
	}
	w.startNext(net, now)
}

// commitDirect finalizes a streamed direct delivery. The packet may
// have been delivered or evicted through a concurrent window while in
// flight; such discarded transfers — like cut-offs and rejected
// replicas — spend budget but do not count as data.
func (w *winContact) commitDirect(net *Network, t *transfer, now float64) {
	id := t.e.P.ID
	if !t.from.Store.Has(id) {
		return // evicted mid-flight
	}
	if net.Collector.IsDelivered(id) && t.from.Ctl.IsAcked(id) {
		t.from.Store.Remove(id) // delivered through a concurrent window
		return
	}
	w.s.deliverDirect(t.from, t.to, t.e, now)
}

// commitReplica finalizes a streamed replication through the point
// session's shared bookkeeping, re-checking the in-flight-mutable
// eligibility state (budget was reserved at selection) and evaluating
// the sender's hypothesized delay against this direction's pinned
// planning-time snapshot.
func (w *winContact) commitReplica(net *Network, t *transfer, now float64) {
	if !replicableState(t.e, t.from, t.to) {
		return // overtaken mid-flight; the radiated bytes are lost
	}
	est := w.estX
	if t.from == w.s.y {
		est = w.estY
	}
	w.s.acceptReplica(t.from, t.to, t.e, now, est)
}

// startNext advances the window's streaming cursor to the next eligible
// packet and begins transmitting it. Selection order mirrors the point
// session: direct deliveries X→Y then Y→X, then the replication plans
// interleaved round-robin until both stall or the budget runs dry.
func (w *winContact) startNext(net *Network, now float64) {
	for {
		switch w.phase {
		case phaseDirectXY, phaseDirectYX:
			from, to, q := w.s.x, w.s.y, w.dirX
			if w.phase == phaseDirectYX {
				from, to, q = w.s.y, w.s.x, w.dirY
			}
			if e, ok := w.nextDirect(net, from, q); ok {
				w.begin(net, now, from, to, e, false)
				return
			}
			w.phase++
			w.di = 0
		case phaseReplicate:
			if e, from, to, ok := w.nextReplica(); ok {
				w.begin(net, now, from, to, e, true)
				return
			}
			w.phase = phaseDrained
		default:
			return
		}
	}
}

// nextDirect scans the direct queue snapshot for the next deliverable
// packet (Session.directDeliver's filters, spread over time).
func (w *winContact) nextDirect(net *Network, from *Node, q []*buffer.Entry) (*buffer.Entry, bool) {
	for ; w.di < len(q); w.di++ {
		e := q[w.di]
		if !from.Store.Has(e.P.ID) {
			continue // delivered or evicted since the window opened
		}
		send, purge := w.s.directEligible(e, from)
		if purge {
			from.Store.Remove(e.P.ID)
			continue
		}
		if !send {
			continue
		}
		w.di++
		return e, true
	}
	return nil, false
}

// nextReplica alternates between the two directions' plans, sticky-
// stalling a direction once its plan is exhausted (the point session's
// replicate loop, spread over time).
func (w *winContact) nextReplica() (*buffer.Entry, *Node, *Node, bool) {
	for !w.stalledX || !w.stalledY {
		if w.turnX {
			w.turnX = false
			if e, ok := w.nextFromPlan(w.s.x, w.s.y, w.planX, &w.ix); ok {
				return e, w.s.x, w.s.y, true
			}
			w.stalledX = true
		} else {
			w.turnX = true
			if e, ok := w.nextFromPlan(w.s.y, w.s.x, w.planY, &w.iy); ok {
				return e, w.s.y, w.s.x, true
			}
			w.stalledY = true
		}
	}
	return nil, nil, nil, false
}

// nextFromPlan applies Session.replicable to the plan snapshot,
// advancing the shared cursor.
func (w *winContact) nextFromPlan(from, to *Node, plan []*buffer.Entry, i *int) (*buffer.Entry, bool) {
	for ; *i < len(plan); *i++ {
		e := plan[*i]
		if !w.s.replicable(e, from, to) {
			continue
		}
		*i++
		return e, true
	}
	return nil, false
}

// churnClose cuts off every live window touching a node whose radio
// just went down: in-flight transfers are truncated exactly as at a
// natural window close (closeWindow charges the radiated bytes and
// re-shares the surviving radios).
func (n *Network) churnClose(id packet.NodeID) {
	if n.win == nil {
		return
	}
	// Snapshot first: closeWindow splices the live list.
	var victims []*winContact
	for _, w := range n.win.live {
		if w.c.A == id || w.c.B == id {
			victims = append(victims, w)
		}
	}
	for _, w := range victims {
		closeWindow(n, w)
	}
}

// replicaDelayFn resolves the direction's replica-delay evaluator at
// planning time: a pinned snapshot when the router can capture one, a
// live fallback for plain estimators, nil when the protocol estimates
// none.
func replicaDelayFn(net *Network, r Router, holder *Node) ReplicaDelayFunc {
	if snap, ok := r.(ReplicaDelaySnapshotter); ok {
		return snap.SnapshotReplicaDelays(holder)
	}
	if est, ok := r.(ReplicaDelayEstimator); ok {
		return func(e *buffer.Entry) float64 {
			return est.EstimateReplicaDelay(e, holder, net.Now())
		}
	}
	return nil
}

// copyEntries snapshots a router-owned scratch slice.
func copyEntries(src []*buffer.Entry) []*buffer.Entry {
	if len(src) == 0 {
		return nil
	}
	out := make([]*buffer.Entry, len(src))
	copy(out, src)
	return out
}

package routing_test

// Executable versions of the paper's hardness constructions (§3.2,
// Appendix A): an offline adversary that generates the meeting schedule
// *after* observing an online algorithm's replication choices can make
// any deterministic online router perform arbitrarily badly — the
// formal justification for RAPID's heuristic approach.

import (
	"testing"

	"rapid/internal/packet"
	"rapid/internal/routing"
	"rapid/internal/routing/epidemic"
	"rapid/internal/sim"
	"rapid/internal/trace"
)

// TestTheorem1aAdversary reproduces the Theorem 1(a) gadget (Fig. 25):
// n unit packets at source A destined to v_1..v_n; at t=0, A meets
// intermediates u_1..u_n with unit-size opportunities, so the online
// algorithm places at most one packet at each intermediate. The
// adversary then maps intermediates to destinations with Procedure
// Generate Y: every intermediate that holds a packet is paired with a
// destination whose packet it does NOT hold (when possible), so the
// online algorithm delivers at most one packet while the adversary's
// routing (knowing Y in advance) would deliver all n.
func TestTheorem1aAdversary(t *testing.T) {
	const n = 8
	// Node layout: 0 = source A; 1..n = intermediates; n+1..2n = dests.
	inter := func(i int) packet.NodeID { return packet.NodeID(1 + i) }
	dest := func(i int) packet.NodeID { return packet.NodeID(1 + n + i) }

	var w packet.Workload
	for i := 0; i < n; i++ {
		w = append(w, &packet.Packet{
			ID: packet.ID(i + 1), Src: 0, Dst: dest(i), Size: 1, Created: 0,
		})
	}

	// Phase 1: A meets each intermediate once with a unit opportunity.
	phase1 := &trace.Schedule{Duration: 1000}
	for i := 0; i < n; i++ {
		phase1.Meetings = append(phase1.Meetings, trace.Meeting{
			A: 0, B: inter(i), Time: float64(i + 1), Bytes: 1,
		})
	}
	phase1.Sort()

	// Observe the online algorithm's phase-1 placements X: which
	// packet (if any) each intermediate carries. Epidemic is the
	// canonical deterministic online algorithm here; with unit
	// opportunities it forwards exactly one (the oldest) packet per
	// meeting.
	net := buildNet(t, phase1, w)
	holds := make([]packet.ID, n+1) // holds[u] = packet at intermediate u (0 = none)
	for i := 0; i < n; i++ {
		for _, e := range net.Node(inter(i)).Store.Entries() {
			holds[i+1] = e.P.ID
		}
	}

	// Procedure Generate Y(X): map each destination v_i to an
	// intermediate that does NOT hold p_i when one is free; the paper
	// proves line 6 (a forced "bad" assignment) executes at most once.
	assigned := make([]bool, n+1)
	yOf := make([]int, n) // destination i <- intermediate yOf[i]
	badAssignments := 0
	for i := 0; i < n; i++ {
		found := -1
		for u := 1; u <= n; u++ {
			if !assigned[u] && holds[u] != packet.ID(i+1) {
				found = u
				break
			}
		}
		if found < 0 {
			for u := 1; u <= n; u++ {
				if !assigned[u] {
					found = u
					badAssignments++
					break
				}
			}
		}
		assigned[found] = true
		yOf[i] = found
	}
	if badAssignments > 1 {
		t.Fatalf("Lemma 1 violated: %d forced assignments (max 1)", badAssignments)
	}

	// Phase 2: each intermediate meets its assigned destination once.
	full := phase1.Clone()
	for i := 0; i < n; i++ {
		full.Meetings = append(full.Meetings, trace.Meeting{
			A: packet.NodeID(yOf[i]), B: dest(i), Time: float64(100 + i), Bytes: 1,
		})
	}
	full.Sort()

	col := routing.Run(routing.Scenario{
		Schedule: full, Workload: w, Factory: epidemic.New(),
		Cfg:  routing.Config{Mode: routing.ControlNone},
		Seed: 1,
	})
	delivered := col.Summarize(full.Duration).Delivered
	if delivered > 1 {
		t.Errorf("online algorithm delivered %d packets against the adversary (theorem: at most 1)", delivered)
	}

	// The adversary, knowing Y in advance, routes p_i through Y^-1(v_i)
	// and delivers everything: verify a feasible offline schedule
	// exists by checking each destination's intermediate could have
	// carried its packet (one unit slot at t=i+1, one at t=100+i).
	for i := 0; i < n; i++ {
		u := yOf[i]
		if u < 1 || u > n {
			t.Fatalf("destination %d unassigned", i)
		}
	}
	// Every intermediate is assigned exactly once (bijection), so the
	// offline adversary's schedule (send p_i to Y^-1(v_i) in phase 1)
	// is feasible: n disjoint unit slots in each phase.
	seen := map[int]bool{}
	for _, u := range yOf {
		if seen[u] {
			t.Fatal("Y is not a bijection")
		}
		seen[u] = true
	}
}

// buildNet replays the phase-1 schedule directly against a network so
// the test can inspect intermediate buffer placements (the adversary's
// observation step).
func buildNet(t *testing.T, sched *trace.Schedule, w packet.Workload) *routing.Network {
	t.Helper()
	ids := map[packet.NodeID]bool{}
	var all []packet.NodeID
	add := func(id packet.NodeID) {
		if !ids[id] {
			ids[id] = true
			all = append(all, id)
		}
	}
	for _, id := range sched.Nodes() {
		add(id)
	}
	for _, p := range w {
		add(p.Src)
		add(p.Dst)
	}
	net := routing.NewNetwork(sim.New(1), all, epidemic.New(),
		routing.Config{Mode: routing.ControlNone})
	net.Horizon = sched.Duration
	for _, p := range w {
		net.Collector.Generated(p)
		net.Node(p.Src).Router.Generate(p, p.Created)
	}
	for _, m := range sched.Meetings {
		net.Engine.RunUntil(m.Time)
		routing.RunSession(net, net.Node(m.A), net.Node(m.B), m.Bytes)
	}
	return net
}

package scenario

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"rapid/internal/core"
	"rapid/internal/packet"
	"rapid/internal/routing"
	"rapid/internal/trace"
)

// smallSynth keeps scenario runs in tests well under a second.
func smallSynth(src Source) Scenario {
	return Scenario{
		Family: "test", Tag: "test",
		Schedule: ScheduleSpec{
			Source: src, Nodes: 8, Duration: 120,
			MeanMeeting: 30, TransferBytes: 40 << 10,
			Alpha: 1, RankSeed: 42,
		},
		Workload: WorkloadSpec{
			Shape: ShapePoisson, Load: 10, Window: 50,
			PacketBytes: 1 << 10, Deadline: 20,
			NodeCount: 8, PerPair: true,
		},
		Protocol: ProtoRapid, Metric: core.AvgDelay,
	}
}

// scheduleBytes serializes a schedule through the text codec so
// determinism is asserted byte-for-byte.
func scheduleBytes(t *testing.T, s *trace.Schedule) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.Write(&buf, s); err != nil {
		t.Fatalf("write schedule: %v", err)
	}
	return buf.Bytes()
}

// workloadBytes dumps every packet field for byte-level comparison.
func workloadBytes(w packet.Workload) []byte {
	var buf bytes.Buffer
	for _, p := range w {
		fmt.Fprintf(&buf, "%d %d %d %d %.9f %.9f %d\n",
			p.ID, p.Src, p.Dst, p.Size, p.Created, p.Deadline, p.Cohort)
	}
	return buf.Bytes()
}

// TestScheduleDeterminism: the same spec and seed produce byte-identical
// schedules across builds for every source.
func TestScheduleDeterminism(t *testing.T) {
	specs := map[string]ScheduleSpec{
		"dieselnet": {
			Source: SourceDieselNet, Diesel: trace.DefaultDieselNet(),
			Day: 3, DayHours: 2,
		},
		"exponential": {
			Source: SourceExponential, Nodes: 10, Duration: 200,
			MeanMeeting: 40, TransferBytes: 50 << 10,
		},
		"powerlaw": {
			Source: SourcePowerLaw, Nodes: 10, Duration: 200,
			MeanMeeting: 40, TransferBytes: 50 << 10, Alpha: 1, RankSeed: 42,
		},
		"constellation": {
			Source: SourceConstellation, Planes: 3, SatsPerPlane: 4,
			Ground: 2, OrbitPeriod: 120, Duration: 240,
			ISLBytes: 64 << 10, GroundBytes: 128 << 10,
		},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			a := scheduleBytes(t, spec.Build(7))
			b := scheduleBytes(t, spec.Build(7))
			if !bytes.Equal(a, b) {
				t.Fatal("same seed produced different schedules")
			}
			c := scheduleBytes(t, spec.Build(8))
			switch spec.Source {
			case SourceDieselNet, SourceConstellation:
				// Deterministic in the spec alone: a different seed must
				// still build the byte-identical schedule.
				if !bytes.Equal(a, c) {
					t.Fatal("spec-deterministic schedule depends on the seed")
				}
			default:
				if bytes.Equal(a, c) {
					t.Fatal("different seed produced identical synthetic schedule")
				}
			}
		})
	}
}

// TestWorkloadDeterminism: the same scenario produces byte-identical
// workloads; a different run index draws different traffic.
func TestWorkloadDeterminism(t *testing.T) {
	for _, shape := range []Shape{ShapePoisson, ShapeOnOff, ShapeCohorts} {
		t.Run(shape.String(), func(t *testing.T) {
			s := smallSynth(SourceExponential)
			s.Workload.Shape = shape
			s.Workload.OnMean, s.Workload.OffMean = 20, 40
			s.Workload.Cohorts, s.Workload.Parallel, s.Workload.BgLoad = 4, 10, 5
			schedSeed, wSeed, _ := s.Seeds()
			sched := s.Schedule.Build(schedSeed)
			a := workloadBytes(s.Workload.Build(sched, wSeed))
			b := workloadBytes(s.Workload.Build(sched, wSeed))
			if len(a) == 0 {
				t.Fatal("empty workload")
			}
			if !bytes.Equal(a, b) {
				t.Fatal("same seed produced different workloads")
			}
			s2 := s
			s2.Run = 1
			_, wSeed2, _ := s2.Seeds()
			c := workloadBytes(s2.Workload.Build(sched, wSeed2))
			if bytes.Equal(a, c) {
				t.Fatal("different run produced identical workload")
			}
		})
	}
}

// TestSeedDerivation pins the derivation rules the figures rely on for
// cross-figure cache sharing (see Seeds' doc comment).
func TestSeedDerivation(t *testing.T) {
	tr := Scenario{Schedule: ScheduleSpec{Source: SourceDieselNet, Day: 3}, Run: 2}
	_, w, sim := tr.Seeds()
	if sim != 3002 || w != 3002^0x5ca1ab1e {
		t.Errorf("trace seeds = (%d, %d)", w, sim)
	}
	sy := Scenario{Schedule: ScheduleSpec{Source: SourceExponential}, Run: 1}
	sched, w, sim := sy.Seeds()
	if sched != 62 || w != 154 || sim != 2 {
		t.Errorf("synth seeds = (%d, %d, %d)", sched, w, sim)
	}
}

// TestScenarioComparable: a Scenario is a pure value usable as a map
// key — the property the engine's cache is built on.
func TestScenarioComparable(t *testing.T) {
	a := smallSynth(SourcePowerLaw)
	b := smallSynth(SourcePowerLaw)
	if a != b {
		t.Fatal("identical scenario literals are not equal")
	}
	m := map[Scenario]int{a: 1}
	if m[b] != 1 {
		t.Fatal("scenario map lookup failed")
	}
	b.Config = Overrides{MetaFraction: 0.1, MetaFractionSet: true}
	if a == b {
		t.Fatal("override change did not change identity")
	}
	c := smallSynth(SourcePowerLaw)
	c.Config = Overrides{Hetero: HeteroBuffers{Enabled: true, SmallBytes: 1, LargeBytes: 2, SmallEvery: 2}}
	if a == c {
		t.Fatal("hetero-buffer change did not change identity")
	}
}

// TestSummaryDeterminism: end-to-end, the same scenario summarizes
// identically (full simulation, not just inputs).
func TestSummaryDeterminism(t *testing.T) {
	s := smallSynth(SourceExponential)
	if !reflect.DeepEqual(s.Summary(), s.Summary()) {
		t.Fatal("same scenario produced different summaries")
	}
}

// TestOverridesApply checks the declarative config modifiers.
func TestOverridesApply(t *testing.T) {
	cfg := routing.Config{MetaFraction: -1, Hops: 3}
	Overrides{MetaFraction: 0.2, MetaFractionSet: true,
		BufferBytes: 123, BufferBytesSet: true, Hops: 2}.Apply(&cfg)
	if cfg.MetaFraction != 0.2 || cfg.BufferBytes != 123 || cfg.Hops != 2 {
		t.Fatalf("overrides not applied: %+v", cfg)
	}
	if cfg.BufferBytesFor != nil {
		t.Fatal("uniform overrides must not install a per-node buffer fn")
	}
	Overrides{Hetero: HeteroBuffers{
		Enabled: true, SmallBytes: 10, LargeBytes: 100, SmallEvery: 3,
	}}.Apply(&cfg)
	if cfg.BufferBytesFor == nil {
		t.Fatal("hetero buffers not installed")
	}
	if got := cfg.BufferBytesFor(0); got != 10 {
		t.Errorf("node 0 capacity = %d, want 10", got)
	}
	if got := cfg.BufferBytesFor(1); got != 100 {
		t.Errorf("node 1 capacity = %d, want 100", got)
	}
	if got := cfg.BufferBytesFor(3); got != 10 {
		t.Errorf("node 3 capacity = %d, want 10", got)
	}
}

// TestHeteroBuffersMaterialize: the per-node capacities reach the
// runtime network.
func TestHeteroBuffersMaterialize(t *testing.T) {
	s := smallSynth(SourcePowerLaw)
	s.Config = Overrides{Hetero: HeteroBuffers{
		Enabled: true, SmallBytes: 10 << 10, LargeBytes: 100 << 10, SmallEvery: 2,
	}}
	rs := s.Materialize()
	engineIDs := rs.Schedule.Nodes()
	net := routing.NewNetwork(nil, engineIDs, rs.Factory, rs.Cfg)
	for _, id := range engineIDs {
		want := int64(100 << 10)
		if int(id)%2 == 0 {
			want = 10 << 10
		}
		if got := net.Node(id).Store.Capacity(); got != want {
			t.Errorf("node %d capacity = %d, want %d", id, got, want)
		}
	}
}

// TestRegistryFamilies: every registered family expands to a non-empty,
// duplicate-free scenario set carrying its own name.
func TestRegistryFamilies(t *testing.T) {
	fams := Families()
	if len(fams) < 6 {
		t.Fatalf("registry has %d families, want >= 6", len(fams))
	}
	p := DefaultParams()
	p.Loads = []float64{4}
	p.Days, p.Runs, p.Nodes, p.Duration = 1, 1, 8, 60
	for _, f := range fams {
		t.Run(f.Name, func(t *testing.T) {
			scs := f.Gen(p)
			if len(scs) == 0 {
				t.Fatal("family expanded to nothing")
			}
			seen := map[Scenario]bool{}
			for _, sc := range scs {
				if seen[sc] {
					t.Fatalf("duplicate scenario in family: %+v", sc)
				}
				seen[sc] = true
				if sc.Family != f.Name {
					t.Errorf("scenario family %q, want %q", sc.Family, f.Name)
				}
			}
		})
	}
	if _, ok := Lookup("hetero-buffers"); !ok {
		t.Error("hetero-buffers family missing")
	}
	if _, err := Expand("no-such-family", p); err == nil {
		t.Error("Expand of unknown family must error")
	}
}

// TestNewFamiliesRun executes one scenario from each of the two new
// families end to end.
func TestNewFamiliesRun(t *testing.T) {
	p := DefaultParams()
	p.Loads = []float64{10}
	p.Runs, p.Nodes, p.Duration = 1, 8, 120
	p.Protocols = []Proto{ProtoRapid}
	for _, name := range []string{
		"hetero-buffers", "bursty-onoff",
		"constellation-ground", "constellation-ring",
		"constellation-passes", "asym-uplink",
	} {
		t.Run(name, func(t *testing.T) {
			scs, err := Expand(name, p)
			if err != nil {
				t.Fatal(err)
			}
			s := scs[0].Summary()
			if s.Generated == 0 {
				t.Fatal("no packets generated")
			}
			if s.Delivered == 0 {
				t.Fatal("nothing delivered")
			}
		})
	}
}

// TestPassesFamilyIsWindowed: the duration-aware families materialize
// schedules made of windowed contacts, not point meetings, and the
// asym-uplink variant runs its access links far below its ISLs.
func TestPassesFamilyIsWindowed(t *testing.T) {
	p := DefaultParams()
	p.Loads = []float64{2}
	p.Runs = 1
	p.Protocols = []Proto{ProtoRapid}
	for _, name := range []string{"constellation-passes", "asym-uplink"} {
		scs, err := Expand(name, p)
		if err != nil {
			t.Fatal(err)
		}
		sched := scs[0].Materialize().Schedule
		if len(sched.Contacts) == 0 || len(sched.Meetings) != 0 {
			t.Fatalf("%s: %d contacts / %d meetings, want all-windowed",
				name, len(sched.Contacts), len(sched.Meetings))
		}
		if err := sched.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, c := range sched.Contacts {
			if !c.Windowed() {
				t.Fatalf("%s: point contact %+v in a windowed family", name, c)
			}
		}
	}
	passes, _ := Expand("constellation-passes", p)
	asym, _ := Expand("asym-uplink", p)
	if pr, ar := passes[0].Schedule.GroundRateBps, asym[0].Schedule.GroundRateBps; ar >= pr {
		t.Errorf("asym-uplink ground rate %v not below passes rate %v", ar, pr)
	}
}

// TestConstellationFamilySchedulesIdentical: the constellation families
// are driven by deterministic contact plans — every run index of a grid
// point materializes the byte-identical schedule (mirroring the
// spec-level determinism tests above at the family level).
func TestConstellationFamilySchedulesIdentical(t *testing.T) {
	p := DefaultParams()
	p.Loads = []float64{2}
	p.Runs = 3
	p.Protocols = []Proto{ProtoRapid}
	for _, name := range []string{"constellation-ground", "constellation-ring"} {
		t.Run(name, func(t *testing.T) {
			scs, err := Expand(name, p)
			if err != nil {
				t.Fatal(err)
			}
			if len(scs) != 3 {
				t.Fatalf("expanded to %d scenarios, want 3 runs", len(scs))
			}
			var ref []byte
			for i, sc := range scs {
				seed, _, _ := sc.Seeds()
				b := scheduleBytes(t, sc.Schedule.Build(seed))
				if i == 0 {
					ref = b
					continue
				}
				if !bytes.Equal(ref, b) {
					t.Fatalf("run %d built a different schedule than run 0", sc.Run)
				}
			}
		})
	}
}

// TestOnOffLoadCompensated: WorkloadSpec.Load is the long-run offered
// load for every shape — Build scales the instantaneous ON rate by the
// duty cycle, so an on-off workload offers roughly the same traffic as
// the always-on Poisson workload at the same Load.
func TestOnOffLoadCompensated(t *testing.T) {
	s := smallSynth(SourceExponential)
	s.Schedule.Duration = 1200
	schedSeed, wSeed, _ := s.Seeds()
	sched := s.Schedule.Build(schedSeed)
	poisson := s.Workload.Build(sched, wSeed)
	s.Workload.Shape = ShapeOnOff
	s.Workload.OnMean, s.Workload.OffMean = 30, 120
	bursty := s.Workload.Build(sched, wSeed)
	if len(bursty) == 0 {
		t.Fatal("bursty workload empty")
	}
	ratio := float64(len(bursty)) / float64(len(poisson))
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("bursty %d packets vs poisson %d (ratio %.2f); duty-cycle compensation broken",
			len(bursty), len(poisson), ratio)
	}
}

// TestArmPanicsOnUnknownProto guards the registry boundary.
func TestArmPanicsOnUnknownProto(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown proto must panic")
		}
	}()
	Arm(Proto("bogus"), core.AvgDelay, routing.Config{})
}

// TestCohortWorkloadIDsDisjoint: the fairness workload's cohort packets
// must not collide with the background's IDs.
func TestCohortWorkloadIDsDisjoint(t *testing.T) {
	ws := WorkloadSpec{
		Shape: ShapeCohorts, Window: 50, PacketBytes: 1 << 10,
		Cohorts: 4, Parallel: 10, BgLoad: 5,
	}
	sched := ScheduleSpec{
		Source: SourceExponential, Nodes: 8, Duration: 300,
		MeanMeeting: 30, TransferBytes: 40 << 10,
	}.Build(1)
	w := ws.Build(sched, 12)
	seen := map[packet.ID]bool{}
	cohorts := 0
	for _, p := range w {
		if seen[p.ID] {
			t.Fatalf("duplicate packet ID %d", p.ID)
		}
		seen[p.ID] = true
		if p.Cohort > 0 {
			cohorts++
		}
	}
	if cohorts != 40 {
		t.Errorf("cohort packets = %d, want 40", cohorts)
	}
}

// TestByNameMobility sanity-checks the spec constructor the schedule
// specs resolve through.
func TestByNameMobility(t *testing.T) {
	if _, err := Expand("synth-powerlaw", DefaultParams()); err != nil {
		t.Fatal(err)
	}
	spec := ScheduleSpec{
		Source: SourcePowerLaw, Nodes: 6, Duration: 100,
		MeanMeeting: 20, TransferBytes: 10 << 10, Alpha: 1, RankSeed: 1,
	}
	if got := spec.Build(3); len(got.Meetings) == 0 {
		t.Fatal("power-law spec built an empty schedule")
	}
}

package scenario

import (
	"rapid/internal/core"
	"rapid/internal/routing"
	"rapid/internal/routing/cgr"
	"rapid/internal/routing/epidemic"
	"rapid/internal/routing/maxprop"
	"rapid/internal/routing/prophet"
	"rapid/internal/routing/randomw"
	"rapid/internal/routing/spraywait"
)

// Metric is RAPID's routing objective (§3.5).
type Metric = core.Metric

// Proto identifies a protocol arm of a scenario.
type Proto string

// allProtos accumulates every arm declared through newProto, in
// declaration order — the conformance set the cross-protocol invariant
// harness sweeps. Declaring an arm any other way is a bug;
// TestAllProtosHaveArms pins that every entry also has an Arm case.
var allProtos []Proto

func newProto(name string) Proto {
	p := Proto(name)
	allProtos = append(allProtos, p)
	return p
}

// The protocol arms of §6.1's comparison set plus the ablation and
// epidemic arms, and the plan-ahead CGR arm for deterministic contact
// plans. Each arm self-registers into AllProtos, so the invariant
// harness picks up new arms with no further wiring.
var (
	ProtoRapid       = newProto("Rapid")
	ProtoRapidLocal  = newProto("Rapid: Local")
	ProtoRapidGlobal = newProto("Rapid: Instant global")
	ProtoMaxProp     = newProto("MaxProp")
	ProtoSprayWait   = newProto("Spray and Wait")
	ProtoProphet     = newProto("Prophet")
	ProtoRandom      = newProto("Random")
	ProtoRandomAcks  = newProto("Random: With Acks")
	ProtoEpidemic    = newProto("Epidemic")
	// ProtoCGR is contact-graph routing: single-copy earliest-arrival
	// planning over the full expanded schedule (the deterministic
	// contact-plan setting; internal/routing/cgr).
	ProtoCGR = newProto("CGR")
	// The CGR allocation-policy arms (internal/routing/cgr Policy):
	// Yen k-alternate paths with widest-within-slack selection, bounded
	// multi-copy spreading over disjoint alternates, and GMA-style
	// per-destination admission control.
	ProtoCGRK     = newProto("CGR: K-path")
	ProtoCGRMulti = newProto("CGR: Multi-copy")
	ProtoCGRAdmit = newProto("CGR: Admission")
)

// AllProtos returns every declared protocol arm.
func AllProtos() []Proto {
	return append([]Proto(nil), allProtos...)
}

// ComparisonSet is the four-protocol lineup of the headline figures
// (Prophet "performed worse than the three routing protocols for all
// loads and all metrics" and is omitted from the paper's graphs for
// clarity — it stays available via its own Proto).
func ComparisonSet() []Proto {
	return []Proto{ProtoRapid, ProtoMaxProp, ProtoSprayWait, ProtoRandom}
}

// CGRComparisonSet is the plan-ahead lineup: CGR against the reactive
// comparison set it is measured over (the cgr-constellation family's
// default arms).
func CGRComparisonSet() []Proto {
	return append([]Proto{ProtoCGR}, ComparisonSet()...)
}

// CGRPolicySet is the allocation-policy lineup of the cgr-policies
// family: the four CGR arms head-to-head, with RAPID as the
// multi-copy utility-driven reference.
func CGRPolicySet() []Proto {
	return []Proto{ProtoCGR, ProtoCGRK, ProtoCGRMulti, ProtoCGRAdmit, ProtoRapid}
}

// Arm builds the router factory and config adjustments for a protocol.
func Arm(p Proto, metric Metric, base routing.Config) (routing.RouterFactory, routing.Config) {
	cfg := base
	switch p {
	case ProtoRapid:
		return core.New(metric), cfg
	case ProtoRapidLocal:
		cfg.LocalOnlyMeta = true
		return core.New(metric), cfg
	case ProtoRapidGlobal:
		cfg.Mode = routing.ControlGlobal
		return core.New(metric), cfg
	case ProtoMaxProp:
		cfg.AcksOnly = true
		return maxprop.New(), cfg
	case ProtoSprayWait:
		cfg.Mode = routing.ControlNone
		return spraywait.New(spraywait.DefaultL), cfg
	case ProtoProphet:
		cfg.Mode = routing.ControlNone
		return prophet.New(prophet.DefaultParams()), cfg
	case ProtoRandom:
		cfg.Mode = routing.ControlNone
		return randomw.New(), cfg
	case ProtoRandomAcks:
		cfg.AcksOnly = true
		return randomw.New(), cfg
	case ProtoEpidemic:
		return epidemic.New(), cfg
	case ProtoCGR:
		// The contact plan is shared a priori; no in-band metadata.
		cfg.Mode = routing.ControlNone
		return cgr.New(), cfg
	case ProtoCGRK:
		cfg.Mode = routing.ControlNone
		return cgr.NewPolicy(cgr.Policy{
			KPaths: cgr.DefaultKPaths, DelaySlack: cgr.DefaultDelaySlack, Copies: 1,
		}), cfg
	case ProtoCGRMulti:
		cfg.Mode = routing.ControlNone
		return cgr.NewPolicy(cgr.Policy{
			KPaths: 1, Copies: cgr.DefaultCopies,
		}), cfg
	case ProtoCGRAdmit:
		cfg.Mode = routing.ControlNone
		return cgr.NewPolicy(cgr.Policy{
			KPaths: 1, Copies: 1, AdmitFraction: cgr.DefaultAdmitFraction,
		}), cfg
	default:
		panic("scenario: unknown protocol " + string(p))
	}
}

// NormalizeMetric collapses the metric dimension for metric-agnostic
// baselines so their scenarios are identical across figures that only
// vary RAPID's objective — identical scenarios share one cache entry.
func NormalizeMetric(proto Proto, metric Metric) Metric {
	switch proto {
	case ProtoRapid, ProtoRapidLocal, ProtoRapidGlobal:
		return metric
	default:
		return core.AvgDelay
	}
}

package scenario

import (
	"rapid/internal/core"
	"rapid/internal/routing"
	"rapid/internal/routing/epidemic"
	"rapid/internal/routing/maxprop"
	"rapid/internal/routing/prophet"
	"rapid/internal/routing/randomw"
	"rapid/internal/routing/spraywait"
)

// Metric is RAPID's routing objective (§3.5).
type Metric = core.Metric

// Proto identifies a protocol arm of a scenario.
type Proto string

// The protocol arms of §6.1's comparison set plus the ablation and
// epidemic arms.
const (
	ProtoRapid       Proto = "Rapid"
	ProtoRapidLocal  Proto = "Rapid: Local"
	ProtoRapidGlobal Proto = "Rapid: Instant global"
	ProtoMaxProp     Proto = "MaxProp"
	ProtoSprayWait   Proto = "Spray and Wait"
	ProtoProphet     Proto = "Prophet"
	ProtoRandom      Proto = "Random"
	ProtoRandomAcks  Proto = "Random: With Acks"
	ProtoEpidemic    Proto = "Epidemic"
)

// ComparisonSet is the four-protocol lineup of the headline figures
// (Prophet "performed worse than the three routing protocols for all
// loads and all metrics" and is omitted from the paper's graphs for
// clarity — it stays available via its own Proto).
func ComparisonSet() []Proto {
	return []Proto{ProtoRapid, ProtoMaxProp, ProtoSprayWait, ProtoRandom}
}

// Arm builds the router factory and config adjustments for a protocol.
func Arm(p Proto, metric Metric, base routing.Config) (routing.RouterFactory, routing.Config) {
	cfg := base
	switch p {
	case ProtoRapid:
		return core.New(metric), cfg
	case ProtoRapidLocal:
		cfg.LocalOnlyMeta = true
		return core.New(metric), cfg
	case ProtoRapidGlobal:
		cfg.Mode = routing.ControlGlobal
		return core.New(metric), cfg
	case ProtoMaxProp:
		cfg.AcksOnly = true
		return maxprop.New(), cfg
	case ProtoSprayWait:
		cfg.Mode = routing.ControlNone
		return spraywait.New(spraywait.DefaultL), cfg
	case ProtoProphet:
		cfg.Mode = routing.ControlNone
		return prophet.New(prophet.DefaultParams()), cfg
	case ProtoRandom:
		cfg.Mode = routing.ControlNone
		return randomw.New(), cfg
	case ProtoRandomAcks:
		cfg.AcksOnly = true
		return randomw.New(), cfg
	case ProtoEpidemic:
		return epidemic.New(), cfg
	default:
		panic("scenario: unknown protocol " + string(p))
	}
}

// NormalizeMetric collapses the metric dimension for metric-agnostic
// baselines so their scenarios are identical across figures that only
// vary RAPID's objective — identical scenarios share one cache entry.
func NormalizeMetric(proto Proto, metric Metric) Metric {
	switch proto {
	case ProtoRapid, ProtoRapidLocal, ProtoRapidGlobal:
		return metric
	default:
		return core.AvgDelay
	}
}

// Package scenario is the declarative experiment layer: a Scenario is a
// pure, comparable value describing one simulation run — where the
// meeting schedule comes from, what workload rides on it, which
// protocol and routing metric are in play, which runtime-config
// overrides apply, and how every random seed is derived. Because a
// Scenario is comparable it serves directly as a cache key (the
// experiment engine in internal/exp memoizes summaries per Scenario)
// and as a registry entry: the package keeps a registry of named
// scenario families — parameterized grids such as the paper's
// trace-comparison sweep or the heterogeneous-buffer stress family —
// that figures, benchmarks and the command-line tools all draw from.
//
// DESIGN.md §4 documents the registry and how to add a family;
// DESIGN.md §6 covers the seed-derivation rules that make every run
// reproducible bit-for-bit.
package scenario

import (
	"fmt"
	"math/rand"

	"rapid/internal/disrupt"
	"rapid/internal/metrics"
	"rapid/internal/mobility"
	"rapid/internal/packet"
	"rapid/internal/routing"
	"rapid/internal/trace"
)

// Source selects where a scenario's meeting schedule comes from.
type Source int

const (
	// SourceDieselNet replays a synthetic DieselNet day (§5's testbed).
	SourceDieselNet Source = iota
	// SourceExponential draws uniform exponential mobility (§6.3).
	SourceExponential
	// SourcePowerLaw draws popularity-skewed mobility (§6.3).
	SourcePowerLaw
	// SourceConstellation expands a deterministic orbital/ring contact
	// plan (satellite-DTN setting; not in the paper).
	SourceConstellation
)

// String implements fmt.Stringer.
func (s Source) String() string {
	switch s {
	case SourceDieselNet:
		return "dieselnet"
	case SourceExponential:
		return "exponential"
	case SourcePowerLaw:
		return "powerlaw"
	case SourceConstellation:
		return "constellation"
	default:
		return fmt.Sprintf("Source(%d)", int(s))
	}
}

// ScheduleSpec declares a meeting schedule. The zero value is not
// usable; fill the fields for the chosen Source. All fields are
// comparable so the spec can be part of a cache key.
type ScheduleSpec struct {
	Source Source

	// DieselNet fields.
	Diesel trace.DieselNetConfig
	// Day is the DieselNet day index.
	Day int
	// DayHours truncates the simulated day when positive (scales trade
	// fidelity for wall clock; see exp.Scale).
	DayHours float64
	// Perturb applies deployment perturbations to the built schedule,
	// whatever its source (the Fig. 3 "Real" arm).
	Perturb    bool
	PerturbCfg trace.PerturbConfig

	// Synthetic-mobility fields (Table 4's synthetic column).
	Nodes         int
	Duration      float64
	MeanMeeting   float64
	TransferBytes int64
	// Alpha is the power-law exponent (SourcePowerLaw).
	Alpha float64
	// RankSeed fixes the popularity assignment; popularity is a property
	// of the experiment, not of a schedule draw.
	RankSeed int64

	// Constellation fields (SourceConstellation). Ground stations get
	// IDs 0..Ground-1, satellites follow; Duration above is the horizon.
	Planes       int
	SatsPerPlane int
	Ground       int
	// OrbitPeriod is the orbital period in seconds.
	OrbitPeriod float64
	// ISLBytes/GroundBytes size the inter-satellite and ground-pass
	// transfer opportunities.
	ISLBytes    int64
	GroundBytes int64
	// ConstelJitter perturbs contact instants by up to ±this fraction of
	// the orbital period (0 = a strictly deterministic plan: every seed
	// builds the byte-identical schedule).
	ConstelJitter float64
	// Windowed constellation contacts (all zero keeps point meetings):
	// PassWindow is the zenith ground-pass duration in seconds and
	// GroundRateBps its peak link rate — per-pass duration and rate
	// scale with the pass's deterministic max elevation; ISLWindow and
	// ISLRateBps shape the inter-satellite windows.
	PassWindow    float64
	GroundRateBps float64
	ISLWindow     float64
	ISLRateBps    float64
	// Lazy requests that the run consume the periodic contact plan
	// directly through a streaming cursor (trace.PlanCursor) instead of
	// materializing every occurrence up front — memory stays O(plan)
	// rather than O(horizon), the property the mega-constellation family
	// depends on. Only a jitter-free, unperturbed constellation is a pure
	// plan; any other spec silently falls back to the materialized build.
	Lazy bool
	// MergeWindows coalesces back-to-back windowed plan occurrences
	// (Window == Period) into single long windows when running lazily.
	// Semantics-changing (one open per run instead of per pass), so
	// opt-in.
	MergeWindows bool
}

// lazyPlan reports whether the spec can (and asked to) run straight off
// the contact plan: lazy expansion only exists for the deterministic
// constellation source — jitter and perturbation are transformations of
// the materialized schedule.
func (ss ScheduleSpec) lazyPlan() bool {
	return ss.Lazy && ss.Source == SourceConstellation &&
		ss.ConstelJitter == 0 && !ss.Perturb
}

// BuildPlan returns the periodic contact plan of a constellation spec
// without expanding it. Callers outside the lazy path (e.g. CGR's
// plan-ahead router construction) may also use it.
func (ss ScheduleSpec) BuildPlan() *trace.ContactPlan {
	if ss.Source != SourceConstellation {
		panic("scenario: BuildPlan requires SourceConstellation")
	}
	m := mobility.Constellation{Config: mobility.ConstellationConfig{
		Planes: ss.Planes, SatsPerPlane: ss.SatsPerPlane,
		GroundStations: ss.Ground,
		OrbitPeriod:    ss.OrbitPeriod, Duration: ss.Duration,
		ISLBytes: ss.ISLBytes, GroundBytes: ss.GroundBytes,
		JitterFrac: ss.ConstelJitter,
		PassWindow: ss.PassWindow, GroundRateBps: ss.GroundRateBps,
		ISLWindow: ss.ISLWindow, ISLRateBps: ss.ISLRateBps,
	}}
	return m.Plan()
}

// Build materializes the schedule. DieselNet days are deterministic in
// the config alone; the synthetic models consume seed.
func (ss ScheduleSpec) Build(seed int64) *trace.Schedule {
	s := ss.build(seed)
	if ss.Perturb {
		s = trace.Perturb(s, ss.PerturbCfg)
	}
	return s
}

func (ss ScheduleSpec) build(seed int64) *trace.Schedule {
	switch ss.Source {
	case SourceDieselNet:
		cfg := ss.Diesel
		if ss.DayHours > 0 {
			cfg.DayHours = ss.DayHours
		}
		return trace.NewDieselNet(cfg).Day(ss.Day)
	case SourceExponential, SourcePowerLaw:
		cfg := mobility.Config{
			Nodes:         ss.Nodes,
			Duration:      ss.Duration,
			MeanMeeting:   ss.MeanMeeting,
			TransferBytes: ss.TransferBytes,
			Jitter:        true,
		}
		var ranks []int
		if ss.Source == SourcePowerLaw {
			ranks = mobility.RandomRanks(ss.Nodes, rand.New(rand.NewSource(ss.RankSeed)))
		}
		m, err := mobility.ByName(ss.Source.String(), cfg, ss.Alpha, ranks)
		if err != nil {
			panic("scenario: " + err.Error())
		}
		return m.Schedule(rand.New(rand.NewSource(seed)))
	case SourceConstellation:
		m := mobility.Constellation{Config: mobility.ConstellationConfig{
			Planes: ss.Planes, SatsPerPlane: ss.SatsPerPlane,
			GroundStations: ss.Ground,
			OrbitPeriod:    ss.OrbitPeriod, Duration: ss.Duration,
			ISLBytes: ss.ISLBytes, GroundBytes: ss.GroundBytes,
			JitterFrac: ss.ConstelJitter,
			PassWindow: ss.PassWindow, GroundRateBps: ss.GroundRateBps,
			ISLWindow: ss.ISLWindow, ISLRateBps: ss.ISLRateBps,
		}}
		return m.Schedule(rand.New(rand.NewSource(seed)))
	default:
		panic(fmt.Sprintf("scenario: unknown schedule source %v", ss.Source))
	}
}

// Shape selects the workload generator.
type Shape int

const (
	// ShapePoisson is the paper's workload: independent Poisson arrivals
	// per ordered (src, dst) pair (§5.1).
	ShapePoisson Shape = iota
	// ShapeOnOff gates each pair's Poisson arrivals by alternating
	// exponential on/off periods — a bursty workload family the paper
	// does not evaluate.
	ShapeOnOff
	// ShapeCohorts is the Fig. 15 fairness workload: batches of packets
	// created in parallel riding on a Poisson background.
	ShapeCohorts
)

// String implements fmt.Stringer.
func (s Shape) String() string {
	switch s {
	case ShapePoisson:
		return "poisson"
	case ShapeOnOff:
		return "on-off"
	case ShapeCohorts:
		return "cohorts"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// WorkloadSpec declares the traffic offered to the network. Load is in
// packets per Window per destination; the trace experiments use
// Window = 3600 s and the synthetic ones Window = 50 s (Table 4).
type WorkloadSpec struct {
	Shape Shape
	Load  float64
	// Window is the load-axis unit in seconds.
	Window float64
	// PacketBytes is the packet size (1 KB everywhere in the paper).
	PacketBytes int64
	// Deadline stamps packets with Created+Deadline when positive.
	Deadline float64
	// NodeCount, when positive, makes the endpoints 0..NodeCount-1
	// (the synthetic convention) instead of the schedule's node set
	// (the trace convention, §5.1: "only buses that were scheduled to
	// be on the road").
	NodeCount int
	// PerPair divides Load by (endpoints-1), turning the load axis into
	// packets per window per destination aggregated over sources
	// (DESIGN.md §7).
	PerPair bool
	// Streaming generates the workload lazily through a packet.Source
	// instead of materializing the slice — memory O(endpoint pairs)
	// rather than O(packets). Poisson-only; requires NodeCount > 0 (a
	// streaming run may have no materialized schedule to take endpoints
	// from). The counter-based stream draws a different (equally valid)
	// arrival sequence than the materialized generator for the same seed,
	// so a family picks one form and keeps it.
	Streaming bool

	// OnMean/OffMean are the mean burst/silence durations in seconds
	// (ShapeOnOff). Load stays the long-run offered load: Build scales
	// the instantaneous ON rate by (OnMean+OffMean)/OnMean, so the load
	// axis is comparable with always-on shapes.
	OnMean, OffMean float64

	// Fairness-cohort fields (ShapeCohorts).
	Cohorts  int
	Parallel int
	// BgLoad is the Poisson background load that keeps resources
	// contended under the cohorts (§6.2.5).
	BgLoad float64
}

// cohortIDBase re-IDs cohort packets above any plausible background
// range so the two sub-workloads cannot collide.
const cohortIDBase = 1_000_000

// Build materializes the workload over the given schedule using seed.
func (ws WorkloadSpec) Build(sched *trace.Schedule, seed int64) packet.Workload {
	return ws.buildOver(sched.Nodes(), sched.Duration, seed)
}

// endpoints resolves the workload's endpoint set: 0..NodeCount-1 when
// declared, the fallback set (schedule or plan nodes) otherwise.
func (ws WorkloadSpec) endpoints(fallback []packet.NodeID) []packet.NodeID {
	if ws.NodeCount <= 0 {
		return fallback
	}
	nodes := make([]packet.NodeID, ws.NodeCount)
	for i := range nodes {
		nodes[i] = packet.NodeID(i)
	}
	return nodes
}

// genConfig assembles the generator config over a resolved endpoint set
// and horizon.
func (ws WorkloadSpec) genConfig(nodes []packet.NodeID, duration float64) packet.GenConfig {
	rate := ws.Load
	if ws.PerPair && len(nodes) > 1 {
		rate = ws.Load / float64(len(nodes)-1)
	}
	return packet.GenConfig{
		Nodes:                 nodes,
		PacketsPerHourPerDest: rate,
		LoadWindow:            ws.Window,
		Duration:              duration,
		PacketSize:            ws.PacketBytes,
		Deadline:              ws.Deadline,
		FirstID:               1,
	}
}

// BuildSource returns the streaming form of the workload. Poisson-only:
// the lazy per-pair arrival streams have no on-off or cohort analogue.
func (ws WorkloadSpec) BuildSource(duration float64, seed int64) packet.Source {
	if ws.Shape != ShapePoisson {
		panic(fmt.Sprintf("scenario: streaming workload requires ShapePoisson, got %v", ws.Shape))
	}
	if ws.NodeCount <= 0 {
		panic("scenario: streaming workload requires NodeCount > 0")
	}
	gc := ws.genConfig(ws.endpoints(nil), duration)
	return packet.NewPoissonSource(gc, uint64(seed))
}

func (ws WorkloadSpec) buildOver(fallback []packet.NodeID, duration float64, seed int64) packet.Workload {
	nodes := ws.endpoints(fallback)
	gc := ws.genConfig(nodes, duration)
	switch ws.Shape {
	case ShapePoisson:
		return packet.Generate(gc, rand.New(rand.NewSource(seed)))
	case ShapeOnOff:
		if ws.OnMean > 0 && ws.OffMean > 0 {
			gc.PacketsPerHourPerDest *= (ws.OnMean + ws.OffMean) / ws.OnMean
		}
		return packet.GenerateOnOff(gc, ws.OnMean, ws.OffMean, rand.New(rand.NewSource(seed)))
	case ShapeCohorts:
		bg := gc
		bg.PacketsPerHourPerDest = ws.BgLoad
		bg.Deadline = 0
		w := packet.Generate(bg, rand.New(rand.NewSource(seed+99)))
		cohorts := packet.GenerateParallel(nodes, ws.Cohorts, ws.Parallel,
			duration/10, ws.PacketBytes,
			rand.New(rand.NewSource(seed*17+int64(ws.Parallel))))
		for i, cp := range cohorts {
			cp.ID = packet.ID(cohortIDBase + i)
		}
		w = append(w, cohorts...)
		w.Sort()
		return w
	default:
		panic(fmt.Sprintf("scenario: unknown workload shape %v", ws.Shape))
	}
}

// HeteroBuffers declares per-node storage classes — a scenario family
// the uniform-buffer harness cannot express. Every SmallEvery-th node
// (by ID) gets SmallBytes of storage; the rest get LargeBytes.
type HeteroBuffers struct {
	Enabled    bool
	SmallBytes int64
	LargeBytes int64
	SmallEvery int
}

// Overrides tweaks the runtime config declaratively. Unlike the old
// free-text modKey closures, an Overrides value is comparable, so two
// scenarios with different tweaks can never collide in a cache.
type Overrides struct {
	// MetaFraction caps in-band metadata when MetaFractionSet (Fig. 8's
	// axis; negative = uncapped, zero = disabled).
	MetaFraction    float64
	MetaFractionSet bool
	// BufferBytes replaces per-node storage when BufferBytesSet
	// (Figs. 19–21's axis).
	BufferBytes    int64
	BufferBytesSet bool
	// Hops overrides the meeting-estimation horizon when positive.
	Hops int
	// Mode replaces the control plane when ModeSet (e.g. the CLI's
	// -global-channel applied to a non-RAPID protocol).
	Mode    routing.ControlMode
	ModeSet bool
	// Hetero assigns per-node storage classes.
	Hetero HeteroBuffers
	// Disrupt replaces the scenario's Disruption spec when DisruptSet —
	// the knob ablation studies use to re-run a family pristine
	// (Disrupt zero) or under a different intensity. Applied by
	// Materialize, not by Apply: disruption is a property of the run,
	// not of the runtime config.
	Disrupt    disrupt.Spec
	DisruptSet bool
	// Workers overrides the run's event-engine worker count when
	// non-zero (routing.Config.Workers semantics: >1 parallel,
	// negative = one per CPU). Output is byte-identical at every
	// setting, so Workers does not change what a scenario computes —
	// only how fast.
	Workers int
}

// Apply folds the overrides into a runtime config.
func (o Overrides) Apply(cfg *routing.Config) {
	if o.MetaFractionSet {
		cfg.MetaFraction = o.MetaFraction
	}
	if o.BufferBytesSet {
		cfg.BufferBytes = o.BufferBytes
	}
	if o.Hops > 0 {
		cfg.Hops = o.Hops
	}
	if o.ModeSet {
		cfg.Mode = o.Mode
	}
	if o.Workers != 0 {
		cfg.Workers = o.Workers
	}
	if o.Hetero.Enabled {
		h := o.Hetero
		if h.SmallEvery < 1 {
			h.SmallEvery = 2
		}
		cfg.BufferBytesFor = func(id packet.NodeID) int64 {
			if int(id)%h.SmallEvery == 0 {
				return h.SmallBytes
			}
			return h.LargeBytes
		}
	}
}

// Scenario is one fully specified simulation run. It is a pure value:
// comparable (usable as a map key), copyable, and deterministic — the
// same Scenario always produces byte-identical schedules, workloads and
// summaries.
type Scenario struct {
	// Family names the registry family that produced the scenario
	// (informational; part of the cache identity).
	Family string
	// Tag namespaces the cache (the exp.Scale name; benchmarks use
	// per-iteration tags to defeat memoization).
	Tag      string
	Schedule ScheduleSpec
	Workload WorkloadSpec
	Protocol Proto
	// Metric is RAPID's routing objective (ignored by the baselines).
	Metric Metric
	// Config declares runtime-config overrides.
	Config Overrides
	// Disruption declares the stochastic disruption model (loss,
	// contact failure, churn, jitter; internal/disrupt). The zero value
	// is the pristine network. Config.Disrupt overrides it when set.
	Disruption disrupt.Spec
	// Run is the averaging-seed index; scenarios differing only in Run
	// are independent draws of the same experiment point — including
	// independent disruption realizations (DESIGN.md §10).
	Run int
}

// workloadSeedSalt keeps workload draws decorrelated from simulation
// seeds (the seed harness used the same constant).
const workloadSeedSalt = 0x5ca1ab1e

// Seeds derives every random seed from the scenario identity:
//
//   - DieselNet: base = Day·1000 + Run; the schedule is deterministic in
//     the config, the workload draws from base XOR 0x5ca1ab1e, and the
//     simulation from base.
//   - Synthetic: base = Run + 1; the schedule draws from 31·base, the
//     workload from 77·base, the simulation from base.
//
// The derivation matches the pre-registry harness for the standard
// trace and synthetic sweeps (Figs. 4–14, 16–24), so those figure
// values are stable across the refactor. The deployment and fairness
// arms (Table 3, Fig. 3 "Real", Fig. 15) previously seeded the
// simulator with the bare day index and now share this rule, so their
// reproduced values shift within their expected spread.
func (s Scenario) Seeds() (schedule, workload, sim int64) {
	switch s.Schedule.Source {
	case SourceDieselNet:
		base := int64(s.Schedule.Day)*1000 + int64(s.Run)
		return 0, base ^ workloadSeedSalt, base
	default:
		base := int64(s.Run) + 1
		return base * 31, base * 77, base
	}
}

// defaultRunWorkers is the process-wide engine worker default applied
// by Materialize when neither the scenario's Overrides nor its family
// pinned a count. See SetDefaultRunWorkers.
var defaultRunWorkers int

// SetDefaultRunWorkers sets the engine worker count scenarios run with
// unless they pin their own (the cmd-level -run-workers knob). 0 or 1
// is the serial engine; negative means one worker per CPU. Safe to call
// between runs; not synchronized against concurrently executing
// scenarios.
func SetDefaultRunWorkers(n int) { defaultRunWorkers = n }

// baseConfig is the runtime config before protocol arm and overrides.
func (s Scenario) baseConfig() routing.Config {
	cfg := routing.Config{
		Mode:         routing.ControlInBand,
		MetaFraction: -1,
		Hops:         3,
	}
	switch s.Schedule.Source {
	case SourceDieselNet:
		cfg.DefaultTransferBytes = s.Schedule.Diesel.MeanTransferBytes
	case SourceConstellation:
		cfg.DefaultTransferBytes = float64(s.Schedule.ISLBytes)
		if s.Schedule.PassWindow > 0 && s.Schedule.ISLWindow > 0 {
			// Windowed plans size opportunities as rate × window.
			cfg.DefaultTransferBytes = s.Schedule.ISLRateBps * s.Schedule.ISLWindow
		}
	default:
		cfg.DefaultTransferBytes = float64(s.Schedule.TransferBytes)
	}
	return cfg
}

// Disrupt resolves the effective disruption spec: the Config override
// when set, the scenario's own Disruption otherwise.
func (s Scenario) Disrupt() disrupt.Spec {
	if s.Config.DisruptSet {
		return s.Config.Disrupt
	}
	return s.Disruption
}

// Materialize builds the runnable form: schedule, workload, router
// factory and final config, with all seeds derived. The disruption
// seed derives from the simulation seed, so replications (distinct Run
// values) realize independent disruption streams.
func (s Scenario) Materialize() routing.Scenario {
	schedSeed, wSeed, simSeed := s.Seeds()
	factory, cfg := Arm(s.Protocol, s.Metric, s.baseConfig())
	s.Config.Apply(&cfg)
	if cfg.Workers == 0 {
		// The process-wide default (the -run-workers flag) applies only
		// where the scenario did not pin a count. It lives outside the
		// Scenario value — runs are byte-identical at every worker
		// count, so it cannot change what a cached result would hold.
		cfg.Workers = defaultRunWorkers
	}
	rs := routing.Scenario{Factory: factory, Cfg: cfg, Seed: simSeed}
	var horizon float64
	if s.Schedule.lazyPlan() {
		rs.Plan = s.Schedule.BuildPlan()
		rs.MergePlanWindows = s.Schedule.MergeWindows
		horizon = rs.Plan.Duration
	} else {
		rs.Schedule = s.Schedule.Build(schedSeed)
		horizon = rs.Schedule.Duration
	}
	if s.Workload.Streaming {
		rs.Source = s.Workload.BuildSource(horizon, wSeed)
	} else if rs.Schedule != nil {
		rs.Workload = s.Workload.Build(rs.Schedule, wSeed)
	} else {
		rs.Workload = s.Workload.buildOver(rs.Plan.Nodes(), horizon, wSeed)
	}
	if d := s.Disrupt(); d.Enabled {
		rs.Disrupt = d
		rs.DisruptSeed = disrupt.DeriveSeed(simSeed)
	}
	return rs
}

// Execute materializes and runs the scenario, returning the full
// collector and the run horizon.
func (s Scenario) Execute() (*metrics.Collector, float64) {
	rs := s.Materialize()
	horizon := 0.0
	if rs.Schedule != nil {
		horizon = rs.Schedule.Duration
	} else if rs.Plan != nil {
		horizon = rs.Plan.Duration
	}
	return routing.Run(rs), horizon
}

// Summary runs the scenario and reduces it to the reported metrics.
func (s Scenario) Summary() metrics.Summary {
	col, horizon := s.Execute()
	return col.Summarize(horizon)
}

package scenario

import (
	"fmt"
	"sort"
)

// Params scales a family's grid. Families ignore fields they do not
// use; DefaultParams returns a modest grid suitable for interactive
// sweeps.
type Params struct {
	// Tag namespaces the produced scenarios' cache identity.
	Tag string
	// Days is the number of DieselNet days to cover.
	Days int
	// Runs is the number of averaging seeds per grid point.
	Runs int
	// DayHours truncates DieselNet days when positive.
	DayHours float64
	// Loads is the load axis (packets per window per destination).
	Loads []float64
	// Protocols restricts the protocol arms (nil = family default).
	Protocols []Proto
	// Nodes and Duration size the synthetic-mobility populations.
	Nodes    int
	Duration float64
	// Planes, SatsPerPlane and Ground size the constellation families;
	// OrbitPeriod is the constellation's orbital period in seconds.
	Planes       int
	SatsPerPlane int
	Ground       int
	OrbitPeriod  float64
	// Disruption knobs of the stochastic families (zero = the family's
	// documented default intensity).
	//
	// LossGrid is lossy-constellation's per-packet loss axis;
	// ContactFailP scales its whole-contact failure arm;
	// ChurnDownMean/ChurnUpMean shape churn-powerlaw's exponential
	// down/up intervals in seconds.
	LossGrid      []float64
	ContactFailP  float64
	ChurnDownMean float64
	ChurnUpMean   float64
}

// DefaultParams returns a small grid: two days, one seed, two loads.
func DefaultParams() Params {
	return Params{
		Tag: "default", Days: 2, Runs: 1, DayHours: 4,
		Loads: []float64{4, 20}, Nodes: 20, Duration: 300,
		Planes: 3, SatsPerPlane: 4, Ground: 2, OrbitPeriod: 120,
	}
}

// Family is a named, documented scenario generator in the registry.
type Family struct {
	Name string
	// Doc is a one-line description shown by `experiments -families`.
	Doc string
	// Gen expands the family into its scenario grid.
	Gen func(p Params) []Scenario
}

var (
	registry     = map[string]Family{}
	registryName []string
)

// Register adds a family to the registry. Registering a duplicate name
// panics: families are package-level declarations, so a collision is a
// programming error.
func Register(f Family) {
	if f.Name == "" || f.Gen == nil {
		panic("scenario: family must have a name and a generator")
	}
	if _, dup := registry[f.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate family %q", f.Name))
	}
	registry[f.Name] = f
	registryName = append(registryName, f.Name)
}

// Families returns every registered family sorted by name.
func Families() []Family {
	names := append([]string(nil), registryName...)
	sort.Strings(names)
	out := make([]Family, 0, len(names))
	for _, n := range names {
		out = append(out, registry[n])
	}
	return out
}

// Lookup finds a family by name.
func Lookup(name string) (Family, bool) {
	f, ok := registry[name]
	return f, ok
}

// Expand generates the named family's grid or errors on an unknown
// name.
func Expand(name string, p Params) ([]Scenario, error) {
	f, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown family %q", name)
	}
	return f.Gen(p), nil
}

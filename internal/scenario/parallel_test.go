package scenario_test

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"rapid/internal/scenario"
)

// runFingerprint reduces a run to a string capturing everything figure
// generation can observe: the full summary and every per-packet record
// (delivery bit, bit-exact delivery time, hop count) in generation
// order. Two runs with equal fingerprints produce byte-identical
// figures.
func runFingerprint(s scenario.Scenario) string {
	col, horizon := s.Execute()
	var b strings.Builder
	fmt.Fprintf(&b, "summary %+v\n", col.Summarize(horizon))
	for _, r := range col.Records() {
		fmt.Fprintf(&b, "pkt %d %v %x %d\n",
			r.P.ID, r.Delivered, math.Float64bits(r.DeliveredAt), r.Hops)
	}
	return b.String()
}

// TestParallelWorkersEquivalence pins the parallel engine's defining
// property across every registered family at tiny scale: the same
// scenario run at Workers ∈ {1, 2, 8} is byte-identical — identical
// summaries and identical per-packet records — whether the run actually
// parallelizes (RAPID/epidemic point contacts, churned runs) or falls
// back to the serial loop (CGR's shared planner, Bernoulli loss,
// windowed contacts between barriers). Disruption-enabled families
// (lossy-constellation, churn-powerlaw) are part of the registry and
// therefore of this sweep.
func TestParallelWorkersEquivalence(t *testing.T) {
	p := metamorphicParams()
	p.Tag = "parallel-equiv"
	p.Protocols = []scenario.Proto{scenario.ProtoRapid, scenario.ProtoEpidemic}
	for _, fam := range scenario.Families() {
		scs, err := scenario.Expand(fam.Name, p)
		if err != nil {
			t.Fatalf("%s: %v", fam.Name, err)
		}
		if len(scs) == 0 {
			t.Errorf("%s: expanded to no scenarios", fam.Name)
			continue
		}
		// The registry's grids repeat structure across points; three
		// scenarios per family keep the sweep inside the test budget
		// while still covering each family's schedule and workload kind.
		if len(scs) > 3 {
			scs = scs[:3]
		}
		for _, s := range scs {
			s := s
			t.Run(fmt.Sprintf("%s/%s", fam.Name, s.Protocol), func(t *testing.T) {
				t.Parallel()
				serial := s
				serial.Config.Workers = 1
				want := runFingerprint(serial)
				for _, workers := range []int{2, 8} {
					par := s
					par.Config.Workers = workers
					if got := runFingerprint(par); got != want {
						t.Fatalf("workers=%d diverged from serial:\n%s",
							workers, firstDiff(want, got))
					}
				}
			})
		}
	}
}

// firstDiff renders the first differing fingerprint line for a readable
// failure.
func firstDiff(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(w) && i < len(g); i++ {
		if w[i] != g[i] {
			return fmt.Sprintf("line %d:\n  serial:   %s\n  parallel: %s", i, w[i], g[i])
		}
	}
	return fmt.Sprintf("lengths differ: serial %d lines, parallel %d", len(w), len(g))
}

// TestWorkersOverride pins the Overrides plumbing: a Workers override
// lands in the materialized config, and the -run-workers process
// default applies exactly when nothing else pinned a count.
func TestWorkersOverride(t *testing.T) {
	p := metamorphicParams()
	scs, err := scenario.Expand("synth-exponential", p)
	if err != nil {
		t.Fatal(err)
	}
	s := scs[0]
	if rs := s.Materialize(); rs.Cfg.Workers != 0 {
		t.Fatalf("default Workers = %d, want 0", rs.Cfg.Workers)
	}
	s.Config.Workers = 4
	if rs := s.Materialize(); rs.Cfg.Workers != 4 {
		t.Fatalf("override Workers = %d, want 4", rs.Cfg.Workers)
	}
	scenario.SetDefaultRunWorkers(-1)
	defer scenario.SetDefaultRunWorkers(0)
	if rs := s.Materialize(); rs.Cfg.Workers != 4 {
		t.Fatalf("override beats default: Workers = %d, want 4", rs.Cfg.Workers)
	}
	s.Config.Workers = 0
	if rs := s.Materialize(); rs.Cfg.Workers != -1 {
		t.Fatalf("process default Workers = %d, want -1", rs.Cfg.Workers)
	}
}

package scenario

import (
	"testing"

	"rapid/internal/routing"
	"rapid/internal/routing/optimal"
)

// cgrFamilyParams is a shrunk cgr-constellation grid point: small
// enough for the unit-test budget, large enough that relaying through
// the space segment is the only way ground traffic moves.
func cgrFamilyParams() Params {
	return Params{
		Tag: "cgr-test", Runs: 1, Loads: []float64{2},
		Planes: 4, SatsPerPlane: 6, Ground: 4, OrbitPeriod: 240,
		Duration: 240,
	}
}

// TestCGRFamilyBracketsBaselinesAndOracle is the family's acceptance
// gate: over the deterministic orbital contact plan, plan-ahead CGR
// must deliver at least as much as every reactive arm in the family's
// lineup, and no more than the offline earliest-arrival oracle solving
// the same materialized schedule and workload.
func TestCGRFamilyBracketsBaselinesAndOracle(t *testing.T) {
	scs, err := Expand("cgr-constellation", cgrFamilyParams())
	if err != nil {
		t.Fatal(err)
	}
	delivered := map[Proto]int{}
	var generated int
	for _, s := range scs {
		sum := s.Summary()
		delivered[s.Protocol] = sum.Delivered
		generated = sum.Generated
	}
	cgrDelivered, ok := delivered[ProtoCGR]
	if !ok {
		t.Fatal("family lineup is missing the CGR arm")
	}
	if generated == 0 {
		t.Fatal("empty workload — the family grid produced no traffic")
	}
	for proto, d := range delivered {
		if proto == ProtoCGR {
			continue
		}
		if cgrDelivered < d {
			t.Errorf("CGR delivered %d < reactive arm %s's %d", cgrDelivered, proto, d)
		}
	}

	// The oracle solves the identical materialized schedule + workload
	// (CGR's scenario; all arms share the schedule spec and seeds).
	var cgrScenario *Scenario
	for i := range scs {
		if scs[i].Protocol == ProtoCGR {
			cgrScenario = &scs[i]
			break
		}
	}
	rs := cgrScenario.Materialize()
	res := optimal.Solve(rs.Schedule, rs.Workload, optimal.Options{})
	oracleDelivered := 0
	for _, d := range res.Deliveries {
		if d.Delivered {
			oracleDelivered++
		}
	}
	if cgrDelivered > oracleDelivered {
		t.Errorf("CGR delivered %d > offline oracle's %d — the oracle must upper-bound every online protocol",
			cgrDelivered, oracleDelivered)
	}
	t.Logf("generated %d: oracle %d >= CGR %d >= reactive %v",
		generated, oracleDelivered, cgrDelivered, delivered)
}

// TestCGRPolicyArmsNoPristineRegression pins the allocation-policy
// arms to the classic baseline on a pristine (disruption-free)
// constellation grid: a policy that helps under loss must not cost
// deliveries when the plan holds — k-path only detours within its
// slack onto feasible alternates, multi-copy only adds disjoint
// replicas, and admission only refuses traffic the capacity view says
// cannot fit.
func TestCGRPolicyArmsNoPristineRegression(t *testing.T) {
	p := cgrFamilyParams()
	p.Protocols = []Proto{ProtoCGR, ProtoCGRK, ProtoCGRMulti, ProtoCGRAdmit}
	scs, err := Expand("cgr-constellation", p)
	if err != nil {
		t.Fatal(err)
	}
	delivered := map[Proto]int{}
	for _, s := range scs {
		sum := s.Summary()
		if sum.Generated == 0 {
			t.Fatalf("%s: empty workload", s.Protocol)
		}
		delivered[s.Protocol] = sum.Delivered
	}
	base := delivered[ProtoCGR]
	if base == 0 {
		t.Fatal("classic CGR delivered nothing — the grid point is vacuous")
	}
	for _, proto := range []Proto{ProtoCGRK, ProtoCGRMulti, ProtoCGRAdmit} {
		if delivered[proto] < base {
			t.Errorf("%s delivered %d < classic CGR's %d on the pristine grid", proto, delivered[proto], base)
		}
	}
	t.Logf("pristine deliveries: %v", delivered)
}

// TestAllProtosHaveArms pins the registration contract: every arm
// declared through newProto must resolve to a router factory, so a new
// Proto cannot exist without both an Arm case and (via AllProtos) a
// slot in the cross-protocol invariant harness.
func TestAllProtosHaveArms(t *testing.T) {
	protos := AllProtos()
	if len(protos) < 10 {
		t.Fatalf("AllProtos lists %d arms, expected at least the 10 shipped ones", len(protos))
	}
	for _, p := range protos {
		factory, _ := Arm(p, 0, routing.Config{})
		if factory == nil {
			t.Errorf("arm %q resolved to a nil factory", p)
		}
		if factory != nil && factory(0) == nil {
			t.Errorf("arm %q built a nil router", p)
		}
	}
}

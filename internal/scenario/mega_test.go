package scenario

import (
	"testing"

	"rapid/internal/core"
)

// megaParams is a miniature mega-constellation grid: the family's lazy
// plan + streaming workload wiring at unit-test scale.
func megaParams() Params {
	return Params{
		Tag: "mega-test", Runs: 1, Loads: []float64{2},
		Planes: 3, SatsPerPlane: 4, Ground: 3,
		OrbitPeriod: 240, Duration: 240,
	}
}

func TestMegaConstellationFamilyWiring(t *testing.T) {
	scs, err := Expand("mega-constellation", megaParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) == 0 {
		t.Fatal("family expanded to no scenarios")
	}
	for _, s := range scs {
		if s.Protocol != ProtoRapid {
			t.Errorf("default protocol arm is %v, want RAPID-only", s.Protocol)
		}
		if !s.Schedule.Lazy || !s.Workload.Streaming {
			t.Fatalf("mega scenario is not lazy+streaming: %+v", s)
		}
		rs := s.Materialize()
		if rs.Schedule != nil {
			t.Error("lazy scenario materialized a schedule")
		}
		if rs.Plan == nil {
			t.Fatal("lazy scenario carries no contact plan")
		}
		if rs.Source == nil {
			t.Fatal("streaming scenario carries no packet source")
		}
		if rs.Workload != nil {
			t.Error("streaming scenario also materialized a workload")
		}
		sum := s.Summary()
		if sum.Generated == 0 {
			t.Error("mega run generated no packets")
		}
		if sum.Delivered == 0 {
			t.Error("mega run delivered nothing")
		}
	}
}

// TestLazySpecMatchesMaterialized pins the scenario-layer equivalence:
// with the workload held identical (materialized, NodeCount-pinned),
// flipping only ScheduleSpec.Lazy must not change the summary — the
// plan cursor is a layout change, not a semantic one.
func TestLazySpecMatchesMaterialized(t *testing.T) {
	p := megaParams()
	base := Scenario{
		Family: "lazy-equiv", Tag: "lazy-equiv",
		Schedule: ConstellationSchedule(p),
		Workload: constellationWorkload(2, p.Ground, p.OrbitPeriod),
		Protocol: ProtoRapid, Metric: NormalizeMetric(ProtoRapid, core.AvgDelay),
		Config: constellationOverrides(),
	}
	base.Schedule.Duration = p.Duration

	lazy := base
	lazy.Schedule.Lazy = true

	got, want := lazy.Summary(), base.Summary()
	if got != want {
		t.Errorf("lazy spec diverged from materialized spec:\n  materialized: %+v\n  lazy:         %+v", want, got)
	}
	if want.Generated == 0 || want.Delivered == 0 {
		t.Fatalf("equivalence vacuous: baseline summary %+v", want)
	}
}

// TestLazyFallsBackOutsideConstellation: Lazy on a spec that cannot run
// as a pure plan (jitter, perturbation, non-constellation source) is
// ignored rather than honored incorrectly.
func TestLazyFallsBackToMaterialized(t *testing.T) {
	p := megaParams()
	ss := ConstellationSchedule(p)
	ss.Duration = p.Duration
	ss.Lazy = true
	ss.ConstelJitter = 0.05
	s := Scenario{
		Family: "lazy-fallback", Tag: "lazy-fallback",
		Schedule: ss,
		Workload: constellationWorkload(2, p.Ground, p.OrbitPeriod),
		Protocol: ProtoRapid, Metric: NormalizeMetric(ProtoRapid, core.AvgDelay),
	}
	rs := s.Materialize()
	if rs.Schedule == nil || rs.Plan != nil {
		t.Error("jittered constellation must materialize its schedule")
	}
}

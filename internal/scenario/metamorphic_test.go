package scenario_test

import (
	"fmt"
	"testing"

	"rapid/internal/disrupt"
	"rapid/internal/scenario"
)

// metamorphicParams keeps every family's grid small enough that the
// full registry sweep stays inside the unit-test budget: one load, one
// replication, two protocol arms, a miniature constellation.
func metamorphicParams() scenario.Params {
	return scenario.Params{
		Tag: "metamorphic", Days: 1, Runs: 1, DayHours: 2,
		Loads: []float64{4}, Nodes: 10, Duration: 240,
		Planes: 2, SatsPerPlane: 3, Ground: 2, OrbitPeriod: 120,
		Protocols: []scenario.Proto{scenario.ProtoRapid, scenario.ProtoCGR},
		LossGrid:  []float64{0.2},
	}
}

// TestMetamorphicZeroDisruption pins the disruption layer's defining
// equivalence for every registered family: a run under an *enabled*
// disruption model at zero intensity (p=0 loss, p=0 contact failure,
// no churn, zero jitter) is indistinguishable — identical summary,
// hence byte-identical figure output — from a run with the layer
// disabled. The enabled-but-zero arm exercises the full decision
// machinery (model construction, per-contact draws, the per-transfer
// loss stream), so any state the layer leaks into the simulation shows
// up here.
func TestMetamorphicZeroDisruption(t *testing.T) {
	p := metamorphicParams()
	for _, fam := range scenario.Families() {
		scs, err := scenario.Expand(fam.Name, p)
		if err != nil {
			t.Fatalf("%s: %v", fam.Name, err)
		}
		if len(scs) == 0 {
			t.Errorf("%s: expanded to no scenarios", fam.Name)
			continue
		}
		for _, s := range scs {
			s := s
			t.Run(fmt.Sprintf("%s/%s/loss=%g", fam.Name, s.Protocol, s.Disruption.PLoss), func(t *testing.T) {
				t.Parallel()
				base := s
				base.Disruption = disrupt.Spec{}
				base.Config.Disrupt, base.Config.DisruptSet = disrupt.Spec{}, false

				zero := base
				zero.Disruption = disrupt.Spec{Enabled: true}

				got, want := zero.Summary(), base.Summary()
				if got != want {
					t.Errorf("zero-intensity disruption perturbed the run:\n  disabled: %+v\n  enabled0: %+v", want, got)
				}
			})
		}
	}
}

// TestOverridesDisrupt: the Config override replaces the scenario's own
// Disruption spec — the pristine re-run knob the metamorphic test and
// ablation sweeps rely on.
func TestOverridesDisrupt(t *testing.T) {
	p := metamorphicParams()
	scs, err := scenario.Expand("lossy-constellation", p)
	if err != nil {
		t.Fatal(err)
	}
	s := scs[0]
	if !s.Disruption.Active() {
		t.Fatal("lossy-constellation scenario carries no active disruption")
	}
	if d := s.Disrupt(); d != s.Disruption {
		t.Errorf("without override, Disrupt() = %+v, want the family spec %+v", d, s.Disruption)
	}
	s.Config.Disrupt = disrupt.Spec{Enabled: true, JitterSec: 3}
	s.Config.DisruptSet = true
	if d := s.Disrupt(); d != s.Config.Disrupt {
		t.Errorf("with override, Disrupt() = %+v, want the override %+v", d, s.Config.Disrupt)
	}
	rs := s.Materialize()
	if rs.Disrupt != s.Config.Disrupt {
		t.Errorf("Materialize carried %+v, want the override", rs.Disrupt)
	}
	// And an override of the zero spec disables the model outright.
	s.Config.Disrupt = disrupt.Spec{}
	if rs := s.Materialize(); rs.Disrupt.Enabled {
		t.Error("zero override failed to disable the disruption model")
	}
}

// TestDisruptionSeedsIndependent: scenarios differing only in Run
// derive distinct disruption seeds whose models realize distinct
// streams — replications are independent draws, not aliases.
func TestDisruptionSeedsIndependent(t *testing.T) {
	p := metamorphicParams()
	scs, err := scenario.Expand("lossy-constellation", p)
	if err != nil {
		t.Fatal(err)
	}
	s0 := scs[0]
	s1 := s0
	s1.Run = 1
	rs0, rs1 := s0.Materialize(), s1.Materialize()
	if rs0.DisruptSeed == rs1.DisruptSeed {
		t.Fatalf("replications 0 and 1 share disruption seed %d", rs0.DisruptSeed)
	}
	m0 := disrupt.New(rs0.Disrupt, rs0.DisruptSeed)
	m1 := disrupt.New(rs1.Disrupt, rs1.DisruptSeed)
	same := true
	for i := 0; i < 1000 && same; i++ {
		if m0.ContactFails(i) != m1.ContactFails(i) || m0.Lost(uint64(i), 1) != m1.Lost(uint64(i), 1) {
			same = false
		}
	}
	if same {
		t.Error("replications 0 and 1 realized identical disruption streams over 1000 draws")
	}
}

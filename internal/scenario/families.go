package scenario

import (
	"rapid/internal/core"
	"rapid/internal/disrupt"
	"rapid/internal/trace"
)

// DefaultTraceLoad is the deployment's generation rate (§5.1):
// 4 packets per hour per destination. exp.TraceParams.DefaultLoad and
// the deployment family both derive from it so the Table 3 / Fig. 3
// arms stay in lockstep (and keep sharing cache entries).
const DefaultTraceLoad = 4.0

// DefaultTraceWorkload returns the §5.1/Table 4 trace-driven workload:
// Poisson arrivals per hour per on-the-road destination, 1 KB packets,
// 2.7 h deadline.
func DefaultTraceWorkload(load float64) WorkloadSpec {
	return WorkloadSpec{
		Shape: ShapePoisson, Load: load, Window: 3600,
		PacketBytes: 1 << 10, Deadline: 2.7 * 3600,
	}
}

// DefaultSynthBuffer is Table 4's per-node storage (100 KB); synthetic
// families run with it unless they declare their own storage classes.
const DefaultSynthBuffer int64 = 100 << 10

// defaultSynthOverrides applies Table 4's uniform buffer.
func defaultSynthOverrides() Overrides {
	return Overrides{BufferBytes: DefaultSynthBuffer, BufferBytesSet: true}
}

// DefaultSynthWorkload returns Table 4's synthetic workload: the load
// axis is packets per 50 s per destination aggregated over sources
// (PerPair), 1 KB packets, 20 s deadline.
func DefaultSynthWorkload(load float64, nodes int) WorkloadSpec {
	return WorkloadSpec{
		Shape: ShapePoisson, Load: load, Window: 50,
		PacketBytes: 1 << 10, Deadline: 20,
		NodeCount: nodes, PerPair: true,
	}
}

// DefaultSynthSchedule returns Table 4's synthetic mobility spec for
// the given source model.
func DefaultSynthSchedule(src Source, nodes int, duration float64) ScheduleSpec {
	return ScheduleSpec{
		Source: src, Nodes: nodes, Duration: duration,
		MeanMeeting: 60, TransferBytes: 100 << 10,
		Alpha: 1, RankSeed: 42,
	}
}

// DefaultTraceSchedule returns the Table-3-calibrated DieselNet spec.
func DefaultTraceSchedule(day int, dayHours float64) ScheduleSpec {
	return ScheduleSpec{
		Source: SourceDieselNet, Diesel: trace.DefaultDieselNet(),
		Day: day, DayHours: dayHours,
	}
}

// protocols resolves the family's protocol arms.
func protocols(p Params) []Proto {
	if len(p.Protocols) > 0 {
		return p.Protocols
	}
	return ComparisonSet()
}

// grid expands the days×runs×loads×protocols cross product with a
// per-point scenario constructor.
func grid(p Params, days bool, mk func(day, run int, load float64, proto Proto) Scenario) []Scenario {
	nd := p.Days
	if !days || nd < 1 {
		nd = 1
	}
	var out []Scenario
	for _, proto := range protocols(p) {
		for _, load := range p.Loads {
			for day := 0; day < nd; day++ {
				for run := 0; run < p.Runs; run++ {
					out = append(out, mk(day, run, load, proto))
				}
			}
		}
	}
	return out
}

func init() {
	Register(Family{
		Name: "trace-comparison",
		Doc:  "DieselNet day × load grid over the §6.1 comparison set (Figs. 4–7)",
		Gen: func(p Params) []Scenario {
			return grid(p, true, func(day, run int, load float64, proto Proto) Scenario {
				return Scenario{
					Family: "trace-comparison", Tag: p.Tag,
					Schedule: DefaultTraceSchedule(day, p.DayHours),
					Workload: DefaultTraceWorkload(load),
					Protocol: proto, Metric: NormalizeMetric(proto, core.AvgDelay),
					Run: run,
				}
			})
		},
	})
	Register(Family{
		Name: "synth-exponential",
		Doc:  "uniform exponential mobility × load grid (Figs. 22–24)",
		Gen:  func(p Params) []Scenario { return synthFamily("synth-exponential", SourceExponential, p) },
	})
	Register(Family{
		Name: "synth-powerlaw",
		Doc:  "popularity-skewed power-law mobility × load grid (Figs. 16–18)",
		Gen:  func(p Params) []Scenario { return synthFamily("synth-powerlaw", SourcePowerLaw, p) },
	})
	Register(Family{
		Name: "hetero-buffers",
		Doc:  "power-law mobility where every other node has a tiny buffer — per-node storage classes the uniform-buffer harness cannot express",
		Gen: func(p Params) []Scenario {
			return grid(p, false, func(_, run int, load float64, proto Proto) Scenario {
				return Scenario{
					Family: "hetero-buffers", Tag: p.Tag,
					Schedule: DefaultSynthSchedule(SourcePowerLaw, p.Nodes, p.Duration),
					Workload: DefaultSynthWorkload(load, p.Nodes),
					Protocol: proto, Metric: NormalizeMetric(proto, core.AvgDelay),
					Config: Overrides{Hetero: HeteroBuffers{
						Enabled:    true,
						SmallBytes: 10 << 10,
						LargeBytes: 100 << 10,
						SmallEvery: 2,
					}},
					Run: run,
				}
			})
		},
	})
	Register(Family{
		Name: "bursty-onoff",
		Doc:  "exponential mobility under a bursty on-off workload (30 s bursts, 120 s silences) — a traffic shape the Poisson-only harness cannot express",
		Gen: func(p Params) []Scenario {
			return grid(p, false, func(_, run int, load float64, proto Proto) Scenario {
				w := DefaultSynthWorkload(load, p.Nodes)
				w.Shape = ShapeOnOff
				w.OnMean, w.OffMean = 30, 120
				return Scenario{
					Family: "bursty-onoff", Tag: p.Tag,
					Schedule: DefaultSynthSchedule(SourceExponential, p.Nodes, p.Duration),
					Workload: w,
					Protocol: proto, Metric: NormalizeMetric(proto, core.AvgDelay),
					Config: defaultSynthOverrides(),
					Run:    run,
				}
			})
		},
	})
	Register(Family{
		Name: "constellation-ground",
		Doc:  "planes × sats orbital constellation relaying ground-station traffic over a deterministic periodic contact plan",
		Gen: func(p Params) []Scenario {
			return grid(p, false, func(_, run int, load float64, proto Proto) Scenario {
				return Scenario{
					Family: "constellation-ground", Tag: p.Tag,
					Schedule: ConstellationSchedule(p),
					Workload: constellationWorkload(load, p.Ground, p.OrbitPeriod),
					Protocol: proto, Metric: NormalizeMetric(proto, core.AvgDelay),
					Config: constellationOverrides(),
					Run:    run,
				}
			})
		},
	})
	Register(Family{
		Name: "constellation-ring",
		Doc:  "pure inter-satellite ring constellation (no ground segment): gateway satellites exchange traffic across the planes",
		Gen: func(p Params) []Scenario {
			return grid(p, false, func(_, run int, load float64, proto Proto) Scenario {
				ss := ConstellationSchedule(p)
				ss.Ground = 0
				// Satellite IDs interleave planes, so the first
				// min(8, Planes) IDs are one gateway per plane — the
				// cross-plane traffic the family exists to isolate.
				gateways := min(8, p.Planes)
				return Scenario{
					Family: "constellation-ring", Tag: p.Tag,
					Schedule: ss,
					Workload: constellationWorkload(load, gateways, p.OrbitPeriod),
					Protocol: proto, Metric: NormalizeMetric(proto, core.AvgDelay),
					Config: constellationOverrides(),
					Run:    run,
				}
			})
		},
	})
	Register(Family{
		Name: "constellation-passes",
		Doc:  "orbital constellation with duration-aware pass windows: elevation-driven ground-pass durations and per-pass link rates, streamed transfers, radio sharing across overlapping windows",
		Gen: func(p Params) []Scenario {
			return grid(p, false, func(_, run int, load float64, proto Proto) Scenario {
				return Scenario{
					Family: "constellation-passes", Tag: p.Tag,
					Schedule: PassesSchedule(p),
					Workload: constellationWorkload(load, p.Ground, p.OrbitPeriod),
					Protocol: proto, Metric: NormalizeMetric(proto, core.AvgDelay),
					Config: constellationOverrides(),
					Run:    run,
				}
			})
		},
	})
	Register(Family{
		Name: "asym-uplink",
		Doc:  "uplink-constrained constellation: ground passes run an order of magnitude slower than the inter-satellite links, so the rate-asymmetric access windows — not the space segment — bound delivery",
		Gen: func(p Params) []Scenario {
			return grid(p, false, func(_, run int, load float64, proto Proto) Scenario {
				ss := PassesSchedule(p)
				// The asymmetry: ISLs keep their fast rate, the access
				// links drop to a trickle (16× slower at zenith), as with
				// low-power IoT uplinks under a wideband space segment.
				ss.GroundRateBps = asymUplinkRateBps
				return Scenario{
					Family: "asym-uplink", Tag: p.Tag,
					Schedule: ss,
					Workload: constellationWorkload(load, p.Ground, p.OrbitPeriod),
					Protocol: proto, Metric: NormalizeMetric(proto, core.AvgDelay),
					Config: constellationOverrides(),
					Run:    run,
				}
			})
		},
	})
	Register(Family{
		Name: "cgr-constellation",
		Doc:  "plan-ahead CGR versus the reactive comparison set over the deterministic orbital contact plan — the offline oracle (optimal.Solve on the same materialized schedule) brackets both from above",
		Gen: func(p Params) []Scenario {
			if len(p.Protocols) == 0 {
				p.Protocols = CGRComparisonSet()
			}
			return grid(p, false, func(_, run int, load float64, proto Proto) Scenario {
				return Scenario{
					Family: "cgr-constellation", Tag: p.Tag,
					Schedule: ConstellationSchedule(p),
					Workload: constellationWorkload(load, p.Ground, p.OrbitPeriod),
					Protocol: proto, Metric: NormalizeMetric(proto, core.AvgDelay),
					Config: constellationOverrides(),
					Run:    run,
				}
			})
		},
	})
	Register(Family{
		Name: "lossy-constellation",
		Doc:  "constellation plan under Bernoulli packet loss and stochastic whole-contact failures, swept over a loss-probability axis — where CGR's plan-ahead assumptions meet contacts that silently break",
		Gen: func(p Params) []Scenario {
			if len(p.Protocols) == 0 {
				p.Protocols = CGRComparisonSet()
			}
			lossGrid := p.LossGrid
			if len(lossGrid) == 0 {
				lossGrid = DefaultLossGrid()
			}
			failP := p.ContactFailP
			if failP == 0 {
				failP = LossyDefaultContactFailP
			}
			var out []Scenario
			for _, pLoss := range lossGrid {
				spec := disrupt.Spec{Enabled: true, PLoss: pLoss, PContactFail: failP}
				out = append(out, grid(p, false, func(_, run int, load float64, proto Proto) Scenario {
					return Scenario{
						Family: "lossy-constellation", Tag: p.Tag,
						Schedule: ConstellationSchedule(p),
						Workload: constellationWorkload(load, p.Ground, p.OrbitPeriod),
						Protocol: proto, Metric: NormalizeMetric(proto, core.AvgDelay),
						Config:     constellationOverrides(),
						Disruption: spec,
						Run:        run,
					}
				})...)
			}
			return out
		},
	})
	Register(Family{
		Name: "cgr-policies",
		Doc:  "CGR allocation policies head-to-head over the lossy constellation plan — single-copy, k-path widest-within-slack, bounded multi-copy over disjoint alternates, GMA-style admission — with RAPID as the multi-copy utility-driven reference, swept over the loss axis",
		Gen: func(p Params) []Scenario {
			if len(p.Protocols) == 0 {
				p.Protocols = CGRPolicySet()
			}
			lossGrid := p.LossGrid
			if len(lossGrid) == 0 {
				lossGrid = DefaultLossGrid()
			}
			failP := p.ContactFailP
			if failP == 0 {
				failP = LossyDefaultContactFailP
			}
			var out []Scenario
			for _, pLoss := range lossGrid {
				spec := disrupt.Spec{Enabled: true, PLoss: pLoss, PContactFail: failP}
				out = append(out, grid(p, false, func(_, run int, load float64, proto Proto) Scenario {
					return Scenario{
						Family: "cgr-policies", Tag: p.Tag,
						Schedule: ConstellationSchedule(p),
						Workload: constellationWorkload(load, p.Ground, p.OrbitPeriod),
						Protocol: proto, Metric: NormalizeMetric(proto, core.AvgDelay),
						Config:     constellationOverrides(),
						Disruption: spec,
						Run:        run,
					}
				})...)
			}
			return out
		},
	})
	Register(Family{
		Name: "mega-constellation",
		Doc:  "2,000+-node LEO shell run lazily off the periodic contact plan with a streaming ground-segment workload — the scale arm of the dense routing state, plan cursor and counter-based Poisson source",
		Gen: func(p Params) []Scenario {
			// RAPID-only by default: the point of the family is hot-path
			// scale, not another protocol comparison.
			if len(p.Protocols) == 0 {
				p.Protocols = []Proto{ProtoRapid}
			}
			return grid(p, false, func(_, run int, load float64, proto Proto) Scenario {
				ss := ConstellationSchedule(p)
				ss.Lazy = true
				w := constellationWorkload(load, p.Ground, p.OrbitPeriod)
				w.Streaming = true
				return Scenario{
					Family: "mega-constellation", Tag: p.Tag,
					Schedule: ss,
					Workload: w,
					Protocol: proto, Metric: NormalizeMetric(proto, core.AvgDelay),
					Config: constellationOverrides(),
					Run:    run,
				}
			})
		},
	})
	Register(Family{
		Name: "churn-powerlaw",
		Doc:  "power-law mobility with node churn: nodes drop for exponential down intervals during which they neither forward nor receive — popularity-skewed relays keep vanishing under the protocols that lean on them",
		Gen: func(p Params) []Scenario {
			down, up := p.ChurnDownMean, p.ChurnUpMean
			if down <= 0 || up <= 0 {
				down, up = ChurnDefaultDownMean, ChurnDefaultUpMean
			}
			spec := disrupt.Spec{Enabled: true, ChurnDownMean: down, ChurnUpMean: up}
			return grid(p, false, func(_, run int, load float64, proto Proto) Scenario {
				return Scenario{
					Family: "churn-powerlaw", Tag: p.Tag,
					Schedule: DefaultSynthSchedule(SourcePowerLaw, p.Nodes, p.Duration),
					Workload: DefaultSynthWorkload(load, p.Nodes),
					Protocol: proto, Metric: NormalizeMetric(proto, core.AvgDelay),
					Config:     defaultSynthOverrides(),
					Disruption: spec,
					Run:        run,
				}
			})
		},
	})
	Register(Family{
		Name: "deployment",
		Doc:  "perturbed DieselNet days standing in for the physical deployment (Table 3, Fig. 3's 'Real' arm)",
		Gen: func(p Params) []Scenario {
			var out []Scenario
			for day := 0; day < max(p.Days, 1); day++ {
				out = append(out, Deployment(p.Tag, day, p.DayHours, DefaultTraceLoad))
			}
			return out
		},
	})
}

// synthFamily is the shared shape of the two Table 4 mobility families.
func synthFamily(name string, src Source, p Params) []Scenario {
	return grid(p, false, func(_, run int, load float64, proto Proto) Scenario {
		return Scenario{
			Family: name, Tag: p.Tag,
			Schedule: DefaultSynthSchedule(src, p.Nodes, p.Duration),
			Workload: DefaultSynthWorkload(load, p.Nodes),
			Protocol: proto, Metric: NormalizeMetric(proto, core.AvgDelay),
			Config: defaultSynthOverrides(),
			Run:    run,
		}
	})
}

// ConstellationSchedule returns the family's orbital contact-plan spec
// for the given grid parameters. The plan is jitter-free: every seed
// builds the byte-identical schedule (the defining property of a
// deterministic contact plan).
func ConstellationSchedule(p Params) ScheduleSpec {
	return ScheduleSpec{
		Source: SourceConstellation,
		Planes: p.Planes, SatsPerPlane: p.SatsPerPlane, Ground: p.Ground,
		OrbitPeriod: p.OrbitPeriod, Duration: p.Duration,
		ISLBytes: 64 << 10, GroundBytes: 128 << 10,
	}
}

// Default intensities of the stochastic disruption families
// (overridable through Params).
const (
	// LossyDefaultContactFailP is lossy-constellation's whole-contact
	// failure probability: one pass in ten silently never happens.
	LossyDefaultContactFailP = 0.1
	// ChurnDefaultDownMean and ChurnDefaultUpMean keep a node dark
	// roughly a quarter of the time, in outages long enough to straddle
	// several meetings at the synthetic 60 s inter-meeting scale.
	ChurnDefaultDownMean = 40.0
	ChurnDefaultUpMean   = 120.0
)

// DefaultLossGrid is lossy-constellation's loss-probability axis, from
// no packet loss up to a third of all transfers lost. The
// whole-contact failure arm stays constant across the axis (a
// controlled variable), so the x=0 point is the loss-free baseline of
// a *failing* plan, not a pristine run — re-run with
// Overrides.Disrupt zeroed for the pristine reference.
func DefaultLossGrid() []float64 { return []float64{0, 0.05, 0.15, 0.3} }

// asymUplinkRateBps is the asym-uplink family's zenith access-link
// rate: 16× below groundRateBps, the order-of-magnitude gap between a
// low-power uplink and the wideband space segment.
const asymUplinkRateBps = 1 << 10

// Window shaping of the duration-aware constellation families, as
// fractions of the orbital period: a zenith ground pass stays in view
// for a tenth of an orbit, an ISL window for a twentieth.
const (
	passWindowFrac = 0.1
	islWindowFrac  = 0.05
	groundRateBps  = 16 << 10
	islRateBps     = 8 << 10
)

// PassesSchedule returns the windowed-contact constellation spec: the
// point-plan geometry of ConstellationSchedule with elevation-driven
// pass windows and finite link rates layered on.
func PassesSchedule(p Params) ScheduleSpec {
	ss := ConstellationSchedule(p)
	ss.PassWindow = passWindowFrac * p.OrbitPeriod
	ss.GroundRateBps = groundRateBps
	ss.ISLWindow = islWindowFrac * p.OrbitPeriod
	ss.ISLRateBps = islRateBps
	return ss
}

// constellationWorkload offers Poisson traffic among the first
// `endpoints` node IDs (the ground segment, or the gateway satellites
// of the ring family), deadlined at one orbital period.
func constellationWorkload(load float64, endpoints int, orbitPeriod float64) WorkloadSpec {
	return WorkloadSpec{
		Shape: ShapePoisson, Load: load, Window: 50,
		PacketBytes: 1 << 10, Deadline: orbitPeriod,
		NodeCount: endpoints, PerPair: true,
	}
}

// constellationOverrides sizes per-node storage: satellites buffer more
// than the 100 KB bus default but remain finite, so storage pressure —
// and RAPID's utility-driven eviction — stays in play at scale.
func constellationOverrides() Overrides {
	return Overrides{BufferBytes: 256 << 10, BufferBytesSet: true}
}

// Deployment returns the perturbed-schedule scenario of the Fig. 3
// "Real" arm for one day at the given load.
func Deployment(tag string, day int, dayHours, load float64) Scenario {
	ss := DefaultTraceSchedule(day, dayHours)
	ss.Perturb = true
	pc := trace.DefaultPerturb()
	pc.Seed = int64(day) + 4242
	ss.PerturbCfg = pc
	return Scenario{
		Family: "deployment", Tag: tag,
		Schedule: ss,
		Workload: DefaultTraceWorkload(load),
		Protocol: ProtoRapid, Metric: core.AvgDelay,
	}
}

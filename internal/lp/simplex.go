// Package lp is a small linear/integer programming toolkit: a dense
// two-phase primal simplex solver and a depth-first branch-and-bound
// wrapper for integer variables.
//
// It exists to reproduce the paper's Optimal baseline (Fig. 13), which
// the authors computed with CPLEX on the Appendix-D ILP. The solver is
// exact but dense — suitable for the small instances the paper itself
// was limited to ("these simulations are limited to only 6 packets per
// hour per destination"), and for cross-checking the earliest-arrival
// oracle in internal/routing/optimal on instances both can handle.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is a constraint relation.
type Sense int

const (
	// LE is a ≤ constraint.
	LE Sense = iota
	// GE is a ≥ constraint.
	GE
	// EQ is an equality constraint.
	EQ
)

// Constraint is a sparse row: sum_j Coeffs[j]·x_j  (Sense)  RHS.
type Constraint struct {
	Coeffs map[int]float64
	Sense  Sense
	RHS    float64
}

// Problem is a minimization over non-negative variables:
//
//	minimize  c·x
//	subject to constraints, x >= 0, optionally x_j <= Upper[j]
//
// Integer[j] marks variables that SolveILP must drive to integrality.
type Problem struct {
	NumVars     int
	Objective   []float64
	Constraints []Constraint
	// Upper holds optional upper bounds; math.Inf(1) (or a nil slice)
	// means unbounded above.
	Upper []float64
	// Integer marks integrality requirements (used by SolveILP; ignored
	// by SolveLP).
	Integer []bool
}

// Status reports the outcome of a solve.
type Status int

const (
	// Optimal means an optimal solution was found.
	Optimal Status = iota
	// Infeasible means no point satisfies the constraints.
	Infeasible
	// Unbounded means the objective decreases without bound.
	Unbounded
	// Limit means an iteration or node limit stopped the solve.
	Limit
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Limit:
		return "limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is a solve result. X is meaningful only when Status is
// Optimal (or Limit for ILP incumbents).
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
}

const (
	eps          = 1e-9
	maxSimplexIt = 200000
)

// Validate checks structural consistency of the problem.
func (p *Problem) Validate() error {
	if p.NumVars <= 0 {
		return errors.New("lp: problem has no variables")
	}
	if len(p.Objective) != p.NumVars {
		return fmt.Errorf("lp: objective has %d coefficients for %d variables", len(p.Objective), p.NumVars)
	}
	if p.Upper != nil && len(p.Upper) != p.NumVars {
		return fmt.Errorf("lp: upper bounds length %d != %d", len(p.Upper), p.NumVars)
	}
	if p.Integer != nil && len(p.Integer) != p.NumVars {
		return fmt.Errorf("lp: integer flags length %d != %d", len(p.Integer), p.NumVars)
	}
	for i, c := range p.Constraints {
		for j := range c.Coeffs {
			if j < 0 || j >= p.NumVars {
				return fmt.Errorf("lp: constraint %d references variable %d", i, j)
			}
		}
	}
	return nil
}

// SolveLP solves the linear relaxation with a dense two-phase primal
// simplex (Bland's anti-cycling rule after a Dantzig warm period).
func SolveLP(p *Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	t, err := newTableau(p)
	if err != nil {
		return Solution{}, err
	}
	return t.solve(p)
}

// tableau is the dense simplex working state: rows = constraints,
// columns = structural + slack/surplus + artificial variables.
type tableau struct {
	m, n    int // constraints, total columns (excluding RHS)
	a       [][]float64
	b       []float64
	basis   []int
	nStruct int // structural variable count
	artBase int // first artificial column index; -1 if none
}

// newTableau builds the phase-1-ready tableau: every constraint is an
// equality with slack/surplus added, RHS non-negative, and artificial
// variables where no natural basic column exists. Upper bounds become
// extra LE rows.
func newTableau(p *Problem) (*tableau, error) {
	type row struct {
		coeffs map[int]float64
		sense  Sense
		rhs    float64
	}
	rows := make([]row, 0, len(p.Constraints)+p.NumVars)
	for _, c := range p.Constraints {
		rows = append(rows, row{c.Coeffs, c.Sense, c.RHS})
	}
	if p.Upper != nil {
		for j, u := range p.Upper {
			if !math.IsInf(u, 1) {
				rows = append(rows, row{map[int]float64{j: 1}, LE, u})
			}
		}
	}
	m := len(rows)
	// Count slack columns.
	slacks := 0
	for _, r := range rows {
		if r.sense != EQ {
			slacks++
		}
	}
	nCols := p.NumVars + slacks + m // worst case: artificial per row
	t := &tableau{
		m: m, nStruct: p.NumVars,
		a:     make([][]float64, m),
		b:     make([]float64, m),
		basis: make([]int, m),
	}
	for i := range t.a {
		t.a[i] = make([]float64, nCols)
	}
	slackCol := p.NumVars
	artCol := p.NumVars + slacks
	t.artBase = artCol
	usedArt := 0
	for i, r := range rows {
		sign := 1.0
		rhs := r.rhs
		sense := r.sense
		if rhs < 0 {
			sign = -1
			rhs = -rhs
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		for j, v := range r.coeffs {
			t.a[i][j] = sign * v
		}
		t.b[i] = rhs
		switch sense {
		case LE:
			t.a[i][slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			t.a[i][slackCol] = -1
			slackCol++
			t.a[i][artCol] = 1
			t.basis[i] = artCol
			artCol++
			usedArt++
		case EQ:
			t.a[i][artCol] = 1
			t.basis[i] = artCol
			artCol++
			usedArt++
		}
	}
	t.n = artCol
	if usedArt == 0 {
		t.artBase = -1
	}
	return t, nil
}

// solve runs phase 1 (if artificials exist) and phase 2.
func (t *tableau) solve(p *Problem) (Solution, error) {
	if t.artBase >= 0 {
		// Phase 1: minimize the sum of artificial variables.
		obj := make([]float64, t.n)
		for j := t.artBase; j < t.n; j++ {
			obj[j] = 1
		}
		st := t.iterate(obj)
		if st == Limit {
			return Solution{Status: Limit}, nil
		}
		if t.phaseObjective(obj) > 1e-7 {
			return Solution{Status: Infeasible}, nil
		}
		// Drive any lingering artificial out of the basis.
		t.expelArtificials()
	}
	// Phase 2: original objective over structural columns; artificial
	// columns are frozen out by making them prohibitively expensive to
	// re-enter (their reduced costs are ignored below by exclusion).
	obj := make([]float64, t.n)
	copy(obj, p.Objective)
	st := t.iteratePhase2(obj)
	switch st {
	case Unbounded:
		return Solution{Status: Unbounded}, nil
	case Limit:
		return Solution{Status: Limit}, nil
	}
	x := make([]float64, p.NumVars)
	for i, bj := range t.basis {
		if bj < p.NumVars {
			x[bj] = t.b[i]
		}
	}
	var objVal float64
	for j, c := range p.Objective {
		objVal += c * x[j]
	}
	return Solution{Status: Optimal, X: x, Objective: objVal}, nil
}

// phaseObjective evaluates obj at the current basic solution.
func (t *tableau) phaseObjective(obj []float64) float64 {
	var v float64
	for i, bj := range t.basis {
		v += obj[bj] * t.b[i]
	}
	return v
}

// expelArtificials pivots basic artificial variables (at value ~0) out
// of the basis when a structural/slack pivot exists; degenerate rows
// whose coefficients are all zero are left (they are vacuous).
func (t *tableau) expelArtificials() {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artBase {
			continue
		}
		for j := 0; j < t.artBase; j++ {
			if math.Abs(t.a[i][j]) > eps {
				t.pivot(i, j)
				break
			}
		}
	}
}

// reducedCosts computes c_j - c_B·B⁻¹A_j for all columns under obj.
func (t *tableau) reducedCosts(obj []float64) []float64 {
	// y_i = obj of basis row i.
	rc := make([]float64, t.n)
	for j := 0; j < t.n; j++ {
		rc[j] = obj[j]
	}
	for i, bj := range t.basis {
		cb := obj[bj]
		if cb == 0 {
			continue
		}
		row := t.a[i]
		for j := 0; j < t.n; j++ {
			rc[j] -= cb * row[j]
		}
	}
	return rc
}

// iterate runs simplex to optimality under obj over all columns.
func (t *tableau) iterate(obj []float64) Status {
	return t.run(obj, t.n)
}

// iteratePhase2 runs simplex excluding artificial columns from entering.
func (t *tableau) iteratePhase2(obj []float64) Status {
	limit := t.n
	if t.artBase >= 0 {
		limit = t.artBase
	}
	return t.run(obj, limit)
}

// run performs primal simplex pivots until optimal, unbounded, or the
// iteration cap. Columns >= colLimit never enter the basis.
func (t *tableau) run(obj []float64, colLimit int) Status {
	for it := 0; it < maxSimplexIt; it++ {
		rc := t.reducedCosts(obj)
		// Entering column: Dantzig (most negative), switching to
		// Bland (lowest index) late to guarantee termination.
		enter := -1
		if it < maxSimplexIt/2 {
			best := -eps
			for j := 0; j < colLimit; j++ {
				if rc[j] < best {
					best = rc[j]
					enter = j
				}
			}
		} else {
			for j := 0; j < colLimit; j++ {
				if rc[j] < -eps {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			return Optimal
		}
		// Ratio test (Bland ties: lowest basis index).
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			aij := t.a[i][enter]
			if aij > eps {
				ratio := t.b[i] / aij
				if ratio < bestRatio-eps ||
					(ratio < bestRatio+eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return Unbounded
		}
		t.pivot(leave, enter)
	}
	return Limit
}

// pivot makes column `enter` basic in row `leave`.
func (t *tableau) pivot(leave, enter int) {
	piv := t.a[leave][enter]
	row := t.a[leave]
	inv := 1 / piv
	for j := 0; j < t.n; j++ {
		row[j] *= inv
	}
	t.b[leave] *= inv
	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		f := t.a[i][enter]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for j := 0; j < t.n; j++ {
			ri[j] -= f * row[j]
		}
		t.b[i] -= f * t.b[leave]
		if t.b[i] < 0 && t.b[i] > -1e-11 {
			t.b[i] = 0
		}
	}
	t.basis[leave] = enter
}

package lp

import (
	"math"
)

// BnBOptions tunes the branch-and-bound search.
type BnBOptions struct {
	// MaxNodes caps the number of explored subproblems (<=0: default).
	MaxNodes int
	// IntTol is the integrality tolerance (default 1e-6).
	IntTol float64
}

const defaultMaxNodes = 20000

// SolveILP minimizes the problem with the marked Integer variables
// driven to integrality by depth-first branch and bound over the LP
// relaxation. The result is Optimal when the search completed, Limit
// when the node cap stopped it with an incumbent (X then holds the best
// integral solution found), and Infeasible when no integral point
// exists.
func SolveILP(p *Problem, opts BnBOptions) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = defaultMaxNodes
	}
	if opts.IntTol <= 0 {
		opts.IntTol = 1e-6
	}
	if p.Integer == nil {
		return SolveLP(p)
	}

	// Working copies of bounds refined during the search. Lower bounds
	// are encoded as extra GE constraints per node (kept in a stack).
	upper := make([]float64, p.NumVars)
	if p.Upper != nil {
		copy(upper, p.Upper)
	} else {
		for i := range upper {
			upper[i] = math.Inf(1)
		}
	}

	best := Solution{Status: Infeasible, Objective: math.Inf(1)}
	nodes := 0
	exhausted := true

	type bound struct {
		v   int
		lo  float64
		hi  float64
		set bool // true: apply, false: marker
	}

	// Depth-first via explicit recursion.
	var search func(lower, upperB []float64)
	search = func(lower, upperB []float64) {
		if nodes >= opts.MaxNodes {
			exhausted = false
			return
		}
		nodes++
		sub := &Problem{
			NumVars:     p.NumVars,
			Objective:   p.Objective,
			Constraints: p.Constraints,
			Upper:       upperB,
		}
		// Lower bounds ride as GE constraints (sparse, only non-zero).
		var extra []Constraint
		for j, lo := range lower {
			if lo > 0 {
				extra = append(extra, Constraint{Coeffs: map[int]float64{j: 1}, Sense: GE, RHS: lo})
			}
		}
		if len(extra) > 0 {
			sub = &Problem{
				NumVars:     p.NumVars,
				Objective:   p.Objective,
				Constraints: append(append([]Constraint{}, p.Constraints...), extra...),
				Upper:       upperB,
			}
		}
		rel, err := SolveLP(sub)
		if err != nil || rel.Status == Infeasible || rel.Status == Limit {
			if rel.Status == Limit {
				exhausted = false
			}
			return
		}
		if rel.Status == Unbounded {
			// An unbounded relaxation with integer vars: treat as
			// unbounded overall (rare in our formulations).
			best = Solution{Status: Unbounded}
			exhausted = true
			return
		}
		// Bound: prune if the relaxation cannot beat the incumbent.
		if best.Status == Optimal && rel.Objective >= best.Objective-1e-9 {
			return
		}
		// Find the most fractional integer variable.
		branch := -1
		worst := opts.IntTol
		for j := 0; j < p.NumVars; j++ {
			if !p.Integer[j] {
				continue
			}
			f := rel.X[j] - math.Floor(rel.X[j])
			frac := math.Min(f, 1-f)
			if frac > worst {
				worst = frac
				branch = j
			}
		}
		if branch < 0 {
			// Integral: new incumbent.
			x := append([]float64(nil), rel.X...)
			for j := 0; j < p.NumVars; j++ {
				if p.Integer[j] {
					x[j] = math.Round(x[j])
				}
			}
			best = Solution{Status: Optimal, X: x, Objective: rel.Objective}
			return
		}
		v := rel.X[branch]
		// Down branch: x_branch <= floor(v).
		downUpper := append([]float64(nil), upperB...)
		if fl := math.Floor(v); fl < downUpper[branch] {
			downUpper[branch] = fl
		}
		if downUpper[branch] >= 0 {
			search(lower, downUpper)
		}
		// Up branch: x_branch >= ceil(v).
		upLower := append([]float64(nil), lower...)
		if cl := math.Ceil(v); cl > upLower[branch] {
			upLower[branch] = cl
		}
		if math.IsInf(upperB[branch], 1) || upLower[branch] <= upperB[branch] {
			search(upLower, upperB)
		}
	}

	lower := make([]float64, p.NumVars)
	search(lower, upper)

	if best.Status == Optimal && !exhausted {
		best.Status = Limit // incumbent, optimality not proven
	}
	return best, nil
}

package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSimpleLP(t *testing.T) {
	// maximize 3x+2y s.t. x+y<=4, x+3y<=6 => minimize -3x-2y.
	// Optimum at (4,0): objective -12.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{-3, -2},
		Constraints: []Constraint{
			{Coeffs: map[int]float64{0: 1, 1: 1}, Sense: LE, RHS: 4},
			{Coeffs: map[int]float64{0: 1, 1: 3}, Sense: LE, RHS: 6},
		},
	}
	s, err := SolveLP(p)
	if err != nil || s.Status != Optimal {
		t.Fatalf("status=%v err=%v", s.Status, err)
	}
	if !approx(s.Objective, -12, 1e-7) {
		t.Errorf("objective %v want -12", s.Objective)
	}
	if !approx(s.X[0], 4, 1e-7) || !approx(s.X[1], 0, 1e-7) {
		t.Errorf("x=%v want (4,0)", s.X)
	}
}

func TestLPWithGEAndEQ(t *testing.T) {
	// minimize 2x+3y s.t. x+y = 10, x >= 3, y >= 2. Optimum (8,2): 22.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{2, 3},
		Constraints: []Constraint{
			{Coeffs: map[int]float64{0: 1, 1: 1}, Sense: EQ, RHS: 10},
			{Coeffs: map[int]float64{0: 1}, Sense: GE, RHS: 3},
			{Coeffs: map[int]float64{1: 1}, Sense: GE, RHS: 2},
		},
	}
	s, err := SolveLP(p)
	if err != nil || s.Status != Optimal {
		t.Fatalf("status=%v err=%v", s.Status, err)
	}
	if !approx(s.Objective, 22, 1e-7) {
		t.Errorf("objective %v want 22", s.Objective)
	}
}

func TestInfeasibleLP(t *testing.T) {
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: map[int]float64{0: 1}, Sense: GE, RHS: 5},
			{Coeffs: map[int]float64{0: 1}, Sense: LE, RHS: 3},
		},
	}
	s, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Errorf("status %v want infeasible", s.Status)
	}
}

func TestUnboundedLP(t *testing.T) {
	p := &Problem{
		NumVars:   1,
		Objective: []float64{-1}, // maximize x with no bound
		Constraints: []Constraint{
			{Coeffs: map[int]float64{0: 1}, Sense: GE, RHS: 0},
		},
	}
	s, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Errorf("status %v want unbounded", s.Status)
	}
}

func TestUpperBounds(t *testing.T) {
	// minimize -x with x <= 7 via Upper.
	p := &Problem{
		NumVars:   1,
		Objective: []float64{-1},
		Upper:     []float64{7},
	}
	s, err := SolveLP(p)
	if err != nil || s.Status != Optimal {
		t.Fatalf("status=%v err=%v", s.Status, err)
	}
	if !approx(s.X[0], 7, 1e-7) {
		t.Errorf("x=%v want 7", s.X[0])
	}
}

func TestNegativeRHS(t *testing.T) {
	// -x <= -2  <=>  x >= 2; minimize x -> 2.
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: map[int]float64{0: -1}, Sense: LE, RHS: -2},
		},
	}
	s, err := SolveLP(p)
	if err != nil || s.Status != Optimal {
		t.Fatalf("status=%v err=%v", s.Status, err)
	}
	if !approx(s.X[0], 2, 1e-7) {
		t.Errorf("x=%v want 2", s.X[0])
	}
}

func TestValidation(t *testing.T) {
	bad := []*Problem{
		{NumVars: 0},
		{NumVars: 2, Objective: []float64{1}},
		{NumVars: 1, Objective: []float64{1}, Upper: []float64{1, 2}},
		{NumVars: 1, Objective: []float64{1}, Constraints: []Constraint{{Coeffs: map[int]float64{5: 1}, Sense: LE, RHS: 1}}},
		{NumVars: 1, Objective: []float64{1}, Integer: []bool{true, false}},
	}
	for i, p := range bad {
		if _, err := SolveLP(p); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

// Property: the simplex solution satisfies every constraint and is
// never beaten by random feasible points.
func TestLPFeasibilityAndDominance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(4)
		m := 1 + r.Intn(4)
		p := &Problem{NumVars: n, Objective: make([]float64, n)}
		for j := range p.Objective {
			p.Objective[j] = r.Float64()*4 - 2
		}
		// Bounded region: sum x <= K plus random LE rows, x <= 10.
		p.Upper = make([]float64, n)
		for j := range p.Upper {
			p.Upper[j] = 10
		}
		all := map[int]float64{}
		for j := 0; j < n; j++ {
			all[j] = 1
		}
		p.Constraints = append(p.Constraints, Constraint{Coeffs: all, Sense: LE, RHS: 5 + r.Float64()*10})
		for i := 0; i < m; i++ {
			c := map[int]float64{}
			for j := 0; j < n; j++ {
				if r.Float64() < 0.7 {
					c[j] = r.Float64() * 2
				}
			}
			if len(c) == 0 {
				c[0] = 1
			}
			p.Constraints = append(p.Constraints, Constraint{Coeffs: c, Sense: LE, RHS: 1 + r.Float64()*10})
		}
		s, err := SolveLP(p)
		if err != nil || s.Status != Optimal {
			return false
		}
		if !feasible(p, s.X, 1e-6) {
			return false
		}
		// Random feasible points must not beat the optimum.
		for trial := 0; trial < 50; trial++ {
			x := make([]float64, n)
			for j := range x {
				x[j] = r.Float64() * 2
			}
			if !feasible(p, x, 0) {
				continue
			}
			var obj float64
			for j := range x {
				obj += p.Objective[j] * x[j]
			}
			if obj < s.Objective-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func feasible(p *Problem, x []float64, tol float64) bool {
	for j, v := range x {
		if v < -tol {
			return false
		}
		if p.Upper != nil && v > p.Upper[j]+tol {
			return false
		}
	}
	for _, c := range p.Constraints {
		var lhs float64
		for j, v := range c.Coeffs {
			lhs += v * x[j]
		}
		switch c.Sense {
		case LE:
			if lhs > c.RHS+tol {
				return false
			}
		case GE:
			if lhs < c.RHS-tol {
				return false
			}
		case EQ:
			if math.Abs(lhs-c.RHS) > tol+1e-9 {
				return false
			}
		}
	}
	return true
}

func TestKnapsackILP(t *testing.T) {
	// Classic 0/1 knapsack: values 60,100,120 weights 10,20,30 cap 50.
	// Optimum: items 2+3 = 220 (minimize negative value).
	p := &Problem{
		NumVars:   3,
		Objective: []float64{-60, -100, -120},
		Constraints: []Constraint{
			{Coeffs: map[int]float64{0: 10, 1: 20, 2: 30}, Sense: LE, RHS: 50},
		},
		Upper:   []float64{1, 1, 1},
		Integer: []bool{true, true, true},
	}
	s, err := SolveILP(p, BnBOptions{})
	if err != nil || s.Status != Optimal {
		t.Fatalf("status=%v err=%v", s.Status, err)
	}
	if !approx(s.Objective, -220, 1e-6) {
		t.Errorf("objective %v want -220", s.Objective)
	}
	if math.Round(s.X[0]) != 0 || math.Round(s.X[1]) != 1 || math.Round(s.X[2]) != 1 {
		t.Errorf("x=%v want (0,1,1)", s.X)
	}
}

func TestILPMatchesBruteForceOnRandomBinaries(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5) // up to 6 binary vars
		p := &Problem{
			NumVars:   n,
			Objective: make([]float64, n),
			Upper:     make([]float64, n),
			Integer:   make([]bool, n),
		}
		for j := 0; j < n; j++ {
			p.Objective[j] = math.Round(r.Float64()*20 - 10)
			p.Upper[j] = 1
			p.Integer[j] = true
		}
		// One or two random LE constraints.
		for k := 0; k < 1+r.Intn(2); k++ {
			c := map[int]float64{}
			for j := 0; j < n; j++ {
				c[j] = math.Round(r.Float64() * 5)
			}
			p.Constraints = append(p.Constraints, Constraint{
				Coeffs: c, Sense: LE, RHS: math.Round(r.Float64() * float64(3*n)),
			})
		}
		s, err := SolveILP(p, BnBOptions{})
		if err != nil {
			return false
		}
		// Brute force.
		bestObj := math.Inf(1)
		found := false
		for mask := 0; mask < 1<<n; mask++ {
			x := make([]float64, n)
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					x[j] = 1
				}
			}
			if !feasible(p, x, 1e-9) {
				continue
			}
			found = true
			var obj float64
			for j := range x {
				obj += p.Objective[j] * x[j]
			}
			if obj < bestObj {
				bestObj = obj
			}
		}
		if !found {
			return s.Status == Infeasible
		}
		return s.Status == Optimal && approx(s.Objective, bestObj, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestILPNodeLimit(t *testing.T) {
	// A deliberately branchy problem with a 1-node budget returns Limit
	// or an incumbent, never a wrong Optimal claim.
	n := 8
	p := &Problem{
		NumVars:   n,
		Objective: make([]float64, n),
		Upper:     make([]float64, n),
		Integer:   make([]bool, n),
	}
	c := map[int]float64{}
	for j := 0; j < n; j++ {
		p.Objective[j] = -1
		p.Upper[j] = 1
		p.Integer[j] = true
		c[j] = 2
	}
	p.Constraints = []Constraint{{Coeffs: c, Sense: LE, RHS: float64(n) - 0.5}}
	s, err := SolveILP(p, BnBOptions{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status == Optimal {
		t.Errorf("1-node search claimed optimality")
	}
}

func TestStatusStrings(t *testing.T) {
	for s, want := range map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible", Unbounded: "unbounded", Limit: "limit",
	} {
		if s.String() != want {
			t.Errorf("%v", s)
		}
	}
	if Status(9).String() == "" {
		t.Error("unknown status must stringify")
	}
}

// Package core implements RAPID — the paper's primary contribution: a
// utility-driven DTN routing protocol that translates an
// administrator-specified routing metric (average delay, missed
// deadlines, or maximum delay) into per-packet utilities, and
// replicates packets in decreasing order of marginal utility per byte
// (§3), estimating delivery delays with the Estimate-Delay algorithm
// over control-plane metadata (§4).
package core

import (
	"math"
	"sort"

	"rapid/internal/buffer"
	"rapid/internal/packet"
	"rapid/internal/routing"
)

// QueueIndex precomputes, for one node's buffer, each packet's position
// in its per-destination delivery queue: b(i), the total size of
// packets that precede i (Fig. 1 of the paper). Queues are ordered
// oldest-first — "sorted in decreasing order of T(i) or time since
// creation — the order in which they would be delivered directly"
// (§4.1).
type QueueIndex struct {
	ahead map[packet.ID]int64
	// byDst is indexed by the run's dense destination IDs (packet IDs
	// are sparse, so ahead stays a map).
	byDst [][]qent
}

// qent is one position in a destination queue, with the cumulative
// bytes of everything ahead of it.
type qent struct {
	created float64
	id      packet.ID
	size    int64
	cum     int64
}

// NewQueueIndex builds the index for a store's current contents. The
// store maintains per-destination delivery-ordered queues, so the build
// is a linear prefix-sum pass — no scan-and-sort of the whole buffer.
func NewQueueIndex(store *buffer.Store) *QueueIndex {
	idx := &QueueIndex{
		ahead: make(map[packet.ID]int64, store.Len()),
	}
	store.EachQueue(func(dst packet.NodeID, q []*buffer.Entry) {
		ents := make([]qent, len(q))
		var cum int64
		for i, e := range q {
			idx.ahead[e.P.ID] = cum
			ents[i] = qent{created: e.P.Created, id: e.P.ID, size: e.P.Size, cum: cum}
			cum += e.P.Size
		}
		for len(idx.byDst) <= int(dst) {
			idx.byDst = append(idx.byDst, nil)
		}
		idx.byDst[dst] = ents
	})
	return idx
}

// BytesAhead returns b(i) for a packet in the indexed buffer, or 0 for
// an unknown packet (for hypothetical placements use HypoBytesAhead).
func (q *QueueIndex) BytesAhead(id packet.ID) int64 { return q.ahead[id] }

// HypoBytesAhead computes b(i) as if p were inserted into the indexed
// buffer: the bytes of already-buffered packets to the same destination
// that are older than p. Used when hypothesizing a replica at the
// contact peer (the peer's queue as just announced). O(log q) per
// query.
func (q *QueueIndex) HypoBytesAhead(p *packet.Packet) int64 {
	if p.Dst < 0 || int(p.Dst) >= len(q.byDst) {
		return 0
	}
	ents := q.byDst[p.Dst]
	if len(ents) == 0 {
		return 0
	}
	// First entry NOT older than p.
	i := sort.Search(len(ents), func(j int) bool {
		e := ents[j]
		if e.created != p.Created {
			return e.created > p.Created
		}
		return e.id >= p.ID
	})
	// Everything before i is strictly older; if p itself is present at
	// position i, its own bytes are not ahead of it.
	if i < len(ents) && ents[i].id == p.ID {
		return ents[i].cum
	}
	if i == 0 {
		return 0
	}
	return ents[i-1].cum + ents[i-1].size
}

// Estimator implements Estimate-Delay (§4.1) from one node's local
// view: its own buffer, its control state (replica metadata, average
// transfer sizes), and its meeting-time matrix.
//
// Estimates are cached per packet and invalidated by comparing version
// stamps of the inputs (buffer contents, meeting matrix, transfer
// average, replica metadata) instead of recomputing at every contact:
// a node's estimates only move when one of those inputs moves, which
// happens at its own meetings and ack/replica events — not with global
// simulation time.
type Estimator struct {
	node *routing.Node

	// Input stamps captured at the last cache epoch.
	storeVer, meetVer, metaVer uint64
	xferN                      int
	// selfEpoch tags SelfDelay entries (inputs: buffer position, meeting
	// matrix, transfer average); rateEpoch additionally covers replica
	// metadata and so moves at least as often.
	selfEpoch, rateEpoch uint64

	selfCache map[packet.ID]cachedDelay
	rateCache map[packet.ID]cachedRate
}

// cachedDelay is one memoized SelfDelay value. The index pointer guards
// against callers probing a hypothetical queue index (tests, snapshot
// utilities) polluting entries computed against the live one.
type cachedDelay struct {
	epoch uint64
	idx   *QueueIndex
	val   float64
}

// cachedRate is one memoized RateSum result.
type cachedRate struct {
	epoch     uint64
	idx       *QueueIndex
	rate      float64
	delivered bool
}

// NewEstimator returns an estimator bound to a node.
func NewEstimator(n *routing.Node) *Estimator {
	return &Estimator{
		node:      n,
		selfCache: make(map[packet.ID]cachedDelay),
		rateCache: make(map[packet.ID]cachedRate),
	}
}

// sync advances the cache epochs if any estimation input changed since
// the last call.
func (est *Estimator) sync() {
	sv := est.node.Store.Version()
	mv := est.node.Ctl.Meet.Version()
	xn := est.node.Ctl.TransferObservations()
	cv := est.node.Ctl.MetaVersion()
	if sv != est.storeVer || mv != est.meetVer || xn != est.xferN {
		est.storeVer, est.meetVer, est.xferN = sv, mv, xn
		est.metaVer = cv
		est.selfEpoch++
		est.rateEpoch++
		// Every cached entry is now stale; dropping them bounds the
		// maps at the live-packet population and releases the old
		// QueueIndex the entries pin.
		clear(est.selfCache)
		clear(est.rateCache)
		return
	}
	if cv != est.metaVer {
		est.metaVer = cv
		est.rateEpoch++
		clear(est.rateCache)
	}
}

// meetingsNeeded returns n_j(i), the number of meetings with the
// destination needed to drain the queue ahead of i and send i itself.
//
// The paper states n_j(i) = ⌈b_j(i)/B_j⌉, which is 0 for the
// head-of-queue packet and would make Eq. 8's λ/n division by zero; we
// use ⌈(b_j(i)+s_i)/B_j⌉ clamped to at least 1, which agrees with the
// paper for all non-head positions when sizes divide evenly and fixes
// the degenerate case (see DESIGN.md §7).
func meetingsNeeded(bytesAhead, size int64, avgTransfer float64) float64 {
	if avgTransfer <= 0 {
		return 1
	}
	n := math.Ceil(float64(bytesAhead+size) / avgTransfer)
	if n < 1 {
		n = 1
	}
	return n
}

// SelfDelay estimates the node's own direct-delivery time for packet p
// given its current queue position: E(M_XZ) · n_X(i) (the Eq. 9 terms).
// Returns +Inf when the destination is unreachable within the h-hop
// matrix.
func (est *Estimator) SelfDelay(p *packet.Packet, idx *QueueIndex) float64 {
	est.sync()
	if c, ok := est.selfCache[p.ID]; ok && c.epoch == est.selfEpoch && c.idx == idx {
		return c.val
	}
	d := math.Inf(1)
	if em := est.node.Ctl.Meet.Expected(est.node.ID, p.Dst); !math.IsInf(em, 1) {
		b := est.node.Ctl.AvgTransferBytes(est.node.Net.Cfg.DefaultTransferBytes)
		d = em * meetingsNeeded(idx.BytesAhead(p.ID), p.Size, b)
	}
	est.selfCache[p.ID] = cachedDelay{epoch: est.selfEpoch, idx: idx, val: d}
	return d
}

// PeerDelay hypothesizes the direct-delivery time of a replica of p
// placed at peer right now, using peer's just-announced buffer state
// (pre-indexed in peerIdx) and the local matrix's estimate of E(M_YZ).
func (est *Estimator) PeerDelay(peer *routing.Node, peerIdx *QueueIndex, p *packet.Packet) float64 {
	em := est.node.Ctl.Meet.Expected(peer.ID, p.Dst)
	if math.IsInf(em, 1) {
		return math.Inf(1)
	}
	b := est.node.Ctl.AvgTransferOf(peer.ID, est.node.Net.Cfg.DefaultTransferBytes)
	n := meetingsNeeded(peerIdx.HypoBytesAhead(p), p.Size, b)
	return em * n
}

// KnownDelays gathers the per-replica expected direct-delivery delays
// for packet p: the node's own fresh estimate plus the control plane's
// estimates for remote replicas (stale by design — "the propagated
// information may be stale", §4.2).
func (est *Estimator) KnownDelays(p *packet.Packet, idx *QueueIndex) []float64 {
	delays := []float64{est.SelfDelay(p, idx)}
	for _, rep := range est.node.Ctl.Replicas(p.ID) {
		if rep.Holder == est.node.ID {
			continue // fresh local estimate already included
		}
		if rep.Holder == p.Dst {
			continue // a replica at the destination is a delivery; ack pending
		}
		delays = append(delays, rep.Delay)
	}
	return delays
}

// RateSum returns Σ_j 1/d_j over p's replica delay estimates — the
// combined exponential delivery rate of Eq. 7/8 — without allocating.
// delivered reports a zero-delay replica (packet effectively at its
// destination). This is the hot-path form of KnownDelays: it is
// evaluated once per buffered packet per contact.
func (est *Estimator) RateSum(p *packet.Packet, idx *QueueIndex) (rate float64, delivered bool) {
	est.sync()
	if c, ok := est.rateCache[p.ID]; ok && c.epoch == est.rateEpoch && c.idx == idx {
		return c.rate, c.delivered
	}
	rate, delivered = est.rateSum(p, idx)
	est.rateCache[p.ID] = cachedRate{
		epoch: est.rateEpoch, idx: idx, rate: rate, delivered: delivered,
	}
	return rate, delivered
}

// rateSum is the uncached computation behind RateSum.
func (est *Estimator) rateSum(p *packet.Packet, idx *QueueIndex) (rate float64, delivered bool) {
	d := est.SelfDelay(p, idx)
	if d == 0 {
		return 0, true
	}
	if d > 0 && !math.IsInf(d, 1) {
		rate += 1 / d
	}
	for _, rep := range est.node.Ctl.Replicas(p.ID) {
		if rep.Holder == est.node.ID || rep.Holder == p.Dst {
			continue
		}
		if rep.Delay == 0 {
			return 0, true
		}
		if rep.Delay > 0 && !math.IsInf(rep.Delay, 1) {
			rate += 1 / rep.Delay
		}
	}
	return rate, false
}

// RemainingDelay returns A(i) = E[a(i)], the expected remaining time to
// deliver p by any replica (Eq. 6/8).
func (est *Estimator) RemainingDelay(p *packet.Packet, idx *QueueIndex) float64 {
	rate, delivered := est.RateSum(p, idx)
	if delivered {
		return 0
	}
	if rate <= 0 {
		return math.Inf(1)
	}
	return 1 / rate
}

// ExpectedDelay returns D(i) = T(i) + A(i) (Table 2).
func (est *Estimator) ExpectedDelay(p *packet.Packet, idx *QueueIndex, now float64) float64 {
	return p.Age(now) + est.RemainingDelay(p, idx)
}

package core

import (
	"math/rand"
	"testing"

	"rapid/internal/buffer"
	"rapid/internal/control"
	"rapid/internal/mobility"
	"rapid/internal/packet"
	"rapid/internal/routing"
	"rapid/internal/trace"
)

func TestGenerateStoresOwnProtectedCopy(t *testing.T) {
	_, n0, _ := testNet(t, AvgDelay, 0)
	p := &packet.Packet{ID: 1, Src: 0, Dst: 2, Size: 100, Created: 0}
	n0.Router.Generate(p, 0)
	e := n0.Store.Get(1)
	if e == nil || !e.Own {
		t.Fatal("generated packet not stored as own copy")
	}
	if n0.Ctl.ReplicaCount(1) != 1 {
		t.Error("self replica not announced to control plane")
	}
}

func TestDirectQueueOrdering(t *testing.T) {
	_, n0, _ := testNet(t, AvgDelay, 0)
	mk := func(id packet.ID, created float64) *buffer.Entry {
		return &buffer.Entry{P: &packet.Packet{ID: id, Dst: 1, Size: 10, Created: created}}
	}
	n0.Store.Insert(mk(1, 30), nil)
	n0.Store.Insert(mk(2, 10), nil)
	n0.Store.Insert(mk(3, 20), nil)
	n0.Store.Insert(&buffer.Entry{P: &packet.Packet{ID: 4, Dst: 9, Size: 10, Created: 0}}, nil)
	q := n0.Router.DirectQueue(1, 50)
	if len(q) != 3 {
		t.Fatalf("queue %v", q)
	}
	if q[0].P.ID != 2 || q[1].P.ID != 3 || q[2].P.ID != 1 {
		t.Errorf("order %v %v %v want oldest first", q[0].P.ID, q[1].P.ID, q[2].P.ID)
	}
}

func TestDirectQueueDeadlineEDF(t *testing.T) {
	_, n0, _ := testNet(t, Deadline, 0)
	mk := func(id packet.ID, created, deadline float64) *buffer.Entry {
		return &buffer.Entry{P: &packet.Packet{ID: id, Dst: 1, Size: 10, Created: created, Deadline: deadline}}
	}
	n0.Store.Insert(mk(1, 0, 100), nil) // remaining 50 at now=50
	n0.Store.Insert(mk(2, 0, 60), nil)  // remaining 10: most urgent
	n0.Store.Insert(mk(3, 0, 40), nil)  // expired
	q := n0.Router.DirectQueue(1, 50)
	if q[0].P.ID != 2 || q[1].P.ID != 1 || q[2].P.ID != 3 {
		t.Errorf("EDF order %v %v %v want 2,1,3", q[0].P.ID, q[1].P.ID, q[2].P.ID)
	}
}

func TestPlanReplicationPrefersFewReplicasAndGoodPeers(t *testing.T) {
	// Paper §3.3: marginal utility is low when a packet has many
	// replicas or when the peer is a poor choice for the destination.
	_, n0, n1 := testNet(t, AvgDelay, 0)
	now := 100.0
	// n0 meets both destinations equally often; n1 meets them too.
	n0.Ctl.Meet.ObserveMeeting(2, 100)
	n0.Ctl.Meet.MergeTable(1, map[packet.NodeID]float64{2: 100})
	n0.Ctl.ObserveTransfer(10000)

	pMany := &packet.Packet{ID: 1, Src: 0, Dst: 2, Size: 100, Created: 0}
	pFew := &packet.Packet{ID: 2, Src: 0, Dst: 2, Size: 100, Created: 0}
	n0.Router.Generate(pMany, 0)
	n0.Router.Generate(pFew, 0)
	// pMany already has 5 remote replicas with decent estimates.
	for h := packet.NodeID(10); h < 15; h++ {
		n0.Ctl.NoteReplica(control.InventoryItem{
			ID: pMany.ID, Dst: pMany.Dst, Size: pMany.Size,
			Created: pMany.Created, Delay: 120,
		}, h, 1)
	}
	plan := n0.Router.PlanReplication(n1, now)
	if len(plan) != 2 {
		t.Fatalf("plan size %d want 2: both replicable", len(plan))
	}
	if plan[0].P.ID != 2 {
		t.Errorf("packet with fewer replicas must rank first, got %d", plan[0].P.ID)
	}
}

func TestPlanReplicationRanksUselessPeerLast(t *testing.T) {
	// A packet whose destination the peer can never reach (per the
	// meeting matrix) yields zero marginal utility and is relegated to
	// the work-conserving tail, behind every packet with measurable
	// gain.
	_, n0, n1 := testNet(t, AvgDelay, 0)
	n0.Ctl.Meet.ObserveMeeting(2, 100)
	n0.Ctl.Meet.ObserveMeeting(1, 50)
	n0.Ctl.Meet.MergeTable(1, map[packet.NodeID]float64{2: 100})
	// pGood's destination (2) is reachable by the peer; pStuck's
	// destination (9) is unknown to everyone.
	pStuck := &packet.Packet{ID: 1, Src: 0, Dst: 9, Size: 100, Created: 0}
	pGood := &packet.Packet{ID: 2, Src: 0, Dst: 2, Size: 100, Created: 5}
	n0.Router.Generate(pStuck, 0)
	n0.Router.Generate(pGood, 5)
	plan := n0.Router.PlanReplication(n1, 10)
	if len(plan) != 2 {
		t.Fatalf("plan size %d want 2 (tail is work-conserving)", len(plan))
	}
	if plan[0].P.ID != 2 || plan[1].P.ID != 1 {
		t.Errorf("order %d,%d want gainful packet first", plan[0].P.ID, plan[1].P.ID)
	}
}

func TestMaxDelayPlanOrdersByExpectedDelay(t *testing.T) {
	_, n0, n1 := testNet(t, MaxDelay, 0)
	n0.Ctl.Meet.ObserveMeeting(2, 100)
	n0.Ctl.Meet.ObserveMeeting(1, 50)
	n0.Ctl.ObserveTransfer(100000)
	pOld := &packet.Packet{ID: 1, Src: 0, Dst: 2, Size: 100, Created: 0}
	pNew := &packet.Packet{ID: 2, Src: 0, Dst: 2, Size: 100, Created: 90}
	n0.Router.Generate(pOld, 0)
	n0.Router.Generate(pNew, 90)
	plan := n0.Router.PlanReplication(n1, 100)
	if len(plan) != 2 {
		t.Fatalf("plan %v", plan)
	}
	if plan[0].P.ID != 1 {
		t.Errorf("max-delay metric must prioritize the oldest packet, got %d", plan[0].P.ID)
	}
}

func TestEndToEndRapidBeatsNoReplication(t *testing.T) {
	// Sanity: on a random mobility scenario RAPID delivers a solid
	// fraction of packets and respects feasibility.
	model := mobility.Exponential{Config: mobility.Config{
		Nodes: 12, Duration: 900, MeanMeeting: 60, TransferBytes: 20 << 10,
	}}
	sched := model.Schedule(rand.New(rand.NewSource(3)))
	w := packet.Generate(packet.GenConfig{
		Nodes: sched.Nodes(), PacketsPerHourPerDest: 2, LoadWindow: 50,
		Duration: 600, PacketSize: 1 << 10, FirstID: 1,
	}, rand.New(rand.NewSource(4)))
	c := routing.Run(routing.Scenario{
		Schedule: sched, Workload: w, Factory: New(AvgDelay),
		Cfg: routing.Config{
			BufferBytes: 100 << 10, Mode: routing.ControlInBand,
			MetaFraction: -1, DefaultTransferBytes: 20 << 10,
		},
		Seed: 5,
	})
	s := c.Summarize(900)
	if s.DeliveryRate < 0.5 {
		t.Errorf("delivery rate %v too low for a mild load", s.DeliveryRate)
	}
	if s.DataBytes+s.MetaBytes > s.OpportunityBytes {
		t.Error("feasibility violated")
	}
	if s.MetaBytes == 0 {
		t.Error("in-band control channel sent nothing")
	}
	if c.Replications == 0 {
		t.Error("RAPID never replicated")
	}
}

func TestRapidDeterministic(t *testing.T) {
	run := func() float64 {
		sched := (&trace.Schedule{Duration: 300, Meetings: []trace.Meeting{
			{A: 0, B: 1, Time: 10, Bytes: 5000},
			{A: 1, B: 2, Time: 50, Bytes: 5000},
			{A: 0, B: 2, Time: 90, Bytes: 5000},
			{A: 0, B: 1, Time: 130, Bytes: 5000},
			{A: 1, B: 2, Time: 170, Bytes: 5000},
		}})
		w := packet.Workload{
			{ID: 1, Src: 0, Dst: 2, Size: 1000, Created: 0},
			{ID: 2, Src: 2, Dst: 0, Size: 1000, Created: 5},
			{ID: 3, Src: 1, Dst: 0, Size: 1000, Created: 20},
		}
		c := routing.Run(routing.Scenario{
			Schedule: sched, Workload: w, Factory: New(AvgDelay),
			Cfg:  routing.Config{Mode: routing.ControlInBand, MetaFraction: -1},
			Seed: 9,
		})
		s := c.Summarize(300)
		return s.AvgDelay*1e6 + float64(s.Delivered)*10 + float64(s.MetaBytes)
	}
	if run() != run() {
		t.Error("RAPID run is not deterministic")
	}
}

func TestNameIncludesMetric(t *testing.T) {
	for _, m := range []Metric{AvgDelay, Deadline, MaxDelay} {
		f := New(m)
		r := f(0)
		if r.Name() != "rapid/"+m.String() {
			t.Errorf("name %q", r.Name())
		}
	}
	if Metric(99).String() == "" {
		t.Error("unknown metric must stringify")
	}
}

// TestPeerIndexFreshAcrossSameTimeContacts: two distinct contacts
// between the same pair at the same timestamp (duplicate trace rows,
// zero-period contact-plan entries) must not reuse the first contact's
// snapshot of the peer's buffer. The index cache is keyed on the peer
// store's version, which moves exactly when the buffer changes — the
// old (peer, clock) key could not tell the two contacts apart.
func TestPeerIndexFreshAcrossSameTimeContacts(t *testing.T) {
	_, n0, n1 := testNet(t, AvgDelay, 0)
	now := 50.0
	// n1 can reach destination 2; n0 knows it transitively.
	n0.Ctl.Meet.ObserveMeeting(1, 25)
	n0.Ctl.Meet.MergeTable(1, map[packet.NodeID]float64{2: 100})
	n0.Ctl.ObserveTransfer(1000)

	p := &packet.Packet{ID: 1, Src: 0, Dst: 2, Size: 400, Created: 10}
	n0.Router.Generate(p, 10)
	r := n0.Router.(*Router)

	// First contact at `now`: the hypothetical replica of p heads n1's
	// empty queue.
	r.PlanReplication(n1, now)
	d1 := r.EstimateReplicaDelay(n0.Store.Get(1), n1, now)

	// Between the two same-time contacts n1's buffer gains an older
	// same-destination packet, so p's replica must now queue behind it.
	n1.Store.Insert(&buffer.Entry{P: &packet.Packet{
		ID: 2, Src: 3, Dst: 2, Size: 700, Created: 0,
	}}, nil)

	r.PlanReplication(n1, now) // second contact, same timestamp
	d2 := r.EstimateReplicaDelay(n0.Store.Get(1), n1, now)
	if !(d2 > d1) {
		t.Fatalf("second same-time contact reused a stale peer index: delay %v -> %v (want increase)", d1, d2)
	}
}

// TestPeerIndexSnapshotStableWithinSession: within one session the
// per-send EstimateReplicaDelay calls keep reading the planning-time
// snapshot even though each accepted replica bumps the peer's store
// version — the announced estimates reflect the peer's just-announced
// state, not a live view.
func TestPeerIndexSnapshotStableWithinSession(t *testing.T) {
	_, n0, n1 := testNet(t, AvgDelay, 0)
	now := 50.0
	n0.Ctl.Meet.ObserveMeeting(1, 25)
	n0.Ctl.Meet.MergeTable(1, map[packet.NodeID]float64{2: 100})
	n0.Ctl.ObserveTransfer(1000)

	p := &packet.Packet{ID: 1, Src: 0, Dst: 2, Size: 400, Created: 10}
	n0.Router.Generate(p, 10)
	r := n0.Router.(*Router)

	r.PlanReplication(n1, now) // session start: snapshot taken here
	d1 := r.EstimateReplicaDelay(n0.Store.Get(1), n1, now)
	// Mid-session accept at the peer (as the session's transfers do).
	n1.Store.Insert(&buffer.Entry{P: &packet.Packet{
		ID: 3, Src: 4, Dst: 2, Size: 500, Created: 0,
	}}, nil)
	d2 := r.EstimateReplicaDelay(n0.Store.Get(1), n1, now)
	if d1 != d2 {
		t.Fatalf("within-session estimate drifted off the planning snapshot: %v -> %v", d1, d2)
	}
}

// TestSnapshotReplicaDelaysSurvivesInterleavedContacts: a windowed
// session's pinned snapshot keeps answering from the planning-time
// index even after an interleaved contact with a different peer
// re-points the router's single-slot peer cache, and after the
// original peer's buffer changes mid-window.
func TestSnapshotReplicaDelaysSurvivesInterleavedContacts(t *testing.T) {
	net, n0, n1 := testNet(t, AvgDelay, 0)
	n2 := net.Node(2)
	now := 50.0
	n0.Ctl.Meet.ObserveMeeting(1, 25)
	n0.Ctl.Meet.ObserveMeeting(2, 25)
	n0.Ctl.Meet.MergeTable(1, map[packet.NodeID]float64{5: 100})
	n0.Ctl.Meet.MergeTable(2, map[packet.NodeID]float64{5: 100})
	n0.Ctl.ObserveTransfer(1000)

	p := &packet.Packet{ID: 1, Src: 0, Dst: 5, Size: 400, Created: 10}
	n0.Router.Generate(p, 10)
	r := n0.Router.(*Router)

	r.PlanReplication(n1, now)
	snap := r.SnapshotReplicaDelays(n1)
	d1 := snap(n0.Store.Get(1))

	// Mid-window: an overlapping contact plans against another peer,
	// and the first peer's buffer gains an older same-destination
	// packet.
	r.PlanReplication(n2, now)
	n1.Store.Insert(&buffer.Entry{P: &packet.Packet{
		ID: 7, Src: 3, Dst: 5, Size: 700, Created: 0,
	}}, nil)

	if d2 := snap(n0.Store.Get(1)); d1 != d2 {
		t.Fatalf("pinned snapshot drifted under interleaved contacts: %v -> %v", d1, d2)
	}
}

package core

import (
	"fmt"
	"math"

	"rapid/internal/buffer"
	"rapid/internal/packet"
)

// Metric selects the routing objective RAPID optimizes (§3.5). RAPID is
// *intentional*: the same protocol machinery serves each metric through
// a different utility function.
type Metric int

const (
	// AvgDelay minimizes the average delivery delay: U_i = -D(i)
	// (Eq. 1).
	AvgDelay Metric = iota
	// Deadline minimizes missed deadlines:
	// U_i = P(a(i) < L(i) - T(i)) (Eq. 2).
	Deadline
	// MaxDelay minimizes the maximum delay: U_i = -D(i) for the packet
	// with the largest expected delay, 0 otherwise (Eq. 3), evaluated
	// work-conservingly.
	MaxDelay
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case AvgDelay:
		return "avg-delay"
	case Deadline:
		return "deadline"
	case MaxDelay:
		return "max-delay"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// delayCap bounds infinite delay estimates so utility comparisons stay
// ordered: an unreachable-destination estimate is "worse than anything
// reachable" rather than NaN arithmetic. The experiment horizon is the
// natural bound (a packet cannot wait longer than the run).
func delayCap(horizon float64) float64 {
	if horizon > 0 {
		return horizon * 10
	}
	return 1e12
}

func capDelay(d, cap float64) float64 {
	if math.IsInf(d, 1) || d > cap {
		return cap
	}
	return d
}

// marginalAvgDelay returns δU_i for the average-delay metric: the
// reduction in expected delay from adding a replica with hypothesized
// direct-delivery delay dY to a packet whose current combined delivery
// rate is `rate` (U = -D, so δU = A_before - A_after; the T(i) term
// cancels). Operating on rates keeps the per-candidate evaluation
// allocation-free.
func marginalAvgDelay(rate float64, delivered bool, dY, cap float64) float64 {
	if delivered || math.IsInf(dY, 1) || dY <= 0 {
		return 0 // already delivered, or a peer that can never deliver
	}
	before := cap
	if rate > 0 {
		before = capDelay(1/rate, cap)
	}
	after := capDelay(1/(rate+1/dY), cap)
	d := before - after
	if d < 0 {
		return 0
	}
	return d
}

// marginalDeadline returns δU_i for the deadline metric: the increase
// in the probability of delivery within the packet's remaining life
// (Eq. 7 applied before/after the hypothetical replica).
func marginalDeadline(rate float64, delivered bool, dY float64, p *packet.Packet, now float64) float64 {
	if p.Deadline == 0 || delivered {
		return 0 // no deadline, or nothing left to improve
	}
	rem := p.Deadline - now
	if rem <= 0 {
		return 0 // "A packet that has missed its deadline can no
		// longer improve performance" (Eq. 2's 0 branch)
	}
	if math.IsInf(dY, 1) || dY <= 0 {
		return 0
	}
	before := -math.Expm1(-rate * rem)
	after := -math.Expm1(-(rate + 1/dY) * rem)
	d := after - before
	if d < 0 {
		return 0
	}
	return d
}

// evictionUtility ranks buffered packets for deletion under storage
// pressure: lowest utility evicted first (§3.4). The keys follow each
// metric's utility directly.
func evictionUtility(m Metric, est *Estimator, idx *QueueIndex, e *buffer.Entry, now, cap float64) float64 {
	switch m {
	case Deadline:
		if e.P.Deadline == 0 {
			return 0
		}
		rem := e.P.Deadline - now
		if rem <= 0 {
			return -1 // expired packets deleted before anything else
		}
		rate, delivered := est.RateSum(e.P, idx)
		if delivered {
			return 1
		}
		return -math.Expm1(-rate * rem)
	case MaxDelay:
		// Keeping the oldest, most-delayed packets is what minimizes
		// the maximum: evict the packet with the smallest expected
		// delay first.
		return capDelay(est.ExpectedDelay(e.P, idx, now), cap)
	default: // AvgDelay
		// U = -D(i): the packet with the largest expected delay
		// contributes least and is evicted first.
		return -capDelay(est.ExpectedDelay(e.P, idx, now), cap)
	}
}

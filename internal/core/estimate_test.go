package core

import (
	"math"
	"testing"

	"rapid/internal/buffer"
	"rapid/internal/control"
	"rapid/internal/packet"
	"rapid/internal/routing"
	"rapid/internal/sim"
)

// testNet builds a minimal two-node network with RAPID routers for
// estimator unit tests.
func testNet(t *testing.T, metric Metric, bufBytes int64) (*routing.Network, *routing.Node, *routing.Node) {
	t.Helper()
	net := routing.NewNetwork(sim.New(1), []packet.NodeID{0, 1, 2},
		New(metric), routing.Config{
			BufferBytes:          bufBytes,
			Mode:                 routing.ControlInBand,
			MetaFraction:         -1,
			DefaultTransferBytes: 1000,
		})
	net.Horizon = 10000
	return net, net.Node(0), net.Node(1)
}

func TestQueueIndexOrdersOldestFirst(t *testing.T) {
	s := buffer.New(0)
	// Three packets to dst 5: created at 30, 10, 20 with sizes 100 each.
	for i, created := range []float64{30, 10, 20} {
		s.Insert(&buffer.Entry{P: &packet.Packet{
			ID: packet.ID(i + 1), Dst: 5, Size: 100, Created: created,
		}}, nil)
	}
	// A packet to another destination must not interfere.
	s.Insert(&buffer.Entry{P: &packet.Packet{ID: 9, Dst: 7, Size: 500, Created: 0}}, nil)
	idx := NewQueueIndex(s)
	if got := idx.BytesAhead(2); got != 0 { // created 10: head
		t.Errorf("head bytesAhead=%d want 0", got)
	}
	if got := idx.BytesAhead(3); got != 100 { // created 20
		t.Errorf("mid bytesAhead=%d want 100", got)
	}
	if got := idx.BytesAhead(1); got != 200 { // created 30
		t.Errorf("tail bytesAhead=%d want 200", got)
	}
	if got := idx.BytesAhead(9); got != 0 {
		t.Errorf("other-dst bytesAhead=%d want 0", got)
	}
}

func TestHypoBytesAhead(t *testing.T) {
	s := buffer.New(0)
	s.Insert(&buffer.Entry{P: &packet.Packet{ID: 1, Dst: 5, Size: 100, Created: 10}}, nil)
	s.Insert(&buffer.Entry{P: &packet.Packet{ID: 2, Dst: 5, Size: 100, Created: 30}}, nil)
	s.Insert(&buffer.Entry{P: &packet.Packet{ID: 3, Dst: 6, Size: 100, Created: 5}}, nil)
	idx := NewQueueIndex(s)
	// A packet created at 20 would slot between them.
	p := &packet.Packet{ID: 4, Dst: 5, Size: 50, Created: 20}
	if got := idx.HypoBytesAhead(p); got != 100 {
		t.Errorf("hypothetical bytesAhead=%d want 100", got)
	}
	// Same-ID packet in the store is not double counted.
	pSelf := &packet.Packet{ID: 2, Dst: 5, Size: 100, Created: 30}
	if got := idx.HypoBytesAhead(pSelf); got != 100 {
		t.Errorf("self-excluding bytesAhead=%d want 100", got)
	}
	// Newer than everything: the whole queue is ahead.
	late := &packet.Packet{ID: 9, Dst: 5, Size: 1, Created: 99}
	if got := idx.HypoBytesAhead(late); got != 200 {
		t.Errorf("tail bytesAhead=%d want 200", got)
	}
	// Older than everything: nothing ahead.
	early := &packet.Packet{ID: 0, Dst: 5, Size: 1, Created: 1}
	if got := idx.HypoBytesAhead(early); got != 0 {
		t.Errorf("head bytesAhead=%d want 0", got)
	}
	// Unknown destination: empty queue.
	other := &packet.Packet{ID: 9, Dst: 77, Size: 1, Created: 1}
	if got := idx.HypoBytesAhead(other); got != 0 {
		t.Errorf("unknown dst bytesAhead=%d want 0", got)
	}
}

func TestMeetingsNeeded(t *testing.T) {
	cases := []struct {
		ahead, size int64
		b           float64
		want        float64
	}{
		{0, 1000, 1000, 1},    // head packet, fits one transfer
		{0, 1, 1000, 1},       // tiny head packet
		{1000, 1000, 1000, 2}, /* one queue drain + self */
		{2500, 1000, 1000, 4},
		{0, 1000, 0, 1}, // degenerate average: clamp to one meeting
	}
	for _, c := range cases {
		if got := meetingsNeeded(c.ahead, c.size, c.b); got != c.want {
			t.Errorf("meetingsNeeded(%d,%d,%v)=%v want %v", c.ahead, c.size, c.b, got, c.want)
		}
	}
}

func TestSelfDelayUsesMeetingTimeAndQueue(t *testing.T) {
	_, n0, _ := testNet(t, AvgDelay, 0)
	// n0 meets node 2 every 100 s on average.
	n0.Ctl.Meet.ObserveMeeting(2, 100)
	n0.Ctl.ObserveTransfer(1000) // B = 1000
	r := n0.Router.(*Router)

	p1 := &packet.Packet{ID: 1, Dst: 2, Size: 1000, Created: 0}
	p2 := &packet.Packet{ID: 2, Dst: 2, Size: 1000, Created: 5}
	n0.Store.Insert(&buffer.Entry{P: p1}, nil)
	n0.Store.Insert(&buffer.Entry{P: p2}, nil)
	idx := NewQueueIndex(n0.Store)
	// Head packet: 1 meeting -> 100 s. Second: 2 meetings -> 200 s.
	if got := r.est.SelfDelay(p1, idx); got != 100 {
		t.Errorf("head self delay %v want 100", got)
	}
	if got := r.est.SelfDelay(p2, idx); got != 200 {
		t.Errorf("queued self delay %v want 200", got)
	}
	// Unknown destination: infinite.
	pu := &packet.Packet{ID: 3, Dst: 99, Size: 1, Created: 0}
	if got := r.est.SelfDelay(pu, idx); !math.IsInf(got, 1) {
		t.Errorf("unreachable dst delay %v want +Inf", got)
	}
}

func TestKnownDelaysIncludesRemoteReplicas(t *testing.T) {
	_, n0, _ := testNet(t, AvgDelay, 0)
	n0.Ctl.Meet.ObserveMeeting(2, 100)
	n0.Ctl.ObserveTransfer(1000)
	r := n0.Router.(*Router)
	p := &packet.Packet{ID: 1, Dst: 2, Size: 1000, Created: 0}
	n0.Store.Insert(&buffer.Entry{P: p}, nil)
	// Control plane knows node 1 also holds a replica with estimate 50.
	n0.Ctl.NoteReplica(control.InventoryItem{
		ID: p.ID, Dst: p.Dst, Size: p.Size, Created: p.Created, Delay: 50,
	}, 1, 1)
	idx := NewQueueIndex(n0.Store)
	delays := r.est.KnownDelays(p, idx)
	if len(delays) != 2 {
		t.Fatalf("delays %v", delays)
	}
	// Combined: 1/(1/100 + 1/50) = 33.3…
	a := r.est.RemainingDelay(p, idx)
	want := 1.0 / (1.0/100 + 1.0/50)
	if math.Abs(a-want) > 1e-9 {
		t.Errorf("A(i)=%v want %v", a, want)
	}
	// D(i) = T + A at now=10.
	d := r.est.ExpectedDelay(p, idx, 10)
	if math.Abs(d-(10+want)) > 1e-9 {
		t.Errorf("D(i)=%v want %v", d, 10+want)
	}
}

func TestPeerDelayHypothesis(t *testing.T) {
	_, n0, n1 := testNet(t, AvgDelay, 0)
	// n0 knows: n1 meets dst 2 every 40 s (via n1's gossiped table).
	n0.Ctl.Meet.MergeTable(1, map[packet.NodeID]float64{2: 40})
	r := n0.Router.(*Router)
	p := &packet.Packet{ID: 1, Dst: 2, Size: 1000, Created: 0}
	// Peer has an older packet to the same destination queued.
	n1.Store.Insert(&buffer.Entry{P: &packet.Packet{ID: 9, Dst: 2, Size: 1000, Created: 0}}, nil)
	p.Created = 10
	// b_Y = 1000 (the older packet), so n = ceil(2000/1000) = 2.
	if got := r.est.PeerDelay(n1, NewQueueIndex(n1.Store), p); got != 80 {
		t.Errorf("peer delay %v want 80", got)
	}
}

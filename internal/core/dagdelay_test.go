package core

import (
	"math"
	"testing"

	"rapid/internal/packet"
)

func TestDagDelaySingleReplicaHead(t *testing.T) {
	// One packet, head of one queue, rate 0.1: expected delay 10.
	sc := DagScenario{
		Queues: map[packet.NodeID][]packet.ID{1: {100}},
		Rate:   map[packet.NodeID]float64{1: 0.1},
	}
	d := DagDelay(sc, 200000, 1)
	if math.Abs(d[100]-10) > 0.2 {
		t.Errorf("single head delay %v want ~10", d[100])
	}
	// Estimate-Delay agrees exactly in this degenerate case.
	e := EstimateDelayExpectation(sc)
	if e[100] != 10 {
		t.Errorf("estimate %v want 10", e[100])
	}
}

func TestDagDelayQueuePosition(t *testing.T) {
	// Two packets in one queue: head ~1/λ, second ~2/λ (gamma mean).
	sc := DagScenario{
		Queues: map[packet.NodeID][]packet.ID{1: {100, 101}},
		Rate:   map[packet.NodeID]float64{1: 0.5},
	}
	d := DagDelay(sc, 200000, 2)
	if math.Abs(d[100]-2) > 0.05 {
		t.Errorf("head %v want ~2", d[100])
	}
	if math.Abs(d[101]-4) > 0.1 {
		t.Errorf("second %v want ~4", d[101])
	}
}

func TestDagDelayMinOfReplicas(t *testing.T) {
	// Packet replicated at the head of two queues with rates 0.1 and
	// 0.1: min of two exponentials -> mean 5.
	sc := DagScenario{
		Queues: map[packet.NodeID][]packet.ID{1: {100}, 2: {100}},
		Rate:   map[packet.NodeID]float64{1: 0.1, 2: 0.1},
	}
	d := DagDelay(sc, 200000, 3)
	if math.Abs(d[100]-5) > 0.1 {
		t.Errorf("two-replica head %v want ~5", d[100])
	}
	if e := EstimateDelayExpectation(sc); math.Abs(e[100]-5) > 1e-12 {
		t.Errorf("estimate %v want 5", e[100])
	}
}

// The paper's Fig. 2 example: Estimate-Delay ignores non-vertical
// dependencies and overestimates (or misorders) delays relative to the
// exact DAG computation. Scenario: packet b is 2nd in X's and Y's
// queues behind a (replicated at both), and W holds b at head.
func TestDagDelayVsEstimateOnFig2(t *testing.T) {
	lambda := 0.2
	sc := DagScenario{
		Queues: map[packet.NodeID][]packet.ID{
			1: {200},      // W: b at head
			2: {100, 200}, // X: a then b
			3: {100, 200}, // Y: a then b
		},
		Rate: map[packet.NodeID]float64{1: lambda, 2: lambda, 3: lambda},
	}
	dag := DagDelay(sc, 300000, 4)
	indep := EstimateDelayIndependentMC(sc, 300000, 5)
	est := EstimateDelayExpectation(sc)
	// Exact for b: min(M_W, min(M_X,M_Y)+min(M_X,M_Y)); the
	// independence assumption replaces the shared min chain with two
	// independent gamma chains, which is stochastically larger — so it
	// inflates b's expected delay (Appendix C's claim).
	if dag[200] >= indep[200] {
		t.Errorf("independence assumption should inflate b's delay: dag=%v indep=%v",
			dag[200], indep[200])
	}
	// Eq. 8's further exponential approximation stays within a modest
	// relative error of the exact value on this benign example.
	if rel := math.Abs(est[200]-dag[200]) / dag[200]; rel > 0.3 {
		t.Errorf("Eq.8 estimate %v vs exact %v: relative error %v too large",
			est[200], dag[200], rel)
	}
	// a is at the head of two queues: both agree at ~1/(2λ).
	if math.Abs(dag[100]-1/(2*lambda)) > 0.1 {
		t.Errorf("a's dag delay %v want ~%v", dag[100], 1/(2*lambda))
	}
}

func TestDagDelayDeterministicPerSeed(t *testing.T) {
	// Queues are age-ordered, so replica order is consistent across
	// buffers (packet 1 is older than packet 2 everywhere).
	sc := DagScenario{
		Queues: map[packet.NodeID][]packet.ID{1: {1, 2}, 2: {1, 2}},
		Rate:   map[packet.NodeID]float64{1: 0.3, 2: 0.7},
	}
	a := DagDelay(sc, 10000, 7)
	b := DagDelay(sc, 10000, 7)
	for id := range a {
		if a[id] != b[id] {
			t.Fatalf("non-deterministic dag delay for %d", id)
		}
	}
}

func TestDagDelayCyclePanics(t *testing.T) {
	// Inconsistent queue orders (impossible for age-sorted buffers)
	// must be rejected loudly rather than hanging.
	sc := DagScenario{
		Queues: map[packet.NodeID][]packet.ID{1: {1, 2}, 2: {2, 1}},
		Rate:   map[packet.NodeID]float64{1: 0.3, 2: 0.7},
	}
	defer func() {
		if recover() == nil {
			t.Error("expected cycle panic")
		}
	}()
	DagDelay(sc, 100, 1)
}

func TestDagDelayDefaultSamples(t *testing.T) {
	sc := DagScenario{
		Queues: map[packet.NodeID][]packet.ID{1: {1}},
		Rate:   map[packet.NodeID]float64{1: 1},
	}
	d := DagDelay(sc, 0, 1) // samples <= 0 uses the default
	if d[1] <= 0 {
		t.Error("default samples produced no estimate")
	}
}

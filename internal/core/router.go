package core

import (
	"math"
	"sort"

	"rapid/internal/buffer"
	"rapid/internal/control"
	"rapid/internal/packet"
	"rapid/internal/routing"
)

// Router is the RAPID protocol (Protocol rapid, §3.4) bound to one
// node. Construct via New.
type Router struct {
	metric Metric
	node   *routing.Node
	est    *Estimator

	// ownIdx caches the queue index over the node's own buffer, keyed
	// by the store's version: Inventory, PlanReplication and the
	// eviction utility of one contact share a single build, and a
	// contact that leaves the buffer untouched reuses the previous one.
	ownIdx    *QueueIndex
	ownIdxVer uint64

	// peerIdx caches the contact peer's queue index between
	// PlanReplication and the per-send EstimateReplicaDelay calls of
	// the same session (rebuilding it per send would reintroduce the
	// O(|buffer|²) cost the index exists to avoid). It is keyed on the
	// peer's store *version*, not the clock: two distinct contacts
	// between the same pair at the same timestamp (duplicate trace
	// rows, zero-period contact-plan entries) must not reuse the first
	// contact's snapshot of the peer's buffer.
	peerIdx    *QueueIndex
	peerIdxID  packet.NodeID
	peerIdxVer uint64

	// Scratch buffers reused across contacts. The runtime consumes each
	// returned slice before the node's next contact, so per-contact
	// allocation of these (which dominated the allocation profile) is
	// pooled away. They are per-router, never shared between nodes.
	invScratch  []control.InventoryItem
	dqScratch   []*buffer.Entry
	candScratch []repCand
	planScratch []*buffer.Entry
}

// repCand is one replication candidate during plan ranking.
type repCand struct {
	e    *buffer.Entry
	key  float64
	tail bool // no measurable marginal gain; fills leftover budget
}

// New returns a factory producing RAPID routers optimizing the given
// metric.
func New(metric Metric) routing.RouterFactory {
	return func(packet.NodeID) routing.Router {
		return &Router{metric: metric}
	}
}

// Name implements routing.Router.
func (r *Router) Name() string { return "rapid/" + r.metric.String() }

// SessionConfined implements routing.SessionConfined: the scratch
// slices, delay caches and version counters are all per-node, and the
// only run-wide state touched is the immutable config and horizon.
func (r *Router) SessionConfined() {}

// Metric returns the routing objective this router optimizes.
func (r *Router) Metric() Metric { return r.metric }

// Attach implements routing.Router.
func (r *Router) Attach(n *routing.Node) {
	r.node = n
	r.est = NewEstimator(n)
}

// Generate implements routing.Router: store the new packet as the
// protected source copy and announce the replica to the control plane.
// The fresh packet is younger than everything buffered, so its queue
// position is the per-destination byte total — no index build needed
// (packet generation is the highest-frequency event in the simulator).
func (r *Router) Generate(p *packet.Packet, now float64) {
	// Compute the position before inserting so the packet's own bytes
	// are not counted ahead of itself.
	ahead := r.node.Store.BytesFor(p.Dst)
	e := &buffer.Entry{P: p, ReceivedAt: now, Own: true}
	if !r.node.Store.Insert(e, r.bufferUtility(now)) {
		return // a packet larger than total storage cannot be routed
	}
	delay := math.Inf(1)
	if em := r.node.Ctl.Meet.Expected(r.node.ID, p.Dst); !math.IsInf(em, 1) {
		b := r.node.Ctl.AvgTransferBytes(r.node.Net.Cfg.DefaultTransferBytes)
		delay = em * meetingsNeeded(ahead, p.Size, b)
	}
	r.node.Ctl.NoteReplica(control.InventoryItem{
		ID: p.ID, Dst: p.Dst, Size: p.Size,
		Created: p.Created, Deadline: p.Deadline,
		Delay: delay,
	}, r.node.ID, now)
}

// Inventory implements routing.Router: announce every buffered packet
// with a fresh local delivery estimate ("For each of its own packets,
// the updated delivery delay estimate based on current buffer state",
// §4.2).
func (r *Router) Inventory(now float64) []control.InventoryItem {
	idx := r.ownIndex()
	out := r.invScratch[:0]
	for _, e := range r.node.Store.Entries() {
		out = append(out, control.InventoryItem{
			ID: e.P.ID, Dst: e.P.Dst, Size: e.P.Size,
			Created: e.P.Created, Deadline: e.P.Deadline,
			Delay: r.est.SelfDelay(e.P, idx),
			Hops:  e.Hops,
		})
	}
	r.invScratch = out
	return out
}

// DirectQueue implements routing.Router (Protocol rapid Step 2):
// packets destined to the peer in decreasing utility order — oldest
// first for the delay metrics, earliest remaining deadline first for
// the deadline metric.
func (r *Router) DirectQueue(peer packet.NodeID, now float64) []*buffer.Entry {
	// The store's per-destination queue is already in (Created, ID)
	// delivery order; copy it so the session can remove entries while
	// iterating.
	out := append(r.dqScratch[:0], r.node.Store.Queue(peer)...)
	r.dqScratch = out
	if r.metric == Deadline {
		sort.Slice(out, func(i, j int) bool {
			ei, ej := out[i], out[j]
			ri, iOK := remaining(ei.P, now)
			rj, jOK := remaining(ej.P, now)
			if iOK != jOK {
				return iOK // live-deadline packets before expired/none
			}
			if iOK && ri != rj {
				return ri < rj // most urgent first
			}
			return olderFirst(ei, ej)
		})
		return out
	}
	return out
}

func remaining(p *packet.Packet, now float64) (float64, bool) {
	if p.Deadline == 0 {
		return 0, false
	}
	rem := p.Deadline - now
	return rem, rem > 0
}

func olderFirst(a, b *buffer.Entry) bool {
	if a.P.Created != b.P.Created {
		return a.P.Created < b.P.Created
	}
	return a.P.ID < b.P.ID
}

// PlanReplication implements routing.Router (Protocol rapid Step 3):
// rank buffered packets by marginal utility per byte of replicating
// them to the peer. Candidates whose replication measurably helps the
// metric (δU > 0) come first, in decreasing δU/s — the *intentional*
// part. Candidates with no measurable gain follow as a work-conserving
// tail (oldest first): bandwidth left over at a transfer opportunity is
// a sunk resource, an extra replica can only help under the model, and
// the estimates driving δU are themselves stale and conservative
// ("this inaccurate information is sufficient", §4.2).
//
// For the max-delay metric the utility is non-zero only for the packet
// with the maximum expected delay; once it is replicated the utility of
// the remaining packets is recalculated (§3.5.3's work-conserving
// rule). Because a replicated packet is immediately skipped by the
// session thereafter, the recalculated order is exactly decreasing
// D(i) — which is how it is produced here.
func (r *Router) PlanReplication(peer *routing.Node, now float64) []*buffer.Entry {
	idx := r.ownIndex()
	peerIdx := r.peerIndex(peer)
	cap := delayCap(r.node.Net.Horizon)
	cands := r.candScratch[:0]
	for _, e := range r.node.Store.Entries() {
		if e.P.Dst == peer.ID {
			continue
		}
		dY := r.est.PeerDelay(peer, peerIdx, e.P)
		var key float64
		switch r.metric {
		case MaxDelay:
			// Work-conserving order: decreasing expected delay among
			// packets the peer could actually deliver.
			if !math.IsInf(dY, 1) {
				key = capDelay(r.est.ExpectedDelay(e.P, idx, now), cap)
			}
		case Deadline:
			rate, delivered := r.est.RateSum(e.P, idx)
			key = marginalDeadline(rate, delivered, dY, e.P, now) / float64(e.P.Size)
		default: // AvgDelay
			rate, delivered := r.est.RateSum(e.P, idx)
			key = marginalAvgDelay(rate, delivered, dY, cap) / float64(e.P.Size)
		}
		cands = append(cands, repCand{e: e, key: key, tail: key <= 0})
	}
	r.candScratch = cands
	sort.Slice(cands, func(i, j int) bool {
		ci, cj := cands[i], cands[j]
		if ci.tail != cj.tail {
			return !ci.tail // intentional candidates first
		}
		if !ci.tail && ci.key != cj.key {
			return ci.key > cj.key
		}
		if ci.tail {
			// Tail: oldest first (they have waited longest), ID ties.
			if ci.e.P.Created != cj.e.P.Created {
				return ci.e.P.Created < cj.e.P.Created
			}
		}
		return ci.e.P.ID < cj.e.P.ID
	})
	out := r.planScratch[:0]
	for _, c := range cands {
		out = append(out, c.e)
	}
	r.planScratch = out
	return out
}

// Accept implements routing.Router: store the replica under the
// metric's eviction policy (§3.4's lowest-utility-first deletion).
func (r *Router) Accept(e *buffer.Entry, from packet.NodeID, now float64) bool {
	return r.node.Store.Insert(e, r.bufferUtility(now))
}

// EstimateReplicaDelay implements routing.ReplicaDelayEstimator: the
// hypothesized direct-delivery delay of the copy just pushed to holder.
// It deliberately reads the snapshot taken at planning time (the peer's
// just-announced state) rather than a live view: the per-send Accepts
// of the running session bump the peer's store version, and re-indexing
// after each one would both change the announced estimates and
// reintroduce the O(|buffer|²) rebuild cost.
func (r *Router) EstimateReplicaDelay(e *buffer.Entry, holder *routing.Node, now float64) float64 {
	return r.est.PeerDelay(holder, r.peerSnapshot(holder), e.P)
}

// SnapshotReplicaDelays implements routing.ReplicaDelaySnapshotter:
// the returned closure pins the holder's planning-time queue index, so
// a windowed session's per-send estimates survive interleaved contacts
// at this node (which re-point the single-slot peerIdx cache at other
// peers mid-window) without rebuilding the index per send.
func (r *Router) SnapshotReplicaDelays(holder *routing.Node) routing.ReplicaDelayFunc {
	idx := r.peerIndex(holder)
	return func(e *buffer.Entry) float64 {
		return r.est.PeerDelay(holder, idx, e.P)
	}
}

// ownIndex returns the queue index over the node's own buffer, rebuilt
// only when the store has changed since the last build.
func (r *Router) ownIndex() *QueueIndex {
	if v := r.node.Store.Version(); r.ownIdx == nil || r.ownIdxVer != v {
		r.ownIdx = NewQueueIndex(r.node.Store)
		r.ownIdxVer = v
	}
	return r.ownIdx
}

// peerIndex returns a queue index over the peer's buffer as it stands
// right now, reusing the cached build only while the peer's store is
// unchanged (the index is a pure function of the store, so version
// equality makes reuse exact). Called at planning time, it guarantees a
// second same-timestamp contact with the same peer sees the peer's
// post-first-contact buffer, never a stale snapshot.
func (r *Router) peerIndex(peer *routing.Node) *QueueIndex {
	if v := peer.Store.Version(); r.peerIdx == nil || r.peerIdxID != peer.ID || r.peerIdxVer != v {
		r.peerIdx = NewQueueIndex(peer.Store)
		r.peerIdxID = peer.ID
		r.peerIdxVer = v
	}
	return r.peerIdx
}

// peerSnapshot returns the planning-time index for the peer without
// freshness checks (see EstimateReplicaDelay). Falls back to a fresh
// build if the cache belongs to a different peer.
func (r *Router) peerSnapshot(peer *routing.Node) *QueueIndex {
	if r.peerIdx == nil || r.peerIdxID != peer.ID {
		return r.peerIndex(peer)
	}
	return r.peerIdx
}

// bufferUtility returns the eviction ranking for the current metric.
// The queue index is resolved lazily on first use because eviction is
// rare relative to insertion; the snapshot then stays fixed for the
// whole insert (utilities must be pure with respect to the store).
func (r *Router) bufferUtility(now float64) buffer.Utility {
	var idx *QueueIndex
	cap := delayCap(r.node.Net.Horizon)
	return func(e *buffer.Entry) float64 {
		if idx == nil {
			idx = r.ownIndex()
		}
		return evictionUtility(r.metric, r.est, idx, e, now, cap)
	}
}

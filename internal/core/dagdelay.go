package core

import (
	"math/rand"
	"sort"

	"rapid/internal/packet"
)

// This file implements DAG-Delay (Appendix C): the idealized delay
// estimator that honors the full dependency graph between packet
// replicas across node buffers, instead of Estimate-Delay's
// independence assumption that "ignores all the non-vertical
// dependencies" (§4.1). It assumes unit-size transfer opportunities
// (one packet per meeting), exactly as the appendix does, and requires
// the global view that only the instant global channel could provide —
// which is why the deployed protocol uses Estimate-Delay and this
// algorithm serves as the reference for tests and the estimator
// ablation bench.
//
// Distributions are represented by Monte-Carlo sample vectors. The ⊕
// operator (sum of independent variables) adds a freshly drawn vector;
// min of dependent delays takes the elementwise minimum of vectors that
// *share* the samples of their common ancestors — which is precisely
// the dependence structure the DAG encodes.

// DagScenario describes a set of packets destined to one common node Z,
// replicated across node buffers (the Fig. 2 setting).
type DagScenario struct {
	// Queues holds each node's buffer as an ordered packet list, head
	// (next to be delivered) first. All packets are destined to Z.
	Queues map[packet.NodeID][]packet.ID
	// Rate is each node's meeting rate with Z (lambda = 1/mean gap).
	Rate map[packet.NodeID]float64
}

// packetIDs returns all distinct packet IDs in the scenario, sorted.
func (sc DagScenario) packetIDs() []packet.ID {
	seen := map[packet.ID]bool{}
	var out []packet.ID
	for _, q := range sc.Queues {
		for _, id := range q {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DagDelay runs Procedure dag_delay over the scenario and returns each
// packet's expected delivery delay, estimated from `samples` Monte
// Carlo draws with the given seed. It panics if the scenario contains a
// successor cycle (impossible for real buffers, possible for corrupted
// input).
func DagDelay(sc DagScenario, samples int, seed int64) map[packet.ID]float64 {
	if samples <= 0 {
		samples = 4096
	}
	r := rand.New(rand.NewSource(seed))
	// memo[p] is the sample vector of d(p).
	memo := map[packet.ID][]float64{}
	visiting := map[packet.ID]bool{}

	// node/position of each replica.
	type replica struct {
		node packet.NodeID
		pos  int
	}
	replicas := map[packet.ID][]replica{}
	for n, q := range sc.Queues {
		for pos, id := range q {
			replicas[id] = append(replicas[id], replica{n, pos})
		}
	}
	// Deterministic replica order for reproducible sampling.
	for _, reps := range replicas {
		sort.Slice(reps, func(i, j int) bool { return reps[i].node < reps[j].node })
	}

	drawExp := func(rate float64) []float64 {
		v := make([]float64, samples)
		for i := range v {
			v[i] = r.ExpFloat64() / rate
		}
		return v
	}

	var eval func(id packet.ID) []float64
	eval = func(id packet.ID) []float64 {
		if v, ok := memo[id]; ok {
			return v
		}
		if visiting[id] {
			panic("core: dag-delay successor cycle")
		}
		visiting[id] = true
		defer delete(visiting, id)

		var dp []float64
		for _, rep := range replicas[id] {
			gap := drawExp(sc.Rate[rep.node])
			var dj []float64
			if rep.pos == 0 {
				dj = gap // head of queue: one meeting away
			} else {
				succ := sc.Queues[rep.node][rep.pos-1]
				ds := eval(succ)
				dj = make([]float64, samples)
				for i := range dj {
					dj[i] = ds[i] + gap[i] // d(s) ⊕ e_n
				}
			}
			if dp == nil {
				dp = dj
			} else {
				for i := range dp {
					if dj[i] < dp[i] {
						dp[i] = dj[i]
					}
				}
			}
		}
		memo[id] = dp
		return dp
	}

	out := make(map[packet.ID]float64)
	for _, id := range sc.packetIDs() {
		v := eval(id)
		var sum float64
		for _, x := range v {
			sum += x
		}
		out[id] = sum / float64(len(v))
	}
	return out
}

// EstimateDelayIndependentMC evaluates Estimate-Delay's *structural*
// independence assumption exactly: each replica's delivery time is an
// independent Gamma(position+1, λ) chain (the vertical edges only), and
// the packet's delay is the minimum across replicas. Comparing this
// against DagDelay isolates the inflation caused by ignoring the
// non-vertical dependencies (Appendix C: the assumption "can
// arbitrarily inflate delay estimates"), separately from Eq. 8's
// additional gamma→exponential approximation.
func EstimateDelayIndependentMC(sc DagScenario, samples int, seed int64) map[packet.ID]float64 {
	if samples <= 0 {
		samples = 4096
	}
	r := rand.New(rand.NewSource(seed))
	type replica struct {
		node packet.NodeID
		pos  int
	}
	replicas := map[packet.ID][]replica{}
	for n, q := range sc.Queues {
		for pos, id := range q {
			replicas[id] = append(replicas[id], replica{n, pos})
		}
	}
	out := make(map[packet.ID]float64)
	for _, id := range sc.packetIDs() {
		reps := replicas[id]
		sort.Slice(reps, func(i, j int) bool { return reps[i].node < reps[j].node })
		var sum float64
		for s := 0; s < samples; s++ {
			m := 0.0
			first := true
			for _, rep := range reps {
				// Gamma(pos+1, λ) as a sum of exponentials.
				var t float64
				for k := 0; k <= rep.pos; k++ {
					t += r.ExpFloat64() / sc.Rate[rep.node]
				}
				if first || t < m {
					m = t
					first = false
				}
			}
			sum += m
		}
		out[id] = sum / float64(samples)
	}
	return out
}

// EstimateDelayExpectation computes the same scenario's expected delays
// under the full Estimate-Delay recipe (Eq. 8 with unit-size packets
// and opportunities): replica at position k needs n = k+1 meetings,
// each chain is approximated as exponential with the gamma's mean, and
// A(i) = 1 / Σ_j λ_j/n_j.
func EstimateDelayExpectation(sc DagScenario) map[packet.ID]float64 {
	// Accumulate per-packet rate sums over nodes in sorted order:
	// several nodes contribute to the same packet, and FP addition is
	// not associative, so map-iteration order would make the estimate
	// depend on the run (rapidlint/maporder).
	nodes := make([]packet.NodeID, 0, len(sc.Queues))
	for n := range sc.Queues {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	rates := map[packet.ID]float64{}
	for _, n := range nodes {
		for pos, id := range sc.Queues[n] {
			rates[id] += sc.Rate[n] / float64(pos+1)
		}
	}
	out := make(map[packet.ID]float64, len(rates))
	for id, rate := range rates {
		if rate > 0 {
			out[id] = 1 / rate
		}
	}
	return out
}

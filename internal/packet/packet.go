// Package packet defines the DTN data-plane objects of §3.1: packets,
// node identifiers, and the workload — the set of (source, destination,
// size, creation-time) tuples a routing algorithm must deliver — plus
// the Poisson workload generator used by the deployment and the
// simulations (§5.1: "exponential inter-arrival time").
package packet

import (
	"fmt"
	"math/rand"
	"sort"
)

// NodeID identifies a DTN node (a bus in DieselNet). IDs are small
// non-negative integers assigned by the scenario.
type NodeID int

// ID uniquely identifies a packet within a simulation run.
type ID int64

// Packet is an immutable description of a DTN bundle. Replicas share the
// same *Packet; per-replica state lives with the node holding the copy.
type Packet struct {
	ID      ID
	Src     NodeID
	Dst     NodeID
	Size    int64   // bytes
	Created float64 // creation time at the source, seconds
	// Deadline is the absolute time after which delivery is worthless
	// (L(i) in Eq. 2 measured from Created). Zero means no deadline.
	Deadline float64
	// Cohort tags packets created in the same parallel batch, used by
	// the fairness experiment (Fig. 15). Zero means no cohort.
	Cohort int
}

// Age returns T(i): the time since creation at the given clock.
func (p *Packet) Age(now float64) float64 { return now - p.Created }

// Expired reports whether the packet's deadline (if any) has passed.
func (p *Packet) Expired(now float64) bool {
	return p.Deadline > 0 && now >= p.Deadline
}

// RemainingLife returns L(i) - T(i), the time left before the deadline,
// or +Inf semantics via ok=false when the packet has no deadline.
func (p *Packet) RemainingLife(now float64) (rem float64, ok bool) {
	if p.Deadline == 0 {
		return 0, false
	}
	return p.Deadline - now, true
}

// String implements fmt.Stringer for debugging output.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt(%d %d→%d %dB t=%.1f)", p.ID, p.Src, p.Dst, p.Size, p.Created)
}

// Workload is a time-sorted set of packets to be injected at their
// sources.
type Workload []*Packet

// Sort orders the workload by creation time, then ID (stable across
// runs).
func (w Workload) Sort() {
	sort.Slice(w, func(i, j int) bool {
		if w[i].Created != w[j].Created {
			return w[i].Created < w[j].Created
		}
		return w[i].ID < w[j].ID
	})
}

// GenConfig parameterizes the Poisson workload generator.
type GenConfig struct {
	// Nodes lists the participating nodes; every node generates packets
	// for every other listed node (the deployment generated packets
	// "for every other bus on the road", §5.1).
	Nodes []NodeID
	// PacketsPerHourPerDest is the paper's load axis: the rate at which
	// each (src,dst) pair generates packets, in packets per LoadWindow.
	PacketsPerHourPerDest float64
	// LoadWindow is the unit of the rate above, in seconds (3600 for
	// trace experiments, 50 for the synthetic ones — Table 4).
	LoadWindow float64
	// Duration is the generation horizon in seconds.
	Duration float64
	// PacketSize in bytes (1 KB everywhere in the paper).
	PacketSize int64
	// Deadline, if positive, stamps every packet with
	// Created+Deadline (the delivery deadline metric's L(i)).
	Deadline float64
	// FirstID seeds packet ID assignment.
	FirstID ID
}

// Generate draws a Poisson workload: for every ordered (src, dst) pair
// of distinct nodes, packet creations form a Poisson process with rate
// PacketsPerHourPerDest/LoadWindow. The result is time-sorted.
func Generate(cfg GenConfig, r *rand.Rand) Workload {
	var out Workload
	if cfg.PacketsPerHourPerDest <= 0 || cfg.LoadWindow <= 0 || cfg.Duration <= 0 {
		return out
	}
	rate := cfg.PacketsPerHourPerDest / cfg.LoadWindow
	id := cfg.FirstID
	for _, src := range cfg.Nodes {
		for _, dst := range cfg.Nodes {
			if src == dst {
				continue
			}
			t := 0.0
			for {
				t += r.ExpFloat64() / rate
				if t >= cfg.Duration {
					break
				}
				p := &Packet{
					ID:      id,
					Src:     src,
					Dst:     dst,
					Size:    cfg.PacketSize,
					Created: t,
				}
				if cfg.Deadline > 0 {
					p.Deadline = t + cfg.Deadline
				}
				id++
				out = append(out, p)
			}
		}
	}
	out.Sort()
	return out
}

// GenerateOnOff draws a bursty workload: each ordered (src, dst) pair
// alternates exponential ON periods (mean onMean seconds), during which
// packets arrive as a Poisson process at the configured rate, with
// exponential OFF periods (mean offMean) of silence. The long-run
// offered load is the Poisson load scaled by the duty cycle
// onMean/(onMean+offMean). offMean <= 0 degenerates to Generate.
func GenerateOnOff(cfg GenConfig, onMean, offMean float64, r *rand.Rand) Workload {
	if offMean <= 0 {
		return Generate(cfg, r)
	}
	var out Workload
	if cfg.PacketsPerHourPerDest <= 0 || cfg.LoadWindow <= 0 || cfg.Duration <= 0 || onMean <= 0 {
		return out
	}
	rate := cfg.PacketsPerHourPerDest / cfg.LoadWindow
	id := cfg.FirstID
	for _, src := range cfg.Nodes {
		for _, dst := range cfg.Nodes {
			if src == dst {
				continue
			}
			// Each pair starts a fresh on/off cycle at a random phase
			// within its first cycle so bursts are not synchronized
			// fleet-wide.
			t := -r.Float64() * (onMean + offMean)
			for t < cfg.Duration {
				on := t + r.ExpFloat64()*onMean
				arrival := t
				for {
					arrival += r.ExpFloat64() / rate
					if arrival >= on || arrival >= cfg.Duration {
						break
					}
					if arrival < 0 {
						continue // before the horizon (phase offset)
					}
					p := &Packet{
						ID:      id,
						Src:     src,
						Dst:     dst,
						Size:    cfg.PacketSize,
						Created: arrival,
					}
					if cfg.Deadline > 0 {
						p.Deadline = arrival + cfg.Deadline
					}
					id++
					out = append(out, p)
				}
				t = on + r.ExpFloat64()*offMean
			}
		}
	}
	out.Sort()
	return out
}

// GenerateParallel creates `cohorts` batches of `parallel` packets each;
// all packets in a batch are created at the same instant with distinct
// (src,dst) pairs drawn round-robin over Nodes. This reproduces the
// fairness workload of Fig. 15 ("20 to 30 parallel packets").
func GenerateParallel(nodes []NodeID, cohorts, parallel int, spacing float64, size int64, r *rand.Rand) Workload {
	var out Workload
	if len(nodes) < 2 {
		return out
	}
	id := ID(1)
	for c := 0; c < cohorts; c++ {
		t := spacing * float64(c+1)
		for k := 0; k < parallel; k++ {
			src := nodes[r.Intn(len(nodes))]
			dst := nodes[r.Intn(len(nodes))]
			for dst == src {
				dst = nodes[r.Intn(len(nodes))]
			}
			out = append(out, &Packet{
				ID: id, Src: src, Dst: dst, Size: size, Created: t, Cohort: c + 1,
			})
			id++
		}
	}
	out.Sort()
	return out
}

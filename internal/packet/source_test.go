package packet

import (
	"math/rand"
	"testing"
)

func sourceCfg() GenConfig {
	return GenConfig{
		Nodes:                 []NodeID{0, 1, 2, 3},
		PacketsPerHourPerDest: 2,
		LoadWindow:            50,
		Duration:              400,
		PacketSize:            1 << 10,
		Deadline:              60,
		FirstID:               1,
	}
}

func TestPoissonSourceDeterministic(t *testing.T) {
	a := NewPoissonSource(sourceCfg(), 42).Drain()
	b := NewPoissonSource(sourceCfg(), 42).Drain()
	if len(a) == 0 {
		t.Fatal("source produced no packets")
	}
	if len(a) != len(b) {
		t.Fatalf("two drains differ in length: %d != %d", len(a), len(b))
	}
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatalf("packet %d differs across identical sources: %+v != %+v", i, *a[i], *b[i])
		}
	}
	c := NewPoissonSource(sourceCfg(), 43).Drain()
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i].Created != c[i].Created {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced the identical arrival sequence")
	}
}

func TestPoissonSourceOrderingAndBounds(t *testing.T) {
	cfg := sourceCfg()
	w := NewPoissonSource(cfg, 7).Drain()
	if len(w) == 0 {
		t.Fatal("source produced no packets")
	}
	for i, p := range w {
		if p.ID != cfg.FirstID+ID(i) {
			t.Fatalf("packet %d has ID %d, want emission order from %d", i, p.ID, cfg.FirstID)
		}
		if i > 0 && p.Created < w[i-1].Created {
			t.Fatalf("Created times decrease at %d: %v after %v", i, p.Created, w[i-1].Created)
		}
		if p.Created < 0 || p.Created >= cfg.Duration {
			t.Fatalf("packet %d created at %v outside [0, %v)", i, p.Created, cfg.Duration)
		}
		if p.Src == p.Dst {
			t.Fatalf("packet %d is a self-send to %d", i, p.Src)
		}
		if p.Deadline != p.Created+cfg.Deadline {
			t.Fatalf("packet %d deadline %v, want Created+%v", i, p.Deadline, cfg.Deadline)
		}
		if p.Size != cfg.PacketSize {
			t.Fatalf("packet %d size %d, want %d", i, p.Size, cfg.PacketSize)
		}
	}
}

func TestPoissonSourceRate(t *testing.T) {
	// Long horizon, loose bound: the realized count should sit near
	// rate × duration × pairs.
	cfg := sourceCfg()
	cfg.Duration = 20000
	cfg.Deadline = 0
	w := NewPoissonSource(cfg, 3).Drain()
	rate := cfg.PacketsPerHourPerDest / cfg.LoadWindow
	expect := rate * cfg.Duration * float64(len(cfg.Nodes)*(len(cfg.Nodes)-1))
	if got := float64(len(w)); got < 0.8*expect || got > 1.2*expect {
		t.Errorf("drained %v packets, expected about %v", got, expect)
	}
}

func TestPoissonSourceEndpoints(t *testing.T) {
	cfg := sourceCfg()
	cfg.Nodes = []NodeID{5, 2, 9, 2}
	s := NewPoissonSource(cfg, 1)
	got := s.Endpoints()
	want := []NodeID{2, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("Endpoints() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Endpoints() = %v, want %v", got, want)
		}
	}
}

func TestPoissonSourceDegenerate(t *testing.T) {
	for _, cfg := range []GenConfig{
		{},
		{Nodes: []NodeID{0}, PacketsPerHourPerDest: 1, LoadWindow: 50, Duration: 100},
		{Nodes: []NodeID{0, 1}, LoadWindow: 50, Duration: 100},
		{Nodes: []NodeID{0, 1}, PacketsPerHourPerDest: 1, LoadWindow: 50},
	} {
		if w := NewPoissonSource(cfg, 1).Drain(); len(w) != 0 {
			t.Errorf("degenerate config %+v produced %d packets", cfg, len(w))
		}
	}
}

func TestSliceSourceRoundtrip(t *testing.T) {
	w := Generate(sourceCfg(), rand.New(rand.NewSource(1)))
	s := NewSliceSource(w)
	eps := s.Endpoints()
	for i := 1; i < len(eps); i++ {
		if eps[i] <= eps[i-1] {
			t.Fatalf("Endpoints not strictly sorted: %v", eps)
		}
	}
	var n int
	for {
		p, ok := s.Next()
		if !ok {
			break
		}
		if p != w[n] {
			t.Fatalf("packet %d: slice source returned a different pointer", n)
		}
		n++
	}
	if n != len(w) {
		t.Fatalf("slice source yielded %d of %d packets", n, len(w))
	}
}

package packet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPacketAgeAndDeadline(t *testing.T) {
	p := &Packet{ID: 1, Src: 0, Dst: 1, Size: 1024, Created: 100, Deadline: 160}
	if got := p.Age(150); got != 50 {
		t.Errorf("Age=%v want 50", got)
	}
	if p.Expired(150) {
		t.Error("not yet expired")
	}
	if !p.Expired(160) {
		t.Error("expired at deadline")
	}
	rem, ok := p.RemainingLife(150)
	if !ok || rem != 10 {
		t.Errorf("RemainingLife=%v,%v want 10,true", rem, ok)
	}
	free := &Packet{ID: 2, Created: 0}
	if free.Expired(1e9) {
		t.Error("no-deadline packet never expires")
	}
	if _, ok := free.RemainingLife(5); ok {
		t.Error("no-deadline packet has no remaining life")
	}
}

func TestWorkloadSortStable(t *testing.T) {
	w := Workload{
		{ID: 3, Created: 5},
		{ID: 1, Created: 5},
		{ID: 2, Created: 1},
	}
	w.Sort()
	if w[0].ID != 2 || w[1].ID != 1 || w[2].ID != 3 {
		t.Errorf("sort order: %v %v %v", w[0].ID, w[1].ID, w[2].ID)
	}
}

func TestGenerateRateMatchesLoad(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	nodes := make([]NodeID, 10)
	for i := range nodes {
		nodes[i] = NodeID(i)
	}
	cfg := GenConfig{
		Nodes:                 nodes,
		PacketsPerHourPerDest: 4,
		LoadWindow:            3600,
		Duration:              10 * 3600,
		PacketSize:            1024,
		FirstID:               1,
	}
	w := Generate(cfg, r)
	// Expected count: 4 pkts/h per ordered pair * 90 pairs * 10 h = 3600.
	want := 3600.0
	got := float64(len(w))
	if math.Abs(got-want)/want > 0.10 {
		t.Errorf("generated %v packets want ~%v", got, want)
	}
	// Sorted by time; all within horizon; no self-addressed packets.
	for i, p := range w {
		if i > 0 && p.Created < w[i-1].Created {
			t.Fatal("workload not time sorted")
		}
		if p.Created < 0 || p.Created >= cfg.Duration {
			t.Fatalf("creation time %v outside horizon", p.Created)
		}
		if p.Src == p.Dst {
			t.Fatal("self-addressed packet")
		}
		if p.Size != 1024 {
			t.Fatalf("size %d", p.Size)
		}
		if p.Deadline != 0 {
			t.Fatal("unexpected deadline")
		}
	}
}

func TestGenerateUniqueIDs(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := GenConfig{
			Nodes:                 []NodeID{0, 1, 2, 3},
			PacketsPerHourPerDest: 10,
			LoadWindow:            100,
			Duration:              500,
			PacketSize:            1,
			FirstID:               100,
		}
		w := Generate(cfg, r)
		seen := make(map[ID]bool, len(w))
		for _, p := range w {
			if seen[p.ID] || p.ID < 100 {
				return false
			}
			seen[p.ID] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestGenerateDeadlineStamping(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	cfg := GenConfig{
		Nodes:                 []NodeID{0, 1},
		PacketsPerHourPerDest: 50,
		LoadWindow:            50,
		Duration:              100,
		PacketSize:            1024,
		Deadline:              20,
	}
	w := Generate(cfg, r)
	if len(w) == 0 {
		t.Fatal("no packets generated")
	}
	for _, p := range w {
		if p.Deadline != p.Created+20 {
			t.Fatalf("deadline %v want created+20=%v", p.Deadline, p.Created+20)
		}
	}
}

func TestGenerateDegenerateConfigs(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if w := Generate(GenConfig{}, r); len(w) != 0 {
		t.Error("zero config must generate nothing")
	}
	cfg := GenConfig{Nodes: []NodeID{0}, PacketsPerHourPerDest: 5, LoadWindow: 10, Duration: 10, PacketSize: 1}
	if w := Generate(cfg, r); len(w) != 0 {
		t.Error("single node cannot generate traffic")
	}
}

func TestGenerateParallel(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	nodes := []NodeID{0, 1, 2, 3, 4}
	w := GenerateParallel(nodes, 3, 20, 100, 1024, r)
	if len(w) != 60 {
		t.Fatalf("got %d packets want 60", len(w))
	}
	byCohort := map[int][]*Packet{}
	for _, p := range w {
		if p.Cohort == 0 {
			t.Fatal("cohort not stamped")
		}
		byCohort[p.Cohort] = append(byCohort[p.Cohort], p)
	}
	if len(byCohort) != 3 {
		t.Fatalf("cohorts %d want 3", len(byCohort))
	}
	for c, ps := range byCohort {
		if len(ps) != 20 {
			t.Errorf("cohort %d size %d want 20", c, len(ps))
		}
		for _, p := range ps {
			if p.Created != ps[0].Created {
				t.Errorf("cohort %d not simultaneous", c)
			}
			if p.Src == p.Dst {
				t.Error("self-addressed parallel packet")
			}
		}
	}
	if w := GenerateParallel([]NodeID{0}, 2, 2, 1, 1, r); len(w) != 0 {
		t.Error("need >=2 nodes")
	}
}

// TestGenerateOnOffDeterministicAndBursty: the on-off generator is
// deterministic in its seed, produces less traffic than always-on
// Poisson at the same instantaneous rate, and degenerates to Generate
// when offMean <= 0.
func TestGenerateOnOffDeterministicAndBursty(t *testing.T) {
	cfg := GenConfig{
		Nodes:                 []NodeID{0, 1, 2, 3},
		PacketsPerHourPerDest: 20,
		LoadWindow:            50,
		Duration:              600,
		PacketSize:            1024,
		Deadline:              20,
		FirstID:               1,
	}
	a := GenerateOnOff(cfg, 30, 120, rand.New(rand.NewSource(5)))
	b := GenerateOnOff(cfg, 30, 120, rand.New(rand.NewSource(5)))
	if len(a) == 0 {
		t.Fatal("on-off generated nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed produced %d vs %d packets", len(a), len(b))
	}
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatalf("packet %d differs between identical draws", i)
		}
	}
	for _, p := range a {
		if p.Created < 0 || p.Created >= cfg.Duration {
			t.Errorf("packet created at %v outside [0,%v)", p.Created, cfg.Duration)
		}
		if p.Deadline != p.Created+cfg.Deadline {
			t.Errorf("deadline not stamped: %+v", p)
		}
	}
	full := Generate(cfg, rand.New(rand.NewSource(5)))
	if len(a) >= len(full) {
		t.Errorf("bursty %d packets >= always-on %d", len(a), len(full))
	}
	degenerate := GenerateOnOff(cfg, 30, 0, rand.New(rand.NewSource(5)))
	if len(degenerate) != len(full) {
		t.Fatalf("offMean=0 must equal Generate: %d vs %d", len(degenerate), len(full))
	}
	for i := range degenerate {
		if *degenerate[i] != *full[i] {
			t.Fatalf("degenerate packet %d differs from Generate", i)
		}
	}
}

// TestGenerateOnOffIDsSorted: IDs are unique and the workload is
// time-sorted like every other generator's output.
func TestGenerateOnOffIDsSorted(t *testing.T) {
	cfg := GenConfig{
		Nodes: []NodeID{0, 1, 2}, PacketsPerHourPerDest: 30,
		LoadWindow: 50, Duration: 500, PacketSize: 512, FirstID: 10,
	}
	w := GenerateOnOff(cfg, 20, 60, rand.New(rand.NewSource(2)))
	seen := map[ID]bool{}
	prev := -1.0
	for _, p := range w {
		if seen[p.ID] {
			t.Fatalf("duplicate ID %d", p.ID)
		}
		seen[p.ID] = true
		if p.ID < 10 {
			t.Fatalf("ID %d below FirstID", p.ID)
		}
		if p.Created < prev {
			t.Fatal("workload not time-sorted")
		}
		prev = p.Created
	}
}

package packet

import (
	"container/heap"
	"math"
	"sort"
)

// Source is a streaming workload: packets are produced one at a time in
// nondecreasing Created order, so a run can schedule creation events on
// demand instead of materializing the whole workload slice up front —
// at mega-constellation scales a full horizon of traffic never needs to
// live in memory at once.
//
// Implementations must be deterministic: the same source configuration
// always yields the same packet sequence (the reproducibility contract
// every generator in this package honors).
type Source interface {
	// Next returns the next packet, or ok=false when the workload is
	// exhausted. Created times never decrease across calls.
	Next() (*Packet, bool)
	// Endpoints returns the sorted set of node IDs that can appear as a
	// packet source or destination — the participant universe a run
	// must construct nodes for before the first packet arrives.
	Endpoints() []NodeID
}

// SliceSource adapts a materialized (time-sorted) Workload to the
// Source interface.
type SliceSource struct {
	w Workload
	i int
}

// NewSliceSource wraps w, which must already be sorted (Workload.Sort).
func NewSliceSource(w Workload) *SliceSource { return &SliceSource{w: w} }

// Next implements Source.
func (s *SliceSource) Next() (*Packet, bool) {
	if s.i >= len(s.w) {
		return nil, false
	}
	p := s.w[s.i]
	s.i++
	return p, true
}

// Endpoints implements Source.
func (s *SliceSource) Endpoints() []NodeID {
	seen := map[NodeID]bool{}
	for _, p := range s.w {
		seen[p.Src] = true
		seen[p.Dst] = true
	}
	return sortedIDs(seen)
}

// PoissonSource streams the Poisson workload of Generate without
// materializing it: every ordered (src, dst) pair owns an independent
// counter-based exponential arrival stream, and a heap merges the
// pairs' next arrivals into one global time-sorted sequence. Memory is
// O(pairs), independent of duration and load.
//
// The per-pair streams are counter-indexed splitmix64 draws, so the
// sequence is a pure function of (seed, pair, arrival index) — the same
// determinism idiom the disruption layer uses — rather than a shared
// consumption-ordered rand.Rand, which is what makes lazy pair
// interleaving possible at all. The sequence therefore differs from
// Generate's for the same seed; scenarios choose one generator and keep
// it (figures are regenerated, not mixed).
type PoissonSource struct {
	cfg    GenConfig
	rate   float64
	seed   uint64
	nextID ID
	h      arrivalHeap
	nodes  []NodeID
}

// arrival is one pair's pending packet creation.
type arrival struct {
	t        float64
	src, dst NodeID
	ctr      uint64 // per-pair draw counter
	pairSeed uint64
}

type arrivalHeap []arrival

func (h arrivalHeap) Len() int { return len(h) }
func (h arrivalHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	if h[i].src != h[j].src {
		return h[i].src < h[j].src
	}
	return h[i].dst < h[j].dst
}
func (h arrivalHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *arrivalHeap) Push(x any)   { *h = append(*h, x.(arrival)) }
func (h *arrivalHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// NewPoissonSource returns a streaming Poisson workload for cfg. Packet
// IDs are assigned in emission order starting at cfg.FirstID, so the
// drained sequence satisfies the (Created, ID) ordering the runtime's
// delivery queues assume.
func NewPoissonSource(cfg GenConfig, seed uint64) *PoissonSource {
	s := &PoissonSource{cfg: cfg, seed: seed, nextID: cfg.FirstID}
	set := map[NodeID]bool{}
	for _, id := range cfg.Nodes {
		set[id] = true
	}
	s.nodes = sortedIDs(set)
	if cfg.PacketsPerHourPerDest <= 0 || cfg.LoadWindow <= 0 || cfg.Duration <= 0 {
		return s
	}
	s.rate = cfg.PacketsPerHourPerDest / cfg.LoadWindow
	for _, src := range cfg.Nodes {
		for _, dst := range cfg.Nodes {
			if src == dst {
				continue
			}
			ps := pairSeed(seed, src, dst)
			a := arrival{src: src, dst: dst, pairSeed: ps}
			a.t = expGap(ps, a.ctr) / s.rate
			a.ctr++
			if a.t < cfg.Duration {
				s.h = append(s.h, a)
			}
		}
	}
	heap.Init(&s.h)
	return s
}

// Next implements Source.
func (s *PoissonSource) Next() (*Packet, bool) {
	if s.h.Len() == 0 {
		return nil, false
	}
	a := heap.Pop(&s.h).(arrival)
	p := &Packet{
		ID: s.nextID, Src: a.src, Dst: a.dst,
		Size: s.cfg.PacketSize, Created: a.t,
	}
	if s.cfg.Deadline > 0 {
		p.Deadline = a.t + s.cfg.Deadline
	}
	s.nextID++
	a.t += expGap(a.pairSeed, a.ctr) / s.rate
	a.ctr++
	if a.t < s.cfg.Duration {
		heap.Push(&s.h, a)
	}
	return p, true
}

// Endpoints implements Source.
func (s *PoissonSource) Endpoints() []NodeID {
	return s.nodes
}

// Drain materializes the remaining sequence — the reference form the
// streaming-equivalence tests compare against.
func (s *PoissonSource) Drain() Workload {
	var out Workload
	for {
		p, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, p)
	}
}

// pairSeed derives one (src, dst) pair's independent stream seed.
func pairSeed(seed uint64, src, dst NodeID) uint64 {
	return splitmix64(seed ^ splitmix64(uint64(src)<<32|uint64(uint32(dst))))
}

// expGap draws the ctr-th unit-mean exponential gap of a pair stream.
func expGap(pairSeed, ctr uint64) float64 {
	u := splitmix64(pairSeed + 0x9e3779b97f4a7c15*(ctr+1))
	// Map to (0, 1]: the +1 excludes 0 so the log below stays finite.
	f := float64(u>>11+1) / float64(1<<53)
	return -math.Log(f)
}

// splitmix64 is the standard 64-bit finalizer-based generator.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sortedIDs flattens a node set to a sorted slice.
func sortedIDs(set map[NodeID]bool) []NodeID {
	out := make([]NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Package meet implements the inter-node meeting-time estimation of
// §4.1.2: every node tabulates the average time between its meetings
// with every other node, exchanges these tables through the control
// channel, assembles them into a meeting-time adjacency matrix, and
// estimates the expected time for any node to meet any other within at
// most h hops (h=3 in the paper; pairs unreachable in h hops get an
// infinite expected meeting time).
package meet

import (
	"math"

	"rapid/internal/packet"
	"rapid/internal/stat"
)

// DefaultHops is the paper's transitive-estimation horizon
// ("In our implementation we restrict h = 3").
const DefaultHops = 3

// Table maps a peer to the expected direct inter-meeting time in
// seconds.
type Table map[packet.NodeID]float64

// Clone returns a copy of the table.
func (t Table) Clone() Table {
	c := make(Table, len(t))
	for k, v := range t {
		c[k] = v
	}
	return c
}

// Estimator is one node's view of the network's meeting behaviour. It is
// not safe for concurrent use.
type Estimator struct {
	self packet.NodeID
	hops int

	// direct accumulates locally observed inter-meeting gaps per peer.
	direct map[packet.NodeID]*stat.MovingAverage
	// lastSeen is the time of the previous meeting per peer, to turn
	// meeting instants into gaps. A virtual meeting at time 0 (epoch
	// start) bootstraps the first gap, so a single observed meeting
	// already yields a finite — if rough — estimate that later
	// observations refine.
	lastSeen map[packet.NodeID]float64

	// tables is the merged matrix: every node's direct table as learned
	// via the control channel. tables[self] mirrors direct.
	tables map[packet.NodeID]Table

	// version invalidates the adjacency cache and shortest-path memo on
	// any mutation.
	version uint64

	// adj is the merged matrix flattened into slice-indexed adjacency
	// lists (node IDs are dense), maintained incrementally as pairs
	// change: estimating over it is O(h·(V+E)) instead of the O(h·V²)
	// that map-keyed relaxation cost, and mutations touch only the
	// affected pair instead of rebuilding the matrix — the difference
	// between 20-bus and 200-satellite populations.
	n      int // node universe size: max known ID + 1
	adj    [][]halfEdge
	adjIdx []map[packet.NodeID]int32 // position of each neighbor in adj[u]

	// memoDist caches per-source distance slices over the current
	// adjacency.
	memoVer  uint64
	memoDist [][]float64
}

// halfEdge is one directed arc of the flattened meeting matrix.
type halfEdge struct {
	to packet.NodeID
	w  float64
}

// New returns an estimator for node self using an h-hop horizon
// (h <= 0 selects DefaultHops).
func New(self packet.NodeID, hops int) *Estimator {
	if hops <= 0 {
		hops = DefaultHops
	}
	e := &Estimator{
		self:     self,
		hops:     hops,
		direct:   make(map[packet.NodeID]*stat.MovingAverage),
		lastSeen: make(map[packet.NodeID]float64),
		tables:   map[packet.NodeID]Table{},
	}
	e.ensureNode(self)
	return e
}

// Self returns the owning node's ID.
func (e *Estimator) Self() packet.NodeID { return e.self }

// Hops returns the transitive horizon.
func (e *Estimator) Hops() int { return e.hops }

// ObserveMeeting records a meeting with peer at the given time,
// updating the average inter-meeting gap.
func (e *Estimator) ObserveMeeting(peer packet.NodeID, now float64) {
	if peer == e.self {
		return
	}
	ma := e.direct[peer]
	if ma == nil {
		ma = &stat.MovingAverage{}
		e.direct[peer] = ma
	}
	ma.Observe(now - e.lastSeen[peer]) // lastSeen defaults to 0 = epoch start
	e.lastSeen[peer] = now
	// Refresh the single changed key of the mirrored self table
	// (rebuilding the whole table per observation was O(degree) on the
	// hottest write path).
	t := e.tables[e.self]
	if t == nil {
		t = Table{}
		e.tables[e.self] = t
	}
	t[peer] = ma.Value()
	e.refreshPair(e.self, peer)
	e.version++
}

// ensureNode grows the adjacency arrays to cover id.
func (e *Estimator) ensureNode(id packet.NodeID) {
	if int(id) < e.n {
		return
	}
	e.n = int(id) + 1
	for len(e.adj) < e.n {
		e.adj = append(e.adj, nil)
		e.adjIdx = append(e.adjIdx, nil)
	}
}

// refreshPair re-derives the (u, v) edge weight from the two directed
// table records and patches the adjacency lists in place.
func (e *Estimator) refreshPair(u, v packet.NodeID) {
	if u == v || u < 0 || v < 0 {
		return
	}
	e.ensureNode(u)
	e.ensureNode(v)
	w := math.Inf(1)
	if t, ok := e.tables[u]; ok {
		if d, ok := t[v]; ok && d < w {
			w = d
		}
	}
	if t, ok := e.tables[v]; ok {
		if d, ok := t[u]; ok && d < w {
			w = d
		}
	}
	if math.IsInf(w, 1) {
		e.removeArc(u, v)
		e.removeArc(v, u)
		return
	}
	e.setArc(u, v, w)
	e.setArc(v, u, w)
}

// setArc inserts or updates the directed arc u→v.
func (e *Estimator) setArc(u, v packet.NodeID, w float64) {
	idx := e.adjIdx[u]
	if idx == nil {
		idx = make(map[packet.NodeID]int32, 4)
		e.adjIdx[u] = idx
	}
	if i, ok := idx[v]; ok {
		e.adj[u][i].w = w
		return
	}
	idx[v] = int32(len(e.adj[u]))
	e.adj[u] = append(e.adj[u], halfEdge{to: v, w: w})
}

// removeArc drops the directed arc u→v if present (swap-removal).
func (e *Estimator) removeArc(u, v packet.NodeID) {
	idx := e.adjIdx[u]
	i, ok := idx[v]
	if !ok {
		return
	}
	last := int32(len(e.adj[u]) - 1)
	if i != last {
		moved := e.adj[u][last]
		e.adj[u][i] = moved
		idx[moved.to] = i
	}
	e.adj[u] = e.adj[u][:last]
	delete(idx, v)
}

// DirectTable returns a snapshot of this node's own averages, the
// payload exchanged as "expected meeting times with nodes" metadata
// (§4.2).
func (e *Estimator) DirectTable() Table {
	if t, ok := e.tables[e.self]; ok {
		return t.Clone()
	}
	return Table{}
}

// OwnTable returns the live internal self table — the allocation-free
// form the control channel transmits every contact. Callers must treat
// it as read-only and must not retain it across estimator mutations
// (MergeTable copies, so passing it to a peer's merge is safe).
func (e *Estimator) OwnTable() Table { return e.tables[e.self] }

// MergeTable installs owner's direct table as learned from a metadata
// exchange, replacing any older version. The merge diffs in place —
// gossip re-delivers whole tables, but between two exchanges most
// entries are unchanged, and only moved pairs are re-derived (a no-op
// merge leaves the version, and therefore the shortest-path memo,
// untouched). The passed table is not retained.
func (e *Estimator) MergeTable(owner packet.NodeID, t Table) {
	if owner == e.self {
		return // own table is maintained locally
	}
	old := e.tables[owner]
	if old == nil {
		old = make(Table, len(t))
		e.tables[owner] = old
	}
	oldLen := len(old)
	matched := 0
	changed := false
	for id, w := range t {
		if ow, ok := old[id]; ok {
			matched++
			if ow == w {
				continue
			}
		}
		old[id] = w
		e.refreshPair(owner, id)
		changed = true
	}
	// Meeting tables only ever grow in practice; scan for removals only
	// when some old key went unmatched.
	if matched < oldLen {
		for id := range old {
			if _, still := t[id]; !still {
				delete(old, id)
				e.refreshPair(owner, id)
				changed = true
			}
		}
	}
	if changed {
		e.version++
	}
}

// KnownTables returns the set of owners whose tables have been merged
// (plus self if it has observed anything). Exposed for control-plane
// delta encoding.
func (e *Estimator) KnownTables() []packet.NodeID {
	out := make([]packet.NodeID, 0, len(e.tables))
	for id := range e.tables {
		out = append(out, id)
	}
	return out
}

// TableOf returns the stored direct table of a node (nil if unknown).
// The returned map must not be modified.
func (e *Estimator) TableOf(owner packet.NodeID) Table { return e.tables[owner] }

// Version counts matrix mutations. Consumers caching derived values
// (RAPID's delay-estimate cache) compare versions instead of
// subscribing to events.
func (e *Estimator) Version() uint64 { return e.version }

// Expected returns E(M_from,to): the expected time for node `from` to
// meet node `to` within at most h hops, computed as the minimum over
// paths of at most h edges of the sum of expected direct inter-meeting
// times (the paper's example: X meets Z via Y in expected time
// E(M_XY) + E(M_YZ)). Returns +Inf when `to` is unreachable within h
// hops of the current matrix.
func (e *Estimator) Expected(from, to packet.NodeID) float64 {
	if from == to {
		return 0
	}
	if e.memoVer != e.version || len(e.memoDist) < e.n {
		if cap(e.memoDist) < e.n {
			e.memoDist = make([][]float64, e.n)
		} else {
			e.memoDist = e.memoDist[:e.n]
			clear(e.memoDist)
		}
		e.memoVer = e.version
	}
	if int(from) < 0 || int(from) >= e.n {
		return math.Inf(1)
	}
	dist := e.memoDist[from]
	if dist == nil {
		dist = e.shortestWithin(from)
		e.memoDist[from] = dist
	}
	if int(to) < 0 || int(to) >= len(dist) {
		return math.Inf(1)
	}
	return dist[to]
}

// shortestWithin runs h level-synchronous rounds of Bellman-Ford
// relaxation from src over the adjacency lists, yielding min-cost paths
// with at most h edges. Each round reads the previous round's
// distances, so a path can never accumulate more than h hops.
func (e *Estimator) shortestWithin(src packet.NodeID) []float64 {
	inf := math.Inf(1)
	cur := make([]float64, e.n)
	next := make([]float64, e.n)
	for i := range cur {
		cur[i] = inf
	}
	cur[src] = 0
	for hop := 0; hop < e.hops; hop++ {
		copy(next, cur)
		improved := false
		for u, du := range cur {
			if math.IsInf(du, 1) {
				continue
			}
			for _, ed := range e.adj[u] {
				if d := du + ed.w; d < next[ed.to] {
					next[ed.to] = d
					improved = true
				}
			}
		}
		cur, next = next, cur
		if !improved {
			break
		}
	}
	cur[src] = 0
	return cur
}

// Rate returns the meeting rate lambda = 1/E(M_from,to), or 0 when the
// pair is unreachable — the form used directly in Eq. 9.
func (e *Estimator) Rate(from, to packet.NodeID) float64 {
	d := e.Expected(from, to)
	if math.IsInf(d, 1) || d <= 0 {
		if d == 0 {
			return math.Inf(1)
		}
		return 0
	}
	return 1 / d
}

// Package meet implements the inter-node meeting-time estimation of
// §4.1.2: every node tabulates the average time between its meetings
// with every other node, exchanges these tables through the control
// channel, assembles them into a meeting-time adjacency matrix, and
// estimates the expected time for any node to meet any other within at
// most h hops (h=3 in the paper; pairs unreachable in h hops get an
// infinite expected meeting time).
package meet

import (
	"math"
	"sort"

	"rapid/internal/packet"
	"rapid/internal/stat"
)

// DefaultHops is the paper's transitive-estimation horizon
// ("In our implementation we restrict h = 3").
const DefaultHops = 3

// Table maps a peer to the expected direct inter-meeting time in
// seconds.
type Table map[packet.NodeID]float64

// Clone returns a copy of the table.
func (t Table) Clone() Table {
	c := make(Table, len(t))
	for k, v := range t {
		c[k] = v
	}
	return c
}

// Estimator is one node's view of the network's meeting behaviour. It is
// not safe for concurrent use.
//
// All per-node state is laid out struct-of-arrays style, indexed by the
// dense node ID space of a run (scenario generators hand out IDs
// 0..N-1): at mega-constellation populations the former map-keyed
// layout spent most of the hot path hashing NodeIDs and chasing map
// buckets. The exported Table type remains a map so the control-channel
// wire format and the figures stay byte-identical.
type Estimator struct {
	self packet.NodeID
	hops int

	// direct accumulates locally observed inter-meeting gaps per peer,
	// indexed by peer ID (nil = never met).
	direct []*stat.MovingAverage
	// lastSeen is the time of the previous meeting per peer, to turn
	// meeting instants into gaps. A virtual meeting at time 0 (epoch
	// start) bootstraps the first gap — exactly the semantics of the
	// slice's zero value — so a single observed meeting already yields a
	// finite, if rough, estimate that later observations refine.
	lastSeen []float64

	// tables is the merged matrix: every node's direct table as learned
	// via the control channel, indexed by owner ID (nil = unknown).
	// tables[self] mirrors direct. Rows stay sparse maps — a row only
	// holds the owner's direct peers, and densifying it would cost
	// O(N²) per estimator.
	tables []Table
	// rows mirrors tables as slices sorted by peer ID. Gossip re-merges
	// whole tables on nearly every contact while changing at most a few
	// entries; diffing two sorted slices (MergeTableFrom) costs a linear
	// scan with no hashing, where diffing through the map rows spent the
	// mega-constellation hot path in map iteration and lookups. The map
	// stays canonical for the exported Table API; every write path
	// updates both.
	rows [][]halfEdge
	// tablesGen counts row creations; together with version it keys the
	// KnownTables cache (merging an empty row installs an owner without
	// perturbing version).
	tablesGen uint64

	// version invalidates the adjacency cache and shortest-path memo on
	// any mutation.
	version uint64

	// adj is the merged matrix flattened into slice-indexed adjacency
	// lists, maintained incrementally as pairs change: estimating over
	// it is O(h·(V+E)) instead of the O(h·V²) that map-keyed relaxation
	// cost. Each adj[u] is kept sorted by target ID so membership is a
	// binary search — the former per-node position maps were the last
	// map lookups on the merge path.
	n   int // node universe size: max known ID + 1
	adj [][]halfEdge

	// memoDist caches per-source distance slices over the current
	// adjacency; distScratch is the relaxation double-buffer.
	memoVer     uint64
	memoDist    [][]float64
	distScratch []float64

	// owners caches KnownTables' sorted owner list (control exchanges
	// rebuilt and sorted it on every contact).
	owners     []packet.NodeID
	ownersVer  uint64
	ownersGen  uint64
	ownersFill bool
}

// halfEdge is one directed arc of the flattened meeting matrix.
type halfEdge struct {
	to packet.NodeID
	w  float64
}

// New returns an estimator for node self using an h-hop horizon
// (h <= 0 selects DefaultHops).
func New(self packet.NodeID, hops int) *Estimator {
	if hops <= 0 {
		hops = DefaultHops
	}
	e := &Estimator{self: self, hops: hops}
	e.ensureNode(self)
	return e
}

// Self returns the owning node's ID.
func (e *Estimator) Self() packet.NodeID { return e.self }

// Hops returns the transitive horizon.
func (e *Estimator) Hops() int { return e.hops }

// ObserveMeeting records a meeting with peer at the given time,
// updating the average inter-meeting gap.
func (e *Estimator) ObserveMeeting(peer packet.NodeID, now float64) {
	if peer == e.self || peer < 0 {
		return
	}
	e.ensureNode(peer)
	ma := e.direct[peer]
	if ma == nil {
		ma = &stat.MovingAverage{}
		e.direct[peer] = ma
	}
	ma.Observe(now - e.lastSeen[peer]) // lastSeen defaults to 0 = epoch start
	e.lastSeen[peer] = now
	// Refresh the single changed key of the mirrored self table
	// (rebuilding the whole table per observation was O(degree) on the
	// hottest write path).
	t := e.ownRow()
	t[peer] = ma.Value()
	e.rowUpsert(e.self, peer, ma.Value())
	e.refreshPair(e.self, peer)
	e.version++
}

// ownRow returns the self table, creating it on first use.
func (e *Estimator) ownRow() Table {
	if e.self < 0 {
		return Table{}
	}
	t := e.tables[e.self]
	if t == nil {
		t = Table{}
		e.tables[e.self] = t
		e.tablesGen++
	}
	return t
}

// ensureNode grows the dense per-node arrays to cover id.
func (e *Estimator) ensureNode(id packet.NodeID) {
	if id < 0 || int(id) < e.n {
		return
	}
	e.n = int(id) + 1
	for len(e.adj) < e.n {
		e.adj = append(e.adj, nil)
		e.direct = append(e.direct, nil)
		e.lastSeen = append(e.lastSeen, 0)
		e.tables = append(e.tables, nil)
		e.rows = append(e.rows, nil)
	}
}

// rowUpsert sets the mirror entry owner→peer, keeping rows[owner]
// sorted by peer ID.
func (e *Estimator) rowUpsert(owner, peer packet.NodeID, w float64) {
	lst := e.rows[owner]
	i := sort.Search(len(lst), func(k int) bool { return lst[k].to >= peer })
	if i < len(lst) && lst[i].to == peer {
		lst[i].w = w
		return
	}
	lst = append(lst, halfEdge{})
	copy(lst[i+1:], lst[i:])
	lst[i] = halfEdge{to: peer, w: w}
	e.rows[owner] = lst
}

// rowDelete removes the mirror entry owner→peer if present.
func (e *Estimator) rowDelete(owner, peer packet.NodeID) {
	lst := e.rows[owner]
	i := sort.Search(len(lst), func(k int) bool { return lst[k].to >= peer })
	if i >= len(lst) || lst[i].to != peer {
		return
	}
	e.rows[owner] = append(lst[:i], lst[i+1:]...)
}

// refreshPair re-derives the (u, v) edge weight from the two directed
// table records and patches the adjacency lists in place.
func (e *Estimator) refreshPair(u, v packet.NodeID) {
	if u == v || u < 0 || v < 0 {
		return
	}
	e.ensureNode(u)
	e.ensureNode(v)
	w := math.Inf(1)
	if t := e.tables[u]; t != nil {
		if d, ok := t[v]; ok && d < w {
			w = d
		}
	}
	if t := e.tables[v]; t != nil {
		if d, ok := t[u]; ok && d < w {
			w = d
		}
	}
	if math.IsInf(w, 1) {
		e.removeArc(u, v)
		e.removeArc(v, u)
		return
	}
	e.setArc(u, v, w)
	e.setArc(v, u, w)
}

// arcPos binary-searches adj[u] for target v, returning the position it
// occupies or should occupy.
func (e *Estimator) arcPos(u, v packet.NodeID) int {
	lst := e.adj[u]
	return sort.Search(len(lst), func(i int) bool { return lst[i].to >= v })
}

// setArc inserts or updates the directed arc u→v, keeping adj[u] sorted
// by target.
func (e *Estimator) setArc(u, v packet.NodeID, w float64) {
	i := e.arcPos(u, v)
	lst := e.adj[u]
	if i < len(lst) && lst[i].to == v {
		lst[i].w = w
		return
	}
	lst = append(lst, halfEdge{})
	copy(lst[i+1:], lst[i:])
	lst[i] = halfEdge{to: v, w: w}
	e.adj[u] = lst
}

// removeArc drops the directed arc u→v if present.
func (e *Estimator) removeArc(u, v packet.NodeID) {
	i := e.arcPos(u, v)
	lst := e.adj[u]
	if i >= len(lst) || lst[i].to != v {
		return
	}
	e.adj[u] = append(lst[:i], lst[i+1:]...)
}

// DirectTable returns a snapshot of this node's own averages, the
// payload exchanged as "expected meeting times with nodes" metadata
// (§4.2).
func (e *Estimator) DirectTable() Table {
	if e.self >= 0 && int(e.self) < e.n {
		if t := e.tables[e.self]; t != nil {
			return t.Clone()
		}
	}
	return Table{}
}

// OwnTable returns the live internal self table — the allocation-free
// form the control channel transmits every contact. Callers must treat
// it as read-only and must not retain it across estimator mutations
// (MergeTable copies, so passing it to a peer's merge is safe).
func (e *Estimator) OwnTable() Table {
	if e.self < 0 || int(e.self) >= e.n {
		return nil
	}
	return e.tables[e.self]
}

// MergeTable installs owner's direct table as learned from a metadata
// exchange, replacing any older version. The merge diffs in place —
// gossip re-delivers whole tables, but between two exchanges most
// entries are unchanged, and only moved pairs are re-derived (a no-op
// merge leaves the version, and therefore the shortest-path memo,
// untouched). The passed table is not retained.
func (e *Estimator) MergeTable(owner packet.NodeID, t Table) {
	if owner == e.self || owner < 0 {
		return // own table is maintained locally
	}
	e.ensureNode(owner)
	old := e.tables[owner]
	if old == nil {
		old = make(Table, len(t))
		e.tables[owner] = old
		e.tablesGen++
	}
	oldLen := len(old)
	matched := 0
	changed := false
	for id, w := range t {
		if ow, ok := old[id]; ok {
			matched++
			if ow == w {
				continue
			}
		}
		old[id] = w
		e.rowUpsert(owner, id, w)
		e.refreshPair(owner, id)
		changed = true
	}
	// Meeting tables only ever grow in practice; scan for removals only
	// when some old key went unmatched.
	if matched < oldLen {
		for id := range old {
			if _, still := t[id]; !still {
				delete(old, id)
				e.rowDelete(owner, id)
				e.refreshPair(owner, id)
				changed = true
			}
		}
	}
	if changed {
		e.version++
	}
}

// MergeTableFrom merges src's stored table of owner into e — the
// in-process fast path of MergeTable the control channel uses when both
// endpoints live in the same simulation. Semantics are identical to
// e.MergeTable(owner, src.TableOf(owner)); the diff runs as a linear
// merge of the two sorted row mirrors, touching the canonical map only
// at entries that actually changed.
func (e *Estimator) MergeTableFrom(src *Estimator, owner packet.NodeID) {
	if owner == e.self || owner < 0 || src == e {
		return
	}
	var incoming []halfEdge
	if int(owner) < src.n {
		incoming = src.rows[owner]
	}
	e.ensureNode(owner)
	old := e.tables[owner]
	if old == nil {
		old = make(Table, len(incoming))
		e.tables[owner] = old
		e.tablesGen++
	}
	dst := e.rows[owner]
	changed := false
	i, j := 0, 0
	for i < len(dst) && j < len(incoming) {
		a, b := dst[i], incoming[j]
		switch {
		case a.to == b.to:
			if a.w != b.w {
				old[b.to] = b.w
				e.refreshPair(owner, b.to)
				changed = true
			}
			i++
			j++
		case b.to < a.to: // new entry
			old[b.to] = b.w
			e.refreshPair(owner, b.to)
			changed = true
			j++
		default: // removed entry
			delete(old, a.to)
			e.refreshPair(owner, a.to)
			changed = true
			i++
		}
	}
	for ; i < len(dst); i++ {
		delete(old, dst[i].to)
		e.refreshPair(owner, dst[i].to)
		changed = true
	}
	for ; j < len(incoming); j++ {
		old[incoming[j].to] = incoming[j].w
		e.refreshPair(owner, incoming[j].to)
		changed = true
	}
	// After the diff the row equals the incoming table exactly; rebuild
	// the mirror as a copy rather than patching entry by entry.
	if changed {
		e.rows[owner] = append(e.rows[owner][:0], incoming...)
		e.version++
	}
}

// KnownTables returns the ascending set of owners whose tables have
// been merged (plus self if it has observed anything). Exposed for
// control-plane delta encoding. The returned slice is cached behind the
// mutation counters and must not be modified or retained across
// estimator mutations.
func (e *Estimator) KnownTables() []packet.NodeID {
	if e.ownersFill && e.ownersVer == e.version && e.ownersGen == e.tablesGen {
		return e.owners
	}
	e.owners = e.owners[:0]
	for id, t := range e.tables {
		if t != nil {
			e.owners = append(e.owners, packet.NodeID(id))
		}
	}
	e.ownersVer = e.version
	e.ownersGen = e.tablesGen
	e.ownersFill = true
	return e.owners
}

// TableOf returns the stored direct table of a node (nil if unknown).
// The returned map must not be modified.
func (e *Estimator) TableOf(owner packet.NodeID) Table {
	if owner < 0 || int(owner) >= e.n {
		return nil
	}
	return e.tables[owner]
}

// Version counts matrix mutations. Consumers caching derived values
// (RAPID's delay-estimate cache) compare versions instead of
// subscribing to events.
func (e *Estimator) Version() uint64 { return e.version }

// Expected returns E(M_from,to): the expected time for node `from` to
// meet node `to` within at most h hops, computed as the minimum over
// paths of at most h edges of the sum of expected direct inter-meeting
// times (the paper's example: X meets Z via Y in expected time
// E(M_XY) + E(M_YZ)). Returns +Inf when `to` is unreachable within h
// hops of the current matrix.
func (e *Estimator) Expected(from, to packet.NodeID) float64 {
	if from == to {
		return 0
	}
	if e.memoVer != e.version || len(e.memoDist) < e.n {
		if cap(e.memoDist) < e.n {
			e.memoDist = make([][]float64, e.n)
		} else {
			e.memoDist = e.memoDist[:e.n]
			clear(e.memoDist)
		}
		e.memoVer = e.version
	}
	if int(from) < 0 || int(from) >= e.n {
		return math.Inf(1)
	}
	dist := e.memoDist[from]
	if dist == nil {
		dist = e.shortestWithin(from)
		e.memoDist[from] = dist
	}
	if int(to) < 0 || int(to) >= len(dist) {
		return math.Inf(1)
	}
	return dist[to]
}

// shortestWithin runs h level-synchronous rounds of Bellman-Ford
// relaxation from src over the adjacency lists, yielding min-cost paths
// with at most h edges. Each round reads the previous round's
// distances, so a path can never accumulate more than h hops. The
// returned slice is freshly allocated (the memo retains it); the
// double-buffer partner is reused across calls.
func (e *Estimator) shortestWithin(src packet.NodeID) []float64 {
	inf := math.Inf(1)
	cur := make([]float64, e.n)
	if cap(e.distScratch) < e.n {
		e.distScratch = make([]float64, e.n)
	}
	next := e.distScratch[:e.n]
	fresh := cur
	for i := range cur {
		cur[i] = inf
	}
	cur[src] = 0
	for hop := 0; hop < e.hops; hop++ {
		copy(next, cur)
		improved := false
		for u, du := range cur {
			if math.IsInf(du, 1) {
				continue
			}
			for _, ed := range e.adj[u] {
				if d := du + ed.w; d < next[ed.to] {
					next[ed.to] = d
					improved = true
				}
			}
		}
		cur, next = next, cur
		if !improved {
			break
		}
	}
	cur[src] = 0
	// An odd number of swaps leaves `cur` pointing at the scratch
	// buffer; copy back so the memoized row survives the next query.
	if &cur[0] != &fresh[0] {
		copy(fresh, cur)
		cur = fresh
	}
	return cur
}

// Rate returns the meeting rate lambda = 1/E(M_from,to), or 0 when the
// pair is unreachable — the form used directly in Eq. 9.
func (e *Estimator) Rate(from, to packet.NodeID) float64 {
	d := e.Expected(from, to)
	if math.IsInf(d, 1) || d <= 0 {
		if d == 0 {
			return math.Inf(1)
		}
		return 0
	}
	return 1 / d
}

// Package meet implements the inter-node meeting-time estimation of
// §4.1.2: every node tabulates the average time between its meetings
// with every other node, exchanges these tables through the control
// channel, assembles them into a meeting-time adjacency matrix, and
// estimates the expected time for any node to meet any other within at
// most h hops (h=3 in the paper; pairs unreachable in h hops get an
// infinite expected meeting time).
package meet

import (
	"math"

	"rapid/internal/packet"
	"rapid/internal/stat"
)

// DefaultHops is the paper's transitive-estimation horizon
// ("In our implementation we restrict h = 3").
const DefaultHops = 3

// Table maps a peer to the expected direct inter-meeting time in
// seconds.
type Table map[packet.NodeID]float64

// Clone returns a copy of the table.
func (t Table) Clone() Table {
	c := make(Table, len(t))
	for k, v := range t {
		c[k] = v
	}
	return c
}

// Estimator is one node's view of the network's meeting behaviour. It is
// not safe for concurrent use.
type Estimator struct {
	self packet.NodeID
	hops int

	// direct accumulates locally observed inter-meeting gaps per peer.
	direct map[packet.NodeID]*stat.MovingAverage
	// lastSeen is the time of the previous meeting per peer, to turn
	// meeting instants into gaps. A virtual meeting at time 0 (epoch
	// start) bootstraps the first gap, so a single observed meeting
	// already yields a finite — if rough — estimate that later
	// observations refine.
	lastSeen map[packet.NodeID]float64

	// tables is the merged matrix: every node's direct table as learned
	// via the control channel. tables[self] mirrors direct.
	tables map[packet.NodeID]Table

	// version invalidates the shortest-path memo on any mutation.
	version uint64
	memoVer uint64
	memo    map[packet.NodeID]Table
}

// New returns an estimator for node self using an h-hop horizon
// (h <= 0 selects DefaultHops).
func New(self packet.NodeID, hops int) *Estimator {
	if hops <= 0 {
		hops = DefaultHops
	}
	return &Estimator{
		self:     self,
		hops:     hops,
		direct:   make(map[packet.NodeID]*stat.MovingAverage),
		lastSeen: make(map[packet.NodeID]float64),
		tables:   map[packet.NodeID]Table{},
		memo:     make(map[packet.NodeID]Table),
	}
}

// Self returns the owning node's ID.
func (e *Estimator) Self() packet.NodeID { return e.self }

// Hops returns the transitive horizon.
func (e *Estimator) Hops() int { return e.hops }

// ObserveMeeting records a meeting with peer at the given time,
// updating the average inter-meeting gap.
func (e *Estimator) ObserveMeeting(peer packet.NodeID, now float64) {
	if peer == e.self {
		return
	}
	ma := e.direct[peer]
	if ma == nil {
		ma = &stat.MovingAverage{}
		e.direct[peer] = ma
	}
	ma.Observe(now - e.lastSeen[peer]) // lastSeen defaults to 0 = epoch start
	e.lastSeen[peer] = now
	e.syncSelfTable()
	e.version++
}

// syncSelfTable refreshes tables[self] from the direct averages.
func (e *Estimator) syncSelfTable() {
	t := make(Table, len(e.direct))
	for id, ma := range e.direct {
		if ma.N() > 0 {
			t[id] = ma.Value()
		}
	}
	e.tables[e.self] = t
}

// DirectTable returns a snapshot of this node's own averages, the
// payload exchanged as "expected meeting times with nodes" metadata
// (§4.2).
func (e *Estimator) DirectTable() Table {
	if t, ok := e.tables[e.self]; ok {
		return t.Clone()
	}
	return Table{}
}

// MergeTable installs (a copy of) owner's direct table as learned from a
// metadata exchange, replacing any older version.
func (e *Estimator) MergeTable(owner packet.NodeID, t Table) {
	if owner == e.self {
		return // own table is maintained locally
	}
	e.tables[owner] = t.Clone()
	e.version++
}

// KnownTables returns the set of owners whose tables have been merged
// (plus self if it has observed anything). Exposed for control-plane
// delta encoding.
func (e *Estimator) KnownTables() []packet.NodeID {
	out := make([]packet.NodeID, 0, len(e.tables))
	for id := range e.tables {
		out = append(out, id)
	}
	return out
}

// TableOf returns the stored direct table of a node (nil if unknown).
// The returned map must not be modified.
func (e *Estimator) TableOf(owner packet.NodeID) Table { return e.tables[owner] }

// Expected returns E(M_from,to): the expected time for node `from` to
// meet node `to` within at most h hops, computed as the minimum over
// paths of at most h edges of the sum of expected direct inter-meeting
// times (the paper's example: X meets Z via Y in expected time
// E(M_XY) + E(M_YZ)). Returns +Inf when `to` is unreachable within h
// hops of the current matrix.
func (e *Estimator) Expected(from, to packet.NodeID) float64 {
	if from == to {
		return 0
	}
	if e.memoVer != e.version {
		e.memo = make(map[packet.NodeID]Table)
		e.memoVer = e.version
	}
	dist, ok := e.memo[from]
	if !ok {
		dist = e.shortestWithin(from)
		e.memo[from] = dist
	}
	if d, ok := dist[to]; ok {
		return d
	}
	return math.Inf(1)
}

// edgeWeight returns the best known direct expected meeting time between
// u and v. Meetings are symmetric but the two endpoints' tables can
// disagree (different observation histories); the optimistic minimum is
// used.
func (e *Estimator) edgeWeight(u, v packet.NodeID) float64 {
	w := math.Inf(1)
	if t, ok := e.tables[u]; ok {
		if d, ok := t[v]; ok && d < w {
			w = d
		}
	}
	if t, ok := e.tables[v]; ok {
		if d, ok := t[u]; ok && d < w {
			w = d
		}
	}
	return w
}

// shortestWithin runs h rounds of Bellman-Ford relaxation from src over
// the merged matrix, yielding min-cost paths with at most h edges.
func (e *Estimator) shortestWithin(src packet.NodeID) Table {
	// Collect the node universe: table owners and their targets.
	universe := map[packet.NodeID]bool{src: true}
	for owner, t := range e.tables {
		universe[owner] = true
		for id := range t {
			universe[id] = true
		}
	}
	dist := Table{src: 0}
	for hop := 0; hop < e.hops; hop++ {
		next := dist.Clone()
		improved := false
		for u, du := range dist {
			if math.IsInf(du, 1) {
				continue
			}
			for v := range universe {
				if v == u {
					continue
				}
				w := e.edgeWeight(u, v)
				if math.IsInf(w, 1) {
					continue
				}
				if dv, ok := next[v]; !ok || du+w < dv {
					next[v] = du + w
					improved = true
				}
			}
		}
		dist = next
		if !improved {
			break
		}
	}
	delete(dist, src)
	return dist
}

// Rate returns the meeting rate lambda = 1/E(M_from,to), or 0 when the
// pair is unreachable — the form used directly in Eq. 9.
func (e *Estimator) Rate(from, to packet.NodeID) float64 {
	d := e.Expected(from, to)
	if math.IsInf(d, 1) || d <= 0 {
		if d == 0 {
			return math.Inf(1)
		}
		return 0
	}
	return 1 / d
}

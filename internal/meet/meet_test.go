package meet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rapid/internal/packet"
)

func TestObserveMeetingBuildsAverages(t *testing.T) {
	e := New(0, 3)
	e.ObserveMeeting(1, 100) // gap 100 from virtual epoch meeting
	e.ObserveMeeting(1, 300) // gap 200
	tbl := e.DirectTable()
	if got := tbl[1]; got != 150 {
		t.Errorf("avg gap %v want 150", got)
	}
	if got := e.Expected(0, 1); got != 150 {
		t.Errorf("Expected(0,1)=%v want 150", got)
	}
	// Self-meetings are ignored; self expected time is 0.
	e.ObserveMeeting(0, 400)
	if got := e.Expected(0, 0); got != 0 {
		t.Errorf("Expected(0,0)=%v want 0", got)
	}
}

func TestExpectedUnknownIsInf(t *testing.T) {
	e := New(0, 3)
	if got := e.Expected(0, 9); !math.IsInf(got, 1) {
		t.Errorf("unknown peer: %v want +Inf", got)
	}
	if got := e.Rate(0, 9); got != 0 {
		t.Errorf("unknown rate %v want 0", got)
	}
}

func TestTransitiveEstimateTwoHops(t *testing.T) {
	// X(0) meets Y(1) every 100 s; Y meets Z(2) every 50 s. X never
	// meets Z directly: the 2-hop estimate is 150 s (paper's example).
	e := New(0, 3)
	e.ObserveMeeting(1, 100)
	e.ObserveMeeting(1, 200) // avg 100
	e.MergeTable(1, Table{2: 50})
	if got := e.Expected(0, 2); got != 150 {
		t.Errorf("two-hop expected %v want 150", got)
	}
	// Rate is the reciprocal.
	if got := e.Rate(0, 2); !almostEq(got, 1.0/150, 1e-12) {
		t.Errorf("rate %v", got)
	}
}

func TestHopBoundRestrictsPaths(t *testing.T) {
	// Chain 0-1-2-3-4 each hop 10 s. With h=3, node 4 is unreachable
	// from 0 (needs 4 hops); with h=4 it is 40 s.
	build := func(h int) *Estimator {
		e := New(0, h)
		e.ObserveMeeting(1, 10)
		e.MergeTable(1, Table{0: 10, 2: 10})
		e.MergeTable(2, Table{1: 10, 3: 10})
		e.MergeTable(3, Table{2: 10, 4: 10})
		return e
	}
	e3 := build(3)
	if got := e3.Expected(0, 3); got != 30 {
		t.Errorf("3-hop distance %v want 30", got)
	}
	if got := e3.Expected(0, 4); !math.IsInf(got, 1) {
		t.Errorf("4-hop target with h=3: %v want +Inf", got)
	}
	e4 := build(4)
	if got := e4.Expected(0, 4); got != 40 {
		t.Errorf("4-hop distance with h=4: %v want 40", got)
	}
}

func TestDirectBeatsLongerPath(t *testing.T) {
	e := New(0, 3)
	e.ObserveMeeting(1, 10)  // 0-1 avg 10
	e.ObserveMeeting(2, 100) // 0-2 avg 100
	e.MergeTable(1, Table{2: 5})
	// Path 0-1-2 costs 15 < direct 100.
	if got := e.Expected(0, 2); got != 15 {
		t.Errorf("min path %v want 15", got)
	}
}

func TestExpectedForThirdParties(t *testing.T) {
	// RAPID needs E(M_XjZ) for other replica holders Xj, computed from
	// the merged matrix.
	e := New(0, 3)
	e.MergeTable(5, Table{7: 42})
	if got := e.Expected(5, 7); got != 42 {
		t.Errorf("third-party expected %v want 42", got)
	}
	if got := e.Expected(7, 5); got != 42 {
		t.Errorf("symmetric lookup %v want 42", got)
	}
}

func TestEdgeWeightTakesOptimisticMin(t *testing.T) {
	e := New(0, 3)
	e.ObserveMeeting(1, 80) // our view: 80
	e.MergeTable(1, Table{0: 60})
	if got := e.Expected(0, 1); got != 60 {
		t.Errorf("edge weight %v want min(80,60)=60", got)
	}
}

func TestMergeTableCopiesAndSelfIgnored(t *testing.T) {
	e := New(0, 3)
	src := Table{2: 10}
	e.MergeTable(1, src)
	src[2] = 999 // mutate caller's map
	if got := e.Expected(1, 2); got != 10 {
		t.Errorf("MergeTable must copy: %v", got)
	}
	e.ObserveMeeting(1, 50)
	e.MergeTable(0, Table{1: 1}) // attempts to overwrite own table
	if got := e.Expected(0, 1); got != 50 {
		t.Errorf("own table overwritten by merge: %v", got)
	}
}

func TestMemoInvalidation(t *testing.T) {
	e := New(0, 3)
	e.ObserveMeeting(1, 100)
	if got := e.Expected(0, 1); got != 100 {
		t.Fatalf("first estimate %v", got)
	}
	e.ObserveMeeting(1, 200) // avg now 100, (100+100)/2
	if got := e.Expected(0, 1); got != 100 {
		t.Fatalf("second estimate %v", got)
	}
	e.ObserveMeeting(1, 800) // gaps 100,100,600 -> avg 266.67
	want := (100.0 + 100.0 + 600.0) / 3.0
	if got := e.Expected(0, 1); !almostEq(got, want, 1e-9) {
		t.Errorf("post-update estimate %v want %v", got, want)
	}
}

// Property: the estimator's h-hop expected meeting time matches a
// brute-force shortest-path-with-hop-bound computation on random
// matrices.
func TestExpectedIsShortestPathProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(5)
		return propCheck(r, n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func propCheck(r *rand.Rand, n int) bool {
	e := New(0, 3)
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
		for j := range w[i] {
			w[i][j] = math.Inf(1)
		}
	}
	for i := 0; i < n; i++ {
		t := Table{}
		for j := 0; j < n; j++ {
			if i != j && r.Float64() < 0.5 {
				d := 1 + r.Float64()*100
				t[packet.NodeID(j)] = d
				if d < w[i][j] {
					w[i][j] = d
					w[j][i] = d
				}
			}
		}
		if i == 0 {
			for id, d := range t {
				// Feed as direct observations: one gap of d.
				e.ObserveMeeting(id, d)
			}
		} else {
			e.MergeTable(packet.NodeID(i), t)
		}
	}
	// Brute force: min cost over paths with <= 3 edges.
	for dst := 1; dst < n; dst++ {
		want := bruteShortest(w, 0, dst, 3)
		got := e.Expected(0, packet.NodeID(dst))
		if math.IsInf(want, 1) != math.IsInf(got, 1) {
			return false
		}
		if !math.IsInf(want, 1) && !almostEq(got, want, 1e-9) {
			return false
		}
	}
	return true
}

func bruteShortest(w [][]float64, src, dst, hops int) float64 {
	n := len(w)
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for h := 0; h < hops; h++ {
		next := append([]float64(nil), dist...)
		for u := 0; u < n; u++ {
			if math.IsInf(dist[u], 1) {
				continue
			}
			for v := 0; v < n; v++ {
				if u != v && dist[u]+w[u][v] < next[v] {
					next[v] = dist[u] + w[u][v]
				}
			}
		}
		dist = next
	}
	return dist[dst]
}

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// Package service is the long-lived simulation service behind cmd/simd:
// an HTTP/JSON northbound API over the scenario registry and the
// experiment engine. Submissions become jobs on a bounded queue; a
// fixed pool of runners executes them on a per-service exp.Engine
// (never the package-global default, whose setters are batch-CLI
// startup knobs), streams per-event telemetry to subscribers, and
// exposes Prometheus text-format metrics. Results are byte-identical
// to cmd/experiments for the same scenarios: both front ends share the
// scenario expansion, the engine, and the summary-table renderer.
//
// DESIGN.md §14 documents the architecture: job controller, telemetry
// fan-out, metrics taxonomy and shutdown semantics.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"rapid/internal/exp"
	"rapid/internal/metrics"
	"rapid/internal/packet"
	"rapid/internal/routing"
	"rapid/internal/scenario"
)

// Config sizes the service. The zero value is usable: every field has
// a sensible default applied by New.
type Config struct {
	// EngineWorkers sizes the experiment engine's scenario pool
	// (0 = GOMAXPROCS).
	EngineWorkers int
	// CacheLimit bounds the engine's summary cache (0 = default).
	CacheLimit int
	// RunWorkers is the service-wide intra-run worker default, applied
	// instance-scoped through the engine (0 = serial). Per-job
	// run_workers and per-scenario pins take precedence.
	RunWorkers int
	// MaxConcurrentJobs bounds jobs executing at once (default 2).
	MaxConcurrentJobs int
	// QueueDepth bounds jobs waiting to run; submissions beyond it are
	// rejected with 429 (default 64).
	QueueDepth int
}

// Server is one service instance. Construct with New; Handler serves
// the API; Drain stops it.
type Server struct {
	cfg     Config
	engine  *exp.Engine
	metrics *serviceMetrics
	mux     *http.ServeMux

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for deterministic listings
	nextID   int
	queued   int
	running  int
	draining bool

	queue chan *Job
	wg    sync.WaitGroup
}

// New builds a service and starts its runner pool.
func New(cfg Config) *Server {
	if cfg.MaxConcurrentJobs <= 0 {
		cfg.MaxConcurrentJobs = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	s := &Server{
		cfg:     cfg,
		engine:  exp.NewEngine(cfg.EngineWorkers, cfg.CacheLimit),
		metrics: newServiceMetrics(),
		jobs:    make(map[string]*Job),
		queue:   make(chan *Job, cfg.QueueDepth),
	}
	s.engine.SetRunWorkers(cfg.RunWorkers)
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	for i := 0; i < cfg.MaxConcurrentJobs; i++ {
		s.wg.Add(1)
		go s.runner()
	}
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// Engine exposes the instance engine (tests assert cache behavior).
func (s *Server) Engine() *exp.Engine { return s.engine }

// Handler returns the root HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops intake, cancels queued jobs, waits for running jobs to
// finish (or ctx to expire), then releases the runner pool. Safe to
// call once; returns the number of jobs that completed during the
// drain plus an error when ctx expired first.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()
	close(s.queue) // runners cancel whatever is still queued and exit

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Force-cancel in-flight jobs and give them a moment to unwind.
		s.baseCancel()
		select {
		case <-done:
			return nil
		case <-time.After(2 * time.Second): //rapidlint:allow nondeterminism — shutdown grace timer; never feeds simulation state
			return fmt.Errorf("service: drain timed out with jobs still running")
		}
	}
}

// runner consumes the queue until Drain closes it. Jobs cancelled (or
// arriving after drain began) are skipped; everything else runs on the
// shared engine.
func (s *Server) runner() {
	defer s.wg.Done()
	for j := range s.queue {
		s.mu.Lock()
		s.queued--
		draining := s.draining
		s.mu.Unlock()
		if draining || !j.setRunning() {
			j.markCancelled()
			s.metrics.jobFinished(stateCancelled, 0)
			continue
		}
		s.mu.Lock()
		s.running++
		s.mu.Unlock()
		s.runJob(j)
		s.mu.Lock()
		s.running--
		s.mu.Unlock()
	}
}

// runJob executes one job to a terminal state. Panics inside a run
// (invalid scenario geometry, protocol contract violations) fail the
// job instead of the process.
func (s *Server) runJob(j *Job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	j.mu.Lock()
	j.cancel = cancel
	requested := j.cancelRequested
	j.mu.Unlock()
	if requested {
		// A DELETE raced the runner between setRunning and the install
		// above; honor it before any scenario executes.
		cancel()
	}
	defer cancel()

	var (
		sums []metrics.Summary
		err  error
	)
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("run panicked: %v", r)
			}
		}()
		if j.Spec.Telemetry {
			sums, err = s.runTelemetry(ctx, j)
		} else {
			sums, err = s.runCached(ctx, j)
		}
	}()

	switch {
	case err != nil && (ctx.Err() != nil || err == context.Canceled):
		j.finish(stateCancelled, "", nil, "")
	case err != nil:
		j.finish(stateFailed, err.Error(), nil, "")
	default:
		j.finish(stateDone, "", sums, exp.RenderFamilySummaryTable(j.scs, sums))
	}
	st := j.status()
	s.metrics.jobFinished(st.State, j.runSeconds())
}

// runCached executes through the engine's summary cache — the default
// path, sharing results with every previous job of identical
// scenarios.
func (s *Server) runCached(ctx context.Context, j *Job) ([]metrics.Summary, error) {
	sums, err := s.engine.SummariesCtx(ctx, j.scs)
	if err != nil {
		return nil, err
	}
	for i, sum := range sums {
		sum := sum
		j.markScenarioDone(i, &sum)
		s.metrics.scenarioDone(0)
	}
	return sums, nil
}

// markScenarioDone advances the progress counter and emits the
// scenario_done event.
func (j *Job) markScenarioDone(i int, sum *metrics.Summary) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.completed++
	j.appendLocked(Event{
		Type: "scenario_done", Scenario: ptr(i),
		Protocol: string(j.scs[i].Protocol), Load: ptr(j.scs[i].Workload.Load), Run: ptr(j.scs[i].Run),
		Summary: sum,
	})
}

// runTelemetry executes each scenario directly with routing.Hooks
// attached, streaming per-packet events. Hooks force the serial
// intra-run engine, and the direct path bypasses the summary cache;
// summaries are byte-identical to the cached path, so mixed
// telemetry/cached jobs over the same family agree exactly.
func (s *Server) runTelemetry(ctx context.Context, j *Job) ([]metrics.Summary, error) {
	sums := make([]metrics.Summary, len(j.scs))
	for i, sc := range j.scs {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		j.append(Event{
			Type: "scenario_start", Scenario: ptr(i),
			Protocol: string(sc.Protocol), Load: ptr(sc.Workload.Load), Run: ptr(sc.Run),
		})
		col, horizon := runHooked(sc, j, i)
		sums[i] = col.Summarize(horizon)
		j.markScenarioDone(i, &sums[i])
		s.metrics.scenarioDone(col.EventsExecuted)
	}
	return sums, nil
}

// runHooked is scenario.Execute with telemetry hooks spliced into the
// materialized run.
func runHooked(sc scenario.Scenario, j *Job, idx int) (*metrics.Collector, float64) {
	rs := sc.Materialize()
	horizon := 0.0
	if rs.Schedule != nil {
		horizon = rs.Schedule.Duration
	} else if rs.Plan != nil {
		horizon = rs.Plan.Duration
	}
	rs.Hooks = &routing.Hooks{
		OnGenerated: func(p *packet.Packet, now float64) {
			j.append(Event{Type: "generated", Scenario: ptr(idx), T: ptr(now),
				Packet: ptr(int64(p.ID)), Src: ptr(int(p.Src)), Dst: ptr(int(p.Dst))})
		},
		OnDelivered: func(id packet.ID, dst packet.NodeID, now float64) {
			j.append(Event{Type: "delivered", Scenario: ptr(idx), T: ptr(now),
				Packet: ptr(int64(id)), Dst: ptr(int(dst))})
		},
		OnLost: func(id packet.ID, from, to packet.NodeID, now float64) {
			j.append(Event{Type: "lost", Scenario: ptr(idx), T: ptr(now),
				Packet: ptr(int64(id)), Src: ptr(int(from)), Dst: ptr(int(to))})
		},
		OnOpportunityDone: func(a, b packet.NodeID, capacity, spent int64, windowed bool, now float64) {
			j.append(Event{Type: "opportunity", Scenario: ptr(idx), T: ptr(now),
				Src: ptr(int(a)), Dst: ptr(int(b)), Capacity: ptr(capacity), Spent: ptr(spent)})
		},
	}
	return routing.Run(rs), horizon
}

// ---------------------------------------------------------------------
// HTTP layer

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/families", s.handleFamilies)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/table", s.handleTable)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.engine.CacheStats()
	s.mu.Lock()
	g := gaugeSnapshot{
		jobsRunning: s.running, jobsQueued: s.queued,
		cacheHits: hits, cacheMisses: misses, cacheLen: s.engine.CacheLen(),
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, s.metrics.render(g))
}

func (s *Server) handleFamilies(w http.ResponseWriter, r *http.Request) {
	type fam struct {
		Name string `json:"name"`
		Doc  string `json:"doc"`
	}
	var out []fam
	for _, f := range scenario.Families() {
		out = append(out, fam{Name: f.Name, Doc: f.Doc})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.metrics.rejected()
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	scs, err := expandSpec(spec)
	if err != nil {
		s.metrics.rejected()
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.metrics.rejected()
		writeError(w, http.StatusServiceUnavailable, "service is draining")
		return
	}
	s.nextID++
	id := fmt.Sprintf("job-%06d", s.nextID)
	j := newJob(id, spec, scs)
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		s.metrics.rejected()
		writeError(w, http.StatusTooManyRequests, "job queue full (%d pending)", s.cfg.QueueDepth)
		return
	}
	s.queued++
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()
	s.metrics.submitted()
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) job(r *http.Request) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[r.PathValue("id")]
	return j, ok
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		st := j.status()
		st.Summaries, st.Table = nil, "" // listing stays light
		out = append(out, st)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleTable serves the finished job's summary table as plain text —
// the byte-identity oracle the CI smoke job diffs against
// cmd/experiments output without JSON unwrapping.
func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	st := j.status()
	if st.State != stateDone {
		writeError(w, http.StatusConflict, "job %s is %s, not done", j.ID, st.State)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, st.Table)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	j.markCancelled() // queued → cancelled immediately
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel() // running → runner finishes it as cancelled
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleEvents streams the job's telemetry log from the beginning:
// NDJSON by default, Server-Sent Events when the client asks for
// text/event-stream. The stream follows appends until the job is
// terminal, then closes.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-store")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	// A dead client must not park this handler on the condition
	// variable forever: wake the waiters when the request context ends.
	stop := context.AfterFunc(r.Context(), j.wake)
	defer stop()

	next := 0
	for {
		evs, done := j.snapshotEvents(next)
		next += len(evs)
		for _, ev := range evs {
			line, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if sse {
				fmt.Fprintf(w, "data: %s\n\n", line)
			} else {
				fmt.Fprintf(w, "%s\n", line)
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if done && len(evs) == 0 {
			return
		}
		if r.Context().Err() != nil {
			return
		}
		if done {
			// Drain any events appended between snapshot and now, then
			// exit on the next empty read.
			continue
		}
	}
}

package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"rapid/internal/exp"
)

// testServer boots a service plus an HTTP front end, both torn down
// with the test.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, spec string) JobStatus {
	t.Helper()
	st, code := submitCode(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit %s: status %d", spec, code)
	}
	return st
}

func submitCode(t *testing.T, ts *httptest.Server, spec string) (JobStatus, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return st, resp.StatusCode
}

func getStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: %d", id, resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return st
}

// waitTerminal polls until the job reaches a final state.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if terminal(st.State) {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobStatus{}
}

// smokeSpec is the fast single-arm family most tests submit: two
// scenarios, a few hundred milliseconds of work.
const smokeSpec = `{"family":"synth-exponential","scale":"tiny","protocols":["Random"]}`

func TestFamilyJobMatchesEngineOracle(t *testing.T) {
	_, ts := testServer(t, Config{})
	st := waitTerminal(t, ts, submit(t, ts, smokeSpec).ID)
	if st.State != stateDone {
		t.Fatalf("job state = %s (error %q), want done", st.State, st.Error)
	}
	if st.Completed != st.Scenarios || st.Scenarios == 0 {
		t.Fatalf("completed %d of %d scenarios", st.Completed, st.Scenarios)
	}

	// Oracle: the same expansion run on an independent engine must match
	// the job byte for byte — the service adds no execution semantics.
	var spec JobSpec
	if err := json.Unmarshal([]byte(smokeSpec), &spec); err != nil {
		t.Fatal(err)
	}
	scs, err := expandSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	oracle := exp.NewEngine(0, 0)
	sums := oracle.Summaries(scs)
	if !reflect.DeepEqual(st.Summaries, sums) {
		t.Errorf("job summaries diverge from direct engine run:\n got %+v\nwant %+v", st.Summaries, sums)
	}
	if want := exp.RenderFamilySummaryTable(scs, sums); st.Table != want {
		t.Errorf("job table diverges from direct render:\n got %q\nwant %q", st.Table, want)
	}

	// The plain-text table endpoint serves the same bytes.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/table")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != st.Table {
		t.Errorf("table endpoint bytes differ from status table")
	}
}

func TestSingleScenarioJob(t *testing.T) {
	_, ts := testServer(t, Config{})
	spec := `{"scenario":{"Protocol":"Random","Run":0}}`
	// A raw scenario needs real geometry; reuse a family expansion
	// instead so the scenario is well formed end to end.
	var js JobSpec
	if err := json.Unmarshal([]byte(smokeSpec), &js); err != nil {
		t.Fatal(err)
	}
	scs, err := expandSpec(js)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(JobSpec{Scenario: &scs[0]})
	if err != nil {
		t.Fatal(err)
	}
	spec = string(raw)
	st := waitTerminal(t, ts, submit(t, ts, spec).ID)
	if st.State != stateDone {
		t.Fatalf("state = %s (error %q)", st.State, st.Error)
	}
	if len(st.Summaries) != 1 {
		t.Fatalf("got %d summaries, want 1", len(st.Summaries))
	}
	if want := scs[0].Summary(); !reflect.DeepEqual(st.Summaries[0], want) {
		t.Errorf("single-scenario summary diverges:\n got %+v\nwant %+v", st.Summaries[0], want)
	}
}

// TestTelemetryStreamMatchesSummaries streams a telemetry job and
// checks the event log is coherent: ordered lifecycle markers, one
// scenario_done per scenario, per-packet generated counts agreeing
// exactly with the summaries, and summaries byte-identical to the
// cached (hook-free) path.
func TestTelemetryStreamMatchesSummaries(t *testing.T) {
	_, ts := testServer(t, Config{})
	spec := `{"family":"synth-exponential","scale":"tiny","protocols":["Random"],"telemetry":true}`
	id := submit(t, ts, spec).ID

	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content-type = %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if len(events) < 4 {
		t.Fatalf("only %d events", len(events))
	}
	if events[0].Type != "job_queued" {
		t.Errorf("first event %q, want job_queued", events[0].Type)
	}
	last := events[len(events)-1]
	if last.Type != "job_done" || last.State != stateDone {
		t.Fatalf("last event %+v, want job_done/done", last)
	}

	st := waitTerminal(t, ts, id)
	generated := map[int]int{}
	var scenarioDone int
	for _, ev := range events {
		switch ev.Type {
		case "generated":
			if ev.Scenario == nil {
				t.Fatalf("generated event without scenario index: %+v", ev)
			}
			generated[*ev.Scenario]++
		case "scenario_done":
			if ev.Summary == nil {
				t.Errorf("scenario_done %v without summary", ev.Scenario)
			}
			scenarioDone++
		}
	}
	if scenarioDone != st.Scenarios {
		t.Errorf("%d scenario_done events for %d scenarios", scenarioDone, st.Scenarios)
	}
	for i, sum := range st.Summaries {
		if generated[i] != sum.Generated {
			t.Errorf("scenario %d: %d generated events, summary says %d", i, generated[i], sum.Generated)
		}
	}

	// Hooks force the serial engine and bypass the summary cache; the
	// results must still be byte-identical to the cached path.
	plain := waitTerminal(t, ts, submit(t, ts, smokeSpec).ID)
	if plain.State != stateDone {
		t.Fatalf("plain job state %s", plain.State)
	}
	if st.Table != plain.Table {
		t.Errorf("telemetry and cached tables diverge:\n got %q\nwant %q", st.Table, plain.Table)
	}
}

func TestSSEFraming(t *testing.T) {
	_, ts := testServer(t, Config{})
	id := submit(t, ts, smokeSpec).ID
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+id+"/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("content-type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	for _, line := range bytes.Split(bytes.TrimSpace(body), []byte("\n\n")) {
		if !bytes.HasPrefix(line, []byte("data: ")) {
			t.Fatalf("SSE frame %q lacks data: prefix", line)
		}
	}
	if !bytes.Contains(body, []byte(`"job_done"`)) {
		t.Errorf("SSE stream ended without job_done")
	}
}

// TestConcurrentJobsDifferentRunWorkers exercises the instance-scoped
// worker plumbing under the race detector: concurrent submissions with
// different intra-run worker counts must produce identical tables.
func TestConcurrentJobsDifferentRunWorkers(t *testing.T) {
	_, ts := testServer(t, Config{MaxConcurrentJobs: 3})
	workers := []int{1, 2, 8}
	ids := make([]string, len(workers))
	var wg sync.WaitGroup
	for i, w := range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			spec := fmt.Sprintf(`{"family":"synth-exponential","scale":"tiny","protocols":["Random"],"run_workers":%d}`, w)
			ids[i] = submit(t, ts, spec).ID
		}()
	}
	wg.Wait()
	tables := make([]string, len(ids))
	for i, id := range ids {
		st := waitTerminal(t, ts, id)
		if st.State != stateDone {
			t.Fatalf("job %s (run_workers=%d) state %s: %s", id, workers[i], st.State, st.Error)
		}
		tables[i] = st.Table
	}
	for i := 1; i < len(tables); i++ {
		if tables[i] != tables[0] {
			t.Errorf("run_workers=%d table differs from run_workers=%d", workers[i], workers[0])
		}
	}
}

func TestCancelQueuedJob(t *testing.T) {
	_, ts := testServer(t, Config{MaxConcurrentJobs: 1})
	// Occupy the single runner long enough to cancel the job behind it.
	blocker := submit(t, ts, `{"family":"synth-exponential","scale":"tiny"}`)
	victim := submit(t, ts, smokeSpec)

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+victim.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st := waitTerminal(t, ts, victim.ID)
	if st.State != stateCancelled {
		t.Fatalf("victim state %s, want cancelled", st.State)
	}
	if bs := waitTerminal(t, ts, blocker.ID); bs.State != stateDone {
		t.Fatalf("blocker state %s, want done", bs.State)
	}
}

func TestCancelRunningJob(t *testing.T) {
	_, ts := testServer(t, Config{MaxConcurrentJobs: 1})
	// Plenty of scenarios: cancellation granularity is one scenario run,
	// so the job must outlive the DELETE round-trip.
	id := submit(t, ts, `{"family":"synth-exponential","scale":"tiny","protocols":["Random"],"reps":100}`).ID
	deadline := time.Now().Add(30 * time.Second)
	for getStatus(t, ts, id).State == stateQueued {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st := waitTerminal(t, ts, id)
	if st.State != stateCancelled {
		t.Fatalf("state %s, want cancelled (completed %d/%d)", st.State, st.Completed, st.Scenarios)
	}
	if st.Completed >= st.Scenarios {
		t.Errorf("cancelled job completed all %d scenarios", st.Scenarios)
	}
}

// TestEventZeroValuesSerialize pins the telemetry wire format: a
// generated event for packet 0, created at t=0 by node 0, inside
// scenario 0 must carry every one of those zero-valued fields on the
// NDJSON line. With value fields under omitempty (the old encoding)
// they all vanished.
func TestEventZeroValuesSerialize(t *testing.T) {
	ev := Event{Type: "generated", Scenario: ptr(0), T: ptr(0.0),
		Packet: ptr(int64(0)), Src: ptr(0), Dst: ptr(3)}
	line, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(line, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"scenario", "t", "packet", "src", "dst"} {
		if _, present := decoded[key]; !present {
			t.Errorf("key %q missing from %s", key, line)
		}
	}
	for key, want := range map[string]float64{"scenario": 0, "t": 0, "packet": 0, "src": 0, "dst": 3} {
		if got, ok := decoded[key].(float64); !ok || got != want {
			t.Errorf("%s = %v, want %v", key, decoded[key], want)
		}
	}
	// Fields irrelevant to the event type stay off the wire.
	for _, key := range []string{"load", "run", "capacity", "spent"} {
		if _, present := decoded[key]; present {
			t.Errorf("irrelevant key %q serialized in %s", key, line)
		}
	}
}

// TestCancelInSetRunningWindow reproduces the lost-cancel race: the
// DELETE lands after the runner's setRunning but before runJob installs
// the cancel func. The request must be recorded (not dropped), and
// runJob must finish the job as cancelled without executing it.
func TestCancelInSetRunningWindow(t *testing.T) {
	s := New(Config{})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()
	var spec JobSpec
	if err := json.Unmarshal([]byte(smokeSpec), &spec); err != nil {
		t.Fatal(err)
	}
	scs, err := expandSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Drive the runner's steps by hand around a concurrent DELETE: the
	// job never enters the queue, so only this test touches it.
	j := newJob("job-race", spec, scs)
	if !j.setRunning() {
		t.Fatal("setRunning failed on a queued job")
	}
	deleted := make(chan struct{})
	go func() {
		defer close(deleted)
		// handleCancel's core, in the vulnerable window.
		j.markCancelled()
		j.mu.Lock()
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}()
	<-deleted
	s.runJob(j)
	if st := j.status(); st.State != stateCancelled {
		t.Fatalf("state %s after cancel-before-install, want cancelled (completed %d)", st.State, st.Completed)
	}
}

func TestQueueFullRejects(t *testing.T) {
	_, ts := testServer(t, Config{MaxConcurrentJobs: 1, QueueDepth: 1})
	running := submit(t, ts, `{"family":"synth-exponential","scale":"tiny","protocols":["Random"],"reps":50}`)
	deadline := time.Now().Add(30 * time.Second)
	for getStatus(t, ts, running.ID).State == stateQueued {
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	queued := submit(t, ts, smokeSpec) // fills the depth-1 queue
	if _, code := submitCode(t, ts, smokeSpec); code != http.StatusTooManyRequests {
		t.Errorf("overflow submit status %d, want 429", code)
	}
	// Unblock teardown quickly.
	for _, id := range []string{running.ID, queued.ID} {
		req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+id, nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}
}

func TestBadSpecsRejected(t *testing.T) {
	_, ts := testServer(t, Config{})
	for _, spec := range []string{
		`{`,
		`{}`,
		`{"family":"no-such-family"}`,
		`{"family":"synth-exponential","scale":"huge"}`,
		`{"family":"synth-exponential","protocols":["NotAProtocol"]}`,
		`{"family":"synth-exponential","bogus_field":1}`,
		`{"family":"synth-exponential","scenario":{}}`,
	} {
		if _, code := submitCode(t, ts, spec); code != http.StatusBadRequest {
			t.Errorf("spec %s: status %d, want 400", spec, code)
		}
	}
}

func TestFamiliesHealthzAndList(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/families")
	if err != nil {
		t.Fatal(err)
	}
	var fams []struct{ Name, Doc string }
	if err := json.NewDecoder(resp.Body).Decode(&fams); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := false
	for _, f := range fams {
		if f.Name == "synth-exponential" {
			found = true
		}
	}
	if !found {
		t.Errorf("families listing missing synth-exponential (%d entries)", len(fams))
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}

	id := submit(t, ts, smokeSpec).ID
	waitTerminal(t, ts, id)
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != id {
		t.Errorf("listing = %+v, want one entry %s", list, id)
	}
	if list[0].Table != "" || list[0].Summaries != nil {
		t.Errorf("listing carries heavy results")
	}
}

func TestDrainRejectsAndHealthzFlips(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after drain = %d, want 503", resp.StatusCode)
	}
	if _, code := submitCode(t, ts, smokeSpec); code != http.StatusServiceUnavailable {
		t.Errorf("submit after drain = %d, want 503", code)
	}
}

// TestMetricsExposition scrapes /metrics after real work and checks the
// hand-rolled Prometheus text format: typed headers, counted jobs,
// cache traffic and a coherent histogram.
func TestMetricsExposition(t *testing.T) {
	_, ts := testServer(t, Config{})
	waitTerminal(t, ts, submit(t, ts, smokeSpec).ID)
	waitTerminal(t, ts, submit(t, ts, smokeSpec).ID) // second run: pure cache hits

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content-type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)

	for _, series := range []string{
		"simd_jobs_total", "simd_jobs_submitted_total", "simd_jobs_rejected_total",
		"simd_jobs_running", "simd_jobs_queued", "simd_scenarios_run_total",
		"simd_events_executed_total", "simd_engine_cache_hits_total",
		"simd_engine_cache_misses_total", "simd_engine_cache_entries",
		"simd_run_duration_seconds",
	} {
		if !strings.Contains(text, "# TYPE "+series+" ") {
			t.Errorf("missing # TYPE for %s", series)
		}
	}

	value := func(name string) float64 {
		for _, line := range strings.Split(text, "\n") {
			if strings.HasPrefix(line, name+" ") {
				v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
				if err != nil {
					t.Fatalf("bad value line %q: %v", line, err)
				}
				return v
			}
		}
		t.Fatalf("series %s not found", name)
		return 0
	}
	if v := value("simd_jobs_submitted_total"); v != 2 {
		t.Errorf("jobs_submitted = %v, want 2", v)
	}
	if v := value(`simd_jobs_total{state="done"}`); v != 2 {
		t.Errorf("jobs_total{done} = %v, want 2", v)
	}
	if v := value("simd_jobs_running") + value("simd_jobs_queued"); v != 0 {
		t.Errorf("running+queued = %v after quiesce", v)
	}
	if hits := value("simd_engine_cache_hits_total"); hits < 2 {
		t.Errorf("cache hits = %v, want >= 2 (second job re-used the first)", hits)
	}
	if misses := value("simd_engine_cache_misses_total"); misses < 2 {
		t.Errorf("cache misses = %v, want >= 2", misses)
	}
	if v := value("simd_run_duration_seconds_count"); v != 2 {
		t.Errorf("histogram count = %v, want 2", v)
	}

	// Histogram buckets must be cumulative and capped by +Inf == count.
	prev := -1.0
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "simd_run_duration_seconds_bucket") {
			continue
		}
		f := strings.Fields(line)
		v, err := strconv.ParseFloat(f[len(f)-1], 64)
		if err != nil {
			t.Fatalf("bad bucket line %q", line)
		}
		if v < prev {
			t.Fatalf("non-monotonic histogram at %q", line)
		}
		prev = v
	}
	if prev != value("simd_run_duration_seconds_count") {
		t.Errorf("+Inf bucket %v != count", prev)
	}
}

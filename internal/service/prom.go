package service

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// The build environment has no module proxy, so the service cannot
// import prometheus/client_golang; instead this file hand-rolls the
// small slice of the Prometheus text exposition format (version 0.0.4)
// the service needs: counters, gauges and one fixed-bucket histogram,
// rendered with # HELP / # TYPE headers in sorted series order so a
// scrape is deterministic.

// runDurationBuckets are the upper bounds (seconds) of the job
// run-duration histogram: tiny-scale jobs land in the sub-second
// buckets, full-scale mega-constellation sweeps in the minutes range.
var runDurationBuckets = []float64{0.01, 0.05, 0.25, 1, 5, 30, 120, 600, 3600}

// histogram is a fixed-bucket cumulative histogram.
type histogram struct {
	bounds []float64
	counts []uint64 // per finite bucket; +Inf is implicit via total
	sum    float64
	total  uint64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds))}
}

func (h *histogram) observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
		}
	}
	h.sum += v
	h.total++
}

// serviceMetrics is the registry behind GET /metrics. All mutation
// happens under mu; gauges sampled at scrape time (queue depth, cache
// state) are passed into render by the caller.
type serviceMetrics struct {
	mu sync.Mutex
	// jobsTotal counts finished jobs by terminal state
	// (done/failed/cancelled).
	jobsTotal map[string]uint64
	// jobsSubmitted counts accepted submissions; rejections (queue
	// full, draining) count separately.
	jobsSubmitted uint64
	jobsRejected  uint64
	// scenariosRun counts scenario executions completed by this
	// service, cached or not.
	scenariosRun uint64
	// eventsExecuted accumulates sim-engine events from runs whose
	// collector this service observed (telemetry jobs and direct runs;
	// cache hits re-run nothing so add nothing).
	eventsExecuted uint64
	runDuration    *histogram
}

func newServiceMetrics() *serviceMetrics {
	return &serviceMetrics{
		jobsTotal:   map[string]uint64{stateDone: 0, stateFailed: 0, stateCancelled: 0},
		runDuration: newHistogram(runDurationBuckets),
	}
}

func (m *serviceMetrics) jobFinished(state string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsTotal[state]++
	m.runDuration.observe(seconds)
}

func (m *serviceMetrics) submitted() { m.mu.Lock(); m.jobsSubmitted++; m.mu.Unlock() }
func (m *serviceMetrics) rejected()  { m.mu.Lock(); m.jobsRejected++; m.mu.Unlock() }
func (m *serviceMetrics) scenarioDone(events uint64) {
	m.mu.Lock()
	m.scenariosRun++
	m.eventsExecuted += events
	m.mu.Unlock()
}

// gaugeSnapshot carries the instantaneous values sampled by the scrape
// handler.
type gaugeSnapshot struct {
	jobsRunning int
	jobsQueued  int
	cacheHits   uint64
	cacheMisses uint64
	cacheLen    int
}

// fmtFloat renders a float the way Prometheus expects (shortest
// round-trip form).
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// render emits the full exposition. Counter families keep stable label
// order; everything else is a single unlabeled series.
func (m *serviceMetrics) render(g gaugeSnapshot) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, fmtFloat(v))
	}

	fmt.Fprintf(&b, "# HELP simd_jobs_total Finished jobs by terminal state.\n# TYPE simd_jobs_total counter\n")
	states := make([]string, 0, len(m.jobsTotal))
	for s := range m.jobsTotal {
		states = append(states, s)
	}
	sort.Strings(states)
	for _, s := range states {
		fmt.Fprintf(&b, "simd_jobs_total{state=%q} %d\n", s, m.jobsTotal[s])
	}

	counter("simd_jobs_submitted_total", "Accepted job submissions.", m.jobsSubmitted)
	counter("simd_jobs_rejected_total", "Submissions rejected (queue full, draining, invalid).", m.jobsRejected)
	gauge("simd_jobs_running", "Jobs currently executing.", float64(g.jobsRunning))
	gauge("simd_jobs_queued", "Jobs waiting in the submission queue.", float64(g.jobsQueued))
	counter("simd_scenarios_run_total", "Scenario executions completed across all jobs.", m.scenariosRun)
	counter("simd_events_executed_total", "Simulation-engine events executed by observed runs.", m.eventsExecuted)
	counter("simd_engine_cache_hits_total", "Experiment-engine summary cache hits.", g.cacheHits)
	counter("simd_engine_cache_misses_total", "Experiment-engine summary cache misses.", g.cacheMisses)
	gauge("simd_engine_cache_entries", "Experiment-engine summary cache size.", float64(g.cacheLen))

	fmt.Fprintf(&b, "# HELP simd_run_duration_seconds Wall-clock job run duration.\n# TYPE simd_run_duration_seconds histogram\n")
	for i, bound := range m.runDuration.bounds {
		fmt.Fprintf(&b, "simd_run_duration_seconds_bucket{le=%q} %d\n", fmtFloat(bound), m.runDuration.counts[i])
	}
	fmt.Fprintf(&b, "simd_run_duration_seconds_bucket{le=\"+Inf\"} %d\n", m.runDuration.total)
	fmt.Fprintf(&b, "simd_run_duration_seconds_sum %s\n", fmtFloat(m.runDuration.sum))
	fmt.Fprintf(&b, "simd_run_duration_seconds_count %d\n", m.runDuration.total)
	return b.String()
}

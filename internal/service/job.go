package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"rapid/internal/exp"
	"rapid/internal/metrics"
	"rapid/internal/scenario"
)

// Job states. A job is terminal in exactly one of done/failed/cancelled.
const (
	stateQueued    = "queued"
	stateRunning   = "running"
	stateDone      = "done"
	stateFailed    = "failed"
	stateCancelled = "cancelled"
)

// JobSpec is the POST /v1/jobs payload: either a registered scenario
// family expanded at a named scale, or a single raw scenario.Scenario.
type JobSpec struct {
	// Family names a registered scenario family (GET /v1/families).
	Family string `json:"family,omitempty"`
	// Scale selects the grid size: tiny (default), default, or full.
	Scale string `json:"scale,omitempty"`
	// Reps overrides the scale's replications per grid point.
	Reps int `json:"reps,omitempty"`
	// Protocols restricts the family's protocol arms.
	Protocols []string `json:"protocols,omitempty"`
	// RunWorkers pins the intra-run event-engine worker count for every
	// scenario of this job that did not pin its own — instance-scoped;
	// output is byte-identical at any setting.
	RunWorkers int `json:"run_workers,omitempty"`
	// Telemetry streams per-packet events (generated, delivered, lost,
	// opportunities) on GET /v1/jobs/{id}/events. Telemetry runs attach
	// routing.Hooks, which forces the serial intra-run engine and
	// bypasses the summary cache; summaries are byte-identical either
	// way.
	Telemetry bool `json:"telemetry,omitempty"`
	// Scenario, when non-nil, submits a single scenario instead of a
	// family.
	Scenario *scenario.Scenario `json:"scenario,omitempty"`
}

// Event is one line of a job's telemetry stream, serialized as NDJSON
// (or an SSE data payload). Fields are omitted when irrelevant to the
// event type — presence is encoded by the pointer, not the value,
// because scenario index 0, run 0, node 0, packet 0 and t=0 are all
// semantically valid and must still reach the wire.
type Event struct {
	// Type is one of: job_queued, job_started, scenario_start,
	// generated, delivered, lost, opportunity, scenario_done, truncated,
	// job_done.
	Type string `json:"type"`
	// Scenario is the index of the scenario within the job.
	Scenario *int `json:"scenario,omitempty"`
	// Protocol/Load/Run identify the grid point for scenario_* events.
	Protocol string   `json:"protocol,omitempty"`
	Load     *float64 `json:"load,omitempty"`
	Run      *int     `json:"run,omitempty"`
	// T is simulation time (seconds) for per-packet events.
	T *float64 `json:"t,omitempty"`
	// Packet/Src/Dst describe the packet for generated/delivered/lost.
	Packet *int64 `json:"packet,omitempty"`
	Src    *int   `json:"src,omitempty"`
	Dst    *int   `json:"dst,omitempty"`
	// Capacity/Spent are opportunity byte budgets.
	Capacity *int64 `json:"capacity,omitempty"`
	Spent    *int64 `json:"spent,omitempty"`
	// Summary carries the reduced metrics for scenario_done.
	Summary *metrics.Summary `json:"summary,omitempty"`
	// State/Error report the terminal state for job_done.
	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
	// Dropped counts events discarded after the per-job cap, reported
	// on the truncated event.
	Dropped int `json:"dropped,omitempty"`
}

// ptr boxes a value for Event's presence-by-pointer fields.
func ptr[T any](v T) *T { return &v }

// Job is one submission: its expanded scenarios, its state machine and
// its telemetry log. Subscribers replay the log from the start and
// follow appends via the condition variable until the job is terminal.
type Job struct {
	ID   string
	Spec JobSpec

	scs []scenario.Scenario

	mu     sync.Mutex
	cancel context.CancelFunc
	// cancelRequested records a DELETE that landed before runJob
	// installed the cancel func — the window between the runner's
	// setRunning and the context construction. runJob checks it under
	// the same lock that installs cancel, so the request is never lost.
	cancelRequested bool
	cond            *sync.Cond
	state           string
	err             string
	completed       int
	sums            []metrics.Summary
	table           string
	events          []Event
	dropped         int
	submitted       time.Time
	started         time.Time
	finished        time.Time
}

func newJob(id string, spec JobSpec, scs []scenario.Scenario) *Job {
	j := &Job{ID: id, Spec: spec, scs: scs, state: stateQueued,
		submitted: time.Now()} //rapidlint:allow nondeterminism — wall-clock job timestamp for operators; never feeds simulation state
	j.cond = sync.NewCond(&j.mu)
	j.append(Event{Type: "job_queued"})
	return j
}

// append adds one event to the log (bounded by maxEventsPerJob) and
// wakes streamers. Terminal job_done events always append.
func (j *Job) append(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.appendLocked(ev)
}

func (j *Job) appendLocked(ev Event) {
	if len(j.events) >= maxEventsPerJob && ev.Type != "job_done" {
		if j.dropped == 0 {
			j.events = append(j.events, Event{Type: "truncated"})
		}
		j.dropped++
		return
	}
	if ev.Type == "job_done" && j.dropped > 0 {
		// Patch the truncation marker with the final count before the
		// terminal event, so consumers see how much they missed.
		for i := range j.events {
			if j.events[i].Type == "truncated" {
				j.events[i].Dropped = j.dropped
				break
			}
		}
	}
	j.events = append(j.events, ev)
	j.cond.Broadcast()
}

// maxEventsPerJob bounds a job's telemetry log; beyond it events are
// counted, not stored. Tiny families emit a few thousand events; the
// cap protects the server from a full-scale telemetry job.
const maxEventsPerJob = 200_000

// terminal reports whether the job reached a final state.
func terminal(state string) bool {
	return state == stateDone || state == stateFailed || state == stateCancelled
}

// setRunning transitions queued→running; it returns false when the job
// was cancelled while queued.
func (j *Job) setRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != stateQueued {
		return false
	}
	j.state = stateRunning
	j.started = time.Now() //rapidlint:allow nondeterminism — wall-clock job timestamp for operators; never feeds simulation state
	j.appendLocked(Event{Type: "job_started"})
	return true
}

// finish records the terminal state, results and the job_done event.
func (j *Job) finish(state, errMsg string, sums []metrics.Summary, table string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if terminal(j.state) {
		return
	}
	j.state = state
	j.err = errMsg
	j.sums = sums
	j.table = table
	j.finished = time.Now() //rapidlint:allow nondeterminism — wall-clock job timestamp for operators; never feeds simulation state
	j.appendLocked(Event{Type: "job_done", State: state, Error: errMsg})
}

// markCancelled flips a queued job straight to cancelled (the runner
// skips it); running jobs are cancelled via their context and finish
// through the runner. The cancel request is always recorded first, so
// a DELETE landing after setRunning but before runJob installs the
// cancel func still takes effect instead of silently returning 200.
func (j *Job) markCancelled() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cancelRequested = true
	if terminal(j.state) || j.state == stateRunning {
		return
	}
	j.state = stateCancelled
	j.finished = time.Now() //rapidlint:allow nondeterminism — wall-clock job timestamp for operators; never feeds simulation state
	j.appendLocked(Event{Type: "job_done", State: stateCancelled})
}

// runSeconds is the job's wall-clock run duration for the histogram.
func (j *Job) runSeconds() float64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.started.IsZero() || j.finished.IsZero() {
		return 0
	}
	return j.finished.Sub(j.started).Seconds()
}

// JobStatus is the GET /v1/jobs/{id} body.
type JobStatus struct {
	ID        string  `json:"id"`
	State     string  `json:"state"`
	Error     string  `json:"error,omitempty"`
	Family    string  `json:"family,omitempty"`
	Scale     string  `json:"scale,omitempty"`
	Telemetry bool    `json:"telemetry,omitempty"`
	Scenarios int     `json:"scenarios"`
	Completed int     `json:"completed"`
	Events    int     `json:"events"`
	Dropped   int     `json:"dropped,omitempty"`
	Submitted string  `json:"submitted,omitempty"`
	RunSecs   float64 `json:"run_seconds,omitempty"`
	// Summaries holds one reduced summary per scenario once done.
	Summaries []metrics.Summary `json:"summaries,omitempty"`
	// Table is the rendered family summary table — byte-identical to
	// the cmd/experiments -family output for the same scenarios.
	Table string `json:"table,omitempty"`
}

func (j *Job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.ID, State: j.state, Error: j.err,
		Family: j.Spec.Family, Scale: j.Spec.Scale, Telemetry: j.Spec.Telemetry,
		Scenarios: len(j.scs), Completed: j.completed,
		Events: len(j.events), Dropped: j.dropped,
		Submitted: j.submitted.UTC().Format(time.RFC3339Nano),
	}
	if !j.started.IsZero() && !j.finished.IsZero() {
		st.RunSecs = j.finished.Sub(j.started).Seconds()
	}
	if j.state == stateDone {
		st.Summaries = j.sums
		st.Table = j.table
	}
	return st
}

// snapshotEvents returns events[from:] under the lock plus whether the
// job is terminal; streamers loop on it via the condition variable.
func (j *Job) snapshotEvents(from int) ([]Event, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for from >= len(j.events) && !terminal(j.state) {
		j.cond.Wait()
	}
	evs := make([]Event, len(j.events)-from)
	copy(evs, j.events[from:])
	return evs, terminal(j.state)
}

// wake kicks every streamer so it can re-check terminal state (used
// when a stream's client context dies, via time.AfterFunc polling is
// avoided by broadcasting on every state change — finish/markCancelled
// already broadcast through appendLocked).
func (j *Job) wake() {
	j.mu.Lock()
	j.cond.Broadcast()
	j.mu.Unlock()
}

// expandSpec validates a spec and expands it into its scenario list.
func expandSpec(spec JobSpec) ([]scenario.Scenario, error) {
	if (spec.Family == "") == (spec.Scenario == nil) {
		return nil, fmt.Errorf("exactly one of family or scenario must be set")
	}
	if spec.Scenario != nil {
		sc := *spec.Scenario
		if spec.RunWorkers != 0 && sc.Config.Workers == 0 {
			sc.Config.Workers = spec.RunWorkers
		}
		if err := validateProto(sc.Protocol); err != nil {
			return nil, err
		}
		return []scenario.Scenario{sc}, nil
	}
	sc, err := scaleByName(spec.Scale)
	if err != nil {
		return nil, err
	}
	params := exp.FamilyParams(spec.Family, sc)
	if spec.Reps > 0 {
		params.Runs = spec.Reps
	}
	if len(spec.Protocols) > 0 {
		params.Protocols = params.Protocols[:0]
		for _, p := range spec.Protocols {
			proto := scenario.Proto(p)
			if perr := validateProto(proto); perr != nil {
				return nil, perr
			}
			params.Protocols = append(params.Protocols, proto)
		}
	}
	scs, err := scenario.Expand(spec.Family, params)
	if err != nil {
		return nil, err
	}
	if len(scs) == 0 {
		return nil, fmt.Errorf("family %q expanded to zero scenarios", spec.Family)
	}
	if spec.RunWorkers != 0 {
		for i := range scs {
			if scs[i].Config.Workers == 0 {
				scs[i].Config.Workers = spec.RunWorkers
			}
		}
	}
	return scs, nil
}

// scaleByName maps the wire scale names onto exp scales, defaulting to
// tiny — a service should opt in to heavy grids explicitly.
func scaleByName(name string) (exp.Scale, error) {
	switch name {
	case "", "tiny":
		return exp.TinyScale(), nil
	case "default":
		return exp.DefaultScale(), nil
	case "full":
		return exp.FullScale(), nil
	}
	return exp.Scale{}, fmt.Errorf("unknown scale %q (want tiny, default or full)", name)
}

// validateProto rejects protocol names without a registered arm before
// they can panic inside a run.
func validateProto(p scenario.Proto) error {
	if p == "" {
		return fmt.Errorf("missing protocol")
	}
	for _, known := range scenario.AllProtos() {
		if p == known {
			return nil
		}
	}
	return fmt.Errorf("unknown protocol %q", p)
}

package disrupt

import (
	"math"
	"testing"
)

func TestValidate(t *testing.T) {
	ok := []Spec{
		{},
		{Enabled: true},
		{Enabled: true, PContactFail: 0.5, PLoss: 1, JitterSec: 10},
		{Enabled: true, ChurnDownMean: 30, ChurnUpMean: 60},
	}
	for _, s := range ok {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", s, err)
		}
	}
	bad := []Spec{
		{PContactFail: -0.1},
		{PContactFail: 1.1},
		{PLoss: math.NaN()},
		{PLoss: math.Inf(1)},
		{ChurnDownMean: -1, ChurnUpMean: 10},
		{ChurnDownMean: 30}, // one-sided churn
		{ChurnUpMean: 30},   // one-sided churn
		{JitterSec: -5},
		{JitterSec: math.Inf(-1)},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", s)
		}
	}
}

func TestActive(t *testing.T) {
	if (Spec{Enabled: true}).Active() {
		t.Error("enabled zero-intensity spec reported Active")
	}
	if (Spec{PLoss: 0.5}).Active() {
		t.Error("disabled spec reported Active")
	}
	for _, s := range []Spec{
		{Enabled: true, PLoss: 0.1},
		{Enabled: true, PContactFail: 0.1},
		{Enabled: true, JitterSec: 1},
		{Enabled: true, ChurnDownMean: 1, ChurnUpMean: 1},
	} {
		if !s.Active() {
			t.Errorf("spec %+v not Active", s)
		}
	}
}

// TestZeroIntensityIdentity pins the metamorphic property at the model
// level: every decision function of an enabled-but-zero model returns
// its identity value.
func TestZeroIntensityIdentity(t *testing.T) {
	m := New(Spec{Enabled: true}, 42)
	for i := 0; i < 1000; i++ {
		if m.ContactFails(i) {
			t.Fatalf("zero-intensity model failed contact %d", i)
		}
		if j := m.Jitter(i); j != 0 {
			t.Fatalf("zero-intensity model jittered contact %d by %v", i, j)
		}
		if m.Lost(uint64(i), 7) {
			t.Fatalf("zero-intensity model lost transfer %d", i)
		}
	}
	if ivs := m.DownIntervals(3, 1e6); ivs != nil {
		t.Fatalf("zero-intensity model churned: %v", ivs)
	}
}

// TestDeterminism: the same (spec, seed) realizes the same disruption,
// and distinct seeds realize distinct streams.
func TestDeterminism(t *testing.T) {
	spec := Spec{Enabled: true, PContactFail: 0.3, PLoss: 0.3, JitterSec: 5,
		ChurnDownMean: 20, ChurnUpMean: 50}
	a, b := New(spec, 7), New(spec, 7)
	other := New(spec, 8)
	differs := false
	for i := 0; i < 500; i++ {
		if a.ContactFails(i) != b.ContactFails(i) || a.Jitter(i) != b.Jitter(i) ||
			a.Lost(uint64(i), 3) != b.Lost(uint64(i), 3) {
			t.Fatalf("same seed diverged at %d", i)
		}
		if a.ContactFails(i) != other.ContactFails(i) {
			differs = true
		}
	}
	if !differs {
		t.Error("seeds 7 and 8 realized identical contact-failure streams")
	}
	ivA := a.DownIntervals(2, 1000)
	ivB := b.DownIntervals(2, 1000)
	if len(ivA) != len(ivB) {
		t.Fatalf("same seed churn diverged: %d vs %d intervals", len(ivA), len(ivB))
	}
	for i := range ivA {
		if ivA[i] != ivB[i] {
			t.Fatalf("same seed churn interval %d diverged: %v vs %v", i, ivA[i], ivB[i])
		}
	}
}

// TestDeriveSeedDecorrelation: sequential simulation seeds (adjacent
// replications) map to well-separated disruption seeds.
func TestDeriveSeedDecorrelation(t *testing.T) {
	seen := map[uint64]bool{}
	for r := int64(0); r < 100; r++ {
		s := DeriveSeed(r)
		if seen[s] {
			t.Fatalf("DeriveSeed collision at replication %d", r)
		}
		seen[s] = true
	}
	if DeriveSeed(1) == DeriveSeed(2) {
		t.Error("adjacent seeds identical")
	}
}

func TestChurnIntervals(t *testing.T) {
	m := New(Spec{Enabled: true, ChurnDownMean: 10, ChurnUpMean: 30}, 99)
	const horizon = 10_000.0
	ivs := m.DownIntervals(5, horizon)
	if len(ivs) == 0 {
		t.Fatal("no churn intervals over a long horizon")
	}
	prevEnd := 0.0
	var downTotal float64
	for i, iv := range ivs {
		if iv.Start < prevEnd {
			t.Fatalf("interval %d overlaps predecessor: %v after end %v", i, iv, prevEnd)
		}
		if iv.End < iv.Start {
			t.Fatalf("interval %d has negative duration: %v", i, iv)
		}
		if iv.Start < 0 || iv.End > horizon {
			t.Fatalf("interval %d outside [0, %v): %v", i, horizon, iv)
		}
		downTotal += iv.End - iv.Start
		prevEnd = iv.End
	}
	// Expected down fraction is 10/(10+30) = 25%; allow a generous band.
	frac := downTotal / horizon
	if frac < 0.1 || frac > 0.45 {
		t.Errorf("down fraction %.3f implausible for mean 10 down / 30 up", frac)
	}
	// Down agrees with the intervals (strict interior).
	iv := ivs[0]
	mid := (iv.Start + iv.End) / 2
	if iv.End > iv.Start && !m.Down(5, mid, horizon) {
		t.Errorf("Down(%v) = false inside interval %v", mid, iv)
	}
	if m.Down(5, iv.Start, horizon) {
		t.Error("Down at interval boundary reported down (boundaries count as up)")
	}
}

func TestJitterBounded(t *testing.T) {
	m := New(Spec{Enabled: true, JitterSec: 7}, 3)
	var neg, pos bool
	for i := 0; i < 2000; i++ {
		j := m.Jitter(i)
		if math.Abs(j) > 7 {
			t.Fatalf("jitter %v exceeds ±7", j)
		}
		if j < 0 {
			neg = true
		}
		if j > 0 {
			pos = true
		}
	}
	if !neg || !pos {
		t.Error("jitter never covered both signs")
	}
}

// TestRates: empirical frequencies track the configured probabilities.
func TestRates(t *testing.T) {
	m := New(Spec{Enabled: true, PContactFail: 0.2, PLoss: 0.4}, 11)
	var fails, losses int
	const n = 20_000
	for i := 0; i < n; i++ {
		if m.ContactFails(i) {
			fails++
		}
		if m.Lost(uint64(i), 1) {
			losses++
		}
	}
	if f := float64(fails) / n; math.Abs(f-0.2) > 0.02 {
		t.Errorf("contact failure rate %.4f, want ≈0.2", f)
	}
	if l := float64(losses) / n; math.Abs(l-0.4) > 0.02 {
		t.Errorf("loss rate %.4f, want ≈0.4", l)
	}
}

package disrupt

import (
	"math"
	"testing"

	"rapid/internal/packet"
)

// FuzzDisruption drives the spec domain: Validate must reject every
// non-finite or negative rate, and any accepted spec must expand
// without hangs, panics, negative-duration down windows, or unbounded
// jitter — the contract the runtime relies on when it realizes a model
// over a schedule.
func FuzzDisruption(f *testing.F) {
	f.Add(true, 0.1, 0.2, 30.0, 60.0, 5.0, 300.0, uint64(1))
	f.Add(true, 0.0, 0.0, 0.0, 0.0, 0.0, 900.0, uint64(42))
	f.Add(false, 0.5, 0.5, 10.0, 10.0, 1.0, 100.0, uint64(7))
	f.Add(true, 1.0, 1.0, 1e-9, 1e-9, 0.0, 10.0, uint64(3))
	f.Add(true, -0.1, 2.0, -1.0, math.Inf(1), math.NaN(), 60.0, uint64(9))
	f.Add(true, 0.0, 0.0, 1e12, 1e-12, 1e9, 1e6, uint64(123))
	f.Fuzz(func(t *testing.T, enabled bool, pFail, pLoss, downMean, upMean, jitter, horizon float64, seed uint64) {
		spec := Spec{
			Enabled:       enabled,
			PContactFail:  pFail,
			PLoss:         pLoss,
			ChurnDownMean: downMean,
			ChurnUpMean:   upMean,
			JitterSec:     jitter,
		}
		if err := spec.Validate(); err != nil {
			// Rejected specs must actually be outside the domain.
			if inDomain(spec) {
				t.Fatalf("Validate rejected an in-domain spec %+v: %v", spec, err)
			}
			return
		}
		if !inDomain(spec) {
			t.Fatalf("Validate accepted an out-of-domain spec %+v", spec)
		}

		// Sanitize the horizon only — it is runtime input, not spec.
		if math.IsNaN(horizon) || math.IsInf(horizon, 0) {
			horizon = 0
		}
		horizon = math.Min(math.Abs(horizon), 1e6)

		m := New(spec, seed)
		for node := 0; node < 3; node++ {
			prevEnd := 0.0
			ivs := m.DownIntervals(packet.NodeID(node), horizon)
			for i, iv := range ivs {
				if math.IsNaN(iv.Start) || math.IsNaN(iv.End) {
					t.Fatalf("node %d interval %d is NaN: %v", node, i, iv)
				}
				if iv.End < iv.Start {
					t.Fatalf("node %d interval %d has negative duration: %v", node, i, iv)
				}
				if iv.Start < prevEnd {
					t.Fatalf("node %d interval %d overlaps predecessor: %v", node, i, iv)
				}
				if iv.Start < 0 || iv.End > horizon {
					t.Fatalf("node %d interval %d outside [0, %v]: %v", node, i, horizon, iv)
				}
				prevEnd = iv.End
			}
		}
		for i := 0; i < 64; i++ {
			j := m.Jitter(i)
			if math.IsNaN(j) || math.Abs(j) > spec.JitterSec {
				t.Fatalf("jitter %v outside ±%v", j, spec.JitterSec)
			}
			m.ContactFails(i)
			m.Lost(uint64(i), 5)
		}
	})
}

func inDomain(s Spec) bool {
	prob := func(p float64) bool { return p >= 0 && p <= 1 && !math.IsNaN(p) }
	rate := func(r float64) bool { return r >= 0 && !math.IsNaN(r) && !math.IsInf(r, 0) }
	return prob(s.PContactFail) && prob(s.PLoss) &&
		rate(s.ChurnDownMean) && rate(s.ChurnUpMean) && rate(s.JitterSec) &&
		(s.ChurnDownMean > 0) == (s.ChurnUpMean > 0)
}

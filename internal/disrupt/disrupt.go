// Package disrupt is the stochastic disruption layer: seed-derived,
// deterministic-per-replication models of the ways a real DTN deviates
// from its nominal contact schedule — whole contacts that silently
// fail, per-packet Bernoulli loss inside transfer sessions, node churn
// (down intervals during which a node neither forwards nor receives),
// and contact-window jitter.
//
// Every decision is a pure function of (model seed, purpose tag,
// identity), computed by counter-based splitmix64 hashing rather than a
// shared sequential RNG. That buys three properties the replication
// harness depends on (DESIGN.md §10):
//
//   - determinism: the same spec and seed always produce the same
//     disruption realization, regardless of worker count or event
//     interleaving across goroutines — there is no RNG state to share
//     or alias;
//   - independence: distinct replications derive distinct seeds, so
//     their disruption streams are independent draws;
//   - metamorphic zero: at zero intensity (p = 0 loss, no churn, zero
//     jitter) every decision function returns its identity value
//     without consuming any stream state, so an enabled-but-zero model
//     is byte-identical to no model at all.
package disrupt

import (
	"fmt"
	"math"

	"rapid/internal/packet"
)

// Spec declares a disruption model. The zero value is the pristine
// network (disabled). All fields are comparable, so a Spec can ride in
// a scenario cache key.
type Spec struct {
	// Enabled activates the model. An enabled spec with all-zero
	// intensities runs the full decision machinery and is guaranteed to
	// produce output byte-identical to a disabled spec (the metamorphic
	// property the equivalence tests pin).
	Enabled bool
	// PContactFail is the probability that an entire contact — a point
	// meeting or a whole window — silently never happens.
	PContactFail float64
	// PLoss is the per-packet Bernoulli loss probability: each data
	// transfer (direct or replica, point or streamed) is lost with this
	// probability after its bytes are spent — the radio transmitted,
	// the receiver got garbage.
	PLoss float64
	// ChurnDownMean and ChurnUpMean are the means, in seconds, of the
	// exponential down/up intervals of node churn. Both must be
	// positive to enable churn (one-sided churn is rejected by
	// Validate). While down a node neither forwards nor receives:
	// its contacts are skipped and its live windows cut off.
	ChurnDownMean float64
	ChurnUpMean   float64
	// JitterSec shifts each contact's start instant uniformly in
	// ±JitterSec — deployment timing noise over a nominal contact
	// plan. A contact jittered outside the run's [0, horizon) window
	// is missed entirely.
	JitterSec float64
}

// Active reports whether any disruption intensity is non-zero. An
// enabled spec that is not Active must behave identically to a disabled
// one.
func (s Spec) Active() bool {
	return s.Enabled &&
		(s.PContactFail > 0 || s.PLoss > 0 || s.JitterSec > 0 ||
			(s.ChurnDownMean > 0 && s.ChurnUpMean > 0))
}

// Validate rejects specs outside the model's domain: non-finite or
// negative rates, probabilities above 1, and one-sided churn (a down
// mean without an up mean, or vice versa, would silently disable churn
// — an error is kinder than a no-op).
func (s Spec) Validate() error {
	if bad := badProb(s.PContactFail); bad != "" {
		return fmt.Errorf("disrupt: PContactFail %v is %s", s.PContactFail, bad)
	}
	if bad := badProb(s.PLoss); bad != "" {
		return fmt.Errorf("disrupt: PLoss %v is %s", s.PLoss, bad)
	}
	if bad := badRate(s.ChurnDownMean); bad != "" {
		return fmt.Errorf("disrupt: ChurnDownMean %v is %s", s.ChurnDownMean, bad)
	}
	if bad := badRate(s.ChurnUpMean); bad != "" {
		return fmt.Errorf("disrupt: ChurnUpMean %v is %s", s.ChurnUpMean, bad)
	}
	if (s.ChurnDownMean > 0) != (s.ChurnUpMean > 0) {
		return fmt.Errorf("disrupt: one-sided churn (down mean %v, up mean %v); both must be positive or both zero",
			s.ChurnDownMean, s.ChurnUpMean)
	}
	if bad := badRate(s.JitterSec); bad != "" {
		return fmt.Errorf("disrupt: JitterSec %v is %s", s.JitterSec, bad)
	}
	return nil
}

func badProb(p float64) string {
	switch {
	case math.IsNaN(p) || math.IsInf(p, 0):
		return "not finite"
	case p < 0:
		return "negative"
	case p > 1:
		return "above 1"
	}
	return ""
}

func badRate(r float64) string {
	switch {
	case math.IsNaN(r) || math.IsInf(r, 0):
		return "not finite"
	case r < 0:
		return "negative"
	}
	return ""
}

// Purpose tags separate the model's decision streams: decisions for
// different purposes over the same identity must be independent.
const (
	tagContactFail uint64 = 0xc0_17ac7
	tagJitter      uint64 = 0x717c1e
	tagLoss        uint64 = 0x105505
	tagChurn       uint64 = 0xc4_0e11
)

// Model realizes a Spec under one seed: a bundle of pure decision
// functions. The zero value is unusable; construct with New. A Model is
// immutable after construction and safe for concurrent readers.
type Model struct {
	spec Spec
	seed uint64
}

// New returns the disruption model for one replication. The seed should
// come from DeriveSeed so replications draw independent streams.
func New(spec Spec, seed uint64) *Model {
	return &Model{spec: spec, seed: seed}
}

// Spec returns the model's declaration.
func (m *Model) Spec() Spec { return m.spec }

// DeriveSeed maps a replication's simulation seed onto its disruption
// stream seed. The salt keeps disruption draws decorrelated from every
// other consumer of the simulation seed (engine streams, schedule and
// workload builders), and the splitmix64 finalizer decorrelates the
// sequential seeds of adjacent replications.
func DeriveSeed(simSeed int64) uint64 {
	const disruptSalt = 0xd15c0_5eed
	return mix64(uint64(simSeed) ^ disruptSalt)
}

// mix64 is the splitmix64 finalizer: a bijective avalanche mix whose
// output is uniform over uint64 for sequential inputs.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// draw returns a uniform [0, 1) variate for the (tag, a, b) identity —
// the model's only source of randomness.
func (m *Model) draw(tag, a, b uint64) float64 {
	h := mix64(m.seed ^ mix64(tag) ^ mix64(a*0x9e3779b97f4a7c15+1) ^ mix64(b*0x2545f4914f6cdd1d+2))
	return float64(h>>11) / (1 << 53)
}

// ContactFails decides whether the i-th scheduled contact of the run
// (meetings first, then contacts, in schedule order) silently fails.
func (m *Model) ContactFails(i int) bool {
	if m.spec.PContactFail <= 0 {
		return false
	}
	return m.draw(tagContactFail, uint64(i), 0) < m.spec.PContactFail
}

// Jitter returns the i-th contact's start-time shift, uniform in
// ±JitterSec. At zero intensity it returns exactly 0.
func (m *Model) Jitter(i int) float64 {
	if m.spec.JitterSec <= 0 {
		return 0
	}
	return (2*m.draw(tagJitter, uint64(i), 0) - 1) * m.spec.JitterSec
}

// Lost decides whether the seq-th data transfer of the run, carrying
// the given packet, is lost. seq is the network's monotone transfer
// counter: event execution order is deterministic, so the decision
// stream is too.
func (m *Model) Lost(seq uint64, id packet.ID) bool {
	if m.spec.PLoss <= 0 {
		return false
	}
	return m.draw(tagLoss, seq, uint64(id)) < m.spec.PLoss
}

// HasLoss reports whether the model can ever lose a transfer. When
// false, callers may skip the shared transfer-sequence bookkeeping that
// feeds Lost — the counter is unobservable at zero loss — which is what
// lets loss-free disrupted runs (churn, jitter, contact failure) use
// the parallel engine.
func (m *Model) HasLoss() bool { return m.spec.PLoss > 0 }

// Interval is one half-open [Start, End) span of simulated time.
type Interval struct {
	Start, End float64
}

// maxChurnIntervals bounds the per-node down-interval expansion — a
// backstop that keeps adversarial specs (means of ~0 over a huge
// horizon) from hanging; any realistic churn process sits far below
// it. Past the cap the node simply stays up.
const maxChurnIntervals = 1 << 16

// DownIntervals expands the node's churn process over [0, horizon):
// alternating exponential up/down intervals, starting up, realized
// from the node's own decision stream. It returns nil when churn is
// disabled. The result is sorted, non-overlapping, and clipped to the
// horizon.
func (m *Model) DownIntervals(node packet.NodeID, horizon float64) []Interval {
	down, up := m.spec.ChurnDownMean, m.spec.ChurnUpMean
	if down <= 0 || up <= 0 || !(horizon > 0) {
		return nil
	}
	var out []Interval
	t := 0.0
	for k := uint64(0); len(out) < maxChurnIntervals; k++ {
		t += expDraw(m.draw(tagChurn, uint64(node), 2*k), up)
		if t >= horizon {
			break
		}
		end := t + expDraw(m.draw(tagChurn, uint64(node), 2*k+1), down)
		if end > horizon {
			end = horizon
		}
		out = append(out, Interval{Start: t, End: end})
		t = end
		if t >= horizon {
			break
		}
	}
	return out
}

// Down reports whether t falls strictly inside one of the node's down
// intervals (boundaries count as up: a contact at the exact instant a
// node drops is resolved by event order, not by the model).
func (m *Model) Down(node packet.NodeID, t, horizon float64) bool {
	for _, iv := range m.DownIntervals(node, horizon) {
		if iv.Start < t && t < iv.End {
			return true
		}
		if iv.Start >= t {
			break
		}
	}
	return false
}

// expDraw inverts the exponential CDF at u in [0, 1): -mean·ln(1-u),
// always finite and non-negative.
func expDraw(u, mean float64) float64 {
	return -mean * math.Log1p(-u)
}

package mobility

import (
	"math"
	"math/rand"

	"rapid/internal/packet"
	"rapid/internal/trace"
)

// ConstellationConfig parameterizes the orbital/ring contact-plan
// generator: Planes orbital planes of SatsPerPlane satellites each,
// plus GroundStations ground sites. Unlike the statistical mobility
// models, connectivity here is a deterministic contact plan — the
// satellite-DTN setting where orbits make every future contact window
// computable in advance (contact-graph routing's premise).
type ConstellationConfig struct {
	Planes         int
	SatsPerPlane   int
	GroundStations int
	// OrbitPeriod is the orbital period in seconds; every periodic
	// contact interval derives from it.
	OrbitPeriod float64
	// Duration is the experiment horizon in seconds.
	Duration float64
	// ISLBytes is the transfer opportunity of one inter-satellite
	// contact window; GroundBytes of one ground pass.
	ISLBytes    int64
	GroundBytes int64
	// JitterFrac, when positive, perturbs each contact instant by up to
	// ±JitterFrac of its repeat interval using the schedule seed —
	// modeling clock/ephemeris error. Zero keeps the plan strictly
	// deterministic: every seed yields the byte-identical schedule.
	JitterFrac float64

	// Windowed-contact emission. When PassWindow > 0 the plan carries
	// duration-aware pass windows with finite link rates instead of
	// point opportunities (ISLBytes/GroundBytes are then ignored):
	//
	//   - each (ground, satellite) pairing has a fixed pass geometry
	//     whose maximum elevation is derived deterministically from the
	//     pair's indices; a higher pass stays in view longer and closes
	//     a better link, so both the window duration (up to PassWindow
	//     seconds for a zenith pass) and the rate (up to GroundRateBps)
	//     scale with sin(max elevation);
	//   - inter-satellite contacts last ISLWindow seconds at ISLRateBps
	//     (vacuum ISLs have no elevation profile).
	//
	// All zero keeps the legacy point plan: byte-identical schedules.
	PassWindow    float64
	GroundRateBps float64
	ISLWindow     float64
	ISLRateBps    float64
}

// Windowed reports whether the config emits duration-aware contacts.
func (c ConstellationConfig) Windowed() bool { return c.PassWindow > 0 }

// Nodes returns the total population: ground stations occupy IDs
// 0..GroundStations-1, satellites follow.
func (c ConstellationConfig) Nodes() int {
	return c.GroundStations + c.Planes*c.SatsPerPlane
}

// Sat returns the node ID of satellite m in plane p. Satellite IDs
// interleave the planes (in-plane index varies slowest), so the first
// Planes satellite IDs are the index-0 satellite of each plane — a
// natural cross-plane gateway set for workloads that address the first
// K satellites.
func (c ConstellationConfig) Sat(p, m int) packet.NodeID {
	return packet.NodeID(c.GroundStations + m*c.Planes + p)
}

// Constellation is the orbital/ring mobility model. Construct directly;
// it implements Model like the statistical generators, so schedules
// flow through the same scenario machinery.
type Constellation struct {
	Config ConstellationConfig
}

// Name implements Model.
func (Constellation) Name() string { return "constellation" }

// Plan builds the deterministic contact plan:
//
//   - intra-plane ISLs: each satellite contacts its ring successor in
//     the same plane every OrbitPeriod/SatsPerPlane seconds, phased by
//     its position so windows stagger instead of synchronizing;
//   - cross-plane ISLs: each satellite contacts its same-index neighbor
//     in the next plane every OrbitPeriod/Planes seconds, phased by half
//     an interval against the intra-plane windows;
//   - ground passes: each (ground, satellite) pair meets once per
//     OrbitPeriod, the plane's satellites passing over a site in even
//     sequence — the sub-interval phase spreads distinct sites' passes.
func (m Constellation) Plan() *trace.ContactPlan {
	c := m.Config
	if c.Windowed() && (c.ISLWindow <= 0 || c.ISLRateBps <= 0 || c.GroundRateBps <= 0) {
		// A half-configured windowed constellation would silently emit
		// zero-byte point ISLs next to windowed passes; that is a
		// config bug, not a degenerate network.
		panic("mobility: windowed constellation (PassWindow > 0) requires ISLWindow, ISLRateBps and GroundRateBps")
	}
	plan := &trace.ContactPlan{Duration: c.Duration}
	P, M, G := c.Planes, c.SatsPerPlane, c.GroundStations

	if M >= 2 {
		gap := c.OrbitPeriod / float64(M)
		edges := M
		if M == 2 {
			edges = 1 // the ring degenerates to a single pair
		}
		for p := 0; p < P; p++ {
			for i := 0; i < edges; i++ {
				phase := c.OrbitPeriod * float64(p*M+i) / float64(P*M)
				m.addISL(plan, c.Sat(p, i), c.Sat(p, (i+1)%M), mod(phase, gap), gap)
			}
		}
	}
	if P >= 2 {
		gap := c.OrbitPeriod / float64(P)
		edges := P
		if P == 2 {
			edges = 1
		}
		for i := 0; i < edges; i++ {
			for s := 0; s < M; s++ {
				phase := gap/2 + c.OrbitPeriod*float64(i*M+s)/float64(P*M)
				m.addISL(plan, c.Sat(i, s), c.Sat((i+1)%P, s), mod(phase, gap), gap)
			}
		}
	}
	if G > 0 && P*M > 0 {
		passGap := c.OrbitPeriod / float64(max(M, 1))
		for g := 0; g < G; g++ {
			for p := 0; p < P; p++ {
				for s := 0; s < M; s++ {
					phase := passGap*float64(s) +
						passGap*float64(g*P+p)/float64(G*P)
					if c.Windowed() {
						sinE := passElevationSin(g, p, s)
						w := math.Min(c.PassWindow*sinE, c.OrbitPeriod)
						plan.AddWindow(packet.NodeID(g), c.Sat(p, s),
							phase, c.OrbitPeriod, w, c.GroundRateBps*sinE)
					} else {
						plan.Add(packet.NodeID(g), c.Sat(p, s),
							phase, c.OrbitPeriod, c.GroundBytes)
					}
				}
			}
		}
	}
	return plan
}

// addISL appends one inter-satellite contact in the configured form
// (point opportunity, or a fixed-duration window at the ISL rate).
func (m Constellation) addISL(plan *trace.ContactPlan, a, b packet.NodeID, start, gap float64) {
	c := m.Config
	if c.Windowed() {
		plan.AddWindow(a, b, start, gap, math.Min(c.ISLWindow, gap), c.ISLRateBps)
		return
	}
	plan.Add(a, b, start, gap, c.ISLBytes)
}

// passElevationSin returns sin(max elevation) for the fixed pass
// geometry of ground station g and satellite (p, s): a deterministic
// hash of the indices spread uniformly over elevations between a 10°
// usability floor and a zenith pass. Both pass duration and link rate
// scale with it — high passes stay in view longer and close a shorter,
// faster link.
func passElevationSin(g, p, s int) float64 {
	h := uint64(g)*0x9E3779B97F4A7C15 + uint64(p)*0xBF58476D1CE4E5B9 + uint64(s)*0x94D049BB133111EB
	h ^= h >> 31
	h *= 0xD6E8FEB86659FD93
	h ^= h >> 27
	frac := float64(h>>11) / float64(1<<53)
	const minElev = 10 * math.Pi / 180
	return math.Sin(minElev + (math.Pi/2-minElev)*frac)
}

// Schedule implements Model. With JitterFrac == 0 the draw ignores r
// entirely — the plan is the schedule.
func (m Constellation) Schedule(r *rand.Rand) *trace.Schedule {
	s := m.Plan().Expand()
	if m.Config.JitterFrac > 0 && r != nil {
		span := m.Config.JitterFrac * m.Config.OrbitPeriod
		for i := range s.Meetings {
			t := s.Meetings[i].Time + (r.Float64()*2-1)*span
			if t < 0 {
				t = 0
			}
			if t >= s.Duration {
				t = s.Duration * (1 - 1e-9)
			}
			s.Meetings[i].Time = t
		}
		for i := range s.Contacts {
			c := &s.Contacts[i]
			t := c.Start + (r.Float64()*2-1)*span
			if t < 0 {
				t = 0
			}
			if hi := s.Duration - c.Duration; t > hi {
				t = hi // keep the whole window inside the horizon
			}
			c.Start = t
		}
		s.Sort()
	}
	return s
}

// mod wraps x into [0, m) for positive m.
func mod(x, m float64) float64 {
	if m <= 0 {
		return x
	}
	for x >= m {
		x -= m
	}
	return x
}

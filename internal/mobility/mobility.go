// Package mobility generates synthetic node-meeting schedules for the
// paper's two synthetic models (§6.3): uniform exponential inter-meeting
// times and popularity-skewed power-law meeting rates. Both produce
// trace.Schedule values, so simulations are agnostic to whether a
// schedule came from a mobility model or a (synthetic) DieselNet trace.
package mobility

import (
	"fmt"
	"math"
	"math/rand"

	"rapid/internal/packet"
	"rapid/internal/stat"
	"rapid/internal/trace"
)

// Model produces meeting schedules for a node population over a horizon.
type Model interface {
	// Name identifies the model in reports.
	Name() string
	// Schedule draws a meeting schedule using r.
	Schedule(r *rand.Rand) *trace.Schedule
}

// Config carries the parameters shared by the synthetic models
// (Table 4's synthetic column).
type Config struct {
	Nodes    int     // population size (paper: 20)
	Duration float64 // seconds (paper: 15 min = 900 s)
	// MeanMeeting is the mean inter-meeting time of a node pair in
	// seconds for the exponential model, and the base mean that
	// popularity skews for the power-law model.
	MeanMeeting float64
	// TransferBytes is the size of every transfer opportunity
	// (Table 4: average 100 KB). Jitter makes sizes vary ±50% while
	// preserving the mean.
	TransferBytes int64
	Jitter        bool
}

// ByName constructs a Model from its registry name — the spec
// constructor used by the scenario layer and the command-line tools.
// alpha and ranks parameterize the power-law model only (alpha <= 0
// selects 1; nil ranks order popularity by node index).
func ByName(name string, cfg Config, alpha float64, ranks []int) (Model, error) {
	switch name {
	case "exponential":
		return Exponential{Config: cfg}, nil
	case "powerlaw":
		return PowerLaw{Config: cfg, Alpha: alpha, Ranks: ranks}, nil
	default:
		return nil, fmt.Errorf("mobility: unknown model %q", name)
	}
}

// Exponential is the uniform exponential mobility model: every node
// pair meets according to an independent Poisson process with identical
// rate 1/MeanMeeting (§4.1.1's "uniform exponential distribution").
type Exponential struct {
	Config
}

// Name implements Model.
func (Exponential) Name() string { return "exponential" }

// Schedule implements Model.
func (m Exponential) Schedule(r *rand.Rand) *trace.Schedule {
	s := &trace.Schedule{Duration: m.Duration}
	for i := 0; i < m.Nodes; i++ {
		for j := i + 1; j < m.Nodes; j++ {
			appendPoissonMeetings(s, packet.NodeID(i), packet.NodeID(j),
				1/m.MeanMeeting, m.TransferBytes, m.Jitter, r)
		}
	}
	s.Sort()
	return s
}

// PowerLaw is the popularity-skewed model of §6.3: "two nodes meet with
// an exponential inter-meeting time, but the mean of the exponential
// distribution is determined by the popularity of the nodes". Each node
// gets a popularity rank 1..Nodes (1 = most popular); the pairwise
// meeting rate is the base rate scaled by the geometric mean of the two
// nodes' power-law weights, normalized so the population-average rate
// matches the exponential model with the same Config (which keeps the
// two models' load axes comparable, as Table 4 requires).
type PowerLaw struct {
	Config
	// Alpha is the power-law exponent over popularity ranks.
	Alpha float64
	// Ranks optionally assigns a popularity rank (0 = most popular) to
	// each node ID. Popularity is a property of the experiment, not of
	// an individual schedule draw, so it is fixed here rather than
	// redrawn per Schedule call. When nil, node i has rank i.
	Ranks []int
}

// Name implements Model.
func (PowerLaw) Name() string { return "powerlaw" }

// RandomRanks returns a random popularity assignment for n nodes drawn
// once per experiment ("we randomly set a popularity value of 1 to 20",
// §6.3).
func RandomRanks(n int, r *rand.Rand) []int { return r.Perm(n) }

// Schedule implements Model.
func (m PowerLaw) Schedule(r *rand.Rand) *trace.Schedule {
	alpha := m.Alpha
	if alpha <= 0 {
		alpha = 1
	}
	w := stat.PowerLawWeights(m.Nodes, alpha)
	nodeW := make([]float64, m.Nodes)
	for i := range nodeW {
		rank := i
		if m.Ranks != nil {
			rank = m.Ranks[i]
		}
		nodeW[i] = w[rank]
	}
	// Normalize so the mean pairwise rate is 1/MeanMeeting.
	var sum float64
	var count int
	pairW := make([][]float64, m.Nodes)
	for i := range pairW {
		pairW[i] = make([]float64, m.Nodes)
	}
	for i := 0; i < m.Nodes; i++ {
		for j := i + 1; j < m.Nodes; j++ {
			g := geomMean(nodeW[i], nodeW[j])
			pairW[i][j] = g
			sum += g
			count++
		}
	}
	norm := (1 / m.MeanMeeting) / (sum / float64(count))
	s := &trace.Schedule{Duration: m.Duration}
	for i := 0; i < m.Nodes; i++ {
		for j := i + 1; j < m.Nodes; j++ {
			appendPoissonMeetings(s, packet.NodeID(i), packet.NodeID(j),
				pairW[i][j]*norm, m.TransferBytes, m.Jitter, r)
		}
	}
	s.Sort()
	return s
}

// appendPoissonMeetings adds meetings for one pair as a Poisson process.
func appendPoissonMeetings(s *trace.Schedule, a, b packet.NodeID, rate float64, bytes int64, jitter bool, r *rand.Rand) {
	if rate <= 0 {
		return
	}
	t := 0.0
	for {
		t += r.ExpFloat64() / rate
		if t >= s.Duration {
			return
		}
		sz := bytes
		if jitter {
			// Uniform in [0.5, 1.5] × bytes keeps the mean at bytes.
			sz = int64(float64(bytes) * (0.5 + r.Float64()))
		}
		s.Meetings = append(s.Meetings, trace.Meeting{A: a, B: b, Time: t, Bytes: sz})
	}
}

func geomMean(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	return math.Sqrt(a * b)
}

package mobility

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rapid/internal/packet"
)

func defaultCfg() Config {
	return Config{
		Nodes:         20,
		Duration:      900,
		MeanMeeting:   60,
		TransferBytes: 100 << 10,
	}
}

func TestExponentialScheduleValid(t *testing.T) {
	m := Exponential{defaultCfg()}
	s := m.Schedule(rand.New(rand.NewSource(1)))
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
	if len(s.Meetings) == 0 {
		t.Fatal("no meetings generated")
	}
	for _, mt := range s.Meetings {
		if mt.Bytes != 100<<10 {
			t.Fatalf("unexpected opportunity size %d", mt.Bytes)
		}
	}
}

func TestExponentialMeetingCount(t *testing.T) {
	// Expected meetings per pair = Duration/MeanMeeting = 15.
	// 190 pairs -> 2850 total; allow 10% sampling slack.
	m := Exponential{defaultCfg()}
	s := m.Schedule(rand.New(rand.NewSource(2)))
	want := 900.0 / 60.0 * 190.0
	got := float64(len(s.Meetings))
	if math.Abs(got-want)/want > 0.10 {
		t.Errorf("meetings=%v want ~%v", got, want)
	}
}

func TestExponentialPairRatesUniform(t *testing.T) {
	m := Exponential{defaultCfg()}
	counts := map[[2]packet.NodeID]int{}
	for seed := int64(0); seed < 10; seed++ {
		s := m.Schedule(rand.New(rand.NewSource(seed)))
		for _, mt := range s.Meetings {
			a, b := mt.A, mt.B
			if a > b {
				a, b = b, a
			}
			counts[[2]packet.NodeID{a, b}]++
		}
	}
	var mn, mx = math.Inf(1), math.Inf(-1)
	for _, c := range counts {
		f := float64(c)
		mn = math.Min(mn, f)
		mx = math.Max(mx, f)
	}
	// Uniform rates: min and max pair counts within a reasonable
	// Poisson band of the mean 150.
	if mx/mn > 2.2 {
		t.Errorf("pair meeting counts too dispersed for uniform model: min=%v max=%v", mn, mx)
	}
}

func TestPowerLawSkewsRates(t *testing.T) {
	cfg := defaultCfg()
	pl := PowerLaw{Config: cfg, Alpha: 1}
	counts := map[[2]packet.NodeID]int{}
	for seed := int64(0); seed < 10; seed++ {
		s := pl.Schedule(rand.New(rand.NewSource(seed)))
		if err := s.Validate(); err != nil {
			t.Fatalf("invalid: %v", err)
		}
		for _, mt := range s.Meetings {
			a, b := mt.A, mt.B
			if a > b {
				a, b = b, a
			}
			counts[[2]packet.NodeID{a, b}]++
		}
	}
	var mn, mx = math.Inf(1), math.Inf(-1)
	for _, c := range counts {
		f := float64(c)
		mn = math.Min(mn, f)
		mx = math.Max(mx, f)
	}
	if mn == 0 {
		mn = 1
	}
	// Power-law rates must be far more dispersed than uniform ones.
	if mx/mn < 4 {
		t.Errorf("power-law pair counts not skewed: min=%v max=%v", mn, mx)
	}
}

func TestPowerLawPreservesMeanRate(t *testing.T) {
	// Normalization keeps total meeting volume comparable to the
	// exponential model (same Config).
	cfg := defaultCfg()
	exp := Exponential{cfg}
	pl := PowerLaw{Config: cfg, Alpha: 1}
	var expTotal, plTotal int
	for seed := int64(0); seed < 8; seed++ {
		expTotal += len(exp.Schedule(rand.New(rand.NewSource(seed))).Meetings)
		plTotal += len(pl.Schedule(rand.New(rand.NewSource(seed + 100))).Meetings)
	}
	ratio := float64(plTotal) / float64(expTotal)
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("power-law/exponential meeting volume ratio %v want ~1", ratio)
	}
}

func TestJitterPreservesMeanSize(t *testing.T) {
	cfg := defaultCfg()
	cfg.Jitter = true
	m := Exponential{cfg}
	s := m.Schedule(rand.New(rand.NewSource(5)))
	mean, err := s.MeanOpportunity()
	if err != nil {
		t.Fatal(err)
	}
	want := float64(cfg.TransferBytes)
	if math.Abs(mean-want)/want > 0.05 {
		t.Errorf("mean opportunity %v want ~%v", mean, want)
	}
	varied := false
	for _, mt := range s.Meetings {
		if mt.Bytes != cfg.TransferBytes {
			varied = true
			break
		}
	}
	if !varied {
		t.Error("jitter produced constant sizes")
	}
}

func TestSchedulesAreDeterministicPerSeed(t *testing.T) {
	f := func(seed int64) bool {
		m := PowerLaw{Config: defaultCfg(), Alpha: 1.2}
		s1 := m.Schedule(rand.New(rand.NewSource(seed)))
		s2 := m.Schedule(rand.New(rand.NewSource(seed)))
		if len(s1.Meetings) != len(s2.Meetings) {
			return false
		}
		for i := range s1.Meetings {
			if s1.Meetings[i] != s2.Meetings[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

func TestModelNames(t *testing.T) {
	if (Exponential{}).Name() != "exponential" || (PowerLaw{}).Name() != "powerlaw" {
		t.Error("model names changed; reports depend on them")
	}
	var _ Model = Exponential{}
	var _ Model = PowerLaw{}
}

func TestPowerLawDefaultAlpha(t *testing.T) {
	// Alpha <= 0 falls back to 1 rather than generating a degenerate
	// schedule.
	pl := PowerLaw{Config: defaultCfg(), Alpha: 0}
	s := pl.Schedule(rand.New(rand.NewSource(3)))
	if len(s.Meetings) == 0 {
		t.Error("fallback alpha generated no meetings")
	}
}

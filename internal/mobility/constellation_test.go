package mobility

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"rapid/internal/packet"
	"rapid/internal/trace"
)

func testConstellation() Constellation {
	return Constellation{Config: ConstellationConfig{
		Planes: 3, SatsPerPlane: 4, GroundStations: 2,
		OrbitPeriod: 120, Duration: 360,
		ISLBytes: 64 << 10, GroundBytes: 128 << 10,
	}}
}

func schedBytes(t *testing.T, s *trace.Schedule) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.Write(&buf, s); err != nil {
		t.Fatalf("write schedule: %v", err)
	}
	return buf.Bytes()
}

// TestConstellationPlanValid: the generated plan and its expansion pass
// the structural validators, and the population matches the config.
func TestConstellationPlanValid(t *testing.T) {
	m := testConstellation()
	plan := m.Plan()
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	s := plan.Expand()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Meetings) == 0 {
		t.Fatal("empty constellation schedule")
	}
	if got, want := len(s.Nodes()), m.Config.Nodes(); got != want {
		t.Fatalf("schedule covers %d nodes, want %d", got, want)
	}
}

// TestConstellationPeriodicity: every periodic contact recurs at its
// declared interval across the horizon — the deterministic-window
// property contact-graph routing relies on.
func TestConstellationPeriodicity(t *testing.T) {
	m := testConstellation()
	plan := m.Plan()
	sched := plan.Expand()
	type pair struct{ a, b packet.NodeID }
	times := map[pair][]float64{}
	for _, mt := range sched.Meetings {
		p := pair{mt.A, mt.B}
		times[p] = append(times[p], mt.Time)
	}
	// Index plan contacts by pair to know each pair's period.
	for _, c := range plan.Contacts {
		ts := times[pair{c.A, c.B}]
		want := 0
		if c.Period > 0 {
			want = int(math.Ceil((plan.Duration - c.Start) / c.Period))
		}
		if c.Start < plan.Duration && want == 0 {
			want = 1
		}
		if len(ts) != want {
			t.Fatalf("pair (%d,%d): %d occurrences, want %d", c.A, c.B, len(ts), want)
		}
		for i := 1; i < len(ts); i++ {
			if gap := ts[i] - ts[i-1]; math.Abs(gap-c.Period) > 1e-9 {
				t.Fatalf("pair (%d,%d): gap %v, want period %v", c.A, c.B, gap, c.Period)
			}
		}
	}
}

// TestConstellationDeterminism: without jitter the schedule is
// byte-identical across draws AND across seeds (a contact plan, not a
// statistical process); with jitter it is deterministic per seed but
// varies across seeds.
func TestConstellationDeterminism(t *testing.T) {
	m := testConstellation()
	a := schedBytes(t, m.Schedule(rand.New(rand.NewSource(1))))
	b := schedBytes(t, m.Schedule(rand.New(rand.NewSource(2))))
	if !bytes.Equal(a, b) {
		t.Fatal("jitter-free constellation schedule depends on the seed")
	}

	m.Config.JitterFrac = 0.05
	j1 := schedBytes(t, m.Schedule(rand.New(rand.NewSource(7))))
	j2 := schedBytes(t, m.Schedule(rand.New(rand.NewSource(7))))
	j3 := schedBytes(t, m.Schedule(rand.New(rand.NewSource(8))))
	if !bytes.Equal(j1, j2) {
		t.Fatal("same seed produced different jittered schedules")
	}
	if bytes.Equal(j1, j3) {
		t.Fatal("different seeds produced identical jittered schedules")
	}
	js, err := trace.Read(bytes.NewReader(j1))
	if err != nil {
		t.Fatalf("read jittered schedule: %v", err)
	}
	if err := js.Validate(); err != nil {
		t.Fatalf("jittered schedule invalid: %v", err)
	}
}

// TestConstellationGroundCoverage: every ground station sees every
// satellite exactly once per orbital period.
func TestConstellationGroundCoverage(t *testing.T) {
	m := testConstellation()
	sched := m.Plan().Expand()
	periods := m.Config.Duration / m.Config.OrbitPeriod
	counts := map[packet.NodeID]int{}
	for _, mt := range sched.Meetings {
		if int(mt.A) < m.Config.GroundStations {
			counts[mt.A]++
		}
	}
	wantPer := int(periods) * m.Config.Planes * m.Config.SatsPerPlane
	for g := 0; g < m.Config.GroundStations; g++ {
		if got := counts[packet.NodeID(g)]; got != wantPer {
			t.Errorf("ground %d has %d passes, want %d", g, got, wantPer)
		}
	}
}

package mobility

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"rapid/internal/packet"
	"rapid/internal/trace"
)

func testConstellation() Constellation {
	return Constellation{Config: ConstellationConfig{
		Planes: 3, SatsPerPlane: 4, GroundStations: 2,
		OrbitPeriod: 120, Duration: 360,
		ISLBytes: 64 << 10, GroundBytes: 128 << 10,
	}}
}

func schedBytes(t *testing.T, s *trace.Schedule) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.Write(&buf, s); err != nil {
		t.Fatalf("write schedule: %v", err)
	}
	return buf.Bytes()
}

// TestConstellationPlanValid: the generated plan and its expansion pass
// the structural validators, and the population matches the config.
func TestConstellationPlanValid(t *testing.T) {
	m := testConstellation()
	plan := m.Plan()
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	s := plan.Expand()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Meetings) == 0 {
		t.Fatal("empty constellation schedule")
	}
	if got, want := len(s.Nodes()), m.Config.Nodes(); got != want {
		t.Fatalf("schedule covers %d nodes, want %d", got, want)
	}
}

// TestConstellationPeriodicity: every periodic contact recurs at its
// declared interval across the horizon — the deterministic-window
// property contact-graph routing relies on.
func TestConstellationPeriodicity(t *testing.T) {
	m := testConstellation()
	plan := m.Plan()
	sched := plan.Expand()
	type pair struct{ a, b packet.NodeID }
	times := map[pair][]float64{}
	for _, mt := range sched.Meetings {
		p := pair{mt.A, mt.B}
		times[p] = append(times[p], mt.Time)
	}
	// Index plan contacts by pair to know each pair's period.
	for _, c := range plan.Contacts {
		ts := times[pair{c.A, c.B}]
		want := 0
		if c.Period > 0 {
			want = int(math.Ceil((plan.Duration - c.Start) / c.Period))
		}
		if c.Start < plan.Duration && want == 0 {
			want = 1
		}
		if len(ts) != want {
			t.Fatalf("pair (%d,%d): %d occurrences, want %d", c.A, c.B, len(ts), want)
		}
		for i := 1; i < len(ts); i++ {
			if gap := ts[i] - ts[i-1]; math.Abs(gap-c.Period) > 1e-9 {
				t.Fatalf("pair (%d,%d): gap %v, want period %v", c.A, c.B, gap, c.Period)
			}
		}
	}
}

// TestConstellationDeterminism: without jitter the schedule is
// byte-identical across draws AND across seeds (a contact plan, not a
// statistical process); with jitter it is deterministic per seed but
// varies across seeds.
func TestConstellationDeterminism(t *testing.T) {
	m := testConstellation()
	a := schedBytes(t, m.Schedule(rand.New(rand.NewSource(1))))
	b := schedBytes(t, m.Schedule(rand.New(rand.NewSource(2))))
	if !bytes.Equal(a, b) {
		t.Fatal("jitter-free constellation schedule depends on the seed")
	}

	m.Config.JitterFrac = 0.05
	j1 := schedBytes(t, m.Schedule(rand.New(rand.NewSource(7))))
	j2 := schedBytes(t, m.Schedule(rand.New(rand.NewSource(7))))
	j3 := schedBytes(t, m.Schedule(rand.New(rand.NewSource(8))))
	if !bytes.Equal(j1, j2) {
		t.Fatal("same seed produced different jittered schedules")
	}
	if bytes.Equal(j1, j3) {
		t.Fatal("different seeds produced identical jittered schedules")
	}
	js, err := trace.Read(bytes.NewReader(j1))
	if err != nil {
		t.Fatalf("read jittered schedule: %v", err)
	}
	if err := js.Validate(); err != nil {
		t.Fatalf("jittered schedule invalid: %v", err)
	}
}

// TestConstellationGroundCoverage: every ground station sees every
// satellite exactly once per orbital period.
func TestConstellationGroundCoverage(t *testing.T) {
	m := testConstellation()
	sched := m.Plan().Expand()
	periods := m.Config.Duration / m.Config.OrbitPeriod
	counts := map[packet.NodeID]int{}
	for _, mt := range sched.Meetings {
		if int(mt.A) < m.Config.GroundStations {
			counts[mt.A]++
		}
	}
	wantPer := int(periods) * m.Config.Planes * m.Config.SatsPerPlane
	for g := 0; g < m.Config.GroundStations; g++ {
		if got := counts[packet.NodeID(g)]; got != wantPer {
			t.Errorf("ground %d has %d passes, want %d", g, got, wantPer)
		}
	}
}

func testWindowedConstellation() Constellation {
	m := testConstellation()
	m.Config.PassWindow = 12
	m.Config.GroundRateBps = 16 << 10
	m.Config.ISLWindow = 6
	m.Config.ISLRateBps = 8 << 10
	return m
}

// TestConstellationPassWindows: the windowed config emits a valid
// all-window plan whose ground passes carry elevation-driven durations
// and rates — diverse across pass geometries, bounded by the zenith
// pass, and deterministic across builds.
func TestConstellationPassWindows(t *testing.T) {
	m := testWindowedConstellation()
	plan := m.Plan()
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	s := plan.Expand()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Meetings) != 0 || len(s.Contacts) == 0 {
		t.Fatalf("windowed plan expanded to %d meetings / %d contacts",
			len(s.Meetings), len(s.Contacts))
	}
	groundDur := map[float64]bool{}
	for _, c := range s.Contacts {
		if !c.Windowed() {
			t.Fatalf("point contact %+v in windowed plan", c)
		}
		ground := c.A < packet.NodeID(m.Config.GroundStations)
		if ground {
			if c.Duration > m.Config.PassWindow || c.RateBps > m.Config.GroundRateBps {
				t.Fatalf("pass %+v exceeds its zenith bounds", c)
			}
			// Duration and rate share the sin(elevation) factor —
			// except for windows clipped by the expansion horizon.
			if clipped := c.End() == s.Duration; !clipped {
				if r := c.Duration / m.Config.PassWindow * m.Config.GroundRateBps; math.Abs(r-c.RateBps) > 1e-6 {
					t.Fatalf("pass %+v: duration and rate disagree on elevation", c)
				}
			}
			groundDur[c.Duration] = true
		} else if c.Duration != m.Config.ISLWindow || c.RateBps != m.Config.ISLRateBps {
			t.Fatalf("ISL window %+v not at configured shape", c)
		}
	}
	if len(groundDur) < 4 {
		t.Errorf("only %d distinct pass durations: elevation profile not driving windows", len(groundDur))
	}
	// Deterministic: same config, byte-identical schedule.
	a, b := m.Plan().Expand(), m.Plan().Expand()
	if len(a.Contacts) != len(b.Contacts) {
		t.Fatal("windowed expansion not deterministic")
	}
	for i := range a.Contacts {
		if a.Contacts[i] != b.Contacts[i] {
			t.Fatalf("contact %d differs between builds", i)
		}
	}
}

// TestConstellationWindowedJitterStaysValid: schedule-level jitter
// moves window starts but never pushes a window outside the horizon.
func TestConstellationWindowedJitterStaysValid(t *testing.T) {
	m := testWindowedConstellation()
	m.Config.JitterFrac = 0.2
	s := m.Schedule(rand.New(rand.NewSource(9)))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Contacts) == 0 {
		t.Fatal("jittered windowed schedule empty")
	}
}

// TestConstellationWindowedHalfConfigPanics: enabling pass windows
// without the ISL/ground rate fields would silently emit zero-byte
// point ISLs next to windowed passes; Plan refuses the half-configured
// state.
func TestConstellationWindowedHalfConfigPanics(t *testing.T) {
	m := testWindowedConstellation()
	m.Config.ISLWindow = 0
	defer func() {
		if recover() == nil {
			t.Fatal("half-configured windowed constellation must panic")
		}
	}()
	m.Plan()
}

package metrics

import (
	"math"
	"testing"

	"rapid/internal/packet"
)

func pkt(id packet.ID, src, dst packet.NodeID, created, deadline float64) *packet.Packet {
	return &packet.Packet{ID: id, Src: src, Dst: dst, Size: 1024, Created: created, Deadline: deadline}
}

func TestBasicDeliveryAccounting(t *testing.T) {
	c := New()
	p1 := pkt(1, 0, 1, 0, 0)
	p2 := pkt(2, 0, 1, 10, 0)
	c.Generated(p1)
	c.Generated(p2)
	c.Delivered(1, 50, 2)
	s := c.Summarize(100)
	if s.Generated != 2 || s.Delivered != 1 {
		t.Fatalf("counts %+v", s)
	}
	if s.DeliveryRate != 0.5 {
		t.Errorf("rate %v", s.DeliveryRate)
	}
	if s.AvgDelay != 50 {
		t.Errorf("avg delay %v want 50", s.AvgDelay)
	}
	// AvgDelayAll: (50 + (100-10))/2 = 70.
	if s.AvgDelayAll != 70 {
		t.Errorf("avg delay all %v want 70", s.AvgDelayAll)
	}
	if s.MaxDelay != 50 {
		t.Errorf("max delay %v want 50", s.MaxDelay)
	}
	if s.MaxDelayAll != 90 {
		t.Errorf("max delay all %v want 90", s.MaxDelayAll)
	}
}

func TestDuplicateDeliveryIgnored(t *testing.T) {
	c := New()
	c.Generated(pkt(1, 0, 1, 0, 0))
	c.Delivered(1, 30, 1)
	c.Delivered(1, 60, 3) // duplicate replica arriving later
	s := c.Summarize(100)
	if s.AvgDelay != 30 {
		t.Errorf("duplicate delivery changed delay: %v", s.AvgDelay)
	}
	if !c.IsDelivered(1) {
		t.Error("IsDelivered false")
	}
	// Unknown packet delivery is ignored.
	c.Delivered(99, 10, 1)
	if c.IsDelivered(99) {
		t.Error("unknown packet marked delivered")
	}
}

func TestGeneratedTwicePanics(t *testing.T) {
	c := New()
	c.Generated(pkt(1, 0, 1, 0, 0))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	c.Generated(pkt(1, 0, 1, 0, 0))
}

func TestDeadlineAccounting(t *testing.T) {
	c := New()
	c.Generated(pkt(1, 0, 1, 0, 20)) // delivered in time
	c.Generated(pkt(2, 0, 1, 0, 20)) // delivered late
	c.Generated(pkt(3, 0, 1, 0, 20)) // never delivered
	c.Generated(pkt(4, 0, 1, 0, 0))  // no deadline: excluded
	c.Delivered(1, 15, 1)
	c.Delivered(2, 30, 1)
	c.Delivered(4, 5, 1)
	s := c.Summarize(100)
	if math.Abs(s.WithinDeadline-1.0/3.0) > 1e-12 {
		t.Errorf("within deadline %v want 1/3", s.WithinDeadline)
	}
}

func TestChannelAccounting(t *testing.T) {
	c := New()
	c.Meetings = 2
	c.OpportunityBytes = 1000
	c.DataBytes = 300
	c.MetaBytes = 100
	s := c.Summarize(10)
	if s.Utilization != 0.4 {
		t.Errorf("utilization %v want 0.4", s.Utilization)
	}
	if s.MetaOverBandwidth != 0.1 {
		t.Errorf("meta/bw %v", s.MetaOverBandwidth)
	}
	if math.Abs(s.MetaOverData-1.0/3.0) > 1e-12 {
		t.Errorf("meta/data %v", s.MetaOverData)
	}
}

func TestPairDelays(t *testing.T) {
	c := New()
	c.Generated(pkt(1, 0, 1, 0, 0))
	c.Generated(pkt(2, 0, 1, 0, 0))
	c.Generated(pkt(3, 2, 3, 0, 0))
	c.Generated(pkt(4, 4, 5, 0, 0)) // undelivered
	c.Delivered(1, 10, 1)
	c.Delivered(2, 30, 1)
	c.Delivered(3, 7, 1)
	pd := c.PairDelays()
	if len(pd) != 2 {
		t.Fatalf("pairs %v", pd)
	}
	if got := pd[PairKey{0, 1}]; got != 20 {
		t.Errorf("pair (0,1) %v want 20", got)
	}
	if got := pd[PairKey{2, 3}]; got != 7 {
		t.Errorf("pair (2,3) %v want 7", got)
	}
}

func TestCohortFairness(t *testing.T) {
	c := New()
	// Cohort 1: equal delays -> J = 1.
	for i := packet.ID(1); i <= 3; i++ {
		p := pkt(i, 0, 1, 0, 0)
		p.Cohort = 1
		c.Generated(p)
		c.Delivered(i, 10, 1)
	}
	// Cohort 2: one delivered at 10, one stuck until horizon 100.
	p4 := pkt(4, 0, 1, 0, 0)
	p4.Cohort = 2
	c.Generated(p4)
	c.Delivered(4, 10, 1)
	p5 := pkt(5, 0, 1, 0, 0)
	p5.Cohort = 2
	c.Generated(p5)
	// Untagged packet is excluded.
	c.Generated(pkt(6, 0, 1, 0, 0))

	f := c.CohortFairness(100)
	if len(f) != 2 {
		t.Fatalf("fairness %v", f)
	}
	// Sorted ascending: unfair cohort first.
	if f[1] != 1 {
		t.Errorf("equal cohort J=%v want 1", f[1])
	}
	// Cohort 2: delays 10,100 -> J=(110)^2/(2*10100)≈0.599.
	want := 110.0 * 110.0 / (2 * (100 + 10000))
	if math.Abs(f[0]-want) > 1e-9 {
		t.Errorf("unfair cohort J=%v want %v", f[0], want)
	}
}

func TestMerge(t *testing.T) {
	a := New()
	a.Generated(pkt(1, 0, 1, 0, 0))
	a.Delivered(1, 5, 1)
	a.DataBytes = 100
	a.Meetings = 1
	b := New()
	b.Generated(pkt(2, 0, 1, 0, 0))
	b.MetaBytes = 7
	b.Meetings = 2
	a.Merge(b)
	s := a.Summarize(10)
	if s.Generated != 2 || s.Delivered != 1 || s.Meetings != 3 {
		t.Fatalf("merge summary %+v", s)
	}
	if s.DataBytes != 100 || s.MetaBytes != 7 {
		t.Error("channel accounting not merged")
	}
}

func TestMergeOverlapPanics(t *testing.T) {
	a := New()
	a.Generated(pkt(1, 0, 1, 0, 0))
	b := New()
	b.Generated(pkt(1, 0, 1, 0, 0))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	a.Merge(b)
}

func TestEmptySummary(t *testing.T) {
	s := New().Summarize(100)
	if s.Generated != 0 || s.DeliveryRate != 0 || s.AvgDelay != 0 || s.Utilization != 0 {
		t.Errorf("empty summary %+v", s)
	}
}

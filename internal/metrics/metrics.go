// Package metrics collects per-packet delivery records and channel
// accounting during a simulation run and reduces them to the quantities
// the paper's evaluation reports: average delay, maximum delay, delivery
// rate, fraction delivered within deadline, average delay including
// undelivered packets (Fig. 13), per source-destination pair delays for
// the paired t-test (§6.2.1), per-cohort Jain fairness (Fig. 15), and
// metadata/bandwidth ratios (Table 3, Fig. 9).
package metrics

import (
	"math"
	"sort"

	"rapid/internal/packet"
	"rapid/internal/stat"
)

// Record tracks one packet's fate.
type Record struct {
	P           *packet.Packet
	Delivered   bool
	DeliveredAt float64
	Hops        int // path length of the first delivered copy
}

// PairKey identifies a source-destination flow.
type PairKey struct {
	Src, Dst packet.NodeID
}

// Delta is the channel-accounting portion of a Collector. Sessions of
// the parallel engine accumulate into a private Delta during the
// concurrent phase and fold it into the collector at commit, keeping
// global counters in exact serial order.
type Delta struct {
	Meetings         int
	OpportunityBytes int64 // total contact capacity offered
	DataBytes        int64 // payload bytes transferred (incl. duplicates)
	MetaBytes        int64 // control-channel bytes
	Replications     int   // replica transfers
	DirectDeliveries int
	// LostTransfers counts data transfers the disruption layer lost in
	// flight: their bytes are spent (inside DataBytes' complement of
	// the opportunity) but no data moved.
	LostTransfers int
}

// Add folds o into d.
func (d *Delta) Add(o *Delta) {
	d.Meetings += o.Meetings
	d.OpportunityBytes += o.OpportunityBytes
	d.DataBytes += o.DataBytes
	d.MetaBytes += o.MetaBytes
	d.Replications += o.Replications
	d.DirectDeliveries += o.DirectDeliveries
	d.LostTransfers += o.LostTransfers
}

// Collector accumulates simulation outcomes. The zero value is unusable;
// construct with New. Not safe for concurrent use.
type Collector struct {
	byID  map[packet.ID]*Record
	order []*Record // insertion order for deterministic iteration

	// Delta holds the channel accounting; embedding promotes the
	// counter fields (c.Meetings etc.) unchanged.
	Delta

	// EventsExecuted is the simulation engine's executed-event count for
	// the run that produced this collector (set by routing.Run; the
	// simulation service's events-executed telemetry counter). It is
	// engine bookkeeping, not an outcome: identical outcomes may execute
	// different event counts (a streamed contact-plan run pumps events a
	// materialized run schedules upfront), so it is deliberately absent
	// from Summary and from equivalence fingerprints.
	EventsExecuted uint64
}

// New returns an empty collector.
func New() *Collector {
	return &Collector{byID: make(map[packet.ID]*Record)}
}

// Generated registers a packet's creation. Duplicate registration is a
// programming error and panics (the workload is injected exactly once).
func (c *Collector) Generated(p *packet.Packet) {
	if _, ok := c.byID[p.ID]; ok {
		panic("metrics: packet generated twice")
	}
	r := &Record{P: p}
	c.byID[p.ID] = r
	c.order = append(c.order, r)
}

// Delivered records the first delivery of a packet; later duplicate
// deliveries of other replicas are ignored. Unknown packets are ignored
// (defensive: a router must not invent traffic).
func (c *Collector) Delivered(id packet.ID, now float64, hops int) {
	r := c.byID[id]
	if r == nil || r.Delivered {
		return
	}
	r.Delivered = true
	r.DeliveredAt = now
	r.Hops = hops
}

// IsDelivered reports whether the packet has reached its destination.
func (c *Collector) IsDelivered(id packet.ID) bool {
	r := c.byID[id]
	return r != nil && r.Delivered
}

// Records returns all records in generation order. Callers must not
// modify the slice.
func (c *Collector) Records() []*Record { return c.order }

// Summary is the reduced view of a run.
type Summary struct {
	Generated int
	Delivered int
	// DeliveryRate is Delivered/Generated.
	DeliveryRate float64
	// AvgDelay is the mean delay of delivered packets (the paper's
	// "average delay of delivered packets", Figs. 4, 16, 22).
	AvgDelay float64
	// AvgDelayAll counts undelivered packets at their time-in-system up
	// to the horizon, the Fig. 13 convention ("the delay of undelivered
	// packets is set to time the packet spent in the system").
	AvgDelayAll float64
	// MaxDelay is the maximum delay over delivered packets (Figs. 6,
	// 17, 23 report delays of delivered traffic).
	MaxDelay float64
	// MaxDelayAll additionally counts undelivered packets at their time
	// in system, so a protocol cannot escape the metric by never
	// serving the oldest packet.
	MaxDelayAll float64
	// WithinDeadline is the fraction of generated packets delivered
	// before their deadline (packets without deadlines are excluded
	// from the denominator).
	WithinDeadline float64

	Meetings         int
	OpportunityBytes int64
	DataBytes        int64
	MetaBytes        int64
	// Utilization is (data+meta)/opportunity (Fig. 9's "% channel
	// utilization").
	Utilization float64
	// MetaOverData and MetaOverBandwidth are Table 3's two overhead
	// ratios.
	MetaOverData      float64
	MetaOverBandwidth float64
	// LostTransfers counts in-flight data transfers lost to the
	// disruption layer (0 in pristine runs).
	LostTransfers int
}

// Summarize reduces the collector at the given horizon (the end of the
// experiment; undelivered packets have spent horizon−created in the
// system).
func (c *Collector) Summarize(horizon float64) Summary {
	s := Summary{
		Generated:        len(c.order),
		Meetings:         c.Meetings,
		OpportunityBytes: c.OpportunityBytes,
		DataBytes:        c.DataBytes,
		MetaBytes:        c.MetaBytes,
		LostTransfers:    c.LostTransfers,
	}
	var delaySum, delayAllSum float64
	var deadlineTotal, deadlineHit int
	for _, r := range c.order {
		var d float64
		if r.Delivered {
			s.Delivered++
			d = r.DeliveredAt - r.P.Created
			delaySum += d
			if d > s.MaxDelay {
				s.MaxDelay = d
			}
		} else {
			d = horizon - r.P.Created
			if d < 0 {
				d = 0
			}
		}
		delayAllSum += d
		if d > s.MaxDelayAll {
			s.MaxDelayAll = d
		}
		if r.P.Deadline > 0 {
			deadlineTotal++
			if r.Delivered && r.DeliveredAt <= r.P.Deadline {
				deadlineHit++
			}
		}
	}
	if s.Delivered > 0 {
		s.AvgDelay = delaySum / float64(s.Delivered)
	}
	if s.Generated > 0 {
		s.DeliveryRate = float64(s.Delivered) / float64(s.Generated)
		s.AvgDelayAll = delayAllSum / float64(s.Generated)
	}
	if deadlineTotal > 0 {
		s.WithinDeadline = float64(deadlineHit) / float64(deadlineTotal)
	}
	if s.OpportunityBytes > 0 {
		s.Utilization = float64(s.DataBytes+s.MetaBytes) / float64(s.OpportunityBytes)
		s.MetaOverBandwidth = float64(s.MetaBytes) / float64(s.OpportunityBytes)
	}
	if s.DataBytes > 0 {
		s.MetaOverData = float64(s.MetaBytes) / float64(s.DataBytes)
	}
	return s
}

// PairDelays returns the average delivered-packet delay per
// source-destination pair, the input to the paired t-test of §6.2.1.
// Pairs with no delivered packets are omitted.
func (c *Collector) PairDelays() map[PairKey]float64 {
	acc := map[PairKey]*stat.Welford{}
	for _, r := range c.order {
		if !r.Delivered {
			continue
		}
		k := PairKey{r.P.Src, r.P.Dst}
		w := acc[k]
		if w == nil {
			w = &stat.Welford{}
			acc[k] = w
		}
		w.Add(r.DeliveredAt - r.P.Created)
	}
	out := make(map[PairKey]float64, len(acc))
	for k, w := range acc {
		out[k] = w.Mean()
	}
	return out
}

// CohortFairness computes Jain's fairness index per parallel-packet
// cohort (Fig. 15). Undelivered packets contribute their time in system
// at the horizon. Cohort 0 (untagged packets) is skipped. The result is
// sorted ascending, ready for a CDF.
func (c *Collector) CohortFairness(horizon float64) []float64 {
	groups := map[int][]float64{}
	for _, r := range c.order {
		if r.P.Cohort == 0 {
			continue
		}
		d := horizon - r.P.Created
		if r.Delivered {
			d = r.DeliveredAt - r.P.Created
		}
		groups[r.P.Cohort] = append(groups[r.P.Cohort], d)
	}
	out := make([]float64, 0, len(groups))
	for _, delays := range groups {
		if j := stat.JainIndex(delays); !math.IsNaN(j) {
			out = append(out, j)
		}
	}
	sort.Float64s(out)
	return out
}

// Merge folds another collector's channel accounting and records into c
// (used to aggregate multi-day trace experiments). Packet IDs must be
// disjoint.
func (c *Collector) Merge(o *Collector) {
	for _, r := range o.order {
		if _, ok := c.byID[r.P.ID]; ok {
			panic("metrics: merging collectors with overlapping packet IDs")
		}
		c.byID[r.P.ID] = r
		c.order = append(c.order, r)
	}
	c.Delta.Add(&o.Delta)
	c.EventsExecuted += o.EventsExecuted
}

package trace

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"rapid/internal/packet"
)

// FuzzReadTrace drives the text codec with arbitrary input. Read must
// never panic; and any schedule that parses cleanly and validates must
// survive a Write→Read round trip bit-identically (%g formatting is
// shortest-round-trip, so this is an exact property, not approximate).
func FuzzReadTrace(f *testing.F) {
	f.Add("duration 100\nmeet 1 2 5 1024\n")
	f.Add("# comment\nduration 50\ncontact 0 3 1.5 2.5 512 0\nmeet 0 1 10 2048\n")
	f.Add("duration 1e9\nmeet 1 2 1e8 9223372036854775807\n")
	f.Add("meet 1 2 NaN 5\nduration Inf\n")
	f.Add("contact 1 2 0 0 0 100\nunknown directive kept for forward compat\n")
	f.Add("duration\nmeet\ncontact\n")
	f.Add("duration 100\nmeet -1 -2 -5 -1024\ncontact -1 -2 -1 -1 -1 -1\n")
	f.Fuzz(func(t *testing.T, data string) {
		s, err := Read(strings.NewReader(data))
		if err != nil {
			return
		}
		if s.Validate() != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, s); err != nil {
			t.Fatalf("Write failed on a valid schedule: %v", err)
		}
		s2, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-Read failed on Write output %q: %v", buf.String(), err)
		}
		if !reflect.DeepEqual(normalize(s), normalize(s2)) {
			t.Fatalf("round trip diverged:\n in: %+v\nout: %+v", s, s2)
		}
	})
}

// normalize maps nil and empty slices together for the round-trip
// comparison (Write cannot distinguish them).
func normalize(s *Schedule) *Schedule {
	cp := *s
	if len(cp.Meetings) == 0 {
		cp.Meetings = nil
	}
	if len(cp.Contacts) == 0 {
		cp.Contacts = nil
	}
	return &cp
}

// FuzzContactPlan drives Validate and Expand with arbitrary periodic
// contacts. Whatever the input: Validate must never panic, and a plan
// that validates must expand — without hanging or overrunning the
// occurrence budget — to a schedule that itself validates, twice over
// to the byte-identical result (the documented determinism property).
func FuzzContactPlan(f *testing.F) {
	f.Add(int8(0), int8(1), 0.0, 10.0, int64(1024), 0.0, 0.0, 100.0)
	f.Add(int8(3), int8(4), 5.0, 0.0, int64(1), 2.0, 512.0, 60.0)
	f.Add(int8(0), int8(2), 1.5, 2.5, int64(0), 2.5, 1.0, 1e5)
	f.Add(int8(1), int8(1), math.NaN(), math.Inf(1), int64(-1), -1.0, math.NaN(), math.Inf(1))
	f.Add(int8(0), int8(1), 0.0, 1e-7, int64(8), 0.0, 0.0, 1e9)
	f.Add(int8(0), int8(1), 0.0, 1e-5, int64(8), 0.0, 0.0, 1e18)
	f.Fuzz(func(t *testing.T, a, b int8, start, period float64, bytes int64, window, rate, duration float64) {
		cp := &ContactPlan{Duration: duration}
		cp.Contacts = append(cp.Contacts, PeriodicContact{
			A: packet.NodeID(a), B: packet.NodeID(b),
			Start: start, Period: period, Bytes: bytes,
			Window: window, RateBps: rate,
		})
		// A second contact derived from the first exercises multi-contact
		// interleaving and the sort in Expand.
		cp.Add(packet.NodeID(a)+1, packet.NodeID(b)+2, start/2, period*2, bytes)
		if cp.Validate() != nil {
			// Invalid plans may still not hang or panic on a defensive
			// expansion.
			cp.Expand()
			return
		}
		s1 := cp.Expand()
		if err := s1.Validate(); err != nil {
			t.Fatalf("valid plan expanded to invalid schedule: %v\nplan: %+v", err, cp)
		}
		s2 := cp.Expand()
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("expansion is not deterministic for plan %+v", cp)
		}
		if len(s1.Meetings)+len(s1.Contacts) > 2*(MaxOccurrences+1) {
			t.Fatalf("expansion overran the occurrence budget: %d records", len(s1.Meetings)+len(s1.Contacts))
		}
	})
}

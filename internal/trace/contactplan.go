package trace

import (
	"fmt"
	"math"

	"rapid/internal/packet"
)

// MinPeriod is the smallest admissible repeat period of a periodic
// contact. A period in (0, MinPeriod) would expand to billions of
// occurrences over any realistic horizon — Validate rejects it so a
// miscomputed period cannot OOM the expansion.
const MinPeriod = 1e-6

// PeriodicContact is one recurring transfer opportunity of a
// deterministic contact plan: nodes A and B are in range at
// Start, Start+Period, Start+2·Period, ... and can exchange Bytes bytes
// each time. Period <= 0 declares a one-shot contact. This is the
// contact-graph abstraction used for networks whose connectivity is
// computable in advance — satellite constellations with known orbits,
// scheduled data mules — as opposed to the statistical meeting processes
// of the mobility models.
//
// A contact with Window > 0 is duration-aware: each occurrence is a
// pass window of Window seconds at RateBps (capacity Window·RateBps)
// rather than a point meeting of Bytes. Window == 0 keeps the legacy
// point form.
type PeriodicContact struct {
	A, B   packet.NodeID
	Start  float64
	Period float64
	Bytes  int64
	// Window is each occurrence's temporal extent in seconds
	// (0 = point contact).
	Window float64
	// RateBps is the link rate across each window; required positive
	// when Window > 0, ignored otherwise.
	RateBps float64
}

// ContactPlan is a deterministic, periodic contact schedule over a
// horizon. Unlike a mobility model, expanding a plan consumes no
// randomness: the same plan always flattens to the byte-identical
// Schedule.
type ContactPlan struct {
	Contacts []PeriodicContact
	// Duration is the expansion horizon in seconds.
	Duration float64
}

// Add appends one periodic point contact to the plan.
func (cp *ContactPlan) Add(a, b packet.NodeID, start, period float64, bytes int64) {
	cp.Contacts = append(cp.Contacts, PeriodicContact{
		A: a, B: b, Start: start, Period: period, Bytes: bytes,
	})
}

// AddWindow appends one periodic windowed contact: each occurrence
// lasts `window` seconds at rateBps.
func (cp *ContactPlan) AddWindow(a, b packet.NodeID, start, period, window, rateBps float64) {
	cp.Contacts = append(cp.Contacts, PeriodicContact{
		A: a, B: b, Start: start, Period: period,
		Window: window, RateBps: rateBps,
	})
}

// MaxOccurrences bounds how many occurrences one periodic contact may
// expand to. A plan past it is a configuration error (the largest real
// constellation plans sit around 10⁴–10⁵ per contact), and without the
// bound a huge horizon over a small period would OOM the expansion that
// MinPeriod alone cannot prevent.
const MaxOccurrences = 1 << 20

// Validate checks structural invariants of the plan itself (the
// expanded schedule re-checks the flattened form via Schedule.Validate).
func (cp *ContactPlan) Validate() error {
	// A non-finite horizon would make Expand's t >= Duration
	// termination test unsatisfiable (NaN compares false forever) or
	// run a periodic contact without end.
	if math.IsNaN(cp.Duration) || math.IsInf(cp.Duration, 0) || cp.Duration < 0 {
		return fmt.Errorf("trace: plan duration %v is not a finite non-negative horizon", cp.Duration)
	}
	for i, c := range cp.Contacts {
		if c.A == c.B {
			return fmt.Errorf("trace: plan contact %d is a self-contact of node %d", i, c.A)
		}
		if c.Start < 0 || math.IsNaN(c.Start) || math.IsInf(c.Start, 0) {
			return fmt.Errorf("trace: plan contact %d starts at %v", i, c.Start)
		}
		if math.IsNaN(c.Period) || math.IsInf(c.Period, 0) || (c.Period > 0 && c.Period < MinPeriod) {
			return fmt.Errorf("trace: plan contact %d has period %v below the %g floor",
				i, c.Period, MinPeriod)
		}
		if c.Period > 0 && (cp.Duration-c.Start)/c.Period > MaxOccurrences {
			return fmt.Errorf("trace: plan contact %d expands to over %d occurrences (start %v, period %v, horizon %v)",
				i, MaxOccurrences, c.Start, c.Period, cp.Duration)
		}
		if c.Bytes < 0 {
			return fmt.Errorf("trace: plan contact %d has negative size", i)
		}
		if c.Window < 0 || math.IsNaN(c.Window) {
			return fmt.Errorf("trace: plan contact %d has window %v", i, c.Window)
		}
		if c.Window > 0 {
			if c.RateBps <= 0 || math.IsInf(c.RateBps, 0) || math.IsNaN(c.RateBps) {
				return fmt.Errorf("trace: plan contact %d has rate %v", i, c.RateBps)
			}
			if c.Period > 0 && c.Window > c.Period {
				return fmt.Errorf("trace: plan contact %d window %v exceeds its period %v (self-overlap)",
					i, c.Window, c.Period)
			}
		}
	}
	return nil
}

// Expand flattens the plan into a time-sorted meeting schedule over
// [0, Duration). Occurrences landing exactly on the horizon are
// excluded, matching Schedule.Validate's half-open interval; windowed
// occurrences are clipped to the horizon (a pass cut off by the end of
// the experiment transfers only its in-horizon share).
//
// Occurrence times are computed as Start + i·Period from an integer
// counter, never by repeated accumulation: t += Period drifts by an ULP
// every step and, over the 10⁴–10⁵ occurrences of a constellation-scale
// plan, breaks the documented property that the same plan always
// flattens to the byte-identical schedule.
func (cp *ContactPlan) Expand() *Schedule {
	s := &Schedule{Duration: cp.Duration}
	if math.IsNaN(cp.Duration) || math.IsInf(cp.Duration, 0) {
		// An unvalidated plan must degrade, not hang: NaN makes the
		// loop's termination test below unsatisfiable.
		return s
	}
	for _, c := range cp.Contacts {
		if math.IsNaN(c.Start) || math.IsInf(c.Start, 0) ||
			math.IsNaN(c.Period) || math.IsInf(c.Period, 0) {
			// Validate rejects these; never loop on them (Inf period
			// makes Start + 1·Period NaN, Inf start never terminates
			// against a smaller horizon).
			continue
		}
		for i := 0; ; i++ {
			t := c.Start + float64(i)*c.Period
			if t >= cp.Duration || i > MaxOccurrences {
				break
			}
			if c.Window > 0 {
				w := c.Window
				if t+w > cp.Duration {
					w = cp.Duration - t
				}
				if w > 0 {
					s.Contacts = append(s.Contacts, Contact{
						A: c.A, B: c.B, Start: t, Duration: w, RateBps: c.RateBps,
					})
				}
			} else {
				s.Meetings = append(s.Meetings, Meeting{A: c.A, B: c.B, Time: t, Bytes: c.Bytes})
			}
			if c.Period <= 0 {
				break // one-shot contact
			}
		}
	}
	s.Sort()
	return s
}

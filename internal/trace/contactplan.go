package trace

import (
	"fmt"
	"math"

	"rapid/internal/packet"
)

// PeriodicContact is one recurring transfer opportunity of a
// deterministic contact plan: nodes A and B are in range at
// Start, Start+Period, Start+2·Period, ... and can exchange Bytes bytes
// each time. Period <= 0 declares a one-shot contact. This is the
// contact-graph abstraction used for networks whose connectivity is
// computable in advance — satellite constellations with known orbits,
// scheduled data mules — as opposed to the statistical meeting processes
// of the mobility models.
type PeriodicContact struct {
	A, B   packet.NodeID
	Start  float64
	Period float64
	Bytes  int64
}

// ContactPlan is a deterministic, periodic contact schedule over a
// horizon. Unlike a mobility model, expanding a plan consumes no
// randomness: the same plan always flattens to the byte-identical
// Schedule.
type ContactPlan struct {
	Contacts []PeriodicContact
	// Duration is the expansion horizon in seconds.
	Duration float64
}

// Add appends one periodic contact to the plan.
func (cp *ContactPlan) Add(a, b packet.NodeID, start, period float64, bytes int64) {
	cp.Contacts = append(cp.Contacts, PeriodicContact{
		A: a, B: b, Start: start, Period: period, Bytes: bytes,
	})
}

// Validate checks structural invariants of the plan itself (the
// expanded schedule re-checks the flattened form via Schedule.Validate).
func (cp *ContactPlan) Validate() error {
	for i, c := range cp.Contacts {
		if c.A == c.B {
			return fmt.Errorf("trace: plan contact %d is a self-contact of node %d", i, c.A)
		}
		if c.Start < 0 || math.IsNaN(c.Start) {
			return fmt.Errorf("trace: plan contact %d starts at %v", i, c.Start)
		}
		if c.Bytes < 0 {
			return fmt.Errorf("trace: plan contact %d has negative size", i)
		}
	}
	return nil
}

// Expand flattens the plan into a time-sorted meeting schedule over
// [0, Duration). Occurrences landing exactly on the horizon are
// excluded, matching Schedule.Validate's half-open interval.
func (cp *ContactPlan) Expand() *Schedule {
	s := &Schedule{Duration: cp.Duration}
	for _, c := range cp.Contacts {
		for t := c.Start; t < cp.Duration; t += c.Period {
			s.Meetings = append(s.Meetings, Meeting{A: c.A, B: c.B, Time: t, Bytes: c.Bytes})
			if c.Period <= 0 {
				break // one-shot contact
			}
		}
	}
	s.Sort()
	return s
}

package trace

import (
	"math/rand"
	"testing"

	"rapid/internal/packet"
)

// expandInterleaved flattens the plan through Expand and merges the
// sorted meeting and contact lists into the single global order the
// runtime consumes (points before windows at shared instants) — the
// reference sequence the streaming cursor must reproduce exactly.
func expandInterleaved(cp *ContactPlan) []Contact {
	s := cp.Expand()
	out := make([]Contact, 0, len(s.Meetings)+len(s.Contacts))
	i, j := 0, 0
	for i < len(s.Meetings) || j < len(s.Contacts) {
		takeMeeting := j >= len(s.Contacts) ||
			(i < len(s.Meetings) && s.Meetings[i].Time <= s.Contacts[j].Start)
		if takeMeeting {
			m := s.Meetings[i]
			i++
			out = append(out, Contact{A: m.A, B: m.B, Start: m.Time, Bytes: m.Bytes})
		} else {
			out = append(out, s.Contacts[j])
			j++
		}
	}
	return out
}

// drainCursor collects the cursor's full sequence.
func drainCursor(cp *ContactPlan, merge bool) []Contact {
	cur := cp.Cursor(merge)
	var out []Contact
	for {
		c, ok := cur.Next()
		if !ok {
			return out
		}
		out = append(out, c)
	}
}

// checkEquivalent asserts cursor order and content match the
// materialized reference element for element.
func checkEquivalent(t *testing.T, cp *ContactPlan) {
	t.Helper()
	want := expandInterleaved(cp)
	got := drainCursor(cp, false)
	if len(got) != len(want) {
		t.Fatalf("cursor yielded %d occurrences, Expand %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("occurrence %d: cursor %+v != expand %+v", i, got[i], want[i])
		}
	}
}

func TestCursorMatchesExpandPoints(t *testing.T) {
	cp := &ContactPlan{Duration: 500}
	cp.Add(0, 1, 10, 60, 1<<10)
	cp.Add(1, 2, 10, 60, 2<<10) // phase collision with the first
	cp.Add(0, 2, 35, 0, 4<<10)  // one-shot
	cp.Add(2, 3, 5, 100, 1<<10)
	checkEquivalent(t, cp)
}

func TestCursorMatchesExpandWindows(t *testing.T) {
	cp := &ContactPlan{Duration: 400}
	cp.AddWindow(0, 1, 20, 100, 30, 8<<10)
	cp.AddWindow(1, 2, 20, 100, 30, 4<<10)  // same instants, different pair
	cp.AddWindow(0, 2, 350, 100, 80, 2<<10) // clipped at the horizon
	cp.Add(2, 3, 20, 100, 1<<10)            // point at the windows' instant
	if err := cp.Validate(); err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, cp)
}

func TestCursorHorizonExclusive(t *testing.T) {
	// An occurrence landing exactly on the horizon is excluded, matching
	// Expand's half-open interval.
	cp := &ContactPlan{Duration: 100}
	cp.Add(0, 1, 0, 50, 1<<10) // occurrences at 0, 50; 100 excluded
	got := drainCursor(cp, false)
	if len(got) != 2 {
		t.Fatalf("got %d occurrences, want 2 (horizon is exclusive)", len(got))
	}
	checkEquivalent(t, cp)
}

func TestCursorMatchesExpandRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		cp := &ContactPlan{Duration: 200 + r.Float64()*800}
		n := 1 + r.Intn(12)
		for k := 0; k < n; k++ {
			a := packet.NodeID(r.Intn(6))
			b := packet.NodeID(r.Intn(6))
			if a == b {
				b = (b + 1) % 6
			}
			start := r.Float64() * cp.Duration
			period := 0.0
			if r.Float64() < 0.8 {
				period = 5 + r.Float64()*100
			}
			if period > 0 && r.Float64() < 0.5 {
				cp.AddWindow(a, b, start, period, r.Float64()*period, 1+r.Float64()*1e4)
			} else {
				cp.Add(a, b, start, period, int64(r.Intn(1<<16)))
			}
		}
		checkEquivalent(t, cp)
	}
}

func TestCursorMergeAbutting(t *testing.T) {
	// Window == Period: occurrences abut exactly, so the merged cursor
	// coalesces the whole run into one window spanning the horizon.
	cp := &ContactPlan{Duration: 500}
	cp.AddWindow(0, 1, 0, 50, 50, 1000)
	got := drainCursor(cp, true)
	if len(got) != 1 {
		t.Fatalf("merged cursor yielded %d windows, want 1", len(got))
	}
	w := got[0]
	if w.Start != 0 || w.Duration != 500 || w.RateBps != 1000 {
		t.Fatalf("merged window %+v, want [0, 500) at 1000 B/s", w)
	}
	// Capacity is conserved: the merged window carries exactly the sum
	// of the occurrences it replaced.
	var sum float64
	for _, c := range drainCursor(cp, false) {
		sum += c.Duration * c.RateBps
	}
	if merged := w.Duration * w.RateBps; merged != sum {
		t.Errorf("merged capacity %v != summed occurrence capacity %v", merged, sum)
	}
}

func TestCursorMergeLeavesGappedWindowsAlone(t *testing.T) {
	// Window < Period: occurrences do not abut, so merging must not
	// change the sequence at all.
	cp := &ContactPlan{Duration: 300}
	cp.AddWindow(0, 1, 10, 60, 20, 500)
	cp.Add(1, 2, 0, 40, 1<<10)
	plain, merged := drainCursor(cp, false), drainCursor(cp, true)
	if len(plain) != len(merged) {
		t.Fatalf("merge changed occurrence count: %d != %d", len(merged), len(plain))
	}
	for i := range plain {
		if plain[i] != merged[i] {
			t.Fatalf("occurrence %d: merged %+v != plain %+v", i, merged[i], plain[i])
		}
	}
}

func TestCursorNodes(t *testing.T) {
	cp := &ContactPlan{Duration: 100}
	cp.Add(3, 1, 0, 0, 1)
	cp.AddWindow(2, 5, 10, 0, 5, 100)
	got := cp.Nodes()
	want := []packet.NodeID{1, 2, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("Nodes() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Nodes() = %v, want %v", got, want)
		}
	}
}

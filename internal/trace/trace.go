// Package trace defines contact traces — the node meeting schedules of
// §3.1 — together with a text codec and the synthetic DieselNet
// generator that substitutes for the proprietary 58-day bus traces used
// by the paper (see DESIGN.md §3 for the substitution argument).
//
// A schedule is the directed multigraph G=(V,E) of the paper flattened
// into a time-sorted list of meetings, each annotated with the transfer
// opportunity size in bytes.
package trace

import (
	"errors"
	"fmt"
	"sort"

	"rapid/internal/packet"
)

// Meeting is one edge of the meeting multigraph: nodes A and B are in
// radio range at Time and can exchange up to Bytes bytes in total
// (both directions share the opportunity, mirroring the merged
// connection events of the DieselNet deployment, §5).
type Meeting struct {
	A, B  packet.NodeID
	Time  float64
	Bytes int64
}

// Schedule is a complete meeting schedule for one experiment (one
// DieselNet day, or one synthetic-mobility run).
type Schedule struct {
	Meetings []Meeting
	// Duration is the experiment horizon in seconds; meetings all occur
	// in [0, Duration).
	Duration float64
}

// Sort orders meetings by time (stable on A, B for determinism).
func (s *Schedule) Sort() {
	sort.Slice(s.Meetings, func(i, j int) bool {
		mi, mj := s.Meetings[i], s.Meetings[j]
		if mi.Time != mj.Time {
			return mi.Time < mj.Time
		}
		if mi.A != mj.A {
			return mi.A < mj.A
		}
		return mi.B < mj.B
	})
}

// Nodes returns the sorted set of node IDs that appear in the schedule.
func (s *Schedule) Nodes() []packet.NodeID {
	seen := map[packet.NodeID]bool{}
	for _, m := range s.Meetings {
		seen[m.A] = true
		seen[m.B] = true
	}
	out := make([]packet.NodeID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TotalBytes sums the transfer-opportunity sizes (the denominator of the
// paper's metadata/bandwidth ratio, Table 3).
func (s *Schedule) TotalBytes() int64 {
	var t int64
	for _, m := range s.Meetings {
		t += m.Bytes
	}
	return t
}

// Validate checks structural invariants: time-sorted, within duration,
// non-negative sizes, no self-meetings.
func (s *Schedule) Validate() error {
	prev := -1.0
	for i, m := range s.Meetings {
		if m.A == m.B {
			return fmt.Errorf("trace: meeting %d is a self-meeting of node %d", i, m.A)
		}
		if m.Time < prev {
			return fmt.Errorf("trace: meeting %d out of order (%.3f after %.3f)", i, m.Time, prev)
		}
		if m.Time < 0 || (s.Duration > 0 && m.Time >= s.Duration) {
			return fmt.Errorf("trace: meeting %d at %.3f outside [0,%.3f)", i, m.Time, s.Duration)
		}
		if m.Bytes < 0 {
			return fmt.Errorf("trace: meeting %d has negative size", i)
		}
		prev = m.Time
	}
	return nil
}

// Clone returns a deep copy of the schedule.
func (s *Schedule) Clone() *Schedule {
	cp := &Schedule{Duration: s.Duration, Meetings: make([]Meeting, len(s.Meetings))}
	copy(cp.Meetings, s.Meetings)
	return cp
}

// ErrEmptySchedule is returned by consumers that need at least one
// meeting.
var ErrEmptySchedule = errors.New("trace: empty schedule")

// MeanOpportunity returns the average transfer-opportunity size in
// bytes, or an error for an empty schedule.
func (s *Schedule) MeanOpportunity() (float64, error) {
	if len(s.Meetings) == 0 {
		return 0, ErrEmptySchedule
	}
	return float64(s.TotalBytes()) / float64(len(s.Meetings)), nil
}

// Package trace defines contact traces — the node meeting schedules of
// §3.1 — together with a text codec and the synthetic DieselNet
// generator that substitutes for the proprietary 58-day bus traces used
// by the paper (see DESIGN.md §3 for the substitution argument).
//
// A schedule is the directed multigraph G=(V,E) of the paper flattened
// into a time-sorted list of meetings, each annotated with the transfer
// opportunity size in bytes.
package trace

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"rapid/internal/packet"
)

// Meeting is one edge of the meeting multigraph: nodes A and B are in
// radio range at Time and can exchange up to Bytes bytes in total
// (both directions share the opportunity, mirroring the merged
// connection events of the DieselNet deployment, §5).
type Meeting struct {
	A, B  packet.NodeID
	Time  float64
	Bytes int64
}

// Contact is a transfer opportunity with temporal extent: nodes A and B
// are in radio range throughout [Start, Start+Duration) and can move
// bytes at RateBps (bytes per second; the rate is shared by both
// directions and by control and data, like a Meeting's byte pool). A
// contact with Duration == 0 degrades to a point Meeting carrying
// Bytes — the degenerate form every pre-window schedule is expressed
// in — so legacy schedules and windowed ones flow through one type.
type Contact struct {
	A, B  packet.NodeID
	Start float64
	// Duration is the window length in seconds; 0 declares a point
	// contact.
	Duration float64
	// RateBps is the link rate across the window. Required positive for
	// windowed contacts; ignored for point contacts.
	RateBps float64
	// Bytes is the point-contact opportunity size, used only when
	// Duration == 0 (windowed capacity is RateBps·Duration).
	Bytes int64
}

// Windowed reports whether the contact has temporal extent.
func (c Contact) Windowed() bool { return c.Duration > 0 }

// End returns the time the window closes (Start for point contacts).
func (c Contact) End() float64 { return c.Start + c.Duration }

// EndWithin returns the close time clipped to the horizon (horizon
// <= 0 means unbounded) — the shared rule for windows dangling past
// the end of an experiment, used identically by the runtime's close
// event and by plan-ahead routers modeling it.
func (c Contact) EndWithin(horizon float64) float64 {
	end := c.End()
	if horizon > 0 && end > horizon {
		return horizon
	}
	return end
}

// Capacity returns the total transfer opportunity in bytes: the full
// window at the nominal rate, or Bytes for a point contact.
func (c Contact) Capacity() int64 {
	if c.Duration > 0 {
		return int64(c.RateBps * c.Duration)
	}
	return c.Bytes
}

// AsMeeting converts a zero-duration contact to its Meeting form; ok is
// false for windowed contacts, which have no point equivalent.
func (c Contact) AsMeeting() (Meeting, bool) {
	if c.Windowed() {
		return Meeting{}, false
	}
	return Meeting{A: c.A, B: c.B, Time: c.Start, Bytes: c.Bytes}, true
}

// Schedule is a complete meeting schedule for one experiment (one
// DieselNet day, or one synthetic-mobility run). Point meetings and
// windowed contacts coexist: legacy generators fill Meetings only,
// contact-plan generators with finite link rates fill Contacts.
type Schedule struct {
	Meetings []Meeting
	// Contacts holds duration-aware opportunities. A zero-duration
	// entry is exactly equivalent to a Meeting (the runtime degrades
	// it); a windowed entry streams bytes at RateBps across its window.
	Contacts []Contact
	// Duration is the experiment horizon in seconds; meetings all occur
	// in [0, Duration) and contact windows close by Duration.
	Duration float64
}

// Sort orders meetings by time (stable on A, B for determinism), and
// contacts by start time likewise.
func (s *Schedule) Sort() {
	sort.Slice(s.Meetings, func(i, j int) bool {
		mi, mj := s.Meetings[i], s.Meetings[j]
		if mi.Time != mj.Time {
			return mi.Time < mj.Time
		}
		if mi.A != mj.A {
			return mi.A < mj.A
		}
		return mi.B < mj.B
	})
	sort.Slice(s.Contacts, func(i, j int) bool {
		ci, cj := s.Contacts[i], s.Contacts[j]
		if ci.Start != cj.Start {
			return ci.Start < cj.Start
		}
		if ci.A != cj.A {
			return ci.A < cj.A
		}
		if ci.B != cj.B {
			return ci.B < cj.B
		}
		return ci.Duration < cj.Duration
	})
}

// Nodes returns the sorted set of node IDs that appear in the schedule.
func (s *Schedule) Nodes() []packet.NodeID {
	seen := map[packet.NodeID]bool{}
	for _, m := range s.Meetings {
		seen[m.A] = true
		seen[m.B] = true
	}
	for _, c := range s.Contacts {
		seen[c.A] = true
		seen[c.B] = true
	}
	out := make([]packet.NodeID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TotalBytes sums the transfer-opportunity sizes (the denominator of the
// paper's metadata/bandwidth ratio, Table 3). Windowed contacts count
// their full-window capacity.
func (s *Schedule) TotalBytes() int64 {
	var t int64
	for _, m := range s.Meetings {
		t += m.Bytes
	}
	for _, c := range s.Contacts {
		t += c.Capacity()
	}
	return t
}

// Validate checks structural invariants: a finite horizon, time-sorted
// finite instants within duration, non-negative sizes, no
// self-meetings.
func (s *Schedule) Validate() error {
	if math.IsNaN(s.Duration) || math.IsInf(s.Duration, 0) || s.Duration < 0 {
		return fmt.Errorf("trace: schedule duration %v is not a finite non-negative horizon", s.Duration)
	}
	prev := -1.0
	for i, m := range s.Meetings {
		if m.A == m.B {
			return fmt.Errorf("trace: meeting %d is a self-meeting of node %d", i, m.A)
		}
		if math.IsNaN(m.Time) || math.IsInf(m.Time, 0) {
			return fmt.Errorf("trace: meeting %d at non-finite time %v", i, m.Time)
		}
		if m.Time < prev {
			return fmt.Errorf("trace: meeting %d out of order (%.3f after %.3f)", i, m.Time, prev)
		}
		if m.Time < 0 || (s.Duration > 0 && m.Time >= s.Duration) {
			return fmt.Errorf("trace: meeting %d at %.3f outside [0,%.3f)", i, m.Time, s.Duration)
		}
		if m.Bytes < 0 {
			return fmt.Errorf("trace: meeting %d has negative size", i)
		}
		prev = m.Time
	}
	prev = -1.0
	for i, c := range s.Contacts {
		if c.A == c.B {
			return fmt.Errorf("trace: contact %d is a self-contact of node %d", i, c.A)
		}
		if math.IsNaN(c.Start) || math.IsInf(c.Start, 0) {
			return fmt.Errorf("trace: contact %d starts at non-finite time %v", i, c.Start)
		}
		if c.Start < prev {
			return fmt.Errorf("trace: contact %d out of order (%.3f after %.3f)", i, c.Start, prev)
		}
		if c.Start < 0 || (s.Duration > 0 && c.Start >= s.Duration) {
			return fmt.Errorf("trace: contact %d starts at %.3f outside [0,%.3f)", i, c.Start, s.Duration)
		}
		if c.Duration < 0 || math.IsNaN(c.Duration) || math.IsInf(c.Duration, 0) {
			return fmt.Errorf("trace: contact %d has duration %v", i, c.Duration)
		}
		if c.Windowed() {
			if c.RateBps <= 0 || math.IsInf(c.RateBps, 0) || math.IsNaN(c.RateBps) {
				return fmt.Errorf("trace: windowed contact %d has rate %v", i, c.RateBps)
			}
			if s.Duration > 0 && c.End() > s.Duration {
				return fmt.Errorf("trace: contact %d window [%.3f,%.3f) overruns horizon %.3f",
					i, c.Start, c.End(), s.Duration)
			}
		} else if c.Bytes < 0 {
			return fmt.Errorf("trace: contact %d has negative size", i)
		}
		prev = c.Start
	}
	return nil
}

// Clone returns a deep copy of the schedule.
func (s *Schedule) Clone() *Schedule {
	cp := &Schedule{Duration: s.Duration, Meetings: make([]Meeting, len(s.Meetings))}
	copy(cp.Meetings, s.Meetings)
	if len(s.Contacts) > 0 {
		cp.Contacts = make([]Contact, len(s.Contacts))
		copy(cp.Contacts, s.Contacts)
	}
	return cp
}

// ErrEmptySchedule is returned by consumers that need at least one
// meeting.
var ErrEmptySchedule = errors.New("trace: empty schedule")

// MeanOpportunity returns the average transfer-opportunity size in
// bytes over meetings and contacts, or an error for an empty schedule.
func (s *Schedule) MeanOpportunity() (float64, error) {
	n := len(s.Meetings) + len(s.Contacts)
	if n == 0 {
		return 0, ErrEmptySchedule
	}
	return float64(s.TotalBytes()) / float64(n), nil
}

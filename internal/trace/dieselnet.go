package trace

import (
	"math"
	"math/rand"

	"rapid/internal/packet"
)

// DieselNetConfig parameterizes the synthetic DieselNet day generator.
//
// The real testbed (§5) ran 40 buses over 150 square miles around
// Amherst; a subset (~19 on average) was on the road on any given day
// for about 19 hours. The routes radiate from a downtown transfer hub:
// buses repeatedly return to it between runs, so meetings cluster into
// temporally chained bursts at the hub (bus A overlaps B, B overlaps C
// minutes later), with additional encounters between buses sharing a
// route. Some pairs still never meet on a given day — the reason RAPID
// estimates meeting times transitively through up to h=3 hops
// (§4.1.2).
//
// The generator models exactly that structure: each bus visits the hub
// quasi-periodically with jitter; a pair meets when their hub stays
// overlap; same-route pairs add direct Poisson encounters; and
// transfer-opportunity sizes are drawn from a heavy-tailed lognormal
// ("The available bandwidth varies significantly across transfer
// opportunities", §6.2.2).
//
// Defaults are calibrated against Table 3: ≈19 buses/day, ≈147.5
// meetings/day, ≈261 MB transferred/day, 19-hour days — and against
// the deployment's routing feasibility (an offline-optimal router must
// be able to deliver the large majority of a default-load workload, as
// the real testbed's 88% delivery demonstrates).
type DieselNetConfig struct {
	Fleet        int     // total buses in the fleet (paper: 40)
	ActivePerDay int     // buses scheduled on an average day (paper: ~19)
	Routes       int     // distinct bus routes
	DayHours     float64 // hours of service per day (Table 4: 19)

	// HubPeriodMin/HubPeriodMax bound a bus's time between hub visits
	// in seconds; per-bus periods are log-uniform over the range, so a
	// few "hot" short-headway buses account for most meetings (the
	// skew behind the power-law models of §6.3) while cold buses meet
	// rarely.
	HubPeriodMin float64
	HubPeriodMax float64
	// HubStaySeconds is the mean layover duration at the hub.
	HubStaySeconds float64
	// SameRouteMeetsPerDay is the expected number of extra daily
	// on-route meetings for a pair of buses serving the same route.
	SameRouteMeetsPerDay float64

	// MeanTransferBytes is the mean transfer-opportunity size;
	// SigmaTransfer is the lognormal shape (larger = heavier tail).
	MeanTransferBytes float64
	SigmaTransfer     float64
	// MinTransferBytes floors very short contacts.
	MinTransferBytes int64

	Seed int64 // base seed; day d uses Seed^hash(d) so days are independent
}

// DefaultDieselNet returns the Table-3-calibrated configuration.
func DefaultDieselNet() DieselNetConfig {
	return DieselNetConfig{
		Fleet:                40,
		ActivePerDay:         19,
		Routes:               10,
		DayHours:             19,
		HubPeriodMin:         1800,  // hot buses: hub every ~30 min
		HubPeriodMax:         10800, // cold buses: hub every ~3 h
		HubStaySeconds:       160,
		SameRouteMeetsPerDay: 2.0,
		MeanTransferBytes:    1.45e6, // calibrated: ≈261 MB over ≈180 meetings/day
		SigmaTransfer:        1.0,
		MinTransferBytes:     8 << 10,
		Seed:                 1,
	}
}

// DieselNet generates synthetic DieselNet days. Construct with
// NewDieselNet; the same (config, day) pair always yields the same
// schedule.
type DieselNet struct {
	cfg    DieselNetConfig
	route  []int     // route assignment per bus, fleet-wide and stable
	period []float64 // hub-visit period per bus, fleet-wide and stable
}

// NewDieselNet validates the configuration and fixes the fleet's route
// assignment (stable across days, like real bus-route assignments).
func NewDieselNet(cfg DieselNetConfig) *DieselNet {
	if cfg.Fleet <= 1 {
		panic("trace: DieselNet fleet must have at least 2 buses")
	}
	if cfg.ActivePerDay < 2 || cfg.ActivePerDay > cfg.Fleet {
		panic("trace: ActivePerDay must be in [2, Fleet]")
	}
	if cfg.Routes < 1 {
		cfg.Routes = 1
	}
	if cfg.HubPeriodMin <= 0 {
		cfg.HubPeriodMin = 1500
	}
	if cfg.HubPeriodMax < cfg.HubPeriodMin {
		cfg.HubPeriodMax = cfg.HubPeriodMin * 10
	}
	if cfg.HubStaySeconds <= 0 {
		cfg.HubStaySeconds = 160
	}
	d := &DieselNet{cfg: cfg}
	r := rand.New(rand.NewSource(cfg.Seed))
	d.route = make([]int, cfg.Fleet)
	d.period = make([]float64, cfg.Fleet)
	ratio := cfg.HubPeriodMax / cfg.HubPeriodMin
	for i := range d.route {
		d.route[i] = r.Intn(cfg.Routes)
		// Log-uniform headways: most meetings involve hot buses.
		d.period[i] = cfg.HubPeriodMin * math.Pow(ratio, r.Float64())
	}
	return d
}

// Route returns the route index of a bus (exposed for tests and the
// fleet-monitor example).
func (d *DieselNet) Route(bus packet.NodeID) int { return d.route[int(bus)] }

// ActiveBuses returns the deterministic roster for a day: the subset of
// the fleet on the road. Roster size varies mildly around ActivePerDay
// ("the number of buses on the road at any time varies", §5.1).
func (d *DieselNet) ActiveBuses(day int) []packet.NodeID {
	r := d.dayRand(day, "roster")
	n := d.cfg.ActivePerDay + r.Intn(5) - 2 // ±2 buses
	if n < 2 {
		n = 2
	}
	if n > d.cfg.Fleet {
		n = d.cfg.Fleet
	}
	perm := r.Perm(d.cfg.Fleet)
	ids := make([]packet.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = packet.NodeID(perm[i])
	}
	return ids
}

// Day generates the meeting schedule for one day: hub-layover overlaps
// plus same-route encounters. The result is sorted and validated by
// construction.
func (d *DieselNet) Day(day int) *Schedule {
	active := d.ActiveBuses(day)
	r := d.dayRand(day, "meetings")
	dur := d.cfg.DayHours * 3600
	s := &Schedule{Duration: dur}

	// Hub visit intervals per active bus.
	type stay struct{ start, end float64 }
	visits := make(map[packet.NodeID][]stay, len(active))
	for _, bus := range active {
		period := d.period[int(bus)]
		t := r.Float64() * period // random phase
		for t < dur {
			length := d.cfg.HubStaySeconds * (0.5 + r.Float64())
			end := t + length
			if end > dur {
				end = dur
			}
			visits[bus] = append(visits[bus], stay{t, end})
			t += period * (0.8 + 0.4*r.Float64()) // schedule jitter
		}
	}

	// Meetings: overlapping hub stays (radio discovery succeeds with
	// high probability), chained in time as buses cycle through.
	for i := 0; i < len(active); i++ {
		for j := i + 1; j < len(active); j++ {
			a, b := active[i], active[j]
			for _, va := range visits[a] {
				for _, vb := range visits[b] {
					lo := math.Max(va.start, vb.start)
					hi := math.Min(va.end, vb.end)
					if hi <= lo {
						continue
					}
					if r.Float64() < 0.45 {
						continue // missed discovery / radio failure
					}
					s.Meetings = append(s.Meetings, Meeting{
						A: a, B: b, Time: lo, Bytes: d.transferSize(r),
					})
				}
			}
			// Extra on-route encounters for same-route pairs.
			if d.route[int(a)] == d.route[int(b)] {
				rate := d.cfg.SameRouteMeetsPerDay / dur
				t := 0.0
				for {
					t += r.ExpFloat64() / rate
					if t >= dur {
						break
					}
					s.Meetings = append(s.Meetings, Meeting{
						A: a, B: b, Time: t, Bytes: d.transferSize(r),
					})
				}
			}
		}
	}
	s.Sort()
	return s
}

// transferSize draws a heavy-tailed opportunity size.
func (d *DieselNet) transferSize(r *rand.Rand) int64 {
	mu := math.Log(d.cfg.MeanTransferBytes) - d.cfg.SigmaTransfer*d.cfg.SigmaTransfer/2
	bytes := int64(math.Exp(mu + d.cfg.SigmaTransfer*r.NormFloat64()))
	if bytes < d.cfg.MinTransferBytes {
		bytes = d.cfg.MinTransferBytes
	}
	return bytes
}

// dayRand derives an independent random stream for (day, purpose).
func (d *DieselNet) dayRand(day int, purpose string) *rand.Rand {
	h := int64(uint64(day+1) * 0x9E3779B97F4A7C15)
	for i := 0; i < len(purpose); i++ {
		h = h*1099511628211 + int64(purpose[i])
	}
	return rand.New(rand.NewSource(d.cfg.Seed ^ h))
}

// PerturbConfig models the deployment effects the paper names as absent
// from simulation (§5: "delays caused by computation or the wireless
// channel"). Applying Perturb to a clean schedule produces the
// "Real"-system counterpart for the Fig. 3 validation comparison.
type PerturbConfig struct {
	// TransferEfficiency scales each opportunity: the fraction of
	// nominal contact bytes actually usable after protocol handshake
	// and wireless loss. Drawn uniformly from [Min, 1].
	MinTransferEfficiency float64
	// DropProb is the probability a contact fails entirely (radio or
	// system failure).
	DropProb float64
	// JitterSeconds shifts each meeting time by U(0, JitterSeconds) —
	// connection-establishment latency.
	JitterSeconds float64
	Seed          int64
}

// DefaultPerturb returns mild perturbations consistent with the ≤1%
// average-delay agreement the paper reports between deployment and
// simulation.
func DefaultPerturb() PerturbConfig {
	return PerturbConfig{
		MinTransferEfficiency: 0.85,
		DropProb:              0.02,
		JitterSeconds:         15,
		Seed:                  99,
	}
}

// Perturb returns a perturbed copy of the schedule.
func Perturb(s *Schedule, cfg PerturbConfig) *Schedule {
	r := rand.New(rand.NewSource(cfg.Seed))
	out := &Schedule{Duration: s.Duration}
	for _, m := range s.Meetings {
		if r.Float64() < cfg.DropProb {
			continue
		}
		eff := cfg.MinTransferEfficiency + (1-cfg.MinTransferEfficiency)*r.Float64()
		nm := m
		nm.Bytes = int64(float64(m.Bytes) * eff)
		nm.Time += r.Float64() * cfg.JitterSeconds
		if nm.Time >= s.Duration {
			nm.Time = s.Duration - 1e-9
		}
		out.Meetings = append(out.Meetings, nm)
	}
	out.Sort()
	return out
}

package trace

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"rapid/internal/packet"
)

func TestScheduleSortAndValidate(t *testing.T) {
	s := &Schedule{
		Duration: 100,
		Meetings: []Meeting{
			{A: 1, B: 2, Time: 50, Bytes: 10},
			{A: 0, B: 1, Time: 10, Bytes: 20},
			{A: 2, B: 3, Time: 10, Bytes: 5},
		},
	}
	s.Sort()
	if s.Meetings[0].Time != 10 || s.Meetings[0].A != 0 {
		t.Errorf("sort order wrong: %+v", s.Meetings)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	if got := s.TotalBytes(); got != 35 {
		t.Errorf("TotalBytes=%d want 35", got)
	}
	nodes := s.Nodes()
	want := []packet.NodeID{0, 1, 2, 3}
	if len(nodes) != len(want) {
		t.Fatalf("nodes %v", nodes)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("nodes %v want %v", nodes, want)
		}
	}
}

func TestValidateRejectsBadSchedules(t *testing.T) {
	cases := []struct {
		name string
		s    Schedule
	}{
		{"self-meeting", Schedule{Duration: 10, Meetings: []Meeting{{A: 1, B: 1, Time: 1, Bytes: 1}}}},
		{"out of order", Schedule{Duration: 10, Meetings: []Meeting{{A: 0, B: 1, Time: 5, Bytes: 1}, {A: 0, B: 1, Time: 1, Bytes: 1}}}},
		{"negative size", Schedule{Duration: 10, Meetings: []Meeting{{A: 0, B: 1, Time: 1, Bytes: -4}}}},
		{"past horizon", Schedule{Duration: 10, Meetings: []Meeting{{A: 0, B: 1, Time: 11, Bytes: 1}}}},
	}
	for _, c := range cases {
		if err := c.s.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestMeanOpportunity(t *testing.T) {
	s := &Schedule{Meetings: []Meeting{{Bytes: 10, A: 0, B: 1}, {Bytes: 30, A: 0, B: 1}}}
	m, err := s.MeanOpportunity()
	if err != nil || m != 20 {
		t.Errorf("mean=%v err=%v", m, err)
	}
	empty := &Schedule{}
	if _, err := empty.MeanOpportunity(); err != ErrEmptySchedule {
		t.Errorf("want ErrEmptySchedule, got %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := &Schedule{Duration: 5, Meetings: []Meeting{{A: 0, B: 1, Time: 1, Bytes: 2}}}
	c := s.Clone()
	c.Meetings[0].Bytes = 99
	if s.Meetings[0].Bytes != 2 {
		t.Error("clone shares backing array")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := &Schedule{Duration: 1000}
		n := r.Intn(50)
		tm := 0.0
		for i := 0; i < n; i++ {
			tm += r.Float64() * 10
			s.Meetings = append(s.Meetings, Meeting{
				A:     packet.NodeID(r.Intn(10)),
				B:     packet.NodeID(10 + r.Intn(10)),
				Time:  tm,
				Bytes: int64(r.Intn(1 << 20)),
			})
		}
		var buf bytes.Buffer
		if err := Write(&buf, s); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.Duration != s.Duration || len(got.Meetings) != len(s.Meetings) {
			return false
		}
		for i := range s.Meetings {
			a, b := s.Meetings[i], got.Meetings[i]
			if a.A != b.A || a.B != b.B || a.Bytes != b.Bytes {
				return false
			}
			if math.Abs(a.Time-b.Time) > 1e-9*math.Max(1, math.Abs(a.Time)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCodecSkipsCommentsAndUnknown(t *testing.T) {
	in := "# a comment\nduration 10\nfuture-directive x y\nmeet 0 1 2.5 100\n\n"
	s, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Duration != 10 || len(s.Meetings) != 1 {
		t.Fatalf("parsed %+v", s)
	}
}

func TestCodecErrors(t *testing.T) {
	for _, in := range []string{
		"duration\n",
		"duration abc\n",
		"meet 0 1 2.5\n",
		"meet a b c d\n",
	} {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("input %q should fail to parse", in)
		}
	}
}

func TestDieselNetDeterministic(t *testing.T) {
	cfg := DefaultDieselNet()
	d1 := NewDieselNet(cfg)
	d2 := NewDieselNet(cfg)
	s1 := d1.Day(3)
	s2 := d2.Day(3)
	if len(s1.Meetings) != len(s2.Meetings) {
		t.Fatalf("non-deterministic day: %d vs %d meetings", len(s1.Meetings), len(s2.Meetings))
	}
	for i := range s1.Meetings {
		if s1.Meetings[i] != s2.Meetings[i] {
			t.Fatal("non-deterministic meeting content")
		}
	}
	// Different days differ.
	s3 := d1.Day(4)
	if len(s3.Meetings) == len(s1.Meetings) {
		same := true
		for i := range s1.Meetings {
			if s1.Meetings[i] != s3.Meetings[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("two different days produced identical schedules")
		}
	}
}

func TestDieselNetCalibration(t *testing.T) {
	// Averages over many days must approximate Table 3:
	// ~19 buses, ~147.5 meetings/day, ~261.4 MB/day.
	d := NewDieselNet(DefaultDieselNet())
	days := 40
	var meetings, buses, bytesTotal float64
	for day := 0; day < days; day++ {
		s := d.Day(day)
		if err := s.Validate(); err != nil {
			t.Fatalf("day %d invalid: %v", day, err)
		}
		meetings += float64(len(s.Meetings))
		buses += float64(len(d.ActiveBuses(day)))
		bytesTotal += float64(s.TotalBytes())
	}
	meetings /= float64(days)
	buses /= float64(days)
	bytesTotal /= float64(days)
	if buses < 16 || buses > 22 {
		t.Errorf("avg buses/day=%v want ~19", buses)
	}
	if meetings < 100 || meetings > 200 {
		t.Errorf("avg meetings/day=%v want ~147", meetings)
	}
	if mb := bytesTotal / 1e6; mb < 150 || mb > 420 {
		t.Errorf("avg MB/day=%v want ~261", mb)
	}
}

func TestDieselNetHeavyTailTransfers(t *testing.T) {
	d := NewDieselNet(DefaultDieselNet())
	var sizes []float64
	for day := 0; day < 20; day++ {
		for _, m := range d.Day(day).Meetings {
			sizes = append(sizes, float64(m.Bytes))
		}
	}
	if len(sizes) < 100 {
		t.Fatalf("too few meetings: %d", len(sizes))
	}
	var mean float64
	maxV := 0.0
	for _, s := range sizes {
		mean += s
		if s > maxV {
			maxV = s
		}
	}
	mean /= float64(len(sizes))
	// Heavy tail: max well above the mean; bandwidth "varies
	// significantly across transfer opportunities" (§6.2.2).
	if maxV < 4*mean {
		t.Errorf("transfer sizes not heavy-tailed: max=%v mean=%v", maxV, mean)
	}
}

func TestDieselNetPanicsOnBadConfig(t *testing.T) {
	for _, cfg := range []DieselNetConfig{
		{Fleet: 1, ActivePerDay: 1},
		{Fleet: 10, ActivePerDay: 11},
		{Fleet: 10, ActivePerDay: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v must panic", cfg)
				}
			}()
			NewDieselNet(cfg)
		}()
	}
}

func TestPerturbPreservesValidity(t *testing.T) {
	d := NewDieselNet(DefaultDieselNet())
	s := d.Day(0)
	p := Perturb(s, DefaultPerturb())
	if err := p.Validate(); err != nil {
		t.Fatalf("perturbed schedule invalid: %v", err)
	}
	if len(p.Meetings) > len(s.Meetings) {
		t.Error("perturbation added meetings")
	}
	if len(p.Meetings) < len(s.Meetings)*8/10 {
		t.Errorf("perturbation dropped too many meetings: %d -> %d", len(s.Meetings), len(p.Meetings))
	}
	if p.TotalBytes() >= s.TotalBytes() {
		t.Error("perturbation should reduce usable bytes")
	}
}

func TestPerturbDeterministic(t *testing.T) {
	d := NewDieselNet(DefaultDieselNet())
	s := d.Day(0)
	p1 := Perturb(s, DefaultPerturb())
	p2 := Perturb(s, DefaultPerturb())
	if len(p1.Meetings) != len(p2.Meetings) {
		t.Fatal("perturbation non-deterministic")
	}
	for i := range p1.Meetings {
		if p1.Meetings[i] != p2.Meetings[i] {
			t.Fatal("perturbation non-deterministic content")
		}
	}
}

func TestDieselNetNeverMeetPairsExist(t *testing.T) {
	// The h-hop transitive estimator (§4.1.2) exists because "some
	// nodes in the trace never meet directly". Check the generator
	// reproduces that property within a day.
	d := NewDieselNet(DefaultDieselNet())
	s := d.Day(0)
	active := d.ActiveBuses(0)
	met := map[[2]packet.NodeID]bool{}
	for _, m := range s.Meetings {
		a, b := m.A, m.B
		if a > b {
			a, b = b, a
		}
		met[[2]packet.NodeID{a, b}] = true
	}
	pairs := len(active) * (len(active) - 1) / 2
	if len(met) >= pairs {
		t.Errorf("every pair met directly (%d/%d); trace lacks never-meet structure", len(met), pairs)
	}
}
